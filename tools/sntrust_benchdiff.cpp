// sntrust_benchdiff: regression gate over the JSON run reports the obs
// layer emits (SNTRUST_REPORT / --report; schema in obs/run_report.hpp).
//
//   sntrust_benchdiff [options] <baseline.json> <candidate.json>
//       Aligns the two reports by span path, prints a regression table
//       (regressions first), and exits 1 when any span, total, quantile, or
//       estimate-quality gate breaches — CI wires this between a committed
//       baseline and the fresh run, humans point it at any two reports.
//       When both reports carry build/run provenance and their graph
//       fingerprints or scale disagree, the diff refuses (exit 2) instead
//       of comparing apples to oranges; --allow-provenance-mismatch
//       overrides.
//   sntrust_benchdiff --summary <report.json|telemetry.jsonl>...
//       Prints a Markdown summary table across the given reports — CI
//       appends it to $GITHUB_STEP_SUMMARY; scripts/run_all.sh ends with
//       it. Telemetry .jsonl streams are listed with their frame counts,
//       including how many trailing frames were lost to truncation.
//
// Options:
//   --threshold-pct <p>       per-span wall regression gate (default 25)
//   --total-threshold-pct <p> totals wall gate (default 15)
//   --rss-threshold-pct <p>   peak-RSS gate (default 50)
//   --min-wall-ms <ms>        ignore spans below this in both runs (default 5)
//   --quantile-threshold-pct <p> telemetry p50/p99 gate (default 40)
//   --min-quantile-ms <ms>    ignore quantiles below this in both runs
//                             (default 1)
//   --ci-widen-threshold-pct <p> diag estimate CI95-width gate (default 50)
//   --max-new-nonconverged <n> allowed new cap-exit sources (default 0)
//   --allow-provenance-mismatch  diff even when provenance disagrees
//   --cpu                     also gate span/total cpu_ms
//   --warn-only               print the table but always exit 0
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"
#include "report/run_compare.hpp"
#include "util/format.hpp"

namespace {

using namespace sntrust;

int usage() {
  std::cerr
      << "usage:\n"
         "  sntrust_benchdiff [options] <baseline.json> <candidate.json>\n"
         "  sntrust_benchdiff --summary <report.json|telemetry.jsonl>...\n"
         "options:\n"
         "  --threshold-pct <p>        span wall regression gate "
         "(default 25)\n"
         "  --total-threshold-pct <p>  totals wall gate (default 15)\n"
         "  --rss-threshold-pct <p>    peak-RSS gate (default 50)\n"
         "  --min-wall-ms <ms>         noise floor for spans (default 5)\n"
         "  --quantile-threshold-pct <p>  telemetry p50/p99 gate "
         "(default 40)\n"
         "  --min-quantile-ms <ms>     noise floor for quantiles "
         "(default 1)\n"
         "  --ci-widen-threshold-pct <p>  diag CI95-width gate (default 50)\n"
         "  --max-new-nonconverged <n> allowed new cap-exit sources "
         "(default 0)\n"
         "  --allow-provenance-mismatch  diff despite provenance mismatch\n"
         "  --cpu                      also gate cpu_ms\n"
         "  --warn-only                report regressions but exit 0\n";
  return 2;
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Markdown summary: one table row per run report, a totals row, then one
// bullet per telemetry stream. Plain enough to read in a terminal, renders
// as a table when CI appends it to $GITHUB_STEP_SUMMARY.
int cmd_summary(const std::vector<std::string>& paths) {
  struct TelemetryLine {
    std::string path;
    std::size_t frames;
    std::uint64_t truncated;
  };
  std::vector<TelemetryLine> streams;

  std::cout << "| report | tool | wall (s) | cpu (s) | peak rss (MB) |"
               " allocs | nonconverged |\n"
            << "|---|---|---:|---:|---:|---:|---:|\n";
  double wall_ms = 0.0;
  double cpu_ms = 0.0;
  double peak_rss = 0.0;
  double alloc_bytes = 0.0;
  std::uint64_t alloc_count = 0;
  std::size_t reports = 0;
  for (const std::string& path : paths) {
    if (ends_with(path, ".jsonl")) {
      const obs::TelemetryFrames frames = obs::read_telemetry_frames(path);
      streams.push_back(
          TelemetryLine{path, frames.frames.size(), frames.truncated_frames});
      continue;
    }
    const RunReportData report = load_run_report(path);
    ++reports;
    auto total = [&report](const char* key) {
      const auto found = report.totals.find(key);
      return found == report.totals.end() ? 0.0 : found->second;
    };
    wall_ms += total("wall_ms");
    cpu_ms += total("cpu_ms");
    peak_rss = std::max(peak_rss, total("peak_rss_bytes"));
    alloc_bytes += total("alloc_bytes");
    alloc_count += static_cast<std::uint64_t>(total("alloc_count"));
    std::cout << "| " << path << " | " << report.tool << " | "
              << fixed(total("wall_ms") / 1000.0, 1) << " | "
              << fixed(total("cpu_ms") / 1000.0, 1) << " | "
              << fixed(total("peak_rss_bytes") / (1024.0 * 1024.0), 1)
              << " | "
              << with_thousands(
                     static_cast<std::uint64_t>(total("alloc_count")))
              << " | "
              << (report.has_diag ? std::to_string(report.diag_nonconverged)
                                  : std::string{"-"})
              << " |\n";
  }
  std::cout << "| **total** (" << reports << " report"
            << (reports == 1 ? "" : "s") << ") | | "
            << fixed(wall_ms / 1000.0, 1) << " | " << fixed(cpu_ms / 1000.0, 1)
            << " | " << fixed(peak_rss / (1024.0 * 1024.0), 1) << " | "
            << with_thousands(alloc_count) << " | |\n";
  for (const TelemetryLine& stream : streams) {
    std::cout << "\n- `" << stream.path << "`: " << stream.frames
              << " telemetry frame" << (stream.frames == 1 ? "" : "s");
    if (stream.truncated > 0)
      std::cout << " (" << stream.truncated << " truncated frame"
                << (stream.truncated == 1 ? "" : "s") << " dropped)";
    std::cout << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    DiffOptions options;
    bool warn_only = false;
    bool summary = false;
    bool allow_provenance_mismatch = false;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next_double = [&](double& out) {
        if (i + 1 >= argc) return false;
        out = std::atof(argv[++i]);
        return true;
      };
      if (arg == "--threshold-pct") {
        if (!next_double(options.span_threshold_pct)) return usage();
      } else if (arg == "--total-threshold-pct") {
        if (!next_double(options.total_threshold_pct)) return usage();
      } else if (arg == "--rss-threshold-pct") {
        if (!next_double(options.rss_threshold_pct)) return usage();
      } else if (arg == "--min-wall-ms") {
        if (!next_double(options.min_wall_ms)) return usage();
      } else if (arg == "--quantile-threshold-pct") {
        if (!next_double(options.quantile_threshold_pct)) return usage();
      } else if (arg == "--min-quantile-ms") {
        if (!next_double(options.min_quantile_ms)) return usage();
      } else if (arg == "--ci-widen-threshold-pct") {
        if (!next_double(options.ci_widen_threshold_pct)) return usage();
      } else if (arg == "--max-new-nonconverged") {
        if (i + 1 >= argc) return usage();
        options.max_new_nonconverged = std::atoll(argv[++i]);
      } else if (arg == "--allow-provenance-mismatch") {
        allow_provenance_mismatch = true;
      } else if (arg == "--cpu") {
        options.gate_cpu = true;
      } else if (arg == "--warn-only") {
        warn_only = true;
      } else if (arg == "--summary") {
        summary = true;
      } else if (!arg.empty() && arg[0] == '-') {
        std::cerr << "unknown flag: " << arg << "\n";
        return usage();
      } else {
        paths.push_back(arg);
      }
    }

    if (summary) {
      if (paths.empty()) return usage();
      return cmd_summary(paths);
    }
    if (paths.size() != 2) return usage();

    const RunReportData baseline = load_run_report(paths[0]);
    const RunReportData candidate = load_run_report(paths[1]);
    if (const std::string mismatch = provenance_mismatch(baseline, candidate);
        !mismatch.empty()) {
      if (!allow_provenance_mismatch) {
        std::cerr << "error: refusing to diff: " << mismatch
                  << "\n(pass --allow-provenance-mismatch to compare "
                     "anyway)\n";
        return 2;
      }
      std::cerr << "warning: " << mismatch << "\n";
    }
    std::cout << "baseline:  " << paths[0] << " (" << baseline.tool << ")\n"
              << "candidate: " << paths[1] << " (" << candidate.tool
              << ")\n\n";
    const DiffResult result = diff_run_reports(baseline, candidate, options);
    diff_table(result).print(std::cout);
    if (result.breached) {
      std::cout << (warn_only
                        ? "\nregression thresholds breached (warn-only)\n"
                        : "\nregression thresholds breached\n");
      return warn_only ? 0 : 1;
    }
    std::cout << "\nno regressions past thresholds\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }
}

// sntrust command-line tool: the library's measurement pipeline for
// downstream users with their own edge lists.
//
//   sntrust_cli generate <dataset_id> <scale> <out.txt>
//       Writes a synthetic analogue as a SNAP-format edge list.
//   sntrust_cli measure <graph> [sources]
//       Loads a graph — text edge list, binary CSR, or mmap snapshot
//       (format sniffed by magic) — reduces to the largest component, and
//       prints the full property report (mixing, cores, expansion) plus
//       per-phase wall-clock timings.
//   sntrust_cli attack <edgelist.txt> <sybils> <attack_edges>
//       Attaches a Sybil region and reports GateKeeper / SybilLimit /
//       SumUp outcomes.
//   sntrust_cli datasets
//       Lists the registered Table-I analogues.
//
// Global flags:
//   --trace <out.json>   Record a hierarchical trace of the run and write
//                        it as Chrome trace_event JSON (chrome://tracing /
//                        Perfetto). SNTRUST_TRACE=<path> does the same for
//                        any binary in the repo.
//   --threads <n>        Worker threads for the per-source sweeps (same as
//                        SNTRUST_THREADS; 1 = serial). Results are
//                        identical for any value.
//   --kernel <mode>      Distribution-evolution kernel: auto | dense |
//                        sparse (same as SNTRUST_KERNEL). All modes give
//                        bitwise-identical results; auto starts with the
//                        frontier-sparse pull and switches to dense gathers
//                        once the frontier covers most of the graph.
//   --layout <layout>    Adjacency layout for the hot loops: plain | hilo |
//                        compressed (same as SNTRUST_LAYOUT). The
//                        degree-ordered layouts relabel vertices hub-first
//                        and (hilo: tail-only, compressed: everywhere)
//                        varint-pack the adjacency; results are bitwise
//                        identical to plain.
//   --report <out.json>  Write the unified JSON run report (config, metrics
//                        snapshot, per-span wall/cpu/alloc table, totals) at
//                        exit. SNTRUST_REPORT=<path> does the same for any
//                        binary; diff two reports with sntrust_benchdiff.
//   --deadline <ms>      Cooperative wall-clock budget: sweeps drain, write
//                        their checkpoint, and the run exits 75 with a
//                        partial report (same as SNTRUST_DEADLINE_MS).
//   --checkpoint <path>  Persist completed per-source work to <path> and
//                        restore from it on the next run (same as
//                        SNTRUST_CHECKPOINT). --resume is an alias; both
//                        read and write the same file.
//   --max-failed-frac <f> Tolerate up to this fraction of failed sources
//                        per sweep before aborting (default 0 = strict;
//                        same as SNTRUST_MAX_FAILED_FRAC). A degraded run
//                        exits 75.
//   --telemetry <path[:period_ms]>
//                        Stream live telemetry frames (JSONL, schema v1:
//                        counters, gauges, latency quantiles, resource
//                        totals) to <path> every period_ms (default 1000)
//                        while the run executes. Same as
//                        SNTRUST_TELEMETRY; SNTRUST_TELEMETRY_PROM=<path>
//                        adds a Prometheus text sink.
// Progress lines for long sweeps appear on stderr with SNTRUST_PROGRESS=1.
//
// Exit codes: 0 success, 64 usage error, 65 bad input (unreadable or
// malformed graph files), 75 interrupted or partial/degraded results,
// 1 internal error.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/property_suite.hpp"
#include "exec/cancel.hpp"
#include "exec/checkpoint.hpp"
#include "exec/sweep.hpp"
#include "gen/datasets.hpp"
#include "graph/components.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "markov/frontier.hpp"
#include "obs/diag.hpp"
#include "obs/run_report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "report/csv_sink.hpp"
#include "report/table.hpp"
#include "sybil/gatekeeper.hpp"
#include "sybil/sumup.hpp"
#include "sybil/sybillimit.hpp"
#include "util/format.hpp"

namespace {

using namespace sntrust;

int usage() {
  std::cerr << "usage:\n"
               "  sntrust_cli datasets\n"
               "  sntrust_cli generate <dataset_id> <scale> <out.txt>\n"
               "  sntrust_cli measure <edgelist.txt> [mixing_sources]\n"
               "  sntrust_cli attack <edgelist.txt> <sybils> <attack_edges>\n"
               "flags:\n"
               "  --trace <out.json>   write a Chrome trace-event JSON of "
               "the run\n"
               "  --threads <n>        worker threads for the measurement "
               "sweeps (1 = serial)\n"
               "  --kernel <mode>      distribution kernel: auto | dense | "
               "sparse (bitwise identical)\n"
               "  --layout <layout>    adjacency layout: plain | hilo | "
               "compressed (bitwise identical)\n"
               "  --report <out.json>  write the unified JSON run report "
               "at exit\n"
               "  --deadline <ms>      cooperative wall-clock budget; "
               "partial runs exit 75\n"
               "  --checkpoint <path>  persist/restore per-source sweep "
               "progress (alias: --resume)\n"
               "  --max-failed-frac <f> tolerated failed-source fraction "
               "per sweep (default 0)\n"
               "  --telemetry <path[:period_ms]> stream live JSONL telemetry "
               "frames during the run\n"
               "  --diag               record estimator diagnostics "
               "(convergence traces, CI95s) in the report\n";
  return 64;  // EX_USAGE
}

int cmd_datasets() {
  Table table{{"id", "name", "paper n", "paper m", "class"}};
  for (const DatasetSpec& spec : all_datasets())
    table.add_row({spec.id, spec.name, with_thousands(spec.paper_nodes),
                   with_thousands(spec.paper_edges),
                   to_string(spec.expected_class)});
  table.print(std::cout);
  return 0;
}

int cmd_generate(const std::string& id, double scale,
                 const std::string& path) {
  const Graph g = dataset_by_id(id).generate(scale, 2026);
  write_edge_list_file(g, path);
  std::cout << "wrote " << with_thousands(g.num_vertices()) << " vertices / "
            << with_thousands(g.num_edges()) << " edges to " << path << "\n";
  return 0;
}

int cmd_measure(const std::string& path, std::uint32_t sources) {
  // Per-phase timings are part of the measure report, so tracing is always
  // on for this command; --trace / SNTRUST_TRACE additionally export the
  // full span tree as JSON.
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.enable();
  const obs::Span root{"cli.measure", "cli"};

  const Graph raw = [&] {
    const obs::Span span{"load", "cli"};
    return read_graph_auto(path);
  }();
  const Graph g = largest_component(raw).graph;
  std::cout << "loaded " << path << ": n=" << with_thousands(g.num_vertices())
            << " m=" << with_thousands(g.num_edges())
            << " (largest component of " << with_thousands(raw.num_vertices())
            << ")\n";

  obs::RunReporter& reporter = obs::RunReporter::instance();
  reporter.set_config("command", "measure");
  reporter.set_config("edgelist", path);
  reporter.set_config("graph_n", g.num_vertices());
  reporter.set_config("graph_m", g.num_edges());
  // Provenance: benchdiff/diag refuse to diff reports whose graph.*
  // fingerprints disagree — two runs over different graphs are not
  // comparable.
  reporter.set_config("graph.measured", to_hex(g.fingerprint()));
  reporter.set_config("mixing_sources", sources);

  PropertySuiteOptions options;
  options.mixing_sources = sources;
  options.mixing_max_walk = 200;
  options.expansion_sources = 1000;
  const PropertyReport report = measure_properties(g, options);
  const DegreeStats degrees = degree_stats(g);

  Table table{{"property", "value"}};
  table.add_row({"mean degree", fixed(degrees.mean, 2)});
  table.add_row({"clustering (avg local)",
                 fixed(average_local_clustering(g), 4)});
  table.add_row({"assortativity", fixed(degree_assortativity(g), 4)});
  table.add_row({"diameter (>=)",
                 std::to_string(double_sweep_diameter(g))});
  table.add_row({"mu (SLEM)", fixed(report.slem.mu, 5)});
  table.add_row({"T(1/n) sampled",
                 report.mixing_time == 0xFFFFFFFFu
                     ? "> " + std::to_string(options.mixing_max_walk)
                     : std::to_string(report.mixing_time)});
  table.add_row({"Sinclair bounds",
                 fixed(report.bounds.lower, 1) + " .. " +
                     fixed(report.bounds.upper, 1)});
  table.add_row({"degeneracy", std::to_string(report.degeneracy)});
  table.add_row({"max #cores", std::to_string(report.max_core_count)});
  table.add_row({"min expansion factor",
                 fixed(report.min_expansion_factor, 4)});
  table.print(std::cout);

  // Timing section: where the run's wall-clock went, phase by phase. Also
  // lands in $SNTRUST_CSV_DIR/measure_timings.csv when that sink is set.
  const Table timings = tracer.timing_table();
  std::cout << "timings (wall-clock per span)\n";
  timings.print(std::cout);
  maybe_write_csv(timings, "measure_timings");
  return 0;
}

int cmd_attack(const std::string& path, VertexId sybils,
               std::uint32_t attack_edges) {
  const Graph g = largest_component(read_graph_auto(path)).graph;
  obs::RunReporter& reporter = obs::RunReporter::instance();
  reporter.set_config("command", "attack");
  reporter.set_config("edgelist", path);
  reporter.set_config("graph_n", g.num_vertices());
  reporter.set_config("graph_m", g.num_edges());
  reporter.set_config("graph.measured", to_hex(g.fingerprint()));
  reporter.set_config("sybils", sybils);
  reporter.set_config("attack_edges", attack_edges);
  AttackParams attack;
  attack.num_sybils = sybils;
  attack.attack_edges = attack_edges;
  attack.seed = 2026;
  const AttackedGraph attacked{g, attack};
  std::cout << "honest n=" << with_thousands(g.num_vertices()) << ", sybils="
            << with_thousands(sybils) << ", attack edges=" << attack_edges
            << " (unfiltered "
            << fixed(static_cast<double>(sybils) / attack_edges, 1)
            << " sybils/edge)\n";

  Table table{{"defense", "honest accepted", "sybils per attack edge"}};
  {
    GateKeeperParams params;
    params.seed = 2026;
    const GateKeeperEvaluation eval = evaluate_gatekeeper(attacked, 0, params);
    table.add_row({"GateKeeper (f=0.1)",
                   fixed(100 * eval.honest_accept_fraction, 1) + "%",
                   fixed(eval.sybils_per_attack_edge, 2)});
  }
  {
    SybilLimitParams params;
    params.seed = 2026;
    const PairwiseEvaluation eval =
        evaluate_sybillimit(attacked, 0, params, 100, 100, 2026);
    table.add_row({"SybilLimit",
                   fixed(100 * eval.honest_accept_fraction, 1) + "%",
                   fixed(eval.sybils_per_attack_edge, 2)});
  }
  {
    SumUpParams params;
    params.seed = 2026;
    const SumUpEvaluation eval = evaluate_sumup(
        attacked, 0, std::max<VertexId>(10, g.num_vertices() / 20), params);
    table.add_row({"SumUp (votes)",
                   fixed(100 * eval.honest_collect_fraction, 1) + "%",
                   fixed(eval.sybil_votes_per_attack_edge, 2)});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Cooperative SIGINT/SIGTERM from the first instruction: a signal drains
  // the in-flight sweep, persists its checkpoint, and still writes the run
  // report at exit. A second signal force-kills the classic way.
  exec::install_signal_handlers();
  try {
    // Peel the global --trace / --threads / --report flags off before
    // dispatching.
    std::vector<std::string> args;
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--trace") {
        if (i + 1 >= argc) return usage();
        trace_path = argv[++i];
        continue;
      }
      if (arg == "--threads") {
        if (i + 1 >= argc) return usage();
        const int threads = std::atoi(argv[++i]);
        if (threads <= 0) return usage();
        parallel::set_thread_count(static_cast<std::uint32_t>(threads));
        continue;
      }
      if (arg == "--kernel") {
        if (i + 1 >= argc) return usage();
        const auto mode = parse_kernel_mode(argv[++i]);
        if (!mode) return usage();
        set_kernel_mode(*mode);
        obs::RunReporter::instance().set_config("kernel", to_string(*mode));
        continue;
      }
      if (arg == "--layout") {
        if (i + 1 >= argc) return usage();
        const auto layout = parse_graph_layout(argv[++i]);
        if (!layout) return usage();
        set_graph_layout(*layout);
        obs::RunReporter::instance().set_config("layout", to_string(*layout));
        continue;
      }
      if (arg == "--report") {
        if (i + 1 >= argc) return usage();
        // Arms the atexit export (and enables the tracer so the report's
        // span table is populated).
        obs::RunReporter::instance().set_export_path(argv[++i]);
        continue;
      }
      if (arg == "--deadline") {
        if (i + 1 >= argc) return usage();
        const long long ms = std::atoll(argv[++i]);
        if (ms <= 0) return usage();
        exec::set_process_deadline(exec::Deadline::after_ms(ms));
        obs::RunReporter::instance().set_config("deadline_ms",
                                                static_cast<std::int64_t>(ms));
        continue;
      }
      if (arg == "--checkpoint" || arg == "--resume") {
        if (i + 1 >= argc) return usage();
        const std::string path = argv[++i];
        exec::CheckpointStore::instance().set_path(path);
        obs::RunReporter::instance().set_config("checkpoint", path);
        continue;
      }
      if (arg == "--max-failed-frac") {
        if (i + 1 >= argc) return usage();
        const double frac = std::atof(argv[++i]);
        if (frac < 0.0 || frac > 1.0) return usage();
        exec::set_max_failed_frac(frac);
        obs::RunReporter::instance().set_config("max_failed_frac", frac);
        continue;
      }
      if (arg == "--diag") {
        // Same as SNTRUST_DIAG=1: record convergence traces, CI95s, and
        // non-convergence flags into the report's "diag" section. Bitwise
        // neutral to every measured output.
        obs::set_diag_enabled(true);
        obs::RunReporter::instance().set_config("diag", true);
        continue;
      }
      if (arg == "--telemetry") {
        if (i + 1 >= argc) return usage();
        // Same "path[:period_ms]" shape as SNTRUST_TELEMETRY; the exporter
        // writes frame 0 immediately and a final frame at exit.
        const obs::TelemetryOptions options =
            obs::parse_telemetry_spec(argv[++i]);
        if (options.jsonl_path.empty()) return usage();
        obs::RunReporter::instance();  // report hook first, exporter stop second
        obs::TelemetryExporter::instance().start(options);
        obs::RunReporter::instance().set_config("telemetry",
                                                options.jsonl_path);
        continue;
      }
      args.push_back(arg);
    }
    if (!trace_path.empty()) obs::Tracer::instance().enable();

    int status = 64;
    if (args.empty()) {
      status = usage();
    } else {
      const std::string& command = args[0];
      const std::size_t n = args.size();
      if (command == "datasets" && n == 1)
        status = cmd_datasets();
      else if (command == "generate" && n == 4)
        status = cmd_generate(args[1], std::atof(args[2].c_str()), args[3]);
      else if (command == "measure" && (n == 2 || n == 3))
        status = cmd_measure(
            args[1], n == 3 ? static_cast<std::uint32_t>(
                                  std::atoi(args[2].c_str()))
                            : 20);
      else if (command == "attack" && n == 4)
        status = cmd_attack(
            args[1], static_cast<sntrust::VertexId>(std::atoi(args[2].c_str())),
            static_cast<std::uint32_t>(std::atoi(args[3].c_str())));
      else
        status = usage();
    }

    if (!trace_path.empty()) {
      obs::Tracer::instance().write_chrome_trace_file(trace_path);
      std::cerr << "trace written to " << trace_path << "\n";
    }
    return status;
  } catch (const exec::CancelledError& error) {
    // Drained cleanly: the checkpoint (if armed) holds the completed work
    // and the atexit run report records the interruption.
    std::cerr << "interrupted: " << error.what() << "\n";
    return 75;  // EX_TEMPFAIL: re-run with --resume to continue
  } catch (const exec::PartialFailureError& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 75;
  } catch (const IoError& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 65;  // EX_DATAERR: unreadable or malformed input
  } catch (const std::invalid_argument& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 65;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}

// sntrust_diag: renders and diffs the estimator-diagnostics ("diag")
// section of run reports — the statistical-quality counterpart to
// sntrust_benchdiff's timing diffs.
//
//   sntrust_diag [options] <report.json>
//       Renders the diag section: convergence verdict, flagged (cap-exit)
//       sources, per-estimate CI95 columns, and per-kind decay-curve
//       tables (iterations, fitted decay rate, plateau onset, final value,
//       plus a thinned trajectory for each trace). Exits 1 when any source
//       is flagged as non-converged — CI runs this against the reference
//       dataset to assert every estimate converged.
//   sntrust_diag [options] <baseline.json> <candidate.json>
//       Diffs estimate quality between two runs: CI95 widths per estimate
//       and the nonconverged count, gated like sntrust_benchdiff's quality
//       rows. Refuses mismatched provenance (different graph fingerprints
//       or scale) unless --allow-provenance-mismatch.
//
// Options:
//   --ci-widen-threshold-pct <p>  CI95-width regression gate (default 50)
//   --max-new-nonconverged <n>    allowed new cap-exit sources (default 0)
//   --trace-points <n>            trajectory samples rendered per trace
//                                 (default 8)
//   --allow-provenance-mismatch   diff despite provenance mismatch
//   --warn-only                   report but always exit 0
//
// Exit codes: 0 ok, 1 flagged sources / quality gate breached, 2 usage or
// read error (same taxonomy as sntrust_benchdiff).
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "report/run_compare.hpp"
#include "report/table.hpp"
#include "util/format.hpp"
#include "util/json.hpp"

namespace {

using namespace sntrust;

int usage() {
  std::cerr
      << "usage:\n"
         "  sntrust_diag [options] <report.json>\n"
         "  sntrust_diag [options] <baseline.json> <candidate.json>\n"
         "options:\n"
         "  --ci-widen-threshold-pct <p>  CI95-width gate (default 50)\n"
         "  --max-new-nonconverged <n>    allowed new cap-exit sources "
         "(default 0)\n"
         "  --trace-points <n>            trajectory samples per trace "
         "(default 8)\n"
         "  --allow-provenance-mismatch   diff despite provenance mismatch\n"
         "  --warn-only                   report but always exit 0\n";
  return 2;
}

json::Value load_document(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return json::Value::parse(buffer.str());
}

double number_or(const json::Value* value, double fallback) {
  return value != nullptr && value->is_number() ? value->as_number()
                                                : fallback;
}

// Renders one trace's (iteration, value) trajectory as "t:v" pairs, evenly
// subsampled down to `max_points` so wide tables stay readable. The first
// and final samples always survive the subsample.
std::string render_points(const json::Value& points, std::size_t max_points) {
  if (!points.is_array() || points.as_array().empty()) return "-";
  const json::Array& rows = points.as_array();
  std::vector<std::size_t> keep;
  if (rows.size() <= max_points) {
    for (std::size_t i = 0; i < rows.size(); ++i) keep.push_back(i);
  } else {
    for (std::size_t i = 0; i < max_points; ++i)
      keep.push_back(i * (rows.size() - 1) / (max_points - 1));
  }
  std::string out;
  for (const std::size_t i : keep) {
    const json::Value& pair = rows[i];
    if (!pair.is_array() || pair.as_array().size() != 2) continue;
    if (!out.empty()) out += "  ";
    out += std::to_string(pair.as_array()[0].as_int()) + ":" +
           compact(pair.as_array()[1].as_number(), 3);
  }
  return out.empty() ? "-" : out;
}

int cmd_render(const std::string& path, std::size_t trace_points,
               bool warn_only) {
  const json::Value document = load_document(path);
  const RunReportData report = parse_run_report(document);
  std::cout << "report: " << path << " (" << report.tool << ")\n";
  if (!report.has_diag) {
    std::cout << "no diag section — run with SNTRUST_DIAG=1 (or --diag) to "
                 "record estimator diagnostics\n";
    return 0;
  }
  const json::Value* diag = document.find("diag");
  std::cout << "converged: " << (report.diag_converged ? "yes" : "NO")
            << "   nonconverged sources: " << report.diag_nonconverged
            << "   epsilon: " << compact(number_or(diag->find("epsilon"), 0.0))
            << "\n\n";

  if (!report.flagged_sources.empty()) {
    Table flagged{{"kind", "source", "iterations", "final value"}};
    for (const RunReportData::FlaggedSource& source : report.flagged_sources)
      flagged.add_row({source.kind, std::to_string(source.source),
                       std::to_string(source.iterations),
                       compact(source.final_value)});
    std::cout << "flagged (exited on iteration cap, not tolerance):\n";
    flagged.print(std::cout);
    std::cout << "\n";
  }

  if (!report.estimates.empty()) {
    Table estimates{{"estimate", "mean", "ci95 lo", "ci95 hi", "ci95 width",
                     "n", "ess"}};
    for (const auto& [name, row] : report.estimates)
      estimates.add_row({name, compact(row.mean), compact(row.ci95_lo),
                         compact(row.ci95_hi), compact(row.ci95_width),
                         std::to_string(row.n), compact(row.ess)});
    std::cout << "estimates:\n";
    estimates.print(std::cout);
    std::cout << "\n";
  }

  if (const json::Value* traces = diag->find("traces");
      traces != nullptr && traces->is_object()) {
    for (const json::Member& group : traces->as_object()) {
      if (!group.second.is_array()) continue;
      Table table{{"source", "iterations", "converged", "decay rate",
                   "plateau@", "final value", "trajectory (iter:value)"}};
      for (const json::Value& trace : group.second.as_array()) {
        if (!trace.is_object()) continue;
        const json::Value* converged = trace.find("converged");
        const json::Value* points = trace.find("points");
        table.add_row(
            {std::to_string(static_cast<std::int64_t>(
                 number_or(trace.find("source"), 0.0))),
             std::to_string(static_cast<std::int64_t>(
                 number_or(trace.find("iterations"), 0.0))),
             converged != nullptr && converged->is_bool() &&
                     !converged->as_bool()
                 ? "NO"
                 : "yes",
             compact(number_or(trace.find("decay_rate"), 0.0)),
             std::to_string(static_cast<std::int64_t>(
                 number_or(trace.find("plateau_iteration"), 0.0))),
             compact(number_or(trace.find("final_value"), 0.0)),
             points != nullptr ? render_points(*points, trace_points) : "-"});
      }
      std::cout << "decay curves: " << group.first << "\n";
      table.print(std::cout);
      std::cout << "\n";
    }
    if (const json::Value* dropped = diag->find("dropped_traces");
        dropped != nullptr)
      std::cout << "(" << dropped->as_int()
                << " traces dropped past the per-kind cap — raise "
                   "SNTRUST_DIAG_MAX_TRACES to keep more)\n\n";
  }

  if (report.diag_nonconverged > 0) {
    std::cout << (warn_only ? "non-converged estimates present (warn-only)\n"
                            : "non-converged estimates present\n");
    return warn_only ? 0 : 1;
  }
  std::cout << "all estimates converged\n";
  return 0;
}

int cmd_diff(const std::string& baseline_path,
             const std::string& candidate_path, const DiffOptions& options,
             bool allow_provenance_mismatch, bool warn_only) {
  const RunReportData baseline = load_run_report(baseline_path);
  const RunReportData candidate = load_run_report(candidate_path);
  if (const std::string mismatch = provenance_mismatch(baseline, candidate);
      !mismatch.empty()) {
    if (!allow_provenance_mismatch) {
      std::cerr << "error: refusing to diff: " << mismatch
                << "\n(pass --allow-provenance-mismatch to compare anyway)\n";
      return 2;
    }
    std::cerr << "warning: " << mismatch << "\n";
  }
  std::cout << "baseline:  " << baseline_path << " (" << baseline.tool
            << ")\n"
            << "candidate: " << candidate_path << " (" << candidate.tool
            << ")\n\n";
  if (!baseline.has_diag || !candidate.has_diag) {
    std::cout << "diag section missing on "
              << (!baseline.has_diag && !candidate.has_diag
                      ? "both sides"
                      : (!baseline.has_diag ? "the baseline"
                                            : "the candidate"))
              << " — nothing to gate (run both with SNTRUST_DIAG=1)\n";
    return 0;
  }
  const DiffResult result = diff_run_reports(baseline, candidate, options);
  Table table{{"name", "metric", "baseline", "candidate", "delta",
               "status"}};
  for (const DiffRow& row : result.quality) {
    const std::string delta =
        row.status == DiffRow::Status::Added ||
                row.status == DiffRow::Status::Removed
            ? "-"
            : (std::isfinite(row.delta_pct) ? fixed(row.delta_pct, 1) + "%"
                                            : "inf");
    table.add_row({row.name, row.metric, compact(row.baseline),
                   compact(row.candidate), delta, to_string(row.status)});
  }
  table.print(std::cout);
  bool quality_breached = false;
  for (const DiffRow& row : result.quality)
    if (row.status == DiffRow::Status::Regressed) quality_breached = true;
  if (quality_breached) {
    std::cout << (warn_only ? "\nestimate quality degraded (warn-only)\n"
                            : "\nestimate quality degraded\n");
    return warn_only ? 0 : 1;
  }
  std::cout << "\nestimate quality held\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    DiffOptions options;
    bool warn_only = false;
    bool allow_provenance_mismatch = false;
    std::size_t trace_points = 8;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--ci-widen-threshold-pct") {
        if (i + 1 >= argc) return usage();
        options.ci_widen_threshold_pct = std::atof(argv[++i]);
      } else if (arg == "--max-new-nonconverged") {
        if (i + 1 >= argc) return usage();
        options.max_new_nonconverged = std::atoll(argv[++i]);
      } else if (arg == "--trace-points") {
        if (i + 1 >= argc) return usage();
        trace_points = static_cast<std::size_t>(
            std::max(2LL, std::atoll(argv[++i])));
      } else if (arg == "--allow-provenance-mismatch") {
        allow_provenance_mismatch = true;
      } else if (arg == "--warn-only") {
        warn_only = true;
      } else if (!arg.empty() && arg[0] == '-') {
        std::cerr << "unknown flag: " << arg << "\n";
        return usage();
      } else {
        paths.push_back(arg);
      }
    }
    if (paths.size() == 1)
      return cmd_render(paths[0], trace_points, warn_only);
    if (paths.size() == 2)
      return cmd_diff(paths[0], paths[1], options,
                      allow_provenance_mismatch, warn_only);
    return usage();
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }
}

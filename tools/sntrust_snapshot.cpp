// sntrust_snapshot: build and inspect zero-copy mmap graph snapshots
// (graph/snapshot.hpp).
//
//   sntrust_snapshot convert <in> <out.snap>
//       Converts any readable graph (text edge list, binary CSR, or an
//       existing snapshot) to snapshot format. The write is atomic (temp +
//       fsync + rename).
//   sntrust_snapshot generate <dataset_id> <scale> <seed> <out.snap>
//       Generates a Table-I analogue (scale 0 = the full paper-scale size)
//       and writes it as a snapshot directly — no edge-list detour.
//   sntrust_snapshot info <path.snap>
//       Prints the header: version, sizes, fingerprint, CRCs.
//   sntrust_snapshot verify <path.snap>
//       Full integrity check: header CRC, size arithmetic, payload CRC, and
//       the structural validation the mmap fast path skips.
//
// Exit codes: 0 success, 64 usage error, 65 bad input (malformed, truncated,
// corrupted, foreign-endian, or unknown-version files), 1 internal error.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "gen/datasets.hpp"
#include "graph/io.hpp"
#include "graph/snapshot.hpp"
#include "obs/trace.hpp"
#include "util/format.hpp"

namespace {

using namespace sntrust;

int usage() {
  std::cerr << "usage:\n"
               "  sntrust_snapshot convert <in> <out.snap>\n"
               "  sntrust_snapshot generate <dataset_id> <scale> <seed> "
               "<out.snap>   (scale 0 = full paper scale)\n"
               "  sntrust_snapshot info <path.snap>\n"
               "  sntrust_snapshot verify <path.snap>\n";
  return 64;  // EX_USAGE
}

void report_written(const Graph& g, const std::string& path) {
  std::cout << "wrote " << path << ": n=" << with_thousands(g.num_vertices())
            << " m=" << with_thousands(g.num_edges()) << " fingerprint="
            << to_hex(g.fingerprint()) << "\n";
}

int cmd_convert(const std::string& in, const std::string& out) {
  const obs::Stopwatch load_clock;
  const Graph g = read_graph_auto(in);
  std::cout << "loaded " << in << " in "
            << static_cast<long long>(load_clock.elapsed_ms()) << " ms\n";
  write_snapshot(g, out);
  report_written(g, out);
  return 0;
}

int cmd_generate(const std::string& id, double scale, std::uint64_t seed,
                 const std::string& out) {
  const DatasetSpec& spec = dataset_by_id(id);
  const Graph g =
      scale == 0.0 ? spec.generate_full(seed) : spec.generate(scale, seed);
  write_snapshot(g, out);
  report_written(g, out);
  return 0;
}

int cmd_info(const std::string& path) {
  const SnapshotInfo info = snapshot_info(path);
  std::cout << "snapshot " << path << "\n"
            << "  version      " << info.version << "\n"
            << "  vertices     " << with_thousands(info.num_vertices) << "\n"
            << "  edges        " << with_thousands(info.half_edges / 2) << "\n"
            << "  fingerprint  " << to_hex(info.fingerprint) << "\n"
            << "  payload crc  " << to_hex(info.payload_crc) << "\n"
            << "  file bytes   " << with_thousands(info.file_bytes) << "\n";
  return 0;
}

int cmd_verify(const std::string& path) {
  // Header + payload CRC first (cheap, catches bit rot), then the full
  // structural validation (sortedness, symmetry) that mmap loads skip.
  const Graph g = load_snapshot(path, VerifyPayload::kFull);
  Graph{std::vector<EdgeIndex>(g.offsets().begin(), g.offsets().end()),
        std::vector<VertexId>(g.targets().begin(), g.targets().end())};
  std::cout << path << ": OK (n=" << with_thousands(g.num_vertices())
            << " m=" << with_thousands(g.num_edges()) << " fingerprint="
            << to_hex(g.fingerprint()) << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) return usage();
    const std::string& command = args[0];
    const std::size_t n = args.size();
    if (command == "convert" && n == 3) return cmd_convert(args[1], args[2]);
    if (command == "generate" && n == 5)
      return cmd_generate(args[1], std::atof(args[2].c_str()),
                          std::strtoull(args[3].c_str(), nullptr, 10),
                          args[4]);
    if (command == "info" && n == 2) return cmd_info(args[1]);
    if (command == "verify" && n == 2) return cmd_verify(args[1]);
    return usage();
  } catch (const IoError& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 65;  // EX_DATAERR
  } catch (const std::invalid_argument& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 65;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}

// sntrust_serve: stand up a TrustService on a graph and answer trust
// queries from the command line or a script (serve/trust_service.hpp).
//
//   sntrust_serve query <graph> <seeds> <command...>
//       One-shot: loads the graph (any format read_graph_auto sniffs,
//       including mmap snapshots), warms the per-defense artifacts, runs the
//       commands, exits. <seeds> is a comma-separated vertex list.
//   sntrust_serve repl <graph> <seeds>
//       Reads one command per line from stdin until EOF ("quit" also exits).
//   sntrust_serve bench-gen <dataset_id> <scale> <seeds> <command...>
//       Same as `query` against a generated Table-I analogue (bench seed),
//       so answers can be cross-checked against the serving bench/tests
//       without an on-disk graph.
//
// Commands:
//   admit <defense> <v>   admission verdict (defense: sybilrank|gatekeeper)
//   trust <defense> <v>   trust value + percentile under <defense>
//   coreness <v>          coreness + ECDF percentile
//   landmark <v>          landmark-walk probability at v (rel. stationary)
//   stats                 cache + service counters
//
// The service runs the same batched pipelined engine the serving bench
// drives (SNTRUST_SERVE_BATCH / SNTRUST_SERVE_QUEUE_CAP /
// SNTRUST_SERVE_CACHE_CAP apply); answers are bitwise identical to the
// direct and uncached paths. SNTRUST_DEADLINE_MS and SIGINT cancel
// cooperatively: unserved queries report status=cancelled and the process
// exits 75 with whatever completed. The same partial taxonomy covers the
// resilience layer: answers shed under overload print status=overloaded,
// queue-deadline misses print status=deadline_exceeded (both exit 75), and
// degraded answers carry ` degraded=yes source=<kind> staleness_ms=<age>`
// (see SNTRUST_SERVE_SHED_MS / SNTRUST_SERVE_STALE_MS / README).
//
// Exit codes: 0 success, 64 usage error, 65 bad input (unreadable graph,
// out-of-range vertex/seed, unknown command), 75 cancelled/overloaded/
// deadline partial, 1 internal error.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/cancel.hpp"
#include "gen/datasets.hpp"
#include "graph/io.hpp"
#include "obs/metrics.hpp"
#include "serve/trust_service.hpp"
#include "util/format.hpp"

namespace {

using namespace sntrust;
using serve::Answer;
using serve::Defense;
using serve::Query;
using serve::QueryKind;
using serve::QueryStatus;

constexpr std::uint64_t kBenchSeed = 20110621;

int usage() {
  std::cerr
      << "usage:\n"
         "  sntrust_serve query <graph> <seeds> <command...>\n"
         "  sntrust_serve repl <graph> <seeds>\n"
         "  sntrust_serve bench-gen <dataset_id> <scale> <seeds> "
         "<command...>\n"
         "commands: admit <sybilrank|gatekeeper> <v> | trust "
         "<sybilrank|gatekeeper> <v> | coreness <v> | landmark <v> | stats\n"
         "<seeds> is comma-separated, e.g. 0,1,2,3,4\n";
  return 64;  // EX_USAGE
}

std::vector<VertexId> parse_seeds(const std::string& text) {
  std::vector<VertexId> seeds;
  std::istringstream in{text};
  std::string item;
  while (std::getline(in, item, ',')) {
    std::size_t used = 0;
    const unsigned long value = std::stoul(item, &used);
    if (used != item.size())
      throw std::invalid_argument("bad seed list: " + text);
    seeds.push_back(static_cast<VertexId>(value));
  }
  if (seeds.empty()) throw std::invalid_argument("empty seed list");
  return seeds;
}

Defense parse_defense(const std::string& name) {
  if (name == "sybilrank") return Defense::kSybilRank;
  if (name == "gatekeeper") return Defense::kGateKeeper;
  throw std::invalid_argument("unknown defense: " + name +
                              " (want sybilrank|gatekeeper)");
}

const char* source_name(serve::AnswerSource source) {
  switch (source) {
    case serve::AnswerSource::kSybilRank:
      return "sybilrank";
    case serve::AnswerSource::kGateKeeper:
      return "gatekeeper";
    case serve::AnswerSource::kCoreness:
      return "coreness";
    case serve::AnswerSource::kLandmark:
      return "landmark";
  }
  return "?";
}

/// Prints one answer line; returns false for a refused (unserved) answer —
/// cancelled, shed, or past its deadline — which maps to exit 75.
bool print_answer(const Query& query, const Answer& answer) {
  switch (answer.status) {
    case QueryStatus::kCancelled:
      std::cout << "v=" << query.vertex << " status=cancelled\n";
      return false;
    case QueryStatus::kOverloaded:
      std::cout << "v=" << query.vertex << " status=overloaded\n";
      return false;
    case QueryStatus::kDeadlineExceeded:
      std::cout << "v=" << query.vertex << " status=deadline_exceeded\n";
      return false;
    case QueryStatus::kInvalidVertex:
      throw std::invalid_argument("vertex out of range: " +
                                  std::to_string(query.vertex));
    case QueryStatus::kOk:
      break;
  }
  std::cout << "v=" << query.vertex;
  switch (query.kind) {
    case QueryKind::kAdmission:
      std::cout << (query.defense == Defense::kGateKeeper ? " gatekeeper"
                                                          : " sybilrank")
                << " admitted=" << (answer.admitted ? "yes" : "no")
                << " value=" << answer.value
                << " percentile=" << fixed(answer.percentile, 4);
      break;
    case QueryKind::kTrustScore:
      std::cout << (query.defense == Defense::kGateKeeper ? " gatekeeper"
                                                          : " sybilrank")
                << " trust=" << answer.value
                << " percentile=" << fixed(answer.percentile, 4);
      break;
    case QueryKind::kCoreness:
      std::cout << " coreness=" << static_cast<std::uint64_t>(answer.value)
                << " percentile=" << fixed(answer.percentile, 4);
      break;
    case QueryKind::kLandmark:
      std::cout << " landmark_p=" << answer.value
                << " vs_stationary=" << fixed(answer.percentile, 3) << "x";
      break;
  }
  if (answer.degraded)
    std::cout << " degraded=yes source=" << source_name(answer.source)
              << " staleness_ms=" << fixed(answer.staleness_ms, 1);
  std::cout << "\n";
  return true;
}

void print_stats(serve::TrustService& service) {
  const obs::MetricsSnapshot snap = obs::Metrics::instance().snapshot();
  const auto counter = [&snap](const char* name) -> std::uint64_t {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  };
  std::cout << "graph: n=" << with_thousands(service.graph().num_vertices())
            << " m=" << with_thousands(service.graph().num_edges())
            << " fingerprint=" << to_hex(service.graph().fingerprint())
            << "\n"
            << "cache: entries=" << service.cache().size()
            << " hits=" << counter("serve.cache_hits")
            << " misses=" << counter("serve.cache_misses")
            << " evictions=" << counter("serve.cache_evictions")
            << " invalidations=" << counter("serve.cache_invalidations")
            << "\n"
            << "served: queries=" << counter("serve.queries")
            << " cancelled=" << counter("serve.cancelled")
            << " shed=" << counter("serve.shed")
            << " degraded=" << counter("serve.degraded")
            << " deadline_exceeded=" << counter("serve.deadline_exceeded")
            << " batches=" << counter("serve.batches")
            << " batch_size=" << service.batch_size() << "\n"
            << "resilience: breaker_opens=" << counter("serve.breaker_opens")
            << " breaker_closes=" << counter("serve.breaker_closes")
            << " retries=" << counter("serve.retries")
            << " stale_hits=" << counter("serve.cache_stale_hits") << "\n";
}

/// Executes one command (a token list); returns false once cancelled.
bool run_command(serve::TrustService& service,
                 const std::vector<std::string>& words) {
  if (words.empty()) return true;
  const std::string& op = words[0];
  if (op == "stats") {
    print_stats(service);
    return true;
  }
  Query query;
  if ((op == "admit" || op == "trust") && words.size() == 3) {
    query.kind = op == "admit" ? QueryKind::kAdmission : QueryKind::kTrustScore;
    query.defense = parse_defense(words[1]);
    query.vertex = static_cast<VertexId>(std::stoul(words[2]));
  } else if ((op == "coreness" || op == "landmark") && words.size() == 2) {
    query.kind = op == "coreness" ? QueryKind::kCoreness : QueryKind::kLandmark;
    query.vertex = static_cast<VertexId>(std::stoul(words[1]));
  } else {
    throw std::invalid_argument("unknown command: " + op);
  }
  return print_answer(query, service.ask(query));
}

int serve_commands(Graph graph, const std::vector<VertexId>& seeds,
                   const std::vector<std::vector<std::string>>& script,
                   bool repl) {
  serve::TrustService::Options options;
  options.config.seeds = seeds;
  options.config.gatekeeper.seed = kBenchSeed;
  serve::TrustService service{std::move(graph), std::move(options)};
  service.start();

  bool cancelled = false;
  const auto run = [&](const std::vector<std::string>& words) {
    if (!run_command(service, words)) cancelled = true;
  };
  for (const std::vector<std::string>& words : script) run(words);
  if (repl) {
    std::string line;
    while (!cancelled && std::getline(std::cin, line)) {
      std::istringstream in{line};
      std::vector<std::string> words;
      std::string word;
      while (in >> word) words.push_back(word);
      if (!words.empty() && (words[0] == "quit" || words[0] == "exit")) break;
      try {
        run(words);
      } catch (const std::invalid_argument& error) {
        // REPL keeps going on a bad line; scripts fail fast via exit 65.
        std::cout << "error: " << error.what() << "\n";
      }
    }
  }
  service.stop();
  if (cancelled) {
    std::cerr << "partial: some queries were refused "
                 "(cancelled/overloaded/deadline)\n";
    return 75;  // EX_TEMPFAIL-style partial, matching the bench taxonomy
  }
  return 0;
}

/// Splits trailing args into commands at ";" boundaries so one invocation
/// can run several queries: `admit sybilrank 7 ; stats`.
std::vector<std::vector<std::string>> split_script(
    const std::vector<std::string>& args, std::size_t first) {
  std::vector<std::vector<std::string>> script{{}};
  for (std::size_t i = first; i < args.size(); ++i) {
    if (args[i] == ";")
      script.emplace_back();
    else
      script.back().push_back(args[i]);
  }
  if (script.back().empty()) script.pop_back();
  return script;
}

}  // namespace

int main(int argc, char** argv) {
  exec::install_signal_handlers();
  try {
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) return usage();
    const std::string& command = args[0];
    if (command == "query" && args.size() >= 4)
      return serve_commands(read_graph_auto(args[1]), parse_seeds(args[2]),
                            split_script(args, 3), /*repl=*/false);
    if (command == "repl" && args.size() == 3)
      return serve_commands(read_graph_auto(args[1]), parse_seeds(args[2]), {},
                            /*repl=*/true);
    if (command == "bench-gen" && args.size() >= 5) {
      const DatasetSpec& spec = dataset_by_id(args[1]);
      const double scale = std::stod(args[2]);
      Graph graph = scale == 0.0 ? spec.generate_full(kBenchSeed)
                                 : spec.generate(scale, kBenchSeed);
      return serve_commands(std::move(graph), parse_seeds(args[3]),
                            split_script(args, 4), /*repl=*/false);
    }
    return usage();
  } catch (const sntrust::exec::CancelledError& error) {
    std::cerr << "interrupted: " << error.what() << "\n";
    return 75;
  } catch (const sntrust::IoError& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 65;  // EX_DATAERR
  } catch (const std::invalid_argument& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 65;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}

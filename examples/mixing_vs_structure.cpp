// Demonstrates the paper's central observation on controlled synthetic
// graphs: community structure (not size) drives the mixing time and the
// fragmentation of k-cores. Sweeps the inter-community edge probability of a
// planted-partition graph while holding n and average degree fixed.
//
//   ./mixing_vs_structure [n]
#include <cstdlib>
#include <iostream>

#include "community/community.hpp"
#include "cores/core_profile.hpp"
#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "markov/mixing.hpp"
#include "markov/spectral.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace sntrust;
  const auto n = static_cast<VertexId>(argc > 1 ? std::atoi(argv[1]) : 2000);

  std::cout << "Planted partition, n=" << n
            << ", 10 communities, within-degree ~12, sweeping cross-community "
               "degree:\n\n";

  Table table{{"cross-degree", "mu", "T(eps=0.01)", "max cores",
               "best conductance", "modularity (LP)"}};

  for (const double cross_degree : {0.2, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double size = n / 10.0;
    const double p_in = 12.0 / (size - 1);
    const double p_out = cross_degree / (n - size);
    const Graph g =
        largest_component(planted_partition(n, 10, p_in, p_out, 99)).graph;

    const double mu = second_largest_eigenvalue(g).mu;

    MixingOptions mixing_options;
    mixing_options.num_sources = 10;
    mixing_options.max_walk_length = 200;
    mixing_options.seed = 99;
    const std::uint32_t t =
        mixing_time_estimate(measure_mixing(g, mixing_options), 0.01);

    std::uint32_t max_cores = 0;
    for (const CoreLevel& level : core_profile(g))
      max_cores = std::max(max_cores, level.num_components);

    const SweepResult sweep = conductance_sweep(g, fiedler_vector(g));
    const Partition partition = label_propagation(g);

    table.add_row({fixed(cross_degree, 1), fixed(mu, 4),
                   t == 0xFFFFFFFFu ? "> 200" : std::to_string(t),
                   std::to_string(max_cores),
                   fixed(sweep.best_conductance, 4),
                   fixed(modularity(g, partition), 3)});
  }

  table.print(std::cout);
  std::cout << "\nWeaker communities (more cross edges) -> smaller mu, faster "
               "mixing, fewer isolated cores, higher conductance: the "
               "paper's fast-mixing signature.\n";
  return 0;
}

// Quickstart: generate a social-graph analogue, run the full property suite
// (the paper's methodology), and print a one-page report.
//
//   ./quickstart [dataset_id] [scale]
//
// Defaults: wiki_vote at scale 0.25.
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/property_suite.hpp"
#include "gen/datasets.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace sntrust;
  const std::string id = argc > 1 ? argv[1] : "wiki_vote";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.25;

  const DatasetSpec& spec = dataset_by_id(id);
  std::cout << "Generating analogue of " << spec.name << " (" << spec.social_model
            << ", expected mixing: " << to_string(spec.expected_class)
            << ") at scale " << scale << "...\n";
  const Graph g = spec.generate(scale, /*seed=*/2026);

  PropertySuiteOptions options;
  options.mixing_sources = 20;
  options.mixing_max_walk = 120;
  options.expansion_sources = 500;
  const PropertyReport report = measure_properties(g, options);
  const PropertyVerdict verdict = classify(report);

  Table table{{"property", "value"}};
  table.add_row({"nodes", with_thousands(report.nodes)});
  table.add_row({"edges", with_thousands(report.edges)});
  table.add_row({"second largest eigenvalue (mu)", fixed(report.slem.mu, 4)});
  table.add_row({"Sinclair lower bound T(eps)", fixed(report.bounds.lower, 1)});
  table.add_row({"Sinclair upper bound T(eps)", fixed(report.bounds.upper, 1)});
  table.add_row({"sampled mixing time T(eps)",
                 report.mixing_time == 0xFFFFFFFFu
                     ? "> " + std::to_string(options.mixing_max_walk)
                     : std::to_string(report.mixing_time)});
  table.add_row({"degeneracy (max coreness)",
                 std::to_string(report.degeneracy)});
  table.add_row({"innermost core relative size (nu)",
                 fixed(report.top_core_relative_size, 4)});
  table.add_row({"max simultaneous cores",
                 std::to_string(report.max_core_count)});
  table.add_row({"min expansion factor", fixed(report.min_expansion_factor, 4)});
  table.add_row({"verdict: fast mixing", verdict.fast_mixing ? "yes" : "no"});
  table.add_row({"verdict: single core", verdict.single_core ? "yes" : "no"});
  table.add_row({"verdict: good expander",
                 verdict.good_expander ? "yes" : "no"});
  table.print(std::cout);

  std::cout << "\nTVD decay (mean over " << report.mixing.sources.size()
            << " sources):\n";
  const auto mean = report.mixing.mean_curve();
  for (std::uint32_t t = 0; t < mean.size(); t += 10)
    std::cout << "  t=" << t << "  tvd=" << fixed(mean[t], 4) << "\n";
  return 0;
}

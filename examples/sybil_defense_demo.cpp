// Sybil defense demo: attach a Sybil region to a social graph with a limited
// number of attack edges and run all five defenses side by side —
// GateKeeper, SybilGuard, SybilLimit, SybilInfer-lite and SumUp — printing
// honest acceptance and Sybils (or Sybil votes) admitted per attack edge.
//
//   ./sybil_defense_demo [dataset_id] [attack_edges]
#include <cstdlib>
#include <iostream>
#include <string>

#include "gen/datasets.hpp"
#include "report/table.hpp"
#include "sybil/attack.hpp"
#include "sybil/community_defense.hpp"
#include "sybil/gatekeeper.hpp"
#include "sybil/sybilrank.hpp"
#include "sybil/sumup.hpp"
#include "sybil/sybilguard.hpp"
#include "sybil/sybilinfer.hpp"
#include "sybil/sybillimit.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace sntrust;
  const std::string id = argc > 1 ? argv[1] : "rice_grad";
  const auto attack_edges =
      static_cast<std::uint32_t>(argc > 2 ? std::atoi(argv[2]) : 12);

  const Graph honest = dataset_by_id(id).generate(1.0, 7);
  AttackParams attack;
  attack.num_sybils = std::max<VertexId>(50, honest.num_vertices() / 4);
  attack.attack_edges = attack_edges;
  attack.seed = 7;
  const AttackedGraph attacked{honest, attack};

  std::cout << "Honest region: " << with_thousands(attacked.num_honest())
            << " nodes; Sybil region: " << with_thousands(attacked.num_sybils())
            << " identities behind " << attack_edges << " attack edges.\n"
            << "Unfiltered, each attack edge would admit "
            << fixed(static_cast<double>(attacked.num_sybils()) / attack_edges, 1)
            << " Sybils.\n\n";

  Table table{{"defense", "honest accepted", "sybils per attack edge"}};

  {
    GateKeeperParams params;
    params.num_distributers = 50;
    params.f_admit = 0.1;
    params.seed = 7;
    const GateKeeperEvaluation eval = evaluate_gatekeeper(attacked, 0, params);
    table.add_row({"GateKeeper (f=0.1)",
                   fixed(100 * eval.honest_accept_fraction, 1) + "%",
                   fixed(eval.sybils_per_attack_edge, 2)});
  }
  {
    SybilGuardParams params;
    params.seed = 7;
    const PairwiseEvaluation eval =
        evaluate_sybilguard(attacked, 0, params, 100, 100, 7);
    table.add_row({"SybilGuard",
                   fixed(100 * eval.honest_accept_fraction, 1) + "%",
                   fixed(eval.sybils_per_attack_edge, 2)});
  }
  {
    SybilLimitParams params;
    params.seed = 7;
    const PairwiseEvaluation eval =
        evaluate_sybillimit(attacked, 0, params, 100, 100, 7);
    table.add_row({"SybilLimit",
                   fixed(100 * eval.honest_accept_fraction, 1) + "%",
                   fixed(eval.sybils_per_attack_edge, 2)});
  }
  {
    SybilInferParams params;
    params.seed = 7;
    const PairwiseEvaluation eval = evaluate_sybilinfer(attacked, 0, params);
    table.add_row({"SybilInfer-lite",
                   fixed(100 * eval.honest_accept_fraction, 1) + "%",
                   fixed(eval.sybils_per_attack_edge, 2)});
  }
  {
    const PairwiseEvaluation eval = evaluate_sybilrank(attacked, {0, 1, 2});
    table.add_row({"SybilRank",
                   fixed(100 * eval.honest_accept_fraction, 1) + "%",
                   fixed(eval.sybils_per_attack_edge, 2)});
  }
  {
    const PairwiseEvaluation eval = evaluate_community_defense(attacked, 0);
    table.add_row({"Community expansion",
                   fixed(100 * eval.honest_accept_fraction, 1) + "%",
                   fixed(eval.sybils_per_attack_edge, 2)});
  }
  {
    SumUpParams params;
    params.seed = 7;
    params.expected_votes = attacked.num_honest() / 10;
    const SumUpEvaluation eval =
        evaluate_sumup(attacked, 0, attacked.num_honest() / 10, params);
    table.add_row({"SumUp (votes)",
                   fixed(100 * eval.honest_collect_fraction, 1) + "%",
                   fixed(eval.sybil_votes_per_attack_edge, 2)});
  }

  table.print(std::cout);
  std::cout << "\nAll defenses bound admitted Sybils by the attack-edge "
               "count, not the Sybil population — the property the paper's "
               "measured graph characteristics underwrite.\n";
  return 0;
}

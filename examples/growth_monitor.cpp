// Growth monitor: replays a social-graph growth process and reports how the
// trustworthy-computing properties evolve — the paper's Sec.-VI open
// problem, runnable. Compares a weak-trust process (preferential
// attachment) with a strict-trust one (regional affiliation).
//
//   ./growth_monitor [final_n]
#include <cstdlib>
#include <iostream>

#include "dynamic/evolution.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

namespace {

void report(const std::string& title,
            const std::vector<sntrust::EvolutionPoint>& points) {
  using namespace sntrust;
  std::cout << "--- " << title << " ---\n";
  Table table{{"snapshot n", "mu", "degeneracy", "max cores",
               "min expansion"}};
  for (const EvolutionPoint& p : points)
    table.add_row({with_thousands(p.snapshot_vertices), fixed(p.mu, 4),
                   std::to_string(p.degeneracy),
                   std::to_string(p.max_core_count),
                   fixed(p.min_expansion_factor, 3)});
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sntrust;
  const auto n = static_cast<VertexId>(argc > 1 ? std::atoi(argv[1]) : 4000);
  const std::vector<VertexId> sizes{n / 8, n / 4, n / 2, n};

  EvolutionOptions options;
  options.expansion_sources = 300;

  report("weak-trust growth (preferential attachment, m=4)",
         measure_evolution(preferential_attachment_trace(n, 4, 11), sizes,
                           options));
  report("strict-trust growth (affiliation, 16 regions)",
         measure_evolution(affiliation_trace(n, 16, 1.2, 11), sizes,
                           options));

  std::cout << "A deployed Sybil defense would need to re-validate its "
               "mixing/expansion assumptions as the strict-trust network "
               "grows: its mu creeps toward 1 and its cores fragment, while "
               "the weak-trust network's properties are scale-stable.\n";
  return 0;
}

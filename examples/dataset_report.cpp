// Prints the full Table-I-style inventory: every registered dataset
// analogue with its paper metadata and (optionally) freshly measured
// structural statistics.
//
//   ./dataset_report          # metadata only (instant)
//   ./dataset_report measure  # also generate at small scale and measure
#include <iostream>
#include <string>

#include "gen/datasets.hpp"
#include "graph/stats.hpp"
#include "markov/spectral.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace sntrust;
  const bool measure = argc > 1 && std::string(argv[1]) == "measure";

  if (!measure) {
    Table table{{"id", "name", "paper nodes", "paper edges", "paper mu",
                 "class", "social model"}};
    for (const DatasetSpec& spec : all_datasets()) {
      table.add_row({spec.id, spec.name, with_thousands(spec.paper_nodes),
                     with_thousands(spec.paper_edges),
                     spec.paper_mu ? fixed(*spec.paper_mu, 3) : "n/a",
                     to_string(spec.expected_class), spec.social_model});
    }
    table.print(std::cout);
    std::cout << "\nRun with 'measure' to generate each analogue at 10% "
                 "scale and measure it.\n";
    return 0;
  }

  Table table{{"name", "nodes", "edges", "mean deg", "clustering", "mu",
               "class"}};
  for (const DatasetSpec& spec : all_datasets()) {
    const Graph g = spec.generate(0.1, 4);
    const DegreeStats degrees = degree_stats(g);
    const double clustering = average_local_clustering(g);
    const double mu = second_largest_eigenvalue(g).mu;
    table.add_row({spec.name, with_thousands(g.num_vertices()),
                   with_thousands(g.num_edges()), fixed(degrees.mean, 1),
                   fixed(clustering, 3), fixed(mu, 4),
                   to_string(spec.expected_class)});
    std::cout << "measured " << spec.name << "\n";
  }
  std::cout << "\n";
  table.print(std::cout);
  return 0;
}

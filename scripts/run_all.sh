#!/usr/bin/env bash
# Builds, tests, and regenerates every paper artifact, capturing the runs at
# the repository root (the files EXPERIMENTS.md points to).
#
# Uses Ninja when available but does not require it — tier-1 CI runs the
# default generator.
set -euo pipefail
cd "$(dirname "$0")/.."

GENERATOR=()
if command -v ninja >/dev/null 2>&1; then
  GENERATOR=(-G Ninja)
fi

cmake -B build -S . "${GENERATOR[@]}"
cmake --build build -j "$(nproc)"
ctest --test-dir build 2>&1 | tee test_output.txt

# Each bench writes a JSON run report (config, totals, span timings with
# resource columns, metrics) next to the text output it already produces,
# plus a live JSONL telemetry stream (latency quantiles, CPU/RSS totals)
# under telemetry/ — tail the current bench's stream to watch it run.
REPORT_DIR="reports/$(date +%Y%m%d-%H%M%S)"
mkdir -p "$REPORT_DIR/telemetry"
for b in build/bench/*; do
  SNTRUST_REPORT="$REPORT_DIR/$(basename "$b").json" \
    SNTRUST_TELEMETRY="$REPORT_DIR/telemetry/$(basename "$b").jsonl:1000" \
    "$b"
done 2>&1 | tee bench_output.txt

echo "run reports: $REPORT_DIR"
./build/tools/sntrust_benchdiff --summary "$REPORT_DIR"/*.json

#!/usr/bin/env bash
# Builds, tests, and regenerates every paper artifact, capturing the runs at
# the repository root (the files EXPERIMENTS.md points to).
#
# Uses Ninja when available but does not require it — tier-1 CI runs the
# default generator.
set -euo pipefail
cd "$(dirname "$0")/.."

GENERATOR=()
if command -v ninja >/dev/null 2>&1; then
  GENERATOR=(-G Ninja)
fi

cmake -B build -S . "${GENERATOR[@]}"
cmake --build build -j "$(nproc)"
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt

#!/usr/bin/env bash
# Runs the measurement benches at the paper's Table-I dataset sizes
# (SNTRUST_FULL_SCALE=1 cancels every DatasetSpec::default_scale, so
# livejournal targets ~4.8M vertices).
#
# Generating the large analogues costs minutes and GBs of CSR, so this
# script materializes each graph once as a zero-copy snapshot
# (graph/snapshot.hpp) under $SNAP_DIR; with SNTRUST_SNAPSHOT set the
# benches mmap the snapshot on every later run — milliseconds instead of
# regeneration.
#
# Fallback: machines without the RAM for the full livejournal CSR can pass
# an SNTRUST_SCALE multiplier instead of going full-scale, e.g.
# `scripts/run_full_scale.sh 8` runs every dataset at 8x the default bench
# sizing — a fraction of Table-I, but far past the smoke sizes. The recorded
# baseline bench/baselines/full_scale.json documents which mode the
# reference numbers were captured in.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE_CAP="${1:-full}"   # "full" = Table-I size; a number = SNTRUST_SCALE
SNAP_DIR="${SNTRUST_SNAPSHOT_DIR:-snapshots}"
REPORT_DIR="reports/full-scale-$(date +%Y%m%d-%H%M%S)"
mkdir -p "$SNAP_DIR" "$REPORT_DIR"

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"

# The matvec-heaviest figures; add more benches here as budget allows.
BENCHES=(fig1_mixing_time fig2_coreness_ecdf fig4_expansion_factor)

for b in "${BENCHES[@]}"; do
  if [ "$SCALE_CAP" = "full" ]; then
    SNTRUST_FULL_SCALE=1 SNTRUST_SNAPSHOT="$SNAP_DIR" \
      SNTRUST_REPORT="$REPORT_DIR/$b.json" \
      "build/bench/$b"
  else
    SNTRUST_SCALE="$SCALE_CAP" SNTRUST_SNAPSHOT="$SNAP_DIR" \
      SNTRUST_REPORT="$REPORT_DIR/$b.json" \
      "build/bench/$b"
  fi
done 2>&1 | tee "$REPORT_DIR/output.txt"

# Wall-clock and peak-RSS summary (the run reports carry both in totals).
./build/tools/sntrust_benchdiff --summary "$REPORT_DIR"/*.json
echo "full-scale reports: $REPORT_DIR (snapshots cached in $SNAP_DIR)"

// Chaos harness for the trust-query serving layer (DESIGN.md §16): drives
// one TrustService through four phases — clean baseline, overload (drain
// stalls injected at the `serve.queue` fault site), artifact-recompute
// failure (`serve.artifact` throws; circuit breakers trip and the service
// answers from stale backups), and graph churn (batched edge inserts/
// deletes with background refresh) — and reports goodput, shed rate,
// degraded fraction, and per-phase p99 latency.
//
// Invariants checked (the run exits 1 when any fails):
//   * every NON-degraded answer sampled in any phase is bitwise identical
//     (memcmp) to the uncached recompute reference on the graph being
//     served — chaos may degrade or refuse answers, never corrupt them;
//   * degraded answers are honestly labelled: a positive staleness bound
//     or a ladder-fallback source, never a fresh-looking payload;
//   * the artifact-fault phase trips the breakers open
//     (serve.breaker_opens > 0) and re-closes them after the fault lifts
//     (serve.breaker_closes > 0) — warned here, asserted by the CI job;
//   * churn bumps the epoch and converges to fresh answers matching the
//     uncached reference on the post-churn graph.
//
// Everything is a pure function of kBenchSeed (fault plans are
// deterministic Bernoulli trials keyed by (seed, site, index); see
// exec/fault.hpp), though phase timings — and therefore exactly *which*
// queries shed — vary with machine load; only the invariants above are
// hard-checked. Knobs: SNTRUST_SCALE, SNTRUST_CHAOS_QUERIES (per phase,
// default 20,000 * scale), SNTRUST_CHAOS_CLIENTS (default 4),
// SNTRUST_CHAOS_SHED_MS (CoDel target, default 2 ms).
#include <atomic>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "dynamic/evolution.hpp"
#include "exec/fault.hpp"
#include "obs/quantile.hpp"
#include "report/table.hpp"
#include "serve/trust_service.hpp"
#include "serve/zipf.hpp"
#include "util/format.hpp"

namespace {

using namespace sntrust;
using serve::Answer;
using serve::Defense;
using serve::Query;
using serve::QueryKind;
using serve::QueryStatus;

std::uint64_t counter_value(const char* name) {
  const obs::MetricsSnapshot snap = obs::Metrics::instance().snapshot();
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

/// The serving bench's query mix (Zipf targets, admission/read blend).
Query next_query(Rng& rng, const serve::ZipfGenerator& zipf) {
  Query query;
  query.vertex = static_cast<VertexId>(zipf(rng));
  const double mix = rng.uniform_real();
  if (mix < 0.5) {
    query.kind = QueryKind::kAdmission;
    query.defense =
        rng.bernoulli(0.5) ? Defense::kSybilRank : Defense::kGateKeeper;
  } else if (mix < 0.7) {
    query.kind = QueryKind::kTrustScore;
    query.defense =
        rng.bernoulli(0.5) ? Defense::kSybilRank : Defense::kGateKeeper;
  } else if (mix < 0.85) {
    query.kind = QueryKind::kCoreness;
  } else {
    query.kind = QueryKind::kLandmark;
  }
  return query;
}

/// Counters a phase reports as deltas, snapshotted at phase start.
struct CounterBase {
  std::uint64_t shed, degraded, deadline;
  static CounterBase now() {
    return {counter_value("serve.shed"), counter_value("serve.degraded"),
            counter_value("serve.deadline_exceeded")};
  }
};

struct PhaseReport {
  std::uint64_t submitted = 0;
  std::uint64_t goodput = 0;  ///< answers with a computed (kOk) status
  std::uint64_t shed = 0;
  std::uint64_t degraded = 0;
  std::uint64_t deadline = 0;
  double p99_ms = 0.0;
  double elapsed_ms = 0.0;
};

/// Closed-loop drive: `clients` threads submit `total` queries in batches
/// of 64 through the pipelined engine; per-phase p99 comes from resetting
/// the cumulative serve.query_ms histogram at phase start.
PhaseReport drive(serve::TrustService& service,
                  const serve::ZipfGenerator& zipf, std::uint64_t total,
                  std::uint32_t clients, std::uint64_t phase_salt,
                  std::uint32_t deadline_ms) {
  const CounterBase base = CounterBase::now();
  obs::metrics_quantile("serve.query_ms").reset();
  std::atomic<std::uint64_t> good{0};
  std::vector<std::thread> workers;
  obs::Stopwatch timer;
  for (std::uint32_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      constexpr std::uint32_t kClientBatch = 64;
      Rng rng{stream_seed(bench::kBenchSeed + phase_salt, c)};
      std::uint64_t budget = total / clients + (c < total % clients ? 1 : 0);
      std::vector<Query> queries(kClientBatch);
      std::vector<Answer> answers(kClientBatch);
      while (budget > 0) {
        const std::size_t take = budget < kClientBatch
                                     ? static_cast<std::size_t>(budget)
                                     : kClientBatch;
        for (std::size_t i = 0; i < take; ++i) {
          queries[i] = next_query(rng, zipf);
          queries[i].deadline_ms = deadline_ms;
        }
        good.fetch_add(
            service.ask_batch(std::span<const Query>{queries.data(), take},
                              std::span<Answer>{answers.data(), take}),
            std::memory_order_relaxed);
        budget -= take;
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const CounterBase end = CounterBase::now();
  PhaseReport report;
  report.submitted = total;
  report.goodput = good.load();
  report.shed = end.shed - base.shed;
  report.degraded = end.degraded - base.degraded;
  report.deadline = end.deadline - base.deadline;
  report.elapsed_ms = timer.elapsed_ms();
  const obs::QuantileSnapshot lat =
      obs::metrics_quantile("serve.query_ms").snapshot();
  report.p99_ms = lat.count > 0 ? lat.value_at_quantile(0.99) : 0.0;
  return report;
}

void print_phase(const char* name, const PhaseReport& r) {
  const double frac =
      r.submitted == 0 ? 0.0
                       : static_cast<double>(r.goodput) /
                             static_cast<double>(r.submitted);
  std::cout << name << ": " << with_thousands(r.submitted) << " submitted, "
            << with_thousands(r.goodput) << " served ("
            << fixed(100.0 * frac, 1) << "%), shed=" << with_thousands(r.shed)
            << " degraded=" << with_thousands(r.degraded)
            << " deadline=" << with_thousands(r.deadline)
            << ", p99=" << fixed(r.p99_ms, 3) << " ms, "
            << fixed(1000.0 * static_cast<double>(r.goodput) /
                         (r.elapsed_ms > 0 ? r.elapsed_ms : 1.0),
                     0)
            << " qps\n";
}

/// Byte-checks `count` sampled queries: every non-degraded answer from the
/// service must memcmp-equal the uncached recompute reference. Degraded
/// answers must be honestly labelled (positive staleness or a fallback
/// source) and are exempt from identity. Returns false on any violation.
bool check_identity(serve::TrustService& service,
                    const serve::ZipfGenerator& zipf, std::uint64_t salt,
                    std::uint32_t count, std::uint64_t* degraded_seen) {
  Rng rng{stream_seed(bench::kBenchSeed, salt)};
  bool ok = true;
  for (std::uint32_t i = 0; i < count; ++i) {
    const Query query = next_query(rng, zipf);
    const Answer got = service.answer(query);
    if (got.status != QueryStatus::kOk) continue;  // refusals are explicit
    if (got.degraded) {
      if (degraded_seen != nullptr) ++*degraded_seen;
      const auto primary_source =
          query.kind == QueryKind::kCoreness ? serve::AnswerSource::kCoreness
          : query.kind == QueryKind::kLandmark
              ? serve::AnswerSource::kLandmark
          : query.defense == Defense::kGateKeeper
              ? serve::AnswerSource::kGateKeeper
              : serve::AnswerSource::kSybilRank;
      if (got.staleness_ms <= 0.0 && got.source == primary_source) {
        std::cerr << "error: degraded answer without staleness bound or "
                     "fallback source (v="
                  << query.vertex << ")\n";
        ok = false;
      }
      continue;
    }
    const Answer reference = service.answer_uncached(query);
    if (std::memcmp(&got, &reference, sizeof(Answer)) != 0) {
      std::cerr << "error: non-degraded answer diverged from uncached "
                   "reference (v="
                << query.vertex << " kind=" << static_cast<int>(query.kind)
                << ")\n";
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main() {
  return bench::guarded_main([] {
    bench::Section section{"Application: serving under fire (chaos harness)"};
    obs::RunReporter::instance().set_config("bench", "app_chaos");

    const std::uint64_t phase_queries = static_cast<std::uint64_t>(
        env_int("SNTRUST_CHAOS_QUERIES",
                static_cast<std::int64_t>(20'000 * bench_scale())));
    const std::uint32_t clients =
        static_cast<std::uint32_t>(env_int("SNTRUST_CHAOS_CLIENTS", 4));
    const double shed_ms = env_double("SNTRUST_CHAOS_SHED_MS", 2.0);

    const DatasetSpec& spec = dataset_by_id("epinion");
    Graph graph = bench::dataset_graph(spec, 0.35);
    const VertexId n = graph.num_vertices();
    std::cout << "dataset " << spec.id << ": n=" << with_thousands(n)
              << " m=" << with_thousands(graph.num_edges()) << ", "
              << with_thousands(phase_queries) << " queries/phase, "
              << clients << " clients, shed target " << shed_ms << " ms\n\n";

    serve::TrustService::Options options;
    options.config.seeds = {0, 1, 2, 3, 4};
    options.config.gatekeeper.seed = bench::kBenchSeed;
    options.batch_size = 128;
    options.queue_capacity = 512;
    options.resilience.shed_ms = shed_ms;
    options.resilience.stale_ms = 60'000.0;
    options.resilience.retries = 2;
    options.resilience.breaker = serve::BreakerOptions{3, 200};
    serve::TrustService service{std::move(graph), std::move(options)};
    service.start();
    const serve::ZipfGenerator zipf{n, 0.99};
    obs::RunReporter::instance().set_config("chaos_queries", phase_queries);
    obs::RunReporter::instance().set_config("chaos_clients", clients);

    bool identical = true;
    std::uint64_t degraded_sampled = 0;

    // --- Phase 1: clean baseline, no faults. Everything fresh and bitwise
    // identical to the uncached reference.
    PhaseReport baseline;
    {
      bench::Section phase{"phase 1: baseline (no faults)"};
      baseline = drive(service, zipf, phase_queries, clients, 101, 0);
      print_phase("baseline", baseline);
      identical &= check_identity(service, zipf, 1101, 8, nullptr);
      if (baseline.shed != 0 || baseline.degraded != 0)
        std::cout << "note: baseline saw shed/degraded activity (machine "
                     "under external load?)\n";
    }

    // --- Phase 2: overload. The serve.queue fault site parks the drain
    // worker ~8 ms on most batches; queue sojourn blows through the CoDel
    // target, the controller sheds, and queries carrying a 25 ms deadline
    // may expire in queue. Goodput drops; the service never blocks.
    PhaseReport overload;
    {
      bench::Section phase{"phase 2: overload (drain stalls injected)"};
      exec::set_fault_plan({"serve.queue", bench::kBenchSeed, 0.6,
                            exec::FaultPlan::Action::kSleep, 8});
      overload = drive(service, zipf, phase_queries, clients, 202, 25);
      exec::clear_fault_plan();
      print_phase("overload", overload);
      if (overload.shed == 0)
        std::cout << "WARNING: overload phase shed nothing — the stall "
                     "injection did not outrun this machine\n";
      // Let the controller observe the drained ring and disengage before
      // the next phase measures.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    // --- Phase 3: artifact-recompute failure. Every recomputation throws;
    // the cache is invalidated so the service must re-resolve, the breakers
    // trip open, and answers come from the last-good stale backups,
    // honestly flagged. Lifting the fault lets the half-open probes
    // re-close the breakers and answers return to bitwise-fresh.
    std::uint64_t breaker_opens = 0;
    std::uint64_t breaker_closes = 0;
    std::uint64_t fault_degraded = 0;
    {
      bench::Section phase{"phase 3: artifact faults (breaker + stale)"};
      const std::uint64_t opens0 = counter_value("serve.breaker_opens");
      const std::uint64_t closes0 = counter_value("serve.breaker_closes");
      const std::uint64_t degraded0 = counter_value("serve.degraded");
      exec::set_fault_plan({"serve.artifact", bench::kBenchSeed, 1.0});
      service.cache().invalidate_all();
      const PhaseReport faulted =
          drive(service, zipf, phase_queries / 4, clients, 303, 0);
      print_phase("faulted", faulted);
      identical &= check_identity(service, zipf, 1303, 8, &degraded_sampled);
      breaker_opens = counter_value("serve.breaker_opens") - opens0;
      fault_degraded = counter_value("serve.degraded") - degraded0;
      std::cout << "breaker opens: " << breaker_opens
                << ", degraded answers: " << with_thousands(fault_degraded)
                << ", stale hits: " << counter_value("serve.cache_stale_hits")
                << "\n";

      exec::clear_fault_plan();
      std::this_thread::sleep_for(std::chrono::milliseconds(250));  // cooldown
      const PhaseReport recovered =
          drive(service, zipf, phase_queries / 4, clients, 304, 0);
      print_phase("recovered", recovered);
      identical &= check_identity(service, zipf, 1304, 8, nullptr);
      breaker_closes = counter_value("serve.breaker_closes") - closes0;
      std::cout << "breaker closes: " << breaker_closes << "\n";
      if (breaker_opens == 0 || breaker_closes == 0)
        std::cout << "WARNING: breaker did not complete an open/close "
                     "cycle\n";
    }

    // --- Phase 4: churn. A deterministic edge batch (new vertices joining
    // + random removals) goes through apply_edges; queries keep flowing
    // against the demoted snapshot while the background refresh recomputes,
    // then answers must match the uncached reference on the new graph.
    std::uint64_t churn_epoch = 0;
    {
      bench::Section phase{"phase 4: churn (batched edge insert/delete)"};
      Rng rng{stream_seed(bench::kBenchSeed, 404)};
      EdgeBatch batch;
      const VertexId base_n = service.graph().num_vertices();
      for (VertexId i = 0; i < 32; ++i) {  // growth: new vertices join
        batch.insertions.push_back(
            {base_n + i, static_cast<VertexId>(rng.uniform(base_n))});
      }
      const std::vector<Edge> existing = service.graph().edges();
      for (int i = 0; i < 16; ++i) {  // decay: random existing edges drop
        batch.removals.push_back(existing[rng.uniform(existing.size())]);
      }
      std::thread churner{[&] { service.apply_edges(batch); }};
      // Queries flow while the refresh runs — availability under churn.
      const PhaseReport churning =
          drive(service, zipf, phase_queries / 4, clients, 405, 0);
      churner.join();
      service.wait_for_refresh();
      print_phase("churning", churning);
      churn_epoch = service.epoch();
      const serve::ZipfGenerator zipf_after{service.graph().num_vertices(),
                                            0.99};
      identical &= check_identity(service, zipf_after, 1405, 8, nullptr);
      std::cout << "epoch after churn: " << churn_epoch << " (graph now n="
                << with_thousands(service.graph().num_vertices())
                << " m=" << with_thousands(service.graph().num_edges())
                << ")\n";
    }

    service.stop();

    std::cout << "non-degraded answers == uncached reference: "
              << (identical ? "yes" : "NO — DIVERGED") << "\n\n";

    obs::RunReporter::instance().set_config("chaos_identical", identical);
    obs::RunReporter::instance().set_config("chaos_shed", overload.shed);
    obs::RunReporter::instance().set_config("chaos_degraded", fault_degraded);
    obs::RunReporter::instance().set_config("chaos_breaker_opens",
                                            breaker_opens);
    obs::RunReporter::instance().set_config("chaos_breaker_closes",
                                            breaker_closes);
    obs::RunReporter::instance().set_config("chaos_epoch", churn_epoch);
    obs::RunReporter::instance().set_config("baseline_p99_ms",
                                            baseline.p99_ms);
    obs::RunReporter::instance().set_config("overload_p99_ms",
                                            overload.p99_ms);
    obs::RunReporter::instance().set_config(
        "baseline_qps", 1000.0 * static_cast<double>(baseline.goodput) /
                            (baseline.elapsed_ms > 0 ? baseline.elapsed_ms
                                                     : 1.0));

    Table table{{"metric", "value"}};
    table.add_row({"baseline p99", fixed(baseline.p99_ms, 3) + " ms"});
    table.add_row({"overload p99", fixed(overload.p99_ms, 3) + " ms"});
    table.add_row({"overload shed", with_thousands(overload.shed)});
    table.add_row({"degraded answers", with_thousands(fault_degraded)});
    table.add_row({"breaker opens/closes",
                   std::to_string(breaker_opens) + "/" +
                       std::to_string(breaker_closes)});
    table.add_row({"retries", with_thousands(counter_value("serve.retries"))});
    table.add_row({"stale hits",
                   with_thousands(counter_value("serve.cache_stale_hits"))});
    table.print(std::cout);
    std::cout << "Expected shape: overload converts excess load into "
                 "explicit sheds while p99 stays bounded (instead of "
                 "growing with the backlog); artifact faults trip the "
                 "breakers and the service keeps answering from stale "
                 "artifacts, honestly flagged; churn refreshes in the "
                 "background and answers converge back to the uncached "
                 "reference.\n";
    return identical ? 0 : 1;
  });
}

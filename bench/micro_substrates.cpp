// Google-benchmark microbenchmarks for the substrates: generator throughput,
// BFS, k-core decomposition, transition-matrix application, SLEM power
// iteration and random-route following.
#include <benchmark/benchmark.h>

#include <map>

#include "centrality/centrality.hpp"
#include "community/community.hpp"
#include "cores/kcore.hpp"
#include "expansion/expansion_profile.hpp"
#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "graph/traversal.hpp"
#include "markov/lanczos.hpp"
#include "markov/transition.hpp"
#include "markov/walker.hpp"
#include "sybil/gatekeeper.hpp"

namespace {

using namespace sntrust;

const Graph& shared_graph(std::int64_t n) {
  static std::map<std::int64_t, Graph> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache
             .emplace(n, largest_component(
                             barabasi_albert(static_cast<VertexId>(n), 5, 42))
                             .graph)
             .first;
  }
  return it->second;
}

void BM_GenerateBarabasiAlbert(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(barabasi_albert(n, 5, 42));
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GenerateBarabasiAlbert)->Arg(1000)->Arg(10000);

void BM_GeneratePlantedPartition(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        planted_partition(n, 10, 40.0 / n * 10, 4.0 / n, 42));
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GeneratePlantedPartition)->Arg(1000)->Arg(10000);

void BM_Bfs(benchmark::State& state) {
  const Graph& g = shared_graph(state.range(0));
  BfsRunner runner{g};
  VertexId source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(source));
    source = (source + 1) % g.num_vertices();
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_Bfs)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_CoreDecomposition(benchmark::State& state) {
  const Graph& g = shared_graph(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(core_decomposition(g));
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_CoreDecomposition)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_TransitionStep(benchmark::State& state) {
  const Graph& g = shared_graph(state.range(0));
  Distribution p = dirac(g.num_vertices(), 0);
  Distribution out(g.num_vertices());
  for (auto _ : state) {
    step_distribution(g, p, out);
    p.swap(out);
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.num_edges());
}
BENCHMARK(BM_TransitionStep)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_RandomWalk(benchmark::State& state) {
  const Graph& g = shared_graph(10000);
  RandomWalker walker{g, 7};
  const auto length = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(walker.walk_endpoint(0, length));
  state.SetItemsProcessed(state.iterations() * length);
}
BENCHMARK(BM_RandomWalk)->Arg(10)->Arg(100)->Arg(1000);

void BM_HashedRouteTail(benchmark::State& state) {
  const Graph& g = shared_graph(10000);
  const HashedRoutes routes{g, 11};
  std::uint32_t instance = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(routes.route_tail(0, 0, 15, instance));
    ++instance;
  }
  state.SetItemsProcessed(state.iterations() * 15);
}
BENCHMARK(BM_HashedRouteTail);

void BM_LanczosSpectrum(benchmark::State& state) {
  const Graph& g = shared_graph(state.range(0));
  LanczosOptions options;
  options.num_eigenvalues = 4;
  for (auto _ : state)
    benchmark::DoNotOptimize(lanczos_spectrum(g, options));
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_LanczosSpectrum)->Arg(1000)->Arg(10000);

void BM_Louvain(benchmark::State& state) {
  const Graph& g = shared_graph(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(louvain(g));
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_Louvain)->Arg(1000)->Arg(10000);

void BM_BetweennessSampled(benchmark::State& state) {
  const Graph& g = shared_graph(10000);
  CentralityOptions options;
  options.num_sources = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(betweenness_centrality(g, options));
  state.SetItemsProcessed(state.iterations() * options.num_sources *
                          g.num_edges());
}
BENCHMARK(BM_BetweennessSampled)->Arg(16)->Arg(64);

void BM_TicketDistribution(benchmark::State& state) {
  const Graph& g = shared_graph(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        distribute_tickets(g, 0, g.num_vertices()));
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_TicketDistribution)->Arg(1000)->Arg(10000);

void BM_ExpansionSweep(benchmark::State& state) {
  const Graph& g = shared_graph(state.range(0));
  ExpansionOptions options;
  options.num_sources = 100;
  for (auto _ : state)
    benchmark::DoNotOptimize(measure_expansion(g, options));
  state.SetItemsProcessed(state.iterations() * 100 * g.num_edges());
}
BENCHMARK(BM_ExpansionSweep)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();

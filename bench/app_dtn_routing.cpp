// Application experiment: SimBet-style DTN routing (the paper's ref [2]) on
// the dataset analogues — delivery ratio and hop count of the
// betweenness+similarity policy against similarity-only and random
// forwarding.
#include <iostream>

#include "bench_common.hpp"
#include "dtn/simbet.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

int main() {
  using namespace sntrust;
  bench::Section section{"Application: SimBet DTN routing on social graphs"};

  Table table{{"Dataset", "n", "policy", "delivery", "mean hops"}};
  for (const char* id :
       {"rice_grad", "physics_1", "wiki_vote", "facebook_a"}) {
    const DatasetSpec& spec = dataset_by_id(id);
    const Graph g =
        bench::dataset_graph(spec, 0.2);

    bool first = true;
    for (const DtnPolicy policy :
         {DtnPolicy::kSimBet, DtnPolicy::kSimilarityOnly, DtnPolicy::kRandom}) {
      DtnParams params;
      params.policy = policy;
      params.ttl = 32;
      params.seed = bench::kBenchSeed;
      const DtnOutcome outcome = simulate_dtn_routing(g, 500, params);
      const char* name = policy == DtnPolicy::kSimBet ? "SimBet"
                         : policy == DtnPolicy::kSimilarityOnly
                             ? "Similarity"
                             : "Random";
      table.add_row({first ? spec.name : "",
                     first ? with_thousands(g.num_vertices()) : "", name,
                     fixed(100 * outcome.delivery_ratio, 1) + "%",
                     fixed(outcome.mean_hops, 2)});
      first = false;
    }
    std::cerr << "  " << id << " done\n";
  }
  table.print(std::cout);
  std::cout << "Expected shape: the social-utility policies beat random "
               "forwarding everywhere; the betweenness term matters most on "
               "community-fragmented (strict-trust) graphs, where messages "
               "must climb to bridging carriers.\n";
  return 0;
}

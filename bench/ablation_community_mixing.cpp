// Ablation A1: community strength vs mixing. Holds n and average degree
// fixed in a planted-partition model and sweeps the cross-community edge
// budget; reports mu, sampled T(eps), max core count and spectral-sweep
// conductance. Quantifies the paper's qualitative claim that the social
// model (community confinement), not size, drives the mixing time.
#include <iostream>

#include "bench_common.hpp"
#include "community/community.hpp"
#include "cores/core_profile.hpp"
#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "markov/mixing.hpp"
#include "markov/spectral.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

int main() {
  using namespace sntrust;
  bench::Section section{"Ablation A1: community strength vs mixing"};

  const auto n = static_cast<VertexId>(4000 * bench_scale());
  Table table{{"cross-degree", "mu", "T(eps=1/n)", "max cores",
               "conductance"}};

  for (const double cross_degree : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    const double size = n / 20.0;
    const double p_in = 12.0 / (size - 1);
    const double p_out = cross_degree / (n - size);
    const Graph g = largest_component(
                        planted_partition(n, 20, p_in, p_out,
                                          bench::kBenchSeed))
                        .graph;

    SlemOptions slem_options;
    slem_options.seed = bench::kBenchSeed;
    const double mu = second_largest_eigenvalue(g, slem_options).mu;

    MixingOptions mixing_options;
    mixing_options.num_sources = 10;
    mixing_options.max_walk_length = 300;
    mixing_options.seed = bench::kBenchSeed;
    const std::uint32_t t = mixing_time_estimate(
        measure_mixing(g, mixing_options), 1.0 / g.num_vertices());

    std::uint32_t max_cores = 0;
    for (const CoreLevel& level : core_profile(g))
      max_cores = std::max(max_cores, level.num_components);

    const double phi =
        conductance_sweep(g, fiedler_vector(g)).best_conductance;

    table.add_row({fixed(cross_degree, 2), fixed(mu, 4),
                   t == 0xFFFFFFFFu ? "> 300" : std::to_string(t),
                   std::to_string(max_cores), fixed(phi, 4)});
    std::cerr << "  cross-degree " << cross_degree << " done\n";
  }

  table.print(std::cout);
  std::cout << "Expected shape: mu and T(eps) fall monotonically as cross-"
               "community edges are added; core count collapses to 1; "
               "conductance rises.\n";
  return 0;
}

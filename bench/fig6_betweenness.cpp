// Companion measurement (the authors' betweenness study, cited as [4]/[14]
// in the paper's introduction): the distribution of shortest-path
// betweenness across dataset classes. Sybil defenses built on betweenness
// (Quercia & Hailes) assume most vertices have negligible betweenness while
// a small core carries the traffic; this bench regenerates that
// distribution per class.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "centrality/centrality.hpp"
#include "report/series.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

static int run_bench() {
  using namespace sntrust;
  bench::Section section{"Companion: betweenness distribution per class"};

  SeriesSet figure{"quantile"};
  Table table{{"Dataset", "n", "class", "max (norm.)", "median (norm.)",
               "top-1% share"}};
  for (const char* id : {"wiki_vote", "epinion", "physics_1", "physics_2",
                         "facebook_a"}) {
    bench::DatasetTimer dataset_timer;
    const DatasetSpec& spec = dataset_by_id(id);
    const Graph g =
        bench::dataset_graph(spec, 0.15);

    CentralityOptions options;
    options.num_sources = std::min<VertexId>(g.num_vertices(), 600);
    options.seed = bench::kBenchSeed;
    std::vector<double> scores =
        normalize_betweenness(betweenness_centrality(g, options),
                              g.num_vertices());
    std::sort(scores.begin(), scores.end());

    // Quantile curve (x = quantile, y = normalized betweenness).
    std::vector<double> x, y;
    for (const double q : {0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
      const auto index = static_cast<std::size_t>(
          std::min<double>(scores.size() - 1, q * scores.size()));
      x.push_back(q);
      y.push_back(scores[index]);
    }
    figure.add_series(spec.name, x, y);

    double total = 0.0, top = 0.0;
    for (const double s : scores) total += s;
    const std::size_t top_count =
        std::max<std::size_t>(1, scores.size() / 100);
    for (std::size_t i = scores.size() - top_count; i < scores.size(); ++i)
      top += scores[i];
    table.add_row({spec.name, with_thousands(g.num_vertices()),
                   to_string(spec.expected_class),
                   compact(scores.back(), 3),
                   compact(scores[scores.size() / 2], 3),
                   fixed(100.0 * (total > 0 ? top / total : 0.0), 1) + "%"});
    std::cerr << "  " << id << " done\n";
  }

  std::cout << "Normalized betweenness by quantile:\n";
  figure.print(std::cout);
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "Expected shape: heavily skewed everywhere — the median sits "
               "orders of magnitude below the maximum, and the top 1% of "
               "vertices carries a disproportionate share of all "
               "shortest-path traffic (up to ~50% on the heavy-tailed "
               "analogues) — the premise of betweenness-based defenses and "
               "of SimBet routing.\n";
  return 0;
}

int main() { return sntrust::bench::guarded_main(run_bench); }

// Closed-loop trust-query serving bench (the north star's "Sybil-resistance
// as a service" workload, DESIGN.md §15).
//
// A TrustService precomputes the per-defense artifacts for one seed set on
// a Table-I analogue, then C closed-loop client threads replay a
// heavy-traffic query mix — Zipf-skewed targets (hot suspects attract most
// of the lookups), a configurable admission/read blend — through the
// batched, pipelined query engine. Reported: warm-path QPS, per-query
// latency quantiles (p50/p99/p999 via the serve.query_ms histograms, which
// also land in the run report's telemetry section), cache hit rate, batch
// occupancy, cold-cache warm-up cost, and the naive recompute-per-query
// baseline the artifact cache is measured against.
//
// Every query trace is a pure function of kBenchSeed, so answers replay
// identically run-to-run; the bench hard-fails (exit 1) if the batched
// pipelined answers diverge bytewise from the unbatched recompute
// reference. Graph loading goes through bench::dataset_graph, so
// SNTRUST_SNAPSHOT serves the CSR from the zero-copy mmap cache.
//
// Knobs: SNTRUST_SCALE (dataset + query-count scale),
// SNTRUST_SERVE_QUERIES (total, default 1,000,000 * scale),
// SNTRUST_SERVE_CLIENTS (closed-loop threads, default 4),
// SNTRUST_SERVE_ZIPF (skew s, default 0.99), SNTRUST_SERVE_ADMIT_FRAC
// (admission share of the mix, default 0.5), SNTRUST_SERVE_BATCH /
// SNTRUST_SERVE_QUEUE_CAP (engine shape).
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/quantile.hpp"
#include "report/table.hpp"
#include "serve/trust_service.hpp"
#include "serve/zipf.hpp"
#include "util/format.hpp"

namespace {

using namespace sntrust;
using serve::Answer;
using serve::Defense;
using serve::Query;
using serve::QueryKind;
using serve::QueryStatus;

/// Deterministic query mix: Zipf-skewed target, admission/read blend.
Query next_query(Rng& rng, const serve::ZipfGenerator& zipf,
                 double admit_frac) {
  Query query;
  query.vertex = static_cast<VertexId>(zipf(rng));
  const double mix = rng.uniform_real();
  if (mix < admit_frac) {
    query.kind = QueryKind::kAdmission;
    query.defense =
        rng.bernoulli(0.5) ? Defense::kSybilRank : Defense::kGateKeeper;
  } else {
    const double read = (mix - admit_frac) / (1.0 - admit_frac);
    if (read < 0.4) {
      query.kind = QueryKind::kTrustScore;
      query.defense =
          rng.bernoulli(0.5) ? Defense::kSybilRank : Defense::kGateKeeper;
    } else if (read < 0.7) {
      query.kind = QueryKind::kCoreness;
    } else {
      query.kind = QueryKind::kLandmark;
    }
  }
  return query;
}

bool answers_equal(const Answer& a, const Answer& b) {
  // Bitwise comparison (not operator==): the acceptance criterion is byte
  // identity between the batched and unbatched paths.
  return std::memcmp(&a, &b, sizeof(Answer)) == 0;
}

}  // namespace

int main() {
  return bench::guarded_main([] {
    bench::Section section{"Application: trust-query serving layer"};
    obs::RunReporter::instance().set_config("bench", "app_serving");

    const double admit_frac =
        env_double("SNTRUST_SERVE_ADMIT_FRAC", 0.5);
    const double zipf_s = env_double("SNTRUST_SERVE_ZIPF", 0.99);
    const std::uint64_t total_queries = static_cast<std::uint64_t>(
        env_int("SNTRUST_SERVE_QUERIES",
                static_cast<std::int64_t>(1'000'000 * bench_scale())));
    const std::uint32_t clients =
        static_cast<std::uint32_t>(env_int("SNTRUST_SERVE_CLIENTS", 4));
    const std::uint32_t client_batch = 64;

    const DatasetSpec& spec = dataset_by_id("epinion");
    Graph graph = bench::dataset_graph(spec, 0.35);
    const VertexId n = graph.num_vertices();
    std::cout << "dataset " << spec.id << ": n=" << with_thousands(n)
              << " m=" << with_thousands(graph.num_edges()) << ", "
              << with_thousands(total_queries) << " queries, " << clients
              << " clients, zipf s=" << zipf_s << "\n\n";

    serve::TrustService::Options options;
    options.config.seeds = {0, 1, 2, 3, 4};
    options.config.gatekeeper.seed = bench::kBenchSeed;
    options.precompute = false;
    serve::TrustService service{graph, std::move(options)};
    obs::RunReporter::instance().set_config("serve_batch",
                                            service.batch_size());
    obs::RunReporter::instance().set_config("serve_queries", total_queries);
    obs::RunReporter::instance().set_config("serve_clients", clients);
    obs::RunReporter::instance().set_config("serve_zipf", zipf_s);

    const serve::ZipfGenerator zipf{n, zipf_s};

    // --- Naive recompute-per-query reference (the "before"): every query
    // rebuilds the artifact it needs from scratch, as the batch pipeline
    // did before this layer existed.
    double naive_qps = 0.0;
    {
      bench::Section naive{"naive recompute-per-query reference"};
      Rng rng{stream_seed(bench::kBenchSeed, 9999)};
      const std::uint32_t naive_queries = 8;
      obs::Stopwatch timer;
      for (std::uint32_t i = 0; i < naive_queries; ++i)
        (void)service.answer_uncached(next_query(rng, zipf, admit_frac));
      const double ms = timer.elapsed_ms();
      naive_qps = 1000.0 * naive_queries / ms;
      std::cout << "naive: " << naive_queries << " queries in "
                << fixed(ms, 1) << " ms = " << fixed(naive_qps, 1)
                << " qps\n";
    }

    // --- Cold cache: the one-time artifact precomputation cost.
    double cold_warm_ms = 0.0;
    {
      bench::Section cold{"cold-cache warm-up (artifact precompute)"};
      obs::Stopwatch timer;
      service.warm();
      cold_warm_ms = timer.elapsed_ms();
      std::cout << "artifacts precomputed in " << fixed(cold_warm_ms, 1)
                << " ms\n";
    }
    obs::RunReporter::instance().set_config("cold_warm_ms", cold_warm_ms);

    // --- Identity: pipelined batched answers must byte-match the unbatched
    // recompute reference (and the direct cached path).
    bool identical = true;
    {
      bench::Section check{"batched vs unbatched identity"};
      service.start();
      Rng rng{stream_seed(bench::kBenchSeed, 4242)};
      std::vector<Query> queries;
      for (std::uint32_t i = 0; i < 12; ++i)
        queries.push_back(next_query(rng, zipf, admit_frac));
      std::vector<Answer> batched(queries.size());
      service.ask_batch(queries, batched);
      for (std::size_t i = 0; i < queries.size(); ++i) {
        const Answer reference = service.answer_uncached(queries[i]);
        const Answer direct = service.answer(queries[i]);
        if (!answers_equal(batched[i], reference) ||
            !answers_equal(direct, reference))
          identical = false;
      }
      std::cout << "batched == unbatched reference: "
                << (identical ? "yes" : "NO — DIVERGED") << "\n";
    }
    obs::RunReporter::instance().set_config("identical", identical);
    if (!identical) {
      std::cerr << "error: batched answers diverged from the unbatched "
                   "reference\n";
      return 1;
    }

    // --- Closed-loop warm-cache drive: C clients, Zipf targets, blocking
    // batched submission through the pipelined engine.
    double warm_qps = 0.0;
    {
      bench::Section drive{"closed-loop warm drive"};
      std::vector<std::thread> workers;
      obs::Stopwatch timer;
      for (std::uint32_t c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
          Rng rng{stream_seed(bench::kBenchSeed, c)};
          std::uint64_t budget = total_queries / clients +
                                 (c < total_queries % clients ? 1 : 0);
          std::vector<Query> queries(client_batch);
          std::vector<Answer> answers(client_batch);
          while (budget > 0) {
            const std::size_t take =
                budget < client_batch ? static_cast<std::size_t>(budget)
                                      : client_batch;
            for (std::size_t i = 0; i < take; ++i)
              queries[i] = next_query(rng, zipf, admit_frac);
            service.ask_batch(
                std::span<const Query>{queries.data(), take},
                std::span<Answer>{answers.data(), take});
            budget -= take;
          }
        });
      }
      for (std::thread& t : workers) t.join();
      const double ms = timer.elapsed_ms();
      warm_qps = 1000.0 * static_cast<double>(total_queries) / ms;
      const obs::QuantileSnapshot lat =
          obs::metrics_quantile("serve.query_ms").snapshot();
      // Queue sojourn and fan-out service time reported separately, so a
      // latency regression (or a shed decision under SNTRUST_SERVE_SHED_MS)
      // is attributable to queueing vs compute at a glance.
      const obs::QuantileSnapshot sojourn =
          obs::metrics_quantile("serve.queue_ms").snapshot();
      const obs::QuantileSnapshot svc =
          obs::metrics_quantile("serve.service_ms").snapshot();
      std::cout << with_thousands(total_queries) << " queries in "
                << fixed(ms, 1) << " ms = " << fixed(warm_qps, 0)
                << " qps\n"
                << "latency p50=" << fixed(lat.value_at_quantile(0.5), 3)
                << " ms  p99=" << fixed(lat.value_at_quantile(0.99), 3)
                << " ms  p999=" << fixed(lat.value_at_quantile(0.999), 3)
                << " ms\n"
                << "queue sojourn p50="
                << fixed(sojourn.value_at_quantile(0.5), 3)
                << " ms  p99=" << fixed(sojourn.value_at_quantile(0.99), 3)
                << " ms | batch service p50="
                << fixed(svc.value_at_quantile(0.5), 3)
                << " ms  p99=" << fixed(svc.value_at_quantile(0.99), 3)
                << " ms\n";
      obs::RunReporter::instance().set_config(
          "queue_sojourn_p99_ms", sojourn.value_at_quantile(0.99));
      obs::RunReporter::instance().set_config(
          "batch_service_p99_ms", svc.value_at_quantile(0.99));
    }
    service.stop();

    const obs::MetricsSnapshot metrics = obs::Metrics::instance().snapshot();
    const std::uint64_t hits = metrics.counters.at("serve.cache_hits");
    const std::uint64_t misses = metrics.counters.at("serve.cache_misses");
    const double hit_rate =
        hits + misses == 0
            ? 0.0
            : static_cast<double>(hits) / static_cast<double>(hits + misses);
    const double speedup = naive_qps == 0.0 ? 0.0 : warm_qps / naive_qps;

    obs::RunReporter::instance().set_config("qps_warm", warm_qps);
    obs::RunReporter::instance().set_config("qps_naive", naive_qps);
    obs::RunReporter::instance().set_config("warm_speedup_vs_naive", speedup);
    obs::RunReporter::instance().set_config("cache_hit_rate", hit_rate);

    Table table{{"metric", "value"}};
    table.add_row({"warm qps", fixed(warm_qps, 0)});
    table.add_row({"naive qps", fixed(naive_qps, 1)});
    table.add_row({"speedup (warm/naive)", fixed(speedup, 1) + "x"});
    table.add_row({"cache hit rate", fixed(100 * hit_rate, 1) + "%"});
    table.add_row({"batches",
                   with_thousands(metrics.counters.at("serve.batches"))});
    table.add_row({"queries served",
                   with_thousands(metrics.counters.at("serve.queries"))});
    table.print(std::cout);
    std::cout << "Expected shape: the warm path answers from precomputed "
                 "per-seed artifacts (array reads), so throughput sits "
                 "orders of magnitude above the naive recompute-per-query "
                 "baseline; Zipf skew keeps the artifact working set hot, "
                 "so the hit rate approaches 100%.\n";
    return 0;
  });
}

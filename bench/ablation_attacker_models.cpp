// Ablation A8: formal attacker models (the paper's Sec.-VI open problem).
// The same attack-edge budget is placed with increasing social
// intelligence — uniformly at random (Table II's model), on hubs
// (degree-proportional), into a single community, and directly around the
// defense's trusted node — and two walk-based defenses plus the ranking AUC
// are measured against each.
#include <iostream>

#include "bench_common.hpp"
#include "report/table.hpp"
#include "sybil/attack.hpp"
#include "sybil/gatekeeper.hpp"
#include "sybil/sybilrank.hpp"
#include "util/format.hpp"

int main() {
  using namespace sntrust;
  bench::Section section{"Ablation A8: attacker edge-placement strategies"};

  const Graph honest =
      bench::dataset_graph(dataset_by_id("wiki_vote"), 0.3);
  std::cout << "Wiki-vote analogue, n=" << honest.num_vertices()
            << "; Sybil region n/4 behind n/60 attack edges; trusted node "
               "0.\n\n";

  Table table{{"strategy", "GateKeeper honest", "GateKeeper sybil/edge",
               "SybilRank AUC", "SybilRank sybil/edge"}};

  const std::pair<AttackStrategy, const char*> strategies[] = {
      {AttackStrategy::kRandom, "random (Table II)"},
      {AttackStrategy::kTargetHubs, "hub infiltration"},
      {AttackStrategy::kSingleRegion, "single community"},
      {AttackStrategy::kNearSeed, "around trusted node"},
  };
  for (const auto& [strategy, name] : strategies) {
    AttackParams attack;
    attack.num_sybils = honest.num_vertices() / 4;
    attack.attack_edges =
        std::max<std::uint32_t>(20, honest.num_vertices() / 60);
    attack.strategy = strategy;
    attack.target = 0;
    attack.seed = bench::kBenchSeed;
    const AttackedGraph attacked{honest, attack};

    GateKeeperParams gk;
    gk.num_distributers = 50;
    gk.f_admit = 0.1;
    gk.seed = bench::kBenchSeed;
    const GateKeeperEvaluation gk_eval = evaluate_gatekeeper(attacked, 0, gk);

    const SybilRankResult rank = run_sybilrank(attacked.graph(), {0});
    const double auc = ranking_auc(rank.ranking, attacked);
    const PairwiseEvaluation rank_eval = evaluate_sybilrank(attacked, {0});

    table.add_row({name, fixed(100 * gk_eval.honest_accept_fraction, 1) + "%",
                   fixed(gk_eval.sybils_per_attack_edge, 2), fixed(auc, 3),
                   fixed(rank_eval.sybils_per_attack_edge, 2)});
    std::cerr << "  " << name << " done\n";
  }
  table.print(std::cout);
  std::cout << "Expected shape: random placement is close to the defenses' "
               "best case. Hub infiltration does NOT beat it against "
               "GateKeeper — a hub splits its tickets across many edges, "
               "diluting the per-edge crossing. Capturing a single "
               "community is the strongest attack on GateKeeper (several "
               "times the random-attacker leakage: the distributers' "
               "tickets funnel through the captured ball), and placing "
               "edges around the trusted node is the only strategy that "
               "dents single-seed SybilRank — quantifying how much Table "
               "II's numbers depend on the random-attacker assumption.\n";
  return 0;
}

// Figure 3 (a)-(j): measured expansion of node sets of different sizes,
// using every sampled node as a potential core — min / mean / max number of
// neighbours per unique envelope size.
#include <iostream>

#include "bench_common.hpp"
#include "expansion/expansion_profile.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

static int run_bench() {
  using namespace sntrust;
  bench::Section section{
      "Figure 3: envelope expansion (neighbours vs set size)"};

  for (const std::string& id : figure3_ids()) {
    bench::DatasetTimer dataset_timer;
    const DatasetSpec& spec = dataset_by_id(id);
    const Graph g = bench::dataset_graph(spec);
    ExpansionOptions options;
    // The paper's O(nm) full sweep is feasible for small graphs; sample
    // sources on the larger ones.
    options.num_sources = g.num_vertices() <= 5000 ? 0 : 2000;
    options.seed = bench::kBenchSeed;
    const ExpansionProfile profile = measure_expansion(g, options);

    std::cout << "--- " << spec.name << " (n=" << g.num_vertices()
              << ", sources=" << profile.sources_used
              << ", depth<=" << profile.max_depth << ") ---\n";
    Table table{{"set size |S|", "min |N(S)|", "mean |N(S)|", "max |N(S)|",
                 "obs"}};
    // Subsample the profile to <= 16 rows spread over the size range.
    const std::size_t step =
        std::max<std::size_t>(1, profile.points.size() / 16);
    for (std::size_t i = 0; i < profile.points.size(); i += step) {
      const ExpansionPoint& p = profile.points[i];
      table.add_row({with_thousands(p.set_size),
                     with_thousands(p.min_neighbors),
                     fixed(p.mean_neighbors, 1),
                     with_thousands(p.max_neighbors),
                     with_thousands(p.observations)});
    }
    table.print(std::cout);
  }
  std::cout << "Expected shape (paper Fig. 3): neighbour counts rise to a "
               "peak near moderate set sizes and fall as the envelope "
               "swallows the graph; fast mixers peak higher and earlier.\n";
  return 0;
}

int main() { return sntrust::bench::guarded_main(run_bench); }

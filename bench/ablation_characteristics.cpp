// Ablation A6: which graph characteristics actually track the mixing time?
// Dell'Amico et al. (the paper's ref [5]) concluded the mixing time "is not
// associated with any of the known characteristics of the social graphs";
// this paper's contribution is that *coreness structure* does track it.
// We compute, per dataset analogue, mu alongside size, density, clustering,
// diameter and the core-structure metrics, and report the Spearman rank
// correlation of mu with each — size should correlate weakly, core
// structure strongly.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <numeric>
#include <vector>

#include "bench_common.hpp"
#include "cores/core_profile.hpp"
#include "graph/stats.hpp"
#include "markov/spectral.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

namespace {

double spearman(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = a.size();
  const auto ranks = [n](const std::vector<double>& values) {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t x, std::size_t y) { return values[x] < values[y]; });
    std::vector<double> rank(n);
    for (std::size_t i = 0; i < n; ++i) rank[order[i]] = static_cast<double>(i);
    return rank;
  };
  const std::vector<double> ra = ranks(a), rb = ranks(b);
  double d2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
  return 1.0 - 6.0 * d2 / (static_cast<double>(n) * (n * n - 1.0));
}

}  // namespace

int main() {
  using namespace sntrust;
  bench::Section section{"Ablation A6: mu vs graph characteristics"};

  std::vector<double> mu, size, density, clustering, diameter, degeneracy,
      top_core_nu, core_count;

  Table table{{"Dataset", "mu", "n", "avg deg", "clustering", "diam>=",
               "degen", "nu@degen", "max cores"}};
  for (const DatasetSpec& spec : all_datasets()) {
    const Graph g =
        bench::dataset_graph(spec, 0.25);

    SlemOptions slem_options;
    slem_options.seed = bench::kBenchSeed;
    const double m = second_largest_eigenvalue(g, slem_options).mu;
    const DegreeStats degrees = degree_stats(g);
    const double cluster = average_local_clustering(g);
    const double diam = double_sweep_diameter(g);
    const auto levels = core_profile(g);
    const double degen = levels.empty() ? 0.0 : levels.back().k;
    const double nu_top = levels.empty() ? 0.0 : levels.back().nu;
    double cores = 1.0;
    for (const CoreLevel& level : levels)
      cores = std::max(cores, static_cast<double>(level.num_components));

    mu.push_back(m);
    size.push_back(g.num_vertices());
    density.push_back(degrees.mean);
    clustering.push_back(cluster);
    diameter.push_back(diam);
    degeneracy.push_back(degen);
    top_core_nu.push_back(nu_top);
    core_count.push_back(cores);

    table.add_row({spec.name, fixed(m, 4), with_thousands(g.num_vertices()),
                   fixed(degrees.mean, 1), fixed(cluster, 3),
                   fixed(diam, 0), fixed(degen, 0), fixed(nu_top, 3),
                   fixed(cores, 0)});
    std::cerr << "  " << spec.id << " done\n";
  }
  table.print(std::cout);

  Table correlations{{"characteristic", "Spearman rho with mu"}};
  correlations.add_row({"graph size n", fixed(spearman(mu, size), 3)});
  correlations.add_row({"average degree", fixed(spearman(mu, density), 3)});
  correlations.add_row({"avg local clustering", fixed(spearman(mu, clustering), 3)});
  correlations.add_row({"diameter (lower bound)", fixed(spearman(mu, diameter), 3)});
  correlations.add_row({"degeneracy", fixed(spearman(mu, degeneracy), 3)});
  correlations.add_row({"innermost-core nu", fixed(spearman(mu, top_core_nu), 3)});
  correlations.add_row({"max #connected cores", fixed(spearman(mu, core_count), 3)});
  std::cout << "\n";
  correlations.print(std::cout);
  std::cout << "Expected shape: |rho| small for size (Dell'Amico's negative "
               "result), large positive for clustering and for core "
               "fragmentation, and large for the core-structure metrics — "
               "the paper's positive result relating mixing to coreness.\n";
  return 0;
}

// Figure 4: expected expansion factor alpha = E[|N(S)|] / |S| vs set size —
// panel (a) small datasets, panel (b) medium datasets.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "expansion/expansion_profile.hpp"
#include "report/series.hpp"

namespace {

void run_panel(const std::string& title,
               const std::vector<std::string>& ids) {
  using namespace sntrust;
  bench::Section section{title};
  SeriesSet figure{"set_size_bucket"};
  for (const std::string& id : ids) {
    bench::DatasetTimer dataset_timer;
    const DatasetSpec& spec = dataset_by_id(id);
    const Graph g = bench::dataset_graph(spec);
    ExpansionOptions options;
    options.num_sources = g.num_vertices() <= 5000 ? 0 : 2000;
    options.seed = bench::kBenchSeed;
    const ExpansionProfile profile = measure_expansion(g, options);

    // Bucket set sizes into 20 relative-size bins (|S| / n) so differently
    // sized graphs share an x axis, exactly how the paper overlays them.
    std::vector<double> sum(20, 0.0);
    std::vector<std::uint64_t> count(20, 0);
    for (const ExpansionPoint& p : profile.points) {
      const double relative =
          static_cast<double>(p.set_size) / g.num_vertices();
      const auto bucket = std::min<std::size_t>(
          19, static_cast<std::size_t>(relative * 20.0));
      sum[bucket] += p.mean_alpha();
      ++count[bucket];
    }
    std::vector<double> x, y;
    for (std::size_t b = 0; b < 20; ++b) {
      if (count[b] == 0) continue;
      x.push_back((b + 0.5) / 20.0);
      y.push_back(sum[b] / static_cast<double>(count[b]));
    }
    figure.add_series(spec.name, x, y);
    std::cerr << "  measured " << id << "\n";
  }
  figure.print(std::cout);
}

}  // namespace

static int run_bench() {
  run_panel("Figure 4(a): expected expansion factor, small datasets",
            {"physics_1", "physics_2", "physics_3", "rice_grad"});
  run_panel("Figure 4(b): expected expansion factor, medium datasets",
            {"wiki_vote", "epinion", "enron", "slashdot_a", "facebook_a",
             "livejournal_a"});
  std::cout << "Expected shape (paper Fig. 4 + Sec. V): the expansion-factor "
               "curves order the datasets the same way the mixing curves do "
               "— expansion is 'a scale of' the mixing measurement.\n";
  return 0;
}

int main() { return sntrust::bench::guarded_main(run_bench); }

// Table II: GateKeeper run on four graphs with different characteristics.
// Attackers are selected randomly, 99 distributers are sampled, and the
// admission fraction f is swept. Reported: honest acceptance (% of the whole
// graph) and Sybils admitted per attack edge.
#include <iostream>

#include "bench_common.hpp"
#include "report/csv_sink.hpp"
#include "report/table.hpp"
#include "sybil/gatekeeper.hpp"
#include "util/format.hpp"

static int run_bench() {
  using namespace sntrust;
  bench::Section section{
      "Table II: GateKeeper honest/Sybil acceptance, 99 distributers"};

  const double fs[] = {0.05, 0.1, 0.2};
  Table table{{"Dataset", "n", "attack edges", "unfiltered/edge", "accept",
               "f=0.05", "f=0.1", "f=0.2"}};

  for (const std::string& id : table2_ids()) {
    bench::DatasetTimer dataset_timer;
    const DatasetSpec& spec = dataset_by_id(id);
    // Table II's graphs are large; keep the admission experiment affordable.
    const Graph honest =
        bench::dataset_graph(spec, 0.12);

    // A large Sybil region behind proportionally few attack edges, so the
    // per-edge bound is visible rather than saturated by a tiny region.
    AttackParams attack;
    attack.num_sybils = std::max<VertexId>(100, honest.num_vertices() / 4);
    attack.attack_edges =
        std::max<std::uint32_t>(10, honest.num_vertices() / 500);
    attack.seed = bench::kBenchSeed;
    const AttackedGraph attacked{honest, attack};

    std::string honest_row[3], sybil_row[3];
    for (int i = 0; i < 3; ++i) {
      GateKeeperParams params;
      params.num_distributers = 99;
      params.f_admit = fs[i];
      params.seed = bench::kBenchSeed;
      const GateKeeperEvaluation eval =
          evaluate_gatekeeper(attacked, 0, params);
      honest_row[i] = fixed(100 * eval.honest_accept_fraction, 1) + "%";
      sybil_row[i] = fixed(eval.sybils_per_attack_edge, 2);
    }
    const double unfiltered = static_cast<double>(attacked.num_sybils()) /
                              attacked.num_attack_edges();
    table.add_row({spec.name, with_thousands(honest.num_vertices()),
                   std::to_string(attacked.num_attack_edges()),
                   fixed(unfiltered, 1), "Honest", honest_row[0],
                   honest_row[1], honest_row[2]});
    table.add_row({"", "", "", "", "Sybil", sybil_row[0], sybil_row[1],
                   sybil_row[2]});
    std::cerr << "  evaluated " << id << "\n";
  }

  table.print(std::cout);
  maybe_write_csv(table, "table2_gatekeeper");
  std::cout << "Expected shape (paper Table II): honest acceptance decreases "
               "as f grows (89-98% at small f down to tens of % at f=0.2+); "
               "Sybils admitted per attack edge stay a small constant, far "
               "below the unfiltered Sybil/edge ratio.\n";
  return 0;
}

int main() { return sntrust::bench::guarded_main(run_bench); }

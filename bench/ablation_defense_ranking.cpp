// Ablation A2: "defenses rank by connectivity to the trusted node"
// (Viswanath et al., echoed in the paper's related work). Builds an attacked
// graph, derives a trust ranking from each defense, and reports (i) each
// ranking's honest-vs-Sybil AUC and (ii) the pairwise top-k overlap between
// defense rankings.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "centrality/centrality.hpp"
#include "markov/distribution.hpp"
#include "markov/walker.hpp"
#include "report/table.hpp"
#include "sybil/attack.hpp"
#include "sybil/community_defense.hpp"
#include "sybil/gatekeeper.hpp"
#include "sybil/sybilinfer.hpp"
#include "sybil/sybillimit.hpp"
#include "sybil/sybilrank.hpp"
#include "util/format.hpp"

int main() {
  using namespace sntrust;
  bench::Section section{"Ablation A2: defense ranking agreement"};

  const Graph honest =
      bench::dataset_graph(dataset_by_id("wiki_vote"), 0.2);
  AttackParams attack;
  attack.num_sybils = honest.num_vertices() / 4;
  attack.attack_edges = std::max<std::uint32_t>(5, honest.num_vertices() / 100);
  attack.seed = bench::kBenchSeed;
  const AttackedGraph attacked{honest, attack};
  const Graph& g = attacked.graph();
  const VertexId n = g.num_vertices();
  std::cout << "honest=" << attacked.num_honest()
            << " sybil=" << attacked.num_sybils()
            << " attack_edges=" << attacked.num_attack_edges() << "\n\n";

  std::vector<std::string> names;
  std::vector<Ranking> rankings;

  {  // GateKeeper: rank by admission count.
    GateKeeperParams params;
    params.num_distributers = 40;
    params.f_admit = 0.1;
    params.seed = bench::kBenchSeed;
    const GateKeeperResult result = run_gatekeeper(g, 0, params);
    std::vector<double> scores(n);
    for (VertexId v = 0; v < n; ++v) scores[v] = result.admissions[v];
    names.push_back("GateKeeper");
    rankings.push_back(ranking_from_scores(scores));
  }
  {  // SybilLimit: rank by acceptance across repeated verifier instances.
    SybilLimitParams params;
    params.seed = bench::kBenchSeed;
    params.route_factor = 0.5;
    const SybilLimit limit{g, params};
    std::vector<double> scores(n, 0.0);
    for (int round = 0; round < 3; ++round) {
      auto verifier = limit.make_verifier(0);
      for (VertexId v = 0; v < n; ++v)
        if (verifier.accepts(v)) scores[v] += 1.0;
    }
    names.push_back("SybilLimit");
    rankings.push_back(ranking_from_scores(scores));
    std::cerr << "  SybilLimit ranked\n";
  }
  {  // SybilInfer-lite: its native score.
    SybilInferParams params;
    params.seed = bench::kBenchSeed;
    const SybilInferResult result = run_sybilinfer(g, 0, params);
    names.push_back("SybilInfer");
    rankings.push_back(result.ranking);
  }
  {  // SybilRank: early-terminated power iteration from honest seeds.
    names.push_back("SybilRank");
    rankings.push_back(run_sybilrank(g, {0, 1, 2}).ranking);
  }
  {  // Community expansion (Viswanath et al.'s replacement argument: local
     // community detection around the trusted node IS the shared signal).
    names.push_back("CommunityExp");
    rankings.push_back(community_expansion(g, 0).ranking);
    std::cerr << "  CommunityExp ranked\n";
  }
  {  // Betweenness ranking (Quercia & Hailes-style defenses rank by
     // centrality; honest vertices sit on far more shortest paths than a
     // Sybil region behind few attack edges).
    CentralityOptions options;
    options.num_sources = std::min<VertexId>(n, 400);
    options.seed = bench::kBenchSeed;
    names.push_back("Betweenness");
    rankings.push_back(
        ranking_from_scores(betweenness_centrality(g, options)));
    std::cerr << "  Betweenness ranked\n";
  }
  {  // Plain random-walk hit rate (the "connectivity to trusted node"
     // baseline all of the above allegedly reduce to).
    RandomWalker walker{g, bench::kBenchSeed};
    std::vector<double> scores(n, 0.0);
    const std::uint64_t traces = 30ull * n;
    for (std::uint64_t i = 0; i < traces; ++i)
      scores[walker.walk_endpoint(0, 10)] += 1.0;
    const Distribution pi = stationary_distribution(g);
    for (VertexId v = 0; v < n; ++v)
      scores[v] = pi[v] > 0 ? scores[v] / pi[v] : 0.0;
    names.push_back("WalkBaseline");
    rankings.push_back(ranking_from_scores(scores));
  }

  Table auc_table{{"defense", "ranking AUC (honest above sybil)"}};
  for (std::size_t i = 0; i < names.size(); ++i)
    auc_table.add_row({names[i], fixed(ranking_auc(rankings[i], attacked), 3)});
  auc_table.print(std::cout);

  std::cout << "\nPairwise top-k overlap between rankings:\n";
  Table overlap_table{{"pair", "overlap"}};
  for (std::size_t i = 0; i < names.size(); ++i)
    for (std::size_t j = i + 1; j < names.size(); ++j)
      overlap_table.add_row(
          {names[i] + " vs " + names[j],
           fixed(ranking_overlap(rankings[i], rankings[j]), 3)});
  overlap_table.print(std::cout);

  std::cout << "Expected shape: the walk-based defenses (GateKeeper, "
               "SybilLimit, SybilInfer, WalkBaseline) all reach AUC ~1 with "
               "pairwise overlaps far above random — one shared "
               "connectivity-to-trusted-node signal. The two non-walk "
               "signals fail instructively: betweenness barely separates, "
               "and greedy community expansion is actively fooled (AUC << "
               "0.5) because the densely wired Sybil region is a *tighter "
               "community* than the honest periphery — the known fragility "
               "of community-detection defenses, and the reason the "
               "walk-based family (whose volume-flow signal the attacker "
               "cannot fake without attack edges) prevailed.\n";
  return 0;
}

// Shared conventions for the reproduction benches: every bench generates its
// datasets at `dataset_scale() * <paper scale>` and seeds all randomness
// from kBenchSeed so output is reproducible run-to-run.
//
// SNTRUST_SCALE scales all workloads (default 1.0; use 0.1 for a smoke run,
// >1 to push closer to the paper's raw sizes).
#pragma once

#include <chrono>
#include <iostream>
#include <string>

#include "gen/datasets.hpp"
#include "util/env.hpp"

namespace sntrust::bench {

inline constexpr std::uint64_t kBenchSeed = 20110621;  // ICDCS'11 week

/// Additional scale factor the benches apply on top of each dataset's
/// default_scale, so the default full suite finishes in minutes on one core.
inline double dataset_scale(double base = 0.35) {
  return base * bench_scale();
}

/// Banner + wall-clock scope timer.
class Section {
 public:
  explicit Section(std::string title) : title_(std::move(title)) {
    std::cout << "=== " << title_ << " ===\n";
    start_ = std::chrono::steady_clock::now();
  }
  ~Section() {
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start_);
    std::cout << "[" << title_ << ": " << elapsed.count() << " ms]\n\n";
  }
  Section(const Section&) = delete;
  Section& operator=(const Section&) = delete;

 private:
  std::string title_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sntrust::bench

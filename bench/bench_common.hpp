// Shared conventions for the reproduction benches: every bench generates its
// datasets at `dataset_scale() * <paper scale>` and seeds all randomness
// from kBenchSeed so output is reproducible run-to-run.
//
// SNTRUST_SCALE scales all workloads (default 1.0; use 0.1 for a smoke run,
// >1 to push closer to the paper's raw sizes).
#pragma once

#include <cstdio>
#include <functional>
#include <iostream>
#include <string>

#include "exec/cancel.hpp"
#include "exec/sweep.hpp"
#include "gen/datasets.hpp"
#include "graph/snapshot.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"
#include "util/env.hpp"
#include "util/format.hpp"

namespace sntrust::bench {

inline constexpr std::uint64_t kBenchSeed = 20110621;  // ICDCS'11 week

/// Additional scale factor the benches apply on top of each dataset's
/// default_scale, so the default full suite finishes in minutes on one core.
inline double dataset_scale(double base = 0.35) {
  return base * bench_scale();
}

/// SNTRUST_FULL_SCALE=1 runs every dataset at the paper's Table-I size
/// (DatasetSpec::generate_full), overriding dataset_scale/SNTRUST_SCALE.
/// The largest graphs take minutes to generate and gigabytes of CSR —
/// scripts/run_full_scale.sh documents the snapshot-backed workflow and the
/// scaled fallback for small machines.
inline bool full_scale() { return env_bool("SNTRUST_FULL_SCALE", false); }

/// Generates (or snapshot-loads) a bench dataset. With SNTRUST_SNAPSHOT set
/// to a directory, the graph is served from `<dir>/<id>_s<scale>.snap` when
/// present and written there after the first generation — so repeated bench
/// runs (and the CI snapshot job) mmap the CSR in milliseconds instead of
/// regenerating it. The snapshot header fingerprint keeps exec checkpoints
/// valid across the two load paths.
inline Graph dataset_graph(const DatasetSpec& spec, double base = 0.35) {
  // Provenance: the per-dataset structural fingerprint lands in the run
  // report's config so benchdiff/diag can refuse diffs between runs that
  // measured different graphs (changed generator, scale, or seed).
  const auto record_fingerprint = [&spec](const Graph& g) {
    obs::RunReporter::instance().set_config("graph." + std::string{spec.id},
                                            to_hex(g.fingerprint()));
  };
  const double scale =
      full_scale() ? 1.0 / spec.default_scale : dataset_scale(base);
  const std::string dir = env_string("SNTRUST_SNAPSHOT", "");
  if (dir.empty()) {
    Graph g = spec.generate(scale, kBenchSeed);
    record_fingerprint(g);
    return g;
  }
  char suffix[48];
  std::snprintf(suffix, sizeof suffix, "_s%g.snap", scale);
  const std::string path = dir + "/" + spec.id + suffix;
  if (is_snapshot_file(path)) {
    Graph g = load_snapshot(path);
    record_fingerprint(g);
    return g;
  }
  Graph g = spec.generate(scale, kBenchSeed);
  write_snapshot(g, path);
  record_fingerprint(g);
  return g;
}

/// Banner + wall-clock scope timer, built on the obs layer: the printed
/// elapsed time comes from obs::Stopwatch and the scope is recorded as a
/// trace span, so `SNTRUST_TRACE=<path> ./fig1_mixing_time` captures every
/// bench section alongside the library's own spans. Constructing a Section
/// also touches the run reporter, so `SNTRUST_REPORT=<path>` makes any
/// bench emit its unified JSON run report at exit (see obs/run_report.hpp).
class Section {
 public:
  explicit Section(std::string title)
      : title_(std::move(title)), span_(title_, "bench") {
    obs::RunReporter::instance();  // arms the SNTRUST_REPORT atexit export
    std::cout << "=== " << title_ << " ===\n";
  }
  ~Section() {
    const double elapsed_ms = stopwatch_.elapsed_ms();
    // Sections feed the telemetry quantiles too, so a long-running bench's
    // live frames (and the final report) carry per-section latency.
    obs::record_latency("bench.section_ms", elapsed_ms);
    std::cout << "[" << title_ << ": " << static_cast<long long>(elapsed_ms)
              << " ms]\n\n";
  }
  Section(const Section&) = delete;
  Section& operator=(const Section&) = delete;

 private:
  std::string title_;
  obs::Span span_;
  obs::Stopwatch stopwatch_;
};

/// RAII per-dataset latency sample: the paper benches open one inside each
/// dataset iteration so `bench.dataset_ms` quantiles (p50/p99 across
/// datasets) land in the live telemetry frames and the final run report.
class DatasetTimer {
 public:
  DatasetTimer() = default;
  ~DatasetTimer() {
    obs::record_latency("bench.dataset_ms", stopwatch_.elapsed_ms());
  }
  DatasetTimer(const DatasetTimer&) = delete;
  DatasetTimer& operator=(const DatasetTimer&) = delete;

 private:
  obs::Stopwatch stopwatch_;
};

/// Standard bench entry point: installs the cooperative SIGINT/SIGTERM
/// handlers (and the SNTRUST_DEADLINE_MS deadline), runs `body`, and maps
/// the exec-layer outcomes to sysexits-style codes — 75 for an interrupted
/// or degraded run (the checkpoint, if armed, holds the completed sources
/// and the SNTRUST_REPORT artifact still fires at exit), 1 for anything
/// else. Wrap main as `return sntrust::bench::guarded_main([] { ...; return
/// 0; });`.
inline int guarded_main(const std::function<int()>& body) {
  exec::install_signal_handlers();
  try {
    return body();
  } catch (const exec::CancelledError& error) {
    std::cerr << "interrupted: " << error.what() << "\n";
    return 75;
  } catch (const exec::PartialFailureError& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 75;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}

}  // namespace sntrust::bench

// Application experiment: Whanau-style Sybil-proof DHT on fast- vs
// slow-mixing analogues (the paper's refs [3], [10] motivate exactly this
// deployment). Reported per dataset: clean lookup success, success under a
// Sybil region, and the routing-table poison rate — the quantity the
// fast-mixing assumption bounds.
#include <iostream>

#include "bench_common.hpp"
#include "dht/social_dht.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

int main() {
  using namespace sntrust;
  bench::Section section{"Application: social-network DHT (Whanau-style)"};

  Table table{{"Dataset", "n", "class", "clean lookup", "attacked lookup",
               "table poison", "bound w*g/2m"}};
  for (const char* id : {"wiki_vote", "epinion", "physics_1", "physics_2",
                         "facebook_a"}) {
    const DatasetSpec& spec = dataset_by_id(id);
    const Graph honest =
        bench::dataset_graph(spec, 0.15);

    // Same *relative* attack intensity on every dataset, so the poison rate
    // differences reflect the graph's mixing class, not the edge budget.
    AttackParams attack;
    attack.num_sybils = honest.num_vertices() / 4;
    attack.attack_edges =
        std::max<std::uint32_t>(5, honest.num_vertices() / 100);
    attack.seed = bench::kBenchSeed;
    const AttackedGraph attacked{honest, attack};

    SocialDhtParams params;
    params.table_size = 64;
    params.lookup_fanout = 8;
    params.seed = bench::kBenchSeed;
    const SocialDhtEvaluation eval =
        evaluate_social_dht(honest, attacked, params, 400);

    // Whanau's security argument: a w-step walk from an honest vertex
    // escapes into the Sybil region with probability at most ~ w * g / 2m,
    // independent of the Sybil population.
    std::uint32_t walk_length = 3;
    for (VertexId x = attacked.graph().num_vertices(); x > 1; x /= 2)
      ++walk_length;
    const double bound =
        static_cast<double>(walk_length) * attacked.num_attack_edges() /
        (2.0 * static_cast<double>(attacked.graph().num_edges()));

    table.add_row({spec.name, with_thousands(honest.num_vertices()),
                   to_string(spec.expected_class),
                   fixed(100 * eval.clean_success, 1) + "%",
                   fixed(100 * eval.attacked_success, 1) + "%",
                   fixed(100 * eval.poison_rate, 1) + "%",
                   fixed(100 * bound, 1) + "%"});
    std::cerr << "  " << id << " done\n";
  }
  table.print(std::cout);
  std::cout << "Expected shape: clean success is high everywhere (ring keys "
               "are uniform hashes); the Sybil region holds 25% of the "
               "combined graph's identities, yet the poison rate stays at "
               "the w*g/2m escape bound — the routing tables are protected "
               "by the attack-edge budget, which is exactly what the "
               "paper's mixing measurements underwrite.\n";
  return 0;
}

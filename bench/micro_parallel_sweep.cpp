// Serial-vs-pooled microbench for the parallel per-source sweeps.
//
// Times measure_mixing and measure_expansion once with the pool pinned to a
// single worker and once with the pooled worker count (SNTRUST_THREADS or
// hardware_concurrency, floored at 2 so the pooled leg actually exercises the
// pool even on a one-core box), verifies the two legs produce bitwise
// identical results, and prints one JSON object with the speedups.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "expansion/expansion_profile.hpp"
#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "markov/mixing.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace sntrust;

struct Leg {
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  bool identical = false;
  double speedup() const {
    return parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  }
};

template <typename Sweep, typename Equal>
Leg time_leg(std::uint32_t pooled_threads, const Sweep& sweep,
             const Equal& equal) {
  Leg leg;
  obs::Stopwatch serial_clock;
  parallel::set_thread_count(1);
  const auto serial_result = sweep();
  leg.serial_ms = serial_clock.elapsed_ms();

  obs::Stopwatch parallel_clock;
  parallel::set_thread_count(pooled_threads);
  const auto parallel_result = sweep();
  leg.parallel_ms = parallel_clock.elapsed_ms();

  leg.identical = equal(serial_result, parallel_result);
  return leg;
}

void print_leg(const char* name, const Leg& leg, bool trailing_comma) {
  std::printf(
      "  \"%s\": {\"serial_ms\": %.2f, \"parallel_ms\": %.2f, "
      "\"speedup\": %.2f}%s\n",
      name, leg.serial_ms, leg.parallel_ms, leg.speedup(),
      trailing_comma ? "," : "");
}

}  // namespace

int main() {
  using bench::kBenchSeed;

  // One pooled leg even on single-core boxes; real speedup needs real cores.
  const std::uint32_t pooled =
      std::max<std::uint32_t>(2, parallel::thread_count());

  const Graph g = [&] {
    const bench::Section section{"generate"};
    const auto n =
        static_cast<VertexId>(12000 * bench::dataset_scale(1.0));
    return largest_component(barabasi_albert(n, 8, kBenchSeed)).graph;
  }();
  std::cout << "graph: n=" << g.num_vertices() << " m=" << g.num_edges()
            << ", pooled threads=" << pooled << "\n\n";

  Leg mixing;
  {
    const bench::Section section{"mixing sweep (serial vs pooled)"};
    MixingOptions options;
    options.num_sources = 48;
    options.max_walk_length = 64;
    options.seed = kBenchSeed;
    mixing = time_leg(
        pooled, [&] { return measure_mixing(g, options); },
        [](const MixingCurves& a, const MixingCurves& b) {
          return a.sources == b.sources && a.tvd == b.tvd;
        });
  }

  Leg expansion;
  {
    const bench::Section section{"expansion sweep (serial vs pooled)"};
    ExpansionOptions options;
    options.num_sources = 512;
    options.seed = kBenchSeed;
    expansion = time_leg(
        pooled, [&] { return measure_expansion(g, options); },
        [](const ExpansionProfile& a, const ExpansionProfile& b) {
          if (a.sources_used != b.sources_used || a.max_depth != b.max_depth ||
              a.points.size() != b.points.size())
            return false;
          for (std::size_t i = 0; i < a.points.size(); ++i)
            if (a.points[i].set_size != b.points[i].set_size ||
                a.points[i].min_neighbors != b.points[i].min_neighbors ||
                a.points[i].max_neighbors != b.points[i].max_neighbors ||
                a.points[i].mean_neighbors != b.points[i].mean_neighbors ||
                a.points[i].observations != b.points[i].observations)
              return false;
          return true;
        });
  }
  parallel::set_thread_count(0);  // restore the process default

  std::printf("{\n  \"bench\": \"micro_parallel_sweep\",\n");
  std::printf("  \"threads\": %u,\n", pooled);
  print_leg("mixing", mixing, true);
  print_leg("expansion", expansion, true);
  std::printf("  \"identical\": %s\n}\n",
              mixing.identical && expansion.identical ? "true" : "false");
  return mixing.identical && expansion.identical ? 0 : 1;
}

// Ablation A5: the paper's Sec.-VI open problem — how the measured
// properties evolve as a social graph grows. Replays a weak-trust
// (preferential attachment) and a strict-trust (affiliation) growth process
// and measures mu, degeneracy, core fragmentation and expansion at a
// geometric ladder of snapshot sizes.
#include <iostream>

#include "bench_common.hpp"
#include "dynamic/evolution.hpp"
#include "report/table.hpp"
#include "util/env.hpp"
#include "util/format.hpp"

namespace {

void run(const std::string& title, const sntrust::GrowthTrace& trace,
         const std::vector<sntrust::VertexId>& sizes) {
  using namespace sntrust;
  bench::Section section{title};
  EvolutionOptions options;
  options.seed = bench::kBenchSeed;
  const auto points = measure_evolution(trace, sizes, options);
  Table table{{"snapshot n", "LC nodes", "edges", "mu", "degeneracy",
               "max cores", "min expansion"}};
  for (const EvolutionPoint& p : points) {
    table.add_row({with_thousands(p.snapshot_vertices),
                   with_thousands(p.nodes), with_thousands(p.edges),
                   fixed(p.mu, 4), std::to_string(p.degeneracy),
                   std::to_string(p.max_core_count),
                   fixed(p.min_expansion_factor, 3)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace sntrust;
  const auto n =
      static_cast<VertexId>(12000 * bench_scale());
  const std::vector<VertexId> sizes{n / 16, n / 8, n / 4, n / 2, n};

  run("Ablation A5a: weak-trust growth (preferential attachment)",
      preferential_attachment_trace(n, 5, bench::kBenchSeed), sizes);
  run("Ablation A5b: strict-trust growth (regional affiliation)",
      affiliation_trace(n, 24, 1.2, bench::kBenchSeed), sizes);

  std::cout << "Expected shape: the weak-trust process keeps mu roughly flat "
               "and a single core at every size (its character is stable "
               "under growth); the strict-trust process stays near mu ~= 1 "
               "and fragments into more cores as it grows — evolution "
               "preserves, and sharpens, the social-model split.\n";
  return 0;
}

// Ablation A9: directed mixing (the authors' follow-up question). The main
// paper symmetrizes natively-directed datasets (Wiki-vote, Slashdot,
// Epinion) before measuring; this experiment re-directs the analogues at
// several reciprocity levels and measures the teleporting directed chain's
// TVD decay — quantifying how much the undirected simplification flatters
// the mixing time.
#include <iostream>

#include "bench_common.hpp"
#include "digraph/digraph.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

int main() {
  using namespace sntrust;
  bench::Section section{"Ablation A9: directed vs undirected mixing"};

  Table table{{"Dataset", "reciprocity", "arcs", "TVD@10", "TVD@25",
               "TVD@50"}};
  for (const char* id : {"wiki_vote", "slashdot_a", "epinion"}) {
    const DatasetSpec& spec = dataset_by_id(id);
    const Graph base =
        bench::dataset_graph(spec, 0.2);

    bool first = true;
    for (const double reciprocity : {1.0, 0.5, 0.1}) {
      const Digraph d =
          orient_graph(base, reciprocity, bench::kBenchSeed);
      const DirectedMixingCurves curves =
          measure_directed_mixing(d, 0.01, 8, 50, bench::kBenchSeed);
      double tvd10 = 0.0, tvd25 = 0.0, tvd50 = 0.0;
      for (const auto& curve : curves.tvd) {
        tvd10 = std::max(tvd10, curve[10]);
        tvd25 = std::max(tvd25, curve[25]);
        tvd50 = std::max(tvd50, curve[50]);
      }
      table.add_row({first ? spec.name : "", fixed(reciprocity, 1),
                     with_thousands(d.num_arcs()), fixed(tvd10, 4),
                     fixed(tvd25, 4), fixed(tvd50, 4)});
      first = false;
    }
    std::cerr << "  " << id << " done\n";
  }
  table.print(std::cout);
  std::cout << "Expected shape: directedness changes the mixing behaviour "
               "non-monotonically — on the strongly clustered analogue "
               "(Epinion) dropping reciprocity slows late-stage convergence "
               "by an order of magnitude (one-way arcs trap the walk in "
               "communities), while on the less clustered analogue random "
               "one-way orientation can even help (it sheds backtracking). "
               "Either way the undirected simplification measurably "
               "misestimates the directed chain — the follow-up work's "
               "starting point.\n";
  return 0;
}

// Figure 1: total variation distance vs walk length, measured with the
// sampling method from random sources — panel (a) small/medium datasets,
// panel (b) large datasets.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "markov/mixing.hpp"
#include "report/series.hpp"

namespace {

void run_panel(const std::string& title,
               const std::vector<std::string>& ids,
               std::uint32_t max_walk) {
  using namespace sntrust;
  bench::Section section{title};
  SeriesSet figure{"walk_length"};
  for (const std::string& id : ids) {
    bench::DatasetTimer dataset_timer;
    const DatasetSpec& spec = dataset_by_id(id);
    const Graph g = bench::dataset_graph(spec);
    MixingOptions options;
    options.num_sources = 10;
    options.max_walk_length = max_walk;
    options.seed = bench::kBenchSeed;
    const MixingCurves curves = measure_mixing(g, options);
    const std::vector<double> mean = curves.mean_curve();
    std::vector<double> x, y;
    for (std::uint32_t t = 0; t <= max_walk; t += 5) {
      x.push_back(t);
      y.push_back(mean[t]);
    }
    figure.add_series(spec.name, x, y);
    std::cerr << "  measured " << id << " (n=" << g.num_vertices() << ")\n";
  }
  figure.print(std::cout);
}

}  // namespace

static int run_bench() {
  run_panel("Figure 1(a): mixing of small/medium datasets (mean TVD, 10 sources)",
            sntrust::figure1_small_ids(), 100);
  run_panel("Figure 1(b): mixing of large datasets (mean TVD, 10 sources)",
            sntrust::figure1_large_ids(), 100);
  std::cout << "Expected shape: Wiki-vote/Epinion/Slashdot-class curves drop "
               "quickly; Physics/DBLP/Facebook-class curves stay high — the "
               "paper's fast/slow split.\n";
  return 0;
}

int main() { return sntrust::bench::guarded_main(run_bench); }

// Frontier-sparse vs dense kernel microbench for the mixing measurement.
//
// The sampling method evolves point-mass distributions, whose support stays
// tiny for the first many steps; the frontier-sparse kernel only touches
// support-adjacent rows while the dense kernel gathers all n rows every
// step. This bench times the short-walk mixing sweep (the paper's regime:
// TVD curves are read off at small t) under each kernel mode on the largest
// slow-mixing bench analogue, verifies all modes produce bitwise identical
// curves, locates the auto-mode crossover step, and prints one JSON object.
//
// Run with SNTRUST_REPORT=<path> to emit the unified run report (the
// committed bench/baselines comparisons are produced this way).
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "markov/frontier.hpp"
#include "markov/mixing.hpp"

namespace {

using namespace sntrust;

MixingOptions sweep_options(KernelMode mode, std::uint32_t sources,
                            std::uint32_t length) {
  MixingOptions options;
  options.num_sources = sources;
  options.max_walk_length = length;
  options.seed = bench::kBenchSeed;
  options.kernel = mode;
  return options;
}

struct ModeTiming {
  double ms = 0.0;
  MixingCurves curves;
};

ModeTiming time_mode(const Graph& g, KernelMode mode, std::uint32_t sources,
                     std::uint32_t length, int reps = 1) {
  // Repetitions take the minimum wall time: the sweep is deterministic, so
  // the fastest rep is the least-perturbed one on a noisy host.
  ModeTiming timing;
  for (int rep = 0; rep < reps; ++rep) {
    obs::Stopwatch clock;
    timing.curves = measure_mixing(g, sweep_options(mode, sources, length));
    const double ms = clock.elapsed_ms();
    if (rep == 0 || ms < timing.ms) timing.ms = ms;
  }
  return timing;
}

bool bitwise_equal(const MixingCurves& a, const MixingCurves& b) {
  return a.sources == b.sources && a.tvd == b.tvd;
}

}  // namespace

int main() {
  // The slow-mixing community analogues keep walk supports small for the
  // longest, which is exactly where the sparse kernel pays off; dblp is the
  // largest of them in the bench set (its frontier stays below the dense
  // threshold through step ~9 of the short-walk sweep). The fast-mixing
  // analogues cross over within a handful of steps — select them via
  // SNTRUST_KERNEL_BENCH_DATASET to see the auto kernel degrade gracefully.
  const Graph g = [&] {
    const bench::Section section{"generate"};
    return bench::dataset_graph(
        dataset_by_id(env_string("SNTRUST_KERNEL_BENCH_DATASET", "dblp")));
  }();
  std::cout << "graph: n=" << g.num_vertices() << " m=" << g.num_edges()
            << "\n\n";

  constexpr std::uint32_t kSources = 24;
  constexpr std::uint32_t kShortWalk = 10;

  // Warm the graph and stationary-distribution caches so leg order does not
  // bias the comparison.
  (void)time_mode(g, KernelMode::kAuto, 2, 2);

  // One report span per kernel leg: the emitted run report then carries the
  // dense-vs-sparse short-walk comparison on its own (see bench/baselines).
  ModeTiming dense, sparse, automatic;
  {
    const bench::Section section{"short-walk sweep [dense]"};
    dense = time_mode(g, KernelMode::kDense, kSources, kShortWalk, 3);
  }
  {
    const bench::Section section{"short-walk sweep [sparse]"};
    sparse = time_mode(g, KernelMode::kSparse, kSources, kShortWalk, 3);
  }
  {
    const bench::Section section{"short-walk sweep [auto]"};
    automatic = time_mode(g, KernelMode::kAuto, kSources, kShortWalk, 3);
  }
  const bool identical = bitwise_equal(dense.curves, sparse.curves) &&
                         bitwise_equal(dense.curves, automatic.curves);

  // Speedup as a function of walk length: the sparse advantage decays as the
  // support saturates, which is what the auto crossover exploits.
  std::vector<std::uint32_t> lengths{2, 5, 10, 20, 40};
  std::vector<double> by_length_dense, by_length_auto;
  {
    const bench::Section section{"speedup by walk length (dense vs auto)"};
    for (const std::uint32_t length : lengths) {
      by_length_dense.push_back(
          time_mode(g, KernelMode::kDense, 8, length, 2).ms);
      by_length_auto.push_back(time_mode(g, KernelMode::kAuto, 8, length, 2).ms);
    }
  }

  // Auto-mode crossover: first step whose candidate frontier degree crosses
  // the dense threshold, walked from the sweep's first sampled source.
  std::uint32_t crossover = 0;
  double crossover_fraction = 0.0;
  {
    const bench::Section section{"crossover point"};
    FrontierWalk walk{g, {KernelMode::kAuto, kernel_dense_fraction()}};
    walk.reset(dense.curves.sources.front());
    for (std::uint32_t t = 1; t <= 64; ++t) {
      walk.step(StepKind::kPlain);
      if (walk.last_step_dense() || walk.saturated()) {
        crossover = t;
        crossover_fraction =
            static_cast<double>(walk.last_frontier_degree()) /
            static_cast<double>(g.targets().size());
        break;
      }
    }
  }

  obs::RunReporter& reporter = obs::RunReporter::instance();
  reporter.set_config("bench", "micro_kernels");
  reporter.set_config("graph_n", g.num_vertices());
  reporter.set_config("graph_m", g.num_edges());
  reporter.set_config("kernel_threshold", kernel_dense_fraction());

  const double speedup_sparse = sparse.ms > 0.0 ? dense.ms / sparse.ms : 0.0;
  const double speedup_auto =
      automatic.ms > 0.0 ? dense.ms / automatic.ms : 0.0;
  reporter.set_config("speedup_sparse", speedup_sparse);
  reporter.set_config("speedup_auto", speedup_auto);
  reporter.set_config("identical", identical);
  std::printf("{\n  \"bench\": \"micro_kernels\",\n");
  std::printf("  \"n\": %u, \"m\": %llu,\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  std::printf(
      "  \"short_walk\": {\"sources\": %u, \"max_walk_length\": %u,\n"
      "    \"dense_ms\": %.2f, \"sparse_ms\": %.2f, \"auto_ms\": %.2f,\n"
      "    \"speedup_sparse\": %.2f, \"speedup_auto\": %.2f},\n",
      kSources, kShortWalk, dense.ms, sparse.ms, automatic.ms, speedup_sparse,
      speedup_auto);
  std::printf("  \"by_walk_length\": [");
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    const double speedup = by_length_auto[i] > 0.0
                               ? by_length_dense[i] / by_length_auto[i]
                               : 0.0;
    std::printf("%s{\"t\": %u, \"dense_ms\": %.2f, \"auto_ms\": %.2f, "
                "\"speedup\": %.2f}",
                i == 0 ? "" : ", ", lengths[i], by_length_dense[i],
                by_length_auto[i], speedup);
  }
  std::printf("],\n");
  std::printf("  \"crossover\": {\"step\": %u, \"frontier_fraction\": %.4f},\n",
              crossover, crossover_fraction);
  std::printf("  \"identical\": %s\n}\n", identical ? "true" : "false");
  return identical ? 0 : 1;
}

// Figure 2: empirical CDF of node coreness per dataset — panel (a) small,
// panel (b) large. The paper's reading: fast-mixing graphs put a larger
// fraction of nodes at high coreness.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "cores/kcore.hpp"
#include "report/series.hpp"

namespace {

void run_panel(const std::string& title,
               const std::vector<std::string>& ids) {
  using namespace sntrust;
  bench::Section section{title};
  SeriesSet figure{"core_number"};
  for (const std::string& id : ids) {
    bench::DatasetTimer dataset_timer;
    const DatasetSpec& spec = dataset_by_id(id);
    const Graph g = bench::dataset_graph(spec);
    const CoreDecomposition cores = core_decomposition(g);
    const std::vector<double> ecdf = coreness_ecdf(cores);
    std::vector<double> x, y;
    // Subsample to <= 25 points for readability.
    const std::size_t step = std::max<std::size_t>(1, ecdf.size() / 25);
    for (std::size_t k = 0; k < ecdf.size(); k += step) {
      x.push_back(static_cast<double>(k));
      y.push_back(ecdf[k]);
    }
    x.push_back(static_cast<double>(ecdf.size() - 1));
    y.push_back(1.0);
    figure.add_series(spec.name, x, y);
    std::cerr << "  " << id << ": degeneracy " << cores.degeneracy << "\n";
  }
  figure.print(std::cout);
}

}  // namespace

static int run_bench() {
  run_panel("Figure 2(a): coreness ECDF, small datasets",
            sntrust::figure2_small_ids());
  run_panel("Figure 2(b): coreness ECDF, large datasets",
            sntrust::figure2_large_ids());
  std::cout << "Expected shape: fast mixers (Wiki-vote, Epinion) keep mass at "
               "high core numbers (ECDF rises late); slow mixers saturate "
               "at small k.\n";
  return 0;
}

int main() { return sntrust::bench::guarded_main(run_bench); }

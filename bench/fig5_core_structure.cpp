// Figure 5 (a)-(j): relative size of cores nu_k vs k (top row) and the
// number of connected cores vs k (bottom row) for representative datasets.
#include <iostream>

#include "bench_common.hpp"
#include "cores/core_profile.hpp"
#include "report/series.hpp"

static int run_bench() {
  using namespace sntrust;

  SeriesSet sizes{"k"};
  SeriesSet counts{"k"};
  {
    bench::Section section{"Figure 5: core structure per k"};
    for (const std::string& id : figure5_ids()) {
      bench::DatasetTimer dataset_timer;
    const DatasetSpec& spec = dataset_by_id(id);
      const Graph g = bench::dataset_graph(spec);
      const auto levels = core_profile(g);
      std::vector<double> x, nu, components;
      const std::size_t step = std::max<std::size_t>(1, levels.size() / 20);
      for (std::size_t i = 0; i < levels.size(); i += step) {
        x.push_back(levels[i].k);
        nu.push_back(levels[i].nu);
        components.push_back(levels[i].num_components);
      }
      sizes.add_series(spec.name, x, nu);
      counts.add_series(spec.name, x, components);
      std::cerr << "  profiled " << id << " (degeneracy "
                << (levels.empty() ? 0u : levels.back().k) << ")\n";
    }
  }

  std::cout << "--- Figure 5 top row: relative core size nu_k ---\n";
  sizes.print(std::cout);
  std::cout << "\n--- Figure 5 bottom row: number of connected cores ---\n";
  counts.print(std::cout);
  std::cout << "\nExpected shape (paper Fig. 5): fast mixers (Epinion, "
               "Wiki-vote) hold a single core with large nu_k deep into k; "
               "slow mixers (Physics) fragment into multiple small cores as "
               "k grows.\n";
  return 0;
}

int main() { return sntrust::bench::guarded_main(run_bench); }

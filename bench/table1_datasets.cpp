// Table I: datasets, their sizes, and the second largest eigenvalue mu of
// the transition matrix — regenerated over the synthetic analogues.
//
// Paper values are printed alongside (where legible in the source text) so
// the class ordering can be compared: weak-trust graphs (Wiki-vote, Epinion,
// Slashdot) get clearly smaller mu than strict-trust graphs (Physics, DBLP,
// Facebook), whose mu approaches 1.
#include <iostream>

#include "bench_common.hpp"
#include "markov/spectral.hpp"
#include "report/csv_sink.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

static int run_bench() {
  using namespace sntrust;
  bench::Section section{"Table I: dataset inventory and SLEM (mu)"};

  Table table{{"Dataset", "Nodes", "Edges", "mu (measured)", "mu (paper)",
               "class"}};
  for (const DatasetSpec& spec : all_datasets()) {
    bench::DatasetTimer dataset_timer;
    const Graph g = bench::dataset_graph(spec);
    SlemOptions options;
    options.seed = bench::kBenchSeed;
    const SlemResult slem = second_largest_eigenvalue(g, options);
    table.add_row({spec.name, with_thousands(g.num_vertices()),
                   with_thousands(g.num_edges()), fixed(slem.mu, 4),
                   spec.paper_mu ? fixed(*spec.paper_mu, 3) : "n/a",
                   to_string(spec.expected_class)});
    std::cerr << "  measured " << spec.id << "\n";
  }
  table.print(std::cout);
  maybe_write_csv(table, "table1_datasets");
  std::cout << "Expected shape: strict-trust (slow) analogues cluster near "
               "mu ~= 1; weak-trust (fast) analogues sit clearly lower.\n";
  return 0;
}

int main() { return sntrust::bench::guarded_main(run_bench); }

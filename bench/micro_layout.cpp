// Layout-engine microbench: plain CSR vs the degree-ordered layouts
// (graph/layout.hpp) on the three substrate-bound hot paths.
//
//   load    cold-start cost: text parse vs binary read vs mmap snapshot
//           (graph/snapshot.hpp) of the same graph,
//   matvec  dense distribution evolution (markov/layout_matvec.hpp) — the
//           regime of long mixing walks, where every step is an O(m) gather,
//   bfs     direction-optimizing BFS sweeps (graph/frontier_bfs.hpp).
//
// Every layout leg's results are checked bitwise against the plain oracle
// before any timing is reported; a mismatch fails the bench. Timings are
// best-of-3 (deterministic work, so the fastest rep is the least-perturbed
// one). Prints one JSON object; run with SNTRUST_REPORT=<path> for the
// unified run report (bench/baselines/micro_layout.json is produced that
// way).
//
// The default dataset is the largest bundled analogue at 2x the bench base
// scale, big enough that the n-sized gather vectors bust the last-level
// cache — the regime the degree-ordered relabeling targets. Select others
// via SNTRUST_LAYOUT_BENCH_DATASET / SNTRUST_LAYOUT_BENCH_BASE.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/frontier_bfs.hpp"
#include "graph/io.hpp"
#include "graph/layout.hpp"
#include "graph/snapshot.hpp"
#include "markov/distribution.hpp"
#include "markov/layout_matvec.hpp"
#include "markov/transition.hpp"
#include "util/rng.hpp"

namespace {

using namespace sntrust;

constexpr int kReps = 3;
constexpr std::uint32_t kMatvecSteps = 20;
constexpr std::uint32_t kBfsSources = 12;

double best_of(int reps, const std::function<double()>& leg) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const double ms = leg();
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

struct MatvecLeg {
  double ms = 0.0;
  Distribution result;
};

/// kMatvecSteps dense plain-chain steps from the degree distribution (fully
/// dense input, so every step is the O(m) gather the long-walk regime pays).
MatvecLeg run_matvec(const Graph& g, GraphLayout layout) {
  MatvecLeg leg;
  Distribution p(g.num_vertices());
  const double inv = 1.0 / static_cast<double>(g.targets().size());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    p[v] = static_cast<double>(g.degree_unchecked(v)) * inv;
  Distribution out(g.num_vertices());
  if (layout == GraphLayout::kPlain) {
    leg.ms = best_of(kReps, [&] {
      Distribution work = p;
      obs::Stopwatch clock;
      for (std::uint32_t t = 0; t < kMatvecSteps; ++t) {
        step_distribution(g, work, out);
        work.swap(out);
      }
      const double ms = clock.elapsed_ms();
      leg.result = work;
      return ms;
    });
  } else {
    LayoutMatvec matvec{g, g.layout(layout)};
    leg.ms = best_of(kReps, [&] {
      Distribution work = p;
      obs::Stopwatch clock;
      for (std::uint32_t t = 0; t < kMatvecSteps; ++t) {
        matvec.step(StepKind::kPlain, 0.0, work, out);
        work.swap(out);
      }
      const double ms = clock.elapsed_ms();
      leg.result = work;
      return ms;
    });
  }
  return leg;
}

struct BfsLeg {
  double ms = 0.0;
  std::uint64_t checksum = 0;  // order-independent distance digest
};

BfsLeg run_bfs(const Graph& g, GraphLayout layout,
               const std::vector<VertexId>& sources) {
  BfsLeg leg;
  FrontierBfs bfs{g, {14, 24, layout}};
  leg.ms = best_of(kReps, [&] {
    std::uint64_t checksum = 0;
    obs::Stopwatch clock;
    for (const VertexId source : sources) {
      const BfsResult& result = bfs.run(source);
      for (VertexId v = 0; v < g.num_vertices(); ++v)
        checksum += stream_seed(result.distances[v], v);
    }
    const double ms = clock.elapsed_ms();
    leg.checksum = checksum;
    return ms;
  });
  return leg;
}

}  // namespace

int main() {
  return sntrust::bench::guarded_main([] {
    const DatasetSpec& spec = dataset_by_id(
        env_string("SNTRUST_LAYOUT_BENCH_DATASET", "livejournal_a"));
    const double base = env_double("SNTRUST_LAYOUT_BENCH_BASE", 2.0);
    const Graph g = [&] {
      const bench::Section section{"generate"};
      return bench::dataset_graph(spec, base);
    }();
    std::printf("graph: %s n=%u m=%llu\n\n", spec.id.c_str(),
                g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges()));

    // --- load: text parse vs binary read vs mmap snapshot ----------------
    const std::string dir = env_string("TMPDIR", "/tmp");
    const std::string text_path = dir + "/micro_layout_graph.txt";
    const std::string binary_path = dir + "/micro_layout_graph.bin";
    const std::string snap_path = dir + "/micro_layout_graph.snap";
    double text_ms = 0.0, binary_ms = 0.0, mmap_ms = 0.0;
    {
      const bench::Section section{"load (parse vs mmap)"};
      write_edge_list_file(g, text_path);
      write_binary_file(g, binary_path);
      write_snapshot(g, snap_path);
      text_ms = best_of(kReps, [&] {
        obs::Stopwatch clock;
        const Graph loaded = read_edge_list_file(text_path);
        return loaded.num_vertices() ? clock.elapsed_ms() : -1.0;
      });
      binary_ms = best_of(kReps, [&] {
        obs::Stopwatch clock;
        const Graph loaded = read_binary_file(binary_path);
        return loaded.num_vertices() ? clock.elapsed_ms() : -1.0;
      });
      // The mmap leg walks both mapped arrays inside the timed region so
      // every page is faulted in — the reported time is usable-graph time,
      // not lazy-map sleight of hand. (The binary leg's time includes the
      // full structural validation; the snapshot skips it by contract,
      // trusting the format CRC — that asymmetry is the design.)
      mmap_ms = best_of(kReps, [&] {
        obs::Stopwatch clock;
        const Graph loaded = load_snapshot(snap_path);
        std::uint64_t sink = 0;
        for (const EdgeIndex offset : loaded.offsets()) sink ^= offset;
        for (const VertexId target : loaded.targets()) sink ^= target;
        const double ms = clock.elapsed_ms();
        return sink != 0xffffffffffffffffULL ? ms : -1.0;
      });
    }

    // --- matvec ----------------------------------------------------------
    MatvecLeg matvec_plain, matvec_hilo, matvec_compressed;
    {
      const bench::Section section{"matvec (20 dense steps)"};
      matvec_plain = run_matvec(g, GraphLayout::kPlain);
      matvec_hilo = run_matvec(g, GraphLayout::kHilo);
      matvec_compressed = run_matvec(g, GraphLayout::kCompressed);
    }
    const bool matvec_identical =
        matvec_plain.result == matvec_hilo.result &&
        matvec_plain.result == matvec_compressed.result;
    if (!matvec_identical) {
      std::fprintf(stderr, "FATAL: layout matvec diverged from plain CSR\n");
      return 1;
    }

    // --- bfs -------------------------------------------------------------
    std::vector<VertexId> sources;
    {
      Rng rng{bench::kBenchSeed};
      sources = rng.sample_without_replacement(
          g.num_vertices(), std::min<VertexId>(kBfsSources,
                                               g.num_vertices()));
    }
    BfsLeg bfs_plain, bfs_hilo, bfs_compressed;
    {
      const bench::Section section{"bfs (12 sources, direction-optimizing)"};
      bfs_plain = run_bfs(g, GraphLayout::kPlain, sources);
      bfs_hilo = run_bfs(g, GraphLayout::kHilo, sources);
      bfs_compressed = run_bfs(g, GraphLayout::kCompressed, sources);
    }
    if (bfs_plain.checksum != bfs_hilo.checksum ||
        bfs_plain.checksum != bfs_compressed.checksum) {
      std::fprintf(stderr, "FATAL: layout BFS distances diverged from plain\n");
      return 1;
    }

    // --- report ----------------------------------------------------------
    const double edges = static_cast<double>(g.targets().size());
    const auto meps = [&](double ms, double traversals) {
      return ms > 0.0 ? traversals * edges / (ms * 1e3) : 0.0;
    };
    const std::uint64_t plain_bytes =
        g.targets().size() * sizeof(VertexId) +
        g.offsets().size() * sizeof(EdgeIndex);
    const std::uint64_t hilo_bytes = g.layout(GraphLayout::kHilo)
                                         ->adjacency_bytes();
    const std::uint64_t compressed_bytes =
        g.layout(GraphLayout::kCompressed)->adjacency_bytes();

    obs::RunReporter& reporter = obs::RunReporter::instance();
    reporter.set_config("bench", "micro_layout");
    reporter.set_config("dataset", spec.id);
    reporter.set_config("graph_n", g.num_vertices());
    reporter.set_config("graph_m", g.num_edges());
    reporter.set_config("load_speedup_mmap_vs_binary",
                        mmap_ms > 0.0 ? binary_ms / mmap_ms : 0.0);
    reporter.set_config("matvec_speedup_hilo",
                        matvec_hilo.ms > 0.0
                            ? matvec_plain.ms / matvec_hilo.ms : 0.0);
    reporter.set_config("matvec_speedup_compressed",
                        matvec_compressed.ms > 0.0
                            ? matvec_plain.ms / matvec_compressed.ms : 0.0);
    reporter.set_config("bfs_speedup_hilo",
                        bfs_hilo.ms > 0.0 ? bfs_plain.ms / bfs_hilo.ms : 0.0);
    reporter.set_config("bfs_speedup_compressed",
                        bfs_compressed.ms > 0.0
                            ? bfs_plain.ms / bfs_compressed.ms : 0.0);
    reporter.set_config("identical", true);

    std::printf("{\n  \"bench\": \"micro_layout\", \"dataset\": \"%s\",\n",
                spec.id.c_str());
    std::printf("  \"n\": %u, \"m\": %llu,\n", g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges()));
    std::printf(
        "  \"load\": {\"text_parse_ms\": %.2f, \"binary_read_ms\": %.2f, "
        "\"mmap_load_ms\": %.3f,\n"
        "    \"mmap_vs_binary\": %.1f, \"mmap_vs_text\": %.1f},\n",
        text_ms, binary_ms, mmap_ms, mmap_ms > 0.0 ? binary_ms / mmap_ms : 0.0,
        mmap_ms > 0.0 ? text_ms / mmap_ms : 0.0);
    std::printf(
        "  \"matvec\": {\"steps\": %u, \"plain_ms\": %.2f, \"hilo_ms\": "
        "%.2f, \"compressed_ms\": %.2f,\n"
        "    \"plain_meps\": %.1f, \"hilo_meps\": %.1f, \"compressed_meps\": "
        "%.1f,\n"
        "    \"speedup_hilo\": %.2f, \"speedup_compressed\": %.2f},\n",
        kMatvecSteps, matvec_plain.ms, matvec_hilo.ms, matvec_compressed.ms,
        meps(matvec_plain.ms, kMatvecSteps),
        meps(matvec_hilo.ms, kMatvecSteps),
        meps(matvec_compressed.ms, kMatvecSteps),
        matvec_hilo.ms > 0.0 ? matvec_plain.ms / matvec_hilo.ms : 0.0,
        matvec_compressed.ms > 0.0
            ? matvec_plain.ms / matvec_compressed.ms : 0.0);
    std::printf(
        "  \"bfs\": {\"sources\": %zu, \"plain_ms\": %.2f, \"hilo_ms\": "
        "%.2f, \"compressed_ms\": %.2f,\n"
        "    \"plain_mteps\": %.1f, \"hilo_mteps\": %.1f, "
        "\"compressed_mteps\": %.1f,\n"
        "    \"speedup_hilo\": %.2f, \"speedup_compressed\": %.2f},\n",
        sources.size(), bfs_plain.ms, bfs_hilo.ms, bfs_compressed.ms,
        meps(bfs_plain.ms, static_cast<double>(sources.size())),
        meps(bfs_hilo.ms, static_cast<double>(sources.size())),
        meps(bfs_compressed.ms, static_cast<double>(sources.size())),
        bfs_hilo.ms > 0.0 ? bfs_plain.ms / bfs_hilo.ms : 0.0,
        bfs_compressed.ms > 0.0 ? bfs_plain.ms / bfs_compressed.ms : 0.0);
    std::printf(
        "  \"adjacency_bytes\": {\"plain\": %llu, \"hilo\": %llu, "
        "\"compressed\": %llu},\n  \"identical\": true\n}\n",
        static_cast<unsigned long long>(plain_bytes),
        static_cast<unsigned long long>(hilo_bytes),
        static_cast<unsigned long long>(compressed_bytes));

    std::remove(text_path.c_str());
    std::remove(binary_path.c_str());
    std::remove(snap_path.c_str());
    return 0;
  });
}

// The paper's overall thesis, end-to-end: the quality of the measured
// properties (mixing / expansion / cores) decides how well the defenses
// work. Runs GateKeeper and SybilRank with identical parameters across six
// analogues spanning the classes and prints defense quality next to mu —
// slow mixers should pay in honest acceptance and/or Sybil leakage.
#include <iostream>

#include "bench_common.hpp"
#include "markov/spectral.hpp"
#include "report/csv_sink.hpp"
#include "report/table.hpp"
#include "sybil/attack.hpp"
#include "sybil/gatekeeper.hpp"
#include "sybil/sybilrank.hpp"
#include "util/format.hpp"

int main() {
  using namespace sntrust;
  bench::Section section{"Application: defense quality across graph classes"};

  Table table{{"Dataset", "class", "mu", "GK honest", "GK sybil/edge",
               "SR AUC", "SR honest"}};
  for (const char* id : {"wiki_vote", "epinion", "enron", "physics_1",
                         "physics_2", "facebook_a"}) {
    const DatasetSpec& spec = dataset_by_id(id);
    const Graph honest =
        bench::dataset_graph(spec, 0.15);

    SlemOptions slem_options;
    slem_options.seed = bench::kBenchSeed;
    const double mu = second_largest_eigenvalue(honest, slem_options).mu;

    AttackParams attack;
    attack.num_sybils = honest.num_vertices() / 4;
    attack.attack_edges =
        std::max<std::uint32_t>(10, honest.num_vertices() / 200);
    attack.seed = bench::kBenchSeed;
    const AttackedGraph attacked{honest, attack};

    GateKeeperParams gk;
    gk.num_distributers = 50;
    gk.f_admit = 0.1;
    gk.seed = bench::kBenchSeed;
    const GateKeeperEvaluation gk_eval = evaluate_gatekeeper(attacked, 0, gk);

    const SybilRankResult rank = run_sybilrank(attacked.graph(), {0, 1, 2});
    const double auc = ranking_auc(rank.ranking, attacked);
    const PairwiseEvaluation sr_eval = evaluate_sybilrank(attacked, {0, 1, 2});

    table.add_row({spec.name, to_string(spec.expected_class), fixed(mu, 4),
                   fixed(100 * gk_eval.honest_accept_fraction, 1) + "%",
                   fixed(gk_eval.sybils_per_attack_edge, 2), fixed(auc, 3),
                   fixed(100 * sr_eval.honest_accept_fraction, 1) + "%"});
    std::cerr << "  " << id << " done\n";
  }
  table.print(std::cout);
  maybe_write_csv(table, "app_defense_vs_class");
  std::cout << "Expected shape: defense quality degrades as mu -> 1 — the "
               "fast weak-trust graphs give high honest acceptance and "
               "near-perfect rankings; the Physics-class slow mixers lose "
               "honest users and leak more Sybils per edge. This is the "
               "paper's bottom line: the property quality, not the defense "
               "design, is the binding constraint.\n";
  return 0;
}

// Application experiment: anonymity of walk-based mixing over social graphs
// (the paper's ref [8]). Prints the entropy-vs-hops trajectory per dataset
// class and the hop count needed to reach 90% of maximal entropy — the
// anonymous-communication reading of Fig. 1.
#include <iostream>
#include <vector>

#include "anon/social_mix.hpp"
#include "bench_common.hpp"
#include "report/series.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

int main() {
  using namespace sntrust;
  bench::Section section{"Application: walk-based anonymity on social graphs"};

  SeriesSet figure{"hops"};
  Table table{{"Dataset", "n", "class", "hops to 90% max entropy"}};
  for (const char* id :
       {"wiki_vote", "epinion", "enron", "physics_1", "physics_2",
        "facebook_a"}) {
    const DatasetSpec& spec = dataset_by_id(id);
    const Graph g =
        bench::dataset_graph(spec, 0.25);

    // Entropy trajectory from one representative sender (vertex 0).
    const AnonymityCurve curve =
        measure_anonymity(g, 0, 60, /*lazy=*/true);
    std::vector<double> x, y;
    for (std::uint32_t t = 0; t <= 60; t += 5) {
      x.push_back(t);
      y.push_back(curve.entropy_bits[t] / curve.max_entropy_bits);
    }
    figure.add_series(spec.name, x, y);

    const AnonymityTime time =
        anonymity_time(g, 0.9, 6, 400, bench::kBenchSeed);
    table.add_row({spec.name, with_thousands(g.num_vertices()),
                   to_string(spec.expected_class),
                   time.reached == time.senders.size()
                       ? fixed(time.mean_hops, 1)
                       : "> 400 for " +
                             std::to_string(time.senders.size() - time.reached) +
                             "/" + std::to_string(time.senders.size()) +
                             " senders"});
    std::cerr << "  " << id << " done\n";
  }

  std::cout << "Normalized entropy (fraction of log2 n) per hop:\n";
  figure.print(std::cout);
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "Expected shape: weak-trust graphs reach ~90% of maximal "
               "entropy within tens of hops; strict-trust graphs leak the "
               "sender's community for hundreds — the anonymity reading of "
               "the paper's mixing split.\n";
  return 0;
}

// Ablation A7: measurement methodology under graph sampling. The paper
// measures full graphs (sampling only walk *sources*); practitioners often
// measure a sampled subgraph instead. This experiment quantifies which of
// the paper's properties survive which sampler: snowball samples inflate
// density/coreness and shrink mixing time artificially; uniform-vertex
// samples shatter the structure; random-walk samples track the truth best.
#include <iostream>

#include "bench_common.hpp"
#include "cores/kcore.hpp"
#include "gen/sampling.hpp"
#include "graph/components.hpp"
#include "graph/stats.hpp"
#include "markov/spectral.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

namespace {

struct Row {
  std::string name;
  sntrust::Graph graph;
};

}  // namespace

int main() {
  using namespace sntrust;
  bench::Section section{"Ablation A7: property fidelity under sampling"};

  const Graph full =
      bench::dataset_graph(dataset_by_id("epinion"), 0.3);
  const VertexId k = full.num_vertices() / 5;
  std::cout << "full graph: Epinion analogue, n=" << full.num_vertices()
            << ", sample size k=" << k << "\n\n";

  std::vector<Row> rows;
  rows.push_back({"full graph", full});
  rows.push_back({"random vertices",
                  largest_component(
                      sample_random_vertices(full, k, bench::kBenchSeed).graph)
                      .graph});
  rows.push_back({"random edges",
                  largest_component(
                      sample_random_edges(full, k, bench::kBenchSeed).graph)
                      .graph});
  rows.push_back(
      {"snowball",
       largest_component(sample_snowball(full, k, bench::kBenchSeed).graph)
           .graph});
  rows.push_back({"random walk",
                  largest_component(
                      sample_random_walk(full, k, bench::kBenchSeed).graph)
                      .graph});

  Table table{{"sample", "LC nodes", "mean deg", "clustering", "degeneracy",
               "mu"}};
  for (const Row& row : rows) {
    const DegreeStats degrees = degree_stats(row.graph);
    const double clustering = average_local_clustering(row.graph);
    const std::uint32_t degeneracy = core_decomposition(row.graph).degeneracy;
    SlemOptions slem_options;
    slem_options.seed = bench::kBenchSeed;
    const double mu = second_largest_eigenvalue(row.graph, slem_options).mu;
    table.add_row({row.name, with_thousands(row.graph.num_vertices()),
                   fixed(degrees.mean, 2), fixed(clustering, 3),
                   std::to_string(degeneracy), fixed(mu, 4)});
    std::cerr << "  " << row.name << " done\n";
  }
  table.print(std::cout);
  std::cout << "Expected shape: uniform-vertex sampling guts density and "
               "coreness; snowball/walk samples preserve degeneracy and "
               "clustering better but perturb mu — a caution for applying "
               "the paper's methodology to sampled graphs.\n";
  return 0;
}

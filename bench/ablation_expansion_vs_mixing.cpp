// Ablation A3: the paper's Sec. V claim that the expansion measurements
// "can be interpreted as a scale of" the mixing measurements. For every
// dataset analogue, measure mu (spectral mixing) and the minimum expected
// expansion factor, and print the scatter; the two should order the
// datasets the same way (rank correlation reported).
#include <algorithm>
#include <iostream>
#include <numeric>
#include <vector>

#include "bench_common.hpp"
#include "expansion/expansion_profile.hpp"
#include "markov/spectral.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

namespace {

double spearman_rank_correlation(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  const std::size_t n = a.size();
  const auto ranks = [n](const std::vector<double>& values) {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t x, std::size_t y) { return values[x] < values[y]; });
    std::vector<double> rank(n);
    for (std::size_t i = 0; i < n; ++i) rank[order[i]] = static_cast<double>(i);
    return rank;
  };
  const std::vector<double> ra = ranks(a), rb = ranks(b);
  double d2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
  return 1.0 - 6.0 * d2 / (static_cast<double>(n) * (n * n - 1.0));
}

}  // namespace

int main() {
  using namespace sntrust;
  bench::Section section{"Ablation A3: expansion vs mixing across datasets"};

  Table table{{"Dataset", "mu", "min expansion factor", "class"}};
  std::vector<double> mus, alphas;
  for (const DatasetSpec& spec : all_datasets()) {
    const Graph g =
        bench::dataset_graph(spec, 0.25);

    SlemOptions slem_options;
    slem_options.seed = bench::kBenchSeed;
    const double mu = second_largest_eigenvalue(g, slem_options).mu;

    ExpansionOptions expansion_options;
    expansion_options.num_sources = std::min<std::uint32_t>(
        g.num_vertices(), 1500);
    expansion_options.seed = bench::kBenchSeed;
    const double alpha =
        measure_expansion(g, expansion_options).min_alpha(g.num_vertices());

    mus.push_back(mu);
    alphas.push_back(alpha);
    table.add_row({spec.name, fixed(mu, 4), fixed(alpha, 4),
                   to_string(spec.expected_class)});
    std::cerr << "  " << spec.id << " done\n";
  }
  table.print(std::cout);

  // Faster mixing (smaller mu) should pair with larger expansion, so the
  // rank correlation between mu and alpha should be strongly negative.
  std::cout << "Spearman rank correlation (mu vs expansion factor): "
            << fixed(spearman_rank_correlation(mus, alphas), 3)
            << "  (expected: strongly negative)\n";
  return 0;
}

// Ablation A4: trust-modulated walks (the mechanism of the paper's ref [16],
// built on this paper's slow-mixing observation). Sweeps the modulation
// parameter alpha on a fast-mixing and a slow-mixing analogue and reports
// the measured mixing time — showing modulation converts a fast weak-trust
// graph into a strict-trust-like slow mixer, deliberately.
#include <iostream>

#include "bench_common.hpp"
#include "markov/modulated.hpp"
#include "markov/spectral.hpp"
#include "report/table.hpp"
#include "sybil/attack.hpp"
#include "sybil/sybillimit.hpp"
#include "util/format.hpp"

int main() {
  using namespace sntrust;
  bench::Section section{"Ablation A4: trust modulation vs mixing time"};

  const Graph fast =
      bench::dataset_graph(dataset_by_id("wiki_vote"), 0.5);
  const Graph slow =
      bench::dataset_graph(dataset_by_id("physics_1"), 1.0);
  std::cout << "fast analogue (Wiki-vote): n=" << fast.num_vertices()
            << ", slow analogue (Physics 1): n=" << slow.num_vertices()
            << "\n\n";

  Table table{{"alpha", "T(0.01) fast graph", "T(0.01) slow graph"}};
  for (const double alpha : {0.0, 0.2, 0.4, 0.6, 0.8, 0.9}) {
    const std::uint32_t t_fast =
        modulated_mixing_time(fast, alpha, 0.01, 8, 2000, bench::kBenchSeed);
    const std::uint32_t t_slow =
        modulated_mixing_time(slow, alpha, 0.01, 8, 2000, bench::kBenchSeed);
    table.add_row({fixed(alpha, 1),
                   t_fast == 0xFFFFFFFFu ? "> 2000" : std::to_string(t_fast),
                   t_slow == 0xFFFFFFFFu ? "> 2000" : std::to_string(t_slow)});
    std::cerr << "  alpha " << alpha << " done\n";
  }
  table.print(std::cout);
  std::cout << "Expected shape: T scales ~ 1/(1 - alpha) on both graphs; at "
               "high alpha even the weak-trust graph mixes like a "
               "strict-trust one — modulation trades efficiency for trust, "
               "as ref [16] designed.\n\n";

  // Part 2: the tradeoff inside a deployed defense. Trust-aware SybilLimit
  // compensates modulation with longer routes; longer routes admit more
  // honest users and also give Sybil routes more chances to intersect.
  {
    bench::Section defense_section{
        "Ablation A4b: trust-aware SybilLimit tradeoff"};
    AttackParams attack;
    attack.num_sybils = fast.num_vertices() / 4;
    attack.attack_edges =
        std::max<std::uint32_t>(10, fast.num_vertices() / 150);
    attack.seed = bench::kBenchSeed;
    const AttackedGraph attacked{fast, attack};

    Table tradeoff{{"alpha", "route length", "honest accepted",
                    "sybils per attack edge"}};
    for (const double alpha : {0.0, 0.3, 0.6, 0.8}) {
      SybilLimitParams params;
      params.seed = bench::kBenchSeed;
      params.trust_alpha = alpha;
      const SybilLimit limit{attacked.graph(), params};
      const PairwiseEvaluation eval = evaluate_sybillimit(
          attacked, 0, params, 100, 100, bench::kBenchSeed);
      tradeoff.add_row({fixed(alpha, 1),
                        std::to_string(limit.route_length()),
                        fixed(100 * eval.honest_accept_fraction, 1) + "%",
                        fixed(eval.sybils_per_attack_edge, 2)});
      std::cerr << "  alpha " << alpha << " done\n";
    }
    tradeoff.print(std::cout);
    std::cout << "Expected shape: route length grows 1/(1 - alpha); honest "
               "acceptance stays high while Sybil leakage grows with the "
               "longer routes — the security cost of accounting for "
               "distrust, ref [16]'s central tradeoff.\n";
  }
  return 0;
}

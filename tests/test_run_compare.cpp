#include "report/run_compare.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace sntrust {
namespace {

/// Builds a minimal schema-1 report document with one configurable span.
std::string report_json(double span_wall_ms, double total_wall_ms,
                        double peak_rss_bytes,
                        const std::string& extra_span = "") {
  std::ostringstream out;
  out << R"({"schema_version":1,"tool":"unit","config":{"threads":1},)"
      << R"("totals":{"wall_ms":)" << total_wall_ms
      << R"(,"cpu_ms":50.0,"peak_rss_bytes":)" << peak_rss_bytes << "},"
      << R"("spans":[{"path":"phase","count":2,"wall_ms":)" << span_wall_ms
      << R"(,"cpu_ms":40.0,"alloc_bytes":100,"alloc_count":10})";
  if (!extra_span.empty())
    out << R"(,{"path":")" << extra_span
        << R"(","count":1,"wall_ms":30.0,"cpu_ms":30.0})";
  out << R"(],"metrics":{"counters":{"walk.steps":7},"gauges":{}}})";
  return out.str();
}

RunReportData parse(const std::string& text) {
  return parse_run_report(json::Value::parse(text));
}

TEST(RunCompare, ParsesReportSectionsAndRejectsBadSchema) {
  const RunReportData data = parse(report_json(100.0, 200.0, 1000.0));
  EXPECT_EQ(data.schema_version, 1);
  EXPECT_EQ(data.tool, "unit");
  EXPECT_DOUBLE_EQ(data.totals.at("wall_ms"), 200.0);
  ASSERT_EQ(data.spans.size(), 1u);
  EXPECT_EQ(data.spans[0].path, "phase");
  EXPECT_EQ(data.spans[0].count, 2u);
  EXPECT_DOUBLE_EQ(data.spans[0].wall_ms, 100.0);
  EXPECT_EQ(data.spans[0].alloc_bytes, 100u);
  EXPECT_DOUBLE_EQ(data.counters.at("walk.steps"), 7.0);

  EXPECT_THROW(parse(R"({"tool":"x"})"), std::runtime_error);
  EXPECT_THROW(parse(R"({"schema_version":99})"), std::runtime_error);
}

TEST(RunCompare, WithinThresholdIsClean) {
  const RunReportData baseline = parse(report_json(100.0, 200.0, 1000.0));
  const RunReportData candidate = parse(report_json(110.0, 210.0, 1000.0));
  const DiffResult result =
      diff_run_reports(baseline, candidate, DiffOptions{});
  EXPECT_FALSE(result.breached);
  for (const DiffRow& row : result.spans)
    EXPECT_EQ(row.status, DiffRow::Status::Ok);
}

TEST(RunCompare, SpanWallRegressionBreaches) {
  const RunReportData baseline = parse(report_json(100.0, 200.0, 1000.0));
  const RunReportData candidate = parse(report_json(140.0, 210.0, 1000.0));
  const DiffResult result =
      diff_run_reports(baseline, candidate, DiffOptions{});
  EXPECT_TRUE(result.breached);
  ASSERT_FALSE(result.spans.empty());
  EXPECT_EQ(result.spans[0].name, "phase");
  EXPECT_EQ(result.spans[0].status, DiffRow::Status::Regressed);
  EXPECT_NEAR(result.spans[0].delta_pct, 40.0, 1e-9);
}

TEST(RunCompare, ImprovementNeverBreaches) {
  const RunReportData baseline = parse(report_json(100.0, 200.0, 1000.0));
  const RunReportData candidate = parse(report_json(50.0, 100.0, 500.0));
  const DiffResult result =
      diff_run_reports(baseline, candidate, DiffOptions{});
  EXPECT_FALSE(result.breached);
  EXPECT_EQ(result.spans[0].status, DiffRow::Status::Improved);
}

TEST(RunCompare, NoiseFloorSilencesTinySpans) {
  const RunReportData baseline = parse(report_json(0.5, 200.0, 1000.0));
  const RunReportData candidate = parse(report_json(4.0, 210.0, 1000.0));
  // 8x slower, but both sides below the 5 ms floor: not a finding.
  const DiffResult result =
      diff_run_reports(baseline, candidate, DiffOptions{});
  EXPECT_FALSE(result.breached);
  EXPECT_TRUE(result.spans.empty());
}

TEST(RunCompare, TotalsWallAndRssGateIndependently) {
  const RunReportData baseline = parse(report_json(100.0, 200.0, 1000.0));
  DiffOptions options;
  {
    const RunReportData candidate = parse(report_json(100.0, 400.0, 1000.0));
    EXPECT_TRUE(diff_run_reports(baseline, candidate, options).breached);
  }
  {
    const RunReportData candidate = parse(report_json(100.0, 200.0, 2000.0));
    EXPECT_TRUE(diff_run_reports(baseline, candidate, options).breached);
  }
  {
    // +30% RSS sits under the default 50% gate.
    const RunReportData candidate = parse(report_json(100.0, 200.0, 1300.0));
    EXPECT_FALSE(diff_run_reports(baseline, candidate, options).breached);
  }
}

TEST(RunCompare, AddedAndRemovedSpansListedButNeverBreach) {
  const RunReportData baseline =
      parse(report_json(100.0, 200.0, 1000.0, "old_phase"));
  const RunReportData candidate =
      parse(report_json(100.0, 200.0, 1000.0, "new_phase"));
  const DiffResult result =
      diff_run_reports(baseline, candidate, DiffOptions{});
  EXPECT_FALSE(result.breached);
  bool added = false;
  bool removed = false;
  for (const DiffRow& row : result.spans) {
    if (row.name == "new_phase") {
      EXPECT_EQ(row.status, DiffRow::Status::Added);
      added = true;
    }
    if (row.name == "old_phase") {
      EXPECT_EQ(row.status, DiffRow::Status::Removed);
      removed = true;
    }
  }
  EXPECT_TRUE(added);
  EXPECT_TRUE(removed);
}

TEST(RunCompare, CpuGateIsOptIn) {
  // cpu_ms fixed at 40 in baseline; hand-build a candidate with cpu 80.
  const RunReportData baseline = parse(report_json(100.0, 200.0, 1000.0));
  RunReportData candidate = baseline;
  candidate.spans[0].cpu_ms = 80.0;
  DiffOptions options;
  EXPECT_FALSE(diff_run_reports(baseline, candidate, options).breached);
  options.gate_cpu = true;
  EXPECT_TRUE(diff_run_reports(baseline, candidate, options).breached);
}

TEST(RunCompare, DiffTableLeadsWithRegressions) {
  const RunReportData baseline = parse(report_json(100.0, 200.0, 1000.0));
  const RunReportData candidate = parse(report_json(150.0, 210.0, 1000.0));
  const Table table =
      diff_table(diff_run_reports(baseline, candidate, DiffOptions{}));
  std::ostringstream csv;
  table.print_csv(csv);
  const std::string text = csv.str();
  const std::size_t regressed = text.find("REGRESSED");
  const std::size_t ok = text.find(",ok");
  ASSERT_NE(regressed, std::string::npos);
  EXPECT_TRUE(ok == std::string::npos || regressed < ok);
}

}  // namespace
}  // namespace sntrust

// Cross-module invariant sweep: every generator family is pushed through
// the full measurement stack and the structural invariants that the paper's
// methodology relies on are asserted on each. One parameterized suite
// instead of per-module copies.
#include <gtest/gtest.h>

#include <functional>
#include <numeric>
#include <string>

#include "cores/core_profile.hpp"
#include "expansion/expansion_profile.hpp"
#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "graph/traversal.hpp"
#include "markov/distribution.hpp"
#include "markov/spectral.hpp"
#include "markov/transition.hpp"

namespace sntrust {
namespace {

struct GeneratorCase {
  std::string name;
  std::function<Graph(std::uint64_t seed)> make;
};

void PrintTo(const GeneratorCase& c, std::ostream* os) { *os << c.name; }

class GeneratorInvariants : public ::testing::TestWithParam<GeneratorCase> {
 protected:
  Graph connected_graph() {
    return largest_component(GetParam().make(12345)).graph;
  }
};

TEST_P(GeneratorInvariants, HandshakeLemma) {
  const Graph g = GetParam().make(1);
  std::uint64_t degree_sum = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) degree_sum += g.degree(v);
  EXPECT_EQ(degree_sum, 2 * g.num_edges());
}

TEST_P(GeneratorInvariants, DeterministicInSeed) {
  EXPECT_EQ(GetParam().make(7), GetParam().make(7));
}

TEST_P(GeneratorInvariants, LargestComponentIsConnected) {
  const Graph g = connected_graph();
  EXPECT_TRUE(is_connected(g));
  EXPECT_GT(g.num_vertices(), 16u);
}

TEST_P(GeneratorInvariants, BfsDistancesLipschitzOnEdges) {
  const Graph g = connected_graph();
  const BfsResult result = bfs(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    for (const VertexId w : g.neighbors(v)) {
      const std::uint32_t dv = result.distances[v];
      const std::uint32_t dw = result.distances[w];
      EXPECT_LE(dv > dw ? dv - dw : dw - dv, 1u);
    }
}

TEST_P(GeneratorInvariants, CorenessFixpoint) {
  const Graph g = connected_graph();
  const CoreDecomposition cores = core_decomposition(g);
  // Every vertex has >= coreness[v] neighbours of coreness >= coreness[v].
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::uint32_t inside = 0;
    for (const VertexId w : g.neighbors(v))
      if (cores.coreness[w] >= cores.coreness[v]) ++inside;
    EXPECT_GE(inside, cores.coreness[v]) << "vertex " << v;
  }
}

TEST_P(GeneratorInvariants, CoreProfileMonotoneAndConsistent) {
  const Graph g = connected_graph();
  const auto levels = core_profile(g);
  double previous_nu = 1.0 + 1e-9;
  for (const CoreLevel& level : levels) {
    EXPECT_LE(level.nu, previous_nu);
    previous_nu = level.nu;
    EXPECT_LE(level.largest_component, level.vertices);
    EXPECT_GE(level.num_components, 1u);
    EXPECT_LE(level.edges, g.num_edges());
  }
}

TEST_P(GeneratorInvariants, StationaryIsTransitionFixedPoint) {
  const Graph g = connected_graph();
  const Distribution pi = stationary_distribution(g);
  Distribution out;
  step_distribution(g, pi, out);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_NEAR(out[v], pi[v], 1e-12);
}

TEST_P(GeneratorInvariants, LazyWalkTvdMonotone) {
  const Graph g = connected_graph();
  const Distribution pi = stationary_distribution(g);
  Distribution p = dirac(g.num_vertices(), 0);
  Distribution buffer(p.size());
  double previous = total_variation(p, pi);
  for (int t = 0; t < 25; ++t) {
    step_distribution_lazy(g, p, buffer);
    p.swap(buffer);
    const double now = total_variation(p, pi);
    EXPECT_LE(now, previous + 1e-12);
    previous = now;
  }
}

TEST_P(GeneratorInvariants, SlemInUnitInterval) {
  const Graph g = connected_graph();
  const SlemResult slem = second_largest_eigenvalue(g);
  EXPECT_GT(slem.mu, 0.0);
  EXPECT_LE(slem.mu, 1.0 + 1e-9);
}

TEST_P(GeneratorInvariants, ExpansionMatchesBfsLevels) {
  const Graph g = connected_graph();
  ExpansionOptions options;
  options.num_sources = 32;
  options.seed = 9;
  const ExpansionProfile profile = measure_expansion(g, options);
  ASSERT_FALSE(profile.points.empty());
  // Total observations = sum over sources of (depth); cross-check a few
  // global constraints instead of recomputing every BFS.
  std::uint64_t observations = 0;
  for (const ExpansionPoint& point : profile.points) {
    EXPECT_GE(point.set_size, 1u);
    EXPECT_LE(point.set_size, g.num_vertices());
    EXPECT_LE(point.min_neighbors, point.max_neighbors);
    observations += point.observations;
  }
  EXPECT_GE(observations, profile.sources_used);  // >= 1 level per source
  EXPECT_LE(observations,
            static_cast<std::uint64_t>(profile.sources_used) *
                (profile.max_depth == 0 ? 1 : profile.max_depth));
}

INSTANTIATE_TEST_SUITE_P(
    Generators, GeneratorInvariants,
    ::testing::Values(
        GeneratorCase{"erdos_renyi",
                      [](std::uint64_t s) { return erdos_renyi(300, 0.03, s); }},
        GeneratorCase{"erdos_renyi_gnm",
                      [](std::uint64_t s) { return erdos_renyi_gnm(300, 900, s); }},
        GeneratorCase{"barabasi_albert",
                      [](std::uint64_t s) { return barabasi_albert(300, 3, s); }},
        GeneratorCase{"powerlaw_cluster",
                      [](std::uint64_t s) {
                        return powerlaw_cluster(300, 3, 0.6, s);
                      }},
        GeneratorCase{"watts_strogatz",
                      [](std::uint64_t s) {
                        return watts_strogatz(300, 3, 0.2, s);
                      }},
        GeneratorCase{"configuration_model",
                      [](std::uint64_t s) {
                        return configuration_model(
                            powerlaw_degrees(300, 2.2, 2, 40, s), s ^ 1);
                      }},
        GeneratorCase{"planted_partition",
                      [](std::uint64_t s) {
                        return planted_partition(300, 6, 0.2, 0.01, s);
                      }},
        GeneratorCase{"affiliation",
                      [](std::uint64_t s) {
                        AffiliationParams p;
                        p.num_actors = 300;
                        p.num_groups = 260;
                        p.min_group = 2;
                        p.max_group = 5;
                        p.regions = 6;
                        p.cross_region_p = 0.1;
                        return affiliation_graph(p, s);
                      }},
        GeneratorCase{"powerlaw_community",
                      [](std::uint64_t s) {
                        PowerlawCommunityParams p;
                        p.num_vertices = 300;
                        p.gamma = 2.2;
                        p.min_degree = 3;
                        p.max_degree_cap = 40;
                        p.blocks = 6;
                        p.global_fraction = 0.2;
                        return powerlaw_community(p, s);
                      }}),
    [](const ::testing::TestParamInfo<GeneratorCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace sntrust

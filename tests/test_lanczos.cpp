#include "markov/lanczos.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "markov/spectral.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::path_graph;
using testing::petersen_graph;
using testing::two_cliques;

TEST(Lanczos, LeadingEigenvalueIsOne) {
  for (const Graph& g : {petersen_graph(), path_graph(20), two_cliques(6)}) {
    const LanczosResult result = lanczos_spectrum(g);
    ASSERT_FALSE(result.eigenvalues.empty());
    EXPECT_NEAR(result.eigenvalues[0], 1.0, 1e-8);
  }
}

TEST(Lanczos, PetersenSpectrumKnown) {
  // N = A/3 has eigenvalues {1, 1/3 (x5), -2/3 (x4)}.
  LanczosOptions options;
  options.num_eigenvalues = 3;
  const LanczosResult result = lanczos_spectrum(petersen_graph(), options);
  ASSERT_GE(result.eigenvalues.size(), 2u);
  EXPECT_NEAR(result.eigenvalues[0], 1.0, 1e-8);
  EXPECT_NEAR(result.eigenvalues[1], 1.0 / 3.0, 1e-8);
}

TEST(Lanczos, CompleteGraphSpectrumKnown) {
  // K_n: eigenvalues of N are {1, -1/(n-1) x (n-1)}.
  LanczosOptions options;
  options.num_eigenvalues = 2;
  const LanczosResult result = lanczos_spectrum(complete_graph(8), options);
  ASSERT_GE(result.eigenvalues.size(), 2u);
  EXPECT_NEAR(result.eigenvalues[0], 1.0, 1e-8);
  EXPECT_NEAR(result.eigenvalues[1], -1.0 / 7.0, 1e-6);
}

TEST(Lanczos, Lambda2AgreesWithPowerIterationOnNonBipartite) {
  // On graphs whose second-largest-|.| eigenvalue is positive, the SLEM and
  // Lanczos lambda_2 coincide.
  const Graph g = largest_component(barabasi_albert(300, 4, 11)).graph;
  const double mu = second_largest_eigenvalue(g).mu;
  LanczosOptions options;
  options.num_eigenvalues = 2;
  options.subspace = 80;
  const LanczosResult result = lanczos_spectrum(g, options);
  // SLEM = max(lambda_2, |lambda_min|); for BA graphs lambda_2 usually
  // dominates; check Lanczos' lambda_2 <= mu + tolerance and close when it
  // is the dominant side.
  EXPECT_LE(result.eigenvalues[1], mu + 1e-6);
}

TEST(Lanczos, CycleSecondEigenvalue) {
  // C_12: lambda_2 = cos(2 pi / 12) = sqrt(3)/2.
  LanczosOptions options;
  options.num_eigenvalues = 2;
  options.subspace = 12;
  const LanczosResult result = lanczos_spectrum(cycle_graph(12), options);
  EXPECT_NEAR(result.eigenvalues[1], std::sqrt(3.0) / 2.0, 1e-6);
}

TEST(Lanczos, TwoCliquesNearDegenerateTop) {
  // A near-disconnected graph has lambda_2 close to 1.
  LanczosOptions options;
  options.num_eigenvalues = 2;
  const LanczosResult result = lanczos_spectrum(two_cliques(8), options);
  EXPECT_GT(result.eigenvalues[1], 0.9);
  EXPECT_LT(result.eigenvalues[1], 1.0);
}

TEST(Lanczos, EigenvaluesDescending) {
  LanczosOptions options;
  options.num_eigenvalues = 5;
  const LanczosResult result =
      lanczos_spectrum(largest_component(barabasi_albert(200, 3, 13)).graph,
                       options);
  for (std::size_t i = 1; i < result.eigenvalues.size(); ++i)
    EXPECT_GE(result.eigenvalues[i - 1], result.eigenvalues[i] - 1e-9);
}

TEST(Lanczos, BadInputsThrow) {
  GraphBuilder b{3};
  EXPECT_THROW(lanczos_spectrum(b.build()), std::invalid_argument);
  EXPECT_THROW(lanczos_spectrum(testing::disconnected_graph()),
               std::invalid_argument);
  LanczosOptions options;
  options.num_eigenvalues = 0;
  EXPECT_THROW(lanczos_spectrum(petersen_graph(), options),
               std::invalid_argument);
}

}  // namespace
}  // namespace sntrust

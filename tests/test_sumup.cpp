#include "sybil/sumup.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

Graph expander(VertexId n, std::uint64_t seed) {
  return largest_component(barabasi_albert(n, 4, seed)).graph;
}

TEST(SumUp, CollectsAllVotesOnCompleteGraph) {
  const Graph g = testing::complete_graph(10);
  SumUpParams params;
  params.expected_votes = 9;
  const SumUpResult result = run_sumup(g, 0, {1, 2, 3, 4, 5}, params);
  EXPECT_EQ(result.votes_cast, 5u);
  EXPECT_EQ(result.votes_collected, 5u);
}

TEST(SumUp, CollectorOwnVoteCounts) {
  const Graph g = testing::complete_graph(5);
  SumUpParams params;
  const SumUpResult result = run_sumup(g, 0, {0, 1}, params);
  EXPECT_EQ(result.votes_collected, 2u);
}

TEST(SumUp, HonestVotesMostlyCollectedOnExpander) {
  const Graph g = expander(400, 1);
  SumUpParams params;
  params.expected_votes = 40;
  params.seed = 1;
  std::vector<VertexId> voters;
  for (VertexId v = 1; v <= 40; ++v) voters.push_back(v);
  const SumUpResult result = run_sumup(g, 0, voters, params);
  EXPECT_GT(static_cast<double>(result.votes_collected) /
                static_cast<double>(result.votes_cast),
            0.8);
}

TEST(SumUp, PathBottlenecksVotes) {
  // All voters behind one edge: collector at the end of a path; capacity of
  // the last link bounds collection.
  const Graph g = testing::path_graph(6);
  SumUpParams params;
  params.expected_votes = 2;
  const SumUpResult result = run_sumup(g, 0, {2, 3, 4, 5}, params);
  EXPECT_LT(result.votes_collected, result.votes_cast);
}

TEST(SumUp, DuplicateVoterThrows) {
  const Graph g = testing::complete_graph(4);
  SumUpParams params;
  EXPECT_THROW(run_sumup(g, 0, {1, 1}, params), std::invalid_argument);
}

TEST(SumUp, OutOfRangeThrows) {
  const Graph g = testing::complete_graph(4);
  SumUpParams params;
  EXPECT_THROW(run_sumup(g, 9, {1}, params), std::out_of_range);
  EXPECT_THROW(run_sumup(g, 0, {9}, params), std::out_of_range);
}

TEST(SumUp, SybilVotesBoundedByAttackEdges) {
  const Graph honest = expander(500, 2);
  AttackParams attack;
  attack.num_sybils = 300;
  attack.attack_edges = 5;
  attack.seed = 2;
  const AttackedGraph attacked{honest, attack};
  SumUpParams params;
  params.expected_votes = 50;
  params.seed = 2;
  const SumUpEvaluation eval = evaluate_sumup(attacked, 0, 50, params);
  EXPECT_GT(eval.honest_collect_fraction, 0.7);
  // 300 sybil votes over 5 edges unfiltered would be 60 per edge; the ticket
  // capacities cut that to a small constant per edge.
  EXPECT_LT(eval.sybil_votes_per_attack_edge, 10.0);
}

TEST(SumUp, MoreAttackEdgesAdmitMoreSybilVotes) {
  const Graph honest = expander(400, 3);
  double per_edge_total[2];
  const std::uint32_t edges[2] = {2, 40};
  for (int i = 0; i < 2; ++i) {
    AttackParams attack;
    attack.num_sybils = 200;
    attack.attack_edges = edges[i];
    attack.seed = 3;
    const AttackedGraph attacked{honest, attack};
    SumUpParams params;
    params.expected_votes = 40;
    params.seed = 3;
    const SumUpEvaluation eval = evaluate_sumup(attacked, 0, 30, params);
    per_edge_total[i] = eval.sybil_votes_per_attack_edge * edges[i];
  }
  EXPECT_GT(per_edge_total[1], per_edge_total[0]);
}

TEST(SumUp, EvaluationRequiresHonestCollector) {
  const Graph honest = expander(100, 4);
  AttackParams attack;
  attack.num_sybils = 10;
  attack.attack_edges = 2;
  const AttackedGraph attacked{honest, attack};
  SumUpParams params;
  EXPECT_THROW(evaluate_sumup(attacked, attacked.num_honest(), 10, params),
               std::invalid_argument);
}

}  // namespace
}  // namespace sntrust

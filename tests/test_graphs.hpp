// Shared fixture graphs for the test suite.
#pragma once

#include <vector>

#include "graph/builder.hpp"
#include "graph/graph.hpp"

namespace sntrust::testing {

/// Path 0-1-2-...-(n-1).
inline Graph path_graph(VertexId n) {
  GraphBuilder b{n};
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

/// Cycle on n vertices.
inline Graph cycle_graph(VertexId n) {
  GraphBuilder b{n};
  for (VertexId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  return b.build();
}

/// Star: center 0 connected to 1..n-1.
inline Graph star_graph(VertexId n) {
  GraphBuilder b{n};
  for (VertexId v = 1; v < n; ++v) b.add_edge(0, v);
  return b.build();
}

/// Complete graph K_n.
inline Graph complete_graph(VertexId n) {
  GraphBuilder b{n};
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) b.add_edge(u, v);
  return b.build();
}

/// Two triangles {0,1,2} and {3,4,5} joined by the bridge 2-3. The classic
/// bad-expansion, two-community graph.
inline Graph barbell_graph() {
  GraphBuilder b{6};
  b.add_edge(0, 1); b.add_edge(1, 2); b.add_edge(0, 2);
  b.add_edge(3, 4); b.add_edge(4, 5); b.add_edge(3, 5);
  b.add_edge(2, 3);
  return b.build();
}

/// Two K_c cliques joined by a single bridge edge.
inline Graph two_cliques(VertexId c) {
  GraphBuilder b{static_cast<VertexId>(2 * c)};
  for (VertexId u = 0; u < c; ++u)
    for (VertexId v = u + 1; v < c; ++v) {
      b.add_edge(u, v);
      b.add_edge(c + u, c + v);
    }
  b.add_edge(c - 1, c);
  return b.build();
}

/// The Petersen graph: 3-regular, vertex-transitive, a known good expander.
inline Graph petersen_graph() {
  GraphBuilder b{10};
  // Outer 5-cycle, inner 5-star-cycle, spokes.
  for (VertexId v = 0; v < 5; ++v) {
    b.add_edge(v, (v + 1) % 5);
    b.add_edge(5 + v, 5 + (v + 2) % 5);
    b.add_edge(v, 5 + v);
  }
  return b.build();
}

/// Disconnected graph: triangle {0,1,2}, edge {3,4}, isolated 5.
inline Graph disconnected_graph() {
  GraphBuilder b{6};
  b.add_edge(0, 1); b.add_edge(1, 2); b.add_edge(0, 2);
  b.add_edge(3, 4);
  return b.build();
}

}  // namespace sntrust::testing

#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hpp"

namespace sntrust::obs {
namespace {

// -------------------------------------------------------------- tracing ---

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().reset();
    Tracer::instance().enable();
  }
  void TearDown() override {
    Tracer::instance().disable();
    Tracer::instance().reset();
  }
};

TEST_F(TraceTest, NestedSpansFormDeterministicTree) {
  {
    Span a{"outer"};
    {
      Span b{"child1"};
      { Span c{"grandchild"}; }
    }
    { Span d{"child2", "custom"}; }
  }
  const std::vector<TraceEvent> events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 4u);

  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[0].parent, -1);

  EXPECT_EQ(events[1].name, "child1");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[1].parent, 0);

  EXPECT_EQ(events[2].name, "grandchild");
  EXPECT_EQ(events[2].depth, 2u);
  EXPECT_EQ(events[2].parent, 1);

  EXPECT_EQ(events[3].name, "child2");
  EXPECT_EQ(events[3].depth, 1u);
  EXPECT_EQ(events[3].parent, 0);
  EXPECT_EQ(events[3].category, "custom");

  for (const TraceEvent& event : events) EXPECT_TRUE(event.closed);
  // Children nest inside the parent's time window.
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  EXPECT_GE(events[0].start_ns + events[0].duration_ns,
            events[1].start_ns + events[1].duration_ns);
}

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  Tracer::instance().disable();
  { Span span{"invisible"}; }
  EXPECT_TRUE(Tracer::instance().events().empty());
}

TEST_F(TraceTest, SequentialRootsStayRoots) {
  { Span a{"first"}; }
  { Span b{"second"}; }
  const std::vector<TraceEvent> events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_EQ(events[1].parent, -1);
}

/// Minimal JSON well-formedness check: balanced braces/brackets outside
/// strings, valid escapes, non-empty.
void expect_valid_json(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) escaped = false;
      else if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': stack.push_back(c); break;
      case '}':
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(stack.back(), '{');
        stack.pop_back();
        break;
      case ']':
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(stack.back(), '[');
        stack.pop_back();
        break;
      default: break;
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_TRUE(stack.empty());
  EXPECT_FALSE(text.empty());
}

TEST_F(TraceTest, ChromeTraceJsonIsWellFormed) {
  {
    Span a{"phase \"quoted\"\n"};  // exercises string escaping
    Span b{"inner"};
  }
  std::ostringstream out;
  Tracer::instance().write_chrome_trace(out);
  const std::string json = out.str();
  expect_valid_json(json);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST_F(TraceTest, ChromeTraceExportEscapesHostileSpanNames) {
  const std::string hostile[] = {
      "control \x01\x1f chars",
      "quotes \" and \\ backslashes",
      "newline\nand\ttab",
      "non-ascii naïve ☃ 😀",
  };
  for (const std::string& name : hostile) { Span span{name}; }
  std::ostringstream out;
  Tracer::instance().write_chrome_trace(out);
  // The export must satisfy a strict parser and round-trip every name.
  const json::Value doc = json::Value::parse(out.str());
  const json::Array& events = doc.find("traceEvents")->as_array();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].find("name")->as_string(), hostile[i]);
}

TEST_F(TraceTest, RootSpanDominatesCoverage) {
  {
    Span root{"almost everything"};
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(Tracer::instance().coverage_fraction(), 0.9);
}

TEST_F(TraceTest, TimingTableAggregatesByPath) {
  for (int i = 0; i < 3; ++i) {
    Span outer{"phase"};
    Span inner{"step"};
  }
  const Table table = Tracer::instance().timing_table();
  EXPECT_EQ(table.num_rows(), 2u);  // "phase" and "phase/step"
  std::ostringstream csv;
  table.print_csv(csv);
  EXPECT_NE(csv.str().find("phase,3"), std::string::npos);
  EXPECT_NE(csv.str().find("phase/step,3"), std::string::npos);
}

// -------------------------------------------------------------- metrics ---

/// Metrics live in a process-wide registry, so other suites running earlier
/// in the same binary leave state behind; metrics_reset_all() in SetUp and
/// TearDown isolates every assertion here.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { metrics_reset_all(); }
  void TearDown() override { metrics_reset_all(); }
};

TEST_F(MetricsTest, CounterAccumulatesAndSnapshots) {
  Counter& c = Metrics::instance().counter("test.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  const MetricsSnapshot snap = Metrics::instance().snapshot();
  ASSERT_TRUE(snap.counters.count("test.counter"));
  EXPECT_EQ(snap.counters.at("test.counter"), 42u);
}

TEST_F(MetricsTest, CounterReferenceStableAcrossReset) {
  Counter& before = Metrics::instance().counter("test.stable");
  before.add(7);
  metrics_reset_all();
  EXPECT_EQ(before.value(), 0u);
  Counter& after = Metrics::instance().counter("test.stable");
  EXPECT_EQ(&before, &after);
}

TEST_F(MetricsTest, GaugeIsLastWriteWins) {
  set_gauge("test.gauge", 1.5);
  set_gauge("test.gauge", -3.25);
  EXPECT_DOUBLE_EQ(Metrics::instance().snapshot().gauges.at("test.gauge"),
                   -3.25);
}

TEST_F(MetricsTest, HistogramBucketBoundaries) {
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(0.5), 0u);
  EXPECT_EQ(Histogram::bucket_index(1.0), 1u);  // [1, 2)
  EXPECT_EQ(Histogram::bucket_index(1.9), 1u);
  EXPECT_EQ(Histogram::bucket_index(2.0), 2u);  // [2, 4)
  EXPECT_EQ(Histogram::bucket_index(3.0), 2u);
  EXPECT_EQ(Histogram::bucket_index(4.0), 3u);  // [4, 8)
  EXPECT_EQ(Histogram::bucket_index(1e300), kHistogramBuckets - 1);
}

TEST_F(MetricsTest, HistogramSnapshotIsCorrect) {
  Histogram& h = Metrics::instance().histogram("test.histogram");
  for (const double v : {1.0, 3.0, 3.0, 10.0}) h.observe(v);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 17.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 10.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 4.25);
  ASSERT_EQ(snap.buckets.size(), kHistogramBuckets);
  EXPECT_EQ(snap.buckets[1], 1u);  // 1.0
  EXPECT_EQ(snap.buckets[2], 2u);  // 3.0 x2
  EXPECT_EQ(snap.buckets[4], 1u);  // 10.0 in [8, 16)
}

TEST_F(MetricsTest, EmptyHistogramHoldsMinMaxIdentities) {
  Histogram& h = Metrics::instance().histogram("test.empty");
  const HistogramSnapshot empty = h.snapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.sum, 0.0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  // The documented contract: +inf/-inf, the identities of min/max, so folds
  // over snapshots need no empty special case — and reset restores them.
  EXPECT_TRUE(std::isinf(empty.min));
  EXPECT_GT(empty.min, 0.0);
  EXPECT_TRUE(std::isinf(empty.max));
  EXPECT_LT(empty.max, 0.0);

  h.observe(-3.0);
  const HistogramSnapshot one = h.snapshot();
  EXPECT_DOUBLE_EQ(one.min, -3.0);
  EXPECT_DOUBLE_EQ(one.max, -3.0);
  h.reset();
  EXPECT_TRUE(std::isinf(h.snapshot().min));
}

TEST_F(MetricsTest, ToTableListsEveryKind) {
  count("test.table.counter", 5);
  set_gauge("test.table.gauge", 0.5);
  observe("test.table.histogram", 2.0);
  const Table table = Metrics::instance().to_table();
  std::ostringstream csv;
  table.print_csv(csv);
  EXPECT_NE(csv.str().find("counter,test.table.counter,5"), std::string::npos);
  EXPECT_NE(csv.str().find("gauge,test.table.gauge"), std::string::npos);
  EXPECT_NE(csv.str().find("histogram,test.table.histogram"),
            std::string::npos);
}

// ------------------------------------------------------------- progress ---

TEST(Progress, DisabledMeterWritesNothing) {
  std::ostringstream out;
  ProgressOptions options;
  options.out = &out;
  options.enabled = false;
  ProgressMeter meter{"quiet", 10, options};
  for (int i = 0; i < 10; ++i) meter.tick();
  meter.done();
  EXPECT_EQ(meter.emissions(), 0u);
  EXPECT_TRUE(out.str().empty());
}

TEST(Progress, ZeroIntervalEmitsEveryTick) {
  std::ostringstream out;
  ProgressOptions options;
  options.out = &out;
  options.enabled = true;
  options.min_interval = std::chrono::milliseconds{0};
  ProgressMeter meter{"busy", 5, options};
  for (int i = 0; i < 5; ++i) meter.tick();
  meter.done();
  EXPECT_EQ(meter.emissions(), 6u);  // 5 ticks + final line
  EXPECT_NE(out.str().find("[busy] 5/5 (100.0%)"), std::string::npos);
  EXPECT_NE(out.str().find("done in"), std::string::npos);
}

TEST(Progress, LargeIntervalRateLimitsToFinalLine) {
  std::ostringstream out;
  ProgressOptions options;
  options.out = &out;
  options.enabled = true;
  options.min_interval = std::chrono::hours{1};
  ProgressMeter meter{"slow", 1000, options};
  for (int i = 0; i < 1000; ++i) meter.tick();
  EXPECT_EQ(meter.emissions(), 0u);
  meter.done();
  EXPECT_EQ(meter.emissions(), 1u);
  EXPECT_EQ(meter.current(), 1000u);
}

TEST(Progress, DestructorEmitsFinalLineOnce) {
  std::ostringstream out;
  {
    ProgressOptions options;
    options.out = &out;
    options.enabled = true;
    options.min_interval = std::chrono::hours{1};
    ProgressMeter meter{"scoped", 3, options};
    meter.tick(3);
    meter.done();
    // Destructor must not emit a second final line.
  }
  const std::string text = out.str();
  std::size_t lines = 0;
  for (std::size_t at = text.find("done in"); at != std::string::npos;
       at = text.find("done in", at + 1))
    ++lines;
  EXPECT_EQ(lines, 1u);
}

TEST(Progress, EnvToggleControlsDefault) {
  setenv("SNTRUST_PROGRESS", "1", 1);
  std::ostringstream out;
  ProgressOptions options;
  options.out = &out;
  {
    ProgressMeter meter{"env-on", 1, options};
    EXPECT_TRUE(meter.enabled());
  }
  unsetenv("SNTRUST_PROGRESS");
  {
    ProgressMeter meter{"env-off", 1, options};
    EXPECT_FALSE(meter.enabled());
  }
}

}  // namespace
}  // namespace sntrust::obs

#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/quantile.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/fault.hpp"
#include "util/json.hpp"

namespace sntrust::obs {
namespace {

// -------------------------------------------------------------- tracing ---

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().reset();
    Tracer::instance().enable();
  }
  void TearDown() override {
    Tracer::instance().disable();
    Tracer::instance().reset();
  }
};

TEST_F(TraceTest, NestedSpansFormDeterministicTree) {
  {
    Span a{"outer"};
    {
      Span b{"child1"};
      { Span c{"grandchild"}; }
    }
    { Span d{"child2", "custom"}; }
  }
  const std::vector<TraceEvent> events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 4u);

  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[0].parent, -1);

  EXPECT_EQ(events[1].name, "child1");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[1].parent, 0);

  EXPECT_EQ(events[2].name, "grandchild");
  EXPECT_EQ(events[2].depth, 2u);
  EXPECT_EQ(events[2].parent, 1);

  EXPECT_EQ(events[3].name, "child2");
  EXPECT_EQ(events[3].depth, 1u);
  EXPECT_EQ(events[3].parent, 0);
  EXPECT_EQ(events[3].category, "custom");

  for (const TraceEvent& event : events) EXPECT_TRUE(event.closed);
  // Children nest inside the parent's time window.
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  EXPECT_GE(events[0].start_ns + events[0].duration_ns,
            events[1].start_ns + events[1].duration_ns);
}

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  Tracer::instance().disable();
  { Span span{"invisible"}; }
  EXPECT_TRUE(Tracer::instance().events().empty());
}

TEST_F(TraceTest, SequentialRootsStayRoots) {
  { Span a{"first"}; }
  { Span b{"second"}; }
  const std::vector<TraceEvent> events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_EQ(events[1].parent, -1);
}

/// Minimal JSON well-formedness check: balanced braces/brackets outside
/// strings, valid escapes, non-empty.
void expect_valid_json(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) escaped = false;
      else if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': stack.push_back(c); break;
      case '}':
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(stack.back(), '{');
        stack.pop_back();
        break;
      case ']':
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(stack.back(), '[');
        stack.pop_back();
        break;
      default: break;
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_TRUE(stack.empty());
  EXPECT_FALSE(text.empty());
}

TEST_F(TraceTest, ChromeTraceJsonIsWellFormed) {
  {
    Span a{"phase \"quoted\"\n"};  // exercises string escaping
    Span b{"inner"};
  }
  std::ostringstream out;
  Tracer::instance().write_chrome_trace(out);
  const std::string json = out.str();
  expect_valid_json(json);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST_F(TraceTest, ChromeTraceExportEscapesHostileSpanNames) {
  const std::string hostile[] = {
      "control \x01\x1f chars",
      "quotes \" and \\ backslashes",
      "newline\nand\ttab",
      "non-ascii naïve ☃ 😀",
  };
  for (const std::string& name : hostile) { Span span{name}; }
  std::ostringstream out;
  Tracer::instance().write_chrome_trace(out);
  // The export must satisfy a strict parser and round-trip every name.
  const json::Value doc = json::Value::parse(out.str());
  const json::Array& events = doc.find("traceEvents")->as_array();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].find("name")->as_string(), hostile[i]);
}

TEST_F(TraceTest, RootSpanDominatesCoverage) {
  {
    Span root{"almost everything"};
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(Tracer::instance().coverage_fraction(), 0.9);
}

TEST_F(TraceTest, TimingTableAggregatesByPath) {
  for (int i = 0; i < 3; ++i) {
    Span outer{"phase"};
    Span inner{"step"};
  }
  const Table table = Tracer::instance().timing_table();
  EXPECT_EQ(table.num_rows(), 2u);  // "phase" and "phase/step"
  std::ostringstream csv;
  table.print_csv(csv);
  EXPECT_NE(csv.str().find("phase,3"), std::string::npos);
  EXPECT_NE(csv.str().find("phase/step,3"), std::string::npos);
}

// -------------------------------------------------------------- metrics ---

/// Metrics live in a process-wide registry, so other suites running earlier
/// in the same binary leave state behind; metrics_reset_all() in SetUp and
/// TearDown isolates every assertion here.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { metrics_reset_all(); }
  void TearDown() override { metrics_reset_all(); }
};

TEST_F(MetricsTest, CounterAccumulatesAndSnapshots) {
  Counter& c = Metrics::instance().counter("test.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  const MetricsSnapshot snap = Metrics::instance().snapshot();
  ASSERT_TRUE(snap.counters.count("test.counter"));
  EXPECT_EQ(snap.counters.at("test.counter"), 42u);
}

TEST_F(MetricsTest, CounterReferenceStableAcrossReset) {
  Counter& before = Metrics::instance().counter("test.stable");
  before.add(7);
  metrics_reset_all();
  EXPECT_EQ(before.value(), 0u);
  Counter& after = Metrics::instance().counter("test.stable");
  EXPECT_EQ(&before, &after);
}

TEST_F(MetricsTest, GaugeIsLastWriteWins) {
  set_gauge("test.gauge", 1.5);
  set_gauge("test.gauge", -3.25);
  EXPECT_DOUBLE_EQ(Metrics::instance().snapshot().gauges.at("test.gauge"),
                   -3.25);
}

TEST_F(MetricsTest, HistogramBucketBoundaries) {
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(0.5), 0u);
  EXPECT_EQ(Histogram::bucket_index(1.0), 1u);  // [1, 2)
  EXPECT_EQ(Histogram::bucket_index(1.9), 1u);
  EXPECT_EQ(Histogram::bucket_index(2.0), 2u);  // [2, 4)
  EXPECT_EQ(Histogram::bucket_index(3.0), 2u);
  EXPECT_EQ(Histogram::bucket_index(4.0), 3u);  // [4, 8)
  EXPECT_EQ(Histogram::bucket_index(1e300), kHistogramBuckets - 1);
}

TEST_F(MetricsTest, HistogramSnapshotIsCorrect) {
  Histogram& h = Metrics::instance().histogram("test.histogram");
  for (const double v : {1.0, 3.0, 3.0, 10.0}) h.observe(v);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 17.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 10.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 4.25);
  ASSERT_EQ(snap.buckets.size(), kHistogramBuckets);
  EXPECT_EQ(snap.buckets[1], 1u);  // 1.0
  EXPECT_EQ(snap.buckets[2], 2u);  // 3.0 x2
  EXPECT_EQ(snap.buckets[4], 1u);  // 10.0 in [8, 16)
}

TEST_F(MetricsTest, EmptyHistogramHoldsMinMaxIdentities) {
  Histogram& h = Metrics::instance().histogram("test.empty");
  const HistogramSnapshot empty = h.snapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.sum, 0.0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  // The documented contract: +inf/-inf, the identities of min/max, so folds
  // over snapshots need no empty special case — and reset restores them.
  EXPECT_TRUE(std::isinf(empty.min));
  EXPECT_GT(empty.min, 0.0);
  EXPECT_TRUE(std::isinf(empty.max));
  EXPECT_LT(empty.max, 0.0);

  h.observe(-3.0);
  const HistogramSnapshot one = h.snapshot();
  EXPECT_DOUBLE_EQ(one.min, -3.0);
  EXPECT_DOUBLE_EQ(one.max, -3.0);
  h.reset();
  EXPECT_TRUE(std::isinf(h.snapshot().min));
}

TEST_F(MetricsTest, EmptyHistogramQuantileIsNaN) {
  Histogram& h = Metrics::instance().histogram("test.empty_quantile");
  // The documented empty-histogram contract: count == 0 answers NaN, never
  // a fabricated number renderers might mistake for a latency.
  EXPECT_TRUE(std::isnan(h.snapshot().value_at_quantile(0.5)));
  h.observe(3.0);
  EXPECT_DOUBLE_EQ(h.snapshot().value_at_quantile(0.5), 3.0);
  h.reset();
  EXPECT_TRUE(std::isnan(h.snapshot().value_at_quantile(0.99)));
}

TEST_F(MetricsTest, HistogramQuantileIsOctaveResolution) {
  Histogram& h = Metrics::instance().histogram("test.coarse_quantile");
  for (int i = 0; i < 99; ++i) h.observe(10.0);
  h.observe(1000.0);
  const HistogramSnapshot snap = h.snapshot();
  // p50 lands in the [8, 16) bucket and answers its midpoint; p100 answers
  // the [512, 1024) midpoint — octave resolution, as documented.
  EXPECT_DOUBLE_EQ(snap.value_at_quantile(0.5), 12.0);
  EXPECT_DOUBLE_EQ(snap.value_at_quantile(1.0), 768.0);
}

TEST_F(MetricsTest, ToTableListsEveryKind) {
  count("test.table.counter", 5);
  set_gauge("test.table.gauge", 0.5);
  observe("test.table.histogram", 2.0);
  const Table table = Metrics::instance().to_table();
  std::ostringstream csv;
  table.print_csv(csv);
  EXPECT_NE(csv.str().find("counter,test.table.counter,5"), std::string::npos);
  EXPECT_NE(csv.str().find("gauge,test.table.gauge"), std::string::npos);
  EXPECT_NE(csv.str().find("histogram,test.table.histogram"),
            std::string::npos);
}

// ------------------------------------------------------------- progress ---

TEST(Progress, DisabledMeterWritesNothing) {
  std::ostringstream out;
  ProgressOptions options;
  options.out = &out;
  options.enabled = false;
  ProgressMeter meter{"quiet", 10, options};
  for (int i = 0; i < 10; ++i) meter.tick();
  meter.done();
  EXPECT_EQ(meter.emissions(), 0u);
  EXPECT_TRUE(out.str().empty());
}

TEST(Progress, ZeroIntervalEmitsEveryTick) {
  std::ostringstream out;
  ProgressOptions options;
  options.out = &out;
  options.enabled = true;
  options.min_interval = std::chrono::milliseconds{0};
  ProgressMeter meter{"busy", 5, options};
  for (int i = 0; i < 5; ++i) meter.tick();
  meter.done();
  EXPECT_EQ(meter.emissions(), 6u);  // 5 ticks + final line
  EXPECT_NE(out.str().find("[busy] 5/5 (100.0%)"), std::string::npos);
  EXPECT_NE(out.str().find("done in"), std::string::npos);
}

TEST(Progress, LargeIntervalRateLimitsToFinalLine) {
  std::ostringstream out;
  ProgressOptions options;
  options.out = &out;
  options.enabled = true;
  options.min_interval = std::chrono::hours{1};
  ProgressMeter meter{"slow", 1000, options};
  for (int i = 0; i < 1000; ++i) meter.tick();
  EXPECT_EQ(meter.emissions(), 0u);
  meter.done();
  EXPECT_EQ(meter.emissions(), 1u);
  EXPECT_EQ(meter.current(), 1000u);
}

TEST(Progress, DestructorEmitsFinalLineOnce) {
  std::ostringstream out;
  {
    ProgressOptions options;
    options.out = &out;
    options.enabled = true;
    options.min_interval = std::chrono::hours{1};
    ProgressMeter meter{"scoped", 3, options};
    meter.tick(3);
    meter.done();
    // Destructor must not emit a second final line.
  }
  const std::string text = out.str();
  std::size_t lines = 0;
  for (std::size_t at = text.find("done in"); at != std::string::npos;
       at = text.find("done in", at + 1))
    ++lines;
  EXPECT_EQ(lines, 1u);
}

TEST(Progress, EnvToggleControlsDefault) {
  setenv("SNTRUST_PROGRESS", "1", 1);
  std::ostringstream out;
  ProgressOptions options;
  options.out = &out;
  {
    ProgressMeter meter{"env-on", 1, options};
    EXPECT_TRUE(meter.enabled());
  }
  unsetenv("SNTRUST_PROGRESS");
  {
    ProgressMeter meter{"env-off", 1, options};
    EXPECT_FALSE(meter.enabled());
  }
}

// ------------------------------------------------- quantile histograms ---

class QuantileTest : public ::testing::Test {
 protected:
  void SetUp() override { metrics_reset_all(); }
  void TearDown() override {
    set_telemetry_clock_for_test(nullptr);
    metrics_reset_all();
  }
};

TEST_F(QuantileTest, BucketIndexCoversTheTrackedRange) {
  // Exactly 2^kQuantileMinExponent is the first tracked value.
  EXPECT_EQ(QuantileHistogram::bucket_index(0x1.0p-20), 0u);
  EXPECT_EQ(QuantileHistogram::bucket_index(1.0),
            static_cast<std::size_t>(-kQuantileMinExponent) *
                kQuantileSubBuckets);
  // Out-of-range and non-finite values return the sentinel.
  EXPECT_EQ(QuantileHistogram::bucket_index(0.0), kQuantileBuckets);
  EXPECT_EQ(QuantileHistogram::bucket_index(-1.0), kQuantileBuckets);
  EXPECT_EQ(QuantileHistogram::bucket_index(0x1.0p+44), kQuantileBuckets);
  EXPECT_EQ(QuantileHistogram::bucket_index(
                std::numeric_limits<double>::quiet_NaN()),
            kQuantileBuckets);

  // The midpoint of the bucket a value lands in is within the documented
  // relative error of the value itself — the core accuracy invariant.
  for (double value = 0x1.0p-20; value < 0x1.0p+44; value *= 1.37) {
    const std::size_t index = QuantileHistogram::bucket_index(value);
    ASSERT_LT(index, kQuantileBuckets) << value;
    const double midpoint = QuantileHistogram::bucket_midpoint(index);
    EXPECT_LE(std::abs(midpoint - value) / value,
              kQuantileRelativeError + 1e-12)
        << "value " << value << " bucket " << index;
  }
}

TEST_F(QuantileTest, EmptyHistogramContract) {
  QuantileHistogram h;
  const QuantileSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_TRUE(std::isnan(snap.value_at_quantile(0.5)));
  EXPECT_TRUE(std::isinf(snap.min));
  EXPECT_GT(snap.min, 0.0);
  EXPECT_TRUE(std::isinf(snap.max));
  EXPECT_LT(snap.max, 0.0);
  EXPECT_DOUBLE_EQ(snap.approx_sum(), 0.0);
  EXPECT_DOUBLE_EQ(snap.approx_mean(), 0.0);
}

TEST_F(QuantileTest, SingleValueAnswersExactly) {
  QuantileHistogram h;
  h.record(3.7);
  const QuantileSnapshot snap = h.snapshot();
  // min == max == 3.7 clamps the bucket midpoint to the exact value.
  for (const double q : {0.0, 0.5, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(snap.value_at_quantile(q), 3.7);
}

TEST_F(QuantileTest, QuantileErrorWithinDocumentedBound) {
  QuantileHistogram h;
  std::vector<double> samples;
  // Deterministic multiset spanning ~9 octaves.
  double value = 0.37;
  for (int i = 0; i < 5000; ++i) {
    samples.push_back(value);
    h.record(value);
    value = value * 1.0023 + 0.0007;
    if (value > 200.0) value *= 0.0031;
  }
  std::sort(samples.begin(), samples.end());
  const QuantileSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.count, samples.size());
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999}) {
    const auto rank = static_cast<std::size_t>(std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(samples.size())))));
    const double exact = samples[rank - 1];
    const double estimate = snap.value_at_quantile(q);
    EXPECT_LE(std::abs(estimate - exact) / exact,
              kQuantileRelativeError + 1e-12)
        << "q=" << q << " exact=" << exact << " estimate=" << estimate;
  }
}

TEST_F(QuantileTest, OutOfRangeSamplesLandInUnderOverflow) {
  QuantileHistogram h;
  h.record(0.0);
  h.record(-5.0);
  h.record(0x1.0p+50);
  h.record(std::numeric_limits<double>::quiet_NaN());
  const QuantileSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.underflow, 3u);  // 0, -5, NaN
  EXPECT_EQ(snap.overflow, 1u);
  // NaN never perturbs the exact extrema.
  EXPECT_DOUBLE_EQ(snap.min, -5.0);
  EXPECT_DOUBLE_EQ(snap.max, 0x1.0p+50);
  EXPECT_DOUBLE_EQ(snap.value_at_quantile(0.01), -5.0);   // underflow -> min
  EXPECT_DOUBLE_EQ(snap.value_at_quantile(1.0), 0x1.0p+50);  // overflow -> max
}

TEST_F(QuantileTest, SnapshotsAreBitwiseDeterministicAcrossThreadCounts) {
  std::vector<double> samples;
  double value = 0.11;
  for (int i = 0; i < 20'000; ++i) {
    samples.push_back(value);
    value = value * 1.0019 + 0.0003;
    if (value > 900.0) value *= 0.0013;
  }

  QuantileHistogram serial;
  for (const double v : samples) serial.record(v);

  for (const unsigned threads : {2u, 5u, 8u}) {
    QuantileHistogram parallel;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t)
      workers.emplace_back([&, t] {
        // Strided partition: every thread records a different interleaving.
        for (std::size_t i = t; i < samples.size(); i += threads)
          parallel.record(samples[i]);
      });
    for (std::thread& w : workers) w.join();
    // Same multiset, any thread count, any arrival order: identical bits.
    EXPECT_TRUE(serial.snapshot() == parallel.snapshot())
        << threads << " threads";
  }
}

TEST_F(QuantileTest, MergeEqualsCombinedRecording) {
  QuantileHistogram left, right, combined;
  double value = 0.9;
  for (int i = 0; i < 1000; ++i) {
    (i % 2 == 0 ? left : right).record(value);
    combined.record(value);
    value = value * 1.013 + 0.01;
    if (value > 5000.0) value *= 0.0002;
  }
  QuantileSnapshot merged = left.snapshot();
  merged.merge(right.snapshot());
  EXPECT_TRUE(merged == combined.snapshot());
}

TEST_F(QuantileTest, ResetRestoresTheEmptyState) {
  QuantileHistogram h;
  h.record(1.0);
  h.record(2.0);
  h.reset();
  EXPECT_TRUE(h.snapshot() == QuantileHistogram().snapshot());
}

namespace fake_clock {
std::atomic<std::uint64_t> now_ms{0};
std::uint64_t read() { return now_ms.load(std::memory_order_relaxed); }
}  // namespace fake_clock

TEST_F(QuantileTest, WindowedHistogramAgesOutOldSamples) {
  fake_clock::now_ms.store(0);
  set_telemetry_clock_for_test(&fake_clock::read);

  WindowedQuantileHistogram::Options options;
  options.window_ms = 1000;
  options.slots = 4;  // 250 ms sub-windows
  WindowedQuantileHistogram w{options};

  w.record(5.0);
  EXPECT_EQ(w.snapshot().count, 1u);

  // Still inside the window: the sample survives a rotation or two.
  fake_clock::now_ms.store(600);
  w.record(7.0);
  EXPECT_EQ(w.snapshot().count, 2u);
  EXPECT_DOUBLE_EQ(w.snapshot().min, 5.0);

  // One full window later the first sample has aged out, the second not yet.
  fake_clock::now_ms.store(1100);
  EXPECT_EQ(w.snapshot().count, 1u);
  EXPECT_DOUBLE_EQ(w.snapshot().min, 7.0);

  // Far future: everything aged out; a new sample recycles a stale slot.
  fake_clock::now_ms.store(10'000);
  EXPECT_EQ(w.snapshot().count, 0u);
  w.record(9.0);
  EXPECT_EQ(w.snapshot().count, 1u);
  EXPECT_DOUBLE_EQ(w.snapshot().value_at_quantile(0.5), 9.0);
}

TEST_F(QuantileTest, WindowedHistogramSurvivesABackwardsClock) {
  // A non-monotonic telemetry clock (VM suspend, manual clock step, ntp
  // slew) must never corrupt the window: samples stamped "in the future"
  // simply age out of snapshots and their slots recycle on the next record.
  fake_clock::now_ms.store(10'000);
  set_telemetry_clock_for_test(&fake_clock::read);

  WindowedQuantileHistogram w{{1000, 4}};  // 250 ms sub-windows
  w.record(5.0);
  EXPECT_EQ(w.snapshot().count, 1u);

  // Clock steps backwards by 9 s: the unsigned epoch distance wraps huge,
  // so the future-stamped slot is treated as aged out — skipped, not merged.
  fake_clock::now_ms.store(1'000);
  EXPECT_EQ(w.snapshot().count, 0u);

  // Recording at the earlier time recycles that stale slot cleanly.
  w.record(7.0);
  const QuantileSnapshot snap = w.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.min, 7.0);
  EXPECT_DOUBLE_EQ(snap.max, 7.0);
}

TEST_F(QuantileTest, WindowedHistogramSurvivesClockRolloverNearUint64Max) {
  // Epochs near 2^64 must not collide with the idle-slot sentinel, and a
  // wraparound to small timestamps behaves like any backwards step.
  fake_clock::now_ms.store(~std::uint64_t{0} - 5);
  set_telemetry_clock_for_test(&fake_clock::read);

  WindowedQuantileHistogram w{{1000, 4}};
  w.record(3.0);
  EXPECT_EQ(w.snapshot().count, 1u);

  fake_clock::now_ms.store(3);  // the clock wrapped
  EXPECT_EQ(w.snapshot().count, 0u);
  w.record(4.0);
  EXPECT_EQ(w.snapshot().count, 1u);
  EXPECT_DOUBLE_EQ(w.snapshot().value_at_quantile(0.5), 4.0);
}

TEST_F(QuantileTest, WindowedHistogramAbsorbsSameTimestampBursts) {
  fake_clock::now_ms.store(500);
  set_telemetry_clock_for_test(&fake_clock::read);

  WindowedQuantileHistogram w{{1000, 4}};
  // A burst that never advances the clock lands in one sub-window.
  for (int i = 1; i <= 500; ++i) w.record(static_cast<double>(i));
  const QuantileSnapshot snap = w.snapshot();
  EXPECT_EQ(snap.count, 500u);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 500.0);

  // The whole burst ages out together once the window passes.
  fake_clock::now_ms.store(500 + 1000);
  EXPECT_EQ(w.snapshot().count, 0u);
}

TEST_F(QuantileTest, WindowedHistogramHandlesRecordingGaps) {
  fake_clock::now_ms.store(0);
  set_telemetry_clock_for_test(&fake_clock::read);

  WindowedQuantileHistogram w{{1000, 4}};
  w.record(1.0);

  // An idle gap much longer than the window: the stale sample must not
  // resurface even though its slot was never overwritten in between.
  fake_clock::now_ms.store(60'000);
  EXPECT_EQ(w.snapshot().count, 0u);
  w.record(2.0);
  w.record(8.0);
  const QuantileSnapshot snap = w.snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_DOUBLE_EQ(snap.min, 2.0);
  EXPECT_DOUBLE_EQ(snap.max, 8.0);
}

TEST_F(QuantileTest, WindowedOptionsClampToUsableValues) {
  WindowedQuantileHistogram degenerate{{0, 0}};
  // window_ms >= slots >= 2 so the epoch arithmetic stays well defined.
  EXPECT_GE(degenerate.window_ms(), 2u);
  degenerate.record(1.0);
  EXPECT_GE(degenerate.snapshot().count, 0u);
}

TEST_F(QuantileTest, RegistryHandsOutStableReferencesAndSnapshots) {
  QuantileHistogram& h = Metrics::instance().quantile("test.q");
  EXPECT_EQ(&h, &Metrics::instance().quantile("test.q"));
  record_latency("test.lat", 5.0);
  record_latency("test.lat", 50.0);
  const MetricsSnapshot snap = Metrics::instance().snapshot();
  ASSERT_TRUE(snap.quantiles.count("test.lat"));
  ASSERT_TRUE(snap.windows.count("test.lat"));
  EXPECT_EQ(snap.quantiles.at("test.lat").count, 2u);
  EXPECT_EQ(snap.windows.at("test.lat").count, 2u);
  const Table table = Metrics::instance().to_table();
  std::ostringstream csv;
  table.print_csv(csv);
  EXPECT_NE(csv.str().find("quantile,test.lat"), std::string::npos);
  EXPECT_NE(csv.str().find("window,test.lat"), std::string::npos);
}

TEST_F(QuantileTest, SnapshotRacingRecordersStaysInternallyConsistent) {
  // Hammer test (meaningful under TSan): four writers flood a registered
  // histogram while the main thread snapshots the whole registry. Every
  // snapshot must be internally consistent — ranks resolve, quantiles are
  // finite once non-empty — and the final count must be exact.
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 50'000;
  QuantileHistogram& h = Metrics::instance().quantile("test.hammer");
  std::atomic<int> running{kWriters};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t)
    writers.emplace_back([&, t] {
      double value = 0.5 + t;
      for (int i = 0; i < kPerWriter; ++i) {
        h.record(value);
        value = value * 1.0001 + 0.001;
        if (value > 100.0) value *= 0.01;
      }
      running.fetch_sub(1, std::memory_order_release);
    });
  std::uint64_t last_count = 0;
  while (running.load(std::memory_order_acquire) > 0) {
    const MetricsSnapshot snap = Metrics::instance().snapshot();
    const auto found = snap.quantiles.find("test.hammer");
    if (found != snap.quantiles.end() && found->second.count > 0) {
      const double p50 = found->second.value_at_quantile(0.5);
      EXPECT_TRUE(std::isfinite(p50));
      EXPECT_GE(found->second.count, last_count);  // counts only grow
      last_count = found->second.count;
    }
    std::this_thread::yield();
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(h.snapshot().count,
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
}

// ------------------------------------------------------------ telemetry ---

std::string obs_temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Telemetry, ParsesSpecWithOptionalPeriod) {
  {
    const TelemetryOptions options = parse_telemetry_spec("out.jsonl");
    EXPECT_EQ(options.jsonl_path, "out.jsonl");
    EXPECT_EQ(options.period_ms, kTelemetryDefaultPeriodMs);
    EXPECT_TRUE(options.enabled());
  }
  {
    const TelemetryOptions options = parse_telemetry_spec("out.jsonl:250");
    EXPECT_EQ(options.jsonl_path, "out.jsonl");
    EXPECT_EQ(options.period_ms, 250u);
  }
  {
    // A non-numeric suffix is part of the path, not a period.
    const TelemetryOptions options = parse_telemetry_spec("dir:with/colon");
    EXPECT_EQ(options.jsonl_path, "dir:with/colon");
    EXPECT_EQ(options.period_ms, kTelemetryDefaultPeriodMs);
  }
  {
    // Period 0 would spin; clamp to 1 ms.
    const TelemetryOptions options = parse_telemetry_spec("out.jsonl:0");
    EXPECT_EQ(options.period_ms, 1u);
  }
  EXPECT_FALSE(parse_telemetry_spec("").enabled());
}

TEST(Telemetry, PrometheusNamesAreSanitized) {
  EXPECT_EQ(prometheus_metric_name("sweep.mixing.source_ms"),
            "sntrust_sweep_mixing_source_ms");
  EXPECT_EQ(prometheus_metric_name("ok_name:sub"), "sntrust_ok_name:sub");
  EXPECT_EQ(prometheus_metric_name("bad name-x"), "sntrust_bad_name_x");
}

TEST(Telemetry, ExporterWritesParseableFramesAcrossLifecycle) {
  metrics_reset_all();
  const std::string jsonl = obs_temp_path("sntrust_telemetry_lifecycle.jsonl");
  const std::string prom = obs_temp_path("sntrust_telemetry_lifecycle.prom");
  std::remove(jsonl.c_str());
  std::remove(prom.c_str());

  count("test.frames_counter", 3);
  set_gauge("test.frames_gauge", 1.25);
  record_latency("test.frames_lat", 4.0);

  TelemetryExporter& exporter = TelemetryExporter::instance();
  const std::uint64_t before = exporter.frames_written();
  TelemetryOptions options;
  options.jsonl_path = jsonl;
  options.prom_path = prom;
  options.period_ms = 60'000;  // no periodic frames during the test
  exporter.start(options);
  EXPECT_TRUE(exporter.running());
  EXPECT_EQ(exporter.frames_written() - before, 1u);  // frame 0, synchronous

  record_latency("test.frames_lat", 8.0);
  exporter.flush();
  exporter.stop();  // writes the final frame
  EXPECT_FALSE(exporter.running());
  EXPECT_EQ(exporter.frames_written() - before, 3u);

  // Every line must satisfy the strict JSON parser, with the documented
  // schema fields and monotonically increasing sequence numbers.
  const TelemetryFrames frames = read_telemetry_frames(jsonl);
  EXPECT_FALSE(frames.truncated_tail);
  ASSERT_EQ(frames.frames.size(), 3u);
  std::int64_t last_seq = -1;
  for (const json::Value& frame : frames.frames) {
    EXPECT_EQ(frame.find("schema_version")->as_int(), 1);
    EXPECT_GT(frame.find("seq")->as_int(), last_seq);
    last_seq = frame.find("seq")->as_int();
    ASSERT_NE(frame.find("tool"), nullptr);
    ASSERT_NE(frame.find("totals"), nullptr);
    EXPECT_NE(frame.find("totals")->find("peak_rss_bytes"), nullptr);
    ASSERT_NE(frame.find("counters"), nullptr);
    ASSERT_NE(frame.find("quantiles"), nullptr);
    ASSERT_NE(frame.find("windows"), nullptr);
  }
  // The final frame carries the recorded state: counter value and the
  // quantile entry with its value fields (count > 0 gates them in).
  const json::Value& last = frames.frames.back();
  EXPECT_EQ(last.find("counters")->find("test.frames_counter")->as_int(), 3);
  const json::Value* lat = last.find("quantiles")->find("test.frames_lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->find("count")->as_int(), 2);
  ASSERT_NE(lat->find("p50"), nullptr);
  EXPECT_GT(lat->find("p50")->as_number(), 0.0);
  ASSERT_NE(lat->find("p99"), nullptr);

  // The Prometheus sink holds the last exposition in text format.
  std::ifstream prom_in{prom};
  ASSERT_TRUE(prom_in.good());
  std::ostringstream prom_text;
  prom_text << prom_in.rdbuf();
  EXPECT_NE(prom_text.str().find(
                "# TYPE sntrust_test_frames_counter_total counter"),
            std::string::npos);
  EXPECT_NE(prom_text.str().find("sntrust_test_frames_counter_total 3"),
            std::string::npos);
  EXPECT_NE(prom_text.str().find("# TYPE sntrust_test_frames_gauge gauge"),
            std::string::npos);
  EXPECT_NE(prom_text.str().find(
                "sntrust_test_frames_lat{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(prom_text.str().find("sntrust_test_frames_lat_count 2"),
            std::string::npos);
  EXPECT_NE(prom_text.str().find("sntrust_test_frames_lat_window_count"),
            std::string::npos);

  std::remove(jsonl.c_str());
  std::remove(prom.c_str());
  metrics_reset_all();
}

TEST(Telemetry, ExporterRestartsAfterStop) {
  const std::string jsonl = obs_temp_path("sntrust_telemetry_restart.jsonl");
  std::remove(jsonl.c_str());
  TelemetryExporter& exporter = TelemetryExporter::instance();
  TelemetryOptions options;
  options.jsonl_path = jsonl;
  options.period_ms = 60'000;
  exporter.start(options);
  exporter.stop();
  exporter.start(options);
  exporter.stop();
  // Two start/stop cycles, two frames each, appended to the same file.
  const TelemetryFrames frames = read_telemetry_frames(jsonl);
  EXPECT_EQ(frames.frames.size(), 4u);
  std::remove(jsonl.c_str());
}

TEST(Telemetry, InjectedFaultInWritePathDoesNotWedgeTheExporter) {
  const std::string jsonl = obs_temp_path("sntrust_telemetry_fault.jsonl");
  std::remove(jsonl.c_str());
  TelemetryExporter& exporter = TelemetryExporter::instance();
  const std::uint64_t before = exporter.frames_written();
  TelemetryOptions options;
  options.jsonl_path = jsonl;
  options.period_ms = 60'000;
  exporter.start(options);  // frame 0 written before the fault arms

  // Deterministic injection at the frame-write site: every subsequent
  // write throws before touching the sink.
  exec::FaultPlan plan;
  plan.site = "telemetry";
  plan.seed = 1;
  plan.prob = 1.0;
  exec::set_fault_plan(plan);
  EXPECT_THROW(exporter.flush(), exec::InjectedFault);
  // stop() tolerates a faulting final flush (it must never take down the
  // workload at exit) and still shuts the exporter down cleanly.
  EXPECT_NO_THROW(exporter.stop());
  EXPECT_FALSE(exporter.running());
  exec::clear_fault_plan();

  // Only the pre-fault frame landed, and the stream is still parseable.
  EXPECT_EQ(exporter.frames_written() - before, 1u);
  const TelemetryFrames frames = read_telemetry_frames(jsonl);
  EXPECT_FALSE(frames.truncated_tail);
  EXPECT_EQ(frames.frames.size(), 1u);
  std::remove(jsonl.c_str());
}

TEST(Telemetry, TruncatedFinalFrameIsTolerated) {
  const std::string path = obs_temp_path("sntrust_telemetry_truncated.jsonl");
  {
    std::ofstream out{path, std::ios::trunc};
    out << R"({"schema_version":1,"seq":0})" << "\n"
        << R"({"schema_version":1,"seq":1})" << "\n"
        << R"({"schema_version":1,"se)";  // killed mid-append
  }
  const TelemetryFrames frames = read_telemetry_frames(path);
  EXPECT_TRUE(frames.truncated_tail);
  ASSERT_EQ(frames.frames.size(), 2u);
  EXPECT_EQ(frames.frames[1].find("seq")->as_int(), 1);
  std::remove(path.c_str());
}

TEST(Telemetry, MalformedMiddleFrameThrows) {
  const std::string path = obs_temp_path("sntrust_telemetry_malformed.jsonl");
  {
    std::ofstream out{path, std::ios::trunc};
    out << R"({"schema_version":1,"seq":0})" << "\n"
        << "not json\n"
        << R"({"schema_version":1,"seq":2})" << "\n";
  }
  // A damaged line that is not the tail means the file is not a telemetry
  // stream — refuse it loudly rather than silently dropping frames.
  EXPECT_THROW(read_telemetry_frames(path), std::runtime_error);
  std::remove(path.c_str());
}

// ------------------------------------------------------------- watchdog ---

class WatchdogTest : public ::testing::Test {
 protected:
  void TearDown() override {
    StallWatchdog::instance().stop();
    metrics_reset_all();
  }
};

TEST_F(WatchdogTest, CheckPeriodDerivesFromStallThreshold) {
  WatchdogOptions options;
  EXPECT_FALSE(options.enabled());
  options.stall_ms = 100;
  EXPECT_TRUE(options.enabled());
  EXPECT_EQ(options.effective_check_period_ms(), 25u);
  options.stall_ms = 2;
  EXPECT_EQ(options.effective_check_period_ms(), 1u);  // clamped low
  options.stall_ms = 60'000;
  EXPECT_EQ(options.effective_check_period_ms(), 1000u);  // clamped high
  options.check_period_ms = 7;
  EXPECT_EQ(options.effective_check_period_ms(), 7u);  // explicit wins
}

TEST_F(WatchdogTest, HeartbeatsAccumulate) {
  const std::uint64_t before = watchdog_heartbeats();
  watchdog_heartbeat();
  watchdog_heartbeat();
  EXPECT_EQ(watchdog_heartbeats() - before, 2u);
}

TEST_F(WatchdogTest, FiresOnSilenceOnlyInsideAnActivityScope) {
  StallWatchdog& dog = StallWatchdog::instance();
  WatchdogOptions options;
  options.stall_ms = 40;
  options.check_period_ms = 5;
  dog.configure(options);
  EXPECT_TRUE(dog.running());

  // Idle (no activity scope): arbitrarily long silence is not a stall.
  const std::uint64_t before_idle = dog.stalls_detected();
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(dog.stalls_detected() - before_idle, 0u);

  // Inside an activity scope the same silence fires exactly once.
  const std::uint64_t before_active = dog.stalls_detected();
  Counter& stalled = Metrics::instance().counter("exec.stalled");
  const std::uint64_t stalled_before = stalled.value();
  {
    dog.begin_activity();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    dog.end_activity();
  }
  EXPECT_EQ(dog.stalls_detected() - before_active, 1u);
  EXPECT_EQ(stalled.value() - stalled_before, 1u);
}

TEST_F(WatchdogTest, SteadyHeartbeatsNeverFire) {
  StallWatchdog& dog = StallWatchdog::instance();
  WatchdogOptions options;
  options.stall_ms = 150;
  options.check_period_ms = 5;
  dog.configure(options);
  const std::uint64_t before = dog.stalls_detected();
  dog.begin_activity();
  // 300 ms of activity with progress every 15 ms: silence never reaches the
  // 150 ms threshold.
  for (int i = 0; i < 20; ++i) {
    watchdog_heartbeat();
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  }
  dog.end_activity();
  EXPECT_EQ(dog.stalls_detected() - before, 0u);
}

}  // namespace
}  // namespace sntrust::obs

#include "community/community.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::complete_graph;
using testing::two_cliques;

TEST(LabelPropagation, FindsTwoCliques) {
  const Partition p = label_propagation(two_cliques(8));
  EXPECT_EQ(p.count, 2u);
  // All of clique 1 shares a label distinct from clique 2.
  for (VertexId v = 1; v < 8; ++v)
    EXPECT_EQ(p.community_of[v], p.community_of[0]);
  for (VertexId v = 9; v < 16; ++v)
    EXPECT_EQ(p.community_of[v], p.community_of[8]);
  EXPECT_NE(p.community_of[0], p.community_of[8]);
}

TEST(LabelPropagation, CompleteGraphIsOneCommunity) {
  const Partition p = label_propagation(complete_graph(10));
  EXPECT_EQ(p.count, 1u);
}

TEST(LabelPropagation, SizesSumToN) {
  const Graph g = planted_partition(300, 6, 0.3, 0.005, 11);
  const Partition p = label_propagation(g);
  std::uint64_t total = 0;
  for (const auto s : p.sizes()) total += s;
  EXPECT_EQ(total, 300u);
}

TEST(LabelPropagation, RecoversPlantedBlocksApproximately) {
  const Graph g = planted_partition(400, 4, 0.4, 0.002, 13);
  const Partition p = label_propagation(g);
  // Most vertices in the same planted block (contiguous 100s) should share a
  // label.
  std::uint32_t agreements = 0, pairs = 0;
  for (VertexId v = 0; v < 400; v += 7) {
    for (VertexId w = v + 1; w < std::min<VertexId>(400, v + 50); w += 11) {
      if (v / 100 != w / 100) continue;
      ++pairs;
      if (p.community_of[v] == p.community_of[w]) ++agreements;
    }
  }
  EXPECT_GT(static_cast<double>(agreements) / pairs, 0.8);
}

TEST(Modularity, TwoCliquePartitionIsHigh) {
  const Graph g = two_cliques(8);
  const Partition p = label_propagation(g);
  EXPECT_GT(modularity(g, p), 0.4);
}

TEST(Modularity, SingleCommunityIsZero) {
  const Graph g = complete_graph(6);
  Partition p;
  p.community_of.assign(6, 0);
  p.count = 1;
  EXPECT_NEAR(modularity(g, p), 0.0, 1e-12);
}

TEST(Modularity, BadPartitionThrows) {
  const Graph g = complete_graph(4);
  Partition p;
  p.community_of.assign(3, 0);
  p.count = 1;
  EXPECT_THROW(modularity(g, p), std::invalid_argument);
}

TEST(Conductance, BridgeCutIsSmall) {
  const Graph g = two_cliques(8);
  std::vector<std::uint8_t> mask(16, 0);
  for (VertexId v = 0; v < 8; ++v) mask[v] = 1;
  // One cut edge over volume 8*7+1 = 57.
  EXPECT_NEAR(conductance(g, mask), 1.0 / 57.0, 1e-12);
}

TEST(Conductance, BalancedCutOfClique) {
  const Graph g = complete_graph(6);
  std::vector<std::uint8_t> mask(6, 0);
  mask[0] = mask[1] = mask[2] = 1;
  // Cut = 9, volume each side = 15.
  EXPECT_NEAR(conductance(g, mask), 9.0 / 15.0, 1e-12);
}

TEST(Conductance, EmptySideThrows) {
  const Graph g = complete_graph(4);
  std::vector<std::uint8_t> none(4, 0), all(4, 1);
  EXPECT_THROW(conductance(g, none), std::invalid_argument);
  EXPECT_THROW(conductance(g, all), std::invalid_argument);
}

TEST(Fiedler, SeparatesTwoCliques) {
  const Graph g = two_cliques(10);
  const std::vector<double> values = fiedler_vector(g);
  // The Fiedler vector's sign splits the cliques.
  int sign_agree = 0;
  for (VertexId v = 0; v < 10; ++v)
    if ((values[v] < 0) == (values[0] < 0)) ++sign_agree;
  for (VertexId v = 10; v < 20; ++v)
    if ((values[v] < 0) != (values[0] < 0)) ++sign_agree;
  EXPECT_GE(sign_agree, 18);
}

TEST(Fiedler, TooSmallThrows) {
  GraphBuilder b{1};
  EXPECT_THROW(fiedler_vector(b.build()), std::invalid_argument);
}

TEST(ConductanceSweep, FindsTheBridge) {
  const Graph g = two_cliques(10);
  const SweepResult sweep = conductance_sweep(g, fiedler_vector(g));
  EXPECT_EQ(sweep.best_prefix, 10u);
  EXPECT_NEAR(sweep.best_conductance, 1.0 / 91.0, 1e-9);
}

TEST(ConductanceSweep, CurveLengthIsNMinusOne) {
  const Graph g = complete_graph(7);
  std::vector<double> values(7);
  for (VertexId v = 0; v < 7; ++v) values[v] = v;
  const SweepResult sweep = conductance_sweep(g, values);
  EXPECT_EQ(sweep.curve.size(), 6u);
}

TEST(ConductanceSweep, StrongCommunitiesGiveLowerScore) {
  const Graph strong =
      largest_component(planted_partition(300, 2, 0.2, 0.002, 17)).graph;
  const Graph weak =
      largest_component(planted_partition(300, 2, 0.2, 0.08, 17)).graph;
  const double phi_strong =
      conductance_sweep(strong, fiedler_vector(strong)).best_conductance;
  const double phi_weak =
      conductance_sweep(weak, fiedler_vector(weak)).best_conductance;
  EXPECT_LT(phi_strong, phi_weak);
}

TEST(ConductanceSweep, SizeMismatchThrows) {
  const Graph g = complete_graph(4);
  EXPECT_THROW(conductance_sweep(g, {0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace sntrust

#include "util/format.hpp"

#include <gtest/gtest.h>

#include "util/env.hpp"

namespace sntrust {
namespace {

TEST(Format, WithThousandsSmall) {
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(7), "7");
  EXPECT_EQ(with_thousands(999), "999");
}

TEST(Format, WithThousandsGroups) {
  EXPECT_EQ(with_thousands(1000), "1,000");
  EXPECT_EQ(with_thousands(12345), "12,345");
  EXPECT_EQ(with_thousands(123456), "123,456");
  EXPECT_EQ(with_thousands(1234567), "1,234,567");
  EXPECT_EQ(with_thousands(1000000000ULL), "1,000,000,000");
}

TEST(Format, FixedDigits) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 3), "2.000");
  EXPECT_EQ(fixed(-0.5, 1), "-0.5");
}

TEST(Format, CompactTrimsNoise) {
  EXPECT_EQ(compact(0.5), "0.5");
  EXPECT_EQ(compact(2.0), "2");
  EXPECT_EQ(compact(123456789.0, 3), "1.23e+08");
}

TEST(Env, DoubleFallsBackWhenUnset) {
  unsetenv("SNTRUST_TEST_VAR");
  EXPECT_DOUBLE_EQ(env_double("SNTRUST_TEST_VAR", 2.5), 2.5);
}

TEST(Env, DoubleParsesValue) {
  setenv("SNTRUST_TEST_VAR", "1.75", 1);
  EXPECT_DOUBLE_EQ(env_double("SNTRUST_TEST_VAR", 0.0), 1.75);
  unsetenv("SNTRUST_TEST_VAR");
}

TEST(Env, DoubleFallsBackOnGarbage) {
  setenv("SNTRUST_TEST_VAR", "banana", 1);
  EXPECT_DOUBLE_EQ(env_double("SNTRUST_TEST_VAR", 3.0), 3.0);
  unsetenv("SNTRUST_TEST_VAR");
}

TEST(Env, IntParsesAndFallsBack) {
  setenv("SNTRUST_TEST_INT", "42", 1);
  EXPECT_EQ(env_int("SNTRUST_TEST_INT", 0), 42);
  setenv("SNTRUST_TEST_INT", "x", 1);
  EXPECT_EQ(env_int("SNTRUST_TEST_INT", 9), 9);
  unsetenv("SNTRUST_TEST_INT");
}

TEST(Env, BenchScaleClampsRange) {
  setenv("SNTRUST_SCALE", "0.0001", 1);
  EXPECT_DOUBLE_EQ(bench_scale(), 0.01);
  setenv("SNTRUST_SCALE", "1000", 1);
  EXPECT_DOUBLE_EQ(bench_scale(), 100.0);
  setenv("SNTRUST_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(bench_scale(), 0.5);
  unsetenv("SNTRUST_SCALE");
}

}  // namespace
}  // namespace sntrust

#include "sybil/gatekeeper.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::complete_graph;
using testing::path_graph;
using testing::star_graph;

Graph expander(VertexId n, std::uint64_t seed) {
  return largest_component(barabasi_albert(n, 4, seed)).graph;
}

TEST(TicketDistribution, SourceAlwaysReached) {
  const Graph g = expander(200, 1);
  const TicketRun run = distribute_tickets(g, 0, 1);
  EXPECT_EQ(run.vertices_reached, 1u);
  EXPECT_TRUE(run.reached[0]);
}

TEST(TicketDistribution, MoreTicketsReachMore) {
  const Graph g = expander(500, 2);
  const TicketRun small = distribute_tickets(g, 0, 10);
  const TicketRun large = distribute_tickets(g, 0, 1000);
  EXPECT_GT(large.vertices_reached, small.vertices_reached);
}

TEST(TicketDistribution, ReachedMatchesFlags) {
  const Graph g = expander(300, 3);
  const TicketRun run = distribute_tickets(g, 5, 100);
  std::uint64_t flagged = 0;
  for (const auto f : run.reached)
    if (f) ++flagged;
  EXPECT_EQ(flagged, run.vertices_reached);
}

TEST(TicketDistribution, TicketConservationOnStar) {
  // Hub with t tickets: keeps 1, forwards t-1 split across 9 leaves.
  const Graph g = star_graph(10);
  const TicketRun run = distribute_tickets(g, 0, 10);
  EXPECT_EQ(run.vertices_reached, 10u);
  const std::uint64_t leaf_total =
      std::accumulate(run.tickets_received.begin() + 1,
                      run.tickets_received.end(), std::uint64_t{0});
  EXPECT_EQ(leaf_total, 9u);
}

TEST(TicketDistribution, PathConsumesOnePerHop) {
  const Graph g = path_graph(6);
  const TicketRun run = distribute_tickets(g, 0, 4);
  // 4 tickets from vertex 0 reach exactly vertices 0..3.
  EXPECT_EQ(run.vertices_reached, 4u);
  EXPECT_TRUE(run.reached[3]);
  EXPECT_FALSE(run.reached[4]);
}

TEST(TicketDistribution, DeadEndLosesTickets) {
  // Star from a leaf: leaf -> hub -> other leaves (no further level); extra
  // tickets die at the last level.
  const Graph g = star_graph(5);
  const TicketRun run = distribute_tickets(g, 1, 1000);
  EXPECT_EQ(run.vertices_reached, 5u);
}

TEST(TicketDistribution, BadArgsThrow) {
  const Graph g = path_graph(3);
  EXPECT_THROW(distribute_tickets(g, 5, 10), std::out_of_range);
  EXPECT_THROW(distribute_tickets(g, 0, 0), std::invalid_argument);
}

TEST(AdaptiveDistribute, HitsTargetFraction) {
  const Graph g = expander(400, 4);
  const TicketRun run = adaptive_distribute(g, 0, 0.5);
  EXPECT_GE(run.vertices_reached, 200u);
}

TEST(AdaptiveDistribute, BadFractionThrows) {
  const Graph g = expander(50, 5);
  EXPECT_THROW(adaptive_distribute(g, 0, 0.0), std::invalid_argument);
  EXPECT_THROW(adaptive_distribute(g, 0, 1.5), std::invalid_argument);
}

TEST(GateKeeper, AdmitsMostHonestOnExpander) {
  const Graph g = expander(600, 6);
  GateKeeperParams params;
  params.num_distributers = 20;
  params.f_admit = 0.1;
  params.seed = 6;
  const GateKeeperResult result = run_gatekeeper(g, 0, params);
  std::uint64_t admitted = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (result.admitted(v)) ++admitted;
  EXPECT_GT(static_cast<double>(admitted) / g.num_vertices(), 0.8);
}

TEST(GateKeeper, ThresholdScalesWithF) {
  const Graph g = expander(200, 7);
  GateKeeperParams params;
  params.num_distributers = 50;
  params.f_admit = 0.2;
  EXPECT_EQ(run_gatekeeper(g, 0, params).threshold, 10u);
  params.f_admit = 0.5;
  EXPECT_EQ(run_gatekeeper(g, 0, params).threshold, 25u);
}

TEST(GateKeeper, HigherFAdmitsFewer) {
  const Graph g = expander(500, 8);
  GateKeeperParams params;
  params.num_distributers = 30;
  params.seed = 8;
  std::uint64_t counts[2] = {0, 0};
  const double fs[2] = {0.05, 0.4};
  for (int i = 0; i < 2; ++i) {
    params.f_admit = fs[i];
    const GateKeeperResult result = run_gatekeeper(g, 0, params);
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      if (result.admitted(v)) ++counts[i];
  }
  EXPECT_GE(counts[0], counts[1]);
}

TEST(GateKeeper, BadParamsThrow) {
  const Graph g = expander(100, 9);
  GateKeeperParams params;
  params.num_distributers = 0;
  EXPECT_THROW(run_gatekeeper(g, 0, params), std::invalid_argument);
  params.num_distributers = 5;
  params.f_admit = 0.0;
  EXPECT_THROW(run_gatekeeper(g, 0, params), std::invalid_argument);
  params.f_admit = 0.1;
  EXPECT_THROW(run_gatekeeper(g, 999, params), std::out_of_range);
}

TEST(GateKeeper, EvaluationBoundsSybils) {
  const Graph honest = expander(800, 10);
  AttackParams attack;
  attack.num_sybils = 400;
  attack.attack_edges = 20;
  attack.seed = 10;
  const AttackedGraph attacked{honest, attack};

  GateKeeperParams params;
  params.num_distributers = 20;
  params.f_admit = 0.2;
  params.seed = 10;
  const GateKeeperEvaluation eval = evaluate_gatekeeper(attacked, 0, params);
  EXPECT_GT(eval.honest_accept_fraction, 0.5);
  // The defense's point: admitted Sybils scale with attack edges, not with
  // the Sybil population (400 Sybils, 20 edges -> far fewer than 20 each).
  EXPECT_LT(eval.sybils_per_attack_edge, 10.0);
}

TEST(GateKeeper, EvaluationRequiresHonestController) {
  const Graph honest = expander(100, 11);
  AttackParams attack;
  attack.num_sybils = 10;
  attack.attack_edges = 2;
  const AttackedGraph attacked{honest, attack};
  GateKeeperParams params;
  EXPECT_THROW(
      evaluate_gatekeeper(attacked, attacked.num_honest() + 1, params),
      std::invalid_argument);
}

}  // namespace
}  // namespace sntrust

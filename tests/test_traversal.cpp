#include "graph/traversal.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::disconnected_graph;
using testing::path_graph;
using testing::star_graph;

TEST(Bfs, PathDistances) {
  const Graph g = path_graph(5);
  const BfsResult r = bfs(g, 0);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(r.distances[v], v);
  EXPECT_EQ(r.eccentricity, 4u);
  EXPECT_EQ(r.reached, 5u);
}

TEST(Bfs, LevelSizesSumToReached) {
  const Graph g = cycle_graph(10);
  const BfsResult r = bfs(g, 3);
  const auto total = std::accumulate(r.level_sizes.begin(),
                                     r.level_sizes.end(), std::uint64_t{0});
  EXPECT_EQ(total, r.reached);
  EXPECT_EQ(r.level_sizes[0], 1u);
}

TEST(Bfs, CycleLevels) {
  const Graph g = cycle_graph(8);
  const BfsResult r = bfs(g, 0);
  // Levels: 1, 2, 2, 2, 1.
  ASSERT_EQ(r.level_sizes.size(), 5u);
  EXPECT_EQ(r.level_sizes[0], 1u);
  EXPECT_EQ(r.level_sizes[1], 2u);
  EXPECT_EQ(r.level_sizes[4], 1u);
}

TEST(Bfs, StarHasTwoLevels) {
  const Graph g = star_graph(9);
  const BfsResult center = bfs(g, 0);
  EXPECT_EQ(center.eccentricity, 1u);
  const BfsResult leaf = bfs(g, 3);
  EXPECT_EQ(leaf.eccentricity, 2u);
  EXPECT_EQ(leaf.level_sizes[1], 1u);   // the hub
  EXPECT_EQ(leaf.level_sizes[2], 7u);   // remaining leaves
}

TEST(Bfs, UnreachableMarked) {
  const Graph g = disconnected_graph();
  const BfsResult r = bfs(g, 0);
  EXPECT_EQ(r.reached, 3u);
  EXPECT_EQ(r.distances[3], kUnreachable);
  EXPECT_EQ(r.distances[4], kUnreachable);
  EXPECT_EQ(r.distances[5], kUnreachable);
}

TEST(Bfs, BadSourceThrows) {
  const Graph g = path_graph(3);
  BfsRunner runner{g};
  EXPECT_THROW(runner.run(3), std::out_of_range);
}

TEST(BfsRunner, ReusableAcrossSources) {
  const Graph g = path_graph(6);
  BfsRunner runner{g};
  const BfsResult& from0 = runner.run(0);
  EXPECT_EQ(from0.distances[5], 5u);
  const BfsResult& from5 = runner.run(5);
  EXPECT_EQ(from5.distances[0], 5u);
  EXPECT_EQ(from5.distances[5], 0u);
}

TEST(BfsRunner, ManyRunsStayConsistent) {
  const Graph g = complete_graph(7);
  BfsRunner runner{g};
  for (VertexId s = 0; s < 7; ++s) {
    const BfsResult& r = runner.run(s);
    EXPECT_EQ(r.eccentricity, 1u);
    EXPECT_EQ(r.reached, 7u);
    EXPECT_EQ(r.level_sizes[1], 6u);
  }
}

TEST(Bfs, SingletonGraph) {
  GraphBuilder b{1};
  const Graph g = b.build();
  const BfsResult r = bfs(g, 0);
  EXPECT_EQ(r.reached, 1u);
  EXPECT_EQ(r.eccentricity, 0u);
  ASSERT_EQ(r.level_sizes.size(), 1u);
}

TEST(Bfs, DistancesSatisfyTriangleOnEdges) {
  // Property: along any edge, BFS distances differ by at most 1.
  const Graph g = testing::two_cliques(5);
  const BfsResult r = bfs(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    for (const VertexId w : g.neighbors(v))
      EXPECT_LE(r.distances[v] > r.distances[w]
                    ? r.distances[v] - r.distances[w]
                    : r.distances[w] - r.distances[v],
                1u);
}

}  // namespace
}  // namespace sntrust

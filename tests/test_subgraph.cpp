#include "graph/subgraph.hpp"

#include <gtest/gtest.h>

#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::complete_graph;
using testing::path_graph;

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  const Graph g = path_graph(5);  // 0-1-2-3-4
  const std::vector<VertexId> members{0, 1, 3};
  const ExtractedGraph sub = induced_subgraph(g, members);
  EXPECT_EQ(sub.graph.num_vertices(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 1u);  // only 0-1 survives
  EXPECT_TRUE(sub.graph.has_edge(0, 1));
}

TEST(InducedSubgraph, IdMappingFollowsMemberOrder) {
  const Graph g = path_graph(4);
  const std::vector<VertexId> members{3, 1, 2};
  const ExtractedGraph sub = induced_subgraph(g, members);
  EXPECT_EQ(sub.original_id, members);
  // Edges 1-2 and 2-3 survive under new ids: 3->0, 1->1, 2->2.
  EXPECT_TRUE(sub.graph.has_edge(1, 2));  // old 1-2
  EXPECT_TRUE(sub.graph.has_edge(0, 2));  // old 3-2
  EXPECT_FALSE(sub.graph.has_edge(0, 1));
}

TEST(InducedSubgraph, EmptyMemberSet) {
  const Graph g = complete_graph(4);
  const ExtractedGraph sub = induced_subgraph(g, std::vector<VertexId>{});
  EXPECT_EQ(sub.graph.num_vertices(), 0u);
}

TEST(InducedSubgraph, FullMemberSetIsIsomorphicCopy) {
  const Graph g = complete_graph(5);
  std::vector<VertexId> all{0, 1, 2, 3, 4};
  const ExtractedGraph sub = induced_subgraph(g, all);
  EXPECT_EQ(sub.graph, g);
}

TEST(InducedSubgraph, DuplicateMemberThrows) {
  const Graph g = path_graph(4);
  const std::vector<VertexId> members{1, 1};
  EXPECT_THROW(induced_subgraph(g, members), std::invalid_argument);
}

TEST(InducedSubgraph, OutOfRangeMemberThrows) {
  const Graph g = path_graph(4);
  const std::vector<VertexId> members{0, 7};
  EXPECT_THROW(induced_subgraph(g, members), std::invalid_argument);
}

TEST(InducedSubgraph, DegreesNeverIncrease) {
  const Graph g = complete_graph(6);
  const std::vector<VertexId> members{0, 2, 4};
  const ExtractedGraph sub = induced_subgraph(g, members);
  for (VertexId v = 0; v < sub.graph.num_vertices(); ++v)
    EXPECT_LE(sub.graph.degree(v), g.degree(sub.original_id[v]));
}

}  // namespace
}  // namespace sntrust

#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::cycle_graph;
using testing::petersen_graph;

TEST(GraphIo, ReadsSimpleEdgeList) {
  std::istringstream in{"0 1\n1 2\n2 0\n"};
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(GraphIo, SkipsCommentsAndBlankLines) {
  std::istringstream in{"# header\n\n  \t\n10 20\n# trailing\n20 30\n"};
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphIo, RemapsSparseIds) {
  std::istringstream in{"1000000 5\n5 42\n"};
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);  // ids interned densely
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphIo, DropsSelfLoopsAndDuplicates) {
  std::istringstream in{"1 1\n1 2\n2 1\n"};
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphIo, MalformedLineThrows) {
  std::istringstream in{"1 2\nhello\n"};
  EXPECT_THROW(read_edge_list(in), std::runtime_error);
}

TEST(GraphIo, MissingSecondFieldThrows) {
  std::istringstream in{"1\n"};
  EXPECT_THROW(read_edge_list(in), std::runtime_error);
}

TEST(GraphIo, EmptyInputIsEmptyGraph) {
  std::istringstream in{""};
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 0u);
  std::istringstream comments{"# just\n# comments\n"};
  EXPECT_EQ(read_edge_list(comments).num_vertices(), 0u);
}

TEST(GraphIo, TrailingFieldsIgnored) {
  // SNAP files sometimes carry weights/timestamps; extra columns are noise.
  std::istringstream in{"0 1 0.5 extra\n1 2 7\n"};
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphIo, NegativeIdRejectedWithLineNumber) {
  std::istringstream in{"0 1\n2 -3\n"};
  try {
    read_edge_list(in);
    FAIL() << "expected IoError";
  } catch (const IoError& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos)
        << error.what();
  }
}

TEST(GraphIo, OverflowingIdRejectedWithLineNumber) {
  std::istringstream in{"18446744073709551616 1\n"};  // 2^64
  try {
    read_edge_list(in);
    FAIL() << "expected IoError";
  } catch (const IoError& error) {
    EXPECT_NE(std::string(error.what()).find("line 1"), std::string::npos)
        << error.what();
  }
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/path/graph.txt"),
               std::runtime_error);
  EXPECT_THROW(read_binary_file("/nonexistent/path/graph.bin"),
               std::runtime_error);
}

TEST(GraphIo, TextRoundTrip) {
  const Graph g = petersen_graph();
  std::stringstream buffer;
  write_edge_list(g, buffer);
  const Graph back = read_edge_list(buffer);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.num_edges(), g.num_edges());
}

TEST(GraphIo, TextFileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sntrust_io_text.txt").string();
  const Graph g = cycle_graph(12);
  write_edge_list_file(g, path);
  const Graph back = read_edge_list_file(path);
  EXPECT_EQ(back.num_edges(), 12u);
  std::remove(path.c_str());
}

TEST(GraphIo, BinaryRoundTripIsExact) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sntrust_io_bin.bin").string();
  const Graph g = petersen_graph();
  write_binary_file(g, path);
  const Graph back = read_binary_file(path);
  EXPECT_EQ(back, g);  // exact CSR equality, not just counts
  std::remove(path.c_str());
}

TEST(GraphIo, BinaryRejectsBadMagic) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sntrust_io_bad.bin").string();
  {
    std::ofstream out{path, std::ios::binary};
    out << "definitely not a graph";
  }
  EXPECT_THROW(read_binary_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(GraphIo, BinaryRejectsHeaderSizeMismatch) {
  // A header whose vertex count disagrees with the file size must be
  // rejected *before* any allocation sized from that count.
  const std::string path =
      (std::filesystem::temp_directory_path() / "sntrust_io_hdr.bin").string();
  write_binary_file(petersen_graph(), path);
  {
    std::fstream patch{path, std::ios::binary | std::ios::in | std::ios::out};
    patch.seekp(8);  // vertex-count field, right after the magic
    const std::uint64_t bogus = 1'000'000'000ULL;
    patch.write(reinterpret_cast<const char*>(&bogus), sizeof bogus);
  }
  EXPECT_THROW(read_binary_file(path), IoError);
  std::remove(path.c_str());
}

TEST(GraphIo, BinaryRejectsTruncation) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sntrust_io_trunc.bin").string();
  write_binary_file(petersen_graph(), path);
  // Truncate the file to half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(read_binary_file(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sntrust

#include "markov/mixing.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::barbell_graph;
using testing::complete_graph;
using testing::petersen_graph;
using testing::two_cliques;

MixingOptions quick_options(std::uint32_t sources, std::uint32_t length) {
  MixingOptions options;
  options.num_sources = sources;
  options.max_walk_length = length;
  options.seed = 33;
  return options;
}

TEST(Mixing, CurvesHaveExpectedShape) {
  const Graph g = petersen_graph();
  const MixingCurves curves = measure_mixing(g, quick_options(10, 30));
  EXPECT_EQ(curves.sources.size(), 10u);
  for (const auto& curve : curves.tvd) {
    ASSERT_EQ(curve.size(), 31u);
    EXPECT_GT(curve.front(), 0.5);  // dirac far from stationary
    EXPECT_LT(curve.back(), 0.05);  // expander mixes fast
  }
}

TEST(Mixing, SourcesCappedAtN) {
  const Graph g = complete_graph(5);
  const MixingCurves curves = measure_mixing(g, quick_options(50, 5));
  EXPECT_EQ(curves.sources.size(), 5u);
}

TEST(Mixing, CompleteGraphMixesInOneStep) {
  const Graph g = complete_graph(20);
  const MixingCurves curves = measure_mixing(g, quick_options(5, 5));
  // After one step, distance to uniform is 1/n (only the start vertex is off).
  for (const auto& curve : curves.tvd) EXPECT_NEAR(curve[1], 1.0 / 20, 1e-9);
}

TEST(Mixing, BarbellSlowerThanExpander) {
  const Graph good = petersen_graph();
  const Graph bad = two_cliques(5);
  const auto good_curves = measure_mixing(good, quick_options(10, 60));
  const auto bad_curves = measure_mixing(bad, quick_options(10, 60));
  const std::uint32_t t_good = mixing_time_estimate(good_curves, 0.1);
  const std::uint32_t t_bad = mixing_time_estimate(bad_curves, 0.1);
  EXPECT_LT(t_good, t_bad);
}

TEST(Mixing, EstimateFindsFirstCrossing) {
  MixingCurves curves;
  curves.sources = {0};
  curves.tvd = {{0.9, 0.5, 0.2, 0.05, 0.01}};
  EXPECT_EQ(mixing_time_estimate(curves, 0.5), 1u);
  EXPECT_EQ(mixing_time_estimate(curves, 0.05), 3u);
  EXPECT_EQ(mixing_time_estimate(curves, 0.001), 0xFFFFFFFFu);
}

TEST(Mixing, EstimateUsesWorstSource) {
  MixingCurves curves;
  curves.sources = {0, 1};
  curves.tvd = {{0.9, 0.1}, {0.9, 0.4}};
  EXPECT_EQ(mixing_time_estimate(curves, 0.2), 0xFFFFFFFFu);
  EXPECT_EQ(mixing_time_estimate(curves, 0.5), 1u);
}

TEST(Mixing, MeanAndMaxCurves) {
  MixingCurves curves;
  curves.sources = {0, 1};
  curves.tvd = {{1.0, 0.2}, {0.5, 0.4}};
  const auto mean = curves.mean_curve();
  const auto worst = curves.max_curve();
  EXPECT_DOUBLE_EQ(mean[0], 0.75);
  EXPECT_DOUBLE_EQ(mean[1], 0.3);
  EXPECT_DOUBLE_EQ(worst[0], 1.0);
  EXPECT_DOUBLE_EQ(worst[1], 0.4);
}

TEST(Mixing, LazyCurveIsMonotoneNonIncreasing) {
  const Graph g = barbell_graph();
  MixingOptions options = quick_options(6, 50);
  options.lazy = true;
  const MixingCurves curves = measure_mixing(g, options);
  for (const auto& curve : curves.tvd)
    for (std::size_t t = 1; t < curve.size(); ++t)
      EXPECT_LE(curve[t], curve[t - 1] + 1e-12);
}

TEST(Mixing, DisconnectedGraphThrows) {
  EXPECT_THROW(measure_mixing(testing::disconnected_graph(), quick_options(2, 5)),
               std::invalid_argument);
}

TEST(Mixing, ZeroSourcesThrows) {
  EXPECT_THROW(measure_mixing(petersen_graph(), quick_options(0, 5)),
               std::invalid_argument);
}

TEST(Mixing, EdgelessGraphThrows) {
  GraphBuilder b{3};
  EXPECT_THROW(measure_mixing(b.build(), quick_options(1, 5)),
               std::invalid_argument);
}

TEST(Mixing, FastGraphBeatsSlowGraphEndToEnd) {
  // The paper's central comparison at miniature scale: a randomly wired
  // heavy-tailed graph vs. a strong-community SBM of the same size.
  const Graph fast =
      largest_component(barabasi_albert(600, 4, 3)).graph;
  const Graph slow =
      largest_component(planted_partition(600, 12, 0.25, 0.002, 3)).graph;
  const auto fast_curves = measure_mixing(fast, quick_options(8, 80));
  const auto slow_curves = measure_mixing(slow, quick_options(8, 80));
  const double fast_final = fast_curves.max_curve().back();
  const double slow_final = slow_curves.max_curve().back();
  EXPECT_LT(fast_final, slow_final);
}

}  // namespace
}  // namespace sntrust

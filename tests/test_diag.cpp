#include "obs/diag.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "markov/mixing.hpp"
#include "markov/spectral.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/telemetry.hpp"
#include "report/run_compare.hpp"
#include "test_graphs.hpp"
#include "util/json.hpp"

namespace sntrust {
namespace {

using obs::ConfidenceInterval;
using obs::ConvergenceTrace;
using obs::DiagRegistry;
using obs::TraceSummary;
using testing::petersen_graph;
using testing::two_cliques;

// Every test starts and ends with diagnostics disarmed and the registry
// empty, so diag state never leaks into unrelated tests (the registry is a
// process-wide singleton the run report reads at exit).
class DiagTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_diag_enabled(false);
    DiagRegistry::instance().reset();
    obs::metrics_reset_all();
  }
  void TearDown() override {
    obs::set_diag_enabled(false);
    DiagRegistry::instance().reset();
    obs::metrics_reset_all();
  }
};

// ----------------------------------------------------- convergence trace ---

TEST_F(DiagTest, TraceKeepsEverySampleBelowCapacity) {
  ConvergenceTrace trace{8};
  for (int i = 0; i < 5; ++i) trace.add(1.0 / (i + 1));
  EXPECT_EQ(trace.iterations(), 5u);
  EXPECT_DOUBLE_EQ(trace.final_value(), 1.0 / 5);
  const auto pts = trace.points();
  ASSERT_EQ(pts.size(), 5u);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(pts[i].first, i);
    EXPECT_DOUBLE_EQ(pts[i].second, 1.0 / (i + 1));
  }
}

TEST_F(DiagTest, TraceThinsGeometricallyAndKeepsEndpoints) {
  ConvergenceTrace trace{8};
  const auto value_at = [](std::uint64_t i) {
    return std::exp(-0.01 * static_cast<double>(i));
  };
  for (std::uint64_t i = 0; i < 1000; ++i) trace.add(value_at(i));
  EXPECT_EQ(trace.iterations(), 1000u);
  const auto pts = trace.points();
  // Bounded: at most capacity kept samples plus the appended exact final.
  EXPECT_LE(pts.size(), 9u);
  EXPECT_GE(pts.size(), 4u);
  // First and exact final sample always survive the thinning.
  EXPECT_EQ(pts.front().first, 0u);
  EXPECT_DOUBLE_EQ(pts.front().second, value_at(0));
  EXPECT_EQ(pts.back().first, 999u);
  EXPECT_DOUBLE_EQ(pts.back().second, value_at(999));
  // Kept iterations are strictly increasing and carry their true values.
  for (std::size_t i = 0; i + 1 < pts.size(); ++i)
    EXPECT_LT(pts[i].first, pts[i + 1].first);
  for (const auto& [iteration, value] : pts)
    EXPECT_DOUBLE_EQ(value, value_at(iteration));
}

TEST_F(DiagTest, TraceFitsExactExponentialDecayRate) {
  ConvergenceTrace trace;
  for (std::uint64_t i = 0; i < 200; ++i)
    trace.add(3.0 * std::exp(-0.07 * static_cast<double>(i)));
  // Exact exponential: the log-linear fit recovers the rate to fp precision.
  EXPECT_NEAR(trace.fitted_decay_rate(), 0.07, 1e-9);
}

TEST_F(DiagTest, TraceDecayRateDegeneratesToZero) {
  ConvergenceTrace empty;
  EXPECT_DOUBLE_EQ(empty.fitted_decay_rate(), 0.0);
  ConvergenceTrace flat;
  for (int i = 0; i < 10; ++i) flat.add(0.5);
  EXPECT_NEAR(flat.fitted_decay_rate(), 0.0, 1e-12);
  ConvergenceTrace nonpositive;  // log undefined: those samples are skipped
  nonpositive.add(0.0);
  nonpositive.add(-1.0);
  EXPECT_DOUBLE_EQ(nonpositive.fitted_decay_rate(), 0.0);
}

TEST_F(DiagTest, TracePlateauDetection) {
  // Decays for 10 iterations, then sits at the final value: the plateau
  // onset is the first settled sample.
  ConvergenceTrace settled{128};
  for (std::uint64_t i = 0; i < 100; ++i)
    settled.add(i < 10 ? 1.0 - 0.1 * static_cast<double>(i) : 0.05);
  EXPECT_EQ(settled.plateau_iteration(), 10u);

  // A flat curve plateaus immediately.
  ConvergenceTrace flat;
  for (int i = 0; i < 20; ++i) flat.add(0.3);
  EXPECT_EQ(flat.plateau_iteration(), 0u);

  // A curve that never settles "plateaus" only at its final sample.
  ConvergenceTrace oscillating;
  for (int i = 0; i < 20; ++i) oscillating.add(i % 2 == 0 ? 1.0 : 0.0);
  EXPECT_EQ(oscillating.plateau_iteration(), 19u);

  EXPECT_EQ(ConvergenceTrace{}.plateau_iteration(), 0u);
}

// ------------------------------------------------- confidence intervals ---

TEST_F(DiagTest, MeanCiDegenerateInputsCollapseToZeroWidth) {
  const ConfidenceInterval none = obs::mean_ci95(0.0, 0.0, 0);
  EXPECT_EQ(none.n, 0u);
  EXPECT_DOUBLE_EQ(none.width(), 0.0);

  const ConfidenceInterval one = obs::mean_ci95(7.0, 49.0, 1);
  EXPECT_DOUBLE_EQ(one.mean, 7.0);
  EXPECT_DOUBLE_EQ(one.width(), 0.0);

  // Identical samples: zero variance, zero width at the mean.
  const ConfidenceInterval constant = obs::mean_ci95(5.0 * 3.0, 5.0 * 9.0, 5);
  EXPECT_DOUBLE_EQ(constant.mean, 3.0);
  EXPECT_DOUBLE_EQ(constant.width(), 0.0);
}

TEST_F(DiagTest, MeanCiMatchesHandComputedInterval) {
  // Samples {1,2,3,4,5}: mean 3, sample variance 2.5.
  const ConfidenceInterval ci = obs::mean_ci95(15.0, 55.0, 5);
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  EXPECT_EQ(ci.n, 5u);
  EXPECT_DOUBLE_EQ(ci.ess, 5.0);
  const double half = 1.959963984540054 * std::sqrt(2.5 / 5.0);
  EXPECT_NEAR(ci.lo, 3.0 - half, 1e-12);
  EXPECT_NEAR(ci.hi, 3.0 + half, 1e-12);
}

TEST_F(DiagTest, WilsonCiBehavesAtTheBoundaries) {
  const ConfidenceInterval none = obs::wilson_ci95(0, 0);
  EXPECT_EQ(none.n, 0u);
  EXPECT_DOUBLE_EQ(none.width(), 0.0);

  // 0/n: the interval hugs zero but stays open above it (unlike the normal
  // approximation, which collapses to [0, 0]).
  const ConfidenceInterval zero = obs::wilson_ci95(0, 10);
  EXPECT_DOUBLE_EQ(zero.mean, 0.0);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  EXPECT_LT(zero.hi, 0.5);

  // n/n mirrors it at one.
  const ConfidenceInterval full = obs::wilson_ci95(10, 10);
  EXPECT_DOUBLE_EQ(full.mean, 1.0);
  EXPECT_DOUBLE_EQ(full.hi, 1.0);
  EXPECT_LT(full.lo, 1.0);
  EXPECT_GT(full.lo, 0.5);

  const ConfidenceInterval half = obs::wilson_ci95(5, 10);
  EXPECT_DOUBLE_EQ(half.mean, 0.5);
  EXPECT_LT(half.lo, 0.5);
  EXPECT_GT(half.hi, 0.5);
  // Symmetric proportion: Wilson is symmetric around 1/2.
  EXPECT_NEAR(half.lo + half.hi, 1.0, 1e-12);
}

// ---------------------------------------------------------- registry -----

TEST_F(DiagTest, RegistryDedupesRepeatedEstimateNames) {
  DiagRegistry& registry = DiagRegistry::instance();
  registry.record_estimate("x", obs::mean_ci95(1.0, 1.0, 1));
  registry.record_estimate("x", obs::mean_ci95(2.0, 4.0, 1));
  registry.record_estimate("x", obs::mean_ci95(3.0, 9.0, 1));
  const json::Value diag = registry.build();
  const json::Value* estimates = diag.find("estimates");
  ASSERT_NE(estimates, nullptr);
  ASSERT_EQ(estimates->as_object().size(), 3u);
  EXPECT_EQ(estimates->as_object()[0].first, "x");
  EXPECT_EQ(estimates->as_object()[1].first, "x#2");
  EXPECT_EQ(estimates->as_object()[2].first, "x#3");
  EXPECT_DOUBLE_EQ(estimates->find("x#3")->find("mean")->as_number(), 3.0);
}

TEST_F(DiagTest, RegistryCapsTracesPerKindAndCountsDrops) {
  DiagRegistry& registry = DiagRegistry::instance();
  ConvergenceTrace trace;
  trace.add(1.0);
  trace.add(0.5);
  // Default cap (SNTRUST_DIAG_MAX_TRACES) is 64 per kind.
  for (std::uint64_t s = 0; s < 70; ++s)
    registry.record_trace(obs::summarize_trace("capped", s, trace, true));
  registry.record_trace(obs::summarize_trace("other", 0, trace, true));
  const json::Value diag = registry.build();
  const json::Value* traces = diag.find("traces");
  ASSERT_NE(traces, nullptr);
  EXPECT_EQ(traces->find("capped")->as_array().size(), 64u);
  EXPECT_EQ(traces->find("other")->as_array().size(), 1u);
  ASSERT_NE(diag.find("dropped_traces"), nullptr);
  EXPECT_EQ(diag.find("dropped_traces")->as_int(), 6);
}

TEST_F(DiagTest, RegistryBuildsTheDocumentedSectionShape) {
  DiagRegistry& registry = DiagRegistry::instance();
  EXPECT_TRUE(registry.empty());

  ConvergenceTrace trace;
  for (int i = 0; i < 6; ++i) trace.add(1.0 / (1 << i));
  registry.record_trace(obs::summarize_trace("mixing.tvd", 3, trace, true));
  registry.record_estimate("mixing.tvd_final", obs::mean_ci95(15.0, 55.0, 5));
  registry.record_nonconverged("slem.power_iteration", 0, 2, 0.9);
  EXPECT_FALSE(registry.empty());

  const json::Value diag = registry.build();
  EXPECT_FALSE(diag.find("converged")->as_bool());
  EXPECT_EQ(diag.find("nonconverged")->as_int(), 1);
  EXPECT_GT(diag.find("epsilon")->as_number(), 0.0);
  EXPECT_EQ(diag.find("dropped_traces"), nullptr);  // nothing truncated

  const json::Value& flag = diag.find("flagged_sources")->as_array().at(0);
  EXPECT_EQ(flag.find("kind")->as_string(), "slem.power_iteration");
  EXPECT_EQ(flag.find("iterations")->as_int(), 2);
  EXPECT_DOUBLE_EQ(flag.find("final_value")->as_number(), 0.9);

  const json::Value& row =
      diag.find("traces")->find("mixing.tvd")->as_array().at(0);
  EXPECT_EQ(row.find("source")->as_int(), 3);
  EXPECT_EQ(row.find("iterations")->as_int(), 6);
  EXPECT_TRUE(row.find("converged")->as_bool());
  EXPECT_GT(row.find("decay_rate")->as_number(), 0.0);
  const json::Array& points = row.find("points")->as_array();
  ASSERT_EQ(points.size(), 6u);
  EXPECT_EQ(points.front().as_array()[0].as_int(), 0);
  EXPECT_DOUBLE_EQ(points.back().as_array()[1].as_number(), 1.0 / 32);

  registry.reset();
  EXPECT_TRUE(registry.empty());
}

TEST_F(DiagTest, RegistryBumpsTelemetryCounters) {
  DiagRegistry& registry = DiagRegistry::instance();
  ConvergenceTrace trace;
  trace.add(0.4);
  registry.record_trace(obs::summarize_trace("k", 0, trace, true));
  registry.record_nonconverged("k", 1, 7, 0.4);
  // These counters (and the per-kind gauges) ride along in telemetry frames.
  EXPECT_EQ(obs::metrics_counter("diag.traces").value(), 1u);
  EXPECT_EQ(obs::metrics_counter("diag.nonconverged").value(), 1u);
}

// ------------------------------------------------------ estimator wiring ---

MixingOptions small_mixing_options() {
  MixingOptions options;
  options.num_sources = 5;
  options.max_walk_length = 30;
  options.seed = 33;
  return options;
}

TEST_F(DiagTest, MixingRecordsTracesAndEstimatesWhenArmed) {
  obs::set_diag_enabled(true);
  const Graph g = petersen_graph();
  measure_mixing(g, small_mixing_options());

  const json::Value diag = DiagRegistry::instance().build();
  // An expander crosses epsilon well before 30 steps: nothing is flagged.
  EXPECT_TRUE(diag.find("converged")->as_bool());
  EXPECT_EQ(diag.find("nonconverged")->as_int(), 0);
  const json::Value* traces = diag.find("traces")->find("mixing.tvd");
  ASSERT_NE(traces, nullptr);
  EXPECT_EQ(traces->as_array().size(), 5u);
  for (const json::Value& row : traces->as_array()) {
    EXPECT_TRUE(row.find("converged")->as_bool());
    EXPECT_EQ(row.find("iterations")->as_int(), 31);  // t in [0, max_len]
    EXPECT_GT(row.find("decay_rate")->as_number(), 0.0);
  }
  const json::Value* estimates = diag.find("estimates");
  ASSERT_NE(estimates->find("mixing.tvd.tvd_final"), nullptr);
  ASSERT_NE(estimates->find("mixing.tvd.time_to_eps"), nullptr);
  EXPECT_EQ(estimates->find("mixing.tvd.tvd_final")->find("n")->as_int(), 5);
}

TEST_F(DiagTest, MixingOutputIsBitwiseIdenticalDiagOnAndOff) {
  const Graph g = two_cliques(5);
  obs::set_diag_enabled(false);
  const MixingCurves off = measure_mixing(g, small_mixing_options());
  EXPECT_TRUE(DiagRegistry::instance().empty());

  obs::set_diag_enabled(true);
  const MixingCurves on = measure_mixing(g, small_mixing_options());
  EXPECT_FALSE(DiagRegistry::instance().empty());

  // Diagnostics only observe: the measurement itself must not move a bit.
  ASSERT_EQ(off.sources, on.sources);
  ASSERT_EQ(off.tvd.size(), on.tvd.size());
  for (std::size_t s = 0; s < off.tvd.size(); ++s)
    EXPECT_EQ(off.tvd[s], on.tvd[s]) << "source index " << s;
}

TEST_F(DiagTest, SlemCapExitIsFlaggedAsNonconverged) {
  obs::set_diag_enabled(true);
  const Graph g = two_cliques(4);
  SlemOptions options;
  options.max_iterations = 2;  // force a cap exit: 2 steps cannot hit 1e-9
  const SlemResult result = second_largest_eigenvalue(g, options);
  EXPECT_FALSE(result.converged);

  const json::Value diag = DiagRegistry::instance().build();
  EXPECT_FALSE(diag.find("converged")->as_bool());
  EXPECT_GE(diag.find("nonconverged")->as_int(), 1);
  const json::Value& flag = diag.find("flagged_sources")->as_array().at(0);
  EXPECT_EQ(flag.find("kind")->as_string(), "slem.power_iteration");
  // The point estimates still land, CI and all, alongside the flag.
  EXPECT_NE(diag.find("estimates")->find("slem.mu"), nullptr);
  EXPECT_NE(diag.find("estimates")->find("slem.spectral_gap"), nullptr);
}

TEST_F(DiagTest, ReportCarriesDiagSectionOnlyWhenPopulated) {
  obs::RunReporter& reporter = obs::RunReporter::instance();
  EXPECT_EQ(reporter.build().find("diag"), nullptr);

  DiagRegistry::instance().record_estimate("e", obs::wilson_ci95(3, 10));
  const json::Value report = reporter.build();
  const json::Value* diag = report.find("diag");
  ASSERT_NE(diag, nullptr);
  EXPECT_NE(diag->find("estimates")->find("e"), nullptr);
  // Provenance rides in config so diffs can refuse apples-to-oranges.
  const json::Value* config = report.find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_NE(config->find("compiler"), nullptr);
  EXPECT_NE(config->find("diag"), nullptr);
}

// ------------------------------------------------- quality gates / diffs ---

RunReportData report_with_diag(std::int64_t nonconverged, double ci_width,
                               const std::string& graph_fingerprint = "0xaa",
                               double scale = 1.0) {
  const double hi = 1.0 + ci_width / 2.0;
  const double lo = 1.0 - ci_width / 2.0;
  const std::string text =
      "{\"schema_version\":1,\"tool\":\"t\","
      "\"config\":{\"graph.ego\":\"" + graph_fingerprint +
      "\",\"scale\":" + std::to_string(scale) + "},"
      "\"diag\":{\"converged\":" + (nonconverged == 0 ? "true" : "false") +
      ",\"nonconverged\":" + std::to_string(nonconverged) +
      ",\"flagged_sources\":[],"
      "\"estimates\":{\"e\":{\"mean\":1.0,\"ci95_lo\":" + std::to_string(lo) +
      ",\"ci95_hi\":" + std::to_string(hi) +
      ",\"ci95_width\":" + std::to_string(ci_width) +
      ",\"n\":10,\"ess\":10.0}}}}";
  return parse_run_report(json::Value::parse(text));
}

TEST_F(DiagTest, NewNonconvergenceBreachesTheQualityGate) {
  const RunReportData baseline = report_with_diag(0, 0.1);
  const RunReportData candidate = report_with_diag(1, 0.1);
  const DiffResult result =
      diff_run_reports(baseline, candidate, DiffOptions{});
  EXPECT_TRUE(result.breached);
  bool saw_gate = false;
  for (const DiffRow& row : result.quality)
    if (row.metric == "nonconverged") {
      saw_gate = true;
      EXPECT_EQ(row.status, DiffRow::Status::Regressed);
      EXPECT_DOUBLE_EQ(row.candidate, 1.0);
    }
  EXPECT_TRUE(saw_gate);

  // Raising the allowance waives exactly this breach.
  DiffOptions lenient;
  lenient.max_new_nonconverged = 1;
  EXPECT_FALSE(diff_run_reports(baseline, candidate, lenient).breached);
}

TEST_F(DiagTest, CiWidthGrowthBreachesPastTheThreshold) {
  const RunReportData baseline = report_with_diag(0, 0.10);
  // +100% width: the estimate got twice as uncertain.
  EXPECT_TRUE(
      diff_run_reports(baseline, report_with_diag(0, 0.20), DiffOptions{})
          .breached);
  // +20% stays under the default 50% gate.
  EXPECT_FALSE(
      diff_run_reports(baseline, report_with_diag(0, 0.12), DiffOptions{})
          .breached);
}

TEST_F(DiagTest, QualityGatesSkipReportsWithoutDiag) {
  const std::string legacy_text = "{\"schema_version\":1,\"tool\":\"t\"}";
  const RunReportData legacy =
      parse_run_report(json::Value::parse(legacy_text));
  EXPECT_FALSE(legacy.has_diag);
  // A pre-diag baseline is a code change, not a quality regression.
  const DiffResult result =
      diff_run_reports(legacy, report_with_diag(3, 0.5), DiffOptions{});
  EXPECT_TRUE(result.quality.empty());
  EXPECT_FALSE(result.breached);
}

TEST_F(DiagTest, ProvenanceMismatchExplainsTheRefusal) {
  const RunReportData base = report_with_diag(0, 0.1, "0xaa", 1.0);
  EXPECT_EQ(provenance_mismatch(base, report_with_diag(0, 0.1, "0xaa", 1.0)),
            "");

  const std::string fingerprint =
      provenance_mismatch(base, report_with_diag(0, 0.1, "0xbb", 1.0));
  EXPECT_NE(fingerprint.find("graph fingerprint mismatch"), std::string::npos);
  EXPECT_NE(fingerprint.find("graph.ego"), std::string::npos);

  const std::string scale =
      provenance_mismatch(base, report_with_diag(0, 0.1, "0xaa", 0.1));
  EXPECT_NE(scale.find("scale mismatch"), std::string::npos);

  // Legacy reports without provenance always compare as compatible.
  const RunReportData legacy =
      parse_run_report(json::Value::parse("{\"schema_version\":1}"));
  EXPECT_EQ(provenance_mismatch(legacy, base), "");
  EXPECT_EQ(provenance_mismatch(base, legacy), "");
}

// ------------------------------------------------------ telemetry frames ---

TEST_F(DiagTest, TruncatedTelemetryTailIsCounted) {
  const std::string path =
      ::testing::TempDir() + "/sntrust_diag_frames.jsonl";
  {
    std::ofstream out{path, std::ios::trunc};
    out << "{\"t_ms\":1}\n{\"t_ms\":2}\n{\"t_ms\":3,\"trunc";  // kill mid-append
  }
  const obs::TelemetryFrames frames = obs::read_telemetry_frames(path);
  EXPECT_EQ(frames.frames.size(), 2u);
  EXPECT_TRUE(frames.truncated_tail);
  EXPECT_EQ(frames.truncated_frames, 1u);

  {
    std::ofstream out{path, std::ios::trunc};
    out << "{\"t_ms\":1}\n{\"t_ms\":2}\n";
  }
  const obs::TelemetryFrames clean = obs::read_telemetry_frames(path);
  EXPECT_EQ(clean.frames.size(), 2u);
  EXPECT_FALSE(clean.truncated_tail);
  EXPECT_EQ(clean.truncated_frames, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sntrust

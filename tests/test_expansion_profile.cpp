#include "expansion/expansion_profile.hpp"

#include <gtest/gtest.h>

#include "expansion/envelope.hpp"
#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "graph/traversal.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::path_graph;
using testing::petersen_graph;
using testing::two_cliques;

TEST(ExpansionProfile, CycleExactValues) {
  // On C_n every source sees levels 1,2,2,...,2(,1); envelope sizes are odd
  // numbers, each expanding by exactly 2 until the wrap.
  const ExpansionProfile profile = measure_expansion(cycle_graph(11));
  EXPECT_EQ(profile.sources_used, 11u);
  for (const ExpansionPoint& point : profile.points) {
    if (point.set_size < 9) {
      EXPECT_EQ(point.min_neighbors, 2u);
      EXPECT_EQ(point.max_neighbors, 2u);
    }
  }
}

TEST(ExpansionProfile, CompleteGraphOnePoint) {
  const ExpansionProfile profile = measure_expansion(complete_graph(6));
  ASSERT_EQ(profile.points.size(), 1u);
  EXPECT_EQ(profile.points[0].set_size, 1u);
  EXPECT_EQ(profile.points[0].mean_neighbors, 5.0);
  EXPECT_EQ(profile.points[0].observations, 6u);
  EXPECT_EQ(profile.max_depth, 1u);
}

TEST(ExpansionProfile, PointsSortedBySetSize) {
  const ExpansionProfile profile = measure_expansion(petersen_graph());
  for (std::size_t i = 1; i < profile.points.size(); ++i)
    EXPECT_LT(profile.points[i - 1].set_size, profile.points[i].set_size);
}

TEST(ExpansionProfile, MinLeMeanLeMax) {
  const Graph g =
      largest_component(erdos_renyi(300, 0.03, 101)).graph;
  const ExpansionProfile profile = measure_expansion(g);
  for (const ExpansionPoint& point : profile.points) {
    EXPECT_LE(static_cast<double>(point.min_neighbors),
              point.mean_neighbors + 1e-12);
    EXPECT_LE(point.mean_neighbors,
              static_cast<double>(point.max_neighbors) + 1e-12);
  }
}

TEST(ExpansionProfile, SampledSubsetOfSources) {
  const Graph g = largest_component(barabasi_albert(400, 3, 102)).graph;
  ExpansionOptions options;
  options.num_sources = 50;
  const ExpansionProfile profile = measure_expansion(g, options);
  EXPECT_EQ(profile.sources_used, 50u);
}

TEST(ExpansionProfile, SourceCountAboveNMeansAll) {
  const Graph g = petersen_graph();
  ExpansionOptions options;
  options.num_sources = 999;
  EXPECT_EQ(measure_expansion(g, options).sources_used, 10u);
}

TEST(ExpansionProfile, ObservationsSumMatchesSourceLevels) {
  // Every source contributes (depth(source)) observations: one per level
  // except the last.
  const Graph g = two_cliques(4);
  const ExpansionProfile profile = measure_expansion(g);
  std::uint64_t total_observations = 0;
  for (const ExpansionPoint& point : profile.points)
    total_observations += point.observations;
  std::uint64_t expected = 0;
  BfsRunner runner{g};
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    expected += runner.run(v).level_sizes.size() - 1;
  EXPECT_EQ(total_observations, expected);
}

TEST(ExpansionProfile, BarbellHasWeakPoint) {
  // The bridge makes a half-size envelope with only 1 neighbour.
  const ExpansionProfile profile = measure_expansion(two_cliques(8));
  const double min_alpha = profile.min_alpha(16);
  EXPECT_LT(min_alpha, 0.2);
}

TEST(ExpansionProfile, ExpanderBeatsBarbell) {
  const Graph expander =
      largest_component(barabasi_albert(64, 4, 103)).graph;
  const Graph barbell = two_cliques(32);
  const double alpha_good =
      measure_expansion(expander).min_alpha(expander.num_vertices());
  const double alpha_bad =
      measure_expansion(barbell).min_alpha(barbell.num_vertices());
  EXPECT_GT(alpha_good, alpha_bad);
}

TEST(ExpansionProfile, DisconnectedThrows) {
  EXPECT_THROW(measure_expansion(testing::disconnected_graph()),
               std::invalid_argument);
}

TEST(ExpansionProfile, EmptyThrows) {
  EXPECT_THROW(measure_expansion(Graph{}), std::invalid_argument);
}

TEST(ExpansionProfile, MeanAlphaDefinition) {
  ExpansionPoint point;
  point.set_size = 10;
  point.mean_neighbors = 2.5;
  EXPECT_DOUBLE_EQ(point.mean_alpha(), 0.25);
  point.set_size = 0;
  EXPECT_DOUBLE_EQ(point.mean_alpha(), 0.0);
}

}  // namespace
}  // namespace sntrust

#include "markov/frontier.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "markov/mixing.hpp"
#include "markov/transition.hpp"
#include "parallel/thread_pool.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::barbell_graph;
using testing::complete_graph;
using testing::cycle_graph;
using testing::path_graph;
using testing::petersen_graph;
using testing::star_graph;
using testing::two_cliques;

std::vector<Graph> seed_graphs() {
  std::vector<Graph> graphs;
  graphs.push_back(path_graph(12));
  graphs.push_back(cycle_graph(10));
  graphs.push_back(star_graph(9));
  graphs.push_back(complete_graph(8));
  graphs.push_back(barbell_graph());
  graphs.push_back(two_cliques(5));
  graphs.push_back(petersen_graph());
  return graphs;
}

MixingCurves run_with_kernel(const Graph& g, KernelMode mode, bool lazy,
                             double fraction = 0.5) {
  MixingOptions options;
  options.num_sources = 6;
  options.max_walk_length = 25;
  options.seed = 7;
  options.lazy = lazy;
  options.kernel = mode;
  options.kernel_dense_fraction = fraction;
  return measure_mixing(g, options);
}

void expect_bitwise_equal(const MixingCurves& a, const MixingCurves& b) {
  ASSERT_EQ(a.sources, b.sources);
  ASSERT_EQ(a.tvd.size(), b.tvd.size());
  for (std::size_t s = 0; s < a.tvd.size(); ++s) {
    ASSERT_EQ(a.tvd[s].size(), b.tvd[s].size());
    for (std::size_t t = 0; t < a.tvd[s].size(); ++t)
      // EXPECT_EQ on doubles is exact (bitwise for non-NaN) equality.
      EXPECT_EQ(a.tvd[s][t], b.tvd[s][t])
          << "source " << s << " step " << t;
  }
}

TEST(KernelMode, ParseAndPrint) {
  EXPECT_EQ(parse_kernel_mode("auto"), KernelMode::kAuto);
  EXPECT_EQ(parse_kernel_mode("DENSE"), KernelMode::kDense);
  EXPECT_EQ(parse_kernel_mode("Sparse"), KernelMode::kSparse);
  EXPECT_FALSE(parse_kernel_mode("fast").has_value());
  EXPECT_FALSE(parse_kernel_mode("").has_value());
  for (const KernelMode mode :
       {KernelMode::kAuto, KernelMode::kDense, KernelMode::kSparse})
    EXPECT_EQ(parse_kernel_mode(to_string(mode)), mode);
}

TEST(KernelMode, ScopedOverrideRestores) {
  clear_kernel_mode_override();
  const KernelMode ambient = kernel_mode();
  {
    ScopedKernelMode scope{KernelMode::kSparse};
    EXPECT_EQ(kernel_mode(), KernelMode::kSparse);
    {
      ScopedKernelMode inner{KernelMode::kDense};
      EXPECT_EQ(kernel_mode(), KernelMode::kDense);
    }
    EXPECT_EQ(kernel_mode(), KernelMode::kSparse);
  }
  EXPECT_EQ(kernel_mode(), ambient);
}

TEST(SupportTvd, MatchesDenseTotalVariation) {
  for (const Graph& g : seed_graphs()) {
    const Distribution pi = stationary_distribution(g);
    const StationaryPrefix prefix{pi};
    // Evolve a point mass densely and compare the support-aware TVD (with
    // the structural support tracked by a FrontierWalk) against the plain
    // full-range total variation at every step.
    FrontierWalk walk{g, {KernelMode::kSparse, 0.5}};
    walk.reset(0);
    for (std::uint32_t t = 0; t <= 12; ++t) {
      if (t > 0) walk.step(StepKind::kPlain);
      const double sparse = walk.tvd(pi, prefix);
      const double dense = total_variation(walk.distribution(), pi);
      EXPECT_NEAR(sparse, dense, 1e-12) << "step " << t;
    }
  }
}

TEST(SupportTvd, FullSupportMatchesExactly) {
  const Graph g = petersen_graph();
  const Distribution pi = stationary_distribution(g);
  const StationaryPrefix prefix{pi};
  std::vector<VertexId> all(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
  const Distribution p = dirac(g.num_vertices(), 3);
  EXPECT_EQ(support_tvd(p, all, pi, prefix), total_variation(p, pi));
}

TEST(FrontierKernels, CurvesBitwiseIdenticalAcrossModes) {
  for (const Graph& g : seed_graphs()) {
    for (const bool lazy : {false, true}) {
      const MixingCurves dense = run_with_kernel(g, KernelMode::kDense, lazy);
      const MixingCurves sparse =
          run_with_kernel(g, KernelMode::kSparse, lazy);
      const MixingCurves automatic =
          run_with_kernel(g, KernelMode::kAuto, lazy);
      expect_bitwise_equal(dense, sparse);
      expect_bitwise_equal(dense, automatic);
    }
  }
}

TEST(FrontierKernels, CurvesBitwiseIdenticalOnGeneratedGraph) {
  const Graph g = largest_component(barabasi_albert(400, 3, 11)).graph;
  const MixingCurves dense = run_with_kernel(g, KernelMode::kDense, false);
  const MixingCurves sparse = run_with_kernel(g, KernelMode::kSparse, false);
  const MixingCurves automatic = run_with_kernel(g, KernelMode::kAuto, false);
  expect_bitwise_equal(dense, sparse);
  expect_bitwise_equal(dense, automatic);
}

TEST(FrontierKernels, ZeroThresholdForcesDenseFromFirstStep) {
  const Graph g = two_cliques(6);
  FrontierWalk walk{g, {KernelMode::kAuto, 0.0}};
  walk.reset(0);
  for (std::uint32_t t = 0; t < 5; ++t) {
    walk.step(StepKind::kPlain);
    EXPECT_TRUE(walk.last_step_dense()) << "step " << t;
  }
}

TEST(FrontierKernels, InfiniteThresholdStaysSparseUntilSaturation) {
  const Graph g = path_graph(16);
  FrontierWalk walk{
      g, {KernelMode::kAuto, std::numeric_limits<double>::infinity()}};
  walk.reset(0);
  // The lazy chain's support is the ball of radius t around the source (the
  // path's endpoint), so it saturates exactly at t = eccentricity = 15; every
  // step before that must use the sparse pull.
  for (std::uint32_t t = 1; t <= 15; ++t) {
    walk.step(StepKind::kLazy);
    EXPECT_FALSE(walk.last_step_dense()) << "step " << t;
    EXPECT_EQ(walk.saturated(), t >= 15) << "step " << t;
    EXPECT_EQ(walk.support().size(), std::min<std::size_t>(t + 1, 16u));
  }
  walk.step(StepKind::kLazy);
  EXPECT_TRUE(walk.last_step_dense());  // saturated fast path
}

TEST(FrontierKernels, ForcedCrossoverModesAgree) {
  const Graph g = largest_component(barabasi_albert(300, 2, 5)).graph;
  const MixingCurves always_dense =
      run_with_kernel(g, KernelMode::kAuto, false, 0.0);
  const MixingCurves never_dense = run_with_kernel(
      g, KernelMode::kAuto, false, std::numeric_limits<double>::infinity());
  expect_bitwise_equal(always_dense, never_dense);
}

TEST(FrontierKernels, SparseSweepThreadCountInvariant) {
  const Graph g = largest_component(powerlaw_cluster(350, 3, 0.4, 17)).graph;
  MixingCurves serial, threaded;
  {
    parallel::ScopedThreadCount scope{1};
    serial = run_with_kernel(g, KernelMode::kSparse, false);
  }
  {
    parallel::ScopedThreadCount scope{4};
    threaded = run_with_kernel(g, KernelMode::kSparse, false);
  }
  expect_bitwise_equal(serial, threaded);
}

TEST(FrontierWalk, SaturatedWalksSkipBookkeeping) {
  const Graph g = complete_graph(10);
  FrontierWalk walk{g, {KernelMode::kAuto, 0.5}};
  walk.reset(0);
  // Lazy support = closed neighbourhood, so one step saturates K_10. (The
  // plain chain would need two: a point mass's first support excludes the
  // source itself.)
  walk.step(StepKind::kLazy);
  EXPECT_TRUE(walk.saturated());
  walk.step(StepKind::kLazy);
  EXPECT_TRUE(walk.last_step_dense());
  EXPECT_EQ(walk.last_frontier_degree(), 0u);  // no candidate set built
}

TEST(FrontierWalk, ResetReusesWorkspaceAcrossSources) {
  const Graph g = two_cliques(4);
  const Distribution pi = stationary_distribution(g);
  const StationaryPrefix prefix{pi};
  FrontierWalk walk{g, {KernelMode::kSparse, 0.5}};
  for (const VertexId source : {VertexId{0}, VertexId{7}, VertexId{3}}) {
    walk.reset(source);
    EXPECT_EQ(walk.support().size(), 1u);
    EXPECT_EQ(walk.distribution()[source], 1.0);
    for (std::uint32_t t = 0; t < 6; ++t) walk.step(StepKind::kPlain);
    Distribution expected = dirac(g.num_vertices(), source);
    Distribution scratch(expected.size());
    for (std::uint32_t t = 0; t < 6; ++t) {
      step_distribution(g, expected, scratch);
      expected.swap(scratch);
    }
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      EXPECT_EQ(walk.distribution()[v], expected[v]) << "vertex " << v;
  }
}

TEST(FrontierWalk, BadArgumentsThrow) {
  const Graph g = path_graph(4);
  FrontierWalk walk{g};
  EXPECT_THROW(walk.reset(4), std::out_of_range);
  walk.reset(0);
  EXPECT_THROW(walk.step(StepKind::kModulated, 1.0), std::invalid_argument);
  EXPECT_THROW(walk.step(StepKind::kModulated, -0.1), std::invalid_argument);
}

}  // namespace
}  // namespace sntrust

#include "sybil/sybilrank.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

Graph expander(VertexId n, std::uint64_t seed) {
  return largest_component(barabasi_albert(n, 4, seed)).graph;
}

TEST(SybilRank, IterationsDefaultToLogN) {
  const Graph g = expander(1000, 1);
  const SybilRankResult result = run_sybilrank(g, {0});
  EXPECT_GE(result.iterations_used, 9u);
  EXPECT_LE(result.iterations_used, 12u);
}

TEST(SybilRank, TrustMassConserved) {
  const Graph g = expander(300, 2);
  const SybilRankResult result = run_sybilrank(g, {0, 1, 2});
  double mass = 0.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    mass += result.scores[v] * g.degree(v);
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(SybilRank, CleanGraphScoresNearUniform) {
  // After ~log n steps on an expander, degree-normalized trust is close to
  // 1/2m for everyone (the equalization the defense relies on).
  const Graph g = expander(400, 3);
  const SybilRankResult result = run_sybilrank(g, {0});
  const double expected = 1.0 / (2.0 * static_cast<double>(g.num_edges()));
  std::uint32_t far_off = 0;
  for (const double s : result.scores)
    if (s < expected / 4 || s > expected * 4) ++far_off;
  EXPECT_LT(far_off, g.num_vertices() / 10);
}

TEST(SybilRank, RanksSybilsLast) {
  const Graph honest = expander(600, 4);
  AttackParams attack;
  attack.num_sybils = 300;
  attack.attack_edges = 8;
  attack.seed = 4;
  const AttackedGraph attacked{honest, attack};
  const SybilRankResult result = run_sybilrank(attacked.graph(), {0, 1, 2});
  EXPECT_GT(ranking_auc(result.ranking, attacked), 0.95);
}

TEST(SybilRank, EvaluationBoundsSybils) {
  const Graph honest = expander(500, 5);
  AttackParams attack;
  attack.num_sybils = 250;
  attack.attack_edges = 10;
  attack.seed = 5;
  const AttackedGraph attacked{honest, attack};
  const PairwiseEvaluation eval = evaluate_sybilrank(attacked, {0});
  EXPECT_GT(eval.honest_accept_fraction, 0.9);
  EXPECT_LT(eval.sybils_per_attack_edge, 10.0);  // unfiltered = 25
}

TEST(SybilRank, MoreSeedsIsMoreRobust) {
  // With one seed adjacent to an attack edge, trust leaks fast; spreading
  // seeds dilutes the leak. Compare AUC with 1 vs 10 seeds where the single
  // seed is an attack endpoint.
  const Graph honest = expander(500, 6);
  AttackParams attack;
  attack.num_sybils = 250;
  attack.attack_edges = 10;
  attack.seed = 6;
  const AttackedGraph attacked{honest, attack};
  const VertexId bad_seed = attacked.attack_endpoints().front();
  const double auc_single =
      ranking_auc(run_sybilrank(attacked.graph(), {bad_seed}).ranking,
                  attacked);
  std::vector<VertexId> seeds{bad_seed};
  for (VertexId s = 0; seeds.size() < 10; ++s)
    if (s != bad_seed) seeds.push_back(s);
  const double auc_many =
      ranking_auc(run_sybilrank(attacked.graph(), seeds).ranking, attacked);
  EXPECT_GE(auc_many, auc_single - 0.02);
}

TEST(SybilRank, EarlyTerminationIsTheDefense) {
  // Running the propagation to stationarity erases the honest/Sybil
  // distinction: degree-normalized trust converges to the constant 1/2m for
  // everyone. The relative score gap between the honest and Sybil means
  // must collapse as iterations grow.
  const Graph honest = expander(400, 7);
  AttackParams attack;
  attack.num_sybils = 200;
  attack.attack_edges = 6;
  attack.seed = 7;
  const AttackedGraph attacked{honest, attack};

  const auto relative_gap = [&](std::uint32_t iterations) {
    SybilRankParams params;
    params.iterations = iterations;
    const SybilRankResult result =
        run_sybilrank(attacked.graph(), {0}, params);
    double honest_mean = 0.0, sybil_mean = 0.0;
    for (VertexId v = 0; v < attacked.graph().num_vertices(); ++v) {
      if (attacked.is_sybil(v)) sybil_mean += result.scores[v];
      else honest_mean += result.scores[v];
    }
    honest_mean /= attacked.num_honest();
    sybil_mean /= attacked.num_sybils();
    return (honest_mean - sybil_mean) / honest_mean;
  };

  const double gap_early = relative_gap(0);  // default log n
  const double gap_late = relative_gap(2000);
  EXPECT_GT(gap_early, 0.3);   // log n steps: honest clearly above Sybil
  EXPECT_LT(gap_late, 0.02);   // stationarity: distinction gone
}

TEST(SybilRank, BadArgsThrow) {
  const Graph g = expander(100, 8);
  EXPECT_THROW(run_sybilrank(g, {}), std::invalid_argument);
  EXPECT_THROW(run_sybilrank(g, {9999}), std::out_of_range);
  GraphBuilder b{3};
  EXPECT_THROW(run_sybilrank(b.build(), {0}), std::invalid_argument);
}

}  // namespace
}  // namespace sntrust

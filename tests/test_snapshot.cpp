#include "graph/snapshot.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "graph/io.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::petersen_graph;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

Graph snapshot_test_graph() {
  return largest_component(barabasi_albert(300, 2, 11)).graph;
}

/// Flips one byte of the file at `offset` and rewrites it in place.
void flip_byte(const std::string& path, std::uint64_t offset) {
  std::fstream f{path, std::ios::binary | std::ios::in | std::ios::out};
  ASSERT_TRUE(f.good());
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte ^= 0x5a;
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

/// Reference CRC-32 (IEEE, reflected) for the hand-crafted header tests —
/// bitwise the same polynomial the snapshot writer uses.
std::uint32_t ref_crc32(const std::uint8_t* data, std::size_t size) {
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    crc ^= data[i];
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ (0xedb88320u & (0u - (crc & 1u)));
  }
  return crc ^ 0xffffffffu;
}

template <typename T>
void put_at(std::vector<std::uint8_t>& buf, std::size_t offset, T value) {
  std::memcpy(buf.data() + offset, &value, sizeof value);
}

/// Builds a byte-valid v1 snapshot of the empty graph, then lets the test
/// tamper with individual header fields while keeping the CRCs consistent —
/// exercising the semantic checks rather than the checksum.
std::vector<std::uint8_t> empty_snapshot_bytes() {
  std::vector<std::uint8_t> bytes(64 + 8, 0);  // header + one offsets entry
  put_at(bytes, 0, kSnapshotMagic);
  put_at(bytes, 8, kSnapshotVersion);
  put_at(bytes, 12, std::uint32_t{0x01020304});
  // n = 0, halfedges = 0, fingerprint left 0 (not validated on load).
  return bytes;
}

void seal_and_write(std::vector<std::uint8_t> bytes, const std::string& path) {
  put_at(bytes, 40, ref_crc32(bytes.data() + 64, bytes.size() - 64));
  put_at(bytes, 44, ref_crc32(bytes.data(), 44));
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamoff>(bytes.size()));
  ASSERT_TRUE(out.good());
}

// --- Round trips -------------------------------------------------------------

TEST(Snapshot, RoundTripsGraphBitwise) {
  const Graph g = snapshot_test_graph();
  const std::string path = temp_path("sntrust_snap_rt.snap");
  write_snapshot(g, path);
  const Graph loaded = load_snapshot(path);
  EXPECT_EQ(loaded, g);
  std::filesystem::remove(path);
}

TEST(Snapshot, RoundTripsEmptyGraph) {
  const Graph g{};
  const std::string path = temp_path("sntrust_snap_empty.snap");
  write_snapshot(g, path);
  const Graph loaded = load_snapshot(path);
  EXPECT_EQ(loaded.num_vertices(), 0u);
  EXPECT_EQ(loaded, g);
  std::filesystem::remove(path);
}

TEST(Snapshot, FingerprintMatchesParsePath) {
  const Graph g = snapshot_test_graph();
  const std::string path = temp_path("sntrust_snap_fp.snap");
  write_snapshot(g, path);
  const Graph loaded = load_snapshot(path);
  // The header seeds the fingerprint cache: no rescan, same value — so
  // exec checkpoints keyed on the fingerprint resume across load paths.
  ASSERT_TRUE(loaded.cached_fingerprint().has_value());
  EXPECT_EQ(*loaded.cached_fingerprint(), g.fingerprint());
  EXPECT_EQ(loaded.fingerprint(), g.fingerprint());
  std::filesystem::remove(path);
}

TEST(Snapshot, InfoReportsHeaderFields) {
  const Graph g = petersen_graph();
  const std::string path = temp_path("sntrust_snap_info.snap");
  write_snapshot(g, path);
  const SnapshotInfo info = snapshot_info(path);
  EXPECT_EQ(info.version, kSnapshotVersion);
  EXPECT_EQ(info.num_vertices, 10u);
  EXPECT_EQ(info.half_edges, 30u);
  EXPECT_EQ(info.fingerprint, g.fingerprint());
  EXPECT_EQ(info.file_bytes, std::filesystem::file_size(path));
  EXPECT_TRUE(is_snapshot_file(path));
  std::filesystem::remove(path);
}

TEST(Snapshot, ReadGraphAutoSniffsSnapshots) {
  const Graph g = petersen_graph();
  const std::string path = temp_path("sntrust_snap_auto.snap");
  write_snapshot(g, path);
  EXPECT_EQ(read_graph_auto(path), g);
  std::filesystem::remove(path);
}

TEST(Snapshot, IsSnapshotFileRejectsOtherFiles) {
  const std::string path = temp_path("sntrust_snap_not.txt");
  std::ofstream{path} << "0 1\n";
  EXPECT_FALSE(is_snapshot_file(path));
  EXPECT_FALSE(is_snapshot_file(temp_path("sntrust_snap_missing.snap")));
  std::filesystem::remove(path);
}

// --- Rejection paths ---------------------------------------------------------

TEST(Snapshot, RejectsTruncatedFile) {
  const Graph g = snapshot_test_graph();
  const std::string path = temp_path("sntrust_snap_trunc.snap");
  write_snapshot(g, path);
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 16);
  EXPECT_THROW(load_snapshot(path), IoError);
  std::filesystem::resize_file(path, 32);  // mid-header
  EXPECT_THROW(load_snapshot(path), IoError);
  std::filesystem::remove(path);
}

TEST(Snapshot, RejectsTrailingGarbage) {
  const Graph g = petersen_graph();
  const std::string path = temp_path("sntrust_snap_tail.snap");
  write_snapshot(g, path);
  std::ofstream{path, std::ios::binary | std::ios::app} << "xx";
  EXPECT_THROW(load_snapshot(path), IoError);
  std::filesystem::remove(path);
}

TEST(Snapshot, RejectsCorruptedHeader) {
  const Graph g = snapshot_test_graph();
  const std::string path = temp_path("sntrust_snap_hdr.snap");
  write_snapshot(g, path);
  flip_byte(path, 16);  // inside n: header CRC catches it
  EXPECT_THROW(load_snapshot(path), IoError);
  std::filesystem::remove(path);
}

TEST(Snapshot, PayloadCorruptionCaughtOnDemand) {
  const Graph g = snapshot_test_graph();
  const std::string path = temp_path("sntrust_snap_pay.snap");
  write_snapshot(g, path);
  const auto size = std::filesystem::file_size(path);
  flip_byte(path, size - 2);  // inside targets
  // Default trust level checks only the header — the flip passes through...
  EXPECT_NO_THROW(load_snapshot(path, VerifyPayload::kSkip));
  // ...and the full payload CRC rejects it.
  EXPECT_THROW(load_snapshot(path, VerifyPayload::kFull), IoError);
  std::filesystem::remove(path);
}

TEST(Snapshot, RejectsForeignEndianness) {
  const std::string path = temp_path("sntrust_snap_endian.snap");
  auto bytes = empty_snapshot_bytes();
  put_at(bytes, 12, std::uint32_t{0x04030201});  // big-endian producer
  seal_and_write(std::move(bytes), path);        // CRCs valid: semantic check
  EXPECT_THROW(load_snapshot(path), IoError);
  std::filesystem::remove(path);
}

TEST(Snapshot, RejectsUnknownVersion) {
  const std::string path = temp_path("sntrust_snap_ver.snap");
  auto bytes = empty_snapshot_bytes();
  put_at(bytes, 8, std::uint32_t{2});
  seal_and_write(std::move(bytes), path);
  EXPECT_THROW(load_snapshot(path), IoError);
  std::filesystem::remove(path);
}

TEST(Snapshot, RejectsWrongMagic) {
  const std::string path = temp_path("sntrust_snap_magic.snap");
  auto bytes = empty_snapshot_bytes();
  put_at(bytes, 0, std::uint64_t{0x0011223344556677ULL});
  seal_and_write(std::move(bytes), path);
  EXPECT_THROW(load_snapshot(path), IoError);
  std::filesystem::remove(path);
}

TEST(Snapshot, HandCraftedEmptySnapshotLoads) {
  // Sanity for the hand-crafted header harness itself: an untampered
  // construction must load, otherwise the rejection tests above prove
  // nothing.
  const std::string path = temp_path("sntrust_snap_hand.snap");
  seal_and_write(empty_snapshot_bytes(), path);
  const Graph loaded = load_snapshot(path, VerifyPayload::kFull);
  EXPECT_EQ(loaded.num_vertices(), 0u);
  std::filesystem::remove(path);
}

TEST(Snapshot, MissingFileThrowsIoError) {
  EXPECT_THROW(load_snapshot(temp_path("sntrust_snap_nope.snap")), IoError);
  EXPECT_THROW(snapshot_info(temp_path("sntrust_snap_nope.snap")), IoError);
}

}  // namespace
}  // namespace sntrust

#include "sybil/community_defense.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

Graph expander(VertexId n, std::uint64_t seed) {
  return largest_component(barabasi_albert(n, 4, seed)).graph;
}

TEST(CommunityExpansion, SeedComesFirst) {
  const Graph g = expander(200, 1);
  const CommunityExpansionResult result = community_expansion(g, 7);
  EXPECT_EQ(result.ranking.front(), 7u);
  EXPECT_DOUBLE_EQ(result.attachment[7], 1.0);
}

TEST(CommunityExpansion, RankingIsAPermutation) {
  const Graph g = expander(300, 2);
  const CommunityExpansionResult result = community_expansion(g, 0);
  EXPECT_EQ(result.ranking.size(), g.num_vertices());
  std::vector<std::uint8_t> seen(g.num_vertices(), 0);
  for (const VertexId v : result.ranking) {
    EXPECT_FALSE(seen[v]);
    seen[v] = 1;
  }
}

TEST(CommunityExpansion, AbsorbsOwnCliqueBeforeOther) {
  const Graph g = testing::two_cliques(8);
  const CommunityExpansionResult result = community_expansion(g, 0);
  // First 8 absorptions are clique 1 (ids 0..7).
  for (std::size_t i = 0; i < 8; ++i) EXPECT_LT(result.ranking[i], 8u);
}

TEST(CommunityExpansion, ConductanceKneeAtTheBridge) {
  const Graph g = testing::two_cliques(8);
  const CommunityExpansionResult result = community_expansion(g, 0);
  // After absorbing the full first clique, conductance hits its minimum.
  double best = 1.0;
  std::size_t best_index = 0;
  for (std::size_t i = 0; i < result.conductance_curve.size(); ++i) {
    if (result.conductance_curve[i] < best) {
      best = result.conductance_curve[i];
      best_index = i;
    }
  }
  EXPECT_EQ(best_index, 7u);  // community of size 8 (index 7)
}

TEST(CommunityExpansion, UnreachableAppended) {
  GraphBuilder b{5};
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const Graph g = b.build();
  const CommunityExpansionResult result = community_expansion(g, 0);
  EXPECT_EQ(result.ranking.size(), 5u);
  EXPECT_DOUBLE_EQ(result.attachment[3], 0.0);
  EXPECT_DOUBLE_EQ(result.attachment[4], 0.0);
}

TEST(CommunityExpansion, BadArgsThrow) {
  const Graph g = expander(50, 3);
  EXPECT_THROW(community_expansion(g, 999), std::out_of_range);
  GraphBuilder b{3};
  EXPECT_THROW(community_expansion(b.build(), 0), std::invalid_argument);
}

TEST(CommunityDefense, SeparatesWeaklyAttachedSybils) {
  const Graph honest = expander(500, 4);
  AttackParams attack;
  attack.num_sybils = 250;
  attack.attack_edges = 5;
  attack.seed = 4;
  const AttackedGraph attacked{honest, attack};
  const PairwiseEvaluation eval = evaluate_community_defense(attacked, 0);
  EXPECT_GT(eval.honest_accept_fraction, 0.9);
  // 250 sybils / 5 edges = 50 unfiltered; the cutoff classifier admits far
  // fewer.
  EXPECT_LT(eval.sybils_per_attack_edge, 10.0);
}

TEST(CommunityDefense, RankingAucHighUnderWeakAttack) {
  const Graph honest = expander(400, 5);
  AttackParams attack;
  attack.num_sybils = 200;
  attack.attack_edges = 3;
  attack.seed = 5;
  const AttackedGraph attacked{honest, attack};
  const CommunityExpansionResult result =
      community_expansion(attacked.graph(), 0);
  EXPECT_GT(ranking_auc(result.ranking, attacked), 0.9);
}

TEST(CommunityDefense, NeverImprovesWithMoreAttackEdges) {
  const Graph honest = expander(400, 6);
  double auc[3];
  const std::uint32_t edges[3] = {3, 200, 1200};
  for (int i = 0; i < 3; ++i) {
    AttackParams attack;
    attack.num_sybils = 200;
    attack.attack_edges = edges[i];
    attack.seed = 6;
    const AttackedGraph attacked{honest, attack};
    auc[i] = ranking_auc(community_expansion(attacked.graph(), 0).ranking,
                         attacked);
  }
  EXPECT_GT(auc[0], 0.95);
  EXPECT_GE(auc[0], auc[1]);
  EXPECT_GE(auc[1], auc[2]);
  // At 6 attack edges per Sybil, the region has blended into the honest
  // graph and community structure can no longer isolate it.
  EXPECT_LT(auc[2], 0.95);
}

TEST(CommunityDefense, SeedMustBeHonest) {
  const Graph honest = expander(100, 7);
  AttackParams attack;
  attack.num_sybils = 20;
  attack.attack_edges = 2;
  const AttackedGraph attacked{honest, attack};
  EXPECT_THROW(evaluate_community_defense(attacked, attacked.num_honest()),
               std::invalid_argument);
}

}  // namespace
}  // namespace sntrust

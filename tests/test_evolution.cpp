#include "dynamic/evolution.hpp"

#include <gtest/gtest.h>

#include "graph/components.hpp"
#include "graph/stats.hpp"

namespace sntrust {
namespace {

TEST(GrowthTrace, SnapshotMonotoneInSize) {
  const GrowthTrace trace = preferential_attachment_trace(300, 3, 1);
  const Graph small = trace.snapshot(100);
  const Graph large = trace.snapshot(300);
  EXPECT_EQ(small.num_vertices(), 100u);
  EXPECT_EQ(large.num_vertices(), 300u);
  EXPECT_LT(small.num_edges(), large.num_edges());
  // Prefix property: every early edge survives into the larger snapshot.
  for (const Edge& e : small.edges())
    EXPECT_TRUE(large.has_edge(e.u, e.v));
}

TEST(GrowthTrace, FinalSnapshotMatchesBaModel) {
  const GrowthTrace trace = preferential_attachment_trace(200, 3, 2);
  const Graph g = trace.snapshot(200);
  // Same structural signature as barabasi_albert: every non-seed vertex has
  // >= 3 edges and the graph is connected.
  EXPECT_TRUE(is_connected(g));
  for (VertexId v = 4; v < 200; ++v) EXPECT_GE(g.degree(v), 3u);
}

TEST(GrowthTrace, OversizedSnapshotThrows) {
  const GrowthTrace trace = preferential_attachment_trace(100, 2, 3);
  EXPECT_THROW(trace.snapshot(101), std::invalid_argument);
}

TEST(GrowthTrace, BadEdgeRangeThrows) {
  EXPECT_THROW(GrowthTrace(5, {{0, 9}}), std::invalid_argument);
}

TEST(GrowthTrace, BadBaParamsThrow) {
  EXPECT_THROW(preferential_attachment_trace(3, 3, 1), std::invalid_argument);
  EXPECT_THROW(preferential_attachment_trace(10, 0, 1), std::invalid_argument);
}

TEST(AffiliationTrace, ProducesClusteredPrefixes) {
  const GrowthTrace trace = affiliation_trace(600, 8, 1.2, 4);
  const Graph snapshot = largest_component(trace.snapshot(600)).graph;
  EXPECT_GT(snapshot.num_vertices(), 100u);
  EXPECT_GT(average_local_clustering(snapshot), 0.2);
}

TEST(AffiliationTrace, BadParamsThrow) {
  EXPECT_THROW(affiliation_trace(8, 2, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(affiliation_trace(100, 0, 1.0, 1), std::invalid_argument);
}

TEST(MeasureEvolution, PointsPerSnapshot) {
  const GrowthTrace trace = preferential_attachment_trace(500, 3, 5);
  EvolutionOptions options;
  options.expansion_sources = 100;
  const auto points = measure_evolution(trace, {100, 250, 500}, options);
  ASSERT_EQ(points.size(), 3u);
  for (const EvolutionPoint& p : points) {
    EXPECT_GT(p.nodes, 0u);
    EXPECT_GT(p.mu, 0.0);
    EXPECT_LT(p.mu, 1.0);
    EXPECT_GE(p.degeneracy, 3u);
    EXPECT_GT(p.min_expansion_factor, 0.0);
  }
  EXPECT_LT(points[0].nodes, points[2].nodes);
}

TEST(MeasureEvolution, BaMixingStaysFastWhileGrowing) {
  // The open-problem probe: preferential attachment keeps its expander
  // character as it grows (mu does not drift toward 1).
  const GrowthTrace trace = preferential_attachment_trace(800, 4, 6);
  const auto points = measure_evolution(trace, {200, 800});
  EXPECT_LT(points[1].mu, points[0].mu + 0.1);
  EXPECT_EQ(points[1].max_core_count, 1u);
}

TEST(MeasureEvolution, UnsortedSizesThrow) {
  const GrowthTrace trace = preferential_attachment_trace(100, 2, 7);
  EXPECT_THROW(measure_evolution(trace, {80, 40}), std::invalid_argument);
}

TEST(MeasureEvolution, TinySnapshotThrows) {
  const GrowthTrace trace = preferential_attachment_trace(100, 2, 8);
  EXPECT_THROW(measure_evolution(trace, {8}), std::invalid_argument);
}

}  // namespace
}  // namespace sntrust

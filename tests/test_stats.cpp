#include "graph/stats.hpp"

#include <gtest/gtest.h>

#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::path_graph;
using testing::star_graph;
using testing::two_cliques;

TEST(DegreeStats, Path) {
  const DegreeStats s = degree_stats(path_graph(5));
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 2u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0 * 4 / 5);
  EXPECT_EQ(s.histogram[1], 2u);
  EXPECT_EQ(s.histogram[2], 3u);
}

TEST(DegreeStats, Star) {
  const DegreeStats s = degree_stats(star_graph(10));
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 9u);
  EXPECT_DOUBLE_EQ(s.median, 1.0);
}

TEST(DegreeStats, HistogramSumsToN) {
  const DegreeStats s = degree_stats(two_cliques(4));
  std::uint64_t total = 0;
  for (const auto c : s.histogram) total += c;
  EXPECT_EQ(total, 8u);
}

TEST(DegreeStats, EmptyGraphThrows) {
  EXPECT_THROW(degree_stats(Graph{}), std::invalid_argument);
}

TEST(Clustering, CompleteGraphIsOne) {
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(complete_graph(6)), 1.0);
  EXPECT_DOUBLE_EQ(average_local_clustering(complete_graph(6)), 1.0);
}

TEST(Clustering, TreeIsZero) {
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(star_graph(8)), 0.0);
  EXPECT_DOUBLE_EQ(average_local_clustering(path_graph(8)), 0.0);
}

TEST(Clustering, CycleIsZeroBeyondTriangle) {
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(cycle_graph(5)), 0.0);
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(cycle_graph(3)), 1.0);
}

TEST(Clustering, BarbellBetweenZeroAndOne) {
  const double c = global_clustering_coefficient(testing::barbell_graph());
  EXPECT_GT(c, 0.0);
  EXPECT_LT(c, 1.0);
}

TEST(Clustering, NoWedgesIsZero) {
  // Single edge: no wedges at all.
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(path_graph(2)), 0.0);
}

TEST(Diameter, PathExact) {
  EXPECT_EQ(double_sweep_diameter(path_graph(10)), 9u);
}

TEST(Diameter, CycleAtLeastHalf) {
  // Double sweep is a lower bound; on an even cycle it finds n/2.
  EXPECT_EQ(double_sweep_diameter(cycle_graph(10)), 5u);
}

TEST(Diameter, CompleteGraphIsOne) {
  EXPECT_EQ(double_sweep_diameter(complete_graph(5)), 1u);
}

TEST(Diameter, TwoCliques) {
  EXPECT_EQ(double_sweep_diameter(two_cliques(4)), 3u);
}

TEST(Diameter, EmptyGraphIsZero) {
  EXPECT_EQ(double_sweep_diameter(Graph{}), 0u);
}

TEST(Diameter, HintDoesNotBreakBound) {
  const Graph g = path_graph(7);
  for (VertexId hint = 0; hint < 7; ++hint)
    EXPECT_EQ(double_sweep_diameter(g, hint), 6u);
}

}  // namespace
}  // namespace sntrust

#include "gen/sampling.hpp"

#include <gtest/gtest.h>

#include <set>

#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "graph/stats.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

Graph base_graph(std::uint64_t seed) {
  return largest_component(barabasi_albert(500, 4, seed)).graph;
}

TEST(Sampling, RandomVerticesSizeAndValidity) {
  const Graph g = base_graph(1);
  const ExtractedGraph sub = sample_random_vertices(g, 100, 1);
  EXPECT_EQ(sub.graph.num_vertices(), 100u);
  EXPECT_EQ(sub.original_id.size(), 100u);
  std::set<VertexId> unique(sub.original_id.begin(), sub.original_id.end());
  EXPECT_EQ(unique.size(), 100u);
  // Edges in the sample exist in the parent.
  for (const Edge& e : sub.graph.edges())
    EXPECT_TRUE(g.has_edge(sub.original_id[e.u], sub.original_id[e.v]));
}

TEST(Sampling, RandomEdgesKeepsEndpoints) {
  const Graph g = base_graph(2);
  const ExtractedGraph sub = sample_random_edges(g, 50, 2);
  EXPECT_LE(sub.graph.num_vertices(), 100u);
  EXPECT_GE(sub.graph.num_edges(), 50u);  // induced: at least the sampled
}

TEST(Sampling, SnowballIsConnectedBall) {
  const Graph g = base_graph(3);
  const ExtractedGraph sub = sample_snowball(g, 120, 3);
  EXPECT_EQ(sub.graph.num_vertices(), 120u);
  // A BFS ball is connected except possibly for truncated last-level
  // vertices; require the largest component to dominate.
  const Components comps = connected_components(sub.graph);
  EXPECT_GT(comps.sizes[comps.largest()], 100u);
}

TEST(Sampling, RandomWalkSampleIsConnected) {
  const Graph g = base_graph(4);
  const ExtractedGraph sub = sample_random_walk(g, 120, 4);
  EXPECT_EQ(sub.graph.num_vertices(), 120u);
  EXPECT_TRUE(is_connected(sub.graph));  // walk-visited set induces a
                                         // connected subgraph
}

TEST(Sampling, SnowballInflatesDensityVsRandomVertices) {
  // The classic bias: a BFS ball is much denser than a uniform-vertex
  // induced sample of the same size.
  const Graph g = base_graph(5);
  const ExtractedGraph ball = sample_snowball(g, 100, 5);
  const ExtractedGraph uniform = sample_random_vertices(g, 100, 5);
  EXPECT_GT(ball.graph.num_edges(), 2 * uniform.graph.num_edges());
}

TEST(Sampling, WalkSampleBiasedTowardHighDegree) {
  const Graph g = base_graph(6);
  const ExtractedGraph walk = sample_random_walk(g, 100, 6);
  const ExtractedGraph uniform = sample_random_vertices(g, 100, 6);
  // Mean original-graph degree of sampled vertices: the walk favors hubs.
  const auto mean_degree = [&](const ExtractedGraph& sub) {
    double total = 0.0;
    for (const VertexId v : sub.original_id) total += g.degree(v);
    return total / sub.original_id.size();
  };
  EXPECT_GT(mean_degree(walk), mean_degree(uniform));
}

TEST(Sampling, DeterministicInSeed) {
  const Graph g = base_graph(7);
  EXPECT_EQ(sample_snowball(g, 80, 9).graph, sample_snowball(g, 80, 9).graph);
  EXPECT_EQ(sample_random_walk(g, 80, 9).graph,
            sample_random_walk(g, 80, 9).graph);
}

TEST(Sampling, BadArgsThrow) {
  const Graph g = base_graph(8);
  EXPECT_THROW(sample_random_vertices(g, 0, 1), std::invalid_argument);
  EXPECT_THROW(sample_random_vertices(g, g.num_vertices() + 1, 1),
               std::invalid_argument);
  EXPECT_THROW(sample_random_edges(g, 0, 1), std::invalid_argument);
  EXPECT_THROW(sample_snowball(g, 0, 1), std::invalid_argument);
  EXPECT_THROW(sample_random_walk(g, 0, 1), std::invalid_argument);
}

TEST(Assortativity, StarIsDisassortative) {
  EXPECT_LT(degree_assortativity(testing::star_graph(10)), -0.9);
}

TEST(Assortativity, RegularGraphIsDegenerate) {
  EXPECT_DOUBLE_EQ(degree_assortativity(testing::cycle_graph(10)), 0.0);
  EXPECT_DOUBLE_EQ(degree_assortativity(testing::complete_graph(6)), 0.0);
}

TEST(Assortativity, InUnitRange) {
  const Graph g = base_graph(9);
  const double r = degree_assortativity(g);
  EXPECT_GE(r, -1.0);
  EXPECT_LE(r, 1.0);
}

TEST(Assortativity, BaIsDisassortativeToNeutral) {
  // Preferential attachment is known to be (weakly) disassortative.
  EXPECT_LT(degree_assortativity(base_graph(10)), 0.1);
}

}  // namespace
}  // namespace sntrust

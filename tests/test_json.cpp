#include "util/json.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>

namespace sntrust::json {
namespace {

// --------------------------------------------------------------- parsing ---

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Value::parse("null").is_null());
  EXPECT_TRUE(Value::parse("true").as_bool());
  EXPECT_FALSE(Value::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Value::parse("3.25").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(Value::parse("-1e3").as_number(), -1000.0);
  EXPECT_EQ(Value::parse("42").as_int(), 42);
  EXPECT_EQ(Value::parse("-9007199254740993").as_int(), -9007199254740993ll);
  EXPECT_EQ(Value::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const Value doc = Value::parse(
      R"({"a": [1, 2, {"b": null}], "c": {"d": "e"}, "f": [[]]})");
  ASSERT_TRUE(doc.is_object());
  const Value* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_EQ(a->as_array()[1].as_int(), 2);
  EXPECT_TRUE(a->as_array()[2].find("b")->is_null());
  EXPECT_EQ(doc.find("c")->find("d")->as_string(), "e");
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  const Value doc = Value::parse(R"({"z": 1, "a": 2, "m": 3})");
  const Object& members = doc.as_object();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(Json, DecodesEscapesAndSurrogatePairs) {
  const Value doc = Value::parse(R"("a\"b\\c\/d\n\t\r\b\f")");
  EXPECT_EQ(doc.as_string(), "a\"b\\c/d\n\t\r\b\f");
  EXPECT_EQ(Value::parse(R"("\u0041")").as_string(), "A");
  EXPECT_EQ(Value::parse(R"("\u00e9")").as_string(), "\xC3\xA9");  // é
  EXPECT_EQ(Value::parse(R"("\u2603")").as_string(), "\xE2\x98\x83");  // ☃
  // U+1F600 as a surrogate pair.
  EXPECT_EQ(Value::parse(R"("\uD83D\uDE00")").as_string(),
            "\xF0\x9F\x98\x80");
}

TEST(Json, StrictParserRejectsViolations) {
  const char* bad[] = {
      "",                        // empty document
      "tru",                     // truncated literal
      "truex",                   // trailing junk inside literal
      "1 2",                     // trailing characters
      "[1,]",                    // trailing comma
      "{\"a\":1,}",              // trailing comma in object
      "{a: 1}",                  // unquoted key
      "{\"a\" 1}",               // missing colon
      "[1 2]",                   // missing comma
      "'single'",                // wrong quotes
      "\"unterminated",          // unterminated string
      "\"bad \\x escape\"",      // invalid escape
      "\"\\u12\"",               // truncated \u escape
      "\"\\uD83D\"",             // lone high surrogate
      "\"\\uDE00\"",             // lone low surrogate
      "\"ctrl \n char\"",        // raw control character in string
      "01",                      // leading zero
      ".5",                      // missing integer part
      "1.",                      // missing fraction digits
      "1e",                      // missing exponent digits
      "+1",                      // leading plus
      "NaN",                     // not a JSON literal
      "Infinity",                // not a JSON literal
      "{}}",                     // unbalanced
  };
  for (const char* text : bad)
    EXPECT_THROW(Value::parse(text), std::runtime_error) << text;
}

TEST(Json, RejectsRunawayNesting) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_THROW(Value::parse(deep), std::runtime_error);
}

// --------------------------------------------------------------- writing ---

TEST(Json, WriteEscapesSpecialCharacters) {
  std::ostringstream out;
  write_json_string(out, "quote\" back\\slash \n\t\r\b\f \x01\x1f");
  EXPECT_EQ(out.str(),
            "\"quote\\\" back\\\\slash \\n\\t\\r\\b\\f \\u0001\\u001f\"");
}

TEST(Json, WritePassesUtf8Through) {
  EXPECT_EQ(escape("naïve ☃"), "\"naïve ☃\"");
}

TEST(Json, IntegersPrintWithoutDecimalPoint) {
  EXPECT_EQ(Value::integer(42).dump(), "42");
  EXPECT_EQ(Value::integer(-7).dump(), "-7");
  EXPECT_EQ(Value::number(0.5).dump(), "0.5");
  // Non-finite doubles have no JSON encoding; strict null instead.
  EXPECT_EQ(Value::number(std::numeric_limits<double>::infinity()).dump(),
            "null");
}

TEST(Json, DumpRoundTripsThroughParse) {
  Object inner;
  inner.emplace_back("pi", Value::number(3.141592653589793));
  inner.emplace_back("n", Value::integer(1234567890123456789ll));
  Object root;
  root.emplace_back("name", Value::string("trace \"x\"\n"));
  root.emplace_back("items", Value::array({Value::boolean(true),
                                           Value::null(),
                                           Value::object(std::move(inner))}));
  const Value original = Value::object(std::move(root));
  const Value reparsed = Value::parse(original.dump());
  EXPECT_EQ(reparsed.dump(), original.dump());
  EXPECT_EQ(reparsed.find("name")->as_string(), "trace \"x\"\n");
  EXPECT_EQ(
      reparsed.find("items")->as_array()[2].find("n")->as_int(),
      1234567890123456789ll);
}

/// The satellite contract: arbitrary span names — control characters,
/// quotes, backslashes, non-ASCII — survive write_json_string + parse.
TEST(Json, StringEscapingRoundTripsHostileNames) {
  const std::string hostile[] = {
      "plain",
      "quotes \" and \\ backslashes \\\\",
      std::string("embedded\0null", 13),
      "controls \x01\x02\x1f\n\r\t\b\f",
      "non-ascii: naïve Grüße 北京 ☃ 😀",
      "/slashes\\and\"mixed\n",
  };
  for (const std::string& name : hostile) {
    std::ostringstream out;
    write_json_string(out, name);
    const Value parsed = Value::parse(out.str());
    EXPECT_EQ(parsed.as_string(), name);
  }
}

}  // namespace
}  // namespace sntrust::json

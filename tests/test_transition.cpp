#include "markov/transition.hpp"

#include <gtest/gtest.h>

#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::path_graph;
using testing::star_graph;

TEST(Transition, PreservesMass) {
  const Graph g = testing::petersen_graph();
  Distribution p = dirac(10, 0);
  Distribution out;
  for (int s = 0; s < 20; ++s) {
    step_distribution(g, p, out);
    p.swap(out);
    EXPECT_NEAR(mass(p), 1.0, 1e-12);
  }
}

TEST(Transition, SplitsEvenlyAmongNeighbors) {
  const Graph g = star_graph(5);
  Distribution p = dirac(5, 0);
  Distribution out;
  step_distribution(g, p, out);
  for (VertexId leaf = 1; leaf < 5; ++leaf)
    EXPECT_DOUBLE_EQ(out[leaf], 0.25);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
}

TEST(Transition, StarOscillates) {
  // From the hub: all mass to leaves, then all back.
  const Graph g = star_graph(5);
  Distribution p = dirac(5, 0);
  evolve(g, p, 2);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
}

TEST(Transition, LazyKillsOscillation) {
  const Graph g = star_graph(5);
  Distribution p = dirac(5, 0);
  evolve(g, p, 200, /*lazy=*/true);
  const Distribution pi = stationary_distribution(g);
  EXPECT_LT(total_variation(p, pi), 1e-6);
}

TEST(Transition, StationaryIsFixedPoint) {
  for (const Graph& g : {path_graph(7), cycle_graph(8), complete_graph(5),
                         testing::barbell_graph()}) {
    const Distribution pi = stationary_distribution(g);
    Distribution out;
    step_distribution(g, pi, out);
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      EXPECT_NEAR(out[v], pi[v], 1e-12);
  }
}

TEST(Transition, ConvergesOnAperiodicGraph) {
  const Graph g = testing::barbell_graph();  // has triangles -> aperiodic
  Distribution p = dirac(6, 0);
  evolve(g, p, 500);
  const Distribution pi = stationary_distribution(g);
  EXPECT_LT(total_variation(p, pi), 1e-8);
}

TEST(Transition, SizeMismatchThrows) {
  const Graph g = path_graph(4);
  Distribution p(3, 0.0);
  Distribution out;
  EXPECT_THROW(step_distribution(g, p, out), std::invalid_argument);
}

TEST(Transition, AliasThrows) {
  const Graph g = path_graph(4);
  Distribution p = dirac(4, 0);
  EXPECT_THROW(step_distribution(g, p, p), std::invalid_argument);
}

TEST(Transition, IsolatedVertexKeepsNoMassFlowing) {
  // Vertex 2 isolated: mass on it stays only via the lazy self loop.
  GraphBuilder b{3};
  b.add_edge(0, 1);
  const Graph g = b.build();
  Distribution p = dirac(3, 2);
  Distribution out;
  step_distribution(g, p, out);
  EXPECT_DOUBLE_EQ(mass(out), 0.0);  // plain chain drops stranded mass
  step_distribution_lazy(g, p, out);
  EXPECT_DOUBLE_EQ(out[2], 0.5);
}

TEST(Transition, LazyIsAverageOfPlainAndIdentity) {
  const Graph g = cycle_graph(6);
  const Distribution p = dirac(6, 2);
  Distribution plain, lazy;
  step_distribution(g, p, plain);
  step_distribution_lazy(g, p, lazy);
  for (VertexId v = 0; v < 6; ++v)
    EXPECT_NEAR(lazy[v], 0.5 * plain[v] + 0.5 * p[v], 1e-15);
}

}  // namespace
}  // namespace sntrust

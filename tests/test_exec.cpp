// Tests for the exec fault-tolerance layer: cooperative cancellation,
// deterministic fault injection, checkpoint/resume, and the sweep harness —
// including the acceptance property that an interrupted measurement resumed
// from its checkpoint is bitwise identical to an uninterrupted run at any
// thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "exec/cancel.hpp"
#include "exec/checkpoint.hpp"
#include "exec/fault.hpp"
#include "exec/sweep.hpp"
#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "markov/mixing.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/watchdog.hpp"
#include "parallel/parallel.hpp"
#include "sybil/gatekeeper.hpp"
#include "test_graphs.hpp"
#include "util/json.hpp"

namespace sntrust {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Restores process-global exec state (fault plan, cancellation, checkpoint
/// path) no matter how a test exits.
struct ExecStateGuard {
  ~ExecStateGuard() {
    exec::clear_fault_plan();
    exec::reset_process_cancel();
    exec::set_process_deadline(exec::Deadline{});
    exec::set_max_failed_frac(-1.0);
    exec::CheckpointStore::instance().set_path("");
    obs::StallWatchdog::instance().stop();
  }
};

TEST(ExecCancel, DefaultDeadlineNeverExpires) {
  const exec::Deadline none;
  EXPECT_FALSE(none.armed());
  EXPECT_FALSE(none.expired());
  EXPECT_GT(none.remaining_ms(), 1'000'000'000LL);
}

TEST(ExecCancel, ExpiredDeadlineReports) {
  const exec::Deadline past = exec::Deadline::after_ms(0);
  EXPECT_TRUE(past.armed());
  EXPECT_TRUE(past.expired());
  EXPECT_LE(past.remaining_ms(), 0);
}

TEST(ExecCancel, CancelSourceFlowsToToken) {
  exec::CancelSource source;
  const exec::CancelToken token = source.token();
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.check());
  source.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), "cancelled");
  EXPECT_THROW(token.check(), exec::CancelledError);
}

TEST(ExecCancel, TokenDeadlineCancels) {
  const exec::CancelToken token =
      exec::CancelToken{}.with_deadline(exec::Deadline::after_ms(0));
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), "deadline exceeded");
}

TEST(ExecCancel, ProcessCancelRequestAndReset) {
  ExecStateGuard guard;
  EXPECT_FALSE(exec::process_cancel_requested());
  exec::request_process_cancel("test stop");
  EXPECT_TRUE(exec::process_cancel_requested());
  EXPECT_EQ(exec::process_cancel_reason(), "test stop");
  EXPECT_TRUE(exec::process_token().cancelled());
  exec::reset_process_cancel();
  EXPECT_FALSE(exec::process_cancel_requested());
  EXPECT_EQ(exec::process_cancel_reason(), "");
}

TEST(ExecCancel, PoolStopsAtChunkBoundaries) {
  ExecStateGuard guard;
  exec::request_process_cancel("chunk boundary test");
  std::atomic<std::uint64_t> ran{0};
  EXPECT_THROW(parallel::parallel_for(
                   0, 128,
                   [&](std::size_t, std::uint32_t) {
                     ran.fetch_add(1, std::memory_order_relaxed);
                   }),
               exec::CancelledError);
  // Every chunk checks before running its first item, so nothing executes.
  EXPECT_EQ(ran.load(), 0u);
}

TEST(ExecFault, ParsesWellFormedSpecs) {
  const auto plan = exec::parse_fault_plan("markov:7:0.5");
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->site, "markov");
  EXPECT_EQ(plan->seed, 7u);
  EXPECT_DOUBLE_EQ(plan->prob, 0.5);
  EXPECT_EQ(plan->action, exec::FaultPlan::Action::kThrow);

  const auto sigterm = exec::parse_fault_plan("io:123:0.25:sigterm");
  ASSERT_TRUE(sigterm.has_value());
  EXPECT_EQ(sigterm->action, exec::FaultPlan::Action::kSigterm);
}

TEST(ExecFault, ParsesSleepActionWithOptionalDuration) {
  const auto plain = exec::parse_fault_plan("pool:1:1.0:sleep");
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->action, exec::FaultPlan::Action::kSleep);
  EXPECT_EQ(plain->sleep_ms, 250u);  // documented default

  const auto timed = exec::parse_fault_plan("pool:1:1.0:sleep400");
  ASSERT_TRUE(timed.has_value());
  EXPECT_EQ(timed->action, exec::FaultPlan::Action::kSleep);
  EXPECT_EQ(timed->sleep_ms, 400u);

  EXPECT_FALSE(exec::parse_fault_plan("pool:1:1.0:sleepx").has_value());
  EXPECT_FALSE(exec::parse_fault_plan("pool:1:1.0:sleep4x").has_value());
}

TEST(ExecFault, SleepActionBlocksWithoutFailing) {
  ExecStateGuard guard;
  exec::FaultPlan plan;
  plan.site = "unit.sleep";
  plan.seed = 1;
  plan.prob = 1.0;
  plan.action = exec::FaultPlan::Action::kSleep;
  plan.sleep_ms = 60;
  exec::set_fault_plan(plan);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_NO_THROW(exec::fault_point("unit.sleep", 0));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  // A forced stall, not a failure: the call blocks, then returns normally.
  EXPECT_GE(elapsed.count(), 50);
}

TEST(ExecFault, RejectsMalformedSpecs) {
  EXPECT_FALSE(exec::parse_fault_plan("").has_value());
  EXPECT_FALSE(exec::parse_fault_plan("markov").has_value());
  EXPECT_FALSE(exec::parse_fault_plan("markov:7").has_value());
  EXPECT_FALSE(exec::parse_fault_plan(":7:0.5").has_value());
  EXPECT_FALSE(exec::parse_fault_plan("markov:x:0.5").has_value());
  EXPECT_FALSE(exec::parse_fault_plan("markov:7:nope").has_value());
  EXPECT_FALSE(exec::parse_fault_plan("markov:7:1.5").has_value());
  EXPECT_FALSE(exec::parse_fault_plan("markov:7:-0.1").has_value());
  EXPECT_FALSE(exec::parse_fault_plan("markov:7:0.5:explode").has_value());
}

TEST(ExecFault, FiringIsDeterministicPerIndex) {
  ExecStateGuard guard;
  exec::FaultPlan plan;
  plan.site = "test.site";
  plan.seed = 42;
  plan.prob = 0.3;
  exec::set_fault_plan(plan);

  const auto fired_indices = [] {
    std::vector<std::uint64_t> fired;
    for (std::uint64_t i = 0; i < 1000; ++i) {
      try {
        exec::fault_point("test.site", i);
      } catch (const exec::InjectedFault&) {
        fired.push_back(i);
      }
    }
    return fired;
  };
  const std::vector<std::uint64_t> first = fired_indices();
  const std::vector<std::uint64_t> second = fired_indices();
  EXPECT_EQ(first, second);
  // Bernoulli(0.3) over 1000 trials: generous envelope, deterministic seed.
  EXPECT_GT(first.size(), 200u);
  EXPECT_LT(first.size(), 400u);
}

TEST(ExecFault, OnlyMatchingSiteFires) {
  ExecStateGuard guard;
  exec::FaultPlan plan;
  plan.site = "only.this";
  plan.seed = 1;
  plan.prob = 1.0;
  exec::set_fault_plan(plan);
  EXPECT_NO_THROW(exec::fault_point("other.site", 0));
  EXPECT_THROW(exec::fault_point("only.this", 0), exec::InjectedFault);
}

TEST(ExecCheckpoint, Crc32MatchesReference) {
  EXPECT_EQ(exec::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(exec::crc32(""), 0u);
}

TEST(ExecCheckpoint, FingerprintDependsOnOrderAndContent) {
  const std::uint64_t a = exec::fingerprint({1, 2, 3});
  EXPECT_EQ(a, exec::fingerprint({1, 2, 3}));
  EXPECT_NE(a, exec::fingerprint({3, 2, 1}));
  EXPECT_NE(a, exec::fingerprint({1, 2}));
}

TEST(ExecCheckpoint, SaveRestoreRoundTripsThroughDisk) {
  ExecStateGuard guard;
  const std::string path = temp_path("sntrust_exec_roundtrip.json");
  std::remove(path.c_str());
  exec::CheckpointStore& store = exec::CheckpointStore::instance();
  store.set_path(path);

  std::vector<std::string> payloads{"[1,2]", "", "[0.25,3]", ""};
  store.save("unit", 0xabcdULL, 4, payloads);

  // Re-entering the path drops in-memory state, forcing a reload from disk.
  store.set_path(path);
  std::vector<std::string> restored(4);
  EXPECT_EQ(store.restore("unit", 0xabcdULL, 4, restored), 2u);
  EXPECT_EQ(restored[0], "[1,2]");
  EXPECT_EQ(restored[1], "");
  EXPECT_EQ(restored[2], "[0.25,3]");

  // Fingerprint or item-count mismatch: treated as a different sweep.
  std::vector<std::string> other(4);
  EXPECT_EQ(store.restore("unit", 0x9999ULL, 4, other), 0u);
  EXPECT_EQ(store.restore("unit", 0xabcdULL, 5, other), 0u);
  std::remove(path.c_str());
}

TEST(ExecCheckpoint, CorruptOrMismatchedFilesStartFresh) {
  ExecStateGuard guard;
  const std::string path = temp_path("sntrust_exec_corrupt.json");
  exec::CheckpointStore& store = exec::CheckpointStore::instance();
  std::vector<std::string> restored(2);

  const auto expects_fresh = [&](const std::string& contents) {
    std::ofstream out{path};
    out << contents;
    out.close();
    store.set_path(path);
    restored.assign(2, {});
    EXPECT_EQ(store.restore("unit", 1, 2, restored), 0u);
  };

  expects_fresh("not json at all {{{");
  expects_fresh("{\"schema_version\":1,\"sweeps\":{");  // truncated
  expects_fresh("{\"schema_version\":99,\"sweeps\":{},\"crc32\":\"0\"}");
  expects_fresh(  // valid shape, wrong CRC: corrupt payload
      "{\"schema_version\":1,\"sweeps\":{\"unit:0000000000000001\":"
      "{\"fingerprint\":\"0000000000000001\",\"items\":2,"
      "\"completed\":{\"0\":[1]}}},\"crc32\":\"00000000\"}");
  std::remove(path.c_str());
}

TEST(ExecSweep, ComputesEveryPayload) {
  ExecStateGuard guard;
  exec::SweepOptions options;
  options.kind = "unit_sweep";
  const exec::SweepResult result = exec::run_sweep(
      8, options, [](std::size_t i, std::uint32_t) {
        return json::Value::integer(static_cast<std::int64_t>(i * i)).dump();
      });
  ASSERT_EQ(result.payloads.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_EQ(result.payloads[i], std::to_string(i * i));
  EXPECT_EQ(result.computed, 8u);
  EXPECT_EQ(result.restored, 0u);
  EXPECT_TRUE(result.failures.empty());
}

TEST(ExecSweep, StrictModeAbortsOnAnyFailure) {
  ExecStateGuard guard;
  exec::SweepOptions options;
  options.kind = "unit_sweep_strict";
  options.max_failed_frac = 0.0;
  EXPECT_THROW(
      exec::run_sweep(8, options,
                      [](std::size_t i, std::uint32_t) -> std::string {
                        if (i == 3) throw std::runtime_error("boom");
                        return "[]";
                      }),
      exec::PartialFailureError);
}

TEST(ExecSweep, DegradedModeRecordsAndSkipsFailures) {
  ExecStateGuard guard;
  exec::SweepOptions options;
  options.kind = "unit_sweep_degraded";
  options.max_failed_frac = 0.5;
  const exec::SweepResult result = exec::run_sweep(
      8, options, [](std::size_t i, std::uint32_t) -> std::string {
        if (i == 2 || i == 5) throw std::runtime_error("boom " +
                                                       std::to_string(i));
        return "[]";
      });
  ASSERT_EQ(result.failures.size(), 2u);
  EXPECT_EQ(result.failures[0].index, 2u);
  EXPECT_EQ(result.failures[0].phase, "unit_sweep_degraded");
  EXPECT_EQ(result.failures[0].reason, "boom 2");
  EXPECT_EQ(result.failures[1].index, 5u);
  EXPECT_TRUE(result.payloads[2].empty());
  EXPECT_TRUE(result.payloads[5].empty());
  EXPECT_EQ(result.computed, 6u);
}

TEST(ExecSweep, CancelledTokenDrainsAndThrows) {
  ExecStateGuard guard;
  exec::CancelSource source;
  source.cancel();
  exec::SweepOptions options;
  options.kind = "unit_sweep_cancel";
  options.token = source.token();
  std::atomic<std::uint64_t> ran{0};
  EXPECT_THROW(exec::run_sweep(8, options,
                               [&](std::size_t, std::uint32_t) {
                                 ran.fetch_add(1);
                                 return std::string("[]");
                               }),
               exec::CancelledError);
  EXPECT_EQ(ran.load(), 0u);
}

TEST(ExecSweep, RestoredSourcesSkipCompute) {
  ExecStateGuard guard;
  const std::string path = temp_path("sntrust_exec_restore.json");
  std::remove(path.c_str());
  exec::CheckpointStore& store = exec::CheckpointStore::instance();
  store.set_path(path);

  exec::SweepOptions options;
  options.kind = "unit_sweep_restore";
  options.fingerprint = 7;
  std::atomic<std::uint64_t> computed{0};
  const auto compute = [&](std::size_t i, std::uint32_t) {
    computed.fetch_add(1);
    return json::Value::integer(static_cast<std::int64_t>(100 + i)).dump();
  };
  const exec::SweepResult first = exec::run_sweep(6, options, compute);
  EXPECT_EQ(computed.load(), 6u);

  store.set_path(path);  // force reload from disk
  computed.store(0);
  const exec::SweepResult second = exec::run_sweep(6, options, compute);
  EXPECT_EQ(computed.load(), 0u);
  EXPECT_EQ(second.restored, 6u);
  EXPECT_EQ(second.payloads, first.payloads);
  std::remove(path.c_str());
}

TEST(ExecSweep, ForcedStallFiresWatchdogAndCancelsDraining) {
  ExecStateGuard guard;

  // Force the stall: every source wedges for 400 ms inside the injected
  // sleep — far past the 50 ms no-progress threshold.
  exec::FaultPlan plan;
  plan.site = "unit.stall";
  plan.seed = 1;
  plan.prob = 1.0;
  plan.action = exec::FaultPlan::Action::kSleep;
  plan.sleep_ms = 400;
  exec::set_fault_plan(plan);

  obs::WatchdogOptions watchdog;
  watchdog.stall_ms = 50;
  watchdog.check_period_ms = 10;
  watchdog.cancel = true;  // escalate the stall to cooperative cancel
  obs::StallWatchdog::instance().configure(watchdog);

  const std::uint64_t stalls_before =
      obs::StallWatchdog::instance().stalls_detected();
  obs::Counter& stalled_events =
      obs::Metrics::instance().counter("exec.stalled");
  const std::uint64_t events_before = stalled_events.value();

  exec::SweepOptions options;
  options.kind = "unit_sweep_stall";
  // run_sweep opens the watchdog activity scope itself; the wedged workers
  // never heartbeat, the watchdog fires, requests process cancellation, and
  // the sweep drains at the next chunk boundary into CancelledError — the
  // same draining shutdown an operator sees as exit code 75.
  EXPECT_THROW(exec::run_sweep(64, options,
                               [](std::size_t i, std::uint32_t) {
                                 exec::fault_point("unit.stall", i);
                                 return std::string("[]");
                               }),
               exec::CancelledError);

  EXPECT_GE(obs::StallWatchdog::instance().stalls_detected() - stalls_before,
            1u);
  EXPECT_GE(stalled_events.value() - events_before, 1u);
  EXPECT_TRUE(exec::process_cancel_requested());
  EXPECT_NE(exec::process_cancel_reason().find("stalled"), std::string::npos);
}

TEST(ExecReport, BuildEmitsExecSectionAfterFailures) {
  obs::RunReporter& reporter = obs::RunReporter::instance();
  reporter.record_failure("unit_phase", 7, "unit reason");
  const json::Value report = reporter.build();
  const json::Value* exec_section = report.find("exec");
  ASSERT_NE(exec_section, nullptr);
  const json::Value* partial = exec_section->find("partial");
  ASSERT_NE(partial, nullptr);
  EXPECT_TRUE(partial->as_bool());
  const json::Value* failures = exec_section->find("failures");
  ASSERT_NE(failures, nullptr);
  bool found = false;
  for (const json::Value& row : failures->as_array()) {
    if (row.find("phase")->as_string() == "unit_phase" &&
        row.find("index")->as_int() == 7 &&
        row.find("reason")->as_string() == "unit reason")
      found = true;
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Acceptance: interrupted sweeps resume bitwise identically.

Graph acceptance_graph() {
  return largest_component(barabasi_albert(300, 3, 5)).graph;
}

MixingOptions acceptance_mixing_options() {
  MixingOptions options;
  options.num_sources = 12;
  options.max_walk_length = 40;
  options.seed = 77;
  return options;
}

TEST(ExecResume, MixingSigtermMidRunThenResumeIsBitwiseIdentical) {
  ExecStateGuard guard;
  const Graph g = acceptance_graph();
  const MixingOptions options = acceptance_mixing_options();

  // Uninterrupted baseline, serial, no checkpoint.
  MixingCurves baseline;
  {
    parallel::ScopedThreadCount serial{1};
    baseline = measure_mixing(g, options);
  }

  const std::string path = temp_path("sntrust_exec_mixing_resume.json");
  std::remove(path.c_str());
  exec::CheckpointStore::instance().set_path(path);

  // Interrupt: the first markov fault point raises SIGTERM; the sweep
  // drains, writes the checkpoint, and surfaces CancelledError.
  exec::FaultPlan plan;
  plan.site = "markov";
  plan.seed = 9;
  plan.prob = 1.0;
  plan.action = exec::FaultPlan::Action::kSigterm;
  exec::set_fault_plan(plan);
  EXPECT_THROW(measure_mixing(g, options), exec::CancelledError);
  EXPECT_TRUE(std::filesystem::exists(path));

  // Recover and resume at a different thread count: the restored payloads
  // plus the freshly computed remainder must equal the baseline exactly.
  exec::clear_fault_plan();
  exec::reset_process_cancel();
  exec::CheckpointStore::instance().set_path(path);  // reload from disk
  MixingCurves resumed;
  {
    parallel::ScopedThreadCount wide{4};
    resumed = measure_mixing(g, options);
  }
  EXPECT_EQ(resumed.sources, baseline.sources);
  EXPECT_EQ(resumed.tvd, baseline.tvd);
  std::remove(path.c_str());
}

TEST(ExecResume, MixingPartialFailureThenResumeIsBitwiseIdentical) {
  ExecStateGuard guard;
  const Graph g = acceptance_graph();
  const MixingOptions options = acceptance_mixing_options();

  MixingCurves baseline;
  {
    parallel::ScopedThreadCount serial{1};
    baseline = measure_mixing(g, options);
  }

  const std::string path = temp_path("sntrust_exec_mixing_degraded.json");
  std::remove(path.c_str());
  exec::CheckpointStore::instance().set_path(path);

  // Degraded first pass: some sources fail (deterministically, by hash) and
  // are tolerated; the survivors land in the checkpoint.
  exec::FaultPlan plan;
  plan.site = "markov";
  plan.seed = 5;
  plan.prob = 0.4;
  exec::set_fault_plan(plan);
  exec::set_max_failed_frac(1.0);
  const MixingCurves degraded = measure_mixing(g, options);
  EXPECT_LT(degraded.sources.size(), baseline.sources.size());

  // Second pass heals: failed sources recompute cleanly, completed ones are
  // restored — the merged result must equal the baseline bitwise.
  exec::clear_fault_plan();
  exec::set_max_failed_frac(-1.0);
  exec::CheckpointStore::instance().set_path(path);
  MixingCurves healed;
  {
    parallel::ScopedThreadCount wide{3};
    healed = measure_mixing(g, options);
  }
  EXPECT_EQ(healed.sources, baseline.sources);
  EXPECT_EQ(healed.tvd, baseline.tvd);
  std::remove(path.c_str());
}

TEST(ExecResume, GatekeeperResumeIsBitwiseIdentical) {
  ExecStateGuard guard;
  const Graph g = acceptance_graph();
  GateKeeperParams params;
  params.seed = 2026;
  params.num_distributers = 10;

  GateKeeperResult baseline;
  {
    parallel::ScopedThreadCount serial{1};
    baseline = run_gatekeeper(g, 0, params);
  }

  const std::string path = temp_path("sntrust_exec_gatekeeper_resume.json");
  std::remove(path.c_str());
  exec::CheckpointStore::instance().set_path(path);

  exec::FaultPlan plan;
  plan.site = "sybil";
  plan.seed = 3;
  plan.prob = 1.0;
  plan.action = exec::FaultPlan::Action::kSigterm;
  exec::set_fault_plan(plan);
  EXPECT_THROW(run_gatekeeper(g, 0, params), exec::CancelledError);

  exec::clear_fault_plan();
  exec::reset_process_cancel();
  exec::CheckpointStore::instance().set_path(path);
  GateKeeperResult resumed;
  {
    parallel::ScopedThreadCount wide{4};
    resumed = run_gatekeeper(g, 0, params);
  }
  EXPECT_EQ(resumed.distributers, baseline.distributers);
  EXPECT_EQ(resumed.admissions, baseline.admissions);
  EXPECT_EQ(resumed.threshold, baseline.threshold);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sntrust

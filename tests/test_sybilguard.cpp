#include "sybil/sybilguard.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

Graph expander(VertexId n, std::uint64_t seed) {
  return largest_component(barabasi_albert(n, 4, seed)).graph;
}

TEST(SybilGuard, DefaultRouteLengthIsSqrtNLogN) {
  const Graph g = expander(400, 1);
  SybilGuardParams params;
  const SybilGuard guard{g, params};
  const double n = g.num_vertices();
  EXPECT_NEAR(guard.route_length(), std::sqrt(n * std::log2(n)), 2.0);
}

TEST(SybilGuard, ExplicitRouteLengthRespected) {
  const Graph g = expander(100, 2);
  SybilGuardParams params;
  params.route_length = 17;
  EXPECT_EQ(SybilGuard(g, params).route_length(), 17u);
}

TEST(SybilGuard, RoutesFollowEdges) {
  const Graph g = expander(100, 3);
  SybilGuardParams params;
  params.route_length = 20;
  const SybilGuard guard{g, params};
  const auto route = guard.route_of(0, 0);
  ASSERT_EQ(route.size(), 21u);
  for (std::size_t i = 1; i < route.size(); ++i)
    EXPECT_TRUE(g.has_edge(route[i - 1], route[i]));
}

TEST(SybilGuard, SelfAcceptance) {
  const Graph g = expander(200, 4);
  SybilGuardParams params;
  params.seed = 4;
  const SybilGuard guard{g, params};
  // A vertex's routes trivially intersect themselves.
  EXPECT_TRUE(guard.accepts(5, 5));
}

TEST(SybilGuard, HonestPairsMostlyAccepted) {
  const Graph g = expander(300, 5);
  SybilGuardParams params;
  params.seed = 5;
  const SybilGuard guard{g, params};
  int accepted = 0;
  for (VertexId s = 1; s <= 20; ++s)
    if (guard.accepts(0, s)) ++accepted;
  EXPECT_GE(accepted, 16);  // sqrt(n log n) routes in a 300-vertex expander
}

TEST(SybilGuard, EvaluationSeparatesHonestFromSybil) {
  const Graph honest = expander(600, 6);
  AttackParams attack;
  attack.num_sybils = 300;
  attack.attack_edges = 8;
  attack.seed = 6;
  const AttackedGraph attacked{honest, attack};
  SybilGuardParams params;
  params.seed = 6;
  const PairwiseEvaluation eval =
      evaluate_sybilguard(attacked, 0, params, 60, 60, 6);
  EXPECT_GT(eval.honest_accept_fraction, 0.7);
  // SybilGuard's guarantee is O(sqrt(n log n)) Sybils per attack edge
  // (~74 here); the observed rate must at least beat the unfiltered
  // population ratio of 300/8 = 37.5 per edge.
  EXPECT_LT(eval.sybils_per_attack_edge, 37.5);
}

TEST(SybilGuard, MoreAttackEdgesLetMoreSybilsThrough) {
  const Graph honest = expander(500, 7);
  SybilGuardParams params;
  params.seed = 7;
  double rates[2];
  const std::uint32_t edges[2] = {2, 60};
  for (int i = 0; i < 2; ++i) {
    AttackParams attack;
    attack.num_sybils = 250;
    attack.attack_edges = edges[i];
    attack.seed = 7;
    const AttackedGraph attacked{honest, attack};
    const PairwiseEvaluation eval =
        evaluate_sybilguard(attacked, 0, params, 30, 80, 7);
    // Total accepted sybils = rate * edges.
    rates[i] = eval.sybils_per_attack_edge * edges[i];
  }
  EXPECT_GE(rates[1], rates[0]);
}

TEST(SybilGuard, IsolatedSuspectRejected) {
  GraphBuilder b{4};
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const Graph g = b.build();
  SybilGuardParams params;
  params.route_length = 3;
  const SybilGuard guard{g, params};
  EXPECT_FALSE(guard.accepts(0, 3));
}

}  // namespace
}  // namespace sntrust

#include "cores/kcore.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/generators.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::path_graph;
using testing::star_graph;
using testing::two_cliques;

TEST(KCore, PathCorenessIsOne) {
  const CoreDecomposition d = core_decomposition(path_graph(6));
  EXPECT_EQ(d.degeneracy, 1u);
  for (const auto c : d.coreness) EXPECT_EQ(c, 1u);
}

TEST(KCore, CycleCorenessIsTwo) {
  const CoreDecomposition d = core_decomposition(cycle_graph(7));
  EXPECT_EQ(d.degeneracy, 2u);
  for (const auto c : d.coreness) EXPECT_EQ(c, 2u);
}

TEST(KCore, CompleteGraphCoreness) {
  const CoreDecomposition d = core_decomposition(complete_graph(6));
  EXPECT_EQ(d.degeneracy, 5u);
  for (const auto c : d.coreness) EXPECT_EQ(c, 5u);
}

TEST(KCore, StarHasCorenessOne) {
  const CoreDecomposition d = core_decomposition(star_graph(9));
  EXPECT_EQ(d.degeneracy, 1u);
  EXPECT_EQ(d.coreness[0], 1u);  // hub too: peeling leaves strips it
}

TEST(KCore, CliqueWithTail) {
  // K_5 plus a pendant path: clique vertices coreness 4, path coreness 1.
  GraphBuilder b{8};
  for (VertexId u = 0; u < 5; ++u)
    for (VertexId v = u + 1; v < 5; ++v) b.add_edge(u, v);
  b.add_edge(4, 5);
  b.add_edge(5, 6);
  b.add_edge(6, 7);
  const CoreDecomposition d = core_decomposition(b.build());
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(d.coreness[v], 4u);
  for (VertexId v = 5; v < 8; ++v) EXPECT_EQ(d.coreness[v], 1u);
}

TEST(KCore, EmptyAndEdgeless) {
  EXPECT_EQ(core_decomposition(Graph{}).degeneracy, 0u);
  GraphBuilder b{4};
  const CoreDecomposition d = core_decomposition(b.build());
  EXPECT_EQ(d.degeneracy, 0u);
  for (const auto c : d.coreness) EXPECT_EQ(c, 0u);
}

TEST(KCore, CorenessFixpointProperty) {
  // Invariant: within the subgraph induced by {v : coreness >= k}, every
  // vertex has at least k neighbours — for all k up to the degeneracy.
  const Graph g = barabasi_albert(400, 3, 77);
  const CoreDecomposition d = core_decomposition(g);
  for (std::uint32_t k = 1; k <= d.degeneracy; ++k) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (d.coreness[v] < k) continue;
      std::uint32_t inside = 0;
      for (const VertexId w : g.neighbors(v))
        if (d.coreness[w] >= k) ++inside;
      EXPECT_GE(inside, k) << "vertex " << v << " at k=" << k;
    }
  }
}

TEST(KCore, CorenessIsMaximal) {
  // Invariant: coreness[v]+1 never admits v — the (c+1)-core excludes v.
  const Graph g = powerlaw_cluster(300, 3, 0.4, 78);
  const CoreDecomposition d = core_decomposition(g);
  // Spot-check: the max-coreness vertices' count at degeneracy+1 is zero.
  EXPECT_TRUE(d.core_members(d.degeneracy + 1).empty());
}

TEST(KCore, CorenessBoundedByDegree) {
  const Graph g = erdos_renyi(300, 0.02, 79);
  const CoreDecomposition d = core_decomposition(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_LE(d.coreness[v], g.degree(v));
}

TEST(KCore, RemovalOrderIsDegeneracyOrdering) {
  // In removal order, each vertex has at most `degeneracy` neighbours later
  // in the order.
  const Graph g = barabasi_albert(200, 4, 80);
  const CoreDecomposition d = core_decomposition(g);
  std::vector<std::uint32_t> position(g.num_vertices());
  for (std::uint32_t i = 0; i < d.removal_order.size(); ++i)
    position[d.removal_order[i]] = i;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::uint32_t later = 0;
    for (const VertexId w : g.neighbors(v))
      if (position[w] > position[v]) ++later;
    EXPECT_LE(later, d.degeneracy);
  }
}

TEST(KCore, CoreMembersMonotoneShrinking) {
  const Graph g = powerlaw_cluster(300, 4, 0.3, 81);
  const CoreDecomposition d = core_decomposition(g);
  std::size_t previous = g.num_vertices() + 1;
  for (std::uint32_t k = 0; k <= d.degeneracy; ++k) {
    const std::size_t size = d.core_members(k).size();
    EXPECT_LE(size, previous);
    previous = size;
  }
}

TEST(KCore, EcdfIsMonotoneReachingOne) {
  const Graph g = barabasi_albert(300, 3, 82);
  const CoreDecomposition d = core_decomposition(g);
  const auto ecdf = coreness_ecdf(d);
  ASSERT_EQ(ecdf.size(), d.degeneracy + 1);
  for (std::size_t i = 1; i < ecdf.size(); ++i)
    EXPECT_GE(ecdf[i], ecdf[i - 1]);
  EXPECT_DOUBLE_EQ(ecdf.back(), 1.0);
}

TEST(KCore, EcdfEmptyThrows) {
  CoreDecomposition d;
  EXPECT_THROW(coreness_ecdf(d), std::invalid_argument);
}

TEST(KCore, BarabasiAlbertCoreIsAttachmentCount) {
  // Every non-seed vertex arrives with degree m; peeling gives coreness m.
  const Graph g = barabasi_albert(500, 5, 83);
  const CoreDecomposition d = core_decomposition(g);
  EXPECT_EQ(d.degeneracy, 5u);
  std::uint64_t at_m = 0;
  for (const auto c : d.coreness)
    if (c == 5u) ++at_m;
  EXPECT_GT(at_m, 450u);
}

}  // namespace
}  // namespace sntrust

#include "graph/components.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::complete_graph;
using testing::disconnected_graph;
using testing::path_graph;

TEST(Components, ConnectedGraphIsOneComponent) {
  const Components c = connected_components(path_graph(10));
  EXPECT_EQ(c.count(), 1u);
  EXPECT_EQ(c.sizes[0], 10u);
}

TEST(Components, CountsDisconnectedPieces) {
  const Components c = connected_components(disconnected_graph());
  EXPECT_EQ(c.count(), 3u);  // triangle, edge, isolated vertex
  std::vector<std::uint64_t> sizes = c.sizes;
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(Components, LabelsAreConsistent) {
  const Graph g = disconnected_graph();
  const Components c = connected_components(g);
  EXPECT_EQ(c.component_of[0], c.component_of[1]);
  EXPECT_EQ(c.component_of[1], c.component_of[2]);
  EXPECT_EQ(c.component_of[3], c.component_of[4]);
  EXPECT_NE(c.component_of[0], c.component_of[3]);
  EXPECT_NE(c.component_of[0], c.component_of[5]);
}

TEST(Components, LargestPicksBiggest) {
  const Components c = connected_components(disconnected_graph());
  EXPECT_EQ(c.sizes[c.largest()], 3u);
}

TEST(Components, LargestOnEmptyThrows) {
  Components c;
  EXPECT_THROW(c.largest(), std::logic_error);
}

TEST(Components, EmptyGraphHasNoComponents) {
  const Components c = connected_components(Graph{});
  EXPECT_EQ(c.count(), 0u);
}

TEST(LargestComponent, ExtractsTriangle) {
  const ExtractedGraph sub = largest_component(disconnected_graph());
  EXPECT_EQ(sub.graph.num_vertices(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 3u);
  // Original ids are the triangle's vertices.
  EXPECT_EQ(sub.original_id.size(), 3u);
  for (const VertexId v : sub.original_id) EXPECT_LE(v, 2u);
}

TEST(LargestComponent, IdentityOnConnectedGraph) {
  const Graph g = complete_graph(5);
  const ExtractedGraph sub = largest_component(g);
  EXPECT_EQ(sub.graph, g);
}

TEST(LargestComponent, EmptyGraph) {
  const ExtractedGraph sub = largest_component(Graph{});
  EXPECT_EQ(sub.graph.num_vertices(), 0u);
  EXPECT_TRUE(sub.original_id.empty());
}

TEST(IsConnected, Various) {
  EXPECT_TRUE(is_connected(Graph{}));
  EXPECT_TRUE(is_connected(path_graph(2)));
  EXPECT_TRUE(is_connected(complete_graph(4)));
  EXPECT_FALSE(is_connected(disconnected_graph()));
}

TEST(Components, SizesSumToVertexCount) {
  const Graph g = disconnected_graph();
  const Components c = connected_components(g);
  std::uint64_t total = 0;
  for (const auto s : c.sizes) total += s;
  EXPECT_EQ(total, g.num_vertices());
}

}  // namespace
}  // namespace sntrust

// Cross-module integration tests: miniature versions of the paper's actual
// experiments, wired through the same code paths the benches use.
#include <gtest/gtest.h>

#include <sstream>

#include "core/property_suite.hpp"
#include "gen/datasets.hpp"
#include "graph/components.hpp"
#include "graph/io.hpp"
#include "markov/mixing.hpp"
#include "markov/spectral.hpp"
#include "report/table.hpp"
#include "sybil/gatekeeper.hpp"
#include "sybil/sybilinfer.hpp"
#include "sybil/sybillimit.hpp"

namespace sntrust {
namespace {

TEST(Integration, Table1RowForOneDataset) {
  // End to end: generate analogue -> SLEM -> printable row.
  const DatasetSpec& spec = dataset_by_id("rice_grad");
  const Graph g = spec.generate(1.0, 2026);
  const SlemResult slem = second_largest_eigenvalue(g);
  EXPECT_GT(slem.mu, 0.0);
  EXPECT_LT(slem.mu, 1.0);

  Table table{{"Dataset", "Nodes", "Edges", "mu"}};
  table.add_row({spec.name, std::to_string(g.num_vertices()),
                 std::to_string(g.num_edges()), std::to_string(slem.mu)});
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("Rice-cs-grad"), std::string::npos);
}

TEST(Integration, Figure1OrderingFastVsSlow) {
  // Wiki-vote-class analogue must reach low TVD sooner than the
  // Physics-class analogue (paper Fig. 1a ordering).
  const Graph fast = dataset_by_id("wiki_vote").generate(0.25, 11);
  const Graph slow = dataset_by_id("physics_1").generate(0.5, 11);

  MixingOptions options;
  options.num_sources = 8;
  options.max_walk_length = 60;
  options.seed = 11;
  const auto fast_mean = measure_mixing(fast, options).mean_curve();
  const auto slow_mean = measure_mixing(slow, options).mean_curve();
  EXPECT_LT(fast_mean[30], slow_mean[30]);
  EXPECT_LT(fast_mean.back(), slow_mean.back());
}

TEST(Integration, Figure2FastMixerHasDeeperCores) {
  // Fast mixers keep a larger fraction of vertices at high coreness.
  const Graph fast = dataset_by_id("wiki_vote").generate(0.25, 12);
  const Graph slow = dataset_by_id("physics_1").generate(0.5, 12);
  const auto fast_profile = core_profile(fast);
  const auto slow_profile = core_profile(slow);
  ASSERT_FALSE(fast_profile.empty());
  ASSERT_FALSE(slow_profile.empty());
  // Compare nu at a common mid k.
  const std::uint32_t k = 5;
  const auto nu_at = [](const std::vector<CoreLevel>& levels,
                        std::uint32_t kk) {
    for (const CoreLevel& level : levels)
      if (level.k == kk) return level.nu;
    return 0.0;
  };
  EXPECT_GT(nu_at(fast_profile, k), nu_at(slow_profile, k));
}

TEST(Integration, Table2ShapeHonestDropsWithF) {
  const Graph honest = dataset_by_id("rice_grad").generate(1.0, 13);
  AttackParams attack;
  attack.num_sybils = 100;
  attack.attack_edges = 10;
  attack.seed = 13;
  const AttackedGraph attacked{honest, attack};

  double acceptance[3];
  const double fs[3] = {0.05, 0.1, 0.2};
  for (int i = 0; i < 3; ++i) {
    GateKeeperParams params;
    params.num_distributers = 30;
    params.f_admit = fs[i];
    params.seed = 13;
    acceptance[i] =
        evaluate_gatekeeper(attacked, 0, params).honest_accept_fraction;
  }
  EXPECT_GE(acceptance[0], acceptance[1]);
  EXPECT_GE(acceptance[1], acceptance[2]);
}

TEST(Integration, ExpansionOrderingMatchesMixingOrdering) {
  // Paper Sec. V: expansion measurements are "a scale of" the mixing ones.
  const Graph fast = dataset_by_id("wiki_vote").generate(0.2, 14);
  const Graph slow = dataset_by_id("physics_1").generate(0.4, 14);

  PropertySuiteOptions options;
  options.mixing_sources = 6;
  options.mixing_max_walk = 50;
  options.expansion_sources = 150;
  options.seed = 14;
  const PropertyReport fast_report = measure_properties(fast, options);
  const PropertyReport slow_report = measure_properties(slow, options);
  EXPECT_LT(fast_report.slem.mu, slow_report.slem.mu);
  EXPECT_GT(fast_report.min_expansion_factor,
            slow_report.min_expansion_factor);
}

TEST(Integration, DefensesAgreeOnRankingSignal) {
  // Viswanath et al.'s unification at miniature scale: SybilInfer's ranking
  // separates honest from Sybil, and SybilLimit's accept set is consistent
  // with the top of that ranking.
  const Graph honest = dataset_by_id("rice_grad").generate(1.0, 15);
  AttackParams attack;
  attack.num_sybils = 120;
  attack.attack_edges = 4;
  attack.seed = 15;
  const AttackedGraph attacked{honest, attack};

  SybilInferParams infer_params;
  infer_params.seed = 15;
  const SybilInferResult infer =
      run_sybilinfer(attacked.graph(), 0, infer_params);
  EXPECT_GT(ranking_auc(infer.ranking, attacked), 0.8);
}

TEST(Integration, RoundTripDatasetThroughIo) {
  const Graph g = dataset_by_id("rice_grad").generate(1.0, 16);
  std::stringstream buffer;
  write_edge_list(g, buffer);
  const Graph back = read_edge_list(buffer);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  // Same spectral character after a round trip.
  const double mu_a = second_largest_eigenvalue(g).mu;
  const double mu_b = second_largest_eigenvalue(back).mu;
  EXPECT_NEAR(mu_a, mu_b, 1e-6);
}

}  // namespace
}  // namespace sntrust

#include "parallel/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "expansion/expansion_profile.hpp"
#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "markov/mixing.hpp"
#include "sybil/attack.hpp"
#include "sybil/gatekeeper.hpp"
#include "test_graphs.hpp"
#include "util/rng.hpp"

namespace sntrust {
namespace {

/// Restores the process-default worker cap when a test ends.
using parallel::ScopedThreadCount;

TEST(ThreadPool, ThreadCountOverrideAndRestore) {
  const std::uint32_t initial = parallel::thread_count();
  EXPECT_GE(initial, 1u);
  {
    ScopedThreadCount scope{3};
    EXPECT_EQ(parallel::thread_count(), 3u);
    {
      ScopedThreadCount inner{7};
      EXPECT_EQ(parallel::thread_count(), 7u);
    }
    EXPECT_EQ(parallel::thread_count(), 3u);
  }
  EXPECT_EQ(parallel::thread_count(), initial);
}

TEST(ThreadPool, PlanWorkersRespectsItemsAndGrain) {
  ScopedThreadCount scope{4};
  EXPECT_EQ(parallel::plan_workers(0), 1u);
  EXPECT_EQ(parallel::plan_workers(1), 1u);
  EXPECT_EQ(parallel::plan_workers(3), 3u);
  EXPECT_EQ(parallel::plan_workers(100), 4u);
  // A grain of 50 over 100 items leaves room for only two slots.
  EXPECT_EQ(parallel::plan_workers(100, 50), 2u);
  EXPECT_EQ(parallel::plan_workers(100, 1000), 1u);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ScopedThreadCount scope{4};
  constexpr std::size_t kItems = 1000;
  std::vector<std::atomic<int>> hits(kItems);
  const std::uint32_t workers = parallel::plan_workers(kItems);
  parallel::parallel_for(0, kItems, [&](std::size_t i, std::uint32_t worker) {
    ASSERT_LT(worker, workers);
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kItems; ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, StaticChunkingBindsSlotsToContiguousRanges) {
  ScopedThreadCount scope{4};
  constexpr std::size_t kItems = 103;  // deliberately not divisible by 4
  std::vector<std::uint32_t> owner(kItems);
  parallel::parallel_for(0, kItems, [&](std::size_t i, std::uint32_t worker) {
    owner[i] = worker;
  });
  // Slot ids must be non-decreasing over the index range (contiguous cuts).
  for (std::size_t i = 1; i < kItems; ++i) EXPECT_LE(owner[i - 1], owner[i]);
  EXPECT_EQ(owner.front(), 0u);
  EXPECT_EQ(owner.back(), parallel::plan_workers(kItems) - 1);
}

TEST(ThreadPool, ExceptionsPropagateAndPoolSurvives) {
  ScopedThreadCount scope{4};
  EXPECT_THROW(
      parallel::parallel_for(0, 64,
                             [&](std::size_t i, std::uint32_t) {
                               if (i == 17)
                                 throw std::runtime_error("boom at 17");
                             }),
      std::runtime_error);
  // The pool must remain usable after a throwing region.
  std::atomic<int> sum{0};
  parallel::parallel_for(0, 64, [&](std::size_t i, std::uint32_t) {
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 64 * 63 / 2);
}

TEST(ThreadPool, LowestSlotExceptionWins) {
  ScopedThreadCount scope{4};
  try {
    parallel::parallel_for(0, 100, [&](std::size_t i, std::uint32_t worker) {
      if (i == 10 || i == 90) throw std::runtime_error(
          "slot " + std::to_string(worker));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "slot 0");
  }
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ScopedThreadCount scope{4};
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 32;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  parallel::parallel_for(0, kOuter, [&](std::size_t i, std::uint32_t) {
    EXPECT_TRUE(parallel::in_parallel_region());
    parallel::parallel_for(0, kInner, [&](std::size_t j, std::uint32_t) {
      hits[i * kInner + j].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, MapReduceMatchesSerialSum) {
  const auto run = [] {
    return parallel::parallel_map_reduce<std::uint64_t>(
        1, 10001, 0ull, [](std::size_t i) { return std::uint64_t{i}; },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
  };
  ScopedThreadCount serial{1};
  const std::uint64_t expected = run();
  EXPECT_EQ(expected, 10000ull * 10001ull / 2);
  ScopedThreadCount pooled{4};
  EXPECT_EQ(run(), expected);
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ScopedThreadCount scope{4};
  bool called = false;
  parallel::parallel_for(5, 5, [&](std::size_t, std::uint32_t) {
    called = true;
  });
  EXPECT_FALSE(called);
  EXPECT_EQ(parallel::parallel_map_reduce<int>(
                3, 3, 42, [](std::size_t) { return 1; },
                [](int a, int b) { return a + b; }),
            42);
}

TEST(StreamSeed, IsDeterministicAndIndexSensitive) {
  EXPECT_EQ(stream_seed(1, 0), stream_seed(1, 0));
  EXPECT_NE(stream_seed(1, 0), stream_seed(1, 1));
  EXPECT_NE(stream_seed(1, 0), stream_seed(2, 0));
}

// --- Bitwise determinism of the ported sweeps: 1 thread vs 4 threads. ---

Graph determinism_graph() {
  return largest_component(barabasi_albert(400, 3, 7)).graph;
}

TEST(ParallelDeterminism, MeasureMixingIsThreadCountInvariant) {
  const Graph g = determinism_graph();
  MixingOptions options;
  options.num_sources = 12;
  options.max_walk_length = 40;
  options.seed = 99;
  ScopedThreadCount serial{1};
  const MixingCurves a = measure_mixing(g, options);
  ScopedThreadCount pooled{4};
  const MixingCurves b = measure_mixing(g, options);
  EXPECT_EQ(a.sources, b.sources);
  EXPECT_EQ(a.tvd, b.tvd);  // element-wise bitwise double equality
}

TEST(ParallelDeterminism, MonteCarloMixingIsThreadCountInvariant) {
  const Graph g = testing::petersen_graph();
  MixingOptions options;
  options.num_sources = 6;
  options.max_walk_length = 8;
  options.seed = 5;
  ScopedThreadCount serial{1};
  const MixingCurves a = measure_mixing_monte_carlo(g, options, 40);
  ScopedThreadCount pooled{4};
  const MixingCurves b = measure_mixing_monte_carlo(g, options, 40);
  EXPECT_EQ(a.sources, b.sources);
  EXPECT_EQ(a.tvd, b.tvd);
}

TEST(ParallelDeterminism, MeasureExpansionIsThreadCountInvariant) {
  const Graph g = determinism_graph();
  ExpansionOptions options;
  options.num_sources = 64;
  options.seed = 3;
  ScopedThreadCount serial{1};
  const ExpansionProfile a = measure_expansion(g, options);
  ScopedThreadCount pooled{4};
  const ExpansionProfile b = measure_expansion(g, options);
  ASSERT_EQ(a.points.size(), b.points.size());
  EXPECT_EQ(a.max_depth, b.max_depth);
  EXPECT_EQ(a.sources_used, b.sources_used);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].set_size, b.points[i].set_size);
    EXPECT_EQ(a.points[i].min_neighbors, b.points[i].min_neighbors);
    EXPECT_EQ(a.points[i].max_neighbors, b.points[i].max_neighbors);
    EXPECT_EQ(a.points[i].observations, b.points[i].observations);
    // Bitwise: both sides divide the same integer sum by the same count.
    EXPECT_EQ(a.points[i].mean_neighbors, b.points[i].mean_neighbors);
  }
}

TEST(ParallelDeterminism, GateKeeperIsThreadCountInvariant) {
  const Graph g = determinism_graph();
  AttackParams attack;
  attack.num_sybils = 40;
  attack.attack_edges = 8;
  attack.seed = 11;
  const AttackedGraph attacked{g, attack};
  GateKeeperParams params;
  params.num_distributers = 17;
  params.seed = 23;
  ScopedThreadCount serial{1};
  const GateKeeperEvaluation a = evaluate_gatekeeper(attacked, 0, params);
  ScopedThreadCount pooled{4};
  const GateKeeperEvaluation b = evaluate_gatekeeper(attacked, 0, params);
  EXPECT_EQ(a.result.distributers, b.result.distributers);
  EXPECT_EQ(a.result.admissions, b.result.admissions);
  EXPECT_EQ(a.result.threshold, b.result.threshold);
  EXPECT_EQ(a.honest_accept_fraction, b.honest_accept_fraction);
  EXPECT_EQ(a.sybils_per_attack_edge, b.sybils_per_attack_edge);
}

}  // namespace
}  // namespace sntrust

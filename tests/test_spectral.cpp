#include "markov/spectral.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "markov/mixing.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::path_graph;
using testing::petersen_graph;
using testing::two_cliques;

TEST(Slem, CompleteGraphKnownValue) {
  // K_n: eigenvalues of P are 1 and -1/(n-1); SLEM = 1/(n-1).
  const SlemResult r = second_largest_eigenvalue(complete_graph(10));
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.mu, 1.0 / 9.0, 1e-6);
}

TEST(Slem, CycleKnownValue) {
  // C_n: eigenvalues of P are cos(2 pi k / n). C_8 is bipartite, so the
  // modulus of the bottom eigenvalue is 1: SLEM = 1.
  const SlemResult even = second_largest_eigenvalue(cycle_graph(8));
  EXPECT_NEAR(even.mu, 1.0, 1e-4);
  // C_9: the *negative* end dominates — SLEM = |cos(8 pi / 9)| = cos(pi/9),
  // larger than the positive lambda_2 = cos(2 pi / 9).
  const SlemResult odd = second_largest_eigenvalue(cycle_graph(9));
  EXPECT_NEAR(odd.mu, std::cos(M_PI / 9.0), 1e-5);
}

TEST(Slem, PetersenKnownValue) {
  // Petersen adjacency eigenvalues {3, 1, -2}; P = A/3 -> SLEM = 2/3.
  const SlemResult r = second_largest_eigenvalue(petersen_graph());
  EXPECT_NEAR(r.mu, 2.0 / 3.0, 1e-6);
}

TEST(Slem, PathIsSlow) {
  const SlemResult r = second_largest_eigenvalue(path_graph(50));
  EXPECT_GT(r.mu, 0.99);
  EXPECT_LT(r.mu, 1.0 + 1e-9);
}

TEST(Slem, BarbellWorseThanExpander) {
  const SlemResult good = second_largest_eigenvalue(petersen_graph());
  const SlemResult bad = second_largest_eigenvalue(two_cliques(6));
  EXPECT_GT(bad.mu, good.mu);
  EXPECT_GT(bad.mu, 0.9);  // bridge bottleneck
}

TEST(Slem, CommunityStrengthRaisesMu) {
  const Graph weak =
      largest_component(planted_partition(400, 4, 0.1, 0.05, 5)).graph;
  const Graph strong =
      largest_component(planted_partition(400, 4, 0.1, 0.002, 5)).graph;
  const double mu_weak = second_largest_eigenvalue(weak).mu;
  const double mu_strong = second_largest_eigenvalue(strong).mu;
  EXPECT_GT(mu_strong, mu_weak);
}

TEST(Slem, DisconnectedThrows) {
  EXPECT_THROW(second_largest_eigenvalue(testing::disconnected_graph()),
               std::invalid_argument);
}

TEST(Slem, EdgelessThrows) {
  GraphBuilder b{2};
  EXPECT_THROW(second_largest_eigenvalue(b.build()), std::invalid_argument);
}

TEST(Slem, DeterministicAcrossCalls) {
  const Graph g = barabasi_albert(300, 3, 9);
  const double a = second_largest_eigenvalue(g).mu;
  const double b = second_largest_eigenvalue(g).mu;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(SinclairBounds, BracketsSamplingEstimate) {
  // On a well-behaved expander the sampling-method T(eps) must land inside
  // the Sinclair bracket.
  const Graph g = largest_component(barabasi_albert(500, 4, 21)).graph;
  const double mu = second_largest_eigenvalue(g).mu;
  const double epsilon = 1.0 / g.num_vertices();
  const MixingBounds bounds = sinclair_bounds(mu, epsilon, g.num_vertices());

  MixingOptions options;
  options.num_sources = 20;
  options.max_walk_length = 200;
  const std::uint32_t t =
      mixing_time_estimate(measure_mixing(g, options), epsilon);
  ASSERT_NE(t, 0xFFFFFFFFu);
  EXPECT_GE(static_cast<double>(t) + 1.0, bounds.lower);
  EXPECT_LE(static_cast<double>(t), bounds.upper + 1.0);
}

TEST(SinclairBounds, MonotoneInMu) {
  const MixingBounds low = sinclair_bounds(0.9, 0.001, 1000);
  const MixingBounds high = sinclair_bounds(0.99, 0.001, 1000);
  EXPECT_LT(low.lower, high.lower);
  EXPECT_LT(low.upper, high.upper);
}

TEST(SinclairBounds, LowerBelowUpper) {
  for (const double mu : {0.5, 0.9, 0.99, 0.999}) {
    const MixingBounds b = sinclair_bounds(mu, 0.01, 10000);
    EXPECT_LT(b.lower, b.upper);
  }
}

TEST(SinclairBounds, BadInputsThrow) {
  EXPECT_THROW(sinclair_bounds(0.0, 0.1, 10), std::invalid_argument);
  EXPECT_THROW(sinclair_bounds(1.0, 0.1, 10), std::invalid_argument);
  EXPECT_THROW(sinclair_bounds(0.5, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(sinclair_bounds(0.5, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(sinclair_bounds(0.5, 0.1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace sntrust

#include "markov/modulated.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "markov/spectral.hpp"
#include "markov/transition.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::barbell_graph;
using testing::complete_graph;
using testing::petersen_graph;
using testing::star_graph;

TEST(Modulated, AlphaZeroIsPlainStep) {
  const Graph g = petersen_graph();
  const Distribution p = dirac(10, 0);
  Distribution plain, modulated;
  step_distribution(g, p, plain);
  step_modulated(g, p, modulated, 0.0);
  for (VertexId v = 0; v < 10; ++v)
    EXPECT_NEAR(modulated[v], plain[v], 1e-15);
}

TEST(Modulated, HalfAlphaIsLazyStep) {
  const Graph g = petersen_graph();
  const Distribution p = dirac(10, 3);
  Distribution lazy, modulated;
  step_distribution_lazy(g, p, lazy);
  step_modulated(g, p, modulated, 0.5);
  for (VertexId v = 0; v < 10; ++v) EXPECT_NEAR(modulated[v], lazy[v], 1e-15);
}

TEST(Modulated, PreservesMass) {
  const Graph g = barbell_graph();
  Distribution p = dirac(6, 0);
  Distribution out;
  for (int s = 0; s < 30; ++s) {
    step_modulated(g, p, out, 0.3);
    p.swap(out);
    EXPECT_NEAR(mass(p), 1.0, 1e-12);
  }
}

TEST(Modulated, StationaryIsFixedPoint) {
  const Graph g = star_graph(6);
  const Distribution pi = stationary_distribution(g);
  Distribution out;
  step_modulated(g, pi, out, 0.7);
  for (VertexId v = 0; v < 6; ++v) EXPECT_NEAR(out[v], pi[v], 1e-12);
}

TEST(Modulated, BadAlphaThrows) {
  const Graph g = petersen_graph();
  const Distribution p = dirac(10, 0);
  Distribution out;
  EXPECT_THROW(step_modulated(g, p, out, -0.1), std::invalid_argument);
  EXPECT_THROW(step_modulated(g, p, out, 1.0), std::invalid_argument);
}

TEST(Modulated, MixingTimeGrowsWithAlpha) {
  // The core of ref [16]: modulation deliberately slows mixing; the gap
  // scales by (1 - alpha), so T roughly scales by 1/(1 - alpha).
  const Graph g = largest_component(barabasi_albert(300, 4, 3)).graph;
  const double epsilon = 0.01;
  const std::uint32_t t0 =
      modulated_mixing_time(g, 0.0, epsilon, 8, 400, 3);
  const std::uint32_t t5 =
      modulated_mixing_time(g, 0.5, epsilon, 8, 400, 3);
  const std::uint32_t t8 =
      modulated_mixing_time(g, 0.8, epsilon, 8, 400, 3);
  ASSERT_NE(t0, 0xFFFFFFFFu);
  ASSERT_NE(t5, 0xFFFFFFFFu);
  EXPECT_LT(t0, t5);
  EXPECT_LT(t5, t8);
}

TEST(Modulated, MixingTimeScalesLikeInverseGap) {
  const Graph g = largest_component(barabasi_albert(300, 4, 4)).graph;
  const double epsilon = 0.01;
  const double t0 = modulated_mixing_time(g, 0.0, epsilon, 8, 600, 4);
  const double t5 = modulated_mixing_time(g, 0.5, epsilon, 8, 600, 4);
  // Expect roughly 2x, allow wide tolerance (small-t integer effects).
  EXPECT_GT(t5 / t0, 1.4);
  EXPECT_LT(t5 / t0, 3.5);
}

TEST(OriginatorBiased, MassConcentratesNearOriginator) {
  const Graph g = largest_component(barabasi_albert(200, 3, 5)).graph;
  const Distribution pi = stationary_distribution(g);
  const Distribution localized = originator_stationary(g, 0, 0.3);
  EXPECT_NEAR(mass(localized), 1.0, 1e-9);
  // The originator holds far more mass than its stationary share.
  EXPECT_GT(localized[0], 5.0 * pi[0]);
}

TEST(OriginatorBiased, HigherAlphaMoreLocalized) {
  const Graph g = largest_component(barabasi_albert(200, 3, 6)).graph;
  const Distribution weak = originator_stationary(g, 0, 0.1);
  const Distribution strong = originator_stationary(g, 0, 0.6);
  EXPECT_GT(strong[0], weak[0]);
}

TEST(OriginatorBiased, FixedPointProperty) {
  const Graph g = petersen_graph();
  const Distribution p = originator_stationary(g, 2, 0.25);
  Distribution out;
  step_originator_biased(g, p, out, 0.25, 2);
  for (VertexId v = 0; v < 10; ++v) EXPECT_NEAR(out[v], p[v], 1e-9);
}

TEST(OriginatorBiased, BadArgsThrow) {
  const Graph g = petersen_graph();
  const Distribution p = dirac(10, 0);
  Distribution out;
  EXPECT_THROW(step_originator_biased(g, p, out, 0.5, 99), std::out_of_range);
  EXPECT_THROW(originator_stationary(g, 0, 0.0), std::invalid_argument);
  EXPECT_THROW(originator_stationary(g, 99, 0.5), std::out_of_range);
}

TEST(ModulatedMixing, InvalidInputsThrow) {
  EXPECT_THROW(
      modulated_mixing_time(testing::disconnected_graph(), 0.1, 0.1, 4, 10, 1),
      std::invalid_argument);
  EXPECT_THROW(modulated_mixing_time(complete_graph(5), 0.1, 0.1, 0, 10, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace sntrust

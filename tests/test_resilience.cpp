// Serving-under-fire tests (DESIGN.md §16): breaker state machine, retry
// jitter, the CoDel shed controller, stale-while-revalidate backups, the
// degradation ladder, queue deadlines, churn-safe refresh, and the
// shed/drain/stop interaction regressions. Fixture names carry "Resilience"
// so the CI tsan pass picks the whole file up by filter.
#include "serve/resilience.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "dynamic/evolution.hpp"
#include "exec/fault.hpp"
#include "gen/generators.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "obs/metrics.hpp"
#include "serve/artifact_cache.hpp"
#include "serve/trust_service.hpp"
#include "util/rng.hpp"

namespace sntrust::serve {
namespace {

std::uint64_t counter_value(const char* name) {
  const obs::MetricsSnapshot snap = obs::Metrics::instance().snapshot();
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

Graph expander(VertexId n, std::uint64_t seed) {
  return largest_component(barabasi_albert(n, 4, seed)).graph;
}

class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    exec::clear_fault_plan();
    obs::metrics_reset_all();
  }
  void TearDown() override {
    exec::clear_fault_plan();
    obs::metrics_reset_all();
  }
};

constexpr std::uint64_t kMs = 1'000'000ULL;  // manual-clock ns per ms

// ---------------------------------------------------------- circuit breaker ---

TEST_F(ResilienceTest, BreakerOpensAtThresholdAndCoolsDownToHalfOpen) {
  CircuitBreaker breaker{"test", BreakerOptions{3, 100}};
  const std::uint64_t now = 1;
  EXPECT_EQ(breaker.state(now), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow(now));
  EXPECT_EQ(breaker.probe_at_ns(), 0u);
  breaker.record_failure(now);
  breaker.record_failure(now);
  EXPECT_EQ(breaker.state(now), BreakerState::kClosed);  // below threshold
  EXPECT_EQ(counter_value("serve.breaker_opens"), 0u);
  breaker.record_failure(now);  // third consecutive: trips
  EXPECT_EQ(breaker.state(now), BreakerState::kOpen);
  EXPECT_EQ(counter_value("serve.breaker_opens"), 1u);
  EXPECT_FALSE(breaker.allow(now + 50 * kMs));  // cooling down
  EXPECT_EQ(breaker.probe_at_ns(), now + 100 * kMs);
  EXPECT_EQ(breaker.state(now + 100 * kMs), BreakerState::kHalfOpen);
}

TEST_F(ResilienceTest, BreakerHalfOpenAdmitsExactlyOneProbe) {
  CircuitBreaker breaker{"probe", BreakerOptions{1, 100}};
  breaker.record_failure(1);  // threshold 1: open immediately
  const std::uint64_t probe_time = 1 + 100 * kMs;
  EXPECT_TRUE(breaker.allow(probe_time));   // first caller claims the probe
  EXPECT_FALSE(breaker.allow(probe_time));  // everyone else keeps waiting
  breaker.record_success(probe_time + 1);
  EXPECT_EQ(breaker.state(probe_time + 1), BreakerState::kClosed);
  EXPECT_EQ(counter_value("serve.breaker_closes"), 1u);
  EXPECT_TRUE(breaker.allow(probe_time + 2));  // closed again
}

TEST_F(ResilienceTest, BreakerFailedProbeReopensWithFreshCooldown) {
  CircuitBreaker breaker{"reopen", BreakerOptions{1, 100}};
  breaker.record_failure(1);
  EXPECT_EQ(counter_value("serve.breaker_opens"), 1u);
  const std::uint64_t probe_time = 1 + 100 * kMs;
  EXPECT_TRUE(breaker.allow(probe_time));
  breaker.record_failure(probe_time + 1);  // the probe itself failed
  EXPECT_EQ(breaker.state(probe_time + 2), BreakerState::kOpen);
  // Cooldown re-armed from the probe failure, not the original trip; a
  // failed probe is a continuation of the same outage, not a new open.
  EXPECT_EQ(breaker.probe_at_ns(), probe_time + 1 + 100 * kMs);
  EXPECT_EQ(counter_value("serve.breaker_opens"), 1u);
  EXPECT_EQ(counter_value("serve.breaker_closes"), 0u);
  const std::uint64_t second = probe_time + 1 + 100 * kMs;
  EXPECT_TRUE(breaker.allow(second));
  breaker.record_success(second);
  EXPECT_EQ(counter_value("serve.breaker_closes"), 1u);  // pairs balance
}

TEST_F(ResilienceTest, BreakerSuccessResetsConsecutiveFailureCount) {
  CircuitBreaker breaker{"reset", BreakerOptions{2, 100}};
  breaker.record_failure(1);
  breaker.record_success(2);  // streak broken
  breaker.record_failure(3);
  EXPECT_EQ(breaker.state(3), BreakerState::kClosed);  // 1 < threshold again
  breaker.record_failure(4);
  EXPECT_EQ(breaker.state(4), BreakerState::kOpen);
}

// --------------------------------------------------------------- retry policy ---

TEST_F(ResilienceTest, RetryBackoffIsDeterministicJitteredExponential) {
  const RetryPolicy policy{4, 500};
  EXPECT_EQ(policy.backoff_ns(0, 7), 0u);
  for (std::uint32_t retry = 1; retry <= 4; ++retry) {
    const std::uint64_t a = policy.backoff_ns(retry, 7);
    const std::uint64_t b = policy.backoff_ns(retry, 7);
    EXPECT_EQ(a, b);  // pure function of (salt, retry)
    const std::uint64_t base = 500'000ULL << (retry - 1);
    EXPECT_GE(a, base / 2);             // jitter floor 0.5x
    EXPECT_LT(a, base + base / 2 + 1);  // jitter ceiling 1.5x
  }
  // Different salts decorrelate concurrent resolvers.
  EXPECT_NE(policy.backoff_ns(1, 7), policy.backoff_ns(1, 8));
}

// ------------------------------------------------------------ shed controller ---

TEST_F(ResilienceTest, ShedEngagesAfterSustainedOverloadAndExitsAtOnce) {
  LoadShedController shed{2.0};  // target 2 ms => interval 8 ms
  ASSERT_TRUE(shed.enabled());
  const std::uint64_t now = 1;
  shed.observe_sojourn(5.0, now);  // above: starts the trend clock
  EXPECT_FALSE(shed.shedding());
  shed.observe_sojourn(5.0, now + 4 * kMs);  // above, interval not yet full
  EXPECT_FALSE(shed.shedding());
  shed.observe_sojourn(5.0, now + 9 * kMs);  // above for a full interval
  EXPECT_TRUE(shed.shedding());
  shed.observe_sojourn(1.0, now + 10 * kMs);  // first below-target: exit
  EXPECT_FALSE(shed.shedding());
  // The trend restarts from scratch after an exit.
  shed.observe_sojourn(5.0, now + 11 * kMs);
  EXPECT_FALSE(shed.shedding());
}

TEST_F(ResilienceTest, ShedForceEngagesImmediatelyAndZeroTargetDisables) {
  LoadShedController shed{1.0};
  shed.force_shed();
  EXPECT_TRUE(shed.shedding());
  shed.observe_sojourn(0.1, 99 * kMs);  // below target releases it
  EXPECT_FALSE(shed.shedding());

  LoadShedController disabled{0.0};
  EXPECT_FALSE(disabled.enabled());
  disabled.force_shed();
  EXPECT_FALSE(disabled.shedding());  // never sheds when disabled
}

TEST_F(ResilienceTest, OptionsFromEnvClampAndDefault) {
  ::setenv("SNTRUST_SERVE_SHED_MS", "2.5", 1);
  ::setenv("SNTRUST_SERVE_STALE_MS", "-4", 1);
  ::setenv("SNTRUST_SERVE_RETRIES", "99", 1);
  const ResilienceOptions options = ResilienceOptions::from_env();
  EXPECT_DOUBLE_EQ(options.shed_ms, 2.5);
  EXPECT_DOUBLE_EQ(options.stale_ms, 0.0);  // negative clamps to disabled
  EXPECT_EQ(options.retries, 16u);          // capped
  ::unsetenv("SNTRUST_SERVE_SHED_MS");
  ::unsetenv("SNTRUST_SERVE_STALE_MS");
  ::unsetenv("SNTRUST_SERVE_RETRIES");
  const ResilienceOptions defaults = ResilienceOptions::from_env();
  EXPECT_DOUBLE_EQ(defaults.shed_ms, 0.0);        // shedding is opt-in
  EXPECT_DOUBLE_EQ(defaults.stale_ms, 60'000.0);  // stale serving opt-out
  EXPECT_EQ(defaults.retries, 2u);
}

// ------------------------------------------------------- stale-artifact cache ---

TEST_F(ResilienceTest, StaleBackupSurvivesInvalidationAndEviction) {
  ArtifactCache cache{1};  // capacity 1: every second insert evicts
  const ArtifactKey a{ArtifactKind::kCoreness, 5, 10};
  const ArtifactKey b{ArtifactKind::kCoreness, 5, 20};
  cache.get_or_compute<CorenessArtifact>(a, [] {
    CorenessArtifact artifact;
    artifact.degeneracy = 7;
    return artifact;
  });
  cache.get_or_compute<CorenessArtifact>(b, [] {
    CorenessArtifact artifact;
    artifact.degeneracy = 9;
    return artifact;
  });  // evicts a
  EXPECT_EQ(counter_value("serve.cache_evictions"), 1u);
  cache.invalidate_all();  // drops b too
  EXPECT_EQ(cache.size(), 0u);
  // Flow conservation at quiescence.
  EXPECT_EQ(counter_value("serve.cache_inserts"),
            counter_value("serve.cache_evictions") +
                counter_value("serve.cache_invalidations") + cache.size());

  // The last-good backup for (kCoreness, 5) is b's artifact — the most
  // recent successful insert — and it outlived both eviction and
  // invalidation.
  const auto stale = cache.lookup_stale(ArtifactKind::kCoreness, 5);
  ASSERT_TRUE(stale.has_value());
  EXPECT_EQ(stale->graph_fp, 20u);
  EXPECT_EQ(
      static_cast<const CorenessArtifact*>(stale->value.get())->degeneracy,
      9u);
  EXPECT_GT(stale->stored_ns, 0u);
  EXPECT_EQ(counter_value("serve.cache_stale_hits"), 1u);

  EXPECT_FALSE(cache.lookup_stale(ArtifactKind::kSybilRank, 5).has_value());
  cache.clear_stale();
  EXPECT_FALSE(cache.lookup_stale(ArtifactKind::kCoreness, 5).has_value());
}

TEST_F(ResilienceTest, InvalidationStormKeepsCountersBalanced) {
  // N threads invalidating while M threads query: no use-after-evict (the
  // shared_ptr keeps served artifacts alive), and the flow conservation
  // inserts == evictions + invalidations + size() holds exactly once the
  // storm quiesces.
  ArtifactCache cache{4};
  constexpr int kInvalidators = 3;
  constexpr int kQueriers = 4;
  constexpr int kRounds = 400;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kQueriers; ++t) {
    threads.emplace_back([&cache, &go, t] {
      while (!go.load()) std::this_thread::yield();
      Rng rng{static_cast<std::uint64_t>(t) + 1};
      for (int i = 0; i < kRounds; ++i) {
        const ArtifactKey key{ArtifactKind::kCoreness, rng.uniform(3),
                              rng.uniform(5)};
        const auto artifact =
            cache.get_or_compute<CorenessArtifact>(key, [&key] {
              CorenessArtifact made;
              made.degeneracy = static_cast<std::uint32_t>(key.graph_fp);
              return made;
            });
        // Touch the artifact after the cache may have dropped it: the
        // shared_ptr contract is what makes the eviction storm safe.
        EXPECT_EQ(artifact->degeneracy, key.graph_fp);
      }
    });
  }
  for (int t = 0; t < kInvalidators; ++t) {
    threads.emplace_back([&cache, &go, t] {
      while (!go.load()) std::this_thread::yield();
      Rng rng{static_cast<std::uint64_t>(t) + 100};
      for (int i = 0; i < kRounds; ++i) {
        if (rng.bernoulli(0.2))
          cache.invalidate_all();
        else
          cache.invalidate_graph(rng.uniform(5));
      }
    });
  }
  go.store(true);
  for (std::thread& t : threads) t.join();

  const std::uint64_t inserts = counter_value("serve.cache_inserts");
  EXPECT_GT(inserts, 0u);
  EXPECT_EQ(inserts, counter_value("serve.cache_evictions") +
                         counter_value("serve.cache_invalidations") +
                         cache.size());
  // Every get_or_compute either hit or missed, exactly once.
  EXPECT_EQ(counter_value("serve.cache_hits") +
                counter_value("serve.cache_misses"),
            static_cast<std::uint64_t>(kQueriers) * kRounds);
}

// ----------------------------------------------- degraded-mode trust service ---

TrustService::Options resilient_options() {
  TrustService::Options options;
  options.config.seeds = {0, 1, 2};
  options.config.gatekeeper.seed = 7;
  options.resilience.shed_ms = 0.0;  // shedding off unless a test opts in
  options.resilience.stale_ms = 60'000.0;
  options.resilience.retries = 1;
  options.resilience.breaker = BreakerOptions{2, 150};
  return options;
}

std::vector<Query> all_kind_queries(VertexId vertex) {
  std::vector<Query> queries;
  for (const QueryKind kind : {QueryKind::kAdmission, QueryKind::kTrustScore,
                               QueryKind::kCoreness, QueryKind::kLandmark}) {
    for (const Defense defense : {Defense::kSybilRank, Defense::kGateKeeper}) {
      Query q;
      q.kind = kind;
      q.defense = defense;
      q.vertex = vertex;
      queries.push_back(q);
    }
  }
  return queries;
}

TEST_F(ResilienceTest, BreakerTripsServesStaleThenProbesAndRecovers) {
  TrustService service{expander(200, 21), resilient_options()};
  const std::vector<Query> queries = all_kind_queries(5);
  std::vector<Answer> fresh(queries.size());
  service.answer_batch(queries, fresh);
  for (const Answer& a : fresh) {
    ASSERT_EQ(a.status, QueryStatus::kOk);
    ASSERT_FALSE(a.degraded);
    ASSERT_DOUBLE_EQ(a.staleness_ms, 0.0);
  }

  // Break recomputation and force a re-resolve: every kind fails (retries
  // exhausted), every breaker opens, and answers come from the last-good
  // stale backups — same values, flagged degraded with a staleness bound.
  exec::set_fault_plan({"serve.artifact", 1, 1.0});
  service.cache().invalidate_all();
  std::vector<Answer> degraded(queries.size());
  service.answer_batch(queries, degraded);
  EXPECT_GE(counter_value("serve.breaker_opens"), 1u);
  EXPECT_GT(counter_value("serve.retries"), 0u);
  EXPECT_GT(counter_value("serve.cache_stale_hits"), 0u);
  EXPECT_GT(counter_value("serve.degraded"), 0u);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(degraded[i].status, QueryStatus::kOk);
    EXPECT_TRUE(degraded[i].degraded);
    EXPECT_GT(degraded[i].staleness_ms, 0.0);
    // The stale answer is the pre-break answer (same artifacts), honestly
    // labelled: value/percentile/admitted/source all match.
    EXPECT_EQ(degraded[i].value, fresh[i].value);
    EXPECT_EQ(degraded[i].percentile, fresh[i].percentile);
    EXPECT_EQ(degraded[i].admitted, fresh[i].admitted);
    EXPECT_EQ(degraded[i].source, fresh[i].source);
  }

  // Heal the fault and let the cooldown elapse: the half-open probes
  // succeed, the breakers close, and answers are bitwise-fresh again.
  exec::clear_fault_plan();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  std::vector<Answer> recovered(queries.size());
  service.answer_batch(queries, recovered);
  EXPECT_GE(counter_value("serve.breaker_closes"), 1u);
  EXPECT_EQ(std::memcmp(recovered.data(), fresh.data(),
                        queries.size() * sizeof(Answer)),
            0);
}

TEST_F(ResilienceTest, LadderEmptyWithoutStaleRefusesAsOverloaded) {
  TrustService::Options options = resilient_options();
  options.precompute = false;
  options.resilience.stale_ms = 0.0;  // stale serving disabled
  TrustService service{expander(200, 22), std::move(options)};
  exec::set_fault_plan({"serve.artifact", 3, 1.0});
  Query q;
  q.kind = QueryKind::kCoreness;
  q.vertex = 3;
  const Answer refused = service.answer(q);
  EXPECT_EQ(refused.status, QueryStatus::kOverloaded);
  EXPECT_FALSE(refused.degraded);
  EXPECT_GT(counter_value("serve.unavailable"), 0u);
  EXPECT_EQ(counter_value("serve.degraded"), 0u);
  exec::clear_fault_plan();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));  // cooldown
  const Answer healed = service.answer(q);
  EXPECT_EQ(healed.status, QueryStatus::kOk);
  EXPECT_FALSE(healed.degraded);
}

TEST_F(ResilienceTest, ChurnDemotesLandmarkToCorenessFallback) {
  TrustService service{expander(200, 23), resilient_options()};
  Query q;
  q.kind = QueryKind::kLandmark;
  q.vertex = 4;
  ASSERT_EQ(service.answer(q).status, QueryStatus::kOk);

  // Churn the graph while recomputation is broken: the refresh can only
  // install stale slots. A stale landmark artifact is tied to the *old*
  // graph's degrees, so the ladder must fall through to coreness.
  exec::set_fault_plan({"serve.artifact", 5, 1.0});
  EdgeBatch batch;
  batch.insertions = {{0, 300}, {1, 301}, {2, 302}};  // guaranteed-new edges
  service.apply_edges(batch);
  service.wait_for_refresh();
  const Answer fallback = service.answer(q);
  EXPECT_EQ(fallback.status, QueryStatus::kOk);
  EXPECT_TRUE(fallback.degraded);
  EXPECT_EQ(fallback.source, AnswerSource::kCoreness);
  EXPECT_GT(fallback.staleness_ms, 0.0);
}

TEST_F(ResilienceTest, ApplyEdgesRefreshesInBackgroundToFreshAnswers) {
  TrustService service{expander(200, 24), resilient_options()};
  const std::uint64_t epoch0 = service.epoch();
  const std::vector<Query> queries = all_kind_queries(6);
  std::vector<Answer> before(queries.size());
  service.answer_batch(queries, before);

  EdgeBatch batch;
  batch.insertions = {{0, 50}, {3, 60}, {5, 70}, {2, 80}};
  batch.removals = {service.graph().edges().front()};
  service.apply_edges(batch);
  EXPECT_EQ(service.epoch(), epoch0 + 1);
  service.wait_for_refresh();

  // Post-refresh answers are fresh (non-degraded) and bitwise identical to
  // an uncached recompute against the post-churn graph.
  std::vector<Answer> after(queries.size());
  service.answer_batch(queries, after);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(after[i].status, QueryStatus::kOk);
    ASSERT_FALSE(after[i].degraded);
    const Answer reference = service.answer_uncached(queries[i]);
    ASSERT_EQ(std::memcmp(&after[i], &reference, sizeof(Answer)), 0);
  }

  // Back-to-back churn coalesces into the single-flight refresh and still
  // converges to one consistent, fresh epoch.
  EdgeBatch more;
  more.insertions = {{10, 310}, {11, 311}};
  service.apply_edges(more);
  EdgeBatch again;
  again.insertions = {{12, 312}};
  service.apply_edges(again);
  service.wait_for_refresh();
  EXPECT_EQ(service.epoch(), epoch0 + 3);
  Query probe;
  probe.kind = QueryKind::kCoreness;
  probe.vertex = 312;
  const Answer fresh = service.answer(probe);
  EXPECT_EQ(fresh.status, QueryStatus::kOk);
  EXPECT_FALSE(fresh.degraded);
}

TEST_F(ResilienceTest, ApplyEdgeBatchSemantics) {
  GraphBuilder builder{4};
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 3);
  const Graph g = builder.build();
  EdgeBatch batch;
  batch.insertions = {{3, 5}, {5, 5}, {0, 1}};  // grows n; self loop dropped
  batch.removals = {{2, 1}, {7, 8}};            // unordered pair; absent edge
  const Graph updated = apply_edge_batch(g, batch);
  EXPECT_EQ(updated.num_vertices(), 6u);
  EXPECT_TRUE(updated.has_edge(0, 1));   // duplicate insert collapsed
  EXPECT_FALSE(updated.has_edge(1, 2));  // removed (normalized order)
  EXPECT_TRUE(updated.has_edge(2, 3));
  EXPECT_TRUE(updated.has_edge(3, 5));
  EXPECT_EQ(updated.num_edges(), 3u);
  // A removal of a pair also inserted in the same batch wins.
  EdgeBatch conflicted;
  conflicted.insertions = {{0, 2}};
  conflicted.removals = {{0, 2}};
  EXPECT_FALSE(apply_edge_batch(g, conflicted).has_edge(0, 2));
}

// ------------------------------------------------- overload: shed + deadline ---

TEST_F(ResilienceTest, QueueDeadlineExpiresWhileWorkerIsParked) {
  TrustService::Options options = resilient_options();
  options.batch_size = 8;
  TrustService service{expander(200, 25), std::move(options)};
  service.start();
  // Park the drain worker 80 ms per batch (the serve.queue stall fault);
  // queries carrying a 1 ms queue-wait deadline must complete as
  // kDeadlineExceeded instead of being computed late.
  exec::set_fault_plan(
      {"serve.queue", 9, 1.0, exec::FaultPlan::Action::kSleep, 80});
  std::vector<Query> queries(4);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    queries[i].kind = QueryKind::kCoreness;
    queries[i].vertex = static_cast<VertexId>(i);
    queries[i].deadline_ms = 1;
  }
  std::vector<Answer> answers(queries.size());
  EXPECT_EQ(service.ask_batch(queries, answers), 0u);
  for (const Answer& a : answers)
    EXPECT_EQ(a.status, QueryStatus::kDeadlineExceeded);
  EXPECT_EQ(counter_value("serve.deadline_exceeded"), queries.size());
  exec::clear_fault_plan();
  // Without a deadline the same pipeline answers normally again.
  for (Query& q : queries) q.deadline_ms = 0;
  EXPECT_EQ(service.ask_batch(queries, answers), queries.size());
  service.stop();
}

TEST_F(ResilienceTest, FullRingForceShedsInsteadOfBlockingAndRecovers) {
  TrustService::Options options = resilient_options();
  options.resilience.shed_ms = 1.0;
  options.batch_size = 1;
  options.queue_capacity = 4;
  TrustService service{expander(200, 26), std::move(options)};
  service.start();
  // Park the worker so the 4-slot ring fills; the overflow must shed
  // immediately (kOverloaded) rather than block on the parked worker.
  exec::set_fault_plan(
      {"serve.queue", 11, 1.0, exec::FaultPlan::Action::kSleep, 60});
  std::vector<Query> queries(12);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    queries[i].kind = QueryKind::kCoreness;
    queries[i].vertex = static_cast<VertexId>(i);
  }
  std::vector<Answer> answers(queries.size());
  const std::size_t served = service.ask_batch(queries, answers);
  EXPECT_LT(served, queries.size());
  EXPECT_GT(counter_value("serve.shed"), 0u);
  bool saw_overloaded = false;
  for (const Answer& a : answers)
    if (a.status == QueryStatus::kOverloaded) saw_overloaded = true;
  EXPECT_TRUE(saw_overloaded);
  // Heal the stall: the controller exits shed (idle ring counts as a zero
  // sojourn) and service resumes with fresh answers.
  exec::clear_fault_plan();
  Query q;
  q.kind = QueryKind::kCoreness;
  q.vertex = 1;
  Answer ok;
  for (int i = 0; i < 500; ++i) {
    ok = service.ask(q);
    if (ok.status == QueryStatus::kOk) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(ok.status, QueryStatus::kOk);
  EXPECT_FALSE(ok.degraded);
  service.stop();
}

TEST_F(ResilienceTest, StopNeverDeadlocksWhileSheddingAndDrainingRace) {
  // Regression: stop() while (a) the drain worker is parked mid-batch on a
  // serve.queue stall, (b) the ring is full, and (c) clients keep
  // submitting under shed. Every ticket must complete and stop() must
  // return — the shed path never leaves a client blocked on the ring.
  // (The ctest timeout is the watchdog for this test.)
  TrustService::Options options = resilient_options();
  options.resilience.shed_ms = 0.5;
  options.batch_size = 2;
  options.queue_capacity = 8;
  TrustService service{expander(200, 27), std::move(options)};
  service.start();
  exec::set_fault_plan(
      {"serve.queue", 13, 1.0, exec::FaultPlan::Action::kSleep, 30});
  std::atomic<bool> stop_submitting{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&service, &stop_submitting, c] {
      std::vector<Query> queries(16);
      for (std::size_t i = 0; i < queries.size(); ++i) {
        queries[i].kind = QueryKind::kCoreness;
        queries[i].vertex = static_cast<VertexId>((c * 16 + i) % 100);
      }
      std::vector<Answer> answers(queries.size());
      while (!stop_submitting.load()) {
        service.ask_batch(queries, answers);
        // Every ticket completes with an explicit terminal status.
        for (const Answer& a : answers)
          EXPECT_NE(a.status, QueryStatus::kInvalidVertex);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.stop();  // must return despite the parked worker + full ring
  stop_submitting.store(true);
  for (std::thread& t : clients) t.join();
  EXPECT_FALSE(service.running());
}

TEST_F(ResilienceTest, QueueFaultThrowShedsBatchAsOverloaded) {
  TrustService::Options options = resilient_options();
  options.resilience.retries = 0;  // no second chance: batch sheds at once
  options.batch_size = 4;
  TrustService service{expander(200, 28), std::move(options)};
  service.start();
  exec::set_fault_plan({"serve.queue", 17, 1.0});  // default action: throw
  std::vector<Query> queries(4);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    queries[i].kind = QueryKind::kCoreness;
    queries[i].vertex = static_cast<VertexId>(i);
  }
  std::vector<Answer> answers(queries.size());
  EXPECT_EQ(service.ask_batch(queries, answers), 0u);
  for (const Answer& a : answers)
    EXPECT_EQ(a.status, QueryStatus::kOverloaded);
  EXPECT_GE(counter_value("serve.shed"), queries.size());
  exec::clear_fault_plan();
  EXPECT_EQ(service.ask_batch(queries, answers), queries.size());
  service.stop();
}

}  // namespace
}  // namespace sntrust::serve

#include "cores/core_profile.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::complete_graph;
using testing::path_graph;
using testing::two_cliques;

TEST(CoreProfile, PathSingleLevel) {
  const auto levels = core_profile(path_graph(5));
  ASSERT_EQ(levels.size(), 1u);
  EXPECT_EQ(levels[0].k, 1u);
  EXPECT_EQ(levels[0].vertices, 5u);
  EXPECT_DOUBLE_EQ(levels[0].nu, 1.0);
  EXPECT_DOUBLE_EQ(levels[0].tau, 1.0);
  EXPECT_EQ(levels[0].num_components, 1u);
}

TEST(CoreProfile, DirectBridgeKeepsCoreConnected) {
  // Two K_6 joined by a direct bridge: both bridge endpoints keep coreness 5,
  // so the bridge edge itself survives in the 5-core and the core stays a
  // single component — the subtle reason slow graphs need low-coreness
  // connectors to fragment.
  const auto levels = core_profile(two_cliques(6));
  ASSERT_EQ(levels.size(), 5u);
  EXPECT_EQ(levels[4].k, 5u);
  EXPECT_EQ(levels[4].num_components, 1u);
  EXPECT_EQ(levels[4].vertices, 12u);
}

TEST(CoreProfile, LowCorenessConnectorSplitsCores) {
  // Two K_6 joined through a middle vertex of degree 2: the connector has
  // coreness 2, so at k >= 3 the cliques separate into two cores.
  GraphBuilder b{13};
  for (VertexId u = 0; u < 6; ++u)
    for (VertexId v = u + 1; v < 6; ++v) {
      b.add_edge(u, v);
      b.add_edge(6 + u, 6 + v);
    }
  b.add_edge(5, 12);
  b.add_edge(12, 6);
  const auto levels = core_profile(b.build());
  ASSERT_EQ(levels.size(), 5u);
  EXPECT_EQ(levels[0].num_components, 1u);  // k=1: whole graph
  EXPECT_EQ(levels[2].k, 3u);
  EXPECT_EQ(levels[2].num_components, 2u);  // connector dropped
  EXPECT_EQ(levels[4].num_components, 2u);
  EXPECT_EQ(levels[4].largest_component, 6u);
}

TEST(CoreProfile, CompleteGraphOneCoreAllLevels) {
  const auto levels = core_profile(complete_graph(7));
  ASSERT_EQ(levels.size(), 6u);
  for (const CoreLevel& level : levels) {
    EXPECT_EQ(level.num_components, 1u);
    EXPECT_EQ(level.vertices, 7u);
    EXPECT_DOUBLE_EQ(level.nu, 1.0);
  }
}

TEST(CoreProfile, NuAndTauAreMonotoneNonIncreasing) {
  const Graph g = powerlaw_cluster(500, 4, 0.5, 91);
  const auto levels = core_profile(g);
  for (std::size_t i = 1; i < levels.size(); ++i) {
    EXPECT_LE(levels[i].nu, levels[i - 1].nu + 1e-12);
    EXPECT_LE(levels[i].tau, levels[i - 1].tau + 1e-12);
  }
}

TEST(CoreProfile, EdgeCountsConsistentWithSubgraph) {
  const Graph g = erdos_renyi(200, 0.05, 92);
  const CoreDecomposition d = core_decomposition(g);
  const auto levels = core_profile(g, d);
  for (const CoreLevel& level : levels) {
    // Rebuild the induced core subgraph and compare edge counts exactly.
    const auto members = d.core_members(level.k);
    const ExtractedGraph sub = induced_subgraph(g, members);
    EXPECT_EQ(level.vertices, sub.graph.num_vertices());
    EXPECT_EQ(level.edges, sub.graph.num_edges());
    EXPECT_EQ(level.num_components,
              connected_components(sub.graph).count());
  }
}

TEST(CoreProfile, EmptyGraphNoLevels) {
  EXPECT_TRUE(core_profile(Graph{}).empty());
  GraphBuilder b{5};
  EXPECT_TRUE(core_profile(b.build()).empty());
}

TEST(CoreProfile, FragmentedAffiliationVsSingleCorePowerlaw) {
  // The paper's Fig. 5 signature: the co-authorship analogue fragments into
  // multiple cores as k grows; the heavy-tailed analogue keeps one core.
  AffiliationParams params;
  params.num_actors = 800;
  params.num_groups = 420;
  params.min_group = 3;
  params.max_group = 6;
  params.regions = 16;
  params.cross_region_p = 0.08;
  const Graph slow = largest_component(affiliation_graph(params, 93)).graph;
  const Graph fast = largest_component(barabasi_albert(800, 4, 93)).graph;

  std::uint32_t slow_max_components = 0;
  for (const CoreLevel& level : core_profile(slow))
    slow_max_components = std::max(slow_max_components, level.num_components);
  std::uint32_t fast_max_components = 0;
  for (const CoreLevel& level : core_profile(fast))
    fast_max_components = std::max(fast_max_components, level.num_components);

  EXPECT_GT(slow_max_components, 1u);
  EXPECT_EQ(fast_max_components, 1u);
}

TEST(CoreProfile, LargestComponentNeverExceedsVertices) {
  const Graph g = planted_partition(300, 6, 0.15, 0.005, 94);
  for (const CoreLevel& level : core_profile(g)) {
    EXPECT_LE(level.largest_component, level.vertices);
    EXPECT_GE(level.num_components, 1u);
  }
}

}  // namespace
}  // namespace sntrust

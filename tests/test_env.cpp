#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace sntrust {
namespace {

constexpr const char* kVar = "SNTRUST_TEST_ENV_VAR";

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv(kVar); }
};

TEST_F(EnvTest, BoolFallsBackWhenUnset) {
  unsetenv(kVar);
  EXPECT_TRUE(env_bool(kVar, true));
  EXPECT_FALSE(env_bool(kVar, false));
}

TEST_F(EnvTest, BoolParsesTruthyValues) {
  for (const char* value : {"1", "true", "TRUE", "yes", "Yes", "on", "ON"}) {
    setenv(kVar, value, 1);
    EXPECT_TRUE(env_bool(kVar, false)) << value;
  }
}

TEST_F(EnvTest, BoolParsesFalsyValues) {
  for (const char* value : {"0", "false", "FALSE", "no", "No", "off", "OFF"}) {
    setenv(kVar, value, 1);
    EXPECT_FALSE(env_bool(kVar, true)) << value;
  }
}

TEST_F(EnvTest, BoolFallsBackOnGarbage) {
  setenv(kVar, "maybe", 1);
  EXPECT_TRUE(env_bool(kVar, true));
  EXPECT_FALSE(env_bool(kVar, false));
}

TEST_F(EnvTest, BoolFallsBackOnEmpty) {
  setenv(kVar, "", 1);
  EXPECT_TRUE(env_bool(kVar, true));
}

TEST_F(EnvTest, StringFallsBackWhenUnsetOrEmpty) {
  unsetenv(kVar);
  EXPECT_EQ(env_string(kVar, "fallback"), "fallback");
  setenv(kVar, "", 1);
  EXPECT_EQ(env_string(kVar, "fallback"), "fallback");
}

TEST_F(EnvTest, StringReturnsRawValue) {
  setenv(kVar, "/tmp/trace.json", 1);
  EXPECT_EQ(env_string(kVar, ""), "/tmp/trace.json");
}

TEST_F(EnvTest, IntAndDoubleStillParse) {
  setenv(kVar, "42", 1);
  EXPECT_EQ(env_int(kVar, 0), 42);
  setenv(kVar, "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double(kVar, 0.0), 2.5);
}

}  // namespace
}  // namespace sntrust

#include "core/property_suite.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

PropertySuiteOptions quick_options() {
  PropertySuiteOptions options;
  options.mixing_sources = 10;
  options.mixing_max_walk = 80;
  options.expansion_sources = 200;
  options.seed = 42;
  return options;
}

TEST(PropertySuite, ReportBasicCountsMatch) {
  const Graph g = largest_component(barabasi_albert(300, 4, 1)).graph;
  const PropertyReport report = measure_properties(g, quick_options());
  EXPECT_EQ(report.nodes, g.num_vertices());
  EXPECT_EQ(report.edges, g.num_edges());
  EXPECT_DOUBLE_EQ(report.epsilon, 1.0 / g.num_vertices());
}

TEST(PropertySuite, StructuralStatsPopulated) {
  const Graph g = largest_component(powerlaw_cluster(300, 4, 0.6, 1)).graph;
  const PropertyReport report = measure_properties(g, quick_options());
  EXPECT_NEAR(report.mean_degree, 2.0 * g.num_edges() / g.num_vertices(),
              1e-12);
  EXPECT_GT(report.clustering, 0.1);  // Holme-Kim has triangles
  EXPECT_GE(report.assortativity, -1.0);
  EXPECT_LE(report.assortativity, 1.0);
  EXPECT_GT(report.diameter_lb, 1u);
}

TEST(PropertySuite, ExpanderClassifiedFastSingleCore) {
  const Graph g = largest_component(barabasi_albert(500, 4, 2)).graph;
  const PropertyReport report = measure_properties(g, quick_options());
  const PropertyVerdict verdict = classify(report);
  EXPECT_TRUE(verdict.single_core);
  EXPECT_TRUE(verdict.good_expander);
  EXPECT_LT(report.slem.mu, 0.95);
  EXPECT_EQ(report.max_core_count, 1u);
}

TEST(PropertySuite, CommunityGraphClassifiedSlow) {
  const Graph g =
      largest_component(planted_partition(500, 10, 0.3, 0.0008, 3)).graph;
  const PropertyReport report = measure_properties(g, quick_options());
  const PropertyVerdict verdict = classify(report);
  EXPECT_FALSE(verdict.fast_mixing);
  EXPECT_GT(report.slem.mu, 0.97);
}

TEST(PropertySuite, MixingCurveConsistentWithEstimate) {
  const Graph g = largest_component(barabasi_albert(300, 5, 4)).graph;
  const PropertyReport report = measure_properties(g, quick_options());
  if (report.mixing_time != 0xFFFFFFFFu) {
    const auto worst = report.mixing.max_curve();
    EXPECT_LE(worst[report.mixing_time], report.epsilon);
    if (report.mixing_time > 0) {
      EXPECT_GT(worst[report.mixing_time - 1], report.epsilon);
    }
  }
}

TEST(PropertySuite, CoreLevelsCoverDegeneracy) {
  const Graph g = largest_component(powerlaw_cluster(400, 4, 0.5, 5)).graph;
  const PropertyReport report = measure_properties(g, quick_options());
  EXPECT_EQ(report.core_levels.size(), report.degeneracy);
  EXPECT_GT(report.top_core_relative_size, 0.0);
  EXPECT_LE(report.top_core_relative_size, 1.0);
}

TEST(PropertySuite, ExpansionProfilePresent) {
  const Graph g = largest_component(barabasi_albert(300, 3, 6)).graph;
  const PropertyReport report = measure_properties(g, quick_options());
  EXPECT_FALSE(report.expansion.points.empty());
  EXPECT_GT(report.min_expansion_factor, 0.0);
}

TEST(PropertySuite, FastGraphBeatsSlowGraphOnAllThreeAxes) {
  // The paper's central cross-property claim, end to end.
  const Graph fast = largest_component(barabasi_albert(600, 4, 7)).graph;
  const Graph slow =
      largest_component(planted_partition(600, 12, 0.3, 0.002, 7)).graph;
  const PropertyReport fast_report = measure_properties(fast, quick_options());
  const PropertyReport slow_report = measure_properties(slow, quick_options());

  EXPECT_LT(fast_report.slem.mu, slow_report.slem.mu);
  EXPECT_LE(fast_report.max_core_count, slow_report.max_core_count);
  EXPECT_GT(fast_report.min_expansion_factor,
            slow_report.min_expansion_factor);
}

TEST(PropertySuite, InvalidInputsThrow) {
  EXPECT_THROW(measure_properties(Graph{}, quick_options()),
               std::invalid_argument);
  EXPECT_THROW(measure_properties(testing::disconnected_graph(),
                                  quick_options()),
               std::invalid_argument);
}

TEST(PropertySuite, DeterministicForSeed) {
  const Graph g = largest_component(barabasi_albert(200, 3, 8)).graph;
  const PropertyReport a = measure_properties(g, quick_options());
  const PropertyReport b = measure_properties(g, quick_options());
  EXPECT_DOUBLE_EQ(a.slem.mu, b.slem.mu);
  EXPECT_EQ(a.mixing_time, b.mixing_time);
  EXPECT_EQ(a.mixing.sources, b.mixing.sources);
  EXPECT_DOUBLE_EQ(a.min_expansion_factor, b.min_expansion_factor);
}

TEST(PropertySuite, CustomEpsilonRespected) {
  const Graph g = largest_component(barabasi_albert(200, 4, 9)).graph;
  PropertySuiteOptions options = quick_options();
  options.epsilon = 0.25;
  const PropertyReport report = measure_properties(g, options);
  EXPECT_DOUBLE_EQ(report.epsilon, 0.25);
  // A quarter-TVD target is reached very quickly on an expander.
  EXPECT_LE(report.mixing_time, 10u);
}

}  // namespace
}  // namespace sntrust

#include "sybil/sybilinfer.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"

namespace sntrust {
namespace {

Graph expander(VertexId n, std::uint64_t seed) {
  return largest_component(barabasi_albert(n, 4, seed)).graph;
}

TEST(SybilInfer, CleanGraphAcceptsEveryone) {
  const Graph g = expander(300, 1);
  SybilInferParams params;
  params.seed = 1;
  const SybilInferResult result = run_sybilinfer(g, 0, params);
  EXPECT_EQ(result.cut, g.num_vertices());
  for (const auto flag : result.accepted) EXPECT_TRUE(flag);
}

TEST(SybilInfer, ScoresNearOneOnCleanGraph) {
  const Graph g = expander(300, 2);
  SybilInferParams params;
  params.seed = 2;
  params.num_traces = 100000;
  const SybilInferResult result = run_sybilinfer(g, 0, params);
  double mean = 0.0;
  for (const double s : result.scores) mean += s;
  mean /= result.scores.size();
  EXPECT_NEAR(mean, 1.0, 0.25);
}

TEST(SybilInfer, DetectsWeaklyAttachedSybilRegion) {
  const Graph honest = expander(500, 3);
  AttackParams attack;
  attack.num_sybils = 250;
  attack.attack_edges = 3;
  attack.seed = 3;
  const AttackedGraph attacked{honest, attack};
  SybilInferParams params;
  params.seed = 3;
  const PairwiseEvaluation eval = evaluate_sybilinfer(attacked, 0, params);
  EXPECT_GT(eval.honest_accept_fraction, 0.8);
  // 250 sybils over 3 edges would be 83 per edge unfiltered.
  EXPECT_LT(eval.sybils_per_attack_edge, 40.0);
}

TEST(SybilInfer, RankingPutsHonestFirstUnderWeakAttack) {
  const Graph honest = expander(400, 4);
  AttackParams attack;
  attack.num_sybils = 200;
  attack.attack_edges = 2;
  attack.seed = 4;
  const AttackedGraph attacked{honest, attack};
  SybilInferParams params;
  params.seed = 4;
  const SybilInferResult result =
      run_sybilinfer(attacked.graph(), 0, params);
  EXPECT_GT(ranking_auc(result.ranking, attacked), 0.9);
}

TEST(SybilInfer, MoreAttackEdgesWeakenDetection) {
  const Graph honest = expander(400, 5);
  double auc[2];
  const std::uint32_t edges[2] = {2, 150};
  for (int i = 0; i < 2; ++i) {
    AttackParams attack;
    attack.num_sybils = 200;
    attack.attack_edges = edges[i];
    attack.seed = 5;
    const AttackedGraph attacked{honest, attack};
    SybilInferParams params;
    params.seed = 5;
    const SybilInferResult result =
        run_sybilinfer(attacked.graph(), 0, params);
    auc[i] = ranking_auc(result.ranking, attacked);
  }
  EXPECT_GT(auc[0], auc[1]);
}

TEST(SybilInfer, BadArgsThrow) {
  const Graph g = expander(100, 6);
  SybilInferParams params;
  EXPECT_THROW(run_sybilinfer(g, 999, params), std::out_of_range);
  GraphBuilder b{3};
  EXPECT_THROW(run_sybilinfer(b.build(), 0, params), std::invalid_argument);
}

}  // namespace
}  // namespace sntrust

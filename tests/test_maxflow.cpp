#include "flow/maxflow.hpp"

#include <gtest/gtest.h>

namespace sntrust {
namespace {

TEST(MaxFlow, SingleArc) {
  FlowNetwork net{2};
  net.add_arc(0, 1, 7);
  EXPECT_EQ(net.max_flow(0, 1), 7u);
  EXPECT_EQ(net.arc_flow(0), 7u);
}

TEST(MaxFlow, SeriesBottleneck) {
  FlowNetwork net{3};
  net.add_arc(0, 1, 10);
  net.add_arc(1, 2, 3);
  EXPECT_EQ(net.max_flow(0, 2), 3u);
}

TEST(MaxFlow, ParallelPathsAdd) {
  FlowNetwork net{4};
  net.add_arc(0, 1, 4);
  net.add_arc(1, 3, 4);
  net.add_arc(0, 2, 5);
  net.add_arc(2, 3, 5);
  EXPECT_EQ(net.max_flow(0, 3), 9u);
}

TEST(MaxFlow, ClassicDiamondWithCrossEdge) {
  // The textbook example where augmenting must push back over the cross arc.
  FlowNetwork net{4};
  net.add_arc(0, 1, 2);
  net.add_arc(0, 2, 2);
  net.add_arc(1, 2, 1);
  net.add_arc(1, 3, 1);
  net.add_arc(2, 3, 3);
  EXPECT_EQ(net.max_flow(0, 3), 4u);
}

TEST(MaxFlow, NoPathIsZero) {
  FlowNetwork net{4};
  net.add_arc(0, 1, 5);
  net.add_arc(2, 3, 5);
  EXPECT_EQ(net.max_flow(0, 3), 0u);
}

TEST(MaxFlow, AccumulatedParallelArcs) {
  FlowNetwork net{2};
  net.add_arc(0, 1, 2);
  net.add_arc(0, 1, 3);
  EXPECT_EQ(net.max_flow(0, 1), 5u);
}

TEST(MaxFlow, DirectionalityRespected) {
  FlowNetwork net{3};
  net.add_arc(1, 0, 10);  // wrong direction
  net.add_arc(1, 2, 10);
  EXPECT_EQ(net.max_flow(0, 2), 0u);
}

TEST(MaxFlow, FlowConservationOnArcs) {
  FlowNetwork net{5};
  net.add_arc(0, 1, 3);
  net.add_arc(0, 2, 4);
  net.add_arc(1, 3, 2);
  net.add_arc(2, 3, 5);
  net.add_arc(1, 2, 2);
  net.add_arc(3, 4, 6);
  const std::uint64_t total = net.max_flow(0, 4);
  EXPECT_EQ(total, 6u);
  // Conservation at interior node 3: inflow == outflow.
  const std::uint64_t into_3 = net.arc_flow(2) + net.arc_flow(3);
  EXPECT_EQ(into_3, net.arc_flow(5));
}

TEST(MaxFlow, BadEndpointsThrow) {
  FlowNetwork net{2};
  net.add_arc(0, 1, 1);
  EXPECT_THROW(net.add_arc(0, 2, 1), std::out_of_range);
  EXPECT_THROW(net.max_flow(0, 2), std::out_of_range);
  EXPECT_THROW(net.max_flow(1, 1), std::invalid_argument);
  EXPECT_THROW(net.arc_flow(5), std::out_of_range);
}

TEST(MaxFlow, MinCutEqualsFlowOnKnownGraph) {
  // s -> {a, b} -> t with capacities forming a known min cut of 7.
  FlowNetwork net{4};
  net.add_arc(0, 1, 4);   // s -> a
  net.add_arc(0, 2, 9);   // s -> b
  net.add_arc(1, 3, 8);   // a -> t
  net.add_arc(2, 3, 3);   // b -> t
  EXPECT_EQ(net.max_flow(0, 3), 7u);
}

}  // namespace
}  // namespace sntrust

#include <gtest/gtest.h>

#include "community/community.hpp"
#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::complete_graph;
using testing::two_cliques;

TEST(Louvain, TwoCliquesSplit) {
  const Partition p = louvain(two_cliques(8));
  EXPECT_EQ(p.count, 2u);
  for (VertexId v = 1; v < 8; ++v)
    EXPECT_EQ(p.community_of[v], p.community_of[0]);
  for (VertexId v = 9; v < 16; ++v)
    EXPECT_EQ(p.community_of[v], p.community_of[8]);
}

TEST(Louvain, CompleteGraphIsOneCommunity) {
  EXPECT_EQ(louvain(complete_graph(12)).count, 1u);
}

TEST(Louvain, EdgelessGraphIsSingletons) {
  GraphBuilder b{5};
  const Partition p = louvain(b.build());
  EXPECT_EQ(p.count, 5u);
}

TEST(Louvain, RecoversPlantedPartition) {
  const Graph g = planted_partition(400, 4, 0.4, 0.004, 21);
  const Partition p = louvain(g);
  // At most a handful of communities beyond the 4 planted (isolated bits).
  EXPECT_GE(p.count, 4u);
  // Pairs in the same planted block should overwhelmingly share a label.
  std::uint32_t agreements = 0, pairs = 0;
  for (VertexId v = 0; v < 400; v += 5) {
    for (VertexId w = v + 1; w < std::min<VertexId>(400, v + 60); w += 7) {
      if (v / 100 != w / 100) continue;
      ++pairs;
      if (p.community_of[v] == p.community_of[w]) ++agreements;
    }
  }
  EXPECT_GT(static_cast<double>(agreements) / pairs, 0.85);
}

TEST(Louvain, BeatsLabelPropagationModularityOnHardGraph) {
  // Louvain should be at least as good as label propagation on modularity
  // (its objective) for a noisy community graph.
  const Graph g =
      largest_component(planted_partition(500, 10, 0.25, 0.02, 23)).graph;
  const double q_louvain = modularity(g, louvain(g));
  const double q_lp = modularity(g, label_propagation(g));
  EXPECT_GE(q_louvain, q_lp - 0.05);
  EXPECT_GT(q_louvain, 0.3);
}

TEST(Louvain, DeterministicInSeed) {
  const Graph g = planted_partition(300, 6, 0.3, 0.01, 25);
  LouvainOptions options;
  options.seed = 7;
  const Partition a = louvain(g, options);
  const Partition b = louvain(g, options);
  EXPECT_EQ(a.community_of, b.community_of);
}

TEST(Louvain, PartitionIsWellFormed) {
  const Graph g = largest_component(barabasi_albert(400, 3, 27)).graph;
  const Partition p = louvain(g);
  EXPECT_EQ(p.community_of.size(), g.num_vertices());
  std::uint64_t total = 0;
  for (const auto size : p.sizes()) {
    EXPECT_GT(size, 0u);
    total += size;
  }
  EXPECT_EQ(total, g.num_vertices());
  EXPECT_NO_THROW(modularity(g, p));
}

}  // namespace
}  // namespace sntrust

#include "obs/run_report.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "obs/trace.hpp"

namespace sntrust::obs {
namespace {

// ------------------------------------------------------ resource sampler ---

TEST(Resource, CpuAndRssSamplesAreMonotoneAndNonTrivial) {
  const ResourceUsage before = resource_usage_now();
  // Burn a little CPU so the second sample must not go backwards.
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + static_cast<double>(i) * 1e-9;
  const ResourceUsage after = resource_usage_now();
  EXPECT_GE(after.user_cpu_ns, before.user_cpu_ns);
  EXPECT_GE(after.system_cpu_ns, before.system_cpu_ns);
  EXPECT_GE(after.peak_rss_bytes, before.peak_rss_bytes);
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(after.peak_rss_bytes, 0u);
  EXPECT_GT(after.cpu_ns(), 0u);
#endif
}

class AllocStatsTest : public ::testing::Test {
 protected:
  void SetUp() override { was_enabled_ = alloc_stats_enabled(); }
  void TearDown() override { set_alloc_stats_enabled(was_enabled_); }
  bool was_enabled_ = false;
};

TEST_F(AllocStatsTest, CountersTrackHeapAllocationsWhenEnabled) {
  set_alloc_stats_enabled(true);
  const ResourceUsage before = resource_usage_now();
  {
    std::vector<char> block(1 << 20);
    block[0] = 1;
    EXPECT_EQ(block[0], 1);
  }
  const ResourceUsage after = resource_usage_now();
  EXPECT_GE(after.alloc_bytes - before.alloc_bytes, 1u << 20);
  EXPECT_GT(after.alloc_count, before.alloc_count);
  EXPECT_GT(after.free_count, before.free_count);
}

TEST_F(AllocStatsTest, CountersFreezeWhenDisabled) {
  set_alloc_stats_enabled(false);
  const ResourceUsage before = resource_usage_now();
  {
    std::vector<char> block(1 << 20);
    block[0] = 1;
    EXPECT_EQ(block[0], 1);
  }
  const ResourceUsage after = resource_usage_now();
  EXPECT_EQ(after.alloc_bytes, before.alloc_bytes);
  EXPECT_EQ(after.alloc_count, before.alloc_count);
}

// ------------------------------------------------- span resource columns ---

class SpanResourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = alloc_stats_enabled();
    Tracer::instance().reset();
    Tracer::instance().enable();
  }
  void TearDown() override {
    Tracer::instance().disable();
    Tracer::instance().reset();
    set_alloc_stats_enabled(was_enabled_);
  }
  bool was_enabled_ = false;
};

TEST_F(SpanResourceTest, SpansAttributeAllocationsAndRss) {
  set_alloc_stats_enabled(true);
  {
    Span span{"allocating"};
    std::vector<char> block(2 << 20);
    block[0] = 1;
    EXPECT_EQ(block[0], 1);
  }
  const std::vector<TraceEvent> events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_GE(events[0].alloc_bytes, 2u << 20);
  EXPECT_GE(events[0].alloc_count, 1u);
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(events[0].peak_rss_bytes, 0u);
#endif
}

TEST_F(SpanResourceTest, AggregateSumsResourceColumnsByPath) {
  set_alloc_stats_enabled(true);
  for (int i = 0; i < 3; ++i) {
    Span outer{"phase"};
    Span inner{"step"};
    std::vector<char> block(1 << 16);
    block[0] = 1;
    EXPECT_EQ(block[0], 1);
  }
  const TraceAggregate aggregate = Tracer::instance().aggregate_by_path();
  ASSERT_EQ(aggregate.spans.size(), 2u);
  EXPECT_EQ(aggregate.spans[0].path, "phase");
  EXPECT_EQ(aggregate.spans[1].path, "phase/step");
  EXPECT_EQ(aggregate.spans[0].count, 3u);
  EXPECT_GE(aggregate.spans[1].alloc_bytes, 3u << 16);
  // The outer span covers the inner's window, so its deltas dominate.
  EXPECT_GE(aggregate.spans[0].alloc_bytes, aggregate.spans[1].alloc_bytes);
}

// ------------------------------------------------------------ run report ---

class RunReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().reset();
    Tracer::instance().enable();
    metrics_reset_all();
  }
  void TearDown() override {
    Tracer::instance().disable();
    Tracer::instance().reset();
    metrics_reset_all();
  }
};

TEST_F(RunReportTest, BuildsSchemaVersionedParseableJson) {
  RunReporter& reporter = RunReporter::instance();
  reporter.set_config("seed", 2026);
  reporter.set_config("graph_n", std::uint64_t{12345});
  reporter.set_config("label", "unit \"test\"\n");
  reporter.set_config("fraction", 0.25);
  reporter.set_config("flag", true);
  count("report.test.counter", 7);
  set_gauge("report.test.gauge", 1.5);
  observe("report.test.histogram", 4.0);
  { Span span{"report phase"}; }

  std::ostringstream out;
  reporter.write(out);
  // The emitted document must satisfy our own strict parser.
  const json::Value doc = json::Value::parse(out.str());

  EXPECT_EQ(doc.find("schema_version")->as_int(), kRunReportSchemaVersion);
  EXPECT_TRUE(doc.find("tool")->is_string());

  const json::Value* config = doc.find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->find("seed")->as_int(), 2026);
  EXPECT_EQ(config->find("graph_n")->as_int(), 12345);
  EXPECT_EQ(config->find("label")->as_string(), "unit \"test\"\n");
  EXPECT_DOUBLE_EQ(config->find("fraction")->as_number(), 0.25);
  EXPECT_TRUE(config->find("flag")->as_bool());
  // Auto-filled runtime knobs.
  EXPECT_GE(config->find("threads")->as_int(), 1);
  EXPECT_GT(config->find("scale")->as_number(), 0.0);

  const json::Value* totals = doc.find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_GE(totals->find("wall_ms")->as_number(), 0.0);
  for (const char* key : {"user_cpu_ms", "system_cpu_ms", "cpu_ms",
                          "peak_rss_bytes", "alloc_bytes", "alloc_count"})
    ASSERT_NE(totals->find(key), nullptr) << key;

  const json::Value* spans = doc.find("spans");
  ASSERT_NE(spans, nullptr);
  bool found = false;
  for (const json::Value& row : spans->as_array()) {
    if (row.find("path")->as_string() != "report phase") continue;
    found = true;
    EXPECT_EQ(row.find("count")->as_int(), 1);
    for (const char* key :
         {"wall_ms", "cpu_ms", "alloc_bytes", "alloc_count"})
      ASSERT_NE(row.find(key), nullptr) << key;
  }
  EXPECT_TRUE(found);

  const json::Value* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->find("counters")->find("report.test.counter")->as_int(),
            7);
  EXPECT_DOUBLE_EQ(
      metrics->find("gauges")->find("report.test.gauge")->as_number(), 1.5);
  const json::Value* histogram =
      metrics->find("histograms")->find("report.test.histogram");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->find("count")->as_int(), 1);
  EXPECT_DOUBLE_EQ(histogram->find("min")->as_number(), 4.0);
  EXPECT_DOUBLE_EQ(histogram->find("max")->as_number(), 4.0);
}

TEST_F(RunReportTest, EmptyHistogramOmitsUnencodableMinMax) {
  Metrics::instance().histogram("report.empty.histogram");
  std::ostringstream out;
  RunReporter::instance().write(out);
  const json::Value doc = json::Value::parse(out.str());
  const json::Value* histogram =
      doc.find("metrics")->find("histograms")->find("report.empty.histogram");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->find("count")->as_int(), 0);
  // +/-inf have no JSON encoding; the empty-histogram contract omits them.
  EXPECT_EQ(histogram->find("min"), nullptr);
  EXPECT_EQ(histogram->find("max"), nullptr);
}

TEST_F(RunReportTest, EmptyLatencyQuantileOmitsValueFieldsInTelemetry) {
  // A registered latency histogram that never saw a sample reports NaN
  // quantiles internally; the telemetry section must carry its count (0)
  // and omit every value field rather than emit unencodable NaN.
  Metrics::instance().quantile("report.empty.lat");
  std::ostringstream out;
  RunReporter::instance().write(out);
  const json::Value doc = json::Value::parse(out.str());
  const json::Value* entry =
      doc.find("telemetry")->find("quantiles")->find("report.empty.lat");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->find("count")->as_int(), 0);
  for (const char* key : {"p50", "p90", "p99", "p999", "min", "max"})
    EXPECT_EQ(entry->find(key), nullptr) << key;
}

TEST_F(RunReportTest, HostileSpanNamesSurviveTheReport) {
  {
    Span span{"span \"with\"\nhostile \\ name ☃"};
  }
  std::ostringstream out;
  RunReporter::instance().write(out);
  const json::Value doc = json::Value::parse(out.str());
  bool found = false;
  for (const json::Value& row : doc.find("spans")->as_array())
    if (row.find("path")->as_string() == "span \"with\"\nhostile \\ name ☃")
      found = true;
  EXPECT_TRUE(found);
}

TEST_F(RunReportTest, ConfigLastWriteWins) {
  RunReporter& reporter = RunReporter::instance();
  reporter.set_config("threads", 3);
  reporter.set_config("threads", 5);
  std::ostringstream out;
  reporter.write(out);
  const json::Value doc = json::Value::parse(out.str());
  EXPECT_EQ(doc.find("config")->find("threads")->as_int(), 5);
}

}  // namespace
}  // namespace sntrust::obs

#include "anon/social_mix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::complete_graph;
using testing::petersen_graph;
using testing::two_cliques;

TEST(ShannonEntropy, PointMassIsZero) {
  EXPECT_DOUBLE_EQ(shannon_entropy_bits(dirac(8, 3)), 0.0);
}

TEST(ShannonEntropy, UniformIsLogN) {
  Distribution uniform(16, 1.0 / 16.0);
  EXPECT_NEAR(shannon_entropy_bits(uniform), 4.0, 1e-12);
}

TEST(ShannonEntropy, BetweenZeroAndLogN) {
  Distribution d{0.5, 0.25, 0.25, 0.0};
  const double h = shannon_entropy_bits(d);
  EXPECT_GT(h, 0.0);
  EXPECT_LT(h, 2.0);
  EXPECT_NEAR(h, 1.5, 1e-12);
}

TEST(Anonymity, CurveStartsAtZeroEntropy) {
  const AnonymityCurve curve = measure_anonymity(petersen_graph(), 0, 20);
  EXPECT_DOUBLE_EQ(curve.entropy_bits[0], 0.0);
  EXPECT_NEAR(curve.leak_tvd[0], 1.0 - 3.0 / 30.0, 1e-12);
  EXPECT_NEAR(curve.max_entropy_bits, std::log2(10.0), 1e-12);
}

TEST(Anonymity, ExpanderReachesNearMaxEntropy) {
  const Graph g = largest_component(barabasi_albert(300, 4, 1)).graph;
  const AnonymityCurve curve = measure_anonymity(g, 0, 40);
  EXPECT_GT(curve.entropy_bits.back(), 0.9 * curve.max_entropy_bits);
  EXPECT_LT(curve.leak_tvd.back(), 0.05);
}

TEST(Anonymity, LazyEntropyIsMonotone) {
  const Graph g = two_cliques(8);
  const AnonymityCurve curve = measure_anonymity(g, 0, 50, /*lazy=*/true);
  for (std::size_t t = 1; t < curve.entropy_bits.size(); ++t)
    EXPECT_GE(curve.entropy_bits[t] + 1e-9, curve.entropy_bits[t - 1]);
}

TEST(Anonymity, BarbellLeaksLongerThanExpander) {
  const Graph good = largest_component(barabasi_albert(64, 4, 2)).graph;
  const Graph bad = two_cliques(32);
  const AnonymityCurve curve_good = measure_anonymity(good, 0, 30, true);
  const AnonymityCurve curve_bad = measure_anonymity(bad, 0, 30, true);
  EXPECT_LT(curve_good.leak_tvd.back(), curve_bad.leak_tvd.back());
}

TEST(Anonymity, InvalidInputsThrow) {
  EXPECT_THROW(measure_anonymity(testing::disconnected_graph(), 0, 5),
               std::invalid_argument);
  EXPECT_THROW(measure_anonymity(petersen_graph(), 99, 5), std::out_of_range);
}

TEST(AnonymityTime, FastBeatsSlow) {
  const Graph fast = largest_component(barabasi_albert(400, 4, 3)).graph;
  const Graph slow =
      largest_component(planted_partition(400, 8, 0.3, 0.004, 3)).graph;
  const AnonymityTime t_fast = anonymity_time(fast, 0.9, 6, 200, 3);
  const AnonymityTime t_slow = anonymity_time(slow, 0.9, 6, 200, 3);
  ASSERT_GT(t_fast.reached, 0u);
  if (t_slow.reached > 0) {
    EXPECT_LT(t_fast.mean_hops, t_slow.mean_hops);
  } else {
    SUCCEED();  // slow graph never anonymized within 200 hops: even stronger
  }
}

TEST(AnonymityTime, HigherFractionNeedsMoreHops) {
  const Graph g = largest_component(barabasi_albert(300, 4, 4)).graph;
  const AnonymityTime low = anonymity_time(g, 0.5, 6, 300, 4);
  const AnonymityTime high = anonymity_time(g, 0.95, 6, 300, 4);
  ASSERT_GT(low.reached, 0u);
  ASSERT_GT(high.reached, 0u);
  EXPECT_LE(low.mean_hops, high.mean_hops);
}

TEST(AnonymityTime, BadArgsThrow) {
  const Graph g = petersen_graph();
  EXPECT_THROW(anonymity_time(g, 0.0, 4, 10, 1), std::invalid_argument);
  EXPECT_THROW(anonymity_time(g, 1.5, 4, 10, 1), std::invalid_argument);
  EXPECT_THROW(anonymity_time(g, 0.5, 0, 10, 1), std::invalid_argument);
}

}  // namespace
}  // namespace sntrust

#include "expansion/envelope.hpp"

#include <gtest/gtest.h>

#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::path_graph;
using testing::star_graph;

TEST(Envelope, PathProfile) {
  // Path 0-1-2-3-4 from vertex 0: levels 1,1,1,1,1.
  const EnvelopeProfile p = envelope_profile(path_graph(5), 0);
  EXPECT_EQ(p.level_sizes, (std::vector<std::uint64_t>{1, 1, 1, 1, 1}));
  EXPECT_EQ(p.envelope_sizes, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(p.neighbor_counts, (std::vector<std::uint64_t>{1, 1, 1, 1, 0}));
  EXPECT_DOUBLE_EQ(p.alpha[0], 1.0);
  EXPECT_DOUBLE_EQ(p.alpha[1], 0.5);
  EXPECT_DOUBLE_EQ(p.alpha[3], 0.25);
  EXPECT_DOUBLE_EQ(p.alpha[4], 0.0);
}

TEST(Envelope, StarFromCenter) {
  const EnvelopeProfile p = envelope_profile(star_graph(10), 0);
  ASSERT_EQ(p.level_sizes.size(), 2u);
  EXPECT_EQ(p.neighbor_counts[0], 9u);
  EXPECT_DOUBLE_EQ(p.alpha[0], 9.0);
}

TEST(Envelope, CompleteGraphSingleHop) {
  const EnvelopeProfile p = envelope_profile(complete_graph(8), 3);
  EXPECT_DOUBLE_EQ(p.alpha[0], 7.0);
  EXPECT_DOUBLE_EQ(p.alpha[1], 0.0);
}

TEST(Envelope, AlphaMatchesDefinition) {
  // alpha_i = L_{i+1} / sum_{j<=i} L_j for every i (Eq. 4).
  const EnvelopeProfile p = envelope_profile(cycle_graph(12), 5);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < p.level_sizes.size(); ++i) {
    cumulative += p.level_sizes[i];
    const double expected =
        i + 1 < p.level_sizes.size()
            ? static_cast<double>(p.level_sizes[i + 1]) / cumulative
            : 0.0;
    EXPECT_DOUBLE_EQ(p.alpha[i], expected);
  }
}

TEST(Envelope, FromLevelsValidatesInput) {
  EXPECT_THROW(envelope_from_levels(0, {}), std::invalid_argument);
  EXPECT_THROW(envelope_from_levels(0, {2, 3}), std::invalid_argument);
}

TEST(Envelope, FromLevelsMatchesBfsPath) {
  const Graph g = path_graph(4);
  const EnvelopeProfile direct = envelope_profile(g, 0);
  const EnvelopeProfile rebuilt = envelope_from_levels(0, {1, 1, 1, 1});
  EXPECT_EQ(direct.envelope_sizes, rebuilt.envelope_sizes);
  EXPECT_EQ(direct.alpha, rebuilt.alpha);
}

TEST(Envelope, EnvelopeSizesEndAtComponentSize) {
  const Graph g = testing::two_cliques(4);
  const EnvelopeProfile p = envelope_profile(g, 0);
  EXPECT_EQ(p.envelope_sizes.back(), 8u);
}

}  // namespace
}  // namespace sntrust

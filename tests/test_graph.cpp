#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::path_graph;
using testing::star_graph;

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.edges().empty());
}

TEST(Graph, PathBasics) {
  const Graph g = path_graph(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, NeighborsAreSorted) {
  const Graph g = star_graph(6);
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 5u);
  for (std::size_t i = 1; i < nbrs.size(); ++i)
    EXPECT_LT(nbrs[i - 1], nbrs[i]);
}

TEST(Graph, EdgesListedOnceWithUlessV) {
  const Graph g = cycle_graph(4);
  const auto edges = g.edges();
  EXPECT_EQ(edges.size(), 4u);
  for (const Edge& e : edges) EXPECT_LT(e.u, e.v);
}

TEST(Graph, HandshakeLemma) {
  for (const Graph& g :
       {path_graph(10), cycle_graph(9), star_graph(7), complete_graph(6)}) {
    std::uint64_t degree_sum = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) degree_sum += g.degree(v);
    EXPECT_EQ(degree_sum, 2 * g.num_edges());
  }
}

TEST(Graph, OutOfRangeVertexThrows) {
  const Graph g = path_graph(3);
  EXPECT_THROW(g.degree(3), std::out_of_range);
  EXPECT_THROW(g.neighbors(3), std::out_of_range);
  EXPECT_THROW(g.has_edge(0, 3), std::out_of_range);
}

TEST(Graph, CsrValidationRejectsSelfLoop) {
  // Vertex 0 adjacent to itself.
  EXPECT_THROW(Graph({0, 1}, {0}), std::invalid_argument);
}

TEST(Graph, CsrValidationRejectsUnsorted) {
  // 0 -> {2, 1}, symmetric halves present but unsorted.
  EXPECT_THROW(Graph({0, 2, 3, 4}, {2, 1, 0, 0}), std::invalid_argument);
}

TEST(Graph, CsrValidationRejectsAsymmetry) {
  // Edge 0->1 without 1->0.
  EXPECT_THROW(Graph({0, 1, 1}, {1}), std::invalid_argument);
}

TEST(Graph, CsrValidationRejectsOutOfRangeTarget) {
  EXPECT_THROW(Graph({0, 1, 2}, {5, 0}), std::invalid_argument);
}

TEST(Graph, CsrValidationRejectsBadOffsets) {
  EXPECT_THROW(Graph({1, 2}, {0, 1}), std::invalid_argument);   // offsets[0] != 0
  EXPECT_THROW(Graph({0, 1}, {0, 1}), std::invalid_argument);   // end mismatch
  EXPECT_THROW(Graph({}, {}), std::invalid_argument);           // empty offsets
}

TEST(Graph, ValidCsrAccepted) {
  // Triangle in CSR form.
  const Graph g({0, 2, 4, 6}, {1, 2, 0, 2, 0, 1});
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(Graph, EqualityComparesStructure) {
  EXPECT_EQ(path_graph(4), path_graph(4));
  EXPECT_NE(path_graph(4), cycle_graph(4));
}

TEST(Graph, CompleteGraphDegrees) {
  const Graph g = complete_graph(8);
  EXPECT_EQ(g.num_edges(), 28u);
  for (VertexId v = 0; v < 8; ++v) EXPECT_EQ(g.degree(v), 7u);
}

}  // namespace
}  // namespace sntrust

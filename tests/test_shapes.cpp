// End-to-end "shape" tests: miniature versions of every reproduced artifact
// asserting the paper's qualitative claims, so a regression in any substrate
// that would silently bend a figure fails the suite.
#include <gtest/gtest.h>

#include <cmath>

#include "anon/social_mix.hpp"
#include "cores/core_profile.hpp"
#include "dht/social_dht.hpp"
#include "expansion/expansion_profile.hpp"
#include "gen/datasets.hpp"
#include "markov/mixing.hpp"
#include "markov/modulated.hpp"
#include "markov/spectral.hpp"
#include "sybil/gatekeeper.hpp"

namespace sntrust {
namespace {

// Shared tiny analogues (generated once; the suite reuses them).
const Graph& fast_graph() {
  static const Graph g = dataset_by_id("wiki_vote").generate(0.15, 77);
  return g;
}
const Graph& slow_graph() {
  static const Graph g = dataset_by_id("physics_1").generate(0.6, 77);
  return g;
}

TEST(Shapes, Table1FastSlowMuSplit) {
  SlemOptions options;
  options.seed = 77;
  const double mu_fast = second_largest_eigenvalue(fast_graph(), options).mu;
  const double mu_slow = second_largest_eigenvalue(slow_graph(), options).mu;
  EXPECT_LT(mu_fast, 0.95);
  EXPECT_GT(mu_slow, 0.98);
}

TEST(Shapes, Figure1TvdOrderingAtEveryCheckpoint) {
  MixingOptions options;
  options.num_sources = 6;
  options.max_walk_length = 60;
  options.seed = 77;
  const auto fast = measure_mixing(fast_graph(), options).mean_curve();
  const auto slow = measure_mixing(slow_graph(), options).mean_curve();
  for (const std::uint32_t t : {10u, 20u, 40u, 60u})
    EXPECT_LT(fast[t], slow[t]) << "t=" << t;
}

TEST(Shapes, Figure2FastMixerKeepsMassAtHighCoreness) {
  const auto ecdf_fast = coreness_ecdf(core_decomposition(fast_graph()));
  const auto ecdf_slow = coreness_ecdf(core_decomposition(slow_graph()));
  // Fraction of vertices with coreness <= 5: slow graph saturates earlier.
  EXPECT_LT(ecdf_fast[std::min<std::size_t>(5, ecdf_fast.size() - 1)],
            ecdf_slow[std::min<std::size_t>(5, ecdf_slow.size() - 1)]);
}

TEST(Shapes, Figure5SingleVsMultipleCores) {
  std::uint32_t fast_cores = 0, slow_cores = 0;
  for (const CoreLevel& level : core_profile(fast_graph()))
    fast_cores = std::max(fast_cores, level.num_components);
  for (const CoreLevel& level : core_profile(slow_graph()))
    slow_cores = std::max(slow_cores, level.num_components);
  EXPECT_EQ(fast_cores, 1u);
  EXPECT_GT(slow_cores, 1u);
}

TEST(Shapes, Figure4ExpansionOrderingMatchesMixing) {
  ExpansionOptions options;
  options.num_sources = 300;
  options.seed = 77;
  const double alpha_fast =
      measure_expansion(fast_graph(), options)
          .min_alpha(fast_graph().num_vertices());
  const double alpha_slow =
      measure_expansion(slow_graph(), options)
          .min_alpha(slow_graph().num_vertices());
  EXPECT_GT(alpha_fast, alpha_slow);
}

TEST(Shapes, Table2SybilsBelowUnfilteredAndFMonotone) {
  AttackParams attack;
  attack.num_sybils = fast_graph().num_vertices() / 4;
  attack.attack_edges = 10;
  attack.seed = 77;
  const AttackedGraph attacked{fast_graph(), attack};
  const double unfiltered =
      static_cast<double>(attacked.num_sybils()) / attacked.num_attack_edges();

  double previous_honest = 1.1;
  for (const double f : {0.05, 0.1, 0.2}) {
    GateKeeperParams params;
    params.num_distributers = 40;
    params.f_admit = f;
    params.seed = 77;
    const GateKeeperEvaluation eval = evaluate_gatekeeper(attacked, 0, params);
    EXPECT_LE(eval.honest_accept_fraction, previous_honest + 1e-9);
    previous_honest = eval.honest_accept_fraction;
    EXPECT_LT(eval.sybils_per_attack_edge, unfiltered);
  }
}

TEST(Shapes, ModulationScalesMixingTimeInversely) {
  const std::uint32_t t0 =
      modulated_mixing_time(fast_graph(), 0.0, 0.05, 5, 1000, 77);
  const std::uint32_t t5 =
      modulated_mixing_time(fast_graph(), 0.5, 0.05, 5, 1000, 77);
  ASSERT_NE(t0, 0xFFFFFFFFu);
  ASSERT_NE(t5, 0xFFFFFFFFu);
  const double ratio = static_cast<double>(t5) / t0;
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 3.5);
}

TEST(Shapes, AnonymityFastGraphReachesHigherEntropy) {
  const AnonymityCurve fast = measure_anonymity(fast_graph(), 0, 30, true);
  const AnonymityCurve slow = measure_anonymity(slow_graph(), 0, 30, true);
  EXPECT_GT(fast.entropy_bits.back() / fast.max_entropy_bits,
            slow.entropy_bits.back() / slow.max_entropy_bits);
}

TEST(Shapes, DhtPoisonNearTheoreticalBound) {
  AttackParams attack;
  attack.num_sybils = fast_graph().num_vertices() / 4;
  attack.attack_edges =
      std::max<std::uint32_t>(5, fast_graph().num_vertices() / 100);
  attack.seed = 77;
  const AttackedGraph attacked{fast_graph(), attack};
  SocialDhtParams params;
  params.table_size = 48;
  params.seed = 77;
  const SocialDhtEvaluation eval =
      evaluate_social_dht(fast_graph(), attacked, params, 200);

  std::uint32_t walk_length = 3;
  for (VertexId x = attacked.graph().num_vertices(); x > 1; x /= 2)
    ++walk_length;
  const double bound =
      static_cast<double>(walk_length) * attacked.num_attack_edges() /
      (2.0 * static_cast<double>(attacked.graph().num_edges()));
  EXPECT_LT(eval.poison_rate, 3.0 * bound);
  EXPECT_GT(eval.clean_success, 0.7);
}

}  // namespace
}  // namespace sntrust

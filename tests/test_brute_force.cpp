#include "expansion/brute_force.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "expansion/expansion_profile.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::barbell_graph;
using testing::complete_graph;
using testing::cycle_graph;
using testing::path_graph;
using testing::petersen_graph;
using testing::star_graph;

TEST(BruteForceExpansion, CompleteGraph) {
  // Any S of size s has all n-s others as neighbours; min over s <= n/2 is
  // (n - n/2) / (n/2).
  EXPECT_DOUBLE_EQ(exact_vertex_expansion(complete_graph(6)), 3.0 / 3.0);
  EXPECT_DOUBLE_EQ(exact_vertex_expansion(complete_graph(5)), 3.0 / 2.0);
}

TEST(BruteForceExpansion, CycleWorstCaseIsArc) {
  // Worst S on C_8 is a contiguous arc of 4: 2 neighbours -> 0.5.
  EXPECT_DOUBLE_EQ(exact_vertex_expansion(cycle_graph(8)), 0.5);
  EXPECT_DOUBLE_EQ(exact_connected_vertex_expansion(cycle_graph(8)), 0.5);
}

TEST(BruteForceExpansion, PathWorstCaseIsPrefix) {
  EXPECT_DOUBLE_EQ(exact_vertex_expansion(path_graph(8)), 0.25);
}

TEST(BruteForceExpansion, BarbellBridgeDominates) {
  // One triangle (|S|=3) has exactly 1 neighbour: alpha = 1/3.
  EXPECT_NEAR(exact_vertex_expansion(barbell_graph()), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(exact_connected_vertex_expansion(barbell_graph()), 1.0 / 3.0,
              1e-12);
}

TEST(BruteForceExpansion, StarLeavesAreWorst) {
  // S = floor(n/2) leaves has only the hub as neighbour.
  const Graph g = star_graph(9);  // 8 leaves
  EXPECT_DOUBLE_EQ(exact_vertex_expansion(g), 1.0 / 4.0);
  // Connected restriction: leaves are not connected to each other, so the
  // worst connected S is hub+leaves or a single leaf; expansion is higher.
  EXPECT_GT(exact_connected_vertex_expansion(g), 1.0 / 4.0);
}

TEST(BruteForceExpansion, ConnectedRestrictionNeverLower) {
  for (const Graph& g : {petersen_graph(), barbell_graph(), cycle_graph(9),
                         path_graph(7), star_graph(8)}) {
    EXPECT_GE(exact_connected_vertex_expansion(g) + 1e-12,
              exact_vertex_expansion(g));
  }
}

TEST(BruteForceExpansion, PetersenIsAGoodExpander) {
  EXPECT_GE(exact_vertex_expansion(petersen_graph()), 0.8);
}

TEST(BruteForceExpansion, EnvelopeEstimateUpperBoundsConnectedOptimum) {
  // The BFS-envelope alpha measures specific connected sets, so its minimum
  // over measured points can only over-estimate the true connected minimum.
  for (const Graph& g : {petersen_graph(), barbell_graph(), cycle_graph(10)}) {
    const double exact = exact_connected_vertex_expansion(g);
    const ExpansionProfile profile = measure_expansion(g);
    // Compare against the worst measured per-source point (min over min
    // neighbours / set size).
    double measured = 1e9;
    for (const ExpansionPoint& p : profile.points) {
      if (p.set_size > g.num_vertices() / 2 || p.set_size == 0) continue;
      measured = std::min(measured, static_cast<double>(p.min_neighbors) /
                                        static_cast<double>(p.set_size));
    }
    EXPECT_GE(measured + 1e-9, exact);
  }
}

TEST(BruteForceExpansion, TooLargeThrows) {
  EXPECT_THROW(exact_vertex_expansion(cycle_graph(25)), std::invalid_argument);
  EXPECT_THROW(exact_vertex_expansion(Graph{}), std::invalid_argument);
}

}  // namespace
}  // namespace sntrust

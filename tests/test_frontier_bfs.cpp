#include "graph/frontier_bfs.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <queue>

#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::disconnected_graph;
using testing::path_graph;
using testing::petersen_graph;
using testing::star_graph;
using testing::two_cliques;

/// Independent reference BFS (plain FIFO queue) — the free bfs() now
/// delegates to FrontierBfs, so the oracle must not.
BfsResult reference_bfs(const Graph& g, VertexId source) {
  BfsResult r;
  r.source = source;
  r.distances.assign(g.num_vertices(), kUnreachable);
  r.distances[source] = 0;
  std::vector<VertexId> queue{source};
  std::size_t level_begin = 0;
  std::uint32_t depth = 0;
  while (level_begin < queue.size()) {
    const std::size_t level_end = queue.size();
    r.level_sizes.push_back(level_end - level_begin);
    for (std::size_t qi = level_begin; qi < level_end; ++qi)
      for (const VertexId w : g.neighbors(queue[qi]))
        if (r.distances[w] == kUnreachable) {
          r.distances[w] = depth + 1;
          queue.push_back(w);
        }
    level_begin = level_end;
    ++depth;
  }
  r.reached = queue.size();
  r.eccentricity = static_cast<std::uint32_t>(r.level_sizes.size() - 1);
  return r;
}

void expect_same_result(const BfsResult& got, const BfsResult& want) {
  EXPECT_EQ(got.source, want.source);
  EXPECT_EQ(got.distances, want.distances);
  EXPECT_EQ(got.level_sizes, want.level_sizes);
  EXPECT_EQ(got.eccentricity, want.eccentricity);
  EXPECT_EQ(got.reached, want.reached);
}

std::vector<Graph> seed_graphs() {
  std::vector<Graph> graphs;
  graphs.push_back(path_graph(12));
  graphs.push_back(cycle_graph(9));
  graphs.push_back(star_graph(11));
  graphs.push_back(complete_graph(7));
  graphs.push_back(two_cliques(5));
  graphs.push_back(petersen_graph());
  graphs.push_back(disconnected_graph());
  return graphs;
}

TEST(FrontierBfs, MatchesReferenceOnSeedGraphs) {
  for (const Graph& g : seed_graphs()) {
    FrontierBfs runner{g};
    for (VertexId s = 0; s < g.num_vertices(); ++s)
      expect_same_result(runner.run(s), reference_bfs(g, s));
  }
}

TEST(FrontierBfs, MatchesReferenceOnGeneratedGraph) {
  const Graph g = largest_component(barabasi_albert(500, 3, 23)).graph;
  FrontierBfs runner{g};
  for (VertexId s = 0; s < g.num_vertices(); s += 37)
    expect_same_result(runner.run(s), reference_bfs(g, s));
}

TEST(FrontierBfs, ForcedBottomUpMatchesReference) {
  // Huge alpha switches to bottom-up at the first level; huge beta never
  // switches back. The direction only changes which edges are inspected.
  const FrontierBfs::Options options{~0ull, ~0ull};
  for (const Graph& g : seed_graphs()) {
    FrontierBfs runner{g, options};
    for (VertexId s = 0; s < g.num_vertices(); ++s)
      expect_same_result(runner.run(s), reference_bfs(g, s));
  }
}

TEST(FrontierBfs, ForcedTopDownMatchesReference) {
  const FrontierBfs::Options options{0, 24};
  const Graph g = largest_component(powerlaw_cluster(300, 3, 0.3, 5)).graph;
  FrontierBfs runner{g, options};
  for (VertexId s = 0; s < g.num_vertices(); s += 29)
    expect_same_result(runner.run(s), reference_bfs(g, s));
}

TEST(FrontierBfs, ReusableAcrossSourcesAndComponents) {
  const Graph g = disconnected_graph();
  FrontierBfs runner{g};
  const BfsResult& from0 = runner.run(0);
  EXPECT_EQ(from0.reached, 3u);
  EXPECT_EQ(from0.distances[4], kUnreachable);
  const BfsResult& from3 = runner.run(3);
  EXPECT_EQ(from3.reached, 2u);
  EXPECT_EQ(from3.distances[0], kUnreachable);
  EXPECT_EQ(from3.distances[4], 1u);
  const BfsResult& isolated = runner.run(5);
  EXPECT_EQ(isolated.reached, 1u);
  EXPECT_EQ(isolated.eccentricity, 0u);
}

TEST(FrontierBfs, ManyRunsKeepEpochsConsistent) {
  const Graph g = cycle_graph(6);
  FrontierBfs runner{g};
  for (int round = 0; round < 50; ++round) {
    const BfsResult& r = runner.run(round % 6);
    EXPECT_EQ(r.reached, 6u);
    const auto total = std::accumulate(r.level_sizes.begin(),
                                       r.level_sizes.end(), std::uint64_t{0});
    EXPECT_EQ(total, r.reached);
  }
}

TEST(FrontierBfs, BadSourceThrows) {
  const Graph g = path_graph(3);
  FrontierBfs runner{g};
  EXPECT_THROW(runner.run(3), std::out_of_range);
}

}  // namespace
}  // namespace sntrust

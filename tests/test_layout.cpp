#include "graph/layout.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "graph/frontier_bfs.hpp"
#include "markov/layout_matvec.hpp"
#include "markov/mixing.hpp"
#include "markov/modulated.hpp"
#include "markov/transition.hpp"
#include "parallel/thread_pool.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

using parallel::ScopedThreadCount;
using testing::petersen_graph;
using testing::star_graph;

Graph layout_test_graph(std::uint64_t seed = 7) {
  return largest_component(barabasi_albert(500, 3, seed)).graph;
}

// --- Layout selection plumbing ---------------------------------------------

TEST(GraphLayoutEnum, ParseAndToStringRoundTrip) {
  for (const GraphLayout layout :
       {GraphLayout::kPlain, GraphLayout::kHilo, GraphLayout::kCompressed}) {
    const auto parsed = parse_graph_layout(to_string(layout));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, layout);
  }
  EXPECT_EQ(parse_graph_layout("HiLo"), GraphLayout::kHilo);  // case-fold
  EXPECT_FALSE(parse_graph_layout("dense").has_value());
  EXPECT_FALSE(parse_graph_layout("").has_value());
}

TEST(GraphLayoutEnum, ScopedOverrideRestores) {
  const GraphLayout before = graph_layout();
  {
    ScopedGraphLayout scoped{GraphLayout::kCompressed};
    EXPECT_EQ(graph_layout(), GraphLayout::kCompressed);
    {
      ScopedGraphLayout nested{GraphLayout::kHilo};
      EXPECT_EQ(graph_layout(), GraphLayout::kHilo);
    }
    EXPECT_EQ(graph_layout(), GraphLayout::kCompressed);
  }
  EXPECT_EQ(graph_layout(), before);
}

// --- Varint / zigzag codec --------------------------------------------------

TEST(VarintCodec, RoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,     1,             127,   128,  16383,
                                  16384, 0xffffffffULL, 0xffffffffffffffffULL};
  std::vector<std::uint8_t> buf;
  for (const std::uint64_t v : values) append_uvarint(buf, v);
  const std::uint8_t* p = buf.data();
  for (const std::uint64_t v : values) {
    std::uint64_t decoded = 0;
    p = decode_uvarint(p, decoded);
    EXPECT_EQ(decoded, v);
  }
  EXPECT_EQ(p, buf.data() + buf.size());
}

TEST(VarintCodec, SingleByteForSmallValues) {
  std::vector<std::uint8_t> buf;
  append_uvarint(buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  append_uvarint(buf, 128);
  EXPECT_EQ(buf.size(), 3u);  // 128 needs two bytes
}

TEST(VarintCodec, ZigzagRoundTrips) {
  for (const std::int64_t v : {std::int64_t{0}, std::int64_t{-1},
                               std::int64_t{1}, std::int64_t{-64},
                               std::int64_t{1} << 40,
                               -(std::int64_t{1} << 40)}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
  // Small magnitudes stay small: one varint byte either sign.
  EXPECT_LT(zigzag_encode(-63), 128u);
  EXPECT_LT(zigzag_encode(63), 128u);
}

// --- Degree-descending relabeling -------------------------------------------

TEST(DegreeOrder, IsAnInversePermutationPair) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const Graph g = layout_test_graph(seed);
    const RelabelMap map = degree_order(g);
    ASSERT_EQ(map.to_internal.size(), g.num_vertices());
    ASSERT_EQ(map.to_external.size(), g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(map.to_internal[map.to_external[v]], v);
      EXPECT_EQ(map.to_external[map.to_internal[v]], v);
    }
  }
}

TEST(DegreeOrder, SortsByDegreeDescThenExternalAsc) {
  const Graph g = layout_test_graph();
  const RelabelMap map = degree_order(g);
  for (VertexId iv = 0; iv + 1 < g.num_vertices(); ++iv) {
    const VertexId a = map.to_external[iv];
    const VertexId b = map.to_external[iv + 1];
    const VertexId da = g.degree_unchecked(a);
    const VertexId db = g.degree_unchecked(b);
    EXPECT_TRUE(da > db || (da == db && a < b));
  }
}

// --- LayoutData row storage --------------------------------------------------

void expect_rows_match_plain(const Graph& g, GraphLayout which) {
  const auto data = g.layout(which);
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->layout(), which);
  EXPECT_EQ(data->num_vertices(), g.num_vertices());
  EXPECT_EQ(data->num_targets(), g.targets().size());
  const RelabelMap& map = data->map();
  for (VertexId iv = 0; iv < data->num_vertices(); ++iv) {
    const VertexId v = map.to_external[iv];
    EXPECT_EQ(data->int_degree(iv), g.degree_unchecked(v));
    EXPECT_EQ(data->degree_double()[iv],
              static_cast<double>(g.degree_unchecked(v)));
    // Row contents: the plain row's targets in stored order, renumbered.
    std::vector<VertexId> expected;
    for (const VertexId w : g.neighbors_unchecked(v))
      expected.push_back(map.to_internal[w]);
    std::vector<VertexId> got;
    data->for_each_target(iv, [&](VertexId w) { got.push_back(w); });
    EXPECT_EQ(got, expected) << "internal row " << iv;
  }
}

TEST(LayoutData, HiloRowsMatchPlainRows) {
  expect_rows_match_plain(layout_test_graph(), GraphLayout::kHilo);
}

TEST(LayoutData, CompressedRowsMatchPlainRows) {
  expect_rows_match_plain(layout_test_graph(), GraphLayout::kCompressed);
}

TEST(LayoutData, StarGraphSplitsHubFromLeaves) {
  const Graph g = star_graph(64);
  const auto data = g.layout(GraphLayout::kHilo);
  // Internal id 0 is the hub (degree 63 >= cutoff); it stays raw.
  ASSERT_GE(data->hi_count(), 1u);
  EXPECT_EQ(data->map().to_external[0], 0u);
  EXPECT_EQ(data->hi_row(0).size(), 63u);
  // Every leaf row decodes to exactly the hub.
  for (VertexId iv = 1; iv < data->num_vertices(); ++iv) {
    std::vector<VertexId> row;
    data->for_each_target(iv, [&](VertexId w) { row.push_back(w); });
    EXPECT_EQ(row, std::vector<VertexId>{0});
  }
}

TEST(LayoutData, AnyTargetStopsAtFirstHit) {
  const Graph g = petersen_graph();
  const auto data = g.layout(GraphLayout::kCompressed);
  for (VertexId iv = 0; iv < data->num_vertices(); ++iv) {
    std::vector<VertexId> row;
    data->for_each_target(iv, [&](VertexId w) { row.push_back(w); });
    ASSERT_FALSE(row.empty());
    int probes = 0;
    EXPECT_TRUE(data->any_target(iv, [&](VertexId w) {
      ++probes;
      return w == row.front();
    }));
    EXPECT_EQ(probes, 1);
    EXPECT_FALSE(
        data->any_target(iv, [&](VertexId) { return false; }));
  }
}

TEST(LayoutData, CachedAcrossGraphCopies) {
  const Graph g = layout_test_graph();
  const Graph copy = g;  // shallow: shares storage and the layout cache
  EXPECT_EQ(g.layout(GraphLayout::kHilo).get(),
            copy.layout(GraphLayout::kHilo).get());
}

// --- Bitwise identity of the ported kernels ----------------------------------

TEST(LayoutMatvecBitwise, MatchesPlainKernelsForEveryStepKind) {
  const Graph g = layout_test_graph();
  Distribution p = stationary_distribution(g);
  p[0] += 0.25;  // perturb off-stationary so steps actually move mass
  p[1] -= 0.25;
  Distribution want, got;
  for (const GraphLayout which :
       {GraphLayout::kHilo, GraphLayout::kCompressed}) {
    LayoutMatvec matvec{g, g.layout(which)};
    step_distribution(g, p, want);
    matvec.step(StepKind::kPlain, 0.0, p, got);
    EXPECT_EQ(want, got);  // element-wise bitwise double equality
    step_distribution_lazy(g, p, want);
    matvec.step(StepKind::kLazy, 0.0, p, got);
    EXPECT_EQ(want, got);
    step_modulated(g, p, want, 0.15);
    matvec.step(StepKind::kModulated, 0.15, p, got);
    EXPECT_EQ(want, got);
  }
}

// The ISSUE acceptance matrix: fig1's measurement (mixing curves) is bitwise
// identical across all three layouts at 1 and 4 threads. Dense gathers are
// forced from step zero so the layout engine is actually on the hot path.
TEST(LayoutMixingBitwise, CurvesIdenticalAcrossLayoutsAndThreadCounts) {
  const Graph g = layout_test_graph();
  MixingOptions options;
  options.num_sources = 8;
  options.max_walk_length = 24;
  options.seed = 42;
  options.kernel_dense_fraction = 0.0;

  options.layout = GraphLayout::kPlain;
  ScopedThreadCount serial{1};
  const MixingCurves reference = measure_mixing(g, options);

  for (const GraphLayout which :
       {GraphLayout::kPlain, GraphLayout::kHilo, GraphLayout::kCompressed}) {
    options.layout = which;
    for (const int threads : {1, 4}) {
      ScopedThreadCount scoped{threads};
      const MixingCurves curves = measure_mixing(g, options);
      EXPECT_EQ(curves.sources, reference.sources);
      EXPECT_EQ(curves.tvd, reference.tvd)
          << to_string(which) << " @ " << threads << " threads";
    }
  }
}

TEST(LayoutBfsBitwise, DistancesIdenticalAcrossLayouts) {
  const Graph g = layout_test_graph();
  FrontierBfs plain{g, FrontierBfs::Options{14, 24, GraphLayout::kPlain}};
  FrontierBfs hilo{g, FrontierBfs::Options{14, 24, GraphLayout::kHilo}};
  FrontierBfs packed{g,
                     FrontierBfs::Options{14, 24, GraphLayout::kCompressed}};
  for (const VertexId source : {VertexId{0}, VertexId{17}, VertexId{400}}) {
    const BfsResult& a = plain.run(source);
    const std::vector<std::uint32_t> distances = a.distances;
    const std::vector<std::uint64_t> levels = a.level_sizes;
    const std::uint64_t reached = a.reached;
    const BfsResult& b = hilo.run(source);
    EXPECT_EQ(b.distances, distances);
    EXPECT_EQ(b.level_sizes, levels);
    EXPECT_EQ(b.reached, reached);
    const BfsResult& c = packed.run(source);
    EXPECT_EQ(c.distances, distances);
    EXPECT_EQ(c.level_sizes, levels);
    EXPECT_EQ(c.reached, reached);
  }
}

}  // namespace
}  // namespace sntrust

#include "serve/trust_service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "parallel/parallel.hpp"
#include "serve/artifact_cache.hpp"
#include "serve/zipf.hpp"
#include "util/rng.hpp"

namespace sntrust::serve {
namespace {

using parallel::ScopedThreadCount;

Graph expander(VertexId n, std::uint64_t seed) {
  return largest_component(barabasi_albert(n, 4, seed)).graph;
}

TrustService::Options small_options() {
  TrustService::Options options;
  options.config.seeds = {0, 1, 2};
  options.config.gatekeeper.seed = 7;
  return options;
}

std::uint64_t counter_value(const char* name) {
  const obs::MetricsSnapshot snap = obs::Metrics::instance().snapshot();
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

/// The deterministic query mix the tests replay (all kinds, both defenses).
std::vector<Query> query_mix(const Graph& g, std::size_t count,
                             std::uint64_t seed) {
  const ZipfGenerator zipf{g.num_vertices(), 0.99};
  Rng rng{seed};
  std::vector<Query> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Query q;
    q.vertex = static_cast<VertexId>(zipf(rng));
    q.kind = static_cast<QueryKind>(rng.uniform(4));
    q.defense = rng.bernoulli(0.5) ? Defense::kSybilRank : Defense::kGateKeeper;
    queries.push_back(q);
  }
  return queries;
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::metrics_reset_all(); }
  void TearDown() override { obs::metrics_reset_all(); }
};

// ------------------------------------------------------------ zipf sampler ---

TEST(Zipf, DeterministicAcrossStreamsAndSkewedTowardLowRanks) {
  const ZipfGenerator zipf{1000, 0.99};
  Rng a{42}, b{42};
  std::vector<std::uint64_t> counts(1000, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t x = zipf(a);
    ASSERT_EQ(x, zipf(b));  // same seed => same trace, draw for draw
    ASSERT_LT(x, 1000u);
    ++counts[x];
  }
  // Zipf(0.99): rank 0 alone carries ~13% of the mass; the top decile
  // dominates the bottom decile by a wide margin.
  std::uint64_t top = 0, bottom = 0;
  for (int i = 0; i < 100; ++i) top += counts[i];
  for (int i = 900; i < 1000; ++i) bottom += counts[i];
  EXPECT_GT(counts[0], counts[500]);
  EXPECT_GT(top, 10 * bottom);
}

TEST(Zipf, ZeroExponentIsUniformAndBadArgsThrow) {
  const ZipfGenerator uniform{4, 0.0};
  Rng rng{1};
  std::vector<std::uint64_t> counts(4, 0);
  for (int i = 0; i < 8000; ++i) ++counts[uniform(rng)];
  for (const std::uint64_t c : counts) {
    EXPECT_GT(c, 1700u);
    EXPECT_LT(c, 2300u);
  }
  EXPECT_THROW(ZipfGenerator(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfGenerator(10, -0.5), std::invalid_argument);
}

// -------------------------------------------------------------- lru cache ---

TEST_F(ServeTest, CacheHitsMissesAndLruEviction) {
  ArtifactCache cache{2};
  const auto key = [](std::uint64_t graph_fp) {
    return ArtifactKey{ArtifactKind::kCoreness, 1, graph_fp};
  };
  int computes = 0;
  const auto make = [&computes] {
    ++computes;
    return CorenessArtifact{};
  };
  cache.get_or_compute<CorenessArtifact>(key(1), make);  // miss
  cache.get_or_compute<CorenessArtifact>(key(1), make);  // hit
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(counter_value("serve.cache_hits"), 1u);
  EXPECT_EQ(counter_value("serve.cache_misses"), 1u);

  cache.get_or_compute<CorenessArtifact>(key(2), make);  // miss, cache full
  cache.get_or_compute<CorenessArtifact>(key(1), make);  // hit; 2 now LRU
  cache.get_or_compute<CorenessArtifact>(key(3), make);  // miss, evicts 2
  EXPECT_EQ(counter_value("serve.cache_evictions"), 1u);
  EXPECT_TRUE(cache.contains(key(1)));
  EXPECT_FALSE(cache.contains(key(2)));
  EXPECT_TRUE(cache.contains(key(3)));
  EXPECT_EQ(cache.size(), 2u);
}

TEST_F(ServeTest, CacheInvalidationByGraphFingerprintBumpsVersion) {
  ArtifactCache cache{8};
  const auto make = [] { return CorenessArtifact{}; };
  cache.get_or_compute<CorenessArtifact>(
      ArtifactKey{ArtifactKind::kCoreness, 1, 10}, make);
  cache.get_or_compute<CorenessArtifact>(
      ArtifactKey{ArtifactKind::kSybilRank, 1, 10}, make);
  cache.get_or_compute<CorenessArtifact>(
      ArtifactKey{ArtifactKind::kCoreness, 1, 20}, make);
  const std::uint64_t version = cache.version();
  EXPECT_EQ(cache.invalidate_graph(10), 2u);  // both graph-10 entries drop
  EXPECT_GT(cache.version(), version);        // epoch moved
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(counter_value("serve.cache_invalidations"), 2u);
  EXPECT_EQ(cache.invalidate_graph(10), 0u);  // idempotent, no extra bump
  EXPECT_EQ(cache.invalidate_all(), 1u);
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------- trust service ---

TEST_F(ServeTest, RejectsBadConstruction) {
  EXPECT_THROW(TrustService(Graph{}, small_options()), std::invalid_argument);
  Graph g = expander(100, 1);
  TrustService::Options no_seeds = small_options();
  no_seeds.config.seeds.clear();
  EXPECT_THROW(TrustService(std::move(g), std::move(no_seeds)),
               std::invalid_argument);
  Graph g2 = expander(100, 1);
  TrustService::Options bad_seed = small_options();
  bad_seed.config.seeds = {1u << 30};
  EXPECT_THROW(TrustService(std::move(g2), std::move(bad_seed)),
               std::invalid_argument);
}

TEST_F(ServeTest, AnswersMatchUncachedReferenceBitwise) {
  TrustService service{expander(300, 2), small_options()};
  for (const Query& q : query_mix(service.graph(), 32, 99)) {
    const Answer cached = service.answer(q);
    const Answer uncached = service.answer_uncached(q);
    ASSERT_EQ(std::memcmp(&cached, &uncached, sizeof(Answer)), 0);
  }
  Query out_of_range;
  out_of_range.vertex = service.graph().num_vertices();
  EXPECT_EQ(service.answer(out_of_range).status, QueryStatus::kInvalidVertex);
}

TEST_F(ServeTest, BatchedPipelinedAnswersAreBitwiseIdentical) {
  TrustService service{expander(300, 3), small_options()};
  const std::vector<Query> queries = query_mix(service.graph(), 257, 5);

  // Reference: one-at-a-time direct answers, no engine.
  std::vector<Answer> reference(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i)
    reference[i] = service.answer(queries[i]);

  // answer_batch and the pipelined engine at several batch shapes.
  std::vector<Answer> direct(queries.size());
  service.answer_batch(queries, direct);
  EXPECT_EQ(std::memcmp(direct.data(), reference.data(),
                        queries.size() * sizeof(Answer)),
            0);
  for (const std::uint32_t batch_size : {1u, 7u, 4096u}) {
    TrustService::Options options = small_options();
    options.batch_size = batch_size;
    TrustService engine{expander(300, 3), std::move(options)};
    engine.start();
    std::vector<Answer> piped(queries.size());
    EXPECT_EQ(engine.ask_batch(queries, piped), queries.size());
    engine.stop();
    EXPECT_EQ(std::memcmp(piped.data(), reference.data(),
                          queries.size() * sizeof(Answer)),
              0)
        << "batch_size=" << batch_size;
  }
}

TEST_F(ServeTest, ThreadCountInvariance) {
  const std::vector<Query> queries =
      query_mix(expander(300, 4), 128, 11);
  std::vector<Answer> serial(queries.size());
  {
    ScopedThreadCount scoped{1};
    TrustService service{expander(300, 4), small_options()};
    service.start();
    service.ask_batch(queries, serial);
    service.stop();
  }
  std::vector<Answer> wide(queries.size());
  {
    ScopedThreadCount scoped{4};
    TrustService service{expander(300, 4), small_options()};
    service.start();
    service.ask_batch(queries, wide);
    service.stop();
  }
  EXPECT_EQ(std::memcmp(serial.data(), wide.data(),
                        queries.size() * sizeof(Answer)),
            0);
}

TEST_F(ServeTest, ReplaceGraphInvalidatesAndServesNewGraph) {
  TrustService service{expander(200, 5), small_options()};
  Query q;
  q.kind = QueryKind::kCoreness;
  q.vertex = 3;
  (void)service.answer(q);
  EXPECT_EQ(service.cache().size(), 4u);  // all four artifacts resident
  const std::uint64_t old_fp = service.graph().fingerprint();

  // Oracle: a fresh service over an identical graph, uncached path.
  TrustService oracle{expander(400, 6), small_options()};
  const Answer expected = oracle.answer_uncached(q);
  service.replace_graph(expander(400, 6));
  EXPECT_EQ(service.cache().size(), 0u);  // old graph's artifacts dropped
  EXPECT_EQ(counter_value("serve.cache_invalidations"), 4u);

  const Answer after = service.answer(q);  // re-warms against the new graph
  EXPECT_EQ(service.cache().size(), 4u);
  EXPECT_EQ(after, expected);
  EXPECT_NE(service.graph().fingerprint(), old_fp);
}

TEST_F(ServeTest, StopDrainsEverythingAlreadyQueued) {
  TrustService::Options options = small_options();
  options.batch_size = 8;
  TrustService service{expander(300, 7), std::move(options)};
  service.start();
  const std::vector<Query> queries = query_mix(service.graph(), 500, 13);
  std::vector<Answer> answers(queries.size());
  std::size_t served = 0;
  std::thread client{[&] { served = service.ask_batch(queries, answers); }};
  // ask_batch enqueues the whole span under one lock hold (the 4096-slot
  // ring never fills on 500 queries), so once the first batch lands every
  // query is already queued — stop() now must drain all of them.
  while (counter_value("serve.batches") == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  service.stop();
  client.join();
  EXPECT_EQ(served, queries.size());
  for (const Answer& answer : answers)
    ASSERT_EQ(answer.status, QueryStatus::kOk);
}

TEST_F(ServeTest, CancellationReturnsExplicitPartialAnswers) {
  exec::CancelSource source;
  TrustService::Options options = small_options();
  options.token = source.token();
  TrustService service{expander(300, 8), std::move(options)};
  service.start();

  const std::vector<Query> queries = query_mix(service.graph(), 64, 17);
  std::vector<Answer> answers(queries.size());
  EXPECT_EQ(service.ask_batch(queries, answers), queries.size());

  source.cancel();
  std::vector<Answer> refused(queries.size());
  // Post-deadline submissions complete immediately with explicit kCancelled
  // partials (the exit-75 contract) instead of blocking.
  EXPECT_EQ(service.ask_batch(queries, refused), 0u);
  for (const Answer& answer : refused)
    EXPECT_EQ(answer.status, QueryStatus::kCancelled);
  EXPECT_GE(counter_value("serve.cancelled"), refused.size());
  service.stop();
}

// ----------------------------------------------- hot-path allocation audit ---

class ServeAllocTest : public ServeTest {
 protected:
  void SetUp() override {
    ServeTest::SetUp();
    was_enabled_ = obs::alloc_stats_enabled();
  }
  void TearDown() override {
    obs::set_alloc_stats_enabled(was_enabled_);
    ServeTest::TearDown();
  }
  bool was_enabled_ = false;
};

TEST_F(ServeAllocTest, WarmDirectPathDoesNotAllocatePerQuery) {
  TrustService service{expander(300, 9), small_options()};
  const std::vector<Query> queries = query_mix(service.graph(), 4096, 19);
  std::vector<Answer> answers(queries.size());
  // Touch every artifact once so lazy init is out of the measured window.
  service.answer_batch(queries, answers);

  obs::set_alloc_stats_enabled(true);
  const obs::ResourceUsage before = obs::resource_usage_now();
  for (const Query& q : queries) answers[0] = service.answer(q);
  service.answer_batch(queries, answers);
  const obs::ResourceUsage after = obs::resource_usage_now();
  obs::set_alloc_stats_enabled(false);

  // 8192 warm queries: the budget tolerates incidental slack (e.g. the
  // windowed histogram recycling a slot) but is far below one allocation
  // per query, pinning the fixed-size-answer contract.
  EXPECT_LT(after.alloc_count - before.alloc_count, 64u);
}

}  // namespace
}  // namespace sntrust::serve

#include "graph/builder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>

namespace sntrust {
namespace {

TEST(GraphBuilder, BuildsSimpleGraph) {
  GraphBuilder b{4};
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(GraphBuilder, DropsSelfLoops) {
  GraphBuilder b{3};
  b.add_edge(1, 1);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.has_edge(1, 1));
}

TEST(GraphBuilder, CollapsesDuplicates) {
  GraphBuilder b{3};
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // same undirected edge
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(GraphBuilder, OutOfRangeEndpointThrows) {
  GraphBuilder b{2};
  EXPECT_THROW(b.add_edge(0, 2), std::out_of_range);
  EXPECT_THROW(b.add_edge(2, 0), std::out_of_range);
}

TEST(GraphBuilder, EmptyBuild) {
  GraphBuilder b{5};
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(GraphBuilder, ZeroVertexBuild) {
  GraphBuilder b{0};
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 0u);
}

TEST(GraphBuilder, ReusableAfterBuild) {
  GraphBuilder b{3};
  b.add_edge(0, 1);
  const Graph first = b.build();
  b.add_edge(1, 2);
  const Graph second = b.build();
  EXPECT_EQ(first.num_edges(), 1u);
  EXPECT_EQ(second.num_edges(), 2u);
}

TEST(GraphBuilder, PendingEdgesCountsRecords) {
  GraphBuilder b{3};
  EXPECT_EQ(b.pending_edges(), 0u);
  b.add_edge(0, 1);
  b.add_edge(0, 1);  // duplicate still counted as pending
  b.add_edge(2, 2);  // self loop ignored entirely
  EXPECT_EQ(b.pending_edges(), 2u);
}

TEST(GraphBuilder, GraphFromEdgesHelper) {
  const Graph g = graph_from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.has_edge(3, 0));
}

TEST(GraphBuilder, LargeRandomRoundTrip) {
  // Property: builder output passes Graph's own CSR validation (implicit in
  // construction) and reports the exact deduplicated edge count.
  GraphBuilder b{100};
  std::uint64_t x = 88172645463325252ULL;
  auto next = [&x] {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    return x;
  };
  std::set<std::pair<VertexId, VertexId>> expected;
  for (int i = 0; i < 5000; ++i) {
    auto u = static_cast<VertexId>(next() % 100);
    auto v = static_cast<VertexId>(next() % 100);
    b.add_edge(u, v);
    if (u != v) expected.insert({std::min(u, v), std::max(u, v)});
  }
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), expected.size());
  for (const auto& [u, v] : expected) EXPECT_TRUE(g.has_edge(u, v));
}

}  // namespace
}  // namespace sntrust

#include "centrality/centrality.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::barbell_graph;
using testing::complete_graph;
using testing::cycle_graph;
using testing::path_graph;
using testing::star_graph;

TEST(Betweenness, StarHubTakesAllPairs) {
  const Graph g = star_graph(8);  // 7 leaves
  const auto scores = betweenness_centrality(g);
  // Hub mediates all C(7,2) = 21 leaf pairs.
  EXPECT_NEAR(scores[0], 21.0, 1e-9);
  for (VertexId v = 1; v < 8; ++v) EXPECT_NEAR(scores[v], 0.0, 1e-9);
}

TEST(Betweenness, PathInteriorValues) {
  // Path 0-1-2-3-4: vertex i mediates i * (n-1-i) pairs.
  const Graph g = path_graph(5);
  const auto scores = betweenness_centrality(g);
  EXPECT_NEAR(scores[0], 0.0, 1e-9);
  EXPECT_NEAR(scores[1], 3.0, 1e-9);
  EXPECT_NEAR(scores[2], 4.0, 1e-9);
  EXPECT_NEAR(scores[3], 3.0, 1e-9);
  EXPECT_NEAR(scores[4], 0.0, 1e-9);
}

TEST(Betweenness, CompleteGraphIsZero) {
  const auto scores = betweenness_centrality(complete_graph(6));
  for (const double s : scores) EXPECT_NEAR(s, 0.0, 1e-9);
}

TEST(Betweenness, CycleSplitsShortestPaths) {
  // On C_5, each pair at distance 2 has a unique shortest path through one
  // intermediate; by symmetry every vertex mediates the same count.
  const auto scores = betweenness_centrality(cycle_graph(5));
  for (const double s : scores) EXPECT_NEAR(s, scores[0], 1e-9);
  EXPECT_GT(scores[0], 0.0);
}

TEST(Betweenness, BridgeVertexDominatesBarbell) {
  const auto scores = betweenness_centrality(barbell_graph());
  // Vertices 2 and 3 carry all cross-triangle pairs.
  const double bridge = scores[2];
  EXPECT_NEAR(scores[3], bridge, 1e-9);
  for (const VertexId v : {0u, 1u, 4u, 5u}) EXPECT_LT(scores[v], bridge);
}

TEST(Betweenness, EvenSplitAcrossParallelPaths) {
  // C_4: pair (0,2) has two shortest paths via 1 and 3; each gets 1/2.
  const auto scores = betweenness_centrality(cycle_graph(4));
  for (const double s : scores) EXPECT_NEAR(s, 0.5, 1e-9);
}

TEST(Betweenness, SampledEstimatesExact) {
  const Graph g = largest_component(barabasi_albert(300, 3, 5)).graph;
  const auto exact = betweenness_centrality(g);
  CentralityOptions options;
  options.num_sources = 150;
  options.seed = 5;
  const auto sampled = betweenness_centrality(g, options);
  // Compare the rank of the top exact vertex.
  const auto top =
      std::max_element(exact.begin(), exact.end()) - exact.begin();
  const double ratio = sampled[top] / exact[top];
  EXPECT_GT(ratio, 0.6);
  EXPECT_LT(ratio, 1.6);
}

TEST(Betweenness, NormalizationStarHubIsOne) {
  const Graph g = star_graph(8);
  const auto normalized =
      normalize_betweenness(betweenness_centrality(g), g.num_vertices());
  EXPECT_NEAR(normalized[0], 1.0, 1e-9);
}

TEST(Betweenness, NormalizeTinyThrows) {
  EXPECT_THROW(normalize_betweenness({0.0}, 2), std::invalid_argument);
}

TEST(Betweenness, TinyGraphAllZero) {
  const auto scores = betweenness_centrality(path_graph(2));
  for (const double s : scores) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(Closeness, StarHubClosest) {
  const Graph g = star_graph(9);
  const auto scores = closeness_centrality(g);
  EXPECT_NEAR(scores[0], 1.0, 1e-9);              // hub: distance 1 to all
  EXPECT_NEAR(scores[1], 8.0 / 15.0, 1e-9);       // leaf: 1 + 7*2 = 15
}

TEST(Closeness, PathEndpointsFarthest) {
  const Graph g = path_graph(5);
  const auto scores = closeness_centrality(g);
  EXPECT_GT(scores[2], scores[1]);
  EXPECT_GT(scores[1], scores[0]);
}

TEST(Closeness, CompleteGraphAllOne) {
  const auto scores = closeness_centrality(complete_graph(7));
  for (const double s : scores) EXPECT_NEAR(s, 1.0, 1e-9);
}

TEST(Closeness, IsolatedVertexIsZero) {
  GraphBuilder b{3};
  b.add_edge(0, 1);
  const auto scores = closeness_centrality(b.build());
  EXPECT_DOUBLE_EQ(scores[2], 0.0);
}

TEST(Closeness, SampledPreservesOrdering) {
  const Graph g = path_graph(40);
  CentralityOptions options;
  options.num_sources = 20;
  options.seed = 7;
  const auto sampled = closeness_centrality(g, options);
  // Middle beats the endpoint under any source subset of a path.
  EXPECT_GT(sampled[20], sampled[0]);
}

TEST(Closeness, HubsBeatLeavesOnScaleFree) {
  const Graph g = largest_component(barabasi_albert(400, 3, 9)).graph;
  const auto closeness = closeness_centrality(g);
  // The max-degree vertex should be among the most central.
  VertexId hub = 0;
  for (VertexId v = 1; v < g.num_vertices(); ++v)
    if (g.degree(v) > g.degree(hub)) hub = v;
  std::uint32_t better = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (closeness[v] > closeness[hub]) ++better;
  EXPECT_LT(better, g.num_vertices() / 20);
}

}  // namespace
}  // namespace sntrust

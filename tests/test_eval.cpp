#include "sybil/eval.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "graph/components.hpp"

namespace sntrust {
namespace {

TEST(RankingFromScores, DescendingOrder) {
  const Ranking r = ranking_from_scores({0.2, 0.9, 0.5});
  EXPECT_EQ(r, (Ranking{1, 2, 0}));
}

TEST(RankingFromScores, StableOnTies) {
  const Ranking r = ranking_from_scores({0.5, 0.5, 0.5});
  EXPECT_EQ(r, (Ranking{0, 1, 2}));
}

TEST(RankingOverlap, IdenticalIsOne) {
  const Ranking r{0, 1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(ranking_overlap(r, r, 1), 1.0);
}

TEST(RankingOverlap, ReversedIsLow) {
  Ranking a{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  Ranking b{9, 8, 7, 6, 5, 4, 3, 2, 1, 0};
  const double overlap = ranking_overlap(a, b, 1);
  EXPECT_LT(overlap, 0.5);
  EXPECT_GT(overlap, 0.0);
}

TEST(RankingOverlap, PartialAgreement) {
  // Same top half, scrambled bottom half.
  Ranking a{0, 1, 2, 3, 4, 5};
  Ranking b{0, 1, 2, 5, 4, 3};
  const double overlap = ranking_overlap(a, b, 1);
  EXPECT_GT(overlap, 0.7);
  EXPECT_LE(overlap, 1.0);
}

TEST(RankingOverlap, SizeMismatchThrows) {
  EXPECT_THROW(ranking_overlap({0, 1}, {0}), std::invalid_argument);
}

TEST(RankingOverlap, EmptyIsOne) {
  EXPECT_DOUBLE_EQ(ranking_overlap({}, {}), 1.0);
}

TEST(RankingAuc, PerfectSeparation) {
  const Graph honest = largest_component(barabasi_albert(50, 3, 1)).graph;
  AttackParams attack;
  attack.num_sybils = 20;
  attack.attack_edges = 2;
  attack.seed = 1;
  const AttackedGraph attacked{honest, attack};
  Ranking perfect;
  for (VertexId v = 0; v < attacked.graph().num_vertices(); ++v)
    perfect.push_back(v);  // honest ids first by construction
  EXPECT_DOUBLE_EQ(ranking_auc(perfect, attacked), 1.0);
}

TEST(RankingAuc, WorstSeparationIsZero) {
  const Graph honest = largest_component(barabasi_albert(50, 3, 2)).graph;
  AttackParams attack;
  attack.num_sybils = 20;
  attack.attack_edges = 2;
  attack.seed = 2;
  const AttackedGraph attacked{honest, attack};
  Ranking reversed;
  for (VertexId v = attacked.graph().num_vertices(); v > 0; --v)
    reversed.push_back(v - 1);
  EXPECT_DOUBLE_EQ(ranking_auc(reversed, attacked), 0.0);
}

TEST(RankingAuc, SizeMismatchThrows) {
  const Graph honest = largest_component(barabasi_albert(50, 3, 3)).graph;
  AttackParams attack;
  attack.num_sybils = 5;
  attack.attack_edges = 1;
  const AttackedGraph attacked{honest, attack};
  EXPECT_THROW(ranking_auc({0, 1, 2}, attacked), std::invalid_argument);
}

}  // namespace
}  // namespace sntrust

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <set>

namespace sntrust {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a{7};
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng{3};
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Rng, UniformBoundOneIsAlwaysZero) {
  Rng rng{3};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, UniformZeroBoundThrows) {
  Rng rng{3};
  EXPECT_THROW(rng.uniform(0), std::invalid_argument);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng{11};
  std::array<int, 8> counts{};
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform(8)];
  for (const int c : counts) {
    EXPECT_GT(c, kDraws / 8 * 0.9);
    EXPECT_LT(c, kDraws / 8 * 1.1);
  }
}

TEST(Rng, UniformInCoversRange) {
  Rng rng{5};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformInBadRangeThrows) {
  Rng rng{5};
  EXPECT_THROW(rng.uniform_in(3, 2), std::invalid_argument);
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng{9};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform_real();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRealMeanNearHalf) {
  Rng rng{13};
  double sum = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += rng.uniform_real();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng{17};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW(rng.bernoulli(-0.1), std::invalid_argument);
  EXPECT_THROW(rng.bernoulli(1.1), std::invalid_argument);
}

TEST(Rng, BernoulliRateMatchesP) {
  Rng rng{19};
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, GeometricMeanMatchesTheory) {
  Rng rng{23};
  const double p = 0.2;
  double sum = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i)
    sum += static_cast<double>(rng.geometric(p));
  // Mean of failures-before-success geometric is (1-p)/p = 4.
  EXPECT_NEAR(sum / kDraws, (1 - p) / p, 0.15);
}

TEST(Rng, GeometricPOneIsZero) {
  Rng rng{29};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, GeometricBadPThrows) {
  Rng rng{29};
  EXPECT_THROW(rng.geometric(0.0), std::invalid_argument);
  EXPECT_THROW(rng.geometric(1.5), std::invalid_argument);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng{31};
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  auto shuffled = values;
  rng.shuffle(std::span<int>{shuffled});
  EXPECT_FALSE(std::equal(values.begin(), values.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(values, shuffled);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng{37};
  const auto sample = rng.sample_without_replacement(1000, 200);
  EXPECT_EQ(sample.size(), 200u);
  std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 200u);
  for (const auto v : sample) EXPECT_LT(v, 1000u);
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng{41};
  const auto sample = rng.sample_without_replacement(50, 50);
  std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(Rng, SampleWithoutReplacementTooManyThrows) {
  Rng rng{43};
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a{47};
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace sntrust

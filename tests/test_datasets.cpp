#include "gen/datasets.hpp"

#include <gtest/gtest.h>

#include "digraph/digraph.hpp"
#include "gen/generators.hpp"

#include <algorithm>
#include <set>

#include "graph/components.hpp"
#include "graph/stats.hpp"

namespace sntrust {
namespace {

TEST(Datasets, RegistryHasFourteenEntries) {
  EXPECT_EQ(all_datasets().size(), 14u);
}

TEST(Datasets, IdsAreUnique) {
  std::set<std::string> ids;
  for (const DatasetSpec& spec : all_datasets()) ids.insert(spec.id);
  EXPECT_EQ(ids.size(), all_datasets().size());
}

TEST(Datasets, LookupByIdWorks) {
  const DatasetSpec& spec = dataset_by_id("wiki_vote");
  EXPECT_EQ(spec.name, "Wiki-vote");
  EXPECT_EQ(spec.paper_nodes, 7066u);
}

TEST(Datasets, UnknownIdThrows) {
  EXPECT_THROW(dataset_by_id("nope"), std::invalid_argument);
}

TEST(Datasets, FigureSubsetsResolve) {
  for (const auto& ids :
       {figure1_small_ids(), figure1_large_ids(), figure2_small_ids(),
        figure2_large_ids(), figure3_ids(), figure5_ids(), table2_ids()}) {
    EXPECT_FALSE(ids.empty());
    for (const std::string& id : ids) EXPECT_NO_THROW(dataset_by_id(id));
  }
}

TEST(Datasets, GeneratedGraphsAreConnected) {
  // Scaled far down: just checking the largest-component reduction happened.
  for (const char* id : {"wiki_vote", "physics_1", "rice_grad"}) {
    const Graph g = dataset_by_id(id).generate(0.25, 7);
    EXPECT_TRUE(is_connected(g)) << id;
    EXPECT_GT(g.num_edges(), 0u) << id;
  }
}

TEST(Datasets, GenerationIsDeterministic) {
  const DatasetSpec& spec = dataset_by_id("epinion");
  const Graph a = spec.generate(0.05, 9);
  const Graph b = spec.generate(0.05, 9);
  EXPECT_EQ(a, b);
}

TEST(Datasets, ScaleControlsSize) {
  const DatasetSpec& spec = dataset_by_id("slashdot_a");
  const Graph small = spec.generate(0.02, 3);
  const Graph large = spec.generate(0.08, 3);
  EXPECT_GT(large.num_vertices(), 2 * small.num_vertices());
}

TEST(Datasets, BadScaleThrows) {
  EXPECT_THROW(dataset_by_id("wiki_vote").generate(0.0, 1),
               std::invalid_argument);
}

TEST(Datasets, SizeRoughlyTracksPaperAtFullScale) {
  // Small datasets generate at full paper scale; sizes should be within a
  // factor of the reported node counts (largest component shrinks a bit).
  const DatasetSpec& spec = dataset_by_id("physics_1");
  const Graph g = spec.generate(1.0, 1);
  EXPECT_GT(g.num_vertices(), spec.paper_nodes / 3);
  EXPECT_LT(g.num_vertices(), spec.paper_nodes * 2);
}

TEST(Datasets, SlowClassHasHigherClusteringThanFastClass) {
  // The substitution's load-bearing distinction: co-authorship analogues are
  // clique-heavy, interaction analogues are randomly wired.
  const Graph slow = dataset_by_id("physics_1").generate(0.5, 5);
  const Graph fast = dataset_by_id("wiki_vote").generate(0.5, 5);
  EXPECT_GT(average_local_clustering(slow),
            1.5 * average_local_clustering(fast));
}

TEST(Datasets, MixingClassLabels) {
  EXPECT_EQ(to_string(MixingClass::kFast), "fast");
  EXPECT_EQ(to_string(MixingClass::kModerate), "moderate");
  EXPECT_EQ(to_string(MixingClass::kSlow), "slow");
  EXPECT_EQ(dataset_by_id("physics_2").expected_class, MixingClass::kSlow);
  EXPECT_EQ(dataset_by_id("epinion").expected_class, MixingClass::kFast);
}

TEST(Datasets, ReciprocityMetadata) {
  EXPECT_NEAR(dataset_by_id("wiki_vote").reciprocity, 0.06, 1e-9);
  EXPECT_NEAR(dataset_by_id("slashdot_a").reciprocity, 0.82, 1e-9);
  EXPECT_DOUBLE_EQ(dataset_by_id("physics_1").reciprocity, 1.0);
}

TEST(Datasets, GenerateDirectedRespectsReciprocity) {
  const DatasetSpec& wiki = dataset_by_id("wiki_vote");
  const Digraph d = generate_directed(wiki, 0.1, 5);
  const Graph u = d.undirected();
  // At reciprocity r, arcs ~= (1 + r) * edges.
  const double ratio =
      static_cast<double>(d.num_arcs()) / static_cast<double>(u.num_edges());
  EXPECT_NEAR(ratio, 1.0 + wiki.reciprocity, 0.03);
}

TEST(Datasets, GenerateDirectedDeterministic) {
  const DatasetSpec& spec = dataset_by_id("epinion");
  const Digraph a = generate_directed(spec, 0.03, 7);
  const Digraph b = generate_directed(spec, 0.03, 7);
  EXPECT_EQ(a.num_arcs(), b.num_arcs());
  EXPECT_EQ(a.num_vertices(), b.num_vertices());
}

TEST(PowerlawDegrees, RespectsBounds) {
  const auto degrees = powerlaw_degrees(5000, 2.2, 3, 200, 13);
  EXPECT_EQ(degrees.size(), 5000u);
  for (const VertexId d : degrees) {
    EXPECT_GE(d, 3u);
    EXPECT_LE(d, 200u);
  }
}

TEST(PowerlawDegrees, HeavyTailPresent) {
  const auto degrees = powerlaw_degrees(5000, 2.0, 2, 1000, 17);
  const VertexId max_degree = *std::max_element(degrees.begin(), degrees.end());
  EXPECT_GT(max_degree, 50u);
}

TEST(PowerlawDegrees, BadParamsThrow) {
  EXPECT_THROW(powerlaw_degrees(10, 1.0, 2, 5, 1), std::invalid_argument);
  EXPECT_THROW(powerlaw_degrees(10, 2.0, 0, 5, 1), std::invalid_argument);
  EXPECT_THROW(powerlaw_degrees(10, 2.0, 6, 5, 1), std::invalid_argument);
}

}  // namespace
}  // namespace sntrust

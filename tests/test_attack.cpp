#include "sybil/attack.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "graph/traversal.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

Graph honest_graph() {
  return largest_component(barabasi_albert(300, 3, 111)).graph;
}

TEST(AttackedGraph, LayoutAndLabels) {
  AttackParams params;
  params.num_sybils = 50;
  params.attack_edges = 10;
  const Graph honest = honest_graph();
  const AttackedGraph attacked{honest, params};

  EXPECT_EQ(attacked.num_honest(), honest.num_vertices());
  EXPECT_EQ(attacked.num_sybils(), 50u);
  EXPECT_EQ(attacked.graph().num_vertices(),
            honest.num_vertices() + 50u);
  for (VertexId v = 0; v < attacked.num_honest(); ++v)
    EXPECT_FALSE(attacked.is_sybil(v));
  for (VertexId v = attacked.num_honest();
       v < attacked.graph().num_vertices(); ++v)
    EXPECT_TRUE(attacked.is_sybil(v));
}

TEST(AttackedGraph, HonestRegionUnchanged) {
  const Graph honest = honest_graph();
  AttackParams params;
  params.num_sybils = 40;
  params.attack_edges = 5;
  const AttackedGraph attacked{honest, params};
  // Every honest edge must still exist; honest-honest edges unchanged.
  for (const Edge& e : honest.edges())
    EXPECT_TRUE(attacked.graph().has_edge(e.u, e.v));
}

TEST(AttackedGraph, AttackEdgeCountApproximate) {
  const Graph honest = honest_graph();
  AttackParams params;
  params.num_sybils = 100;
  params.attack_edges = 25;
  const AttackedGraph attacked{honest, params};
  // Count realized honest<->sybil edges (duplicates may collapse).
  std::uint32_t realized = 0;
  for (VertexId v = 0; v < attacked.num_honest(); ++v)
    for (const VertexId w : attacked.graph().neighbors(v))
      if (attacked.is_sybil(w)) ++realized;
  EXPECT_LE(realized, 25u);
  EXPECT_GE(realized, 23u);  // collisions are rare at this density
  EXPECT_EQ(attacked.attack_endpoints().size(), 25u);
}

TEST(AttackedGraph, SybilRegionIsWired) {
  const Graph honest = honest_graph();
  AttackParams params;
  params.num_sybils = 200;
  params.attack_edges = 4;
  params.sybil_internal_degree = 3;
  const AttackedGraph attacked{honest, params};
  std::uint64_t internal_half_edges = 0;
  for (VertexId v = attacked.num_honest();
       v < attacked.graph().num_vertices(); ++v)
    for (const VertexId w : attacked.graph().neighbors(v))
      if (attacked.is_sybil(w)) ++internal_half_edges;
  EXPECT_GT(internal_half_edges / 2, 400u);  // ~3 per sybil
}

TEST(AttackedGraph, TinySybilRegionIsClique) {
  const Graph honest = honest_graph();
  AttackParams params;
  params.num_sybils = 3;
  params.attack_edges = 2;
  params.sybil_internal_degree = 5;  // bigger than region: clique fallback
  const AttackedGraph attacked{honest, params};
  const VertexId base = attacked.num_honest();
  EXPECT_TRUE(attacked.graph().has_edge(base, base + 1));
  EXPECT_TRUE(attacked.graph().has_edge(base, base + 2));
  EXPECT_TRUE(attacked.graph().has_edge(base + 1, base + 2));
}

TEST(AttackedGraph, CombinedGraphIsConnected) {
  const Graph honest = honest_graph();
  AttackParams params;
  params.num_sybils = 30;
  params.attack_edges = 3;
  const AttackedGraph attacked{honest, params};
  EXPECT_TRUE(is_connected(attacked.graph()));
}

TEST(AttackedGraph, DeterministicInSeed) {
  const Graph honest = honest_graph();
  AttackParams params;
  params.num_sybils = 30;
  params.attack_edges = 3;
  params.seed = 77;
  const AttackedGraph a{honest, params};
  const AttackedGraph b{honest, params};
  EXPECT_EQ(a.graph(), b.graph());
}

TEST(AttackedGraph, HubStrategyHitsHigherDegreeEndpoints) {
  const Graph honest = honest_graph();
  AttackParams random_attack;
  random_attack.num_sybils = 60;
  random_attack.attack_edges = 40;
  random_attack.seed = 42;
  AttackParams hub_attack = random_attack;
  hub_attack.strategy = AttackStrategy::kTargetHubs;

  const auto mean_endpoint_degree = [&](const AttackParams& params) {
    const AttackedGraph attacked{honest, params};
    double total = 0.0;
    for (const VertexId v : attacked.attack_endpoints())
      total += honest.degree(v);
    return total / attacked.attack_endpoints().size();
  };
  EXPECT_GT(mean_endpoint_degree(hub_attack),
            1.5 * mean_endpoint_degree(random_attack));
}

TEST(AttackedGraph, NearSeedStrategyClustersAroundTarget) {
  const Graph honest = honest_graph();
  AttackParams params;
  params.num_sybils = 40;
  params.attack_edges = 10;
  params.strategy = AttackStrategy::kNearSeed;
  params.target = 5;
  params.seed = 43;
  const AttackedGraph attacked{honest, params};
  const BfsResult distances = bfs(honest, 5);
  for (const VertexId v : attacked.attack_endpoints())
    EXPECT_LE(distances.distances[v], 2u);
}

TEST(AttackedGraph, SingleRegionStrategyStaysInOneBall) {
  const Graph honest = honest_graph();
  AttackParams params;
  params.num_sybils = 40;
  params.attack_edges = 20;
  params.strategy = AttackStrategy::kSingleRegion;
  params.target = 0;
  params.seed = 44;
  const AttackedGraph attacked{honest, params};
  // All endpoints within the ball holding ~n/10 closest vertices.
  const BfsResult distances = bfs(honest, 0);
  std::uint32_t worst = 0;
  for (const VertexId v : attacked.attack_endpoints())
    worst = std::max(worst, distances.distances[v]);
  EXPECT_LE(worst, 3u);
}

TEST(AttackedGraph, StrategyTargetOutOfRangeThrows) {
  const Graph honest = honest_graph();
  AttackParams params;
  params.num_sybils = 10;
  params.attack_edges = 2;
  params.strategy = AttackStrategy::kNearSeed;
  params.target = honest.num_vertices() + 5;
  EXPECT_THROW(AttackedGraph(honest, params), std::invalid_argument);
}

TEST(AttackedGraph, BadParamsThrow) {
  const Graph honest = honest_graph();
  AttackParams params;
  params.num_sybils = 0;
  EXPECT_THROW(AttackedGraph(honest, params), std::invalid_argument);
  params.num_sybils = 10;
  params.attack_edges = 0;
  EXPECT_THROW(AttackedGraph(honest, params), std::invalid_argument);
  params.attack_edges = 1;
  EXPECT_THROW(AttackedGraph(testing::disconnected_graph(), params),
               std::invalid_argument);
}

}  // namespace
}  // namespace sntrust

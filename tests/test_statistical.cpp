// Statistical correctness of the stochastic components: Monte-Carlo
// machinery must converge to the exact quantities the deterministic
// machinery computes. These are distribution-level checks (generous
// tolerances, fixed seeds) — not flaky 1-in-a-million assertions.
#include <gtest/gtest.h>

#include <cmath>

#include "community/community.hpp"
#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "graph/traversal.hpp"
#include "markov/dense_spectrum.hpp"
#include "markov/spectral.hpp"
#include "markov/transition.hpp"
#include "markov/walker.hpp"
#include "sybil/gatekeeper.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::petersen_graph;
using testing::two_cliques;

TEST(Statistical, WalkEndpointsMatchExactDistribution) {
  // Empirical endpoint frequencies of many t-step walks must match e_s P^t.
  const Graph g = two_cliques(6);
  const std::uint32_t t = 7;
  Distribution expected = dirac(g.num_vertices(), 0);
  evolve(g, expected, t);

  RandomWalker walker{g, 99};
  constexpr std::uint32_t kWalks = 60000;
  std::vector<double> empirical(g.num_vertices(), 0.0);
  for (std::uint32_t i = 0; i < kWalks; ++i)
    empirical[walker.walk_endpoint(0, t)] += 1.0 / kWalks;
  EXPECT_LT(total_variation(empirical, expected), 0.02);
}

TEST(Statistical, RouteFirstHopIsUniformOverSlots) {
  // A route's first hop leaving through slot i visits neighbors[i]; over
  // uniformly drawn slots the first-hop distribution is uniform over the
  // neighbourhood (the property SybilLimit's tail analysis needs).
  const Graph g = petersen_graph();
  const RouteTables tables{g, 7};
  std::vector<std::uint32_t> counts(3, 0);
  Rng rng{7};
  for (int i = 0; i < 30000; ++i) {
    const auto slot = static_cast<std::uint32_t>(rng.uniform(3));
    const auto trail = tables.route(0, slot, 1);
    // Map the landed neighbour back to its index.
    const auto nbrs = g.neighbors(0);
    for (std::uint32_t k = 0; k < 3; ++k)
      if (nbrs[k] == trail[1]) ++counts[k];
  }
  for (const auto c : counts) {
    EXPECT_GT(c, 9000u);
    EXPECT_LT(c, 11000u);
  }
}

TEST(Statistical, SybilLimitTailsFollowStationaryEdgeMeasure) {
  // Long-route tails land on directed edges ~uniformly (the stationary
  // measure of the route process). Check via the tail-vertex marginal: it
  // should be close to the degree distribution.
  const Graph g = largest_component(barabasi_albert(150, 3, 11)).graph;
  const HashedRoutes routes{g, 11};
  const Distribution pi = stationary_distribution(g);
  std::vector<double> empirical(g.num_vertices(), 0.0);
  Rng rng{11};
  constexpr std::uint32_t kRoutes = 30000;
  for (std::uint32_t i = 0; i < kRoutes; ++i) {
    const auto v = static_cast<VertexId>(rng.uniform(g.num_vertices()));
    const auto slot = static_cast<std::uint32_t>(rng.uniform(g.degree(v)));
    const auto [tail_u, tail_w] = routes.route_tail(v, slot, 25, i % 64);
    empirical[tail_w] += 1.0 / kRoutes;
  }
  // Starting vertices were uniform (not stationary), so allow a loose match.
  EXPECT_LT(total_variation(empirical, pi), 0.15);
}

TEST(Statistical, GateKeeperTicketConservation) {
  // Tickets are conserved level by level: what arrives at BFS level l+1 is
  // what arrived at level l minus one consumed per reached vertex (and
  // minus dead-end losses). A ticket travelling k levels is counted once at
  // each level, so the correct invariant is the per-level recurrence, not a
  // global sum.
  const Graph g = largest_component(barabasi_albert(300, 3, 13)).graph;
  const TicketRun run = distribute_tickets(g, 0, 777);
  std::uint64_t consumed_total = 0;
  for (const auto flag : run.reached)
    if (flag) ++consumed_total;
  EXPECT_EQ(consumed_total, run.vertices_reached);
  EXPECT_LE(consumed_total, run.tickets_sent);

  const BfsResult levels = bfs(g, 0);
  std::vector<std::uint64_t> received_at(levels.level_sizes.size(), 0);
  std::vector<std::uint64_t> consumed_at(levels.level_sizes.size(), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (levels.distances[v] == kUnreachable) continue;
    received_at[levels.distances[v]] += run.tickets_received[v];
    if (run.reached[v]) ++consumed_at[levels.distances[v]];
  }
  EXPECT_EQ(received_at[0], run.tickets_sent);
  for (std::size_t l = 0; l + 1 < received_at.size(); ++l)
    EXPECT_LE(received_at[l + 1], received_at[l] - consumed_at[l])
        << "level " << l;
}

TEST(Statistical, CheegerBracketsSweepConductance) {
  // Cheeger: gap/2 <= phi(G) <= sqrt(2 gap); the sweep finds a cut whose
  // conductance must respect the upper bound (it is a real cut) and the
  // true phi respects the lower one (we check the sweep's result, which
  // upper-bounds phi, against the lower bound too).
  for (const Graph& g :
       {two_cliques(8),
        largest_component(planted_partition(200, 3, 0.25, 0.01, 17)).graph}) {
    const DenseSpectrum spectrum = dense_spectrum(g);
    const CheegerBounds bounds = cheeger_bounds(spectrum.eigenvalues[1]);
    const double sweep_phi =
        conductance_sweep(g, fiedler_vector(g)).best_conductance;
    EXPECT_GE(sweep_phi + 1e-9, bounds.lower);
    EXPECT_LE(sweep_phi, bounds.upper + 1e-9);
  }
}

TEST(Statistical, CheegerBoundsBasics) {
  const CheegerBounds tight = cheeger_bounds(1.0);
  EXPECT_DOUBLE_EQ(tight.lower, 0.0);
  EXPECT_DOUBLE_EQ(tight.upper, 0.0);
  const CheegerBounds loose = cheeger_bounds(0.0);
  EXPECT_DOUBLE_EQ(loose.lower, 0.5);
  EXPECT_NEAR(loose.upper, std::sqrt(2.0), 1e-12);
  EXPECT_THROW(cheeger_bounds(1.5), std::invalid_argument);
}

TEST(Statistical, SpectralGapPredictsTvdDecayRate) {
  // Asymptotically TVD(t) ~ C * mu^t; the measured decay ratio between
  // consecutive late steps should approach the SLEM.
  const Graph g = largest_component(barabasi_albert(200, 4, 19)).graph;
  const double mu = second_largest_eigenvalue(g).mu;
  Distribution p = dirac(g.num_vertices(), 0);
  const Distribution pi = stationary_distribution(g);
  evolve(g, p, 25);
  const double tvd_a = total_variation(p, pi);
  evolve(g, p, 5);
  const double tvd_b = total_variation(p, pi);
  if (tvd_b > 1e-13) {
    const double rate = std::pow(tvd_b / tvd_a, 1.0 / 5.0);
    EXPECT_NEAR(rate, mu, 0.12);
  }
}

}  // namespace
}  // namespace sntrust

#include "dht/social_dht.hpp"

#include <gtest/gtest.h>

#include <set>

#include "gen/generators.hpp"
#include "graph/components.hpp"

namespace sntrust {
namespace {

Graph expander(VertexId n, std::uint64_t seed) {
  return largest_component(barabasi_albert(n, 4, seed)).graph;
}

SocialDhtParams quick_params() {
  SocialDhtParams params;
  params.table_size = 48;
  params.lookup_fanout = 6;
  params.seed = 3;
  return params;
}

TEST(SocialDht, KeysAreDistinct) {
  const Graph g = expander(300, 1);
  const SocialDht dht{g, quick_params()};
  std::set<std::uint64_t> keys;
  for (VertexId v = 0; v < g.num_vertices(); ++v) keys.insert(dht.key_of(v));
  EXPECT_EQ(keys.size(), g.num_vertices());
}

TEST(SocialDht, CleanNetworkLooksUpWell) {
  const Graph g = expander(500, 2);
  const SocialDht dht{g, quick_params()};
  EXPECT_GT(dht.lookup_success_rate(300, 9), 0.8);
}

TEST(SocialDht, SelfLookupWorks) {
  const Graph g = expander(200, 3);
  const SocialDht dht{g, quick_params()};
  // A node's own key is covered by its predecessor finger's successor
  // window with the same probability as any other key; just check no throw
  // and determinism.
  const bool a = dht.lookup(0, 0);
  const bool b = dht.lookup(0, 0);
  EXPECT_EQ(a, b);
}

TEST(SocialDht, SuccessRateStableAcrossTableSizes) {
  // Whanau's design point: the successor window shrinks as the finger table
  // grows (storage per node is the product of the two), so success stays in
  // the same band across table sizes rather than improving.
  const Graph g = expander(500, 4);
  for (const std::uint32_t table_size : {8u, 32u, 96u}) {
    SocialDhtParams params = quick_params();
    params.table_size = table_size;
    const double rate = SocialDht{g, params}.lookup_success_rate(300, 11);
    EXPECT_GT(rate, 0.7) << "table_size " << table_size;
  }
}

TEST(SocialDht, PoisonRateZeroWithoutSybils) {
  const Graph g = expander(200, 5);
  const SocialDht dht{g, quick_params()};
  EXPECT_DOUBLE_EQ(dht.table_poison_rate(), 0.0);
}

TEST(SocialDht, PoisonRateBoundedByAttackEdges) {
  const Graph honest = expander(600, 6);
  AttackParams weak_attack;
  weak_attack.num_sybils = 300;
  weak_attack.attack_edges = 3;
  weak_attack.seed = 6;
  AttackParams strong_attack = weak_attack;
  strong_attack.attack_edges = 90;

  const auto poison = [&](const AttackParams& attack) {
    const AttackedGraph attacked{honest, attack};
    std::vector<std::uint8_t> labels(attacked.graph().num_vertices(), 0);
    for (VertexId v = attacked.num_honest();
         v < attacked.graph().num_vertices(); ++v)
      labels[v] = 1;
    return SocialDht{attacked.graph(), quick_params(), labels}
        .table_poison_rate();
  };
  const double weak = poison(weak_attack);
  const double strong = poison(strong_attack);
  EXPECT_LT(weak, strong);
  // 300 Sybils among 900 vertices would poison ~1/3 of entries if walks
  // ignored the social structure; 3 attack edges keep it far below that.
  EXPECT_LT(weak, 0.15);
}

TEST(SocialDht, EvaluationDegradationIsGraceful) {
  const Graph honest = expander(500, 7);
  AttackParams attack;
  attack.num_sybils = 250;
  attack.attack_edges = 10;
  attack.seed = 7;
  const AttackedGraph attacked{honest, attack};
  const SocialDhtEvaluation eval =
      evaluate_social_dht(honest, attacked, quick_params(), 300);
  EXPECT_GT(eval.clean_success, 0.8);
  EXPECT_GT(eval.attacked_success, 0.5);
  EXPECT_LT(eval.poison_rate, 0.3);
}

TEST(SocialDht, BadArgsThrow) {
  const Graph g = expander(100, 8);
  SocialDhtParams params = quick_params();
  params.table_size = 0;
  EXPECT_THROW(SocialDht(g, params), std::invalid_argument);
  params = quick_params();
  EXPECT_THROW(SocialDht(g, params, std::vector<std::uint8_t>(5, 0)),
               std::invalid_argument);
  const SocialDht dht{g, quick_params()};
  EXPECT_THROW(dht.lookup(0, 9999), std::out_of_range);
  EXPECT_THROW(dht.key_of(9999), std::out_of_range);
}

}  // namespace
}  // namespace sntrust

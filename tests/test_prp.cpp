#include "util/prp.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace sntrust {
namespace {

TEST(KeyedPermutation, IsABijectionOnSmallDomains) {
  for (std::uint32_t domain : {1u, 2u, 3u, 5u, 8u, 17u, 100u, 257u}) {
    KeyedPermutation perm{domain, 12345};
    std::set<std::uint32_t> images;
    for (std::uint32_t x = 0; x < domain; ++x) {
      const std::uint32_t y = perm.apply(x);
      EXPECT_LT(y, domain);
      images.insert(y);
    }
    EXPECT_EQ(images.size(), domain) << "domain " << domain;
  }
}

TEST(KeyedPermutation, InvertUndoesApply) {
  for (std::uint32_t domain : {1u, 7u, 64u, 1000u}) {
    KeyedPermutation perm{domain, 999};
    for (std::uint32_t x = 0; x < domain; ++x)
      EXPECT_EQ(perm.invert(perm.apply(x)), x);
  }
}

TEST(KeyedPermutation, ApplyUndoesInvert) {
  KeyedPermutation perm{123, 4242};
  for (std::uint32_t y = 0; y < 123; ++y)
    EXPECT_EQ(perm.apply(perm.invert(y)), y);
}

TEST(KeyedPermutation, DifferentKeysGiveDifferentPermutations) {
  KeyedPermutation a{64, 1}, b{64, 2};
  int same = 0;
  for (std::uint32_t x = 0; x < 64; ++x)
    if (a.apply(x) == b.apply(x)) ++same;
  EXPECT_LT(same, 16);
}

TEST(KeyedPermutation, DeterministicForSameKey) {
  KeyedPermutation a{64, 77}, b{64, 77};
  for (std::uint32_t x = 0; x < 64; ++x)
    EXPECT_EQ(a.apply(x), b.apply(x));
}

TEST(KeyedPermutation, ZeroDomainThrows) {
  EXPECT_THROW(KeyedPermutation(0, 1), std::invalid_argument);
}

TEST(KeyedPermutation, OutOfDomainThrows) {
  KeyedPermutation perm{10, 1};
  EXPECT_THROW(perm.apply(10), std::out_of_range);
  EXPECT_THROW(perm.invert(10), std::out_of_range);
}

TEST(KeyedPermutation, NotIdentityOnAverage) {
  // A random permutation fixes ~1 point on average; allow generous slack.
  int fixed = 0;
  for (std::uint64_t key = 0; key < 20; ++key) {
    KeyedPermutation perm{50, key};
    for (std::uint32_t x = 0; x < 50; ++x)
      if (perm.apply(x) == x) ++fixed;
  }
  EXPECT_LT(fixed, 100);  // far from 20 * 50 identity mappings
}

class PrpDomainSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PrpDomainSweep, BijectionAndInverseHold) {
  const std::uint32_t domain = GetParam();
  KeyedPermutation perm{domain, 0xDEADBEEF};
  std::vector<bool> seen(domain, false);
  for (std::uint32_t x = 0; x < domain; ++x) {
    const std::uint32_t y = perm.apply(x);
    ASSERT_LT(y, domain);
    EXPECT_FALSE(seen[y]);
    seen[y] = true;
    EXPECT_EQ(perm.invert(y), x);
  }
}

INSTANTIATE_TEST_SUITE_P(Domains, PrpDomainSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 9, 15, 16, 31, 33,
                                           63, 65, 127, 255, 511, 1023));

}  // namespace
}  // namespace sntrust

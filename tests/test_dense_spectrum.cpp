#include "markov/dense_spectrum.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "markov/lanczos.hpp"
#include "markov/mixing.hpp"
#include "markov/spectral.hpp"
#include "markov/transition.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::path_graph;
using testing::petersen_graph;
using testing::two_cliques;

TEST(DenseSpectrum, CompleteGraphEigenvalues) {
  const DenseSpectrum s = dense_spectrum(complete_graph(6));
  ASSERT_EQ(s.eigenvalues.size(), 6u);
  EXPECT_NEAR(s.eigenvalues[0], 1.0, 1e-10);
  for (std::size_t k = 1; k < 6; ++k)
    EXPECT_NEAR(s.eigenvalues[k], -1.0 / 5.0, 1e-10);
}

TEST(DenseSpectrum, PetersenEigenvalues) {
  const DenseSpectrum s = dense_spectrum(petersen_graph());
  EXPECT_NEAR(s.eigenvalues[0], 1.0, 1e-10);
  EXPECT_NEAR(s.eigenvalues[1], 1.0 / 3.0, 1e-10);
  EXPECT_NEAR(s.eigenvalues.back(), -2.0 / 3.0, 1e-10);
}

TEST(DenseSpectrum, EigenvaluesSumToTraceZero) {
  // N has zero diagonal, so the eigenvalues sum to 0.
  const Graph g = testing::barbell_graph();
  const DenseSpectrum s = dense_spectrum(g);
  double sum = 0.0;
  for (const double value : s.eigenvalues) sum += value;
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(DenseSpectrum, EigenvectorsOrthonormal) {
  const DenseSpectrum s = dense_spectrum(cycle_graph(9));
  for (std::size_t a = 0; a < s.eigenvectors.size(); ++a) {
    for (std::size_t b = a; b < s.eigenvectors.size(); ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < s.eigenvectors[a].size(); ++i)
        dot += s.eigenvectors[a][i] * s.eigenvectors[b][i];
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(DenseSpectrum, ExactSlemMatchesPowerIteration) {
  for (const Graph& g :
       {petersen_graph(), two_cliques(6), cycle_graph(9),
        largest_component(barabasi_albert(80, 3, 5)).graph}) {
    const double exact = exact_slem(dense_spectrum(g));
    const double iterative = second_largest_eigenvalue(g).mu;
    EXPECT_NEAR(exact, iterative, 1e-5);
  }
}

TEST(DenseSpectrum, LanczosMatchesDenseTopEigenvalues) {
  const Graph g = largest_component(barabasi_albert(100, 3, 7)).graph;
  const DenseSpectrum dense = dense_spectrum(g);
  LanczosOptions options;
  options.num_eigenvalues = 4;
  options.subspace = 60;
  const LanczosResult lanczos = lanczos_spectrum(g, options);
  for (std::size_t k = 0; k < lanczos.eigenvalues.size(); ++k)
    EXPECT_NEAR(lanczos.eigenvalues[k], dense.eigenvalues[k], 1e-6)
        << "eigenvalue " << k;
}

TEST(DenseSpectrum, ExactWalkDistributionMatchesEvolution) {
  // The spectral expansion of P^t must agree with explicit matvec
  // evolution at every step — this pins the entire mixing pipeline.
  const Graph g = largest_component(barabasi_albert(60, 3, 9)).graph;
  const DenseSpectrum s = dense_spectrum(g);
  for (const std::uint32_t t : {0u, 1u, 3u, 10u, 25u}) {
    const Distribution exact = exact_walk_distribution(g, s, 0, t);
    Distribution evolved = dirac(g.num_vertices(), 0);
    evolve(g, evolved, t);
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      EXPECT_NEAR(exact[v], evolved[v], 1e-8) << "t=" << t << " v=" << v;
  }
}

TEST(DenseSpectrum, SamplingMethodCurveMatchesExactTvd) {
  const Graph g = testing::barbell_graph();
  const DenseSpectrum s = dense_spectrum(g);
  const Distribution pi = stationary_distribution(g);
  MixingOptions options;
  options.num_sources = 6;  // all vertices
  options.max_walk_length = 20;
  const MixingCurves curves = measure_mixing(g, options);
  for (std::size_t i = 0; i < curves.sources.size(); ++i) {
    for (const std::uint32_t t : {0u, 5u, 20u}) {
      const Distribution exact =
          exact_walk_distribution(g, s, curves.sources[i], t);
      EXPECT_NEAR(curves.tvd[i][t], total_variation(exact, pi), 1e-8);
    }
  }
}

TEST(DenseSpectrum, TooLargeThrows) {
  EXPECT_THROW(dense_spectrum(erdos_renyi(300, 0.05, 1)),
               std::invalid_argument);
  GraphBuilder b{3};
  EXPECT_THROW(dense_spectrum(b.build()), std::invalid_argument);
}

TEST(MonteCarloMixing, ConvergesTowardExactWithMoreWalks) {
  const Graph g = petersen_graph();
  MixingOptions options;
  options.num_sources = 4;
  options.max_walk_length = 12;
  options.seed = 5;
  const MixingCurves exact = measure_mixing(g, options);
  const MixingCurves coarse = measure_mixing_monte_carlo(g, options, 50);
  const MixingCurves fine = measure_mixing_monte_carlo(g, options, 5000);
  // At the tail (true TVD ~ 0) the Monte-Carlo floor dominates; the fine
  // estimate must sit far below the coarse one and near the exact value.
  const double tail_exact = exact.mean_curve().back();
  const double tail_coarse = coarse.mean_curve().back();
  const double tail_fine = fine.mean_curve().back();
  EXPECT_LT(tail_fine, tail_coarse);
  EXPECT_NEAR(tail_fine, tail_exact, 0.05);
}

TEST(MonteCarloMixing, ZeroStepCurveIsExact) {
  const Graph g = petersen_graph();
  MixingOptions options;
  options.num_sources = 3;
  options.max_walk_length = 0;
  const MixingCurves mc = measure_mixing_monte_carlo(g, options, 10);
  const Distribution pi = stationary_distribution(g);
  for (std::size_t i = 0; i < mc.sources.size(); ++i)
    EXPECT_NEAR(mc.tvd[i][0],
                total_variation(dirac(10, mc.sources[i]), pi), 1e-12);
}

TEST(MonteCarloMixing, BadArgsThrow) {
  MixingOptions options;
  options.num_sources = 2;
  EXPECT_THROW(measure_mixing_monte_carlo(petersen_graph(), options, 0),
               std::invalid_argument);
  EXPECT_THROW(
      measure_mixing_monte_carlo(testing::disconnected_graph(), options, 10),
      std::invalid_argument);
}

}  // namespace
}  // namespace sntrust

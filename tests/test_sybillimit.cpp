#include "sybil/sybillimit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.hpp"
#include "graph/components.hpp"

namespace sntrust {
namespace {

Graph expander(VertexId n, std::uint64_t seed) {
  return largest_component(barabasi_albert(n, 4, seed)).graph;
}

TEST(SybilLimit, RouteCountScalesWithSqrtM) {
  const Graph g = expander(400, 1);
  SybilLimitParams params;
  params.route_factor = 2.0;
  const SybilLimit limit{g, params};
  const double m = static_cast<double>(g.num_edges());
  EXPECT_NEAR(limit.num_routes(), 2.0 * std::sqrt(m), 2.0);
}

TEST(SybilLimit, DefaultRouteLengthLogarithmic) {
  const Graph g = expander(1000, 2);
  SybilLimitParams params;
  const SybilLimit limit{g, params};
  EXPECT_GE(limit.route_length(), 10u);
  EXPECT_LE(limit.route_length(), 20u);
}

TEST(SybilLimit, HonestSuspectsMostlyAccepted) {
  const Graph g = expander(300, 3);
  SybilLimitParams params;
  params.seed = 3;
  const SybilLimit limit{g, params};
  auto verifier = limit.make_verifier(0);
  int accepted = 0;
  for (VertexId s = 1; s <= 30; ++s)
    if (verifier.accepts(s)) ++accepted;
  EXPECT_GE(accepted, 24);
}

TEST(SybilLimit, AcceptanceIsDeterministicPerSuspectHistory) {
  const Graph g = expander(200, 4);
  SybilLimitParams params;
  params.seed = 4;
  const SybilLimit limit{g, params};
  auto v1 = limit.make_verifier(0);
  auto v2 = limit.make_verifier(0);
  for (VertexId s = 1; s <= 10; ++s)
    EXPECT_EQ(v1.accepts(s), v2.accepts(s));
}

TEST(SybilLimit, EvaluationBoundsSybilsPerEdge) {
  const Graph honest = expander(600, 5);
  AttackParams attack;
  attack.num_sybils = 300;
  attack.attack_edges = 10;
  attack.seed = 5;
  const AttackedGraph attacked{honest, attack};
  SybilLimitParams params;
  params.seed = 5;
  const PairwiseEvaluation eval =
      evaluate_sybillimit(attacked, 0, params, 60, 60, 5);
  EXPECT_GT(eval.honest_accept_fraction, 0.6);
  // SybilLimit guarantee: O(log n) sybils per attack edge << 30 (= 300/10).
  EXPECT_LT(eval.sybils_per_attack_edge, 20.0);
}

TEST(SybilLimit, BalanceConditionThrottlesFlooding) {
  // The balance condition caps per-tail load: re-registering the same
  // suspect floods its (fixed) intersecting tails while the average load
  // over all tails grows much slower, so with a tight slack the verifier
  // must eventually start refusing.
  const Graph g = expander(200, 6);
  SybilLimitParams params;
  params.seed = 6;
  params.balance_slack = 0.5;
  const SybilLimit limit{g, params};
  auto verifier = limit.make_verifier(0);
  int accepted = 0;
  for (int round = 0; round < 500; ++round)
    if (verifier.accepts(17)) ++accepted;
  EXPECT_GT(accepted, 0);
  EXPECT_LT(accepted, 500);
}

TEST(SybilLimit, TrustModulationLengthensRoutes) {
  const Graph g = expander(300, 9);
  SybilLimitParams plain;
  SybilLimitParams modulated;
  modulated.trust_alpha = 0.5;
  const std::uint32_t w0 = SybilLimit{g, plain}.route_length();
  const std::uint32_t w5 = SybilLimit{g, modulated}.route_length();
  EXPECT_EQ(w5, static_cast<std::uint32_t>(std::ceil(w0 / 0.5)));
}

TEST(SybilLimit, BadTrustAlphaThrows) {
  const Graph g = expander(100, 10);
  SybilLimitParams params;
  params.trust_alpha = 1.0;
  EXPECT_THROW(SybilLimit(g, params), std::invalid_argument);
  params.trust_alpha = -0.1;
  EXPECT_THROW(SybilLimit(g, params), std::invalid_argument);
}

TEST(SybilLimit, TighterBalanceRejectsMore) {
  const Graph honest = expander(400, 7);
  AttackParams attack;
  attack.num_sybils = 200;
  attack.attack_edges = 30;
  attack.seed = 7;
  const AttackedGraph attacked{honest, attack};

  double sybils[2];
  const double slack[2] = {0.2, 50.0};
  for (int i = 0; i < 2; ++i) {
    SybilLimitParams params;
    params.seed = 7;
    params.balance_slack = slack[i];
    const PairwiseEvaluation eval =
        evaluate_sybillimit(attacked, 0, params, 40, 80, 7);
    sybils[i] = eval.sybils_per_attack_edge;
  }
  EXPECT_LE(sybils[0], sybils[1] + 1e-9);
}

}  // namespace
}  // namespace sntrust

#include "markov/walker.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::complete_graph;
using testing::cycle_graph;
using testing::path_graph;
using testing::petersen_graph;

TEST(RandomWalker, WalkHasRequestedLength) {
  const Graph g = petersen_graph();
  RandomWalker walker{g, 1};
  const auto trail = walker.walk(0, 25);
  EXPECT_EQ(trail.size(), 26u);
  EXPECT_EQ(trail.front(), 0u);
}

TEST(RandomWalker, ConsecutiveVerticesAreAdjacent) {
  const Graph g = petersen_graph();
  RandomWalker walker{g, 2};
  const auto trail = walker.walk(3, 50);
  for (std::size_t i = 1; i < trail.size(); ++i)
    EXPECT_TRUE(g.has_edge(trail[i - 1], trail[i]));
}

TEST(RandomWalker, EndpointMatchesWalkDistributionShape) {
  // On K_n the endpoint of a 3-step walk is uniform over non-stay choices;
  // just check every vertex is reachable and counts are roughly even.
  const Graph g = complete_graph(5);
  RandomWalker walker{g, 3};
  std::map<VertexId, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[walker.walk_endpoint(0, 3)];
  EXPECT_EQ(counts.size(), 5u);
  for (const auto& [v, c] : counts) EXPECT_GT(c, 2000);
}

TEST(RandomWalker, IsolatedStartThrows) {
  GraphBuilder b{2};
  const Graph g = b.build();
  RandomWalker walker{g, 1};
  EXPECT_THROW(walker.walk(0, 3), std::invalid_argument);
  EXPECT_THROW(walker.walk_endpoint(0, 3), std::invalid_argument);
}

TEST(RandomWalker, BadStartThrows) {
  const Graph g = path_graph(3);
  RandomWalker walker{g, 1};
  EXPECT_THROW(walker.walk(9, 3), std::out_of_range);
}

TEST(RandomWalker, ZeroLengthWalkStaysPut) {
  const Graph g = path_graph(3);
  RandomWalker walker{g, 1};
  EXPECT_EQ(walker.walk_endpoint(1, 0), 1u);
  EXPECT_EQ(walker.walk(1, 0).size(), 1u);
}

TEST(RouteTables, RoutesFollowEdges) {
  const Graph g = petersen_graph();
  const RouteTables tables{g, 5};
  const auto trail = tables.route(0, 0, 30);
  EXPECT_EQ(trail.size(), 31u);
  for (std::size_t i = 1; i < trail.size(); ++i)
    EXPECT_TRUE(g.has_edge(trail[i - 1], trail[i]));
}

TEST(RouteTables, RoutesAreDeterministic) {
  const Graph g = petersen_graph();
  const RouteTables tables{g, 5};
  EXPECT_EQ(tables.route(2, 1, 20), tables.route(2, 1, 20));
}

TEST(RouteTables, ConvergenceProperty) {
  // The defining property of random routes: two routes entering a vertex
  // through the same edge leave through the same edge, so once two routes
  // share a directed edge they coincide forever.
  const Graph g = petersen_graph();
  const RouteTables tables{g, 7};
  const auto a = tables.route(0, 0, 40);
  const auto b = tables.route(1, 2, 40);
  // Find a shared directed edge, then require identical suffixes.
  for (std::size_t i = 1; i < a.size(); ++i) {
    for (std::size_t j = 1; j < b.size(); ++j) {
      if (a[i - 1] == b[j - 1] && a[i] == b[j]) {
        const std::size_t len = std::min(a.size() - i, b.size() - j);
        for (std::size_t k = 0; k < len; ++k)
          EXPECT_EQ(a[i + k], b[j + k]);
        return;  // one shared-edge check is the property
      }
    }
  }
  GTEST_SKIP() << "routes never shared a directed edge in this instance";
}

TEST(RouteTables, TailIsLastDirectedEdge) {
  const Graph g = cycle_graph(9);
  const RouteTables tables{g, 9};
  const auto trail = tables.route(0, 0, 12);
  const auto [u, w] = tables.route_tail(0, 0, 12);
  EXPECT_EQ(u, trail[trail.size() - 2]);
  EXPECT_EQ(w, trail.back());
}

TEST(RouteTables, BadSlotThrows) {
  const Graph g = cycle_graph(5);
  const RouteTables tables{g, 1};
  EXPECT_THROW(tables.route(0, 2, 5), std::out_of_range);
  EXPECT_THROW(tables.route_tail(0, 0, 0), std::invalid_argument);
}

TEST(HashedRoutes, RoutesFollowEdgesAndAreDeterministic) {
  const Graph g = petersen_graph();
  const HashedRoutes routes{g, 11};
  const auto a = routes.route(0, 1, 25, 3);
  const auto b = routes.route(0, 1, 25, 3);
  EXPECT_EQ(a, b);
  for (std::size_t i = 1; i < a.size(); ++i)
    EXPECT_TRUE(g.has_edge(a[i - 1], a[i]));
}

TEST(HashedRoutes, InstancesDiffer) {
  const Graph g = petersen_graph();
  const HashedRoutes routes{g, 11};
  const auto a = routes.route(0, 1, 25, 0);
  const auto b = routes.route(0, 1, 25, 1);
  EXPECT_NE(a, b);
}

TEST(HashedRoutes, ConvergencePropertyPerInstance) {
  // Routes of length 60 on a 30-directed-edge graph must revisit directed
  // edges; scan instances until two routes share one, then require the
  // suffixes to coincide (the convergence property). At least one of the
  // instances must exhibit a shared edge.
  const Graph g = petersen_graph();
  const HashedRoutes routes{g, 13};
  bool checked = false;
  for (std::uint32_t instance = 0; instance < 10 && !checked; ++instance) {
    const auto a = routes.route(0, 0, 60, instance);
    const auto b = routes.route(5, 1, 60, instance);
    for (std::size_t i = 1; i < a.size() && !checked; ++i) {
      for (std::size_t j = 1; j < b.size() && !checked; ++j) {
        if (a[i - 1] == b[j - 1] && a[i] == b[j]) {
          const std::size_t len = std::min(a.size() - i, b.size() - j);
          for (std::size_t k = 0; k < len; ++k)
            ASSERT_EQ(a[i + k], b[j + k]);
          checked = true;
        }
      }
    }
  }
  EXPECT_TRUE(checked) << "no instance produced intersecting routes";
}

TEST(HashedRoutes, TailMatchesRoute) {
  const Graph g = cycle_graph(8);
  const HashedRoutes routes{g, 17};
  const auto trail = routes.route(2, 0, 9, 4);
  const auto [u, w] = routes.route_tail(2, 0, 9, 4);
  EXPECT_EQ(u, trail[trail.size() - 2]);
  EXPECT_EQ(w, trail.back());
}

}  // namespace
}  // namespace sntrust

#include "dtn/simbet.hpp"

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::complete_graph;
using testing::star_graph;

TEST(CommonNeighbors, CountsSharedContacts) {
  const Graph g = complete_graph(5);
  std::vector<std::uint8_t> dest_adjacent(5, 0);
  for (const VertexId w : g.neighbors(4)) dest_adjacent[w] = 1;
  // Vertex 0's neighbours are 1,2,3,4; of those, 1,2,3 are adjacent to 4.
  EXPECT_EQ(common_neighbors(g, 0, dest_adjacent), 3u);
}

TEST(DtnRouting, CompleteGraphAlwaysDeliversInOneHop) {
  DtnParams params;
  const DtnOutcome outcome = simulate_dtn_routing(complete_graph(8), 50, params);
  EXPECT_DOUBLE_EQ(outcome.delivery_ratio, 1.0);
  EXPECT_DOUBLE_EQ(outcome.mean_hops, 1.0);
}

TEST(DtnRouting, StarDeliversThroughHub) {
  DtnParams params;
  const DtnOutcome outcome = simulate_dtn_routing(star_graph(10), 50, params);
  EXPECT_DOUBLE_EQ(outcome.delivery_ratio, 1.0);
  EXPECT_LE(outcome.mean_hops, 2.0);
}

TEST(DtnRouting, SimBetBeatsRandomOnCommunityGraph) {
  const Graph g =
      largest_component(planted_partition(400, 8, 0.3, 0.01, 5)).graph;
  DtnParams simbet;
  simbet.policy = DtnPolicy::kSimBet;
  simbet.ttl = 24;
  simbet.seed = 5;
  DtnParams random = simbet;
  random.policy = DtnPolicy::kRandom;
  const DtnOutcome a = simulate_dtn_routing(g, 300, simbet);
  const DtnOutcome b = simulate_dtn_routing(g, 300, random);
  EXPECT_GT(a.delivery_ratio, b.delivery_ratio);
}

TEST(DtnRouting, BetweennessComponentHelpsAcrossCommunities) {
  // Pure similarity gets stuck inside the source's community; the
  // betweenness term pushes messages to bridging carriers.
  const Graph g =
      largest_component(planted_partition(400, 8, 0.3, 0.006, 6)).graph;
  DtnParams simbet;
  simbet.policy = DtnPolicy::kSimBet;
  simbet.beta = 0.7;
  simbet.ttl = 24;
  simbet.seed = 6;
  DtnParams similarity = simbet;
  similarity.policy = DtnPolicy::kSimilarityOnly;
  const DtnOutcome with_betweenness = simulate_dtn_routing(g, 300, simbet);
  const DtnOutcome without = simulate_dtn_routing(g, 300, similarity);
  EXPECT_GE(with_betweenness.delivery_ratio, without.delivery_ratio);
}

TEST(DtnRouting, TtlBoundsHops) {
  const Graph g = largest_component(barabasi_albert(300, 3, 7)).graph;
  DtnParams params;
  params.policy = DtnPolicy::kRandom;
  params.ttl = 4;
  params.seed = 7;
  const DtnOutcome outcome = simulate_dtn_routing(g, 200, params);
  if (outcome.delivery_ratio > 0.0) {
    EXPECT_LE(outcome.mean_hops, 4.0);
  }
}

TEST(DtnRouting, DeterministicInSeed) {
  const Graph g = largest_component(barabasi_albert(200, 3, 8)).graph;
  DtnParams params;
  params.seed = 8;
  const DtnOutcome a = simulate_dtn_routing(g, 100, params);
  const DtnOutcome b = simulate_dtn_routing(g, 100, params);
  EXPECT_DOUBLE_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_DOUBLE_EQ(a.mean_hops, b.mean_hops);
}

TEST(DtnRouting, BadArgsThrow) {
  DtnParams params;
  EXPECT_THROW(simulate_dtn_routing(testing::disconnected_graph(), 10, params),
               std::invalid_argument);
  params.beta = 1.5;
  EXPECT_THROW(simulate_dtn_routing(complete_graph(4), 10, params),
               std::invalid_argument);
  params.beta = 0.5;
  params.ttl = 0;
  EXPECT_THROW(simulate_dtn_routing(complete_graph(4), 10, params),
               std::invalid_argument);
}

}  // namespace
}  // namespace sntrust

#include "report/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "report/csv_sink.hpp"
#include "report/series.hpp"

namespace sntrust {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t{{"name", "value"}};
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  // Every line before "value" column alignment holds: "alpha  1".
  EXPECT_NE(text.find("alpha  1"), std::string::npos);
}

TEST(Table, RowCountTracked) {
  Table t{{"x"}};
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, ColumnMismatchThrows) {
  Table t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(Table, CsvEscapesSpecials) {
  Table t{{"name", "note"}};
  t.add_row({"a,b", "say \"hi\""});
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_NE(out.str().find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvPlainCellsUnquoted) {
  Table t{{"x"}};
  t.add_row({"42"});
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_EQ(out.str(), "x\n42\n");
}

TEST(SeriesSet, MergesOnX) {
  SeriesSet figure{"t"};
  figure.add_series("a", {0, 1, 2}, {1.0, 0.5, 0.25});
  figure.add_series("b", {1, 2, 3}, {0.9, 0.8, 0.7});
  std::ostringstream out;
  figure.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("t"), std::string::npos);
  EXPECT_NE(text.find("0.25"), std::string::npos);
  EXPECT_NE(text.find("0.7"), std::string::npos);
  EXPECT_EQ(figure.num_series(), 2u);
}

TEST(SeriesSet, MismatchedXYThrows) {
  SeriesSet figure{"t"};
  EXPECT_THROW(figure.add_series("bad", {0, 1}, {1.0}),
               std::invalid_argument);
}

TEST(Table, SingleColumnRendersCleanly) {
  Table t{{"only"}};
  t.add_row({"value"});
  std::ostringstream out;
  t.print(out);
  EXPECT_EQ(out.str(), "only\n-----\nvalue\n");
}

TEST(Table, EmptyCellsAllowed) {
  Table t{{"a", "b"}};
  t.add_row({"", "x"});
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("x"), std::string::npos);
}

TEST(CsvSink, SkipsWhenUnset) {
  unsetenv("SNTRUST_CSV_DIR");
  Table t{{"x"}};
  t.add_row({"1"});
  EXPECT_TRUE(maybe_write_csv(t, "nothing").empty());
}

TEST(CsvSink, WritesWhenSet) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sntrust_csv_test").string();
  std::filesystem::create_directories(dir);
  setenv("SNTRUST_CSV_DIR", dir.c_str(), 1);
  Table t{{"a", "b"}};
  t.add_row({"1", "2"});
  const std::string path = maybe_write_csv(t, "unit");
  unsetenv("SNTRUST_CSV_DIR");
  ASSERT_FALSE(path.empty());
  std::ifstream in{path};
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::filesystem::remove_all(dir);
}

TEST(CsvSink, BadDirectoryThrows) {
  setenv("SNTRUST_CSV_DIR", "/nonexistent/surely/missing", 1);
  Table t{{"x"}};
  EXPECT_THROW(maybe_write_csv(t, "boom"), std::runtime_error);
  unsetenv("SNTRUST_CSV_DIR");
}

TEST(SeriesSet, MissingPointsAreBlank) {
  SeriesSet figure{"x"};
  figure.add_series("only_at_zero", {0}, {5.0});
  figure.add_series("only_at_one", {1}, {6.0});
  std::ostringstream out;
  figure.print(out);
  // Both x rows appear.
  EXPECT_NE(out.str().find("5"), std::string::npos);
  EXPECT_NE(out.str().find("6"), std::string::npos);
}

}  // namespace
}  // namespace sntrust

#include "gen/generators.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/components.hpp"
#include "graph/stats.hpp"

namespace sntrust {
namespace {

TEST(ErdosRenyi, ZeroProbabilityIsEmpty) {
  const Graph g = erdos_renyi(100, 0.0, 1);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(ErdosRenyi, FullProbabilityIsComplete) {
  const Graph g = erdos_renyi(20, 1.0, 1);
  EXPECT_EQ(g.num_edges(), 190u);
}

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  const VertexId n = 500;
  const double p = 0.05;
  const Graph g = erdos_renyi(n, p, 99);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 0.1 * expected);
}

TEST(ErdosRenyi, DeterministicInSeed) {
  EXPECT_EQ(erdos_renyi(100, 0.1, 7), erdos_renyi(100, 0.1, 7));
  EXPECT_NE(erdos_renyi(100, 0.1, 7), erdos_renyi(100, 0.1, 8));
}

TEST(ErdosRenyi, BadProbabilityThrows) {
  EXPECT_THROW(erdos_renyi(10, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(erdos_renyi(10, 1.1, 1), std::invalid_argument);
}

TEST(ErdosRenyiGnm, ExactEdgeCount) {
  const Graph g = erdos_renyi_gnm(100, 321, 5);
  EXPECT_EQ(g.num_edges(), 321u);
  EXPECT_EQ(g.num_vertices(), 100u);
}

TEST(ErdosRenyiGnm, MaxEdges) {
  const Graph g = erdos_renyi_gnm(10, 45, 5);
  EXPECT_EQ(g.num_edges(), 45u);
}

TEST(ErdosRenyiGnm, TooManyEdgesThrows) {
  EXPECT_THROW(erdos_renyi_gnm(10, 46, 1), std::invalid_argument);
}

TEST(BarabasiAlbert, SizeAndMinDegree) {
  const Graph g = barabasi_albert(500, 3, 11);
  EXPECT_EQ(g.num_vertices(), 500u);
  // Every non-seed vertex attaches with 3 edges.
  for (VertexId v = 4; v < 500; ++v) EXPECT_GE(g.degree(v), 3u);
  // Edge count: seed clique C(4,2) + 3 per additional vertex.
  EXPECT_EQ(g.num_edges(), 6u + 3u * (500 - 4));
}

TEST(BarabasiAlbert, IsConnected) {
  EXPECT_TRUE(is_connected(barabasi_albert(1000, 2, 3)));
}

TEST(BarabasiAlbert, HasHeavyTail) {
  const Graph g = barabasi_albert(2000, 3, 13);
  const DegreeStats s = degree_stats(g);
  // Preferential attachment produces hubs far above the mean.
  EXPECT_GT(s.max, 5 * s.mean);
}

TEST(BarabasiAlbert, BadParamsThrow) {
  EXPECT_THROW(barabasi_albert(5, 0, 1), std::invalid_argument);
  EXPECT_THROW(barabasi_albert(3, 3, 1), std::invalid_argument);
}

TEST(PowerlawCluster, ClusteringIncreasesWithTriangleP) {
  const Graph flat = powerlaw_cluster(1500, 4, 0.0, 17);
  const Graph clustered = powerlaw_cluster(1500, 4, 0.9, 17);
  EXPECT_GT(average_local_clustering(clustered),
            2.0 * average_local_clustering(flat));
}

TEST(PowerlawCluster, ConnectedAndSized) {
  const Graph g = powerlaw_cluster(800, 3, 0.5, 19);
  EXPECT_EQ(g.num_vertices(), 800u);
  EXPECT_TRUE(is_connected(g));
}

TEST(PowerlawCluster, BadParamsThrow) {
  EXPECT_THROW(powerlaw_cluster(100, 2, -0.5, 1), std::invalid_argument);
  EXPECT_THROW(powerlaw_cluster(100, 2, 1.5, 1), std::invalid_argument);
  EXPECT_THROW(powerlaw_cluster(2, 2, 0.5, 1), std::invalid_argument);
}

TEST(WattsStrogatz, NoRewireIsLattice) {
  const Graph g = watts_strogatz(20, 2, 0.0, 1);
  EXPECT_EQ(g.num_edges(), 40u);
  for (VertexId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(WattsStrogatz, RewirePreservesEdgeCount) {
  const Graph g = watts_strogatz(200, 3, 0.3, 23);
  EXPECT_EQ(g.num_edges(), 600u);
}

TEST(WattsStrogatz, FullRewireBreaksLattice) {
  const Graph g = watts_strogatz(300, 2, 1.0, 29);
  // Some lattice edge must have moved.
  std::uint32_t lattice_edges = 0;
  for (VertexId v = 0; v < 300; ++v)
    for (VertexId j = 1; j <= 2; ++j)
      if (g.has_edge(v, (v + j) % 300)) ++lattice_edges;
  EXPECT_LT(lattice_edges, 600u);
}

TEST(WattsStrogatz, BadParamsThrow) {
  EXPECT_THROW(watts_strogatz(4, 2, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(watts_strogatz(10, 0, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(watts_strogatz(10, 2, 2.0, 1), std::invalid_argument);
}

TEST(ConfigurationModel, RealizesRegularSequenceClosely) {
  std::vector<VertexId> degrees(400, 6);
  const Graph g = configuration_model(degrees, 31);
  // Stub matching drops collisions; realized mean degree close to request.
  const DegreeStats s = degree_stats(g);
  EXPECT_GT(s.mean, 5.0);
  EXPECT_LE(s.max, 6u);
}

TEST(ConfigurationModel, OddSumHandled) {
  std::vector<VertexId> degrees{3, 2, 2};  // sum 7, one stub dropped
  const Graph g = configuration_model(degrees, 37);
  EXPECT_LE(g.num_edges(), 3u);
}

TEST(ConfigurationModel, EmptySequence) {
  const Graph g = configuration_model({}, 1);
  EXPECT_EQ(g.num_vertices(), 0u);
}

TEST(PlantedPartition, BlockStructureDominates) {
  const Graph g = planted_partition(400, 4, 0.3, 0.005, 41);
  // Count within- vs cross-block edges (contiguous equal blocks of 100).
  std::uint64_t within = 0, cross = 0;
  for (const Edge& e : g.edges()) {
    if (e.u / 100 == e.v / 100) ++within;
    else ++cross;
  }
  EXPECT_GT(within, 8 * cross);
}

TEST(PlantedPartition, SingleBlockIsErdosRenyi) {
  const Graph g = planted_partition(200, 1, 0.1, 0.0, 43);
  const double expected = 0.1 * 200 * 199 / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 0.2 * expected);
}

TEST(PlantedPartition, BadParamsThrow) {
  EXPECT_THROW(planted_partition(10, 0, 0.5, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(planted_partition(10, 2, 1.5, 0.1, 1), std::invalid_argument);
}

TEST(Affiliation, ProducesCliquesPerGroup) {
  AffiliationParams params;
  params.num_actors = 300;
  params.num_groups = 150;
  params.min_group = 3;
  params.max_group = 6;
  const Graph g = affiliation_graph(params, 47);
  // Clique-heavy construction -> high clustering.
  EXPECT_GT(average_local_clustering(g), 0.3);
}

TEST(Affiliation, RegionalModelLimitsCrossEdges) {
  AffiliationParams params;
  params.num_actors = 1000;
  params.num_groups = 600;
  params.min_group = 2;
  params.max_group = 5;
  params.regions = 10;
  params.cross_region_p = 0.0;
  const Graph g = affiliation_graph(params, 53);
  // With no cross-region groups, all edges stay within 100-actor regions.
  for (const Edge& e : g.edges()) EXPECT_EQ(e.u / 100, e.v / 100);
}

TEST(Affiliation, BadParamsThrow) {
  AffiliationParams params;
  params.num_actors = 0;
  EXPECT_THROW(affiliation_graph(params, 1), std::invalid_argument);
  params.num_actors = 10;
  params.min_group = 1;
  EXPECT_THROW(affiliation_graph(params, 1), std::invalid_argument);
  params.min_group = 4;
  params.max_group = 3;
  EXPECT_THROW(affiliation_graph(params, 1), std::invalid_argument);
}

TEST(Generators, AllDeterministicInSeed) {
  EXPECT_EQ(barabasi_albert(200, 2, 5), barabasi_albert(200, 2, 5));
  EXPECT_EQ(powerlaw_cluster(200, 2, 0.5, 5), powerlaw_cluster(200, 2, 0.5, 5));
  EXPECT_EQ(watts_strogatz(200, 2, 0.2, 5), watts_strogatz(200, 2, 0.2, 5));
  EXPECT_EQ(planted_partition(200, 4, 0.2, 0.01, 5),
            planted_partition(200, 4, 0.2, 0.01, 5));
}

}  // namespace
}  // namespace sntrust

#include "markov/distribution.hpp"

#include <gtest/gtest.h>

#include "test_graphs.hpp"

namespace sntrust {
namespace {

using testing::complete_graph;
using testing::path_graph;
using testing::star_graph;

TEST(Distribution, DiracIsPointMass) {
  const Distribution d = dirac(5, 2);
  EXPECT_DOUBLE_EQ(d[2], 1.0);
  EXPECT_DOUBLE_EQ(mass(d), 1.0);
}

TEST(Distribution, DiracOutOfRangeThrows) {
  EXPECT_THROW(dirac(5, 5), std::out_of_range);
}

TEST(Distribution, StationaryIsDegreeProportional) {
  const Graph g = star_graph(5);  // center degree 4, leaves degree 1
  const Distribution pi = stationary_distribution(g);
  EXPECT_DOUBLE_EQ(pi[0], 4.0 / 8.0);
  EXPECT_DOUBLE_EQ(pi[1], 1.0 / 8.0);
  EXPECT_NEAR(mass(pi), 1.0, 1e-12);
}

TEST(Distribution, StationaryUniformOnRegularGraph) {
  const Graph g = complete_graph(6);
  const Distribution pi = stationary_distribution(g);
  for (VertexId v = 0; v < 6; ++v) EXPECT_NEAR(pi[v], 1.0 / 6.0, 1e-12);
}

TEST(Distribution, StationaryOnEdgelessThrows) {
  GraphBuilder b{3};
  EXPECT_THROW(stationary_distribution(b.build()), std::invalid_argument);
}

TEST(Distribution, TotalVariationIdentical) {
  const Distribution d = dirac(4, 1);
  EXPECT_DOUBLE_EQ(total_variation(d, d), 0.0);
}

TEST(Distribution, TotalVariationDisjointIsOne) {
  EXPECT_DOUBLE_EQ(total_variation(dirac(4, 0), dirac(4, 3)), 1.0);
}

TEST(Distribution, TotalVariationSymmetric) {
  const Graph g = path_graph(6);
  const Distribution pi = stationary_distribution(g);
  const Distribution d = dirac(6, 0);
  EXPECT_DOUBLE_EQ(total_variation(pi, d), total_variation(d, pi));
}

TEST(Distribution, TotalVariationTriangleInequality) {
  const Graph g = path_graph(6);
  const Distribution a = dirac(6, 0);
  const Distribution b = stationary_distribution(g);
  Distribution c(6, 1.0 / 6.0);
  EXPECT_LE(total_variation(a, c),
            total_variation(a, b) + total_variation(b, c) + 1e-12);
}

TEST(Distribution, TotalVariationSizeMismatchThrows) {
  EXPECT_THROW(total_variation(dirac(3, 0), dirac(4, 0)),
               std::invalid_argument);
}

TEST(Distribution, TotalVariationBoundedByOne) {
  const Distribution a = dirac(10, 0);
  Distribution b(10, 0.1);
  const double tv = total_variation(a, b);
  EXPECT_GE(tv, 0.0);
  EXPECT_LE(tv, 1.0);
}

}  // namespace
}  // namespace sntrust

#include "digraph/digraph.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "test_graphs.hpp"

namespace sntrust {
namespace {

Digraph directed_triangle() {
  // 0 -> 1 -> 2 -> 0.
  return Digraph{3, {{0, 1}, {1, 2}, {2, 0}}};
}

TEST(Digraph, BasicDegrees) {
  const Digraph g = directed_triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_arcs(), 3u);
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_EQ(g.out_degree(v), 1u);
    EXPECT_EQ(g.in_degree(v), 1u);
  }
  EXPECT_EQ(g.successors(0)[0], 1u);
  EXPECT_EQ(g.predecessors(0)[0], 2u);
}

TEST(Digraph, DropsSelfLoopsAndDuplicateArcs) {
  const Digraph g{3, {{0, 0}, {0, 1}, {0, 1}, {1, 0}}};
  EXPECT_EQ(g.num_arcs(), 2u);  // 0->1 and 1->0
  EXPECT_EQ(g.out_degree(0), 1u);
}

TEST(Digraph, OutOfRangeThrows) {
  EXPECT_THROW(Digraph(2, {{0, 5}}), std::out_of_range);
  const Digraph g = directed_triangle();
  EXPECT_THROW(g.out_degree(9), std::out_of_range);
  EXPECT_THROW(g.successors(9), std::out_of_range);
}

TEST(Digraph, UndirectedProjection) {
  const Digraph g = directed_triangle();
  const Graph u = g.undirected();
  EXPECT_EQ(u.num_edges(), 3u);
  EXPECT_TRUE(u.has_edge(0, 1));
}

TEST(OrientGraph, FullReciprocityKeepsBothArcs) {
  const Graph g = testing::cycle_graph(6);
  const Digraph d = orient_graph(g, 1.0, 1);
  EXPECT_EQ(d.num_arcs(), 12u);
}

TEST(OrientGraph, ZeroReciprocityKeepsOneArcPerEdge) {
  const Graph g = testing::complete_graph(6);
  const Digraph d = orient_graph(g, 0.0, 1);
  EXPECT_EQ(d.num_arcs(), g.num_edges());
}

TEST(OrientGraph, ReciprocityInterpolates) {
  const Graph g = largest_component(barabasi_albert(300, 3, 2)).graph;
  const Digraph d = orient_graph(g, 0.5, 2);
  EXPECT_GT(d.num_arcs(), g.num_edges());
  EXPECT_LT(d.num_arcs(), 2 * g.num_edges());
}

TEST(StepDirected, PreservesMass) {
  const Digraph g = directed_triangle();
  std::vector<double> p{1.0, 0.0, 0.0}, out;
  for (int s = 0; s < 10; ++s) {
    step_directed(g, p, out, 0.15);
    p.swap(out);
    EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-12);
  }
}

TEST(StepDirected, DanglingMassRedistributed) {
  // 0 -> 1, vertex 1 dangling.
  const Digraph g{2, {{0, 1}}};
  std::vector<double> p{0.0, 1.0}, out;
  step_directed(g, p, out, 0.0);
  EXPECT_NEAR(out[0], 0.5, 1e-12);
  EXPECT_NEAR(out[1], 0.5, 1e-12);
}

TEST(StepDirected, BadTeleportThrows) {
  const Digraph g = directed_triangle();
  std::vector<double> p{1.0, 0.0, 0.0}, out;
  EXPECT_THROW(step_directed(g, p, out, 1.0), std::invalid_argument);
  EXPECT_THROW(step_directed(g, p, out, -0.1), std::invalid_argument);
}

TEST(DirectedStationary, CycleIsUniform) {
  const Digraph g = directed_triangle();
  const std::vector<double> pi = directed_stationary(g, 0.15);
  for (const double value : pi) EXPECT_NEAR(value, 1.0 / 3.0, 1e-9);
}

TEST(DirectedStationary, IsFixedPoint) {
  const Graph base = largest_component(barabasi_albert(200, 3, 3)).graph;
  const Digraph g = orient_graph(base, 0.4, 3);
  const std::vector<double> pi = directed_stationary(g, 0.15);
  std::vector<double> out;
  step_directed(g, pi, out, 0.15);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_NEAR(out[v], pi[v], 1e-9);
}

TEST(DirectedStationary, HubsAccumulateRank) {
  // Star with all arcs pointing at the hub: the hub's stationary mass
  // dominates.
  std::vector<Edge> arcs;
  for (VertexId leaf = 1; leaf < 10; ++leaf) arcs.push_back({leaf, 0});
  const Digraph g{10, arcs};
  const std::vector<double> pi = directed_stationary(g, 0.15);
  for (VertexId leaf = 1; leaf < 10; ++leaf) EXPECT_GT(pi[0], 3.0 * pi[leaf]);
}

TEST(DirectedMixing, CurvesDecreaseToZero) {
  const Graph base = largest_component(barabasi_albert(300, 4, 4)).graph;
  const Digraph g = orient_graph(base, 0.5, 4);
  const DirectedMixingCurves curves =
      measure_directed_mixing(g, 0.15, 5, 40, 4);
  for (const auto& curve : curves.tvd) {
    EXPECT_GT(curve.front(), 0.5);
    EXPECT_LT(curve.back(), 0.05);
  }
}

TEST(DirectedMixing, LowReciprocityMixesDifferentlyThanUndirected) {
  // The follow-up paper's observation: directedness changes the mixing
  // behaviour. We check the directed chain with teleport converges and that
  // reciprocal orientation (which equals the undirected chain up to
  // teleport) mixes at least as fast as the one-way orientation.
  const Graph base = largest_component(barabasi_albert(300, 4, 5)).graph;
  const Digraph one_way = orient_graph(base, 0.0, 5);
  const Digraph mutual = orient_graph(base, 1.0, 5);
  const auto curve_one =
      measure_directed_mixing(one_way, 0.1, 5, 30, 5);
  const auto curve_mutual =
      measure_directed_mixing(mutual, 0.1, 5, 30, 5);
  double worst_one = 0.0, worst_mutual = 0.0;
  for (const auto& c : curve_one.tvd) worst_one = std::max(worst_one, c[10]);
  for (const auto& c : curve_mutual.tvd)
    worst_mutual = std::max(worst_mutual, c[10]);
  EXPECT_LE(worst_mutual, worst_one + 0.05);
}

TEST(DirectedMixing, BadArgsThrow) {
  const Digraph g = directed_triangle();
  EXPECT_THROW(measure_directed_mixing(g, 0.15, 0, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(directed_stationary(g, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace sntrust

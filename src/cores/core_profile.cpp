#include "cores/core_profile.hpp"

#include <algorithm>

namespace sntrust {

std::vector<CoreLevel> core_profile(const Graph& g) {
  return core_profile(g, core_decomposition(g));
}

std::vector<CoreLevel> core_profile(const Graph& g,
                                    const CoreDecomposition& d) {
  const VertexId n = g.num_vertices();
  const double edge_total = static_cast<double>(g.num_edges());
  std::vector<CoreLevel> levels;
  if (n == 0 || d.degeneracy == 0) return levels;

  const auto& offsets = g.offsets();
  const auto& targets = g.targets();

  // Reusable scratch: component labels via epoch marking per level.
  std::vector<std::uint32_t> label(n);
  std::vector<VertexId> queue;
  queue.reserve(n);

  levels.reserve(d.degeneracy);
  for (std::uint32_t k = 1; k <= d.degeneracy; ++k) {
    CoreLevel level;
    level.k = k;

    // Count vertices and edges inside the core in one adjacency sweep.
    std::uint64_t half_edges = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (d.coreness[v] < k) continue;
      ++level.vertices;
      for (EdgeIndex e = offsets[v]; e < offsets[v + 1]; ++e)
        if (d.coreness[targets[e]] >= k) ++half_edges;
    }
    level.edges = half_edges / 2;
    level.nu = static_cast<double>(level.vertices) / n;
    level.tau = edge_total == 0.0
                    ? 0.0
                    : static_cast<double>(level.edges) / edge_total;

    // Connected components restricted to the core.
    std::fill(label.begin(), label.end(), 0u);
    std::uint32_t next_label = 0;
    for (VertexId s = 0; s < n; ++s) {
      if (d.coreness[s] < k || label[s] != 0) continue;
      ++next_label;
      std::uint64_t size = 0;
      queue.clear();
      queue.push_back(s);
      label[s] = next_label;
      std::size_t head = 0;
      while (head < queue.size()) {
        const VertexId u = queue[head++];
        ++size;
        for (EdgeIndex e = offsets[u]; e < offsets[u + 1]; ++e) {
          const VertexId w = targets[e];
          if (d.coreness[w] >= k && label[w] == 0) {
            label[w] = next_label;
            queue.push_back(w);
          }
        }
      }
      level.largest_component = std::max(level.largest_component, size);
    }
    level.num_components = next_label;
    levels.push_back(level);
  }
  return levels;
}

}  // namespace sntrust

#include "cores/core_profile.hpp"

#include <algorithm>

#include "exec/checkpoint.hpp"
#include "exec/sweep.hpp"
#include "obs/diag.hpp"
#include "parallel/thread_pool.hpp"
#include "util/json.hpp"

namespace sntrust {

std::vector<CoreLevel> core_profile(const Graph& g) {
  return core_profile(g, core_decomposition(g));
}

std::vector<CoreLevel> core_profile(const Graph& g,
                                    const CoreDecomposition& d) {
  const VertexId n = g.num_vertices();
  const double edge_total = static_cast<double>(g.num_edges());
  std::vector<CoreLevel> levels;
  if (n == 0 || d.degeneracy == 0) return levels;

  const auto& offsets = g.offsets();
  const auto& targets = g.targets();

  // One independent level per k in [1, degeneracy], swept across the pool.
  // Per-worker scratch: component labels via epoch marking plus a BFS queue.
  struct Scratch {
    std::vector<std::uint32_t> label;
    std::vector<VertexId> queue;
  };
  std::vector<Scratch> scratch(parallel::plan_workers(d.degeneracy));

  exec::SweepOptions sweep;
  sweep.kind = "core_profile";
  sweep.fault_site = "cores";
  sweep.token = exec::process_token();
  sweep.fingerprint = exec::fingerprint(
      {n, g.num_edges(), d.degeneracy, exec::graph_fingerprint(g)});
  const exec::SweepResult swept = exec::run_sweep(
      d.degeneracy, sweep, [&](std::size_t idx, std::uint32_t worker) {
        const std::uint32_t k = static_cast<std::uint32_t>(idx) + 1;
        Scratch& s = scratch[worker];
        if (s.label.size() != n) {
          s.label.assign(n, 0u);
          s.queue.reserve(n);
        }

        // Count vertices and edges inside the core in one adjacency sweep.
        std::uint64_t vertices = 0;
        std::uint64_t half_edges = 0;
        for (VertexId v = 0; v < n; ++v) {
          if (d.coreness[v] < k) continue;
          ++vertices;
          for (EdgeIndex e = offsets[v]; e < offsets[v + 1]; ++e)
            if (d.coreness[targets[e]] >= k) ++half_edges;
        }

        // Connected components restricted to the core.
        std::fill(s.label.begin(), s.label.end(), 0u);
        std::uint32_t next_label = 0;
        std::uint64_t largest = 0;
        for (VertexId start = 0; start < n; ++start) {
          if (d.coreness[start] < k || s.label[start] != 0) continue;
          ++next_label;
          std::uint64_t size = 0;
          s.queue.clear();
          s.queue.push_back(start);
          s.label[start] = next_label;
          std::size_t head = 0;
          while (head < s.queue.size()) {
            const VertexId u = s.queue[head++];
            ++size;
            for (EdgeIndex e = offsets[u]; e < offsets[u + 1]; ++e) {
              const VertexId w = targets[e];
              if (d.coreness[w] >= k && s.label[w] == 0) {
                s.label[w] = next_label;
                s.queue.push_back(w);
              }
            }
          }
          largest = std::max(largest, size);
        }

        // Integer payload only; the derived ratios (nu, tau) are recomputed
        // at decode time with the exact expressions used before, so resumed
        // and fresh levels are bitwise identical.
        json::Array row;
        row.push_back(
            json::Value::integer(static_cast<std::int64_t>(vertices)));
        row.push_back(
            json::Value::integer(static_cast<std::int64_t>(half_edges / 2)));
        row.push_back(
            json::Value::integer(static_cast<std::int64_t>(next_label)));
        row.push_back(
            json::Value::integer(static_cast<std::int64_t>(largest)));
        return json::Value::array(std::move(row)).dump();
      });

  levels.reserve(d.degeneracy);
  for (std::size_t idx = 0; idx < swept.payloads.size(); ++idx) {
    if (swept.payloads[idx].empty()) continue;  // degraded: level skipped
    const json::Value row = json::Value::parse(swept.payloads[idx]);
    const json::Array& fields = row.as_array();
    CoreLevel level;
    level.k = static_cast<std::uint32_t>(idx) + 1;
    level.vertices = static_cast<std::uint64_t>(fields.at(0).as_int());
    level.edges = static_cast<std::uint64_t>(fields.at(1).as_int());
    level.num_components = static_cast<std::uint32_t>(fields.at(2).as_int());
    level.largest_component =
        static_cast<std::uint64_t>(fields.at(3).as_int());
    level.nu = static_cast<double>(level.vertices) / n;
    level.tau = edge_total == 0.0
                    ? 0.0
                    : static_cast<double>(level.edges) / edge_total;
    levels.push_back(level);
  }
  // Diagnostics (SNTRUST_DIAG): the nu(k) trajectory — the fraction of the
  // graph surviving into each k-core — is the decay curve behind the
  // coreness figures. Exact computation, so never flagged; the fitted decay
  // rate is what diag renders and diffs.
  if (obs::diag_enabled() && !levels.empty()) {
    obs::ConvergenceTrace nu_trace;
    for (const CoreLevel& level : levels) nu_trace.add(level.nu);
    obs::DiagRegistry::instance().record_trace(
        obs::summarize_trace("cores.nu", 0, nu_trace, /*converged=*/true));
  }
  return levels;
}

}  // namespace sntrust

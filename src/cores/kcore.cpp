#include "cores/kcore.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sntrust {

std::vector<VertexId> CoreDecomposition::core_members(std::uint32_t k) const {
  std::vector<VertexId> members;
  for (VertexId v = 0; v < coreness.size(); ++v)
    if (coreness[v] >= k) members.push_back(v);
  return members;
}

CoreDecomposition core_decomposition(const Graph& g) {
  const obs::Span span{"core_decomposition", "cores"};
  const VertexId n = g.num_vertices();
  obs::count("kcore.vertices_peeled", n);
  CoreDecomposition out;
  out.coreness.assign(n, 0);
  out.removal_order.reserve(n);
  if (n == 0) return out;

  // Bucket sort vertices by current degree (Batagelj–Zaversnik layout):
  // vert[] holds vertices sorted by degree, pos[] the index of each vertex in
  // vert[], bin[d] the start index of degree-d vertices.
  std::vector<std::uint32_t> degree(n);
  std::uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = g.degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }

  std::vector<std::uint32_t> bin(max_degree + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bin[degree[v]];
  std::uint32_t start = 0;
  for (std::uint32_t d = 0; d <= max_degree; ++d) {
    const std::uint32_t count = bin[d];
    bin[d] = start;
    start += count;
  }
  bin[max_degree + 1] = start;

  std::vector<VertexId> vert(n);
  std::vector<std::uint32_t> pos(n);
  {
    std::vector<std::uint32_t> cursor(bin.begin(), bin.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      pos[v] = cursor[degree[v]];
      vert[pos[v]] = v;
      ++cursor[degree[v]];
    }
  }

  const auto& offsets = g.offsets();
  const auto& targets = g.targets();
  for (std::uint32_t i = 0; i < n; ++i) {
    const VertexId v = vert[i];
    out.coreness[v] = degree[v];
    out.degeneracy = std::max(out.degeneracy, degree[v]);
    out.removal_order.push_back(v);
    for (EdgeIndex e = offsets[v]; e < offsets[v + 1]; ++e) {
      const VertexId u = targets[e];
      if (degree[u] <= degree[v]) continue;  // u already peeled or tied
      // Move u to the front of its degree bucket, then decrement.
      const std::uint32_t du = degree[u];
      const std::uint32_t pu = pos[u];
      const std::uint32_t pw = bin[du];
      const VertexId w = vert[pw];
      if (u != w) {
        pos[u] = pw;
        vert[pw] = u;
        pos[w] = pu;
        vert[pu] = w;
      }
      ++bin[du];
      --degree[u];
    }
  }
  return out;
}

std::vector<double> coreness_ecdf(const CoreDecomposition& d) {
  const std::size_t n = d.coreness.size();
  if (n == 0) throw std::invalid_argument("coreness_ecdf: empty decomposition");
  std::vector<std::uint64_t> counts(d.degeneracy + 1, 0);
  for (const std::uint32_t c : d.coreness) ++counts[c];
  std::vector<double> ecdf(d.degeneracy + 1, 0.0);
  std::uint64_t cumulative = 0;
  for (std::uint32_t k = 0; k <= d.degeneracy; ++k) {
    cumulative += counts[k];
    ecdf[k] = static_cast<double>(cumulative) / static_cast<double>(n);
  }
  return ecdf;
}

}  // namespace sntrust

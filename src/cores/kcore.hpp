// Graph degeneracy: k-core decomposition (paper Sec. III-B).
//
// Implements the Batagelj–Zaversnik O(m) bucket algorithm the paper cites
// ([1]): iteratively remove the minimum-degree vertex; the coreness of a
// vertex is its degree at removal time, and the k-core is the set of
// vertices with coreness >= k.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace sntrust {

struct CoreDecomposition {
  /// coreness[v] = largest k such that v belongs to a k-core.
  std::vector<std::uint32_t> coreness;
  /// Degeneracy of the graph = max coreness (0 for edgeless graphs).
  std::uint32_t degeneracy = 0;
  /// Vertices in removal order (non-decreasing coreness) — a degeneracy
  /// ordering, useful for other algorithms.
  std::vector<VertexId> removal_order;

  /// Members of the (possibly disconnected) k-core G~_k: vertices with
  /// coreness >= k, ascending ids.
  std::vector<VertexId> core_members(std::uint32_t k) const;
};

/// O(m) core decomposition.
CoreDecomposition core_decomposition(const Graph& g);

/// Empirical CDF of coreness: point (k, fraction of vertices with
/// coreness <= k) for k = 0..degeneracy (Fig. 2 of the paper).
std::vector<double> coreness_ecdf(const CoreDecomposition& d);

}  // namespace sntrust

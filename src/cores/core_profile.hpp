// Per-k core structure profile (paper Fig. 5): node-relative core size
// nu_k = n_k / n, edge-relative size tau_k = m_k / m, and the number of
// connected components of the k-core ("number of cores") as k grows.
#pragma once

#include <cstdint>
#include <vector>

#include "cores/kcore.hpp"
#include "graph/graph.hpp"

namespace sntrust {

/// Structure of the k-core for one k.
struct CoreLevel {
  std::uint32_t k = 0;
  std::uint64_t vertices = 0;      ///< n_k: |V| of the (relaxed) k-core G~_k
  std::uint64_t edges = 0;         ///< m_k
  double nu = 0.0;                 ///< n_k / n
  double tau = 0.0;                ///< m_k / m
  std::uint32_t num_components = 0;  ///< number of connected k-cores
  std::uint64_t largest_component = 0;  ///< |V| of the largest connected core
};

/// Profiles every k from 1 to the degeneracy. O(degeneracy * m) total: one
/// pass of component counting per level over the shrinking core subgraph.
std::vector<CoreLevel> core_profile(const Graph& g);

/// As above but reusing an existing decomposition.
std::vector<CoreLevel> core_profile(const Graph& g,
                                    const CoreDecomposition& d);

}  // namespace sntrust

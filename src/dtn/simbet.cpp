#include "dtn/simbet.hpp"

#include <algorithm>
#include <stdexcept>

#include "centrality/centrality.hpp"
#include "graph/components.hpp"
#include "util/rng.hpp"

namespace sntrust {

std::uint32_t common_neighbors(const Graph& g, VertexId v,
                               const std::vector<std::uint8_t>& dest_adjacent) {
  std::uint32_t count = 0;
  for (const VertexId w : g.neighbors(v))
    if (dest_adjacent[w]) ++count;
  return count;
}

DtnOutcome simulate_dtn_routing(const Graph& g, std::uint32_t messages,
                                const DtnParams& params) {
  const VertexId n = g.num_vertices();
  if (n < 2 || !is_connected(g))
    throw std::invalid_argument(
        "simulate_dtn_routing: need a connected graph with >= 2 vertices");
  if (params.beta < 0.0 || params.beta > 1.0)
    throw std::invalid_argument("simulate_dtn_routing: beta must be in [0,1]");
  if (params.ttl == 0)
    throw std::invalid_argument("simulate_dtn_routing: ttl must be > 0");

  // Betweenness, normalized to [0, 1] across vertices (rank-free scaling by
  // the maximum, as SimBet does with its pairwise comparisons).
  std::vector<double> betweenness;
  if (params.policy == DtnPolicy::kSimBet) {
    CentralityOptions options;
    options.num_sources = params.betweenness_sources;
    options.seed = params.seed;
    betweenness = betweenness_centrality(g, options);
    const double top = *std::max_element(betweenness.begin(), betweenness.end());
    if (top > 0.0)
      for (double& value : betweenness) value /= top;
  }

  Rng rng{params.seed ^ 0x5851f42d4c957f2dULL};
  std::vector<std::uint8_t> dest_adjacent(n, 0);

  std::uint32_t delivered = 0;
  std::uint64_t hops_total = 0;
  for (std::uint32_t msg = 0; msg < messages; ++msg) {
    const auto source = static_cast<VertexId>(rng.uniform(n));
    VertexId destination = source;
    while (destination == source)
      destination = static_cast<VertexId>(rng.uniform(n));

    std::fill(dest_adjacent.begin(), dest_adjacent.end(), 0);
    for (const VertexId w : g.neighbors(destination)) dest_adjacent[w] = 1;

    VertexId carrier = source;
    bool done = false;
    for (std::uint32_t hop = 1; hop <= params.ttl && !done; ++hop) {
      const auto nbrs = g.neighbors(carrier);
      if (nbrs.empty()) break;
      // Direct contact delivers immediately.
      if (std::binary_search(nbrs.begin(), nbrs.end(), destination)) {
        delivered += 1;
        hops_total += hop;
        done = true;
        break;
      }
      VertexId next = carrier;
      if (params.policy == DtnPolicy::kRandom) {
        next = nbrs[rng.uniform(nbrs.size())];
      } else {
        // A visible contact of the destination ends the routing decision:
        // handing the message to it guarantees delivery at its next
        // encounter (the static-graph rendering of SimBet's "node has met
        // the destination" rule).
        bool handed = false;
        for (const VertexId w : nbrs) {
          if (dest_adjacent[w]) {
            next = w;
            handed = true;
            break;
          }
        }
        if (handed) {
          carrier = next;
          continue;
        }
        // SimBet's exchange rule compares each contact to the carrier with
        // *pairwise-normalized* components:
        //   SimBetUtil(w) = beta * bet_w / (bet_w + bet_c)
        //                 + (1-beta) * sim_w / (sim_w + sim_c)
        // and hands the message over when the utility exceeds the carrier's
        // symmetric share of 0.5. The relative form is what lets messages
        // climb to bridging hubs on the betweenness term and then descend
        // on the similarity term.
        const double carrier_similarity =
            static_cast<double>(common_neighbors(g, carrier, dest_adjacent));
        const double carrier_betweenness =
            params.policy == DtnPolicy::kSimBet ? betweenness[carrier] : 0.0;
        double best = 0.5;
        for (const VertexId w : nbrs) {
          const double similarity =
              static_cast<double>(common_neighbors(g, w, dest_adjacent));
          const double sim_term =
              similarity + carrier_similarity > 0.0
                  ? similarity / (similarity + carrier_similarity)
                  : 0.5;
          double score;
          if (params.policy == DtnPolicy::kSimilarityOnly) {
            score = sim_term;
          } else {
            const double bet_term =
                betweenness[w] + carrier_betweenness > 0.0
                    ? betweenness[w] / (betweenness[w] + carrier_betweenness)
                    : 0.5;
            score = params.beta * bet_term + (1.0 - params.beta) * sim_term;
          }
          if (score > best) {
            best = score;
            next = w;
          }
        }
        if (next == carrier) break;  // stuck: no better contact, drop at TTL
      }
      carrier = next;
    }
  }

  DtnOutcome outcome;
  outcome.delivery_ratio = static_cast<double>(delivered) / messages;
  outcome.mean_hops =
      delivered == 0 ? 0.0
                     : static_cast<double>(hops_total) / delivered;
  return outcome;
}

}  // namespace sntrust

// SimBet-style routing in delay-tolerant networks (Daly & Haahr, MobiHoc
// 2007 — the paper's ref [2]): messages are forwarded to contacts with a
// higher routing utility, a convex combination of *betweenness* (good
// carriers bridge communities) and *similarity* (shared neighbours with the
// destination indicate social proximity).
//
// The simulator models the social graph as the contact graph: at each step
// the current carrier hands the message to its best-utility neighbour (only
// when strictly better, as in SimBet), until the destination is reached or
// the TTL expires. Baselines: random forwarding and a pure-similarity
// greedy, so the betweenness component's contribution is measurable.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace sntrust {

enum class DtnPolicy {
  kSimBet,          ///< alpha * betweenness + (1 - alpha) * similarity
  kSimilarityOnly,  ///< greedy on shared-neighbour count
  kRandom,          ///< uniform random neighbour each hop
};

struct DtnParams {
  DtnPolicy policy = DtnPolicy::kSimBet;
  double beta = 0.5;       ///< weight on betweenness in the SimBet utility
  std::uint32_t ttl = 64;  ///< maximum hops before the message is dropped
  /// Betweenness source sample (0 = exact); sampled keeps setup O(k m).
  std::uint32_t betweenness_sources = 256;
  std::uint64_t seed = 1;
};

struct DtnOutcome {
  double delivery_ratio = 0.0;  ///< fraction of messages delivered
  double mean_hops = 0.0;       ///< hops of delivered messages
};

/// Simulates `messages` random (source, destination) pairs over the contact
/// graph. Requires a connected graph with >= 2 vertices.
DtnOutcome simulate_dtn_routing(const Graph& g, std::uint32_t messages,
                                const DtnParams& params);

/// The SimBet utility's similarity term: number of common neighbours of v
/// and the destination (destination adjacency passed as a bitmap).
std::uint32_t common_neighbors(const Graph& g, VertexId v,
                               const std::vector<std::uint8_t>& dest_adjacent);

}  // namespace sntrust

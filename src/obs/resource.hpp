// Process resource accounting for the measurement pipeline: peak RSS and
// user/system CPU time via getrusage(2), plus global allocation counters
// fed by operator new/delete replacements.
//
// The allocation hooks are always linked (resource.cpp replaces the global
// operators) but count nothing until enabled — the disabled cost is one
// relaxed atomic load per allocation. Enable with SNTRUST_ALLOC_STATS=1 or
// programmatically via set_alloc_stats_enabled. CPU/RSS sampling has no
// ambient cost; callers (the tracer, the run reporter) sample explicitly.
//
// All values are process-wide and cumulative, so two samples subtract into
// a delta for any region of interest; the tracer does exactly that to give
// every span cpu/alloc/rss attribution.
#pragma once

#include <cstdint>

namespace sntrust::obs {

/// One cumulative sample of the process's resource consumption.
struct ResourceUsage {
  std::uint64_t user_cpu_ns = 0;    ///< ru_utime since process start
  std::uint64_t system_cpu_ns = 0;  ///< ru_stime since process start
  std::uint64_t peak_rss_bytes = 0; ///< high-water resident set (monotonic)
  std::uint64_t alloc_bytes = 0;    ///< cumulative bytes through operator new
  std::uint64_t alloc_count = 0;    ///< cumulative operator new calls
  std::uint64_t free_count = 0;     ///< cumulative operator delete calls

  std::uint64_t cpu_ns() const { return user_cpu_ns + system_cpu_ns; }
};

/// Samples getrusage and the allocation counters now. Alloc fields are zero
/// until alloc stats are enabled; CPU/RSS fields are zero on platforms
/// without getrusage.
ResourceUsage resource_usage_now();

/// Whether the operator new/delete hooks are counting. Resolved once from
/// SNTRUST_ALLOC_STATS on first query unless overridden.
bool alloc_stats_enabled();

/// Runtime override of the allocation-counting toggle (tests, tools).
/// Counters are cumulative and never reset, so enabling mid-run only means
/// earlier allocations were not counted.
void set_alloc_stats_enabled(bool enabled);

}  // namespace sntrust::obs

// Log-bucketed quantile histograms (HDR-style) for live latency telemetry.
//
// `QuantileHistogram` divides every power-of-two octave into
// `kQuantileSubBuckets` linear sub-buckets, so `value_at_quantile(q)` carries
// a bounded *relative* error of at most `kQuantileRelativeError`
// (= 1 / (2 * kQuantileSubBuckets), ~1.6%): a bucket within octave
// [2^o, 2^(o+1)) spans 2^o / kQuantileSubBuckets and the estimator answers
// with the bucket midpoint clamped to the exact observed [min, max].
//
// Recording is lock-free — one relaxed fetch_add on the bucket counter plus
// CAS-maintained exact min/max — and every piece of state is an integer
// counter or an order-independent fold, so two histograms fed the same
// multiset of samples from any number of threads in any order snapshot
// *bitwise identically* (no accumulated floating-point sum whose rounding
// would depend on arrival order; `approx_sum()` is derived from the buckets
// on demand instead).
//
// `WindowedQuantileHistogram` is the sliding-window variant the telemetry
// exporter reads: a ring of sub-window snapshots, each `window_ms / slots`
// wide, merged on read, so "p99 over the last N seconds" costs one short
// per-slot critical section per record and a ring merge per snapshot — no
// global lock. Time comes from `telemetry_now_ms()`, overridable for tests.
//
// Empty-histogram contract (mirrors HistogramSnapshot): when `count == 0`,
// `min`/`max` hold the +inf/-inf fold identities and `value_at_quantile`
// returns NaN — renderers must gate on `count > 0`.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

namespace sntrust::obs {

/// Linear sub-buckets per power-of-two octave. 32 keeps the whole bucket
/// array at 2048 counters (16 KiB) while bounding quantile error to ~1.6%.
inline constexpr std::uint32_t kQuantileSubBuckets = 32;
/// Smallest/largest finite octave: values in [2^-20, 2^44) ms — about one
/// nanosecond to eleven days when samples are milliseconds — resolve to a
/// bucket; anything outside lands in the underflow/overflow counters.
inline constexpr int kQuantileMinExponent = -20;
inline constexpr int kQuantileMaxExponent = 44;
inline constexpr std::size_t kQuantileBuckets =
    static_cast<std::size_t>(kQuantileMaxExponent - kQuantileMinExponent) *
    kQuantileSubBuckets;
/// Documented bound on |estimate - exact| / exact for value_at_quantile over
/// in-range samples; pinned by test_obs.
inline constexpr double kQuantileRelativeError =
    1.0 / (2.0 * kQuantileSubBuckets);

/// Consistent copy of a quantile histogram (or a merge of sub-windows).
/// Integer bucket counts plus exact min/max; all derived statistics are pure
/// functions of this state, so equal snapshots give equal answers.
struct QuantileSnapshot {
  std::uint64_t count = 0;
  std::uint64_t underflow = 0;  ///< samples below 2^kQuantileMinExponent (or <= 0)
  std::uint64_t overflow = 0;   ///< samples at or above 2^kQuantileMaxExponent
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::vector<std::uint64_t> buckets =
      std::vector<std::uint64_t>(kQuantileBuckets, 0);

  /// Value at quantile q in [0, 1] (clamped). NaN when `count == 0` — the
  /// empty-histogram contract. Otherwise the midpoint of the bucket holding
  /// rank ceil(q * count), clamped to [min, max]; underflow ranks answer
  /// `min`, overflow ranks answer `max`.
  double value_at_quantile(double q) const;

  /// Sum estimated from bucket midpoints (clamped to [min, max] per bucket);
  /// deterministic but only bucket-resolution accurate. 0 when empty.
  double approx_sum() const;
  double approx_mean() const {
    return count == 0 ? 0.0 : approx_sum() / static_cast<double>(count);
  }

  /// Folds another snapshot in (bucket-wise add, min/max fold); the windowed
  /// histogram's merge-on-read.
  void merge(const QuantileSnapshot& other);

  bool operator==(const QuantileSnapshot& other) const;
};

/// Cumulative quantile histogram; the registry hands out stable references
/// (see Metrics::quantile) so hot paths cache them.
class QuantileHistogram {
 public:
  QuantileHistogram();

  /// Records one sample. Lock-free: a relaxed add on the owning bucket and
  /// CAS folds of exact min/max. NaN samples count as underflow and leave
  /// min/max untouched.
  void record(double value);

  QuantileSnapshot snapshot() const;
  void reset();

  /// Bucket index a finite in-range value lands in (exposed for tests);
  /// values below/above the tracked range return kQuantileBuckets (sentinel:
  /// use underflow/overflow).
  static std::size_t bucket_index(double value);
  /// Midpoint of bucket i — the estimator's representative value.
  static double bucket_midpoint(std::size_t index);

 private:
  // No total-count atomic: snapshot() derives count from the loaded buckets
  // so a live snapshot is internally consistent by construction.
  std::atomic<std::uint64_t> underflow_{0};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> min_bits_;  ///< bit_cast of the running min
  std::atomic<std::uint64_t> max_bits_;  ///< bit_cast of the running max
  std::array<std::atomic<std::uint64_t>, kQuantileBuckets> buckets_;
};

/// Milliseconds on the steady clock since the first call; the time base for
/// sub-window rotation and telemetry frame timestamps.
std::uint64_t telemetry_now_ms();
/// Test hook: replaces the clock with `now_ms` (nullptr restores the steady
/// clock). Not thread-safe against concurrent recorders; install before use.
void set_telemetry_clock_for_test(std::uint64_t (*now_ms)());

/// Sliding-window quantile histogram: a ring of `slots` sub-windows, each
/// `window_ms / slots` wide. A record lands in the sub-window the current
/// time maps to (stale slots are recycled in place); a snapshot merges the
/// slots still inside the window. Per-slot mutexes keep record cost at one
/// short critical section with no cross-slot contention.
class WindowedQuantileHistogram {
 public:
  struct Options {
    std::uint64_t window_ms = 10'000;  ///< total sliding-window span
    std::uint32_t slots = 8;           ///< ring granularity (>= 2)
  };

  // Two overloads rather than `Options options = {}`: a braced default
  // argument for a nested aggregate with member initializers trips GCC's
  // complete-class parsing inside the enclosing class.
  WindowedQuantileHistogram() : WindowedQuantileHistogram(Options()) {}
  explicit WindowedQuantileHistogram(Options options);

  void record(double value);
  /// Merge of every sub-window whose epoch is within the window ending now.
  QuantileSnapshot snapshot() const;
  void reset();

  std::uint64_t window_ms() const { return options_.window_ms; }

 private:
  struct Slot {
    mutable std::mutex mutex;
    std::uint64_t epoch = kIdle;  ///< sub-window sequence number, kIdle = empty
    QuantileSnapshot data;
  };
  static constexpr std::uint64_t kIdle = ~0ULL;

  std::uint64_t sub_window_ms() const {
    return options_.window_ms / options_.slots;
  }

  Options options_;
  std::vector<Slot> slots_;
};

}  // namespace sntrust::obs

#include "obs/progress.hpp"

#include <iostream>

#include "util/env.hpp"
#include "util/format.hpp"

namespace sntrust::obs {

ProgressMeter::ProgressMeter(std::string label, std::uint64_t total,
                             ProgressOptions options)
    : label_(std::move(label)),
      total_(total),
      out_(options.out != nullptr ? options.out : &std::cerr),
      min_interval_(options.min_interval),
      enabled_(options.enabled.has_value()
                   ? *options.enabled
                   : env_bool("SNTRUST_PROGRESS", false)) {}

ProgressMeter::~ProgressMeter() { done(); }

void ProgressMeter::tick(std::uint64_t delta) {
  current_ += delta;
  if (!enabled_ || finished_) return;
  const std::uint64_t now = stopwatch_.elapsed_ns();
  const auto interval_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(min_interval_)
          .count());
  if (now - last_emit_ns_ < interval_ns) return;
  last_emit_ns_ = now;
  emit(false);
}

void ProgressMeter::done() {
  if (!enabled_ || finished_) {
    finished_ = true;
    return;
  }
  finished_ = true;
  emit(true);
}

void ProgressMeter::emit(bool final_line) {
  ++emissions_;
  *out_ << '\r' << '[' << label_ << "] " << current_;
  if (total_ > 0) {
    *out_ << '/' << total_ << " ("
          << fixed(100.0 * static_cast<double>(current_) /
                       static_cast<double>(total_),
                   1)
          << "%)";
  }
  if (final_line)
    *out_ << " done in " << fixed(stopwatch_.elapsed_ms(), 1) << " ms\n";
  out_->flush();
}

}  // namespace sntrust::obs

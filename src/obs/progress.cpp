#include "obs/progress.hpp"

#include <iostream>

#include "util/env.hpp"
#include "util/format.hpp"

namespace sntrust::obs {

ProgressMeter::ProgressMeter(std::string label, std::uint64_t total,
                             ProgressOptions options)
    : label_(std::move(label)),
      total_(total),
      out_(options.out != nullptr ? options.out : &std::cerr),
      min_interval_(options.min_interval),
      enabled_(options.enabled.has_value()
                   ? *options.enabled
                   : env_bool("SNTRUST_PROGRESS", false)) {}

ProgressMeter::~ProgressMeter() { done(); }

void ProgressMeter::tick(std::uint64_t delta) {
  current_.fetch_add(delta, std::memory_order_relaxed);
  if (!enabled_ || finished_.load(std::memory_order_relaxed)) return;
  const std::uint64_t now = stopwatch_.elapsed_ns();
  const auto interval_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(min_interval_)
          .count());
  std::uint64_t last = last_emit_ns_.load(std::memory_order_relaxed);
  if (now - last < interval_ns) return;
  // Claim this emission slot; losers (concurrent workers racing on the same
  // interval boundary) skip — the next interval will pick their count up.
  if (!last_emit_ns_.compare_exchange_strong(last, now,
                                             std::memory_order_relaxed))
    return;
  std::lock_guard<std::mutex> lock(emit_mutex_);
  if (finished_.load(std::memory_order_relaxed)) return;
  emit(false);
}

void ProgressMeter::done() {
  std::lock_guard<std::mutex> lock(emit_mutex_);
  if (finished_.exchange(true, std::memory_order_relaxed)) return;
  if (!enabled_) return;
  emit(true);
}

void ProgressMeter::emit(bool final_line) {
  emissions_.fetch_add(1, std::memory_order_relaxed);
  *out_ << '\r' << '[' << label_ << "] "
        << current_.load(std::memory_order_relaxed);
  if (total_ > 0) {
    *out_ << '/' << total_ << " ("
          << fixed(100.0 *
                       static_cast<double>(
                           current_.load(std::memory_order_relaxed)) /
                       static_cast<double>(total_),
                   1)
          << "%)";
  }
  if (final_line)
    *out_ << " done in " << fixed(stopwatch_.elapsed_ms(), 1) << " ms\n";
  out_->flush();
}

}  // namespace sntrust::obs

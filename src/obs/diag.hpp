// Estimator diagnostics: convergence traces, confidence intervals, and
// non-convergence flags for every measured property.
//
// The pipeline's outputs are statistical estimates — mixing time from TVD
// decay, SLEM from power iteration, expansion ratios from sampled sweeps,
// GateKeeper acceptance rates from Bernoulli trials — but the run report
// historically carried only the final point values. This layer records the
// evidence behind them: per-source convergence trajectories (bounded via
// geometric thinning, so memory stays O(log iterations) per trace), fitted
// decay rates, detected plateaus, CI95 intervals, and an explicit flag for
// any source that exited on an iteration cap instead of a tolerance.
//
// Contract:
//   - Off by default. Arm with SNTRUST_DIAG=1 (or a CLI --diag flag calling
//     set_diag_enabled). When disarmed every entry point is a cheap
//     early-out and nothing is allocated.
//   - Bitwise-neutral: diagnostics only *observe* values the measurement
//     already computed; enabling them never changes a measured output.
//   - Deterministic: traces are recorded serially from collected sweep
//     results (never from worker threads), so the diag section is bitwise
//     identical at any thread count.
//
// The collected state lands in the run report's "diag" section (see
// obs/run_report.hpp) and bumps diag.* counters that ride along in live
// telemetry frames. `tools/sntrust_diag` renders and diffs the section;
// `sntrust_benchdiff` gates on it (CI width, nonconverged count).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace sntrust::obs {

/// Whether diagnostics collection is armed (SNTRUST_DIAG, overridable).
bool diag_enabled();
/// Overrides the environment (CLI --diag flag, tests).
void set_diag_enabled(bool enabled);

/// TVD threshold used to decide whether a mixing curve "converged"
/// (SNTRUST_DIAG_EPSILON, default 0.1 — the paper's figures use the
/// variation-distance target, and 0.1 keeps the reference datasets green).
double diag_epsilon();

/// Bounded recorder for one convergence trajectory. Appends are O(1); once
/// `capacity` samples are held, every other kept sample is dropped and the
/// sampling stride doubles, so an N-iteration run keeps O(log N) memory and
/// a geometrically-spaced skeleton of the curve. The first and the exact
/// final sample are always preserved.
class ConvergenceTrace {
 public:
  explicit ConvergenceTrace(std::size_t capacity = 64);

  void add(double value);

  std::uint64_t iterations() const { return next_iteration_; }
  double final_value() const { return last_value_; }
  bool empty() const { return next_iteration_ == 0; }

  /// Kept samples as (iteration, value) pairs, ending with the exact final
  /// sample even when thinning skipped it.
  std::vector<std::pair<std::uint64_t, double>> points() const;

  /// Least-squares decay rate r of value ~ C * exp(-r * iteration), fitted
  /// over the kept samples with value > 0 (log-linear regression). Positive
  /// for a decaying curve; 0 when fewer than two positive samples exist.
  double fitted_decay_rate() const;

  /// Earliest kept iteration from which every later kept value stays within
  /// `rel_tol` * max(|final|, abs_floor) of the final value — the detected
  /// plateau onset. Returns the final iteration when the curve never
  /// settles, 0 for an empty trace.
  std::uint64_t plateau_iteration(double rel_tol = 0.05,
                                  double abs_floor = 1e-12) const;

 private:
  void thin();

  std::size_t capacity_;
  std::uint64_t stride_ = 1;
  std::uint64_t next_iteration_ = 0;
  double last_value_ = 0.0;
  std::vector<std::pair<std::uint64_t, double>> samples_;
};

/// A two-sided 95% confidence interval around a mean estimate.
struct ConfidenceInterval {
  double mean = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t n = 0;      // samples behind the estimate
  double ess = 0.0;         // effective sample size (== n for iid samples)

  double width() const { return hi - lo; }
};

/// Normal-approximation CI95 for a mean from (sum, sum of squares, n).
/// Degenerate inputs (n < 2, non-positive variance) collapse to a
/// zero-width interval at the mean.
ConfidenceInterval mean_ci95(double sum, double sumsq, std::uint64_t n);

/// Wilson score CI95 for a binomial proportion — well-behaved at 0/n and
/// n/n where the normal approximation degenerates.
ConfidenceInterval wilson_ci95(std::uint64_t successes, std::uint64_t trials);

/// One recorded trajectory, ready for the report.
struct TraceSummary {
  std::string kind;          // "mixing.tvd", "slem.power_iteration", ...
  std::uint64_t source = 0;  // vertex id / trial index the trace belongs to
  std::uint64_t iterations = 0;
  bool converged = true;
  double final_value = 0.0;
  double decay_rate = 0.0;
  std::uint64_t plateau_iteration = 0;
  std::vector<std::pair<std::uint64_t, double>> points;
};

/// Builds a TraceSummary from a finished trace (fit + plateau detection).
TraceSummary summarize_trace(const std::string& kind, std::uint64_t source,
                             const ConvergenceTrace& trace, bool converged);

/// Process-wide diagnostics collector. All mutation goes through a mutex —
/// recording happens on the serial aggregation path, so this is never hot.
/// Intentionally leaked like the other obs singletons so the run-report
/// atexit hook finds it alive.
class DiagRegistry {
 public:
  static DiagRegistry& instance();

  /// Appends one trace summary. Traces are capped per kind
  /// (SNTRUST_DIAG_MAX_TRACES, default 64); drops past the cap are counted
  /// and reported so truncation is never silent.
  void record_trace(TraceSummary summary);

  /// Records one named estimate with its CI. A repeated name gets a "#2",
  /// "#3", ... suffix so successive measurements in one process never
  /// overwrite each other.
  void record_estimate(const std::string& name, const ConfidenceInterval& ci);

  /// Flags a source that exited on its iteration cap rather than the
  /// tolerance. Bumps the diag.nonconverged counter (visible in telemetry
  /// frames) and lands in the report's flagged_sources list.
  void record_nonconverged(const std::string& kind, std::uint64_t source,
                           std::uint64_t iterations, double final_value);

  /// True when nothing has been recorded (the report omits the section).
  bool empty() const;

  /// Assembles the "diag" run-report section:
  ///   {"converged": bool, "nonconverged": N, "epsilon": eps,
  ///    "flagged_sources": [{kind, source, iterations, final_value}, ...],
  ///    "estimates": {name: {mean, ci95_lo, ci95_hi, ci95_width, n, ess}},
  ///    "traces": {kind: [{source, iterations, converged, decay_rate,
  ///                       plateau_iteration, final_value,
  ///                       points: [[iter, value], ...]}, ...]},
  ///    "dropped_traces": N}   // only when the per-kind cap truncated
  void reset();
  json::Value build() const;

 private:
  DiagRegistry() = default;

  struct Flagged {
    std::string kind;
    std::uint64_t source;
    std::uint64_t iterations;
    double final_value;
  };

  mutable std::mutex mutex_;
  std::vector<TraceSummary> traces_;
  std::vector<std::pair<std::string, ConfidenceInterval>> estimates_;
  std::vector<Flagged> flagged_;
  std::uint64_t dropped_traces_ = 0;
};

}  // namespace sntrust::obs

#include "obs/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "exec/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "util/env.hpp"
#include "util/format.hpp"

#ifdef __GLIBC__
#include <errno.h>  // program_invocation_short_name
#endif

namespace sntrust::obs {

namespace {

std::string tool_name() {
#ifdef __GLIBC__
  if (program_invocation_short_name != nullptr)
    return program_invocation_short_name;
#endif
  return "unknown";
}

/// {"count", "p50", "p90", "p99", "p999", "min", "max"}; the value fields
/// are present iff count > 0 (NaN/inf have no JSON encoding).
json::Value quantile_entry(const QuantileSnapshot& snap) {
  json::Object entry;
  entry.emplace_back(
      "count", json::Value::integer(static_cast<std::int64_t>(snap.count)));
  if (snap.count > 0) {
    entry.emplace_back("p50", json::Value::number(snap.value_at_quantile(0.5)));
    entry.emplace_back("p90", json::Value::number(snap.value_at_quantile(0.9)));
    entry.emplace_back("p99",
                       json::Value::number(snap.value_at_quantile(0.99)));
    entry.emplace_back("p999",
                       json::Value::number(snap.value_at_quantile(0.999)));
    entry.emplace_back("min", json::Value::number(snap.min));
    entry.emplace_back("max", json::Value::number(snap.max));
  }
  return json::Value::object(std::move(entry));
}

void write_atomically(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::trunc};
    if (!out)
      throw std::runtime_error("telemetry: cannot open " + tmp);
    out << body;
    if (!out)
      throw std::runtime_error("telemetry: write failed " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("telemetry: rename failed " + path);
}

}  // namespace

TelemetryOptions parse_telemetry_spec(const std::string& spec) {
  TelemetryOptions options;
  if (spec.empty()) return options;
  options.jsonl_path = spec;
  const std::size_t colon = spec.rfind(':');
  if (colon != std::string::npos && colon + 1 < spec.size()) {
    const std::string suffix = spec.substr(colon + 1);
    if (suffix.find_first_not_of("0123456789") == std::string::npos) {
      options.jsonl_path = spec.substr(0, colon);
      options.period_ms = std::max<std::uint64_t>(1, std::stoull(suffix));
    }
  }
  return options;
}

TelemetryOptions telemetry_options_from_env() {
  TelemetryOptions options =
      parse_telemetry_spec(env_string("SNTRUST_TELEMETRY", ""));
  options.prom_path = env_string("SNTRUST_TELEMETRY_PROM", "");
  return options;
}

TelemetryExporter& TelemetryExporter::instance() {
  // Intentionally leaked, like the Tracer and Metrics: the atexit stop hook
  // must find the exporter alive at process exit.
  static TelemetryExporter* exporter = new TelemetryExporter();
  return *exporter;
}

void TelemetryExporter::start(TelemetryOptions options) {
  if (!options.enabled()) return;
  std::lock_guard<std::mutex> state_lock(state_mutex_);
  if (running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> io_lock(io_mutex_);
    options_ = std::move(options);
    if (!options_.jsonl_path.empty()) {
      jsonl_out_.open(options_.jsonl_path, std::ios::app);
      if (!jsonl_out_)
        throw std::runtime_error("telemetry: cannot open JSONL sink " +
                                 options_.jsonl_path);
    }
    write_frame_locked();  // frame 0: the run is observable immediately
  }
  {
    std::lock_guard<std::mutex> wake_lock(wake_mutex_);
    stop_requested_ = false;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
  // Registered after the RunReporter's report hook, so at exit the final
  // frame (and frame count) land before the report is assembled.
  static bool atexit_armed = false;
  if (!atexit_armed) {
    atexit_armed = true;
    std::atexit([] { TelemetryExporter::instance().stop(); });
  }
}

void TelemetryExporter::run() {
  std::unique_lock<std::mutex> lock(wake_mutex_);
  const auto period = std::chrono::milliseconds(options_.period_ms);
  while (!stop_requested_) {
    if (wake_.wait_for(lock, period, [this] { return stop_requested_; }))
      break;
    lock.unlock();
    try {
      flush();
    } catch (const std::exception& error) {
      // A failed periodic frame must not take down the workload; the final
      // stop() frame will surface persistent sink problems.
      std::fputs((std::string("telemetry: ") + error.what() + "\n").c_str(),
                 stderr);
    }
    lock.lock();
  }
}

void TelemetryExporter::flush() {
  std::lock_guard<std::mutex> io_lock(io_mutex_);
  write_frame_locked();
}

void TelemetryExporter::write_frame_locked() {
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  // Deterministic injection site for the truncated-frame / mid-export kill
  // tests (SNTRUST_FAULT=telemetry:<seed>:<prob>[:sigterm]).
  exec::fault_point("telemetry", seq);
  if (jsonl_out_.is_open()) {
    build_frame().write(jsonl_out_);
    jsonl_out_ << '\n';
    jsonl_out_.flush();
  }
  if (!options_.prom_path.empty())
    write_atomically(options_.prom_path, build_prometheus());
  frames_written_.fetch_add(1, std::memory_order_relaxed);
}

void TelemetryExporter::stop() {
  std::thread joining;
  {
    std::lock_guard<std::mutex> state_lock(state_mutex_);
    if (!running_.load(std::memory_order_acquire)) return;
    {
      std::lock_guard<std::mutex> wake_lock(wake_mutex_);
      stop_requested_ = true;
    }
    wake_.notify_all();
    joining = std::move(thread_);
  }
  if (joining.joinable()) joining.join();
  try {
    flush();  // final frame: the closing state of the run
  } catch (const std::exception& error) {
    std::fputs((std::string("telemetry: ") + error.what() + "\n").c_str(),
               stderr);
  }
  {
    std::lock_guard<std::mutex> io_lock(io_mutex_);
    if (jsonl_out_.is_open()) jsonl_out_.close();
  }
  running_.store(false, std::memory_order_release);
}

TelemetryOptions TelemetryExporter::options() const {
  std::lock_guard<std::mutex> state_lock(state_mutex_);
  return options_;
}

json::Value TelemetryExporter::build_frame() const {
  json::Object root;
  root.emplace_back("schema_version",
                    json::Value::integer(kTelemetrySchemaVersion));
  root.emplace_back("seq", json::Value::integer(static_cast<std::int64_t>(
                               seq_.load(std::memory_order_relaxed))));
  root.emplace_back("t_ms", json::Value::integer(static_cast<std::int64_t>(
                                telemetry_now_ms())));
  root.emplace_back("tool", json::Value::string(tool_name()));

  const ResourceUsage usage = resource_usage_now();
  json::Object totals;
  totals.emplace_back("user_cpu_ms",
                      json::Value::number(usage.user_cpu_ns / 1e6));
  totals.emplace_back("system_cpu_ms",
                      json::Value::number(usage.system_cpu_ns / 1e6));
  totals.emplace_back(
      "peak_rss_bytes",
      json::Value::integer(static_cast<std::int64_t>(usage.peak_rss_bytes)));
  totals.emplace_back(
      "alloc_bytes",
      json::Value::integer(static_cast<std::int64_t>(usage.alloc_bytes)));
  totals.emplace_back(
      "alloc_count",
      json::Value::integer(static_cast<std::int64_t>(usage.alloc_count)));
  root.emplace_back("totals", json::Value::object(std::move(totals)));

  const MetricsSnapshot snapshot = Metrics::instance().snapshot();
  json::Object counters;
  for (const auto& [name, value] : snapshot.counters)
    counters.emplace_back(name,
                          json::Value::integer(static_cast<std::int64_t>(value)));
  root.emplace_back("counters", json::Value::object(std::move(counters)));
  json::Object gauges;
  for (const auto& [name, value] : snapshot.gauges)
    gauges.emplace_back(name, json::Value::number(value));
  root.emplace_back("gauges", json::Value::object(std::move(gauges)));
  json::Object quantiles;
  for (const auto& [name, snap] : snapshot.quantiles)
    quantiles.emplace_back(name, quantile_entry(snap));
  root.emplace_back("quantiles", json::Value::object(std::move(quantiles)));
  json::Object windows;
  for (const auto& [name, snap] : snapshot.windows)
    windows.emplace_back(name, quantile_entry(snap));
  root.emplace_back("windows", json::Value::object(std::move(windows)));

  return json::Value::object(std::move(root));
}

std::string prometheus_metric_name(const std::string& name) {
  std::string out = "sntrust_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(legal ? c : '_');
  }
  return out;
}

std::string TelemetryExporter::build_prometheus() const {
  const MetricsSnapshot snapshot = Metrics::instance().snapshot();
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = prometheus_metric_name(name) + "_total";
    out << "# TYPE " << metric << " counter\n"
        << metric << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = prometheus_metric_name(name);
    out << "# TYPE " << metric << " gauge\n"
        << metric << ' ' << compact(value) << '\n';
  }
  // Quantile histograms render as Prometheus summaries: one sample per
  // tracked quantile plus _count; empty summaries emit only _count.
  auto summary = [&out](const std::string& metric,
                        const QuantileSnapshot& snap) {
    out << "# TYPE " << metric << " summary\n";
    if (snap.count > 0)
      for (const double q : {0.5, 0.9, 0.99, 0.999})
        out << metric << "{quantile=\"" << compact(q) << "\"} "
            << compact(snap.value_at_quantile(q)) << '\n';
    out << metric << "_count " << snap.count << '\n';
  };
  for (const auto& [name, snap] : snapshot.quantiles)
    summary(prometheus_metric_name(name), snap);
  for (const auto& [name, snap] : snapshot.windows)
    summary(prometheus_metric_name(name) + "_window", snap);
  return out.str();
}

TelemetryFrames read_telemetry_frames(const std::string& path) {
  std::ifstream in{path};
  if (!in)
    throw std::runtime_error("telemetry: cannot open " + path);
  TelemetryFrames out;
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    try {
      out.frames.push_back(json::Value::parse(lines[i]));
    } catch (const std::exception&) {
      // Only the final line may be damaged (a kill mid-append); anything
      // earlier means the file is not a telemetry stream.
      if (i + 1 != lines.size())
        throw std::runtime_error("telemetry: malformed frame at line " +
                                 std::to_string(i + 1) + " of " + path);
      out.truncated_tail = true;
      ++out.truncated_frames;
    }
  }
  return out;
}

void arm_telemetry_from_env() {
  const TelemetryOptions options = telemetry_options_from_env();
  if (options.enabled()) TelemetryExporter::instance().start(options);
}

}  // namespace sntrust::obs

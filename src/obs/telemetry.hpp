// Live telemetry export: a background thread that periodically snapshots
// the metrics registry (counters, gauges, quantile histograms and their
// sliding windows) plus the getrusage/alloc resource samplers, and streams
// the result while the process is still running — the counterpart to the
// end-of-run report in run_report.hpp.
//
// Two sinks, both optional and independent:
//   JSONL  (SNTRUST_TELEMETRY=path[:period_ms], or --telemetry on the CLI):
//     one frame object appended per period. Frame schema (version 1, times
//     in milliseconds):
//       {"schema_version": 1, "seq": N, "t_ms": T, "tool": "...",
//        "totals":   {"user_cpu_ms", "system_cpu_ms", "peak_rss_bytes",
//                     "alloc_bytes", "alloc_count"},
//        "counters": {name: value},
//        "gauges":   {name: value},
//        "quantiles": {name: {"count", "p50", "p90", "p99", "p999",
//                             "min", "max"}},       // cumulative
//        "windows":   {name: {same keys}}}          // sliding window
//     Quantile entries omit p*/min/max when count == 0 (NaN/inf have no
//     JSON encoding). Frames are flushed after every append, so a killed
//     process loses at most a partial final line; `read_telemetry_frames`
//     tolerates exactly that truncated tail.
//   Prometheus text (SNTRUST_TELEMETRY_PROM=path):
//     the whole exposition rewritten atomically (tmp + rename) per period,
//     for scrape-through-a-file setups.
//
// Lifecycle: `start` spawns the exporter thread and writes frame 0
// immediately; `stop` writes a final frame and joins — so any armed run
// emits at least two frames. Arming via environment happens in the
// RunReporter constructor, which registers the exporter's atexit stop
// *after* its own report hook so the final frame (and the frame count the
// report embeds) land before the report is written.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hpp"

namespace sntrust::obs {

inline constexpr std::int64_t kTelemetrySchemaVersion = 1;
inline constexpr std::uint64_t kTelemetryDefaultPeriodMs = 1000;

struct TelemetryOptions {
  std::string jsonl_path;  ///< empty = JSONL sink disabled
  std::string prom_path;   ///< empty = Prometheus sink disabled
  std::uint64_t period_ms = kTelemetryDefaultPeriodMs;

  bool enabled() const { return !jsonl_path.empty() || !prom_path.empty(); }
};

/// Parses one "path" or "path:period_ms" JSONL spec (the suffix is a period
/// iff the text after the last colon is all digits — paths may contain
/// colons). Shared by SNTRUST_TELEMETRY and the CLI --telemetry flag.
TelemetryOptions parse_telemetry_spec(const std::string& spec);

/// Parses SNTRUST_TELEMETRY ("path" or "path:period_ms") and
/// SNTRUST_TELEMETRY_PROM into options; `enabled()` is false when neither
/// variable is set.
TelemetryOptions telemetry_options_from_env();

/// Background exporter; one per process, intentionally leaked like the
/// other obs singletons so atexit hooks can reach it.
class TelemetryExporter {
 public:
  static TelemetryExporter& instance();

  /// Starts the exporter thread (no-op when options.enabled() is false or
  /// already running). Writes frame 0 synchronously before returning and
  /// registers an atexit stop so the final frame is never lost on a clean
  /// exit.
  void start(TelemetryOptions options);

  /// Writes one frame to every configured sink right now (callable with or
  /// without the thread running; used by tests and by stop()).
  void flush();

  /// Writes a final frame, stops and joins the thread. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  std::uint64_t frames_written() const {
    return frames_written_.load(std::memory_order_relaxed);
  }
  /// Options of the current/most recent start(); default-constructed (not
  /// enabled) before the first.
  TelemetryOptions options() const;

  /// Assembles one schema-v1 frame from the live registry state (exposed
  /// for tests; `seq` is what the next written frame would carry).
  json::Value build_frame() const;

  /// Renders the Prometheus text exposition for the current registry state.
  std::string build_prometheus() const;

 private:
  TelemetryExporter() = default;
  void run();
  void write_frame_locked();  ///< requires io_mutex_

  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> frames_written_{0};
  std::atomic<std::uint64_t> seq_{0};

  mutable std::mutex state_mutex_;  ///< guards options_/thread_ transitions
  TelemetryOptions options_;
  std::thread thread_;

  std::mutex io_mutex_;  ///< serializes sink writes (thread vs flush/stop)
  std::ofstream jsonl_out_;

  std::mutex wake_mutex_;
  std::condition_variable wake_;
  bool stop_requested_ = false;
};

/// Frames parsed back from a JSONL telemetry file with the strict util/json
/// parser. A final line that does not parse (the process was killed mid-
/// append) is dropped and reported via `truncated_tail`; a malformed line
/// anywhere else throws.
struct TelemetryFrames {
  std::vector<json::Value> frames;
  bool truncated_tail = false;
  // How many lines were dropped as unparsable (0 or 1 today — only the tail
  // may be damaged). Counted separately so consumers that diff telemetry
  // streams (sntrust_benchdiff) can surface the loss instead of silently
  // comparing fewer frames.
  std::uint64_t truncated_frames = 0;
};
TelemetryFrames read_telemetry_frames(const std::string& path);

/// Sanitizes a metric name into a Prometheus-legal one: [a-zA-Z0-9_:],
/// everything else mapped to '_', "sntrust_" prefixed.
std::string prometheus_metric_name(const std::string& name);

/// Reads the telemetry environment variables and starts the exporter when
/// they ask for it. Called from the RunReporter constructor so every binary
/// that touches the reporter (all benches, the CLI) honors them.
void arm_telemetry_from_env();

}  // namespace sntrust::obs

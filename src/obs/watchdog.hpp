// Stall watchdog: detects a live process that has stopped making progress.
//
// Workers publish progress with `watchdog_heartbeat()` — one relaxed atomic
// increment, called at natural progress boundaries (a completed thread-pool
// chunk, a completed sweep source). A background thread wakes every
// `check_period_ms` and, while at least one `WatchdogActivity` scope is
// open, compares the heartbeat counter against the last value it saw: no
// change for `stall_ms` means the workload is stalled (a worker wedged in a
// syscall, livelocked, or sleeping in an injected fault), so the watchdog
// bumps the `exec.stalled` counter — which the telemetry exporter streams
// as a live event — logs one line to stderr, and, when `cancel` is set,
// requests cooperative process cancellation via the exec layer: in-flight
// sources drain, checkpoints flush, and the run exits with the standard
// degraded code (75 under bench::guarded_main / the CLI).
//
// Activity scoping is what keeps an *idle* process from "stalling": the
// watchdog only watches between WatchdogActivity construction and
// destruction (run_sweep opens one around every sweep). It fires at most
// once per stall episode and re-arms as soon as the heartbeat advances.
//
// Configure with SNTRUST_STALL_MS=<ms> (0/unset disables) and
// SNTRUST_STALL_CANCEL=1 for the cancel escalation; the environment is read
// the first time an activity scope opens. Tests configure programmatically.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

namespace sntrust::obs {

struct WatchdogOptions {
  std::uint64_t stall_ms = 0;  ///< no-progress window; 0 disables the watchdog
  bool cancel = false;         ///< escalate a stall to cooperative cancel
  /// Poll cadence; 0 = auto (stall_ms / 4, clamped to [1, 1000]).
  std::uint64_t check_period_ms = 0;

  bool enabled() const { return stall_ms > 0; }
  std::uint64_t effective_check_period_ms() const;
};

/// SNTRUST_STALL_MS / SNTRUST_STALL_CANCEL.
WatchdogOptions watchdog_options_from_env();

/// Publishes one unit of progress. Hot-path safe: a relaxed increment.
void watchdog_heartbeat();
/// Total heartbeats published so far (tests, diagnostics).
std::uint64_t watchdog_heartbeats();

/// The process stall watchdog; leaked singleton like the other obs state.
class StallWatchdog {
 public:
  static StallWatchdog& instance();

  /// Replaces the configuration: stops any running monitor thread, then
  /// starts a new one when `options.enabled()`. Safe to call repeatedly.
  void configure(WatchdogOptions options);
  /// configure({}) — stops the monitor (test teardown).
  void stop() { configure(WatchdogOptions{}); }

  bool running() const { return running_.load(std::memory_order_acquire); }
  WatchdogOptions options() const;

  /// Number of stall episodes detected since process start.
  std::uint64_t stalls_detected() const {
    return stalls_.load(std::memory_order_relaxed);
  }

  /// Activity scope bookkeeping (prefer the WatchdogActivity RAII).
  void begin_activity();
  void end_activity();

 private:
  StallWatchdog() = default;
  void run(WatchdogOptions options);
  void fire(const WatchdogOptions& options, std::uint64_t silent_ms);

  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::int64_t> active_{0};
  /// Bumped when an activity scope opens so the monitor restarts its
  /// no-progress clock instead of counting the preceding idle gap.
  std::atomic<std::uint64_t> generation_{0};

  mutable std::mutex state_mutex_;
  WatchdogOptions options_;
  std::thread thread_;

  std::mutex wake_mutex_;
  std::condition_variable wake_;
  bool stop_requested_ = false;
};

/// RAII activity scope: the watchdog only monitors while at least one of
/// these is alive. The first scope in the process also arms the watchdog
/// from the environment (SNTRUST_STALL_MS).
class WatchdogActivity {
 public:
  WatchdogActivity();
  ~WatchdogActivity();
  WatchdogActivity(const WatchdogActivity&) = delete;
  WatchdogActivity& operator=(const WatchdogActivity&) = delete;
};

}  // namespace sntrust::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/format.hpp"

namespace sntrust::obs {

std::size_t Histogram::bucket_index(double value) {
  if (!(value >= 1.0)) return 0;  // negatives and NaN land in bucket 0 too
  const auto exponent = static_cast<std::size_t>(std::floor(std::log2(value)));
  return std::min(exponent + 1, kHistogramBuckets - 1);
}

void Histogram::observe(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  // The empty snapshot holds the min/max identities (+inf/-inf), so the
  // first observation folds in without a special case.
  data_.min = std::min(data_.min, value);
  data_.max = std::max(data_.max, value);
  ++data_.count;
  data_.sum += value;
  ++data_.buckets[bucket_index(value)];
}

HistogramSnapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_;
}

double HistogramSnapshot::value_at_quantile(double q) const {
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank = std::max<std::uint64_t>(
      1,
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (rank > cumulative) continue;
    // Bucket 0 holds values < 1; bucket i >= 1 spans [2^(i-1), 2^i).
    const double midpoint =
        i == 0 ? 0.5 : 1.5 * std::ldexp(1.0, static_cast<int>(i) - 1);
    return std::clamp(midpoint, min, max);
  }
  return max;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  data_ = HistogramSnapshot{};
}

Metrics& Metrics::instance() {
  // Intentionally leaked, like the Tracer: the SNTRUST_REPORT atexit hook
  // snapshots the registry at process exit and must find it alive.
  static Metrics* metrics = new Metrics();
  return *metrics;
}

Counter& Metrics::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_[name];
}

Gauge& Metrics::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_[name];
}

Histogram& Metrics::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return histograms_[name];
}

QuantileHistogram& Metrics::quantile(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return quantiles_[name];
}

WindowedQuantileHistogram& Metrics::windowed(
    const std::string& name, WindowedQuantileHistogram::Options options) {
  std::lock_guard<std::mutex> lock(mutex_);
  return windows_.try_emplace(name, options).first->second;
}

MetricsSnapshot Metrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, counter] : counters_)
    out.counters.emplace(name, counter.value());
  for (const auto& [name, gauge] : gauges_)
    out.gauges.emplace(name, gauge.value());
  for (const auto& [name, histogram] : histograms_)
    out.histograms.emplace(name, histogram.snapshot());
  for (const auto& [name, quantile] : quantiles_)
    out.quantiles.emplace(name, quantile.snapshot());
  for (const auto& [name, window] : windows_)
    out.windows.emplace(name, window.snapshot());
  return out;
}

void Metrics::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter.reset();
  for (auto& [name, gauge] : gauges_) gauge.reset();
  for (auto& [name, histogram] : histograms_) histogram.reset();
  for (auto& [name, quantile] : quantiles_) quantile.reset();
  for (auto& [name, window] : windows_) window.reset();
}

Table Metrics::to_table() const {
  const MetricsSnapshot snap = snapshot();
  Table table{{"kind", "metric", "value"}};
  for (const auto& [name, value] : snap.counters)
    table.add_row({"counter", name, with_thousands(value)});
  for (const auto& [name, value] : snap.gauges)
    table.add_row({"gauge", name, compact(value)});
  for (const auto& [name, histogram] : snap.histograms)
    table.add_row({"histogram", name,
                   histogram.count == 0
                       ? "0 obs"
                       : with_thousands(histogram.count) + " obs, mean " +
                             compact(histogram.mean()) + ", min " +
                             compact(histogram.min) + ", max " +
                             compact(histogram.max)});
  auto quantile_row = [&table](const char* kind, const std::string& name,
                               const QuantileSnapshot& snap_q) {
    table.add_row({kind, name,
                   snap_q.count == 0
                       ? "0 obs"
                       : with_thousands(snap_q.count) + " obs, p50 " +
                             compact(snap_q.value_at_quantile(0.5)) +
                             ", p99 " +
                             compact(snap_q.value_at_quantile(0.99)) +
                             ", max " + compact(snap_q.max)});
  };
  for (const auto& [name, quantile] : snap.quantiles)
    quantile_row("quantile", name, quantile);
  for (const auto& [name, window] : snap.windows)
    quantile_row("window", name, window);
  return table;
}

void count(const std::string& name, std::uint64_t delta) {
  Metrics::instance().counter(name).add(delta);
}

void set_gauge(const std::string& name, double value) {
  Metrics::instance().gauge(name).set(value);
}

void observe(const std::string& name, double value) {
  Metrics::instance().histogram(name).observe(value);
}

void record_latency(const std::string& name, double ms) {
  Metrics& metrics = Metrics::instance();
  metrics.quantile(name).record(ms);
  metrics.windowed(name).record(ms);
}

void metrics_reset_all() { Metrics::instance().reset(); }

}  // namespace sntrust::obs

#include "obs/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>

#include "util/env.hpp"
#include "util/format.hpp"

namespace sntrust::obs {

namespace {

void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  const std::string env_path = env_string("SNTRUST_TRACE", "");
  if (!env_path.empty()) {
    export_path_ = env_path;
    enabled_.store(true, std::memory_order_relaxed);
    std::atexit([] {
      Tracer& tracer = Tracer::instance();
      const std::string path = tracer.export_path();
      if (!path.empty() && tracer.enabled())
        tracer.write_chrome_trace_file(path);
    });
  }
}

Tracer& Tracer::instance() {
  // Intentionally leaked: the SNTRUST_TRACE atexit hook (registered during
  // construction, hence scheduled after a static's destructor) must find the
  // tracer alive at process exit.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::enable() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed) && events_.empty())
    epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  open_stack_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

void Tracer::set_export_path(std::string path) {
  std::lock_guard<std::mutex> lock(mutex_);
  export_path_ = std::move(path);
}

std::string Tracer::export_path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return export_path_;
}

std::uint64_t Tracer::now_ns_locked() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::int64_t Tracer::begin_span(std::string name, std::string category) {
  std::lock_guard<std::mutex> lock(mutex_);
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.depth = static_cast<std::uint32_t>(open_stack_.size());
  event.parent = open_stack_.empty() ? -1 : open_stack_.back();
  event.start_ns = now_ns_locked();
  const auto index = static_cast<std::int64_t>(events_.size());
  events_.push_back(std::move(event));
  open_stack_.push_back(index);
  return index;
}

void Tracer::end_span(std::int64_t token) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (token < 0 || token >= static_cast<std::int64_t>(events_.size())) return;
  TraceEvent& event = events_[static_cast<std::size_t>(token)];
  event.duration_ns = now_ns_locked() - event.start_ns;
  event.closed = true;
  // Pop through the stack in case inner spans leaked (exception unwound past
  // a reset); spans always close LIFO in normal operation.
  while (!open_stack_.empty()) {
    const std::int64_t top = open_stack_.back();
    open_stack_.pop_back();
    if (top == token) break;
  }
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out = events_;
  const std::uint64_t now = now_ns_locked();
  for (TraceEvent& event : out)
    if (!event.closed && now > event.start_ns)
      event.duration_ns = now - event.start_ns;
  return out;
}

double Tracer::coverage_fraction() const {
  const std::vector<TraceEvent> snapshot = events();
  if (snapshot.empty()) return 0.0;
  std::uint64_t covered = 0;
  std::uint64_t last_end = 0;
  for (const TraceEvent& event : snapshot) {
    const std::uint64_t end = event.start_ns + event.duration_ns;
    last_end = std::max(last_end, end);
    if (event.depth != 0) continue;
    // Root spans never overlap (single stack), so summing is exact.
    covered += event.duration_ns;
  }
  if (last_end == 0) return 0.0;
  return static_cast<double>(covered) / static_cast<double>(last_end);
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  const std::vector<TraceEvent> snapshot = events();
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : snapshot) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":";
    write_json_string(out, event.name);
    out << ",\"cat\":";
    write_json_string(out, event.category);
    out << ",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":"
        << event.start_ns / 1000 << ",\"dur\":" << event.duration_ns / 1000
        << ",\"args\":{\"depth\":" << event.depth << "}}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

void Tracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out{path};
  if (!out)
    throw std::runtime_error("Tracer: cannot open trace output " + path);
  write_chrome_trace(out);
  if (!out) throw std::runtime_error("Tracer: trace write failed " + path);
}

Table Tracer::timing_table() const {
  const std::vector<TraceEvent> snapshot = events();
  // Join each event's ancestor chain into a path; aggregate by path.
  std::vector<std::string> paths(snapshot.size());
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const TraceEvent& event = snapshot[i];
    paths[i] = event.parent < 0
                   ? event.name
                   : paths[static_cast<std::size_t>(event.parent)] + "/" +
                         event.name;
  }
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::size_t first_seen = 0;
  };
  std::map<std::string, Agg> by_path;
  std::uint64_t root_total = 0;
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    Agg& agg = by_path[paths[i]];
    if (agg.count == 0) agg.first_seen = i;
    ++agg.count;
    agg.total_ns += snapshot[i].duration_ns;
    if (snapshot[i].depth == 0) root_total += snapshot[i].duration_ns;
  }
  // Present in first-seen order so the table reads like the run.
  std::vector<const std::pair<const std::string, Agg>*> ordered;
  ordered.reserve(by_path.size());
  for (const auto& entry : by_path) ordered.push_back(&entry);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto* a, const auto* b) {
              return a->second.first_seen < b->second.first_seen;
            });

  Table table{{"span", "count", "total ms", "mean ms", "share"}};
  for (const auto* entry : ordered) {
    const Agg& agg = entry->second;
    const double total_ms = agg.total_ns / 1e6;
    const double share = root_total == 0
                             ? 0.0
                             : 100.0 * static_cast<double>(agg.total_ns) /
                                   static_cast<double>(root_total);
    table.add_row({entry->first, std::to_string(agg.count),
                   fixed(total_ms, 3),
                   fixed(total_ms / static_cast<double>(agg.count), 3),
                   fixed(share, 1) + "%"});
  }
  return table;
}

Span::Span(std::string name, std::string category) {
  Tracer& tracer = Tracer::instance();
  if (!tracer.enabled()) return;
  token_ = tracer.begin_span(std::move(name), std::move(category));
}

Span::~Span() {
  if (token_ < 0) return;
  Tracer::instance().end_span(token_);
}

}  // namespace sntrust::obs

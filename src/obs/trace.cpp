#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>

#include "util/env.hpp"
#include "util/format.hpp"
#include "util/json.hpp"

namespace sntrust::obs {

using json::write_json_string;

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  const std::string env_path = env_string("SNTRUST_TRACE", "");
  if (!env_path.empty()) {
    export_path_ = env_path;
    enabled_.store(true, std::memory_order_relaxed);
    std::atexit([] {
      // Throwing from an atexit handler is std::terminate; report instead.
      try {
        Tracer& tracer = Tracer::instance();
        const std::string path = tracer.export_path();
        if (!path.empty() && tracer.enabled())
          tracer.write_chrome_trace_file(path);
      } catch (const std::exception& error) {
        std::fputs(error.what(), stderr);
        std::fputc('\n', stderr);
      }
    });
  }
}

Tracer& Tracer::instance() {
  // Intentionally leaked: the SNTRUST_TRACE atexit hook (registered during
  // construction, hence scheduled after a static's destructor) must find the
  // tracer alive at process exit.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::enable() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed) && events_.empty())
    epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  span_starts_.clear();
  open_stack_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

void Tracer::set_export_path(std::string path) {
  std::lock_guard<std::mutex> lock(mutex_);
  export_path_ = std::move(path);
}

std::string Tracer::export_path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return export_path_;
}

std::uint64_t Tracer::now_ns_locked() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::int64_t Tracer::begin_span(std::string name, std::string category) {
  std::lock_guard<std::mutex> lock(mutex_);
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.depth = static_cast<std::uint32_t>(open_stack_.size());
  event.parent = open_stack_.empty() ? -1 : open_stack_.back();
  event.start_ns = now_ns_locked();
  const auto index = static_cast<std::int64_t>(events_.size());
  events_.push_back(std::move(event));
  span_starts_.push_back(resource_usage_now());
  open_stack_.push_back(index);
  return index;
}

void Tracer::end_span(std::int64_t token) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (token < 0 || token >= static_cast<std::int64_t>(events_.size())) return;
  TraceEvent& event = events_[static_cast<std::size_t>(token)];
  event.duration_ns = now_ns_locked() - event.start_ns;
  event.closed = true;
  // Resource attribution: process-wide deltas over the span's window.
  const ResourceUsage& start = span_starts_[static_cast<std::size_t>(token)];
  const ResourceUsage end = resource_usage_now();
  event.cpu_ns = end.cpu_ns() - start.cpu_ns();
  event.alloc_bytes = end.alloc_bytes - start.alloc_bytes;
  event.alloc_count = end.alloc_count - start.alloc_count;
  event.peak_rss_bytes = end.peak_rss_bytes;
  // Pop through the stack in case inner spans leaked (exception unwound past
  // a reset); spans always close LIFO in normal operation.
  while (!open_stack_.empty()) {
    const std::int64_t top = open_stack_.back();
    open_stack_.pop_back();
    if (top == token) break;
  }
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out = events_;
  const std::uint64_t now = now_ns_locked();
  for (TraceEvent& event : out)
    if (!event.closed && now > event.start_ns)
      event.duration_ns = now - event.start_ns;
  return out;
}

double Tracer::coverage_fraction() const {
  const std::vector<TraceEvent> snapshot = events();
  if (snapshot.empty()) return 0.0;
  std::uint64_t covered = 0;
  std::uint64_t last_end = 0;
  for (const TraceEvent& event : snapshot) {
    const std::uint64_t end = event.start_ns + event.duration_ns;
    last_end = std::max(last_end, end);
    if (event.depth != 0) continue;
    // Root spans never overlap (single stack), so summing is exact.
    covered += event.duration_ns;
  }
  if (last_end == 0) return 0.0;
  return static_cast<double>(covered) / static_cast<double>(last_end);
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  const std::vector<TraceEvent> snapshot = events();
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : snapshot) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":";
    write_json_string(out, event.name);
    out << ",\"cat\":";
    write_json_string(out, event.category);
    out << ",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":"
        << event.start_ns / 1000 << ",\"dur\":" << event.duration_ns / 1000
        << ",\"args\":{\"depth\":" << event.depth
        << ",\"cpu_us\":" << event.cpu_ns / 1000
        << ",\"alloc_bytes\":" << event.alloc_bytes << "}}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

void Tracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out{path};
  if (!out)
    throw std::runtime_error("Tracer: cannot open trace output " + path);
  write_chrome_trace(out);
  if (!out) throw std::runtime_error("Tracer: trace write failed " + path);
}

TraceAggregate Tracer::aggregate_by_path() const {
  const std::vector<TraceEvent> snapshot = events();
  // Join each event's ancestor chain into a path; aggregate by path.
  std::vector<std::string> paths(snapshot.size());
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const TraceEvent& event = snapshot[i];
    paths[i] = event.parent < 0
                   ? event.name
                   : paths[static_cast<std::size_t>(event.parent)] + "/" +
                         event.name;
  }
  struct Agg {
    SpanAggregate totals;
    std::size_t first_seen = 0;
  };
  std::map<std::string, Agg> by_path;
  TraceAggregate out;
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const TraceEvent& event = snapshot[i];
    Agg& agg = by_path[paths[i]];
    if (agg.totals.count == 0) agg.first_seen = i;
    ++agg.totals.count;
    agg.totals.wall_ns += event.duration_ns;
    agg.totals.cpu_ns += event.cpu_ns;
    agg.totals.alloc_bytes += event.alloc_bytes;
    agg.totals.alloc_count += event.alloc_count;
    agg.totals.peak_rss_bytes =
        std::max(agg.totals.peak_rss_bytes, event.peak_rss_bytes);
    if (event.depth == 0) out.root_wall_ns += event.duration_ns;
  }
  // Present in first-seen order so the table reads like the run.
  std::vector<const std::pair<const std::string, Agg>*> ordered;
  ordered.reserve(by_path.size());
  for (const auto& entry : by_path) ordered.push_back(&entry);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto* a, const auto* b) {
              return a->second.first_seen < b->second.first_seen;
            });
  out.spans.reserve(ordered.size());
  for (const auto* entry : ordered) {
    SpanAggregate span = entry->second.totals;
    span.path = entry->first;
    out.spans.push_back(std::move(span));
  }
  return out;
}

Table Tracer::timing_table() const {
  const TraceAggregate aggregate = aggregate_by_path();
  Table table{{"span", "count", "total ms", "mean ms", "share", "cpu ms",
               "allocs"}};
  for (const SpanAggregate& span : aggregate.spans) {
    const double total_ms = span.wall_ns / 1e6;
    const double share =
        aggregate.root_wall_ns == 0
            ? 0.0
            : 100.0 * static_cast<double>(span.wall_ns) /
                  static_cast<double>(aggregate.root_wall_ns);
    table.add_row({span.path, std::to_string(span.count), fixed(total_ms, 3),
                   fixed(total_ms / static_cast<double>(span.count), 3),
                   fixed(share, 1) + "%", fixed(span.cpu_ns / 1e6, 3),
                   with_thousands(span.alloc_count)});
  }
  return table;
}

Span::Span(std::string name, std::string category) {
  Tracer& tracer = Tracer::instance();
  if (!tracer.enabled()) return;
  token_ = tracer.begin_span(std::move(name), std::move(category));
}

Span::~Span() {
  if (token_ < 0) return;
  Tracer::instance().end_span(token_);
}

}  // namespace sntrust::obs

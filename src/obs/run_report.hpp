// Unified JSON run reports: one schema-versioned artifact per process run
// combining the run configuration (threads, scale, seed, graph sizes, ...),
// the metrics snapshot, the per-span timing table with resource columns
// (wall/cpu/alloc/rss from obs/resource.hpp), and wall/CPU/peak-RSS totals.
//
// Arm with SNTRUST_REPORT=<path> (any binary that touches the reporter —
// every bench does via bench_common.hpp::Section — writes the report at
// process exit) or with `sntrust_cli --report <path>`. Arming the reporter
// also enables the tracer so the span table is populated. Reports from two
// runs diff with `tools/sntrust_benchdiff` (alignment by span path / metric
// name, threshold gating), which is what turns a perf PR into a measured,
// diffable claim.
//
// Schema (version 1, all times milliseconds unless suffixed otherwise):
//   {
//     "schema_version": 1,
//     "tool": "<binary name>",
//     "config":  {"threads": N, "scale": S, ...set_config entries},
//     "totals":  {"wall_ms", "user_cpu_ms", "system_cpu_ms", "cpu_ms",
//                 "peak_rss_bytes", "alloc_bytes", "alloc_count",
//                 "free_count"},
//     "spans":   [{"path", "count", "wall_ms", "cpu_ms", "alloc_bytes",
//                  "alloc_count", "peak_rss_bytes"}, ...],
//     "metrics": {"counters": {name: value},
//                 "gauges":   {name: value},
//                 "histograms": {name: {"count", "sum", "mean"
//                                       [, "min", "max"]}}},
//     "telemetry": {"frames_written": N,          // additive: present only
//                   "quantiles": {name: {"count"  // when quantiles recorded
//                     [, "p50", "p90", "p99", "p999", "min", "max"]}}}
//   }
// Histogram min/max (and quantile p*/min/max) are omitted when count == 0
// (the empty-histogram contract's infinities/NaN have no JSON encoding).
// CPU and RSS totals are process-cumulative; wall_ms counts from the
// reporter's creation (the first Section / CLI flag parse, i.e. effectively
// process start). The constructor also arms the live telemetry exporter
// from SNTRUST_TELEMETRY / SNTRUST_TELEMETRY_PROM (see obs/telemetry.hpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace sntrust::obs {

inline constexpr std::int64_t kRunReportSchemaVersion = 1;

/// Process-wide run-report collector. Construction (first `instance()`)
/// records the wall-clock baseline, reads SNTRUST_REPORT, and — when a path
/// is configured — arms an atexit hook and enables the tracer.
class RunReporter {
 public:
  static RunReporter& instance();

  /// Path the report is written to at process exit; empty disables the
  /// export. Setting a non-empty path enables the tracer.
  void set_export_path(std::string path);
  std::string export_path() const;

  /// Label for the "tool" field; defaults to the binary name when the
  /// platform exposes it.
  void set_tool(std::string name);

  /// Records one "config" entry (insertion-ordered, last write per key
  /// wins). "threads" and "scale" are auto-filled at write time unless set
  /// explicitly here.
  void set_config(const std::string& key, std::string value);
  void set_config(const std::string& key, const char* value);
  void set_config(const std::string& key, double value);
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  void set_config(const std::string& key, T value) {
    set_config_value(key, json::Value::integer(static_cast<std::int64_t>(value)));
  }
  void set_config(const std::string& key, bool value);

  /// Records one degraded/skipped work item (a source that failed or timed
  /// out); reported under "exec.failures". Additive to schema version 1 —
  /// the "exec" section only appears when something was recorded.
  void record_failure(const std::string& phase, std::uint64_t index,
                      const std::string& reason);
  /// Marks the run as interrupted (signal/deadline); reported under
  /// "exec.interrupted".
  void set_interrupted(const std::string& reason);

  /// Assembles the report from the live tracer/metrics/resource state.
  json::Value build() const;

  void write(std::ostream& out) const;
  void write_file(const std::string& path) const;

 private:
  RunReporter();
  void set_config_value(const std::string& key, json::Value value);

  struct Failure {
    std::string phase;
    std::uint64_t index;
    std::string reason;
  };

  mutable std::mutex mutex_;
  std::string export_path_;
  std::string tool_;
  std::vector<std::pair<std::string, json::Value>> config_;
  std::vector<Failure> failures_;
  std::string interrupted_;
  std::chrono::steady_clock::time_point wall_start_;
};

}  // namespace sntrust::obs

// Process-wide metrics registry: named counters, gauges, and power-of-two
// histograms instrumenting the measurement pipeline (power-iteration counts,
// walk steps, BFS frontier sizes, GateKeeper ticket totals, ...).
//
// Counters and gauges are lock-free after the first lookup; hot paths cache
// the returned reference (`static Counter& c = metrics_counter("walk.steps")`)
// so the steady-state cost is one relaxed atomic add. `snapshot()` gives a
// consistent copy for reports and tests; `to_table()` feeds the report/
// sinks.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/quantile.hpp"
#include "report/table.hpp"

namespace sntrust::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Power-of-two bucketed distribution of non-negative samples: bucket 0
/// holds values < 1, bucket i >= 1 holds values in [2^(i-1), 2^i).
inline constexpr std::size_t kHistogramBuckets = 64;

/// Empty-histogram contract: when `count == 0`, `min` is +infinity and
/// `max` is -infinity (the identity elements of min/max, so folds over
/// snapshots stay correct), `sum` is 0, `mean()` is 0, and
/// `value_at_quantile()` returns NaN. Renderers that cannot encode
/// infinities or NaN (JSON reports, tables) must gate on `count > 0`.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::vector<std::uint64_t> buckets =
      std::vector<std::uint64_t>(kHistogramBuckets, 0);

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  /// Coarse quantile over the power-of-two buckets: the midpoint of the
  /// bucket holding rank ceil(q * count), clamped to [min, max]. NaN when
  /// `count == 0` (the empty-histogram contract). For tight estimates use
  /// the dedicated QuantileHistogram; this exists so every histogram can
  /// answer the question at octave resolution.
  double value_at_quantile(double q) const;
};

class Histogram {
 public:
  void observe(double value);
  HistogramSnapshot snapshot() const;
  void reset();

  /// Bucket index a value lands in (exposed for tests).
  static std::size_t bucket_index(double value);

 private:
  mutable std::mutex mutex_;
  HistogramSnapshot data_;
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  /// Cumulative quantile histograms (whole-run latency distributions).
  std::map<std::string, QuantileSnapshot> quantiles;
  /// Sliding-window quantile histograms, merged over their window at
  /// snapshot time ("p99 over the last N seconds").
  std::map<std::string, QuantileSnapshot> windows;
};

/// Registry of all metrics in the process. Registration is mutex-guarded;
/// returned references stay valid for the process lifetime (node-based
/// storage), so call sites may cache them.
class Metrics {
 public:
  static Metrics& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  QuantileHistogram& quantile(const std::string& name);
  /// Window options apply on first registration only; later callers get the
  /// existing histogram regardless of the options they pass.
  WindowedQuantileHistogram& windowed(
      const std::string& name, WindowedQuantileHistogram::Options options = {});

  MetricsSnapshot snapshot() const;

  /// Zeroes every registered metric in place (registered references stay
  /// valid). Tests and long-lived sweeps use this between runs.
  void reset();

  /// One row per metric: kind, name, value summary.
  Table to_table() const;

 private:
  Metrics() = default;
  mutable std::mutex mutex_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, QuantileHistogram> quantiles_;
  std::map<std::string, WindowedQuantileHistogram> windows_;
};

/// Convenience forwarders for cold call sites.
void count(const std::string& name, std::uint64_t delta = 1);
void set_gauge(const std::string& name, double value);
void observe(const std::string& name, double value);

/// Records a latency sample (milliseconds) into both the cumulative
/// quantile histogram `name` and its sliding-window sibling, so reports get
/// the whole-run distribution and the telemetry exporter gets "over the
/// last N seconds". Hot paths should cache the two references instead.
void record_latency(const std::string& name, double ms);

/// Zeroes every registered counter, gauge, and histogram in the process.
/// Test fixtures call this in SetUp so metric assertions are isolated from
/// whatever other suites ran earlier in the same process.
void metrics_reset_all();

/// Cached-handle helpers for hot call sites.
inline Counter& metrics_counter(const std::string& name) {
  return Metrics::instance().counter(name);
}
inline Histogram& metrics_histogram(const std::string& name) {
  return Metrics::instance().histogram(name);
}
inline QuantileHistogram& metrics_quantile(const std::string& name) {
  return Metrics::instance().quantile(name);
}
inline WindowedQuantileHistogram& metrics_windowed(
    const std::string& name, WindowedQuantileHistogram::Options options = {}) {
  return Metrics::instance().windowed(name, options);
}

}  // namespace sntrust::obs

#include "obs/diag.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "obs/metrics.hpp"
#include "util/env.hpp"

namespace sntrust::obs {

namespace {

// z for a two-sided 95% interval.
constexpr double kZ95 = 1.959963984540054;

// Tri-state: unset until first query, then sticky unless overridden.
std::atomic<int> g_diag_enabled{-1};

std::uint64_t max_traces_per_kind() {
  static const std::uint64_t cap = [] {
    const std::int64_t v = env_int("SNTRUST_DIAG_MAX_TRACES", 64);
    return v < 1 ? std::uint64_t{1} : static_cast<std::uint64_t>(v);
  }();
  return cap;
}

}  // namespace

bool diag_enabled() {
  int state = g_diag_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    state = env_bool("SNTRUST_DIAG", false) ? 1 : 0;
    g_diag_enabled.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void set_diag_enabled(bool enabled) {
  g_diag_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

double diag_epsilon() { return env_double("SNTRUST_DIAG_EPSILON", 0.1); }

ConvergenceTrace::ConvergenceTrace(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 4)) {
  samples_.reserve(capacity_ + 1);
}

void ConvergenceTrace::add(double value) {
  const std::uint64_t iteration = next_iteration_++;
  last_value_ = value;
  if (iteration % stride_ != 0) return;
  samples_.emplace_back(iteration, value);
  if (samples_.size() > capacity_) thin();
}

void ConvergenceTrace::thin() {
  // Keep every other sample (even positions keep the first) and double the
  // stride; iteration numbers stay multiples of the new stride, so future
  // appends continue the same geometric skeleton.
  std::size_t write = 0;
  for (std::size_t read = 0; read < samples_.size(); read += 2)
    samples_[write++] = samples_[read];
  samples_.resize(write);
  stride_ *= 2;
}

std::vector<std::pair<std::uint64_t, double>> ConvergenceTrace::points()
    const {
  std::vector<std::pair<std::uint64_t, double>> out = samples_;
  if (next_iteration_ == 0) return out;
  const std::uint64_t last = next_iteration_ - 1;
  if (out.empty() || out.back().first != last)
    out.emplace_back(last, last_value_);
  return out;
}

double ConvergenceTrace::fitted_decay_rate() const {
  // Log-linear least squares over the kept positive samples: ln(v) = a - r*t.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  std::uint64_t n = 0;
  for (const auto& [iteration, value] : points()) {
    if (!(value > 0.0)) continue;
    const double x = static_cast<double>(iteration);
    const double y = std::log(value);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 2) return 0.0;
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  const double slope = (static_cast<double>(n) * sxy - sx * sy) / denom;
  return -slope;
}

std::uint64_t ConvergenceTrace::plateau_iteration(double rel_tol,
                                                  double abs_floor) const {
  const auto pts = points();
  if (pts.empty()) return 0;
  const double final_value = pts.back().second;
  const double tolerance =
      rel_tol * std::max(std::fabs(final_value), abs_floor);
  // Walk backwards to the last sample still outside the tolerance band; the
  // plateau starts at the next kept sample.
  std::size_t onset = 0;
  for (std::size_t i = pts.size(); i-- > 0;) {
    if (std::fabs(pts[i].second - final_value) > tolerance) {
      onset = i + 1;
      break;
    }
  }
  if (onset >= pts.size()) return pts.back().first;
  return pts[onset].first;
}

ConfidenceInterval mean_ci95(double sum, double sumsq, std::uint64_t n) {
  ConfidenceInterval ci;
  if (n == 0) return ci;
  const double count = static_cast<double>(n);
  ci.mean = sum / count;
  ci.lo = ci.hi = ci.mean;
  ci.n = n;
  ci.ess = count;
  if (n < 2) return ci;
  const double variance = (sumsq - sum * sum / count) / (count - 1.0);
  if (!(variance > 0.0)) return ci;
  const double half = kZ95 * std::sqrt(variance / count);
  ci.lo = ci.mean - half;
  ci.hi = ci.mean + half;
  return ci;
}

ConfidenceInterval wilson_ci95(std::uint64_t successes,
                               std::uint64_t trials) {
  ConfidenceInterval ci;
  if (trials == 0) return ci;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = kZ95 * kZ95;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      kZ95 * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  ci.mean = p;
  ci.lo = std::max(0.0, center - half);
  ci.hi = std::min(1.0, center + half);
  ci.n = trials;
  ci.ess = n;
  return ci;
}

TraceSummary summarize_trace(const std::string& kind, std::uint64_t source,
                             const ConvergenceTrace& trace, bool converged) {
  TraceSummary summary;
  summary.kind = kind;
  summary.source = source;
  summary.iterations = trace.iterations();
  summary.converged = converged;
  summary.final_value = trace.final_value();
  summary.decay_rate = trace.fitted_decay_rate();
  summary.plateau_iteration = trace.plateau_iteration();
  summary.points = trace.points();
  return summary;
}

DiagRegistry& DiagRegistry::instance() {
  // Leaked on purpose: the run-report atexit hook reads the registry at
  // process exit (see RunReporter::instance for the same pattern).
  static DiagRegistry* registry = new DiagRegistry();
  return *registry;
}

void DiagRegistry::record_trace(TraceSummary summary) {
  // Trace summaries also ride along in telemetry frames via the metrics
  // registry: a monotone trace count plus per-kind last-value gauges.
  count("diag.traces");
  set_gauge("diag." + summary.kind + ".decay_rate", summary.decay_rate);
  set_gauge("diag." + summary.kind + ".final_value", summary.final_value);
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t of_kind = 0;
  for (const TraceSummary& existing : traces_)
    if (existing.kind == summary.kind) ++of_kind;
  if (of_kind >= max_traces_per_kind()) {
    ++dropped_traces_;
    return;
  }
  traces_.push_back(std::move(summary));
}

void DiagRegistry::record_estimate(const std::string& name,
                                   const ConfidenceInterval& ci) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string unique = name;
  for (std::uint64_t suffix = 2;; ++suffix) {
    bool taken = false;
    for (const auto& entry : estimates_)
      if (entry.first == unique) {
        taken = true;
        break;
      }
    if (!taken) break;
    unique = name + "#" + std::to_string(suffix);
  }
  estimates_.emplace_back(std::move(unique), ci);
}

void DiagRegistry::record_nonconverged(const std::string& kind,
                                       std::uint64_t source,
                                       std::uint64_t iterations,
                                       double final_value) {
  count("diag.nonconverged");
  std::lock_guard<std::mutex> lock(mutex_);
  flagged_.push_back(Flagged{kind, source, iterations, final_value});
}

bool DiagRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return traces_.empty() && estimates_.empty() && flagged_.empty();
}

void DiagRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  traces_.clear();
  estimates_.clear();
  flagged_.clear();
  dropped_traces_ = 0;
}

json::Value DiagRegistry::build() const {
  std::vector<TraceSummary> traces;
  std::vector<std::pair<std::string, ConfidenceInterval>> estimates;
  std::vector<Flagged> flagged;
  std::uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    traces = traces_;
    estimates = estimates_;
    flagged = flagged_;
    dropped = dropped_traces_;
  }

  json::Object root;
  root.emplace_back("converged", json::Value::boolean(flagged.empty()));
  root.emplace_back("nonconverged", json::Value::integer(static_cast<std::int64_t>(
                                        flagged.size())));
  root.emplace_back("epsilon", json::Value::number(diag_epsilon()));

  json::Array flagged_rows;
  flagged_rows.reserve(flagged.size());
  for (const Flagged& flag : flagged) {
    json::Object row;
    row.emplace_back("kind", json::Value::string(flag.kind));
    row.emplace_back("source", json::Value::integer(static_cast<std::int64_t>(
                                   flag.source)));
    row.emplace_back("iterations",
                     json::Value::integer(
                         static_cast<std::int64_t>(flag.iterations)));
    row.emplace_back("final_value", json::Value::number(flag.final_value));
    flagged_rows.push_back(json::Value::object(std::move(row)));
  }
  root.emplace_back("flagged_sources",
                    json::Value::array(std::move(flagged_rows)));

  json::Object estimate_rows;
  for (const auto& [name, ci] : estimates) {
    json::Object entry;
    entry.emplace_back("mean", json::Value::number(ci.mean));
    entry.emplace_back("ci95_lo", json::Value::number(ci.lo));
    entry.emplace_back("ci95_hi", json::Value::number(ci.hi));
    entry.emplace_back("ci95_width", json::Value::number(ci.width()));
    entry.emplace_back("n", json::Value::integer(static_cast<std::int64_t>(
                                ci.n)));
    entry.emplace_back("ess", json::Value::number(ci.ess));
    estimate_rows.emplace_back(name, json::Value::object(std::move(entry)));
  }
  root.emplace_back("estimates", json::Value::object(std::move(estimate_rows)));

  // Traces grouped by kind, preserving per-kind recording order.
  std::vector<std::pair<std::string, json::Array>> groups;
  for (const TraceSummary& trace : traces) {
    json::Object row;
    row.emplace_back("source", json::Value::integer(static_cast<std::int64_t>(
                                   trace.source)));
    row.emplace_back("iterations",
                     json::Value::integer(
                         static_cast<std::int64_t>(trace.iterations)));
    row.emplace_back("converged", json::Value::boolean(trace.converged));
    row.emplace_back("decay_rate", json::Value::number(trace.decay_rate));
    row.emplace_back("plateau_iteration",
                     json::Value::integer(static_cast<std::int64_t>(
                         trace.plateau_iteration)));
    row.emplace_back("final_value", json::Value::number(trace.final_value));
    json::Array point_rows;
    point_rows.reserve(trace.points.size());
    for (const auto& [iteration, value] : trace.points) {
      json::Array pair;
      pair.push_back(
          json::Value::integer(static_cast<std::int64_t>(iteration)));
      pair.push_back(json::Value::number(value));
      point_rows.push_back(json::Value::array(std::move(pair)));
    }
    row.emplace_back("points", json::Value::array(std::move(point_rows)));

    json::Array* group = nullptr;
    for (auto& entry : groups)
      if (entry.first == trace.kind) {
        group = &entry.second;
        break;
      }
    if (group == nullptr) {
      groups.emplace_back(trace.kind, json::Array{});
      group = &groups.back().second;
    }
    group->push_back(json::Value::object(std::move(row)));
  }
  json::Object trace_groups;
  for (auto& [kind, rows] : groups)
    trace_groups.emplace_back(kind, json::Value::array(std::move(rows)));
  root.emplace_back("traces", json::Value::object(std::move(trace_groups)));
  if (dropped > 0)
    root.emplace_back("dropped_traces",
                      json::Value::integer(static_cast<std::int64_t>(dropped)));

  return json::Value::object(std::move(root));
}

}  // namespace sntrust::obs

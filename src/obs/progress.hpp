// Rate-limited progress reporting for long per-source sweeps (mixing
// sources, 1000-source expansion envelopes, GateKeeper distributers).
//
// Off by default so library output stays clean and deterministic; enable for
// a run with SNTRUST_PROGRESS=1 (stderr, carriage-return updates) or
// per-meter via ProgressOptions::enabled (tests inject a stream and a zero
// interval for deterministic emission counts).
//
// tick() is safe to call concurrently from thread-pool workers: the item
// count is a relaxed atomic, the rate limiter claims emission slots with a
// compare-exchange, and the actual stream write is mutex-serialized.
// Construction and done() belong to the owning (submitting) thread.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>

#include "obs/trace.hpp"

namespace sntrust::obs {

struct ProgressOptions {
  /// Destination stream; nullptr means stderr.
  std::ostream* out = nullptr;
  /// Minimum wall-clock gap between emitted updates. The final done() line
  /// is always emitted.
  std::chrono::milliseconds min_interval{250};
  /// Overrides the SNTRUST_PROGRESS env toggle when set.
  std::optional<bool> enabled;
};

/// Tracks `current / total` work items and periodically rewrites one status
/// line. Destruction emits the final line (equivalent to done()).
class ProgressMeter {
 public:
  ProgressMeter(std::string label, std::uint64_t total,
                ProgressOptions options = {});
  ~ProgressMeter();
  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  /// Records `delta` finished items; emits a status line when at least
  /// min_interval has elapsed since the previous emission. Callable from
  /// any thread.
  void tick(std::uint64_t delta = 1);

  /// Emits the final "done" line (once) with total elapsed time.
  void done();

  bool enabled() const { return enabled_; }
  std::uint64_t current() const {
    return current_.load(std::memory_order_relaxed);
  }
  /// Number of status lines written so far (tests pin rate-limiting).
  std::uint64_t emissions() const {
    return emissions_.load(std::memory_order_relaxed);
  }

 private:
  void emit(bool final_line);

  std::string label_;
  std::uint64_t total_;
  std::ostream* out_;
  std::chrono::milliseconds min_interval_;
  bool enabled_;
  std::atomic<bool> finished_{false};
  std::atomic<std::uint64_t> current_{0};
  std::atomic<std::uint64_t> emissions_{0};
  Stopwatch stopwatch_;
  std::atomic<std::uint64_t> last_emit_ns_{0};
  std::mutex emit_mutex_;  ///< serializes status-line writes
};

}  // namespace sntrust::obs

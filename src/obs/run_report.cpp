#include "obs/run_report.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include <algorithm>

#include "obs/diag.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "util/env.hpp"

#ifdef __GLIBC__
#include <errno.h>  // program_invocation_short_name
#endif
#ifdef __unix__
#include <unistd.h>
extern char** environ;
#endif

namespace sntrust::obs {

namespace {

std::string default_tool_name() {
#ifdef __GLIBC__
  if (program_invocation_short_name != nullptr)
    return program_invocation_short_name;
#endif
  return "unknown";
}

// Compiler identity baked in at compile time, for provenance diffs.
std::string compiler_version() {
#if defined(__clang__)
  return std::string{"clang "} + __VERSION__;
#elif defined(__GNUC__)
  return std::string{"gcc "} + __VERSION__;
#else
  return "unknown";
#endif
}

// Sorted snapshot of every SNTRUST_* environment variable, so two reports
// can be checked for apples-to-oranges knob differences before diffing.
json::Object sntrust_env_snapshot() {
  std::vector<std::pair<std::string, std::string>> entries;
#ifdef __unix__
  for (char** env = environ; env != nullptr && *env != nullptr; ++env) {
    const std::string entry{*env};
    if (entry.rfind("SNTRUST_", 0) != 0) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) continue;
    entries.emplace_back(entry.substr(0, eq), entry.substr(eq + 1));
  }
#endif
  std::sort(entries.begin(), entries.end());
  json::Object object;
  for (auto& [key, value] : entries)
    object.emplace_back(std::move(key), json::Value::string(std::move(value)));
  return object;
}

}  // namespace

RunReporter::RunReporter()
    : tool_(default_tool_name()),
      wall_start_(std::chrono::steady_clock::now()) {
  const std::string env_path = env_string("SNTRUST_REPORT", "");
  if (!env_path.empty()) {
    export_path_ = env_path;
    Tracer::instance().enable();
  }
  // Armed unconditionally; the hook no-ops while export_path_ is empty, and
  // registering here keeps it after the Tracer's own atexit export.
  std::atexit([] {
    // Throwing from an atexit handler is std::terminate; report instead.
    try {
      RunReporter& reporter = RunReporter::instance();
      const std::string path = reporter.export_path();
      if (!path.empty()) reporter.write_file(path);
    } catch (const std::exception& error) {
      std::fputs(error.what(), stderr);
      std::fputc('\n', stderr);
    }
  });
  // After the report hook on purpose: the exporter's own atexit stop (which
  // writes the final telemetry frame) then runs *before* the report, so the
  // frame count the report embeds includes it.
  arm_telemetry_from_env();
}

RunReporter& RunReporter::instance() {
  // Intentionally leaked, like the Tracer: the atexit hook registered in
  // the constructor must find the reporter alive at process exit.
  static RunReporter* reporter = new RunReporter();
  return *reporter;
}

void RunReporter::set_export_path(std::string path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    export_path_ = std::move(path);
  }
  if (!export_path().empty()) Tracer::instance().enable();
}

std::string RunReporter::export_path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return export_path_;
}

void RunReporter::set_tool(std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  tool_ = std::move(name);
}

void RunReporter::set_config_value(const std::string& key, json::Value value) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : config_) {
    if (entry.first == key) {
      entry.second = std::move(value);
      return;
    }
  }
  config_.emplace_back(key, std::move(value));
}

void RunReporter::set_config(const std::string& key, std::string value) {
  set_config_value(key, json::Value::string(std::move(value)));
}

void RunReporter::set_config(const std::string& key, const char* value) {
  set_config_value(key, json::Value::string(value));
}

void RunReporter::set_config(const std::string& key, double value) {
  set_config_value(key, json::Value::number(value));
}

void RunReporter::set_config(const std::string& key, bool value) {
  set_config_value(key, json::Value::boolean(value));
}

void RunReporter::record_failure(const std::string& phase, std::uint64_t index,
                                 const std::string& reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  failures_.push_back(Failure{phase, index, reason});
}

void RunReporter::set_interrupted(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  interrupted_ = reason.empty() ? "interrupted" : reason;
}

json::Value RunReporter::build() const {
  json::Object root;
  root.emplace_back("schema_version",
                    json::Value::integer(kRunReportSchemaVersion));

  std::string tool;
  std::vector<std::pair<std::string, json::Value>> config;
  std::vector<Failure> failures;
  std::string interrupted;
  std::chrono::steady_clock::time_point wall_start;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tool = tool_;
    config = config_;
    failures = failures_;
    interrupted = interrupted_;
    wall_start = wall_start_;
  }
  root.emplace_back("tool", json::Value::string(std::move(tool)));

  // Config: explicit entries first, then the auto-filled runtime knobs any
  // diff wants for context (unless the caller already set them).
  json::Object config_object;
  auto has_key = [&config](const char* key) {
    for (const auto& entry : config)
      if (entry.first == key) return true;
    return false;
  };
  if (!has_key("threads"))
    config_object.emplace_back(
        "threads",
        json::Value::integer(static_cast<std::int64_t>(parallel::thread_count())));
  if (!has_key("scale"))
    config_object.emplace_back("scale", json::Value::number(bench_scale()));
  if (!has_key("alloc_stats"))
    config_object.emplace_back("alloc_stats",
                               json::Value::boolean(alloc_stats_enabled()));
  // Build/run provenance: compiler + flags baked in at compile time, the
  // diag arming state, and the SNTRUST_* environment snapshot. benchdiff
  // refuses apples-to-oranges comparisons (mismatched graph fingerprints /
  // scale) using these; old reports without them still diff fine.
  if (!has_key("compiler"))
    config_object.emplace_back("compiler",
                               json::Value::string(compiler_version()));
#ifdef SNTRUST_BUILD_FLAGS
  if (!has_key("build_flags"))
    config_object.emplace_back("build_flags",
                               json::Value::string(SNTRUST_BUILD_FLAGS));
#endif
  if (!has_key("diag"))
    config_object.emplace_back("diag", json::Value::boolean(diag_enabled()));
  if (!has_key("env"))
    config_object.emplace_back(
        "env", json::Value::object(sntrust_env_snapshot()));
  for (auto& entry : config)
    config_object.emplace_back(entry.first, std::move(entry.second));
  root.emplace_back("config", json::Value::object(std::move(config_object)));

  // Degradation state (additive: present only when a sweep recorded a
  // skipped source or the run was interrupted, so schema 1 consumers that
  // look up sections by key are unaffected).
  if (!failures.empty() || !interrupted.empty()) {
    json::Object exec;
    exec.emplace_back("partial", json::Value::boolean(!failures.empty()));
    if (!interrupted.empty())
      exec.emplace_back("interrupted", json::Value::string(interrupted));
    json::Array failure_rows;
    failure_rows.reserve(failures.size());
    for (const Failure& failure : failures) {
      json::Object row;
      row.emplace_back("phase", json::Value::string(failure.phase));
      row.emplace_back("index", json::Value::integer(static_cast<std::int64_t>(
                                    failure.index)));
      row.emplace_back("reason", json::Value::string(failure.reason));
      failure_rows.push_back(json::Value::object(std::move(row)));
    }
    exec.emplace_back("failures", json::Value::array(std::move(failure_rows)));
    root.emplace_back("exec", json::Value::object(std::move(exec)));
  }

  // Totals: wall since the reporter existed, everything else cumulative for
  // the process (see header).
  const ResourceUsage usage = resource_usage_now();
  const double wall_ms =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count() /
      1e6;
  json::Object totals;
  totals.emplace_back("wall_ms", json::Value::number(wall_ms));
  totals.emplace_back("user_cpu_ms",
                      json::Value::number(usage.user_cpu_ns / 1e6));
  totals.emplace_back("system_cpu_ms",
                      json::Value::number(usage.system_cpu_ns / 1e6));
  totals.emplace_back("cpu_ms", json::Value::number(usage.cpu_ns() / 1e6));
  totals.emplace_back(
      "peak_rss_bytes",
      json::Value::integer(static_cast<std::int64_t>(usage.peak_rss_bytes)));
  totals.emplace_back(
      "alloc_bytes",
      json::Value::integer(static_cast<std::int64_t>(usage.alloc_bytes)));
  totals.emplace_back(
      "alloc_count",
      json::Value::integer(static_cast<std::int64_t>(usage.alloc_count)));
  totals.emplace_back(
      "free_count",
      json::Value::integer(static_cast<std::int64_t>(usage.free_count)));
  root.emplace_back("totals", json::Value::object(std::move(totals)));

  // Span table: the tracer's per-path aggregation with resource columns.
  json::Array spans;
  const TraceAggregate aggregate = Tracer::instance().aggregate_by_path();
  spans.reserve(aggregate.spans.size());
  for (const SpanAggregate& span : aggregate.spans) {
    json::Object row;
    row.emplace_back("path", json::Value::string(span.path));
    row.emplace_back("count", json::Value::integer(
                                  static_cast<std::int64_t>(span.count)));
    row.emplace_back("wall_ms", json::Value::number(span.wall_ns / 1e6));
    row.emplace_back("cpu_ms", json::Value::number(span.cpu_ns / 1e6));
    row.emplace_back(
        "alloc_bytes",
        json::Value::integer(static_cast<std::int64_t>(span.alloc_bytes)));
    row.emplace_back(
        "alloc_count",
        json::Value::integer(static_cast<std::int64_t>(span.alloc_count)));
    row.emplace_back("peak_rss_bytes",
                     json::Value::integer(
                         static_cast<std::int64_t>(span.peak_rss_bytes)));
    spans.push_back(json::Value::object(std::move(row)));
  }
  root.emplace_back("spans", json::Value::array(std::move(spans)));

  // Metrics snapshot.
  const MetricsSnapshot snapshot = Metrics::instance().snapshot();
  json::Object counters;
  for (const auto& [name, value] : snapshot.counters)
    counters.emplace_back(
        name, json::Value::integer(static_cast<std::int64_t>(value)));
  json::Object gauges;
  for (const auto& [name, value] : snapshot.gauges)
    gauges.emplace_back(name, json::Value::number(value));
  json::Object histograms;
  for (const auto& [name, histogram] : snapshot.histograms) {
    json::Object entry;
    entry.emplace_back("count", json::Value::integer(static_cast<std::int64_t>(
                                    histogram.count)));
    entry.emplace_back("sum", json::Value::number(histogram.sum));
    entry.emplace_back("mean", json::Value::number(histogram.mean()));
    if (histogram.count > 0) {
      // Empty histograms hold the +/-inf identities, which JSON can't
      // encode; min/max are present iff count > 0.
      entry.emplace_back("min", json::Value::number(histogram.min));
      entry.emplace_back("max", json::Value::number(histogram.max));
    }
    histograms.emplace_back(name, json::Value::object(std::move(entry)));
  }
  json::Object metrics;
  metrics.emplace_back("counters", json::Value::object(std::move(counters)));
  metrics.emplace_back("gauges", json::Value::object(std::move(gauges)));
  metrics.emplace_back("histograms",
                       json::Value::object(std::move(histograms)));
  root.emplace_back("metrics", json::Value::object(std::move(metrics)));

  // Telemetry: the whole-run latency quantiles plus the exporter's frame
  // count. Additive to schema 1 — present only when a quantile histogram
  // recorded something or the exporter ran.
  const TelemetryExporter& exporter = TelemetryExporter::instance();
  if (!snapshot.quantiles.empty() || exporter.frames_written() > 0) {
    json::Object telemetry;
    telemetry.emplace_back("frames_written",
                           json::Value::integer(static_cast<std::int64_t>(
                               exporter.frames_written())));
    json::Object quantiles;
    for (const auto& [name, quantile] : snapshot.quantiles) {
      json::Object entry;
      entry.emplace_back("count", json::Value::integer(static_cast<std::int64_t>(
                                      quantile.count)));
      if (quantile.count > 0) {
        // Same gating as histogram min/max: NaN/inf have no JSON encoding.
        entry.emplace_back("p50",
                           json::Value::number(quantile.value_at_quantile(0.5)));
        entry.emplace_back("p90",
                           json::Value::number(quantile.value_at_quantile(0.9)));
        entry.emplace_back(
            "p99", json::Value::number(quantile.value_at_quantile(0.99)));
        entry.emplace_back(
            "p999", json::Value::number(quantile.value_at_quantile(0.999)));
        entry.emplace_back("min", json::Value::number(quantile.min));
        entry.emplace_back("max", json::Value::number(quantile.max));
      }
      quantiles.emplace_back(name, json::Value::object(std::move(entry)));
    }
    telemetry.emplace_back("quantiles",
                           json::Value::object(std::move(quantiles)));
    root.emplace_back("telemetry", json::Value::object(std::move(telemetry)));
  }

  // Estimator diagnostics (SNTRUST_DIAG). Additive to schema 1 — present
  // only when something was recorded.
  const DiagRegistry& diag = DiagRegistry::instance();
  if (!diag.empty()) root.emplace_back("diag", diag.build());

  return json::Value::object(std::move(root));
}

void RunReporter::write(std::ostream& out) const {
  build().write(out);
  out << '\n';
}

void RunReporter::write_file(const std::string& path) const {
  std::ofstream out{path};
  if (!out)
    throw std::runtime_error("RunReporter: cannot open report output " + path);
  write(out);
  if (!out)
    throw std::runtime_error("RunReporter: report write failed " + path);
}

}  // namespace sntrust::obs

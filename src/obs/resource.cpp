#include "obs/resource.hpp"

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define SNTRUST_HAVE_GETRUSAGE 1
#endif

namespace sntrust::obs {

namespace {

// The hooks run during static initialization and inside operator new, so
// everything here must be allocation-free: raw atomics, getenv, strcmp.
std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_free_count{0};

/// -1 = not yet resolved from the environment, 0 = off, 1 = on.
std::atomic<int> g_alloc_state{-1};

bool env_alloc_stats() {
  const char* value = std::getenv("SNTRUST_ALLOC_STATS");
  if (value == nullptr || *value == '\0') return false;
  return std::strcmp(value, "1") == 0 || std::strcmp(value, "true") == 0 ||
         std::strcmp(value, "yes") == 0 || std::strcmp(value, "on") == 0 ||
         std::strcmp(value, "TRUE") == 0 || std::strcmp(value, "YES") == 0 ||
         std::strcmp(value, "ON") == 0;
}

inline bool counting() {
  int state = g_alloc_state.load(std::memory_order_relaxed);
  if (state < 0) {
    state = env_alloc_stats() ? 1 : 0;
    g_alloc_state.store(state, std::memory_order_relaxed);
  }
  return state == 1;
}

inline void note_alloc(std::size_t size) {
  if (!counting()) return;
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
}

inline void note_free(void* ptr) {
  if (ptr == nullptr || !counting()) return;
  g_free_count.fetch_add(1, std::memory_order_relaxed);
}

void* checked_malloc(std::size_t size) {
  // malloc(0) may return nullptr; operator new must return a unique pointer.
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) throw std::bad_alloc{};
  return ptr;
}

void* aligned_malloc(std::size_t size, std::size_t alignment) {
  if (alignment < alignof(std::max_align_t)) alignment = alignof(std::max_align_t);
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t padded = (size + alignment - 1) / alignment * alignment;
  void* ptr = std::aligned_alloc(alignment, padded == 0 ? alignment : padded);
  if (ptr == nullptr) throw std::bad_alloc{};
  return ptr;
}

}  // namespace

ResourceUsage resource_usage_now() {
  ResourceUsage usage;
#ifdef SNTRUST_HAVE_GETRUSAGE
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    usage.user_cpu_ns =
        static_cast<std::uint64_t>(ru.ru_utime.tv_sec) * 1000000000ull +
        static_cast<std::uint64_t>(ru.ru_utime.tv_usec) * 1000ull;
    usage.system_cpu_ns =
        static_cast<std::uint64_t>(ru.ru_stime.tv_sec) * 1000000000ull +
        static_cast<std::uint64_t>(ru.ru_stime.tv_usec) * 1000ull;
#ifdef __APPLE__
    usage.peak_rss_bytes = static_cast<std::uint64_t>(ru.ru_maxrss);
#else
    usage.peak_rss_bytes = static_cast<std::uint64_t>(ru.ru_maxrss) * 1024ull;
#endif
  }
#endif
  usage.alloc_bytes = g_alloc_bytes.load(std::memory_order_relaxed);
  usage.alloc_count = g_alloc_count.load(std::memory_order_relaxed);
  usage.free_count = g_free_count.load(std::memory_order_relaxed);
  return usage;
}

bool alloc_stats_enabled() { return counting(); }

void set_alloc_stats_enabled(bool enabled) {
  g_alloc_state.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace sntrust::obs

// ---------------------------------------------------------------------------
// Global operator new/delete replacements. Linked into every binary that
// pulls in the obs layer (the tracer references resource_usage_now, so in
// practice every binary in the repo). Counting is runtime-gated above.
// ---------------------------------------------------------------------------

void* operator new(std::size_t size) {
  sntrust::obs::note_alloc(size);
  return sntrust::obs::checked_malloc(size);
}

void* operator new[](std::size_t size) {
  sntrust::obs::note_alloc(size);
  return sntrust::obs::checked_malloc(size);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  sntrust::obs::note_alloc(size);
  return std::malloc(size == 0 ? 1 : size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  sntrust::obs::note_alloc(size);
  return std::malloc(size == 0 ? 1 : size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  sntrust::obs::note_alloc(size);
  return sntrust::obs::aligned_malloc(size,
                                      static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  sntrust::obs::note_alloc(size);
  return sntrust::obs::aligned_malloc(size,
                                      static_cast<std::size_t>(alignment));
}

void operator delete(void* ptr) noexcept {
  sntrust::obs::note_free(ptr);
  std::free(ptr);
}

void operator delete[](void* ptr) noexcept {
  sntrust::obs::note_free(ptr);
  std::free(ptr);
}

void operator delete(void* ptr, std::size_t) noexcept {
  sntrust::obs::note_free(ptr);
  std::free(ptr);
}

void operator delete[](void* ptr, std::size_t) noexcept {
  sntrust::obs::note_free(ptr);
  std::free(ptr);
}

void operator delete(void* ptr, std::align_val_t) noexcept {
  sntrust::obs::note_free(ptr);
  std::free(ptr);
}

void operator delete[](void* ptr, std::align_val_t) noexcept {
  sntrust::obs::note_free(ptr);
  std::free(ptr);
}

void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  sntrust::obs::note_free(ptr);
  std::free(ptr);
}

void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  sntrust::obs::note_free(ptr);
  std::free(ptr);
}

void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  sntrust::obs::note_free(ptr);
  std::free(ptr);
}

void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  sntrust::obs::note_free(ptr);
  std::free(ptr);
}

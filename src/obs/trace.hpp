// Hierarchical tracing for the measurement pipeline: RAII `Span`s record
// steady-clock timed events into a process-wide `Tracer`, forming a trace
// tree that exports as Chrome `trace_event` JSON (load into
// chrome://tracing or Perfetto) or as a flat per-path timing table routed
// through the `report/` sinks.
//
// Tracing is off by default; a disabled Span costs one relaxed atomic load.
// Enable programmatically (`Tracer::instance().enable()`), via the CLI's
// `--trace <out.json>` flag, or by setting `SNTRUST_TRACE=<path>` — the env
// path also installs an atexit hook so any binary (benches included) dumps
// its trace on exit.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/resource.hpp"
#include "report/table.hpp"

namespace sntrust::obs {

/// One completed (or still-open) span. Events are stored in begin order, so
/// `parent` indices always point backwards; `depth` 0 means a root span.
///
/// Resource fields are process-wide deltas between span begin and end
/// (see obs/resource.hpp): nested or concurrent spans each observe the full
/// process consumption over their window, so attribution is exact for the
/// single-stack measurement loops and an upper bound under the thread pool.
/// They are zero while the span is open; alloc fields are zero unless
/// SNTRUST_ALLOC_STATS counting is enabled.
struct TraceEvent {
  std::string name;
  std::string category;
  std::uint32_t depth = 0;
  std::int64_t parent = -1;       ///< index into Tracer::events(), -1 = root
  std::uint64_t start_ns = 0;     ///< steady-clock offset from tracer epoch
  std::uint64_t duration_ns = 0;  ///< 0 while the span is still open
  bool closed = false;
  std::uint64_t cpu_ns = 0;          ///< user+system CPU over the span
  std::uint64_t alloc_bytes = 0;     ///< bytes newed during the span
  std::uint64_t alloc_count = 0;     ///< operator new calls during the span
  std::uint64_t peak_rss_bytes = 0;  ///< process peak RSS at span close
};

/// Per-path aggregation of the trace (paths are "a/b/c" joins of the span
/// stack), including the resource columns; the input to both the printed
/// timing table and the run report.
struct SpanAggregate {
  std::string path;
  std::uint64_t count = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t cpu_ns = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t alloc_count = 0;
  std::uint64_t peak_rss_bytes = 0;  ///< max over the path's spans
};

struct TraceAggregate {
  std::vector<SpanAggregate> spans;  ///< in first-seen order
  std::uint64_t root_wall_ns = 0;    ///< total wall of depth-0 spans
};

/// Monotonic wall-clock scope timer (steady_clock); the one timing primitive
/// both the library spans and the bench banner use.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }
  double elapsed_ms() const { return elapsed_ns() / 1e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Process-wide trace collector. Mutex-guarded; spans may be recorded from
/// any thread (span nesting is tracked per process, matching the repo's
/// single-threaded measurement loops).
class Tracer {
 public:
  static Tracer& instance();

  void enable();
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all events and the open-span stack; re-arms the epoch. Tests use
  /// this to get deterministic tree shapes.
  void reset();

  /// Path the trace is written to at process exit (set by SNTRUST_TRACE).
  /// Empty disables the atexit export.
  void set_export_path(std::string path);
  std::string export_path() const;

  /// Snapshot of all events in begin order (open spans have closed=false and
  /// a duration up to "now").
  std::vector<TraceEvent> events() const;

  /// Fraction of wall-clock since enable() covered by root (depth-0) spans.
  double coverage_fraction() const;

  /// Chrome trace_event JSON ("traceEvents" array of complete "X" events,
  /// microsecond timestamps).
  void write_chrome_trace(std::ostream& out) const;
  void write_chrome_trace_file(const std::string& path) const;

  /// Flat per-path aggregation ("a/b/c" join of the span stack): count,
  /// total/mean wall-clock, share of the root total, and the CPU/alloc
  /// resource columns. Feed to Table::print or report/csv_sink.
  Table timing_table() const;

  /// The aggregation behind timing_table(), in structured form for the run
  /// report and the benchdiff alignment.
  TraceAggregate aggregate_by_path() const;

 private:
  friend class Span;
  Tracer();

  /// Returns the event index, or -1 when disabled.
  std::int64_t begin_span(std::string name, std::string category);
  void end_span(std::int64_t token);

  std::uint64_t now_ns_locked() const;

  mutable std::mutex mutex_;
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceEvent> events_;
  std::vector<ResourceUsage> span_starts_;  ///< begin sample, index-aligned
  std::vector<std::int64_t> open_stack_;
  std::string export_path_;
};

/// RAII scoped span. Construction/destruction cost one atomic load when the
/// tracer is disabled.
class Span {
 public:
  explicit Span(std::string name, std::string category = "measure");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::int64_t token_ = -1;
};

}  // namespace sntrust::obs

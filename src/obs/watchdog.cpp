#include "obs/watchdog.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "exec/cancel.hpp"
#include "obs/metrics.hpp"
#include "util/env.hpp"

namespace sntrust::obs {

namespace {

std::atomic<std::uint64_t> g_heartbeats{0};
std::once_flag g_env_once;

}  // namespace

void watchdog_heartbeat() {
  g_heartbeats.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t watchdog_heartbeats() {
  return g_heartbeats.load(std::memory_order_relaxed);
}

std::uint64_t WatchdogOptions::effective_check_period_ms() const {
  if (check_period_ms > 0) return check_period_ms;
  return std::clamp<std::uint64_t>(stall_ms / 4, 1, 1000);
}

WatchdogOptions watchdog_options_from_env() {
  WatchdogOptions options;
  options.stall_ms = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, env_int("SNTRUST_STALL_MS", 0)));
  options.cancel = env_bool("SNTRUST_STALL_CANCEL", false);
  return options;
}

StallWatchdog& StallWatchdog::instance() {
  // Intentionally leaked: activity scopes in atexit-adjacent code (final
  // checkpoint flushes) must find the watchdog alive.
  static StallWatchdog* watchdog = new StallWatchdog();
  return *watchdog;
}

void StallWatchdog::configure(WatchdogOptions options) {
  std::lock_guard<std::mutex> state_lock(state_mutex_);
  if (thread_.joinable()) {
    {
      std::lock_guard<std::mutex> wake_lock(wake_mutex_);
      stop_requested_ = true;
    }
    wake_.notify_all();
    thread_.join();
    running_.store(false, std::memory_order_release);
  }
  options_ = options;
  if (!options.enabled()) return;
  {
    std::lock_guard<std::mutex> wake_lock(wake_mutex_);
    stop_requested_ = false;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this, options] { run(options); });
}

WatchdogOptions StallWatchdog::options() const {
  std::lock_guard<std::mutex> state_lock(state_mutex_);
  return options_;
}

void StallWatchdog::begin_activity() {
  generation_.fetch_add(1, std::memory_order_relaxed);
  active_.fetch_add(1, std::memory_order_relaxed);
}

void StallWatchdog::end_activity() {
  active_.fetch_sub(1, std::memory_order_relaxed);
}

void StallWatchdog::run(WatchdogOptions options) {
  using clock = std::chrono::steady_clock;
  const auto period =
      std::chrono::milliseconds(options.effective_check_period_ms());
  std::uint64_t seen_heartbeats = watchdog_heartbeats();
  std::uint64_t seen_generation = generation_.load(std::memory_order_relaxed);
  clock::time_point last_progress = clock::now();
  bool fired = false;

  std::unique_lock<std::mutex> lock(wake_mutex_);
  while (!stop_requested_) {
    if (wake_.wait_for(lock, period, [this] { return stop_requested_; }))
      break;
    const clock::time_point now = clock::now();
    if (active_.load(std::memory_order_relaxed) <= 0) {
      // Idle is not stalled: keep the clock pinned to "now" so the first
      // activity scope starts with a full window.
      seen_heartbeats = watchdog_heartbeats();
      last_progress = now;
      fired = false;
      continue;
    }
    const std::uint64_t heartbeats = watchdog_heartbeats();
    const std::uint64_t generation =
        generation_.load(std::memory_order_relaxed);
    if (heartbeats != seen_heartbeats || generation != seen_generation) {
      seen_heartbeats = heartbeats;
      seen_generation = generation;
      last_progress = now;
      fired = false;  // progress re-arms the watchdog for the next episode
      continue;
    }
    const auto silent_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(now -
                                                              last_progress)
            .count());
    if (!fired && silent_ms >= options.stall_ms) {
      fired = true;  // once per episode
      lock.unlock();
      fire(options, silent_ms);
      lock.lock();
    }
  }
}

void StallWatchdog::fire(const WatchdogOptions& options,
                         std::uint64_t silent_ms) {
  stalls_.fetch_add(1, std::memory_order_relaxed);
  // The counter is the telemetry event: the exporter streams it in the next
  // frame and the run report records it at exit.
  count("exec.stalled", 1);
  const std::string message =
      "watchdog: no progress for " + std::to_string(silent_ms) +
      " ms (stall threshold " + std::to_string(options.stall_ms) + " ms)" +
      (options.cancel ? ", requesting cooperative cancel" : "");
  std::fputs((message + "\n").c_str(), stderr);
  if (options.cancel)
    exec::request_process_cancel("stalled for " + std::to_string(silent_ms) +
                                 " ms");
}

WatchdogActivity::WatchdogActivity() {
  std::call_once(g_env_once, [] {
    const WatchdogOptions options = watchdog_options_from_env();
    if (options.enabled()) StallWatchdog::instance().configure(options);
  });
  StallWatchdog::instance().begin_activity();
}

WatchdogActivity::~WatchdogActivity() {
  StallWatchdog::instance().end_activity();
}

}  // namespace sntrust::obs

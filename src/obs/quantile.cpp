#include "obs/quantile.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>

namespace sntrust::obs {

namespace {

constexpr double kQuantileMinValue = 0x1.0p-20;  // 2^kQuantileMinExponent
constexpr double kQuantileMaxValue = 0x1.0p+44;  // 2^kQuantileMaxExponent

/// Folds `value` into a CAS-maintained extremum. The comparison is exact, so
/// the result is the true min/max of the recorded multiset regardless of
/// thread interleaving; NaN never satisfies either comparison and is skipped.
template <typename Better>
void atomic_fold(std::atomic<std::uint64_t>& bits, double value,
                 Better better) {
  std::uint64_t current = bits.load(std::memory_order_relaxed);
  while (better(value, std::bit_cast<double>(current)) &&
         !bits.compare_exchange_weak(current, std::bit_cast<std::uint64_t>(value),
                                     std::memory_order_relaxed))
    ;
}

/// Single-threaded record into a snapshot (the windowed slots, guarded by
/// their mutex, share the cumulative histogram's bucketing exactly).
void record_into(QuantileSnapshot& data, double value) {
  ++data.count;
  if (value < data.min) data.min = value;
  if (value > data.max) data.max = value;
  if (!(value >= kQuantileMinValue)) {  // negatives, zero, and NaN
    ++data.underflow;
    return;
  }
  if (value >= kQuantileMaxValue) {
    ++data.overflow;
    return;
  }
  ++data.buckets[QuantileHistogram::bucket_index(value)];
}

}  // namespace

double QuantileSnapshot::value_at_quantile(double q) const {
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  // 1-based rank of the order statistic the quantile asks for.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t cumulative = underflow;
  if (rank <= cumulative) return min;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (rank <= cumulative)
      return std::clamp(QuantileHistogram::bucket_midpoint(i), min, max);
  }
  return max;  // overflow region (or a torn live snapshot): answer the top
}

double QuantileSnapshot::approx_sum() const {
  if (count == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i)
    if (buckets[i] != 0)
      sum += static_cast<double>(buckets[i]) *
             std::clamp(QuantileHistogram::bucket_midpoint(i), min, max);
  // Out-of-range samples are pinned to the exact extremes they define.
  sum += static_cast<double>(underflow) * min;
  sum += static_cast<double>(overflow) * max;
  return sum;
}

void QuantileSnapshot::merge(const QuantileSnapshot& other) {
  count += other.count;
  underflow += other.underflow;
  overflow += other.overflow;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
}

bool QuantileSnapshot::operator==(const QuantileSnapshot& other) const {
  return count == other.count && underflow == other.underflow &&
         overflow == other.overflow &&
         std::bit_cast<std::uint64_t>(min) ==
             std::bit_cast<std::uint64_t>(other.min) &&
         std::bit_cast<std::uint64_t>(max) ==
             std::bit_cast<std::uint64_t>(other.max) &&
         buckets == other.buckets;
}

QuantileHistogram::QuantileHistogram()
    : min_bits_(std::bit_cast<std::uint64_t>(
          std::numeric_limits<double>::infinity())),
      max_bits_(std::bit_cast<std::uint64_t>(
          -std::numeric_limits<double>::infinity())) {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

std::size_t QuantileHistogram::bucket_index(double value) {
  if (!(value >= kQuantileMinValue) || value >= kQuantileMaxValue)
    return kQuantileBuckets;
  int exponent = 0;
  const double mantissa = std::frexp(value, &exponent);  // in [0.5, 1)
  const int octave = exponent - 1;  // value in [2^octave, 2^(octave+1))
  const auto sub = static_cast<std::size_t>(
      (mantissa * 2.0 - 1.0) * kQuantileSubBuckets);
  return static_cast<std::size_t>(octave - kQuantileMinExponent) *
             kQuantileSubBuckets +
         std::min<std::size_t>(sub, kQuantileSubBuckets - 1);
}

double QuantileHistogram::bucket_midpoint(std::size_t index) {
  const int octave =
      kQuantileMinExponent + static_cast<int>(index / kQuantileSubBuckets);
  const double sub = static_cast<double>(index % kQuantileSubBuckets);
  return std::ldexp(1.0 + (sub + 0.5) / kQuantileSubBuckets, octave);
}

void QuantileHistogram::record(double value) {
  atomic_fold(min_bits_, value, [](double a, double b) { return a < b; });
  atomic_fold(max_bits_, value, [](double a, double b) { return a > b; });
  if (!(value >= kQuantileMinValue)) {
    underflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (value >= kQuantileMaxValue) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
}

QuantileSnapshot QuantileHistogram::snapshot() const {
  QuantileSnapshot snap;
  snap.underflow = underflow_.load(std::memory_order_relaxed);
  snap.overflow = overflow_.load(std::memory_order_relaxed);
  snap.min = std::bit_cast<double>(min_bits_.load(std::memory_order_relaxed));
  snap.max = std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
  // Count is derived from the loaded counters, so a snapshot racing active
  // recorders is still internally consistent (every rank resolves to some
  // loaded bucket); a quiescent snapshot is exact and bitwise deterministic.
  snap.count = snap.underflow + snap.overflow;
  for (std::size_t i = 0; i < kQuantileBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  return snap;
}

void QuantileHistogram::reset() {
  underflow_.store(0, std::memory_order_relaxed);
  overflow_.store(0, std::memory_order_relaxed);
  min_bits_.store(std::bit_cast<std::uint64_t>(
                      std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
  max_bits_.store(std::bit_cast<std::uint64_t>(
                      -std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

namespace {
std::atomic<std::uint64_t (*)()> g_telemetry_clock{nullptr};
}  // namespace

std::uint64_t telemetry_now_ms() {
  if (const auto clock = g_telemetry_clock.load(std::memory_order_relaxed))
    return clock();
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

void set_telemetry_clock_for_test(std::uint64_t (*now_ms)()) {
  g_telemetry_clock.store(now_ms, std::memory_order_relaxed);
}

WindowedQuantileHistogram::WindowedQuantileHistogram(Options options)
    : options_{std::max<std::uint64_t>(options.window_ms, 2),
               std::max<std::uint32_t>(options.slots, 2)},
      slots_(options_.slots) {
  // Sub-windows must be at least 1 ms wide for the epoch arithmetic.
  if (options_.window_ms < options_.slots) options_.window_ms = options_.slots;
}

void WindowedQuantileHistogram::record(double value) {
  const std::uint64_t epoch = telemetry_now_ms() / sub_window_ms();
  Slot& slot = slots_[epoch % slots_.size()];
  std::lock_guard<std::mutex> lock(slot.mutex);
  if (slot.epoch != epoch) {  // recycle a sub-window that aged out
    slot.data = QuantileSnapshot{};
    slot.epoch = epoch;
  }
  record_into(slot.data, value);
}

QuantileSnapshot WindowedQuantileHistogram::snapshot() const {
  const std::uint64_t now_epoch = telemetry_now_ms() / sub_window_ms();
  QuantileSnapshot merged;
  for (const Slot& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (slot.epoch == kIdle) continue;
    if (now_epoch - slot.epoch >= slots_.size()) continue;  // aged out
    merged.merge(slot.data);
  }
  return merged;
}

void WindowedQuantileHistogram::reset() {
  for (Slot& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot.mutex);
    slot.epoch = kIdle;
    slot.data = QuantileSnapshot{};
  }
}

}  // namespace sntrust::obs

// Anonymity of random-walk mixing over social graphs (Nagaraja, PETS 2007 —
// the paper's ref [8]): a message forwarded along a w-step random walk is
// anonymous to the extent that its exit distribution is close to uniform /
// stationary. The natural metrics, both computed from the exact walk
// distribution the markov substrate already evolves:
//
//   - Shannon entropy of the exit distribution (bits), against the maximum
//     log2(n) — Serjantov–Danezis/Diaz-style anonymity-set size;
//   - TVD to the stationary distribution (how much the exit point leaks
//     about the entry point).
//
// Fast-mixing graphs reach near-maximal entropy within O(log n) hops; slow
// graphs leak the sender's community for hundreds of hops — the reason the
// paper's mixing measurements matter for anonymous communication.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "markov/distribution.hpp"

namespace sntrust {

/// Shannon entropy (bits) of a distribution. Zero entries contribute zero.
double shannon_entropy_bits(const Distribution& d);

/// Anonymity trajectory of a walk-based mix starting at `sender`.
struct AnonymityCurve {
  VertexId sender = 0;
  /// entropy_bits[t] for t = 0..max_hops.
  std::vector<double> entropy_bits;
  /// TVD to the stationary distribution per hop.
  std::vector<double> leak_tvd;
  /// Maximum achievable entropy, log2(n).
  double max_entropy_bits = 0.0;
};

/// Exact anonymity trajectory via distribution evolution.
/// Requires a connected graph (throws std::invalid_argument otherwise).
AnonymityCurve measure_anonymity(const Graph& g, VertexId sender,
                                 std::uint32_t max_hops, bool lazy = false);

/// First hop count at which entropy reaches `fraction` of log2(n), averaged
/// over `num_senders` sampled senders; UINT32_MAX entries mean never within
/// max_hops.
struct AnonymityTime {
  std::vector<VertexId> senders;
  std::vector<std::uint32_t> hops_to_target;
  /// Mean over senders that reached the target (0 when none did).
  double mean_hops = 0.0;
  std::uint32_t reached = 0;
};

AnonymityTime anonymity_time(const Graph& g, double fraction,
                             std::uint32_t num_senders,
                             std::uint32_t max_hops, std::uint64_t seed);

}  // namespace sntrust

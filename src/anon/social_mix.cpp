#include "anon/social_mix.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/components.hpp"
#include "markov/transition.hpp"
#include "util/rng.hpp"

namespace sntrust {

double shannon_entropy_bits(const Distribution& d) {
  double entropy = 0.0;
  for (const double p : d)
    if (p > 0.0) entropy -= p * std::log2(p);
  return entropy;
}

AnonymityCurve measure_anonymity(const Graph& g, VertexId sender,
                                 std::uint32_t max_hops, bool lazy) {
  if (sender >= g.num_vertices())
    throw std::out_of_range("measure_anonymity: sender out of range");
  if (g.num_edges() == 0 || !is_connected(g))
    throw std::invalid_argument(
        "measure_anonymity: graph must be connected with edges");

  AnonymityCurve curve;
  curve.sender = sender;
  curve.max_entropy_bits = std::log2(static_cast<double>(g.num_vertices()));

  const Distribution pi = stationary_distribution(g);
  Distribution p = dirac(g.num_vertices(), sender);
  Distribution buffer(p.size());
  curve.entropy_bits.push_back(shannon_entropy_bits(p));
  curve.leak_tvd.push_back(total_variation(p, pi));
  for (std::uint32_t t = 1; t <= max_hops; ++t) {
    if (lazy) step_distribution_lazy(g, p, buffer);
    else step_distribution(g, p, buffer);
    p.swap(buffer);
    curve.entropy_bits.push_back(shannon_entropy_bits(p));
    curve.leak_tvd.push_back(total_variation(p, pi));
  }
  return curve;
}

AnonymityTime anonymity_time(const Graph& g, double fraction,
                             std::uint32_t num_senders,
                             std::uint32_t max_hops, std::uint64_t seed) {
  if (fraction <= 0.0 || fraction > 1.0)
    throw std::invalid_argument("anonymity_time: fraction must be in (0,1]");
  if (num_senders == 0)
    throw std::invalid_argument("anonymity_time: need senders");
  if (g.num_edges() == 0 || !is_connected(g))
    throw std::invalid_argument(
        "anonymity_time: graph must be connected with edges");

  Rng rng{seed};
  AnonymityTime result;
  const std::uint32_t k =
      std::min<std::uint32_t>(num_senders, g.num_vertices());
  result.senders = rng.sample_without_replacement(g.num_vertices(), k);
  const double target =
      fraction * std::log2(static_cast<double>(g.num_vertices()));

  double total = 0.0;
  for (const VertexId sender : result.senders) {
    // Evolve with the lazy chain so entropy growth is monotone on
    // near-bipartite graphs too.
    const AnonymityCurve curve =
        measure_anonymity(g, sender, max_hops, /*lazy=*/true);
    std::uint32_t hops = 0xFFFFFFFFu;
    for (std::uint32_t t = 0; t < curve.entropy_bits.size(); ++t) {
      if (curve.entropy_bits[t] >= target) {
        hops = t;
        break;
      }
    }
    result.hops_to_target.push_back(hops);
    if (hops != 0xFFFFFFFFu) {
      total += hops;
      ++result.reached;
    }
  }
  result.mean_hops = result.reached == 0 ? 0.0 : total / result.reached;
  return result;
}

}  // namespace sntrust

// Deterministic fault injection for testing recovery paths.
//
// `SNTRUST_FAULT=<site>:<seed>:<prob>[:<action>]` arms one fault plan for
// the process; instrumented points call `fault_point(site, index)` and fire
// when a splitmix64 hash of (seed, site, index) maps below `prob` — a pure
// function of the spec and the call's identity, so a given plan fires at the
// same sites in every run. Actions:
//
//   throw    (default) throw InjectedFault — exercises per-source failure
//            recording, the failure-fraction threshold, and worker draining
//   sigterm  raise SIGTERM once (first firing only) — exercises the
//            cooperative signal path: drain, checkpoint, partial run report
//   sleepN   block the calling worker for N milliseconds (default 250, e.g.
//            "sleep400") — a forced stall, for exercising the watchdog
//
// Instrumented sites: `io` (edge-list lines, binary loads), `markov` (mixing
// sources), `expansion` (expansion sources), `sybil` (GateKeeper
// distributers), `cores` (core-profile levels), `pool` (thread-pool chunks),
// `serve.artifact` (serving-layer artifact recomputation — drives the
// circuit breaker / stale-serving path), `serve.queue` (serving drain-loop
// batches — `sleepN` parks the drain worker, `throw` sheds the batch).
// Site `all` matches every instrumented point. Unarmed cost is one relaxed
// atomic load per call.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace sntrust::exec {

/// Thrown by an armed fault point; recovery code treats it like any other
/// source failure.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct FaultPlan {
  enum class Action { kThrow, kSigterm, kSleep };

  std::string site;  ///< instrumented site name, or "all"
  std::uint64_t seed = 0;
  double prob = 0.0;  ///< firing probability per fault point, in [0, 1]
  Action action = Action::kThrow;
  std::uint64_t sleep_ms = 250;  ///< stall duration for Action::kSleep

  bool armed() const { return !site.empty() && prob > 0.0; }
};

/// Parses "<site>:<seed>:<prob>[:<action>]"; nullopt on malformed specs.
std::optional<FaultPlan> parse_fault_plan(const std::string& spec);

/// Installs/replaces the process fault plan (tests; SNTRUST_FAULT is read
/// once on the first fault_point call unless a plan was set explicitly).
void set_fault_plan(const FaultPlan& plan);
void clear_fault_plan();
FaultPlan fault_plan();

/// Fires the armed plan for (site, index): deterministic Bernoulli(prob)
/// trial keyed by hash(seed, site, index). No-op when unarmed or the site
/// does not match.
void fault_point(const char* site, std::uint64_t index);

}  // namespace sntrust::exec

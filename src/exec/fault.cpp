#include "exec/fault.hpp"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <mutex>
#include <thread>

#include "exec/cancel.hpp"
#include "obs/metrics.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace sntrust::exec {

namespace {

std::atomic<bool> g_armed{false};
std::atomic<bool> g_sigterm_fired{false};
std::mutex g_plan_mutex;
FaultPlan g_plan;
std::once_flag g_env_once;

void load_env_plan() {
  const std::string spec = env_string("SNTRUST_FAULT", "");
  if (spec.empty()) return;
  const std::optional<FaultPlan> plan = parse_fault_plan(spec);
  if (plan) {
    set_fault_plan(*plan);
  } else {
    std::fputs(("SNTRUST_FAULT: ignoring malformed spec '" + spec + "'\n")
                   .c_str(),
               stderr);
  }
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::optional<FaultPlan> parse_fault_plan(const std::string& spec) {
  // <site>:<seed>:<prob>[:<action>]
  const std::size_t first = spec.find(':');
  if (first == std::string::npos || first == 0) return std::nullopt;
  const std::size_t second = spec.find(':', first + 1);
  if (second == std::string::npos) return std::nullopt;
  const std::size_t third = spec.find(':', second + 1);

  FaultPlan plan;
  plan.site = spec.substr(0, first);
  const std::string seed_text = spec.substr(first + 1, second - first - 1);
  const std::string prob_text =
      third == std::string::npos ? spec.substr(second + 1)
                                 : spec.substr(second + 1, third - second - 1);
  try {
    std::size_t used = 0;
    plan.seed = std::stoull(seed_text, &used);
    if (used != seed_text.size()) return std::nullopt;
    plan.prob = std::stod(prob_text, &used);
    if (used != prob_text.size()) return std::nullopt;
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (!(plan.prob >= 0.0 && plan.prob <= 1.0)) return std::nullopt;
  if (third != std::string::npos) {
    const std::string action = spec.substr(third + 1);
    if (action == "throw") plan.action = FaultPlan::Action::kThrow;
    else if (action == "sigterm") plan.action = FaultPlan::Action::kSigterm;
    else if (action.rfind("sleep", 0) == 0) {
      plan.action = FaultPlan::Action::kSleep;
      const std::string ms_text = action.substr(5);
      if (!ms_text.empty()) {
        try {
          std::size_t used = 0;
          plan.sleep_ms = std::stoull(ms_text, &used);
          if (used != ms_text.size()) return std::nullopt;
        } catch (const std::exception&) {
          return std::nullopt;
        }
      }
    } else return std::nullopt;
  }
  return plan;
}

void set_fault_plan(const FaultPlan& plan) {
  {
    std::lock_guard<std::mutex> lock(g_plan_mutex);
    g_plan = plan;
  }
  g_sigterm_fired.store(false, std::memory_order_relaxed);
  g_armed.store(plan.armed(), std::memory_order_release);
}

void clear_fault_plan() { set_fault_plan(FaultPlan{}); }

FaultPlan fault_plan() {
  std::call_once(g_env_once, load_env_plan);
  std::lock_guard<std::mutex> lock(g_plan_mutex);
  return g_plan;
}

void fault_point(const char* site, std::uint64_t index) {
  std::call_once(g_env_once, load_env_plan);
  if (!g_armed.load(std::memory_order_acquire)) return;
  FaultPlan plan;
  {
    std::lock_guard<std::mutex> lock(g_plan_mutex);
    plan = g_plan;
  }
  if (!plan.armed()) return;
  if (plan.site != "all" && plan.site != site) return;
  // Deterministic trial: the same (plan, site, index) fires identically in
  // every run, independent of threading or call order.
  const std::uint64_t mixed =
      stream_seed(plan.seed ^ fnv1a(plan.site == "all" ? site : plan.site),
                  index);
  const double roll =
      static_cast<double>(mixed >> 11) * 0x1.0p-53;  // uniform [0, 1)
  if (roll >= plan.prob) return;
  obs::count("exec.faults_fired", 1);
  if (plan.action == FaultPlan::Action::kSleep) {
    // A forced stall, not a failure: the worker simply stops making
    // progress for a while, which is what the stall watchdog detects.
    std::this_thread::sleep_for(std::chrono::milliseconds(plan.sleep_ms));
    return;
  }
  if (plan.action == FaultPlan::Action::kSigterm) {
    // Fire once: the cooperative handler restores SIG_DFL after the first
    // delivery, so a second raise would hard-kill the process.
    if (!g_sigterm_fired.exchange(true, std::memory_order_relaxed)) {
      install_signal_handlers();
      std::raise(SIGTERM);
    }
    return;
  }
  throw InjectedFault(std::string("injected fault at ") + site + ":" +
                      std::to_string(index));
}

}  // namespace sntrust::exec

// Crash-safe checkpoint/resume for the per-source sweeps.
//
// One process-wide store maps sweep keys ("<kind>:<fingerprint>") to the
// JSON payloads of their completed sources. Arm it with
// `SNTRUST_CHECKPOINT=<path>` (or `sntrust_cli --checkpoint/--resume`): every
// checkpointed sweep then (a) restores completed sources from a matching
// entry before computing anything, and (b) persists its completed payloads —
// periodically, on cancellation, and on completion. Writes are atomic
// (temp file + fsync + rename), so a crash can lose at most the sources
// completed since the last flush, never the file.
//
// File schema (version 1):
//   { "schema_version": 1,
//     "sweeps": { "<kind>:<fingerprint-hex>":
//                   { "fingerprint": "<hex16>", "items": N,
//                     "completed": { "<index>": <payload>, ... } }, ... },
//     "crc32": "<hex8 of the dumped sweeps object>" }
//
// A checkpoint that fails to parse, carries an unknown schema version, or
// whose CRC does not match its payload is ignored (the run starts fresh and
// overwrites it) — never a crash. Per-sweep entries are only restored when
// both the fingerprint and the item count match the requesting sweep, so a
// checkpoint from a different graph/config silently falls through to a
// fresh run. Restored payloads are re-dumped from the parsed document, so a
// resumed aggregate consumes byte-identical JSON to the run that wrote it.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace sntrust::exec {

inline constexpr std::int64_t kCheckpointSchemaVersion = 1;

class CheckpointStore {
 public:
  /// Process-wide store; reads SNTRUST_CHECKPOINT on first use.
  static CheckpointStore& instance();

  /// Sets (or, with "", disarms) the checkpoint path. Changing the path
  /// drops in-memory state; the file at the new path is loaded lazily on
  /// the next restore.
  void set_path(std::string path);
  std::string path() const;
  bool armed() const;

  /// Copies the stored payloads of a matching sweep into `payloads`
  /// (pre-sized to `items`; untouched slots stay empty). Returns the number
  /// of restored sources.
  std::uint64_t restore(const std::string& kind, std::uint64_t fingerprint,
                        std::uint64_t items,
                        std::vector<std::string>& payloads);

  /// Replaces the sweep's entry with the completed payloads (empty slot =
  /// not completed) and atomically rewrites the checkpoint file.
  /// Payloads must be valid JSON documents. No-op when disarmed.
  void save(const std::string& kind, std::uint64_t fingerprint,
            std::uint64_t items, const std::vector<std::string>& payloads);

  /// Drops all in-memory state and re-arms from SNTRUST_CHECKPOINT (tests).
  void reset_for_tests();

 private:
  CheckpointStore();

  struct Entry {
    std::uint64_t fingerprint = 0;
    std::uint64_t items = 0;
    std::map<std::uint64_t, std::string> completed;  ///< index -> payload
  };

  void load_locked();
  void write_locked() const;

  mutable std::mutex mutex_;
  std::string path_;
  bool loaded_ = false;
  std::map<std::string, Entry> sweeps_;
};

/// Order-insensitive fold of configuration words into a sweep fingerprint
/// (splitmix64 chain; order *is* significant).
std::uint64_t fingerprint(std::initializer_list<std::uint64_t> words);

/// CRC-32 (IEEE, reflected) of `data`; exposed for tests.
std::uint32_t crc32(const std::string& data);

}  // namespace sntrust::exec

#include "exec/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>

#include "exec/checkpoint.hpp"
#include "exec/fault.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/watchdog.hpp"
#include "parallel/parallel.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace sntrust::exec {

namespace {

std::atomic<double> g_max_failed_override{-1.0};

double resolve_max_failed_frac(const SweepOptions& options) {
  if (options.max_failed_frac >= 0.0) return options.max_failed_frac;
  const double override_frac =
      g_max_failed_override.load(std::memory_order_relaxed);
  if (override_frac >= 0.0) return override_frac;
  return env_double("SNTRUST_MAX_FAILED_FRAC", 0.0);
}

std::uint64_t resolve_flush_every(const SweepOptions& options,
                                  std::size_t items) {
  if (options.checkpoint_every > 0) return options.checkpoint_every;
  const std::int64_t env = env_int("SNTRUST_CHECKPOINT_EVERY", 0);
  if (env > 0) return static_cast<std::uint64_t>(env);
  return std::max<std::uint64_t>(1, items / 8);
}

}  // namespace

void set_max_failed_frac(double frac) {
  g_max_failed_override.store(frac, std::memory_order_relaxed);
}

std::int64_t source_budget_ms() {
  return std::max<std::int64_t>(0, env_int("SNTRUST_SOURCE_BUDGET_MS", 0));
}

std::uint64_t graph_fingerprint(const Graph& graph) {
  // Same splitmix64 chain as ever, now computed (and cached) by the graph
  // itself: snapshot loads seed the cache from their verified header, so a
  // mapped graph keys checkpoints identically to a parsed one without the
  // O(n + m) rescan.
  return graph.fingerprint();
}

SweepResult run_sweep(std::size_t items, const SweepOptions& options,
                      const std::function<std::string(
                          std::size_t, std::uint32_t)>& compute) {
  SweepResult result;
  result.payloads.assign(items, {});

  // The watchdog only watches while a sweep (or pool region) is live, and
  // every completed source below is a heartbeat.
  obs::WatchdogActivity watchdog_activity;
  obs::QuantileHistogram& source_latency = obs::metrics_quantile(
      options.kind.empty() ? "sweep.source_ms"
                           : "sweep." + options.kind + ".source_ms");
  obs::WindowedQuantileHistogram& source_latency_window =
      obs::metrics_windowed(options.kind.empty()
                                ? "sweep.source_ms"
                                : "sweep." + options.kind + ".source_ms");

  CheckpointStore& store = CheckpointStore::instance();
  const bool checkpointing = store.armed() && !options.kind.empty();
  if (checkpointing)
    result.restored = store.restore(options.kind, options.fingerprint, items,
                                    result.payloads);

  // Completion flags: release on payload write, acquire before a concurrent
  // flush reads the payload. Restored slots are done up front.
  std::vector<std::atomic<std::uint8_t>> done(items);
  for (std::size_t i = 0; i < items; ++i)
    if (!result.payloads[i].empty())
      done[i].store(1, std::memory_order_relaxed);

  std::mutex failures_mutex;
  std::vector<SourceFailure> failures;
  std::atomic<bool> cancel_seen{false};
  std::atomic<std::uint64_t> computed{0};
  const std::uint64_t flush_every = resolve_flush_every(options, items);
  const std::int64_t budget_ms = source_budget_ms();

  // Snapshot only slots whose done flag is visible; reading a payload that
  // another worker is still assigning would be a race.
  auto flush = [&] {
    std::vector<std::string> snapshot(items);
    for (std::size_t i = 0; i < items; ++i)
      if (done[i].load(std::memory_order_acquire))
        snapshot[i] = result.payloads[i];
    store.save(options.kind, options.fingerprint, items, snapshot);
  };

  auto body = [&](std::size_t i, std::uint32_t worker) {
    if (done[i].load(std::memory_order_relaxed)) return;  // restored
    if (cancel_seen.load(std::memory_order_relaxed)) return;  // draining
    if (options.token.cancelled()) {
      cancel_seen.store(true, std::memory_order_relaxed);
      return;
    }
    const auto start = std::chrono::steady_clock::now();
    try {
      if (options.fault_site != nullptr) fault_point(options.fault_site, i);
      std::string payload = compute(i, worker);
      if (budget_ms > 0) {
        const std::int64_t elapsed_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (elapsed_ms > budget_ms)
          throw std::runtime_error(
              "source budget exceeded (" + std::to_string(elapsed_ms) +
              "ms > " + std::to_string(budget_ms) + "ms)");
      }
      result.payloads[i] = std::move(payload);
      done[i].store(1, std::memory_order_release);
      const double elapsed_ms =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count() /
          1e6;
      source_latency.record(elapsed_ms);
      source_latency_window.record(elapsed_ms);
      obs::watchdog_heartbeat();
      const std::uint64_t n =
          computed.fetch_add(1, std::memory_order_relaxed) + 1;
      if (checkpointing && n % flush_every == 0) flush();
    } catch (const CancelledError&) {
      // A nested parallel region observed the cancellation first; this
      // source is unfinished, not failed.
      cancel_seen.store(true, std::memory_order_relaxed);
    } catch (const std::exception& error) {
      std::lock_guard<std::mutex> lock(failures_mutex);
      failures.push_back(SourceFailure{i, options.kind, error.what()});
    }
  };

  try {
    parallel::parallel_for(0, items, body);
  } catch (const CancelledError&) {
    // The pool's own chunk-boundary check fired before any source of some
    // chunk ran; everything completed so far is still valid.
    cancel_seen.store(true, std::memory_order_relaxed);
  } catch (...) {
    if (checkpointing) flush();
    throw;
  }

  // Single-threaded from here on: payloads and flags are stable.
  std::sort(failures.begin(), failures.end(),
            [](const SourceFailure& a, const SourceFailure& b) {
              return a.index < b.index;
            });
  result.failures = failures;
  result.computed = computed.load(std::memory_order_relaxed);

  obs::RunReporter& reporter = obs::RunReporter::instance();
  for (const SourceFailure& failure : failures)
    reporter.record_failure(failure.phase, failure.index, failure.reason);

  if (checkpointing)
    store.save(options.kind, options.fingerprint, items, result.payloads);

  obs::count("exec.sources_completed", result.computed);
  obs::count("exec.sources_restored", result.restored);
  obs::count("exec.source_failures", failures.size());

  const bool cancelled =
      cancel_seen.load(std::memory_order_relaxed) || options.token.cancelled();
  if (cancelled) {
    obs::count("exec.sweeps_cancelled", 1);
    std::string reason = options.token.reason();
    if (reason.empty()) reason = "cancelled";
    reporter.set_interrupted(reason);
    const std::uint64_t finished = result.restored + result.computed;
    throw CancelledError("sweep '" + options.kind + "' cancelled after " +
                         std::to_string(finished) + "/" +
                         std::to_string(items) + " sources (" + reason + ")");
  }

  if (items > 0 && !failures.empty()) {
    const double failed_frac =
        static_cast<double>(failures.size()) / static_cast<double>(items);
    const double max_frac = resolve_max_failed_frac(options);
    if (failed_frac > max_frac)
      throw PartialFailureError(
          "sweep '" + options.kind + "': " + std::to_string(failures.size()) +
          " of " + std::to_string(items) + " sources failed (first: " +
          failures.front().reason + "), exceeding max failed fraction " +
          std::to_string(max_frac));
  }

  return result;
}

}  // namespace sntrust::exec

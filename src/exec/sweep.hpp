// Fault-tolerant per-source sweep harness.
//
// `run_sweep` wraps the repo's standard pattern — parallel_for over N
// independent sources, one JSON-serializable result each — with the three
// robustness behaviours every measurement sweep needs:
//
//   * cooperative cancellation: the cancel token (signals, deadlines,
//     CancelSource) is polled before every source; on cancellation in-flight
//     sources drain, completed payloads are checkpointed, and
//     `CancelledError` propagates to the caller (CLI exit code 75),
//   * graceful degradation: a source that throws is recorded as a
//     `SourceFailure` (index, phase, reason) in the run report and skipped;
//     when more than `max_failed_frac` of the sources fail the sweep aborts
//     with `PartialFailureError` instead of returning a silently thin
//     aggregate (the default 0.0 keeps today's fail-fast semantics —
//     degradation is opt-in via SNTRUST_MAX_FAILED_FRAC),
//   * checkpoint/resume: with the CheckpointStore armed, completed payloads
//     are persisted periodically and restored on the next run, skipping
//     their compute entirely.
//
// Bitwise-identical resume falls out of the payload discipline: `compute`
// returns each source's result as a dumped util/json document (doubles
// serialize shortest-round-trip, so parse(dump(x)) == x bitwise), the
// caller decodes *all* payloads — fresh and restored alike — through the
// same JSON path in ascending index order, and per-source work is seeded by
// index. A resumed run therefore aggregates exactly the bytes an
// uninterrupted run would have, at any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/cancel.hpp"

namespace sntrust::exec {

/// One degraded/skipped source of a sweep.
struct SourceFailure {
  std::uint64_t index = 0;
  std::string phase;   ///< sweep kind, e.g. "measure_mixing"
  std::string reason;  ///< exception message
};

/// Thrown when more than `max_failed_frac` of a sweep's sources failed.
class PartialFailureError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct SweepOptions {
  /// Stable sweep name; keys the checkpoint entry and labels failures.
  std::string kind;
  /// Configuration fingerprint (see exec::fingerprint); a checkpoint entry
  /// is only restored when kind, fingerprint, and item count all match.
  std::uint64_t fingerprint = 0;
  /// Fault-injection site checked before each source; nullptr = none.
  const char* fault_site = nullptr;
  /// Cancellation token polled at source boundaries.
  CancelToken token;
  /// Maximum tolerated failed fraction before the sweep aborts with
  /// PartialFailureError. Negative = resolve from the process override
  /// (set_max_failed_frac / --max-failed-frac), then SNTRUST_MAX_FAILED_FRAC,
  /// then 0.0 (strict).
  double max_failed_frac = -1.0;
  /// Checkpoint flush cadence in completed sources; 0 = resolve from
  /// SNTRUST_CHECKPOINT_EVERY, default max(1, items / 8).
  std::uint64_t checkpoint_every = 0;
};

struct SweepResult {
  /// Per-source payloads in index order; empty string = source failed (or
  /// the sweep was cancelled before reaching it — but then run_sweep threw).
  std::vector<std::string> payloads;
  /// Failed sources, ascending by index.
  std::vector<SourceFailure> failures;
  std::uint64_t restored = 0;  ///< sources skipped via checkpoint
  std::uint64_t computed = 0;  ///< sources computed this run
};

/// Runs compute(index, worker) for every source in [0, items), parallelized
/// over the pool with the determinism rules of src/parallel/. `compute`
/// returns the source's dumped JSON payload. Throws CancelledError (after
/// draining + checkpointing) on cancellation and PartialFailureError when
/// too many sources failed; InjectedFault/std::exception from compute are
/// per-source failures, not sweep failures.
SweepResult run_sweep(std::size_t items, const SweepOptions& options,
                      const std::function<std::string(std::size_t,
                                                      std::uint32_t)>& compute);

/// Process-wide override for SweepOptions::max_failed_frac resolution
/// (the CLI's --max-failed-frac). Negative clears the override.
void set_max_failed_frac(double frac);

/// Per-source wall-clock budget in ms from SNTRUST_SOURCE_BUDGET_MS; 0 =
/// unlimited. A source exceeding it is recorded as a failure ("source
/// budget exceeded"). Opt-in and *non-deterministic by nature* — budgets
/// depend on machine speed, so resumable/comparable runs should not set it.
std::int64_t source_budget_ms();

}  // namespace sntrust::exec

namespace sntrust {
class Graph;
namespace exec {
/// Folds the structural identity of a graph (sizes + adjacency contents)
/// into a fingerprint word, so checkpoints never resume across graphs.
std::uint64_t graph_fingerprint(const Graph& graph);
}  // namespace exec
}  // namespace sntrust

#include "exec/checkpoint.hpp"

#include <unistd.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/env.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace sntrust::exec {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string hex32(std::uint32_t v) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", static_cast<unsigned>(v));
  return buf;
}

std::string sweep_key(const std::string& kind, std::uint64_t fingerprint) {
  return kind + ":" + hex64(fingerprint);
}

void warn(const std::string& message) {
  std::fputs(("SNTRUST_CHECKPOINT: " + message + "\n").c_str(), stderr);
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit)
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(const std::string& data) {
  const auto& table = crc_table();
  std::uint32_t crc = 0xffffffffu;
  for (const unsigned char byte : data)
    crc = table[(crc ^ byte) & 0xffu] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

std::uint64_t fingerprint(std::initializer_list<std::uint64_t> words) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const std::uint64_t w : words) h = stream_seed(h, w);
  return h;
}

CheckpointStore& CheckpointStore::instance() {
  static CheckpointStore store;
  return store;
}

CheckpointStore::CheckpointStore()
    : path_(env_string("SNTRUST_CHECKPOINT", "")) {}

void CheckpointStore::set_path(std::string path) {
  std::lock_guard<std::mutex> lock(mutex_);
  path_ = std::move(path);
  loaded_ = false;
  sweeps_.clear();
}

std::string CheckpointStore::path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return path_;
}

bool CheckpointStore::armed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !path_.empty();
}

void CheckpointStore::reset_for_tests() {
  std::lock_guard<std::mutex> lock(mutex_);
  path_ = env_string("SNTRUST_CHECKPOINT", "");
  loaded_ = false;
  sweeps_.clear();
}

void CheckpointStore::load_locked() {
  loaded_ = true;
  sweeps_.clear();
  std::ifstream in(path_, std::ios::binary);
  if (!in) return;  // no checkpoint yet: fresh run
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  if (text.empty()) return;

  json::Value doc;
  try {
    doc = json::Value::parse(text);
  } catch (const std::exception& e) {
    warn("ignoring unparseable checkpoint '" + path_ + "' (" + e.what() +
         "); starting fresh");
    return;
  }
  const json::Value* version = doc.find("schema_version");
  if (version == nullptr || !version->is_number() ||
      version->as_int() != kCheckpointSchemaVersion) {
    warn("ignoring checkpoint '" + path_ +
         "' with unknown schema version; starting fresh");
    return;
  }
  const json::Value* sweeps = doc.find("sweeps");
  const json::Value* crc = doc.find("crc32");
  if (sweeps == nullptr || !sweeps->is_object() || crc == nullptr ||
      !crc->is_string()) {
    warn("ignoring malformed checkpoint '" + path_ + "'; starting fresh");
    return;
  }
  if (hex32(crc32(sweeps->dump())) != crc->as_string()) {
    warn("ignoring checkpoint '" + path_ +
         "' with CRC mismatch (truncated or corrupt); starting fresh");
    return;
  }

  for (const auto& [key, entry_value] : sweeps->as_object()) {
    if (!entry_value.is_object()) continue;
    const json::Value* fp = entry_value.find("fingerprint");
    const json::Value* items = entry_value.find("items");
    const json::Value* completed = entry_value.find("completed");
    if (fp == nullptr || !fp->is_string() || items == nullptr ||
        !items->is_number() || items->as_int() < 0 || completed == nullptr ||
        !completed->is_object())
      continue;
    Entry entry;
    try {
      std::size_t used = 0;
      entry.fingerprint = std::stoull(fp->as_string(), &used, 16);
      if (used != fp->as_string().size()) continue;
    } catch (const std::exception&) {
      continue;
    }
    entry.items = static_cast<std::uint64_t>(items->as_int());
    for (const auto& [index_text, payload] : completed->as_object()) {
      std::uint64_t index = 0;
      try {
        std::size_t used = 0;
        index = std::stoull(index_text, &used);
        if (used != index_text.size()) continue;
      } catch (const std::exception&) {
        continue;
      }
      if (index >= entry.items) continue;
      // Re-dump from the parsed document so resumed consumers see exactly
      // the bytes a fresh compute would have produced (util/json round-trips
      // doubles via shortest-form to_chars).
      entry.completed[index] = payload.dump();
    }
    sweeps_[key] = std::move(entry);
  }
}

void CheckpointStore::write_locked() const {
  json::Object sweeps;
  for (const auto& [key, entry] : sweeps_) {
    json::Object completed;
    for (const auto& [index, payload] : entry.completed)
      completed.emplace_back(std::to_string(index),
                             json::Value::parse(payload));
    json::Object entry_members;
    entry_members.emplace_back("fingerprint",
                               json::Value::string(hex64(entry.fingerprint)));
    entry_members.emplace_back(
        "items",
        json::Value::integer(static_cast<std::int64_t>(entry.items)));
    entry_members.emplace_back("completed",
                               json::Value::object(std::move(completed)));
    sweeps.emplace_back(key, json::Value::object(std::move(entry_members)));
  }
  json::Value sweeps_value = json::Value::object(std::move(sweeps));
  const std::string sweeps_text = sweeps_value.dump();

  json::Object doc;
  doc.emplace_back("schema_version",
                   json::Value::integer(kCheckpointSchemaVersion));
  doc.emplace_back("sweeps", std::move(sweeps_value));
  doc.emplace_back("crc32", json::Value::string(hex32(crc32(sweeps_text))));
  const std::string text = json::Value::object(std::move(doc)).dump();

  // Atomic replace: write a sibling temp file, flush it all the way to disk,
  // then rename over the target. A crash at any point leaves either the old
  // checkpoint or the new one, never a torn file.
  const std::string tmp = path_ + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    warn("cannot open '" + tmp + "' for writing; checkpoint skipped");
    return;
  }
  bool ok = std::fwrite(text.data(), 1, text.size(), out) == text.size() &&
            std::fwrite("\n", 1, 1, out) == 1;
  ok = std::fflush(out) == 0 && ok;
  ok = ::fsync(fileno(out)) == 0 && ok;
  ok = std::fclose(out) == 0 && ok;
  if (!ok || std::rename(tmp.c_str(), path_.c_str()) != 0) {
    warn("failed to write checkpoint '" + path_ + "'");
    std::remove(tmp.c_str());
  }
}

std::uint64_t CheckpointStore::restore(const std::string& kind,
                                       std::uint64_t fingerprint,
                                       std::uint64_t items,
                                       std::vector<std::string>& payloads) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (path_.empty()) return 0;
  if (!loaded_) load_locked();
  const auto it = sweeps_.find(sweep_key(kind, fingerprint));
  if (it == sweeps_.end()) return 0;
  const Entry& entry = it->second;
  if (entry.fingerprint != fingerprint || entry.items != items) return 0;
  std::uint64_t restored = 0;
  for (const auto& [index, payload] : entry.completed) {
    if (index >= payloads.size()) continue;
    payloads[index] = payload;
    ++restored;
  }
  return restored;
}

void CheckpointStore::save(const std::string& kind, std::uint64_t fingerprint,
                           std::uint64_t items,
                           const std::vector<std::string>& payloads) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (path_.empty()) return;
  if (!loaded_) load_locked();  // keep unrelated sweeps already on disk
  Entry entry;
  entry.fingerprint = fingerprint;
  entry.items = items;
  for (std::size_t i = 0; i < payloads.size(); ++i)
    if (!payloads[i].empty()) entry.completed[i] = payloads[i];
  sweeps_[sweep_key(kind, fingerprint)] = std::move(entry);
  write_locked();
}

}  // namespace sntrust::exec

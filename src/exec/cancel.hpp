// Cooperative cancellation for the measurement pipeline.
//
// A `CancelToken` answers one question — "should this work stop now?" — from
// three sources, checked cheaply enough to poll at chunk and source
// boundaries: the process-wide cancellation state (SIGINT/SIGTERM via
// `install_signal_handlers`, or `request_process_cancel`), the process
// deadline (`SNTRUST_DEADLINE_MS` / `set_process_deadline` /
// `sntrust_cli --deadline`), and an optional per-token `CancelSource` flag or
// `Deadline` for scoped work. Cancellation is *cooperative*: nothing is
// interrupted mid-computation; sweeps drain the sources already in flight,
// persist completed work (see exec/sweep.hpp), and then throw
// `CancelledError`, which callers surface as a partial/degraded run (exit
// code 75 in the CLI) while the run report still gets written at exit.
//
// Signal handling installs once per binary entry point (`sntrust_cli`,
// `bench::guarded_main`); the first SIGINT/SIGTERM flips the cancellation
// flag and restores the default disposition, so a second signal force-kills
// a stuck process the classic way.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>

namespace sntrust::exec {

/// Thrown when work stops because cancellation was requested (signal,
/// deadline, or CancelSource). Distinct from failure: completed results are
/// already persisted when this escapes a checkpointed sweep.
class CancelledError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A point on the steady clock after which work should stop. Default
/// constructed deadlines are unarmed and never expire.
class Deadline {
 public:
  Deadline() = default;
  static Deadline after_ms(std::int64_t ms);
  static Deadline at(std::chrono::steady_clock::time_point when);

  bool armed() const { return armed_; }
  bool expired() const {
    return armed_ && std::chrono::steady_clock::now() >= when_;
  }
  std::chrono::steady_clock::time_point when() const { return when_; }
  /// Milliseconds until expiry (<= 0 when expired); a large sentinel when
  /// unarmed.
  std::int64_t remaining_ms() const;

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point when_{};
};

class CancelSource;

/// Cheap copyable view of the cancellation state. The default-constructed
/// token follows the *process* state (signals + process deadline) only;
/// tokens from a `CancelSource` or `with_deadline` additionally observe
/// their own flag/deadline.
class CancelToken {
 public:
  CancelToken() = default;

  bool cancelled() const;
  /// Human-readable cause ("SIGTERM", "deadline exceeded", ...); empty while
  /// not cancelled.
  std::string reason() const;
  /// Throws CancelledError(reason()) when cancelled.
  void check() const;
  /// A token that also expires at `deadline`.
  CancelToken with_deadline(Deadline deadline) const;

 private:
  friend class CancelSource;
  std::shared_ptr<const std::atomic<bool>> flag_;  ///< may be null
  Deadline deadline_;
};

/// Owner side of a manual cancellation flag (tests, embedders).
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}
  void cancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }
  CancelToken token() const;

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Registers cooperative SIGINT/SIGTERM handlers (idempotent, re-installable)
/// and pins the SNTRUST_DEADLINE_MS base to "now" if not already pinned.
void install_signal_handlers();

/// True when a signal arrived, `request_process_cancel` was called, or the
/// process deadline expired. One relaxed atomic load on the common path.
bool process_cancel_requested();
/// Cause of the process-wide cancellation; empty while not cancelled.
std::string process_cancel_reason();

/// Programmatic process-wide cancellation (tests, embedders, the fault
/// injector's sigterm action fallback).
void request_process_cancel(const std::string& reason);
/// Clears signal/programmatic cancellation state (tests). Does not touch the
/// process deadline; disarm that with `set_process_deadline(Deadline{})`.
void reset_process_cancel();

/// Process-wide deadline every parallel region and sweep observes. Reads
/// SNTRUST_DEADLINE_MS once (base = first query), overridable at runtime.
Deadline process_deadline();
void set_process_deadline(Deadline deadline);

/// Token following the process-wide state; the default for sweeps.
CancelToken process_token();

}  // namespace sntrust::exec

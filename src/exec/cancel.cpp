#include "exec/cancel.hpp"

#include <csignal>
#include <limits>
#include <mutex>

#include "util/env.hpp"

namespace sntrust::exec {

namespace {

// Signal state is written from the handler, so only lock-free atomics and
// sig_atomic_t are touched there; the reason string for programmatic
// cancellation lives behind a mutex touched only from normal context.
std::atomic<int> g_signal{0};
std::atomic<bool> g_programmatic{false};
std::atomic<std::int64_t> g_deadline_ns{0};  ///< steady since-epoch; 0 = off

std::mutex& reason_mutex() {
  static std::mutex m;
  return m;
}

std::string& programmatic_reason() {
  static std::string reason;
  return reason;
}

extern "C" void handle_cancel_signal(int sig) {
  g_signal.store(sig, std::memory_order_relaxed);
  // Restore the default disposition so a second signal force-kills a run
  // that is stuck somewhere non-cooperative.
  std::signal(sig, SIG_DFL);
}

std::string signal_name(int sig) {
  switch (sig) {
    case SIGINT: return "SIGINT";
    case SIGTERM: return "SIGTERM";
    default: return "signal " + std::to_string(sig);
  }
}

}  // namespace

Deadline Deadline::after_ms(std::int64_t ms) {
  return at(std::chrono::steady_clock::now() + std::chrono::milliseconds(ms));
}

Deadline Deadline::at(std::chrono::steady_clock::time_point when) {
  Deadline d;
  d.armed_ = true;
  d.when_ = when;
  return d;
}

std::int64_t Deadline::remaining_ms() const {
  if (!armed_) return std::numeric_limits<std::int64_t>::max();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             when_ - std::chrono::steady_clock::now())
      .count();
}

bool CancelToken::cancelled() const {
  if (process_cancel_requested()) return true;
  if (flag_ && flag_->load(std::memory_order_relaxed)) return true;
  return deadline_.expired();
}

std::string CancelToken::reason() const {
  const std::string process = process_cancel_reason();
  if (!process.empty()) return process;
  if (flag_ && flag_->load(std::memory_order_relaxed)) return "cancelled";
  if (deadline_.expired()) return "deadline exceeded";
  return {};
}

void CancelToken::check() const {
  if (cancelled()) throw CancelledError(reason());
}

CancelToken CancelToken::with_deadline(Deadline deadline) const {
  CancelToken token = *this;
  // Keep the earlier of the two deadlines.
  if (!token.deadline_.armed() ||
      (deadline.armed() && deadline.when() < token.deadline_.when()))
    token.deadline_ = deadline;
  return token;
}

CancelToken CancelSource::token() const {
  CancelToken t;
  t.flag_ = flag_;
  return t;
}

void install_signal_handlers() {
  std::signal(SIGINT, handle_cancel_signal);
  std::signal(SIGTERM, handle_cancel_signal);
  (void)process_deadline();  // pin the SNTRUST_DEADLINE_MS base to "now"
}

bool process_cancel_requested() {
  if (g_signal.load(std::memory_order_relaxed) != 0) return true;
  if (g_programmatic.load(std::memory_order_relaxed)) return true;
  const std::int64_t ns = g_deadline_ns.load(std::memory_order_relaxed);
  if (ns == 0) return false;
  return std::chrono::steady_clock::now().time_since_epoch().count() >= ns;
}

std::string process_cancel_reason() {
  const int sig = g_signal.load(std::memory_order_relaxed);
  if (sig != 0) return signal_name(sig);
  if (g_programmatic.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(reason_mutex());
    return programmatic_reason().empty() ? "cancelled"
                                         : programmatic_reason();
  }
  const std::int64_t ns = g_deadline_ns.load(std::memory_order_relaxed);
  if (ns != 0 &&
      std::chrono::steady_clock::now().time_since_epoch().count() >= ns)
    return "deadline exceeded";
  return {};
}

void request_process_cancel(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(reason_mutex());
    programmatic_reason() = reason;
  }
  g_programmatic.store(true, std::memory_order_relaxed);
}

void reset_process_cancel() {
  g_signal.store(0, std::memory_order_relaxed);
  g_programmatic.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(reason_mutex());
  programmatic_reason().clear();
}

Deadline process_deadline() {
  static std::once_flag once;
  std::call_once(once, [] {
    const std::int64_t ms = env_int("SNTRUST_DEADLINE_MS", 0);
    if (ms > 0) set_process_deadline(Deadline::after_ms(ms));
  });
  const std::int64_t ns = g_deadline_ns.load(std::memory_order_relaxed);
  if (ns == 0) return Deadline{};
  return Deadline::at(std::chrono::steady_clock::time_point(
      std::chrono::steady_clock::duration(ns)));
}

void set_process_deadline(Deadline deadline) {
  g_deadline_ns.store(
      deadline.armed() ? deadline.when().time_since_epoch().count() : 0,
      std::memory_order_relaxed);
}

CancelToken process_token() { return CancelToken{}; }

}  // namespace sntrust::exec

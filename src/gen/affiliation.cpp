#include <stdexcept>

#include "gen/generators.hpp"
#include "graph/builder.hpp"
#include "util/rng.hpp"

namespace sntrust {

Graph affiliation_graph(const AffiliationParams& params, std::uint64_t seed) {
  if (params.num_actors == 0)
    throw std::invalid_argument("affiliation_graph: need actors");
  if (params.min_group < 2 || params.max_group < params.min_group)
    throw std::invalid_argument(
        "affiliation_graph: need 2 <= min_group <= max_group");
  if (params.max_group > params.num_actors)
    throw std::invalid_argument("affiliation_graph: group larger than actors");
  if (params.preferential < 0.0 || params.preferential > 1.0)
    throw std::invalid_argument("affiliation_graph: preferential in [0,1]");
  if (params.regions < 1)
    throw std::invalid_argument("affiliation_graph: regions must be >= 1");
  if (params.cross_region_p < 0.0 || params.cross_region_p > 1.0)
    throw std::invalid_argument("affiliation_graph: cross_region_p in [0,1]");
  const VertexId region_size = params.num_actors / params.regions;
  if (region_size < params.max_group)
    throw std::invalid_argument(
        "affiliation_graph: regions too small for max_group");

  Rng rng{seed};
  GraphBuilder builder{params.num_actors};

  // Per-region activity lists: actors appear once per group membership, so a
  // uniform draw is activity-proportional (prolific authors collaborate
  // more). Region r owns actors [r*region_size, (r+1)*region_size), with the
  // remainder attached to the last region.
  std::vector<std::vector<VertexId>> active(params.regions);
  const auto region_of = [&](VertexId actor) {
    const auto r = static_cast<std::uint32_t>(actor / region_size);
    return r >= params.regions ? params.regions - 1 : r;
  };
  const auto uniform_in_region = [&](std::uint32_t r) {
    const VertexId lo = r * region_size;
    const VertexId hi = (r + 1 == params.regions) ? params.num_actors
                                                  : lo + region_size;
    return lo + static_cast<VertexId>(rng.uniform(hi - lo));
  };

  std::vector<VertexId> group;
  for (std::uint32_t gidx = 0; gidx < params.num_groups; ++gidx) {
    // Cross-region collaborations are long-distance *pairs* of uniformly
    // chosen actors: the connectors between communities are ordinary
    // authors, so their links fall out of high-k cores and the cores
    // fragment — the structure the paper observes in co-authorship graphs.
    const bool global =
        params.regions > 1 && rng.bernoulli(params.cross_region_p);
    const std::uint32_t size =
        global ? 2
               : params.min_group +
                     static_cast<std::uint32_t>(rng.uniform(
                         params.max_group - params.min_group + 1));
    const auto home =
        static_cast<std::uint32_t>(rng.uniform(params.regions));

    group.clear();
    std::size_t attempts = 0;
    while (group.size() < size && attempts < 64u * size) {
      ++attempts;
      VertexId actor;
      const std::uint32_t r =
          global ? static_cast<std::uint32_t>(rng.uniform(params.regions))
                 : home;
      if (!global && !active[r].empty() && rng.bernoulli(params.preferential)) {
        actor = active[r][rng.uniform(active[r].size())];
      } else {
        actor = uniform_in_region(r);
      }
      bool duplicate = false;
      for (const VertexId a : group)
        if (a == actor) { duplicate = true; break; }
      if (!duplicate) group.push_back(actor);
    }
    for (std::size_t i = 0; i < group.size(); ++i) {
      active[region_of(group[i])].push_back(group[i]);
      for (std::size_t j = i + 1; j < group.size(); ++j)
        builder.add_edge(group[i], group[j]);
    }
  }
  return builder.build();
}

}  // namespace sntrust

// Registry of synthetic analogues of the paper's Table-I datasets.
//
// The paper measures 14 real social graphs. Those graphs are not
// redistributable here, so each registry entry pairs the paper's reported
// metadata (size, second largest eigenvalue where legible, social model)
// with a generator recipe that reproduces the *class* of the graph:
//
//   - weak-trust interaction graphs (Wiki-vote, Epinion, Slashdot):
//     heavy-tailed, randomly wired -> fast mixing, one giant core;
//   - strict-trust collaboration/friendship graphs (Physics co-authorships,
//     DBLP, Facebook): strong community structure -> slow mixing,
//     fragmented cores.
//
// Large graphs are scaled down (default_scale) so the full benchmark suite
// runs on one core in minutes; all of the paper's claims are about shapes
// and orderings, which are preserved under scaling (see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace sntrust {

/// Mixing class the paper associates with the dataset's social model.
enum class MixingClass { kFast, kModerate, kSlow };

/// Human-readable label for a MixingClass.
std::string to_string(MixingClass c);

struct DatasetSpec {
  std::string id;            ///< stable identifier, e.g. "wiki_vote"
  std::string name;          ///< display name, e.g. "Wiki-vote"
  std::string social_model;  ///< one-line description of the trust model
  MixingClass expected_class = MixingClass::kFast;
  std::uint64_t paper_nodes = 0;  ///< size reported in Table I
  std::uint64_t paper_edges = 0;
  /// Second largest eigenvalue of the transition matrix as reported in
  /// Table I (nullopt where the paper's value is not legible / not given).
  std::optional<double> paper_mu;
  /// Scale applied to paper_nodes by default when generating the analogue.
  double default_scale = 1.0;

  /// Edge reciprocity of the original dataset (fraction of links that are
  /// mutual) for the natively-directed graphs; 1.0 for undirected ones.
  /// Used by generate_directed().
  double reciprocity = 1.0;

  /// Generates the analogue at `scale * default_scale * paper_nodes`
  /// vertices, reduced to its largest connected component. Deterministic in
  /// `seed`.
  Graph generate(double scale, std::uint64_t seed) const;
  Graph generate(std::uint64_t seed) const { return generate(1.0, seed); }

  /// Full-paper-scale analogue: cancels default_scale so the generator
  /// targets the Table-I vertex count itself (livejournal ~4.8M vertices).
  /// Expect minutes of generation and GBs of CSR for the largest entries —
  /// pair with graph/snapshot.hpp so the cost is paid once.
  Graph generate_full(std::uint64_t seed) const {
    return generate(1.0 / default_scale, seed);
  }
};

class Digraph;  // digraph/digraph.hpp

/// Directed analogue: the undirected analogue re-oriented at the dataset's
/// native reciprocity (digraph/digraph.hpp's orient_graph).
Digraph generate_directed(const DatasetSpec& spec, double scale,
                          std::uint64_t seed);

/// All 14 Table-I analogues, in the paper's order.
const std::vector<DatasetSpec>& all_datasets();

/// Lookup by id; throws std::invalid_argument for unknown ids.
const DatasetSpec& dataset_by_id(const std::string& id);

/// The subsets plotted in the paper's figures.
std::vector<std::string> figure1_small_ids();   ///< Fig. 1(a)
std::vector<std::string> figure1_large_ids();   ///< Fig. 1(b)
std::vector<std::string> figure2_small_ids();   ///< Fig. 2(a)
std::vector<std::string> figure2_large_ids();   ///< Fig. 2(b)
std::vector<std::string> figure3_ids();         ///< Fig. 3(a)-(j)
std::vector<std::string> figure5_ids();         ///< Fig. 5(a)-(e)
std::vector<std::string> table2_ids();          ///< Table II rows

}  // namespace sntrust

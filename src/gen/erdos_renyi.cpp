#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "gen/generators.hpp"
#include "graph/builder.hpp"
#include "util/rng.hpp"

namespace sntrust {

namespace {

/// Inverts an upper-triangular pair index idx in [0, n(n-1)/2) to the pair
/// (u, v) with u < v, where row u holds pairs (u, u+1..n-1).
Edge pair_from_index(VertexId n, std::uint64_t idx) {
  const double nd = n;
  auto cum = [&](std::uint64_t x) {
    return x * static_cast<std::uint64_t>(n) - x - x * (x - 1) / 2;
  };
  double ud = nd - 0.5 -
              std::sqrt((nd - 0.5) * (nd - 0.5) - 2.0 * static_cast<double>(idx));
  auto u = static_cast<std::uint64_t>(std::max(0.0, ud));
  while (u > 0 && cum(u) > idx) --u;
  while (cum(u + 1) <= idx) ++u;
  const std::uint64_t v = u + 1 + (idx - cum(u));
  return {static_cast<VertexId>(u), static_cast<VertexId>(v)};
}

}  // namespace

Graph erdos_renyi(VertexId n, double p, std::uint64_t seed) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("erdos_renyi: p must be in [0,1]");
  GraphBuilder builder{n};
  if (n < 2 || p == 0.0) return builder.build();

  Rng rng{seed};
  if (p == 1.0) {
    for (VertexId u = 0; u < n; ++u)
      for (VertexId v = u + 1; v < n; ++v) builder.add_edge(u, v);
    return builder.build();
  }

  // Batagelj–Brandes geometric skipping over the pair index space: expected
  // O(n + m) instead of O(n^2).
  const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  std::uint64_t idx = rng.geometric(p);
  while (idx < total) {
    const Edge e = pair_from_index(n, idx);
    builder.add_edge(e.u, e.v);
    idx += 1 + rng.geometric(p);
  }
  return builder.build();
}

Graph erdos_renyi_gnm(VertexId n, std::uint64_t m, std::uint64_t seed) {
  const std::uint64_t total =
      n < 2 ? 0 : static_cast<std::uint64_t>(n) * (n - 1) / 2;
  if (m > total)
    throw std::invalid_argument("erdos_renyi_gnm: m exceeds max edge count");
  Rng rng{seed};
  GraphBuilder builder{n};
  builder.reserve(m);
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(m * 2);
  while (chosen.size() < m) {
    const std::uint64_t idx = rng.uniform(total);
    if (!chosen.insert(idx).second) continue;
    const Edge e = pair_from_index(n, idx);
    builder.add_edge(e.u, e.v);
  }
  return builder.build();
}

}  // namespace sntrust

#include "gen/datasets.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>
#include <unordered_map>

#include "digraph/digraph.hpp"
#include "gen/generators.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "util/rng.hpp"

namespace sntrust {

std::string to_string(MixingClass c) {
  switch (c) {
    case MixingClass::kFast: return "fast";
    case MixingClass::kModerate: return "moderate";
    case MixingClass::kSlow: return "slow";
  }
  return "?";
}

namespace {

using Recipe = std::function<Graph(VertexId n, std::uint64_t seed)>;

/// Heavy-tailed analogue with tunable residual community structure (the
/// weak-trust class keeps a large global fraction; lowering it moves the
/// analogue toward the strict-trust class). global_fraction ~1 reduces to a
/// plain configuration model.
Recipe powerlaw_recipe(double gamma, VertexId dmin, double cap_fraction,
                       VertexId block_size, double global_fraction) {
  return [=](VertexId n, std::uint64_t seed) {
    PowerlawCommunityParams params;
    params.num_vertices = n;
    params.gamma = gamma;
    params.min_degree = dmin;
    params.max_degree_cap = static_cast<VertexId>(
        std::max<double>(dmin + 1, cap_fraction * n));
    params.blocks = std::max<std::uint32_t>(
        1, n / std::max<VertexId>(2, block_size));
    params.global_fraction = global_fraction;
    return powerlaw_community(params, seed);
  };
}

/// Co-authorship analogue (strict-trust class): regional affiliation model.
/// groups_per_actor controls density.
Recipe affiliation_recipe(double groups_per_actor, std::uint32_t min_group,
                          std::uint32_t max_group, std::uint32_t regions_per_10k,
                          double cross_region_p, double preferential) {
  return [=](VertexId n, std::uint64_t seed) {
    AffiliationParams params;
    params.num_actors = n;
    params.num_groups = static_cast<std::uint32_t>(
        std::max(1.0, groups_per_actor * n));
    params.min_group = min_group;
    params.max_group = max_group;
    params.regions = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               static_cast<double>(regions_per_10k) * n / 10000.0));
    // Keep every region big enough to host the largest group.
    while (params.regions > 1 && n / params.regions < max_group * 2)
      params.regions /= 2;
    params.cross_region_p = cross_region_p;
    params.preferential = preferential;
    return affiliation_graph(params, seed);
  };
}

struct Entry {
  DatasetSpec spec;
  Recipe recipe;
};

const std::vector<Entry>& registry() {
  static const std::vector<Entry> entries = [] {
    std::vector<Entry> list;
    const auto add = [&](DatasetSpec spec, Recipe recipe) {
      list.push_back({std::move(spec), std::move(recipe)});
    };

    add({"wiki_vote", "Wiki-vote", "who-votes-on-whom; weak trust",
         MixingClass::kFast, 7066, 100736, 0.899, 1.0},
        powerlaw_recipe(1.75, 8, 0.05, 250, 0.15));
    add({"slashdot_a", "Slashdot 1", "declared friend/foe; weak trust",
         MixingClass::kFast, 77360, 469180, 0.987, 1.0},
        powerlaw_recipe(2.05, 3, 0.02, 300, 0.05));
    add({"slashdot_b", "Slashdot 2", "declared friend/foe; weak trust",
         MixingClass::kFast, 82168, 504230, 0.987, 1.0},
        powerlaw_recipe(2.05, 3, 0.02, 300, 0.05));
    add({"epinion", "Epinion", "who-trusts-whom reviews; weak trust",
         MixingClass::kFast, 75879, 405740, 0.947, 1.0},
        powerlaw_recipe(2.0, 2, 0.03, 280, 0.1));
    add({"enron", "Enron", "email exchanges; organizational communities",
         MixingClass::kModerate, 33696, 180811, 0.997, 1.0},
        powerlaw_recipe(1.9, 2, 0.04, 200, 0.06));
    add({"physics_1", "Physics 1", "co-authorship (relativity); strict trust",
         MixingClass::kSlow, 4158, 13422, 0.998, 1.0},
        affiliation_recipe(0.9, 2, 5, 110, 0.06, 0.55));
    add({"physics_2", "Physics 2", "co-authorship (hep); strict trust",
         MixingClass::kSlow, 11204, 117619, 0.998, 1.0},
        affiliation_recipe(0.75, 3, 10, 90, 0.06, 0.60));
    add({"physics_3", "Physics 3", "co-authorship (astro); strict trust",
         MixingClass::kSlow, 17903, 196972, 0.998, 1.0},
        affiliation_recipe(0.70, 3, 10, 70, 0.06, 0.60));
    add({"dblp", "DBLP", "co-authorship (CS); strict trust",
         MixingClass::kSlow, 614981, 1871070, 0.997, 0.1},
        affiliation_recipe(1.1, 2, 4, 80, 0.06, 0.55));
    add({"facebook_a", "Facebook A", "friendship; strict trust",
         MixingClass::kSlow, 1000000, 20353734, std::nullopt, 0.1},
        powerlaw_recipe(2.8, 12, 0.004, 400, 0.02));
    add({"facebook_b", "Facebook B", "friendship; strict trust",
         MixingClass::kSlow, 3097165, 23667394, 0.99, 0.04},
        powerlaw_recipe(2.8, 8, 0.004, 420, 0.02));
    add({"livejournal_a", "LiveJournal A", "blog friendship; mixed trust",
         MixingClass::kModerate, 4843953, 42845684, std::nullopt, 0.025},
        powerlaw_recipe(2.3, 4, 0.01, 280, 0.03));
    add({"youtube", "Youtube", "subscription links; weak trust",
         MixingClass::kModerate, 1134890, 2987624, std::nullopt, 0.1},
        powerlaw_recipe(2.35, 2, 0.02, 220, 0.04));
    add({"rice_grad", "Rice-cs-grad", "department community; strict trust",
         MixingClass::kFast, 501, 3255, std::nullopt, 1.0},
        affiliation_recipe(1.4, 2, 6, 20, 0.25, 0.55));

    // Native link reciprocity of the directed datasets (SNAP metadata);
    // everything else is genuinely undirected and keeps the default 1.0.
    const auto set_reciprocity = [&](const char* id, double value) {
      for (Entry& e : list)
        if (e.spec.id == id) e.spec.reciprocity = value;
    };
    set_reciprocity("wiki_vote", 0.06);
    set_reciprocity("slashdot_a", 0.82);
    set_reciprocity("slashdot_b", 0.82);
    set_reciprocity("epinion", 0.41);
    set_reciprocity("youtube", 0.79);
    set_reciprocity("livejournal_a", 0.74);
    return list;
  }();
  return entries;
}

const Entry& entry_by_id(const std::string& id) {
  for (const Entry& e : registry())
    if (e.spec.id == id) return e;
  throw std::invalid_argument("unknown dataset id: " + id);
}

}  // namespace

Graph DatasetSpec::generate(double scale, std::uint64_t seed) const {
  const double effective = scale * default_scale;
  if (effective <= 0.0)
    throw std::invalid_argument("DatasetSpec::generate: scale must be > 0");
  const auto n = static_cast<VertexId>(
      std::max<double>(16.0, std::round(effective * paper_nodes)));
  const Graph raw = entry_by_id(id).recipe(n, seed);
  return largest_component(raw).graph;
}

Digraph generate_directed(const DatasetSpec& spec, double scale,
                          std::uint64_t seed) {
  return orient_graph(spec.generate(scale, seed), spec.reciprocity,
                      seed ^ 0x7f4a7c15b97f4a7cULL);
}

const std::vector<DatasetSpec>& all_datasets() {
  static const std::vector<DatasetSpec> specs = [] {
    std::vector<DatasetSpec> out;
    for (const Entry& e : registry()) out.push_back(e.spec);
    return out;
  }();
  return specs;
}

const DatasetSpec& dataset_by_id(const std::string& id) {
  return entry_by_id(id).spec;
}

std::vector<std::string> figure1_small_ids() {
  return {"wiki_vote", "enron", "physics_1", "physics_2", "physics_3",
          "slashdot_a", "epinion"};
}

std::vector<std::string> figure1_large_ids() {
  return {"facebook_a", "facebook_b", "livejournal_a", "dblp", "youtube"};
}

std::vector<std::string> figure2_small_ids() {
  return {"physics_1", "physics_2", "wiki_vote", "epinion", "enron"};
}

std::vector<std::string> figure2_large_ids() {
  return {"dblp", "youtube", "facebook_a", "facebook_b", "livejournal_a"};
}

std::vector<std::string> figure3_ids() {
  return {"physics_1", "physics_2", "physics_3", "wiki_vote", "facebook_a",
          "livejournal_a", "slashdot_a", "enron", "epinion", "rice_grad"};
}

std::vector<std::string> figure5_ids() {
  return {"physics_1", "physics_2", "epinion", "wiki_vote", "facebook_a"};
}

std::vector<std::string> table2_ids() {
  return {"physics_3", "facebook_a", "livejournal_a", "slashdot_a"};
}

}  // namespace sntrust

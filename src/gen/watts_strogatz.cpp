#include <stdexcept>
#include <unordered_set>

#include "gen/generators.hpp"
#include "graph/builder.hpp"
#include "util/rng.hpp"

namespace sntrust {

Graph watts_strogatz(VertexId n, VertexId k, double rewire_p,
                     std::uint64_t seed) {
  if (k < 1) throw std::invalid_argument("watts_strogatz: k must be >= 1");
  if (n <= 2 * k)
    throw std::invalid_argument("watts_strogatz: need n > 2k");
  if (rewire_p < 0.0 || rewire_p > 1.0)
    throw std::invalid_argument("watts_strogatz: rewire_p must be in [0,1]");

  Rng rng{seed};
  // Edge set as (u << 32 | v) codes with u < v, so rewiring can test
  // membership cheaply.
  std::unordered_set<std::uint64_t> edges;
  edges.reserve(static_cast<std::size_t>(n) * k * 2);
  auto code = [](VertexId a, VertexId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };

  for (VertexId u = 0; u < n; ++u)
    for (VertexId j = 1; j <= k; ++j)
      edges.insert(code(u, static_cast<VertexId>((u + j) % n)));

  // Rewire each original lattice edge (u, u+j) with probability p, keeping u
  // fixed and redrawing the far endpoint.
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId j = 1; j <= k; ++j) {
      if (!rng.bernoulli(rewire_p)) continue;
      const auto old_v = static_cast<VertexId>((u + j) % n);
      const std::uint64_t old_code = code(u, old_v);
      if (edges.find(old_code) == edges.end()) continue;  // already rewired away
      // Draw a fresh endpoint; give up after a bounded number of attempts on
      // (near-)saturated neighbourhoods.
      for (int attempt = 0; attempt < 32; ++attempt) {
        const auto w = static_cast<VertexId>(rng.uniform(n));
        if (w == u) continue;
        const std::uint64_t new_code = code(u, w);
        if (edges.count(new_code) != 0) continue;
        edges.erase(old_code);
        edges.insert(new_code);
        break;
      }
    }
  }

  GraphBuilder builder{n};
  builder.reserve(edges.size());
  for (const std::uint64_t c : edges)
    builder.add_edge(static_cast<VertexId>(c >> 32),
                     static_cast<VertexId>(c & 0xFFFFFFFFu));
  return builder.build();
}

}  // namespace sntrust

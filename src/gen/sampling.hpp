// Graph-sampling methods for measurement methodology studies: the paper's
// own measurements sample sources (mixing) or all vertices (expansion); a
// practitioner facing a billion-edge graph instead measures a *sampled
// subgraph*. These samplers let the ablations quantify which properties
// survive which sampling method (they famously do not all survive — e.g.
// snowball sampling biases coreness up and mixing down).
#pragma once

#include <cstdint>

#include "graph/subgraph.hpp"

namespace sntrust {

/// Induced subgraph on `k` uniformly random vertices.
ExtractedGraph sample_random_vertices(const Graph& g, VertexId k,
                                      std::uint64_t seed);

/// Induced subgraph on the endpoints of `k` uniformly random edges
/// (vertex count is <= 2k after dedup).
ExtractedGraph sample_random_edges(const Graph& g, std::uint64_t k,
                                   std::uint64_t seed);

/// Snowball (BFS ball) sample: full neighbourhoods from a random seed until
/// `k` vertices are collected (the last level is truncated arbitrarily).
ExtractedGraph sample_snowball(const Graph& g, VertexId k,
                               std::uint64_t seed);

/// Random-walk sample: induced subgraph on the distinct vertices visited by
/// a simple random walk from a random start until `k` distinct vertices are
/// seen (or 100 * k steps elapse).
ExtractedGraph sample_random_walk(const Graph& g, VertexId k,
                                  std::uint64_t seed);

}  // namespace sntrust

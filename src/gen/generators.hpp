// Random-graph generators used to synthesize analogues of the paper's
// Table-I datasets (see DESIGN.md for the substitution rationale).
//
// Every generator takes an explicit seed and returns a simple undirected
// graph (self loops and parallel edges are removed by the builder). None of
// the generators guarantees connectivity; callers that need a connected graph
// (all measurements in this paper do) should pass the result through
// largest_component().
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace sntrust {

/// G(n, p) via geometric edge skipping, O(n + m) expected.
/// Preconditions: p in [0, 1].
Graph erdos_renyi(VertexId n, double p, std::uint64_t seed);

/// G(n, m): exactly `m` distinct uniform edges (m <= n(n-1)/2).
Graph erdos_renyi_gnm(VertexId n, std::uint64_t m, std::uint64_t seed);

/// Barabási–Albert preferential attachment: starts from a clique on
/// `edges_per_node + 1` seed vertices, then attaches each new vertex to
/// `edges_per_node` existing vertices chosen proportionally to degree
/// (repeated-endpoint trick). Produces heavy-tailed, fast-mixing graphs —
/// the weak-trust "interaction graph" class of the paper.
/// Preconditions: n > edges_per_node >= 1.
Graph barabasi_albert(VertexId n, VertexId edges_per_node, std::uint64_t seed);

/// Holme–Kim powerlaw-cluster model: BA attachment where each subsequent
/// link follows a triad-closure step with probability `triangle_p`,
/// producing heavy tails plus tunable clustering.
/// Preconditions: n > edges_per_node >= 1, triangle_p in [0, 1].
Graph powerlaw_cluster(VertexId n, VertexId edges_per_node, double triangle_p,
                       std::uint64_t seed);

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbours per
/// side rewired with probability `rewire_p`.
/// Preconditions: n > 2k, k >= 1, rewire_p in [0, 1].
Graph watts_strogatz(VertexId n, VertexId k, double rewire_p,
                     std::uint64_t seed);

/// Configuration model for a given degree sequence (stub matching; stubs
/// producing self loops or duplicates are dropped, so realized degrees are a
/// close lower bound on the request). Sequence sum may be odd; one stub is
/// then discarded.
Graph configuration_model(const std::vector<VertexId>& degrees,
                          std::uint64_t seed);

/// Planted-partition stochastic block model: `blocks` equal communities over
/// n vertices; within-community edge probability `p_in`, cross-community
/// `p_out`. Strong communities (p_out << p_in) yield slow-mixing graphs —
/// the strict-trust class of the paper.
/// Preconditions: blocks >= 1, probabilities in [0, 1].
Graph planted_partition(VertexId n, std::uint32_t blocks, double p_in,
                        double p_out, std::uint64_t seed);

/// Parameters for the affiliation (co-authorship) model.
struct AffiliationParams {
  VertexId num_actors = 0;        ///< people
  std::uint32_t num_groups = 0;   ///< papers / teams
  std::uint32_t min_group = 2;    ///< smallest team size
  std::uint32_t max_group = 6;    ///< largest team size
  /// Probability that a team slot is filled by preferential attachment over
  /// previously active actors (vs. a uniformly random actor). Higher values
  /// concentrate collaboration, mimicking prolific authors.
  double preferential = 0.7;
  /// Actors are partitioned into `regions` research communities; each group
  /// recruits inside one region except with probability `cross_region_p`,
  /// when it recruits globally. regions > 1 with small cross_region_p yields
  /// the strong community structure (and slow mixing) of co-authorship
  /// graphs.
  std::uint32_t regions = 1;
  double cross_region_p = 0.05;
};

/// Affiliation model: sample groups (teams), clique-connect each group's
/// members. Produces the high-clustering, community-fragmented structure of
/// co-authorship networks (Physics/DBLP class: slow mixing, fragmented
/// cores).
Graph affiliation_graph(const AffiliationParams& params, std::uint64_t seed);

/// Power-law degree sequence (exponent gamma > 1, min degree dmin, capped at
/// `cap`) via inverse-CDF sampling of a Pareto tail.
std::vector<VertexId> powerlaw_degrees(VertexId n, double gamma, VertexId dmin,
                                       VertexId cap, std::uint64_t seed);

/// Parameters for the degree-corrected community model.
struct PowerlawCommunityParams {
  VertexId num_vertices = 0;
  /// Power-law degree sequence parameters (see powerlaw_degrees()).
  double gamma = 2.2;
  VertexId min_degree = 2;
  VertexId max_degree_cap = 1000;
  /// Vertices are split into `blocks` contiguous communities.
  std::uint32_t blocks = 1;
  /// Fraction of each vertex's stubs wired globally (configuration model
  /// over the whole graph); the rest are wired within the vertex's block.
  /// 1.0 degenerates to a plain configuration model; small values give
  /// strong communities (slow mixing) with heavy-tailed degrees.
  double global_fraction = 0.5;
};

/// Degree-corrected planted-community graph: per-block configuration models
/// plus a global configuration model over the remaining stubs. This is the
/// tunable knob between the paper's weak-trust (fast) and strict-trust
/// (slow) dataset classes.
Graph powerlaw_community(const PowerlawCommunityParams& params,
                         std::uint64_t seed);

}  // namespace sntrust

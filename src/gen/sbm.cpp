#include <stdexcept>

#include "gen/generators.hpp"
#include "graph/builder.hpp"
#include "util/rng.hpp"

namespace sntrust {

Graph planted_partition(VertexId n, std::uint32_t blocks, double p_in,
                        double p_out, std::uint64_t seed) {
  if (blocks < 1)
    throw std::invalid_argument("planted_partition: blocks must be >= 1");
  if (p_in < 0.0 || p_in > 1.0 || p_out < 0.0 || p_out > 1.0)
    throw std::invalid_argument("planted_partition: probabilities in [0,1]");

  Rng rng{seed};
  GraphBuilder builder{n};
  // Vertex v belongs to block v % blocks-sized contiguous range.
  const VertexId base = n / blocks;
  const VertexId extra = n % blocks;
  // block_start[b] for b in [0, blocks]; first `extra` blocks get base+1.
  std::vector<VertexId> block_start(blocks + 1, 0);
  for (std::uint32_t b = 0; b < blocks; ++b)
    block_start[b + 1] = block_start[b] + base + (b < extra ? 1 : 0);

  // Within-block edges: G(size, p_in) per block via geometric skipping.
  for (std::uint32_t b = 0; b < blocks; ++b) {
    const VertexId lo = block_start[b];
    const VertexId size = block_start[b + 1] - lo;
    if (size < 2 || p_in == 0.0) continue;
    const std::uint64_t total = static_cast<std::uint64_t>(size) * (size - 1) / 2;
    std::uint64_t idx = p_in >= 1.0 ? 0 : rng.geometric(p_in);
    while (idx < total) {
      // Invert the triangular index within the block (rows of size-1-u pairs).
      std::uint64_t u = 0;
      std::uint64_t remaining = idx;
      while (remaining >= size - 1 - u) {
        remaining -= size - 1 - u;
        ++u;
      }
      const std::uint64_t v = u + 1 + remaining;
      builder.add_edge(lo + static_cast<VertexId>(u),
                       lo + static_cast<VertexId>(v));
      idx += p_in >= 1.0 ? 1 : 1 + rng.geometric(p_in);
    }
  }

  // Cross-block edges: geometric skipping over all cross pairs, realized by
  // sampling a uniform cross pair per hit (exact pair-index inversion across
  // blocks is fiddly; expected counts match because hits are i.i.d.).
  if (p_out > 0.0 && blocks > 1) {
    std::uint64_t cross_pairs = 0;
    for (std::uint32_t b = 0; b < blocks; ++b) {
      const std::uint64_t size_b = block_start[b + 1] - block_start[b];
      cross_pairs += size_b * (n - block_start[b + 1]);
    }
    std::uint64_t idx = p_out >= 1.0 ? 0 : rng.geometric(p_out);
    while (idx < cross_pairs) {
      // Uniform cross pair by rejection.
      for (;;) {
        const auto u = static_cast<VertexId>(rng.uniform(n));
        const auto v = static_cast<VertexId>(rng.uniform(n));
        if (u == v) continue;
        // Same block?
        // Binary-search block of each.
        auto block_of = [&](VertexId x) {
          std::uint32_t lo = 0, hi = blocks;
          while (lo + 1 < hi) {
            const std::uint32_t mid = (lo + hi) / 2;
            if (block_start[mid] <= x) lo = mid; else hi = mid;
          }
          return lo;
        };
        if (block_of(u) == block_of(v)) continue;
        builder.add_edge(u, v);
        break;
      }
      idx += p_out >= 1.0 ? 1 : 1 + rng.geometric(p_out);
    }
  }
  return builder.build();
}

}  // namespace sntrust

#include <cmath>
#include <stdexcept>

#include "gen/generators.hpp"
#include "graph/builder.hpp"
#include "util/rng.hpp"

namespace sntrust {

std::vector<VertexId> powerlaw_degrees(VertexId n, double gamma, VertexId dmin,
                                       VertexId cap, std::uint64_t seed) {
  if (gamma <= 1.0)
    throw std::invalid_argument("powerlaw_degrees: gamma must be > 1");
  if (dmin < 1) throw std::invalid_argument("powerlaw_degrees: dmin >= 1");
  if (cap < dmin) throw std::invalid_argument("powerlaw_degrees: cap >= dmin");
  Rng rng{seed};
  std::vector<VertexId> degrees(n);
  const double inv_exp = 1.0 / (gamma - 1.0);
  for (VertexId i = 0; i < n; ++i) {
    // Inverse-CDF sampling of a Pareto tail, floored to an integer degree.
    const double u = 1.0 - rng.uniform_real();  // (0, 1]
    const double d = dmin * std::pow(u, -inv_exp);
    degrees[i] = static_cast<VertexId>(
        std::min<double>(cap, std::max<double>(dmin, d)));
  }
  return degrees;
}

Graph powerlaw_community(const PowerlawCommunityParams& params,
                         std::uint64_t seed) {
  const VertexId n = params.num_vertices;
  if (n == 0) throw std::invalid_argument("powerlaw_community: need vertices");
  if (params.blocks < 1)
    throw std::invalid_argument("powerlaw_community: blocks must be >= 1");
  if (params.global_fraction < 0.0 || params.global_fraction > 1.0)
    throw std::invalid_argument(
        "powerlaw_community: global_fraction must be in [0,1]");

  Rng rng{seed};
  const std::vector<VertexId> degrees = powerlaw_degrees(
      n, params.gamma, params.min_degree, params.max_degree_cap, rng());

  const std::uint32_t blocks = params.blocks;
  const VertexId block_size = std::max<VertexId>(1, n / blocks);
  const auto block_of = [&](VertexId v) {
    const auto b = static_cast<std::uint32_t>(v / block_size);
    return b >= blocks ? blocks - 1 : b;
  };

  // Split each vertex's stubs into a local pile (within its block) and the
  // global pile, then run stub matching on each pile independently.
  std::vector<std::vector<VertexId>> local_stubs(blocks);
  std::vector<VertexId> global_stubs;
  for (VertexId v = 0; v < n; ++v) {
    const auto global_count = static_cast<VertexId>(
        std::llround(params.global_fraction * degrees[v]));
    for (VertexId i = 0; i < global_count; ++i) global_stubs.push_back(v);
    for (VertexId i = global_count; i < degrees[v]; ++i)
      local_stubs[block_of(v)].push_back(v);
  }

  GraphBuilder builder{n};
  const auto match = [&](std::vector<VertexId>& stubs) {
    if (stubs.size() % 2 == 1) stubs.pop_back();
    rng.shuffle(std::span<VertexId>{stubs});
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2)
      builder.add_edge(stubs[i], stubs[i + 1]);
  };
  for (auto& pile : local_stubs) match(pile);
  match(global_stubs);
  return builder.build();
}

}  // namespace sntrust

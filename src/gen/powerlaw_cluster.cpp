#include <stdexcept>

#include "gen/generators.hpp"
#include "graph/builder.hpp"
#include "util/rng.hpp"

namespace sntrust {

Graph powerlaw_cluster(VertexId n, VertexId edges_per_node, double triangle_p,
                       std::uint64_t seed) {
  if (edges_per_node < 1)
    throw std::invalid_argument("powerlaw_cluster: edges_per_node must be >= 1");
  if (n <= edges_per_node)
    throw std::invalid_argument("powerlaw_cluster: need n > edges_per_node");
  if (triangle_p < 0.0 || triangle_p > 1.0)
    throw std::invalid_argument("powerlaw_cluster: triangle_p must be in [0,1]");

  Rng rng{seed};
  GraphBuilder builder{n};
  builder.reserve(static_cast<std::size_t>(n) * edges_per_node);

  // adjacency so far, needed for the triad-closure step.
  std::vector<std::vector<VertexId>> adj(n);
  std::vector<VertexId> endpoints;
  endpoints.reserve(2ull * n * edges_per_node);

  auto connect = [&](VertexId a, VertexId b) {
    builder.add_edge(a, b);
    adj[a].push_back(b);
    adj[b].push_back(a);
    endpoints.push_back(a);
    endpoints.push_back(b);
  };
  auto connected = [&](VertexId a, VertexId b) {
    const auto& small = adj[a].size() < adj[b].size() ? adj[a] : adj[b];
    const VertexId probe = adj[a].size() < adj[b].size() ? b : a;
    for (const VertexId w : small)
      if (w == probe) return true;
    return false;
  };

  const VertexId seed_size = edges_per_node + 1;
  for (VertexId u = 0; u < seed_size; ++u)
    for (VertexId v = u + 1; v < seed_size; ++v) connect(u, v);

  for (VertexId v = seed_size; v < n; ++v) {
    // First link: always preferential.
    VertexId last = endpoints[rng.uniform(endpoints.size())];
    connect(v, last);
    for (VertexId link = 1; link < edges_per_node; ++link) {
      bool done = false;
      if (rng.bernoulli(triangle_p)) {
        // Triad closure: connect to a random neighbour of the last target.
        const auto& candidates = adj[last];
        for (int attempt = 0; attempt < 8 && !done; ++attempt) {
          const VertexId w = candidates[rng.uniform(candidates.size())];
          if (w != v && !connected(v, w)) {
            connect(v, w);
            last = w;
            done = true;
          }
        }
      }
      while (!done) {
        const VertexId w = endpoints[rng.uniform(endpoints.size())];
        if (w != v && !connected(v, w)) {
          connect(v, w);
          last = w;
          done = true;
        }
      }
    }
  }
  return builder.build();
}

}  // namespace sntrust

#include <numeric>
#include <stdexcept>

#include "gen/generators.hpp"
#include "graph/builder.hpp"
#include "util/rng.hpp"

namespace sntrust {

Graph configuration_model(const std::vector<VertexId>& degrees,
                          std::uint64_t seed) {
  const auto n = static_cast<VertexId>(degrees.size());
  Rng rng{seed};

  std::vector<VertexId> stubs;
  stubs.reserve(std::accumulate(degrees.begin(), degrees.end(),
                                std::size_t{0}));
  for (VertexId v = 0; v < n; ++v)
    for (VertexId i = 0; i < degrees[v]; ++i) stubs.push_back(v);

  if (stubs.size() % 2 == 1) stubs.pop_back();  // odd sum: drop one stub
  rng.shuffle(std::span<VertexId>{stubs});

  GraphBuilder builder{n};
  builder.reserve(stubs.size() / 2);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2)
    builder.add_edge(stubs[i], stubs[i + 1]);  // self loops/dups dropped
  return builder.build();
}

}  // namespace sntrust

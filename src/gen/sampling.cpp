#include "gen/sampling.hpp"

#include <stdexcept>
#include <unordered_set>

#include "graph/traversal.hpp"
#include "util/rng.hpp"

namespace sntrust {

namespace {

void check_k(const Graph& g, VertexId k, const char* who) {
  if (k == 0 || k > g.num_vertices())
    throw std::invalid_argument(std::string(who) +
                                ": k must be in [1, num_vertices]");
}

}  // namespace

ExtractedGraph sample_random_vertices(const Graph& g, VertexId k,
                                      std::uint64_t seed) {
  check_k(g, k, "sample_random_vertices");
  Rng rng{seed};
  const std::vector<VertexId> members =
      rng.sample_without_replacement(g.num_vertices(), k);
  return induced_subgraph(g, members);
}

ExtractedGraph sample_random_edges(const Graph& g, std::uint64_t k,
                                   std::uint64_t seed) {
  if (k == 0 || k > g.num_edges())
    throw std::invalid_argument(
        "sample_random_edges: k must be in [1, num_edges]");
  Rng rng{seed};
  const std::vector<Edge> edges = g.edges();
  // Sample k distinct edge indices, collect endpoint set.
  const std::vector<std::uint32_t> picks = rng.sample_without_replacement(
      static_cast<std::uint32_t>(edges.size()), static_cast<std::uint32_t>(k));
  std::unordered_set<VertexId> seen;
  std::vector<VertexId> members;
  for (const std::uint32_t i : picks) {
    for (const VertexId v : {edges[i].u, edges[i].v})
      if (seen.insert(v).second) members.push_back(v);
  }
  return induced_subgraph(g, members);
}

ExtractedGraph sample_snowball(const Graph& g, VertexId k,
                               std::uint64_t seed) {
  check_k(g, k, "sample_snowball");
  Rng rng{seed};
  const auto start = static_cast<VertexId>(rng.uniform(g.num_vertices()));
  const BfsResult result = bfs(g, start);

  // Collect vertices in BFS order until k are gathered.
  std::vector<VertexId> members;
  members.reserve(k);
  // BFS order is not stored; rebuild by walking levels over distances.
  for (std::uint32_t level = 0; members.size() < k; ++level) {
    bool any = false;
    for (VertexId v = 0; v < g.num_vertices() && members.size() < k; ++v) {
      if (result.distances[v] == level) {
        members.push_back(v);
        any = true;
      }
    }
    if (!any) break;  // component exhausted before k
  }
  return induced_subgraph(g, members);
}

ExtractedGraph sample_random_walk(const Graph& g, VertexId k,
                                  std::uint64_t seed) {
  check_k(g, k, "sample_random_walk");
  Rng rng{seed};
  VertexId start = static_cast<VertexId>(rng.uniform(g.num_vertices()));
  // Find a non-isolated start.
  for (VertexId tries = 0; g.degree(start) == 0 && tries < g.num_vertices();
       ++tries)
    start = (start + 1) % g.num_vertices();
  if (g.degree(start) == 0)
    throw std::invalid_argument("sample_random_walk: graph has no edges");

  std::unordered_set<VertexId> seen;
  std::vector<VertexId> members;
  VertexId at = start;
  seen.insert(at);
  members.push_back(at);
  const std::uint64_t step_budget = 100ull * k;
  for (std::uint64_t step = 0; step < step_budget && members.size() < k;
       ++step) {
    const auto nbrs = g.neighbors(at);
    at = nbrs[rng.uniform(nbrs.size())];
    if (seen.insert(at).second) members.push_back(at);
  }
  return induced_subgraph(g, members);
}

}  // namespace sntrust

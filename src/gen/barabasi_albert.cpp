#include <stdexcept>

#include "gen/generators.hpp"
#include "graph/builder.hpp"
#include "util/rng.hpp"

namespace sntrust {

Graph barabasi_albert(VertexId n, VertexId edges_per_node,
                      std::uint64_t seed) {
  if (edges_per_node < 1)
    throw std::invalid_argument("barabasi_albert: edges_per_node must be >= 1");
  if (n <= edges_per_node)
    throw std::invalid_argument("barabasi_albert: need n > edges_per_node");

  Rng rng{seed};
  GraphBuilder builder{n};
  builder.reserve(static_cast<std::size_t>(n) * edges_per_node);

  // `endpoints` lists every vertex once per incident edge; sampling a uniform
  // entry is exactly degree-proportional sampling.
  std::vector<VertexId> endpoints;
  endpoints.reserve(2ull * n * edges_per_node);

  // Seed: clique on the first edges_per_node + 1 vertices.
  const VertexId seed_size = edges_per_node + 1;
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      builder.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  std::vector<VertexId> picks(edges_per_node);
  for (VertexId v = seed_size; v < n; ++v) {
    // Draw edges_per_node distinct targets by rejection on the endpoint list.
    std::size_t got = 0;
    while (got < edges_per_node) {
      const VertexId target = endpoints[rng.uniform(endpoints.size())];
      bool duplicate = false;
      for (std::size_t i = 0; i < got; ++i)
        if (picks[i] == target) { duplicate = true; break; }
      if (!duplicate) picks[got++] = target;
    }
    for (std::size_t i = 0; i < edges_per_node; ++i) {
      builder.add_edge(v, picks[i]);
      endpoints.push_back(v);
      endpoints.push_back(picks[i]);
    }
  }
  return builder.build();
}

}  // namespace sntrust

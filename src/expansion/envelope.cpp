#include "expansion/envelope.hpp"

#include <stdexcept>

#include "graph/frontier_bfs.hpp"
#include "obs/metrics.hpp"

namespace sntrust {

EnvelopeProfile envelope_from_levels(
    VertexId source, const std::vector<std::uint64_t>& levels) {
  if (levels.empty() || levels.front() != 1)
    throw std::invalid_argument(
        "envelope_from_levels: levels must start with L_0 = 1");
  EnvelopeProfile out;
  out.source = source;
  out.level_sizes = levels;
  out.envelope_sizes.resize(levels.size());
  out.neighbor_counts.resize(levels.size());
  out.alpha.resize(levels.size());
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    cumulative += levels[i];
    out.envelope_sizes[i] = cumulative;
    out.neighbor_counts[i] = i + 1 < levels.size() ? levels[i + 1] : 0;
    out.alpha[i] = static_cast<double>(out.neighbor_counts[i]) /
                   static_cast<double>(cumulative);
  }
  return out;
}

EnvelopeProfile envelope_profile(const Graph& g, VertexId source) {
  FrontierBfs runner{g};
  return envelope_profile(g, source, runner);
}

EnvelopeProfile envelope_profile(const Graph&, VertexId source,
                                 FrontierBfs& runner) {
  const BfsResult& result = runner.run(source);
  static obs::Counter& envelopes = obs::metrics_counter("expansion.envelopes");
  envelopes.add(1);
  static obs::Histogram& depth = obs::metrics_histogram("expansion.bfs_depth");
  depth.observe(static_cast<double>(result.level_sizes.size() - 1));
  return envelope_from_levels(source, result.level_sizes);
}

}  // namespace sntrust

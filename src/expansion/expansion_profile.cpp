#include "expansion/expansion_profile.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/components.hpp"
#include "graph/traversal.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace sntrust {

double ExpansionProfile::min_alpha(std::uint64_t n) const {
  double best = -1.0;
  for (const ExpansionPoint& p : points) {
    if (p.set_size == 0 || p.set_size > n / 2) continue;
    const double alpha = p.mean_alpha();
    if (best < 0.0 || alpha < best) best = alpha;
  }
  return best < 0.0 ? 0.0 : best;
}

ExpansionProfile measure_expansion(const Graph& g,
                                   const ExpansionOptions& options) {
  const VertexId n = g.num_vertices();
  if (n == 0) throw std::invalid_argument("measure_expansion: empty graph");
  if (!is_connected(g))
    throw std::invalid_argument("measure_expansion: graph must be connected");

  std::vector<VertexId> sources;
  if (options.num_sources == 0 || options.num_sources >= n) {
    sources.resize(n);
    for (VertexId v = 0; v < n; ++v) sources[v] = v;
  } else {
    Rng rng{options.seed};
    sources = rng.sample_without_replacement(n, options.num_sources);
  }

  struct Accumulator {
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    double sum = 0.0;
    std::uint64_t count = 0;
  };
  std::map<std::uint64_t, Accumulator> by_size;

  const obs::Span span{"measure_expansion", "expansion"};
  static obs::Counter& bfs_runs = obs::metrics_counter("expansion.bfs_runs");
  static obs::Histogram& frontier =
      obs::metrics_histogram("expansion.bfs_frontier");

  ExpansionProfile out;
  BfsRunner runner{g};
  obs::ProgressMeter progress{"expansion sources",
                              static_cast<std::uint64_t>(sources.size())};
  for (const VertexId source : sources) {
    const BfsResult& result = runner.run(source);
    bfs_runs.add(1);
    progress.tick();
    const auto& levels = result.level_sizes;
    for (const std::uint64_t level_size : levels)
      frontier.observe(static_cast<double>(level_size));
    out.max_depth = std::max(
        out.max_depth, static_cast<std::uint32_t>(levels.size() - 1));
    std::uint64_t envelope = 0;
    for (std::size_t i = 0; i + 1 < levels.size(); ++i) {
      envelope += levels[i];
      const std::uint64_t neighbors = levels[i + 1];
      Accumulator& acc = by_size[envelope];
      if (acc.count == 0) {
        acc.min = acc.max = neighbors;
      } else {
        acc.min = std::min(acc.min, neighbors);
        acc.max = std::max(acc.max, neighbors);
      }
      acc.sum += static_cast<double>(neighbors);
      ++acc.count;
    }
  }

  out.sources_used = static_cast<std::uint32_t>(sources.size());
  out.points.reserve(by_size.size());
  for (const auto& [size, acc] : by_size) {
    ExpansionPoint point;
    point.set_size = size;
    point.min_neighbors = acc.min;
    point.max_neighbors = acc.max;
    point.mean_neighbors = acc.sum / static_cast<double>(acc.count);
    point.observations = acc.count;
    out.points.push_back(point);
  }
  return out;
}

}  // namespace sntrust

#include "expansion/expansion_profile.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <vector>

#include "exec/checkpoint.hpp"
#include "exec/sweep.hpp"
#include "graph/components.hpp"
#include "graph/frontier_bfs.hpp"
#include "obs/diag.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace sntrust {

double ExpansionProfile::min_alpha(std::uint64_t n) const {
  double best = -1.0;
  for (const ExpansionPoint& p : points) {
    if (p.set_size == 0 || p.set_size > n / 2) continue;
    const double alpha = p.mean_alpha();
    if (best < 0.0 || alpha < best) best = alpha;
  }
  return best < 0.0 ? 0.0 : best;
}

ExpansionProfile measure_expansion(const Graph& g,
                                   const ExpansionOptions& options) {
  const VertexId n = g.num_vertices();
  if (n == 0) throw std::invalid_argument("measure_expansion: empty graph");
  if (!is_connected(g))
    throw std::invalid_argument("measure_expansion: graph must be connected");

  std::vector<VertexId> sources;
  if (options.num_sources == 0 || options.num_sources >= n) {
    sources.resize(n);
    for (VertexId v = 0; v < n; ++v) sources[v] = v;
  } else {
    Rng rng{options.seed};
    sources = rng.sample_without_replacement(n, options.num_sources);
  }

  // The neighbour-count sum stays integral (level sizes are counts), so the
  // per-worker partial accumulators merge bitwise identically in any order
  // and the final mean is thread-count invariant.
  struct Accumulator {
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::uint64_t sum = 0;
    std::uint64_t count = 0;
  };

  const obs::Span span{"measure_expansion", "expansion"};
  // Local (non-static) metric handles: no hidden init-order coupling when
  // the sweep's first use races across workers.
  obs::Counter& bfs_runs = obs::metrics_counter("expansion.bfs_runs");
  obs::Histogram& frontier =
      obs::metrics_histogram("expansion.bfs_frontier");

  obs::ProgressMeter progress{"expansion sources",
                              static_cast<std::uint64_t>(sources.size())};

  // Per-worker state: a reusable direction-optimizing BFS workspace. The
  // per-source result is the BFS level-size vector, serialized as the sweep
  // payload; aggregation happens serially afterwards in index order, so a
  // resumed run folds exactly the same integers in exactly the same order.
  struct WorkerState {
    std::vector<FrontierBfs> runner;  // 0 or 1 entries; lazily constructed
  };
  const std::uint32_t workers = parallel::plan_workers(sources.size());
  std::vector<WorkerState> states(workers);

  exec::SweepOptions sweep;
  sweep.kind = "measure_expansion";
  sweep.fault_site = "expansion";
  sweep.token = exec::process_token();
  sweep.fingerprint = exec::fingerprint(
      {n, g.num_edges(), sources.size(), options.num_sources, options.seed,
       exec::graph_fingerprint(g)});
  const exec::SweepResult swept = exec::run_sweep(
      sources.size(), sweep, [&](std::size_t i, std::uint32_t worker) {
        WorkerState& state = states[worker];
        if (state.runner.empty()) state.runner.emplace_back(g);
        const BfsResult& result = state.runner.front().run(sources[i]);
        bfs_runs.add(1);
        progress.tick();
        json::Array levels;
        levels.reserve(result.level_sizes.size());
        for (const std::uint64_t level_size : result.level_sizes) {
          frontier.observe(static_cast<double>(level_size));
          levels.push_back(
              json::Value::integer(static_cast<std::int64_t>(level_size)));
        }
        return json::Value::array(std::move(levels)).dump();
      });

  ExpansionProfile out;
  std::map<std::uint64_t, Accumulator> by_size;
  std::uint32_t sources_used = 0;
  // Diagnostics (SNTRUST_DIAG): per-source min-alpha samples give a CI over
  // the sampled-source estimate, and the running mean traced per source
  // shows how fast the estimate settles as the sample grows. Both fold in
  // the same serial index order as the aggregate itself.
  const bool diag = obs::diag_enabled();
  obs::ConvergenceTrace alpha_trace;
  double alpha_sum = 0.0, alpha_sumsq = 0.0;
  std::uint64_t alpha_count = 0;
  for (const std::string& payload : swept.payloads) {
    if (payload.empty()) continue;  // failed source: dropped from aggregate
    ++sources_used;
    const json::Value value = json::Value::parse(payload);
    std::vector<std::uint64_t> levels;
    levels.reserve(value.as_array().size());
    for (const json::Value& v : value.as_array())
      levels.push_back(static_cast<std::uint64_t>(v.as_int()));
    if (levels.empty()) continue;
    out.max_depth = std::max(out.max_depth,
                             static_cast<std::uint32_t>(levels.size() - 1));
    std::uint64_t envelope = 0;
    double source_min_alpha = -1.0;
    for (std::size_t j = 0; j + 1 < levels.size(); ++j) {
      envelope += levels[j];
      const std::uint64_t neighbors = levels[j + 1];
      Accumulator& acc = by_size[envelope];
      if (acc.count == 0) {
        acc.min = acc.max = neighbors;
      } else {
        acc.min = std::min(acc.min, neighbors);
        acc.max = std::max(acc.max, neighbors);
      }
      acc.sum += neighbors;
      ++acc.count;
      if (diag && envelope > 0 && envelope <= n / 2) {
        const double alpha = static_cast<double>(neighbors) /
                             static_cast<double>(envelope);
        if (source_min_alpha < 0.0 || alpha < source_min_alpha)
          source_min_alpha = alpha;
      }
    }
    if (diag && source_min_alpha >= 0.0) {
      alpha_sum += source_min_alpha;
      alpha_sumsq += source_min_alpha * source_min_alpha;
      ++alpha_count;
      alpha_trace.add(alpha_sum / static_cast<double>(alpha_count));
    }
  }
  if (diag && alpha_count > 0) {
    obs::DiagRegistry::instance().record_trace(obs::summarize_trace(
        "expansion.alpha", 0, alpha_trace, /*converged=*/true));
    obs::DiagRegistry::instance().record_estimate(
        "expansion.min_alpha",
        obs::mean_ci95(alpha_sum, alpha_sumsq, alpha_count));
  }

  out.sources_used = sources_used;
  out.points.reserve(by_size.size());
  for (const auto& [size, acc] : by_size) {
    ExpansionPoint point;
    point.set_size = size;
    point.min_neighbors = acc.min;
    point.max_neighbors = acc.max;
    point.mean_neighbors =
        static_cast<double>(acc.sum) / static_cast<double>(acc.count);
    point.observations = acc.count;
    out.points.push_back(point);
  }
  return out;
}

}  // namespace sntrust

// Whole-graph expansion measurement: sweep sources, aggregate the
// (envelope size, neighbour count) observations (paper Figs. 3 and 4).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "graph/graph.hpp"

namespace sntrust {

struct ExpansionOptions {
  /// Number of source vertices. 0 means "every vertex" (the paper's O(nm)
  /// sweep); any other value samples that many distinct sources uniformly.
  std::uint32_t num_sources = 0;
  std::uint64_t seed = 1;
};

/// Aggregate statistics of the neighbour count for one unique envelope size.
struct ExpansionPoint {
  std::uint64_t set_size = 0;    ///< |S| = |Env_i|
  std::uint64_t min_neighbors = 0;
  std::uint64_t max_neighbors = 0;
  double mean_neighbors = 0.0;   ///< expected |N(S)| over observations
  std::uint64_t observations = 0;
  /// Expected expansion factor alpha = mean_neighbors / set_size (Fig. 4).
  double mean_alpha() const {
    return set_size == 0 ? 0.0
                         : mean_neighbors / static_cast<double>(set_size);
  }
};

/// The aggregated expansion measurement of a graph.
struct ExpansionProfile {
  /// Points keyed by unique envelope size, ascending.
  std::vector<ExpansionPoint> points;
  std::uint32_t sources_used = 0;
  std::uint32_t max_depth = 0;  ///< deepest BFS tree seen (<= diameter)

  /// Minimum observed expansion factor over all points with
  /// set_size <= n/2 — the empirical restricted expansion constant.
  double min_alpha(std::uint64_t n) const;
};

/// Sweeps sources and aggregates per-unique-set-size statistics. Requires a
/// connected graph (throws std::invalid_argument otherwise).
ExpansionProfile measure_expansion(const Graph& g,
                                   const ExpansionOptions& options = {});

}  // namespace sntrust

// Per-source envelope expansion (paper Sec. III-D).
//
// For a core (source) vertex, the envelope Env_i is the ball of radius i in
// hop distance; its expansion Exp_i is the next BFS level. The expansion
// factor is alpha_i = L_{i+1} / sum_{j<=i} L_j (Eq. 4). This is the
// restricted, connected-set expansion GateKeeper assumes, measurable with a
// linear number of BFS trees instead of the exponential general vertex
// expansion.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace sntrust {

class FrontierBfs;

/// Expansion profile rooted at one source vertex.
struct EnvelopeProfile {
  VertexId source = 0;
  /// level_sizes[i] = L_i (level_sizes[0] == 1).
  std::vector<std::uint64_t> level_sizes;
  /// envelope_sizes[i] = |Env_i| = sum_{j<=i} L_j.
  std::vector<std::uint64_t> envelope_sizes;
  /// neighbor_counts[i] = |Exp_i| = L_{i+1} (0 at the last level).
  std::vector<std::uint64_t> neighbor_counts;
  /// alpha[i] = neighbor_counts[i] / envelope_sizes[i].
  std::vector<double> alpha;
};

/// BFS-based envelope profile from `source`. Runs one direction-optimizing
/// BFS (graph/frontier_bfs.hpp) over the whole graph.
EnvelopeProfile envelope_profile(const Graph& g, VertexId source);

/// Same, reusing a caller-owned BFS workspace: sweeps over many sources skip
/// the per-call O(n) workspace construction.
EnvelopeProfile envelope_profile(const Graph& g, VertexId source,
                                 FrontierBfs& runner);

/// Builds an envelope profile from precomputed BFS level sizes (shared with
/// BfsRunner so sweeps over all sources reuse one workspace).
EnvelopeProfile envelope_from_levels(VertexId source,
                                     const std::vector<std::uint64_t>& levels);

}  // namespace sntrust

#include "expansion/brute_force.hpp"

#include <limits>
#include <stdexcept>

namespace sntrust {

namespace {

std::uint32_t popcount(std::uint32_t x) { return __builtin_popcount(x); }

/// Neighbour count |N(S)| for the bitmask S.
std::uint32_t boundary_size(const Graph& g, std::uint32_t mask) {
  std::uint32_t boundary = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if ((mask >> v) & 1u) {
      for (const VertexId w : g.neighbors_unchecked(v))
        if (((mask >> w) & 1u) == 0) boundary |= 1u << w;
    }
  }
  return popcount(boundary);
}

bool mask_connected(const Graph& g, std::uint32_t mask) {
  if (mask == 0) return false;
  const auto first = static_cast<VertexId>(__builtin_ctz(mask));
  std::uint32_t seen = 1u << first;
  std::uint32_t frontier = seen;
  while (frontier != 0) {
    std::uint32_t next = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if ((frontier >> v) & 1u) {
        for (const VertexId w : g.neighbors_unchecked(v)) {
          const std::uint32_t bit = 1u << w;
          if ((mask & bit) != 0 && (seen & bit) == 0) next |= bit;
        }
      }
    }
    seen |= next;
    frontier = next;
  }
  return seen == mask;
}

double expansion_over_masks(const Graph& g, bool require_connected) {
  const VertexId n = g.num_vertices();
  if (n == 0)
    throw std::invalid_argument("vertex expansion: empty graph");
  if (n > 24)
    throw std::invalid_argument("vertex expansion: n must be <= 24");
  const std::uint32_t all = n == 32 ? 0xFFFFFFFFu : (1u << n) - 1;
  double best = std::numeric_limits<double>::infinity();
  for (std::uint32_t mask = 1; mask <= all; ++mask) {
    const std::uint32_t size = popcount(mask);
    if (size == 0 || size > n / 2) continue;
    if (require_connected && !mask_connected(g, mask)) continue;
    const double ratio =
        static_cast<double>(boundary_size(g, mask)) / size;
    if (ratio < best) best = ratio;
  }
  return best;
}

}  // namespace

double exact_vertex_expansion(const Graph& g) {
  return expansion_over_masks(g, /*require_connected=*/false);
}

double exact_connected_vertex_expansion(const Graph& g) {
  return expansion_over_masks(g, /*require_connected=*/true);
}

}  // namespace sntrust

// Exact vertex expansion by exhaustive enumeration (Eq. 3) — exponential in
// n, usable only on tiny graphs. Serves as the test oracle for the
// BFS-envelope estimator and to demonstrate why GateKeeper restricts S to
// connected sets.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace sntrust {

/// alpha = min over nonempty S with |S| <= n/2 of |N(S)| / |S|, where N(S)
/// is the set of vertices outside S adjacent to S (Eq. 3).
/// Preconditions: 1 <= n <= 24 (throws std::invalid_argument beyond that).
double exact_vertex_expansion(const Graph& g);

/// Same minimum restricted to *connected* S — GateKeeper's restriction,
/// which the envelope method measures a further restriction of.
double exact_connected_vertex_expansion(const Graph& g);

}  // namespace sntrust

#include "parallel/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/cancel.hpp"
#include "exec/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "util/env.hpp"

namespace sntrust::parallel {

namespace {

constexpr std::uint32_t kMaxThreads = 256;

std::uint32_t env_default_threads() {
  const std::int64_t configured = env_int("SNTRUST_THREADS", 0);
  std::uint32_t threads;
  if (configured > 0) {
    threads = static_cast<std::uint32_t>(configured);
  } else {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  return std::min(threads, kMaxThreads);
}

std::atomic<std::uint32_t> g_override{0};

/// Set while a thread is executing chunks of some region; nested regions on
/// that thread run inline to keep chunk-to-slot binding (and avoid
/// deadlocking the single in-flight job the pool supports).
thread_local bool t_in_region = false;

/// One parallel region in flight. Held by shared_ptr so pool threads that
/// wake late (after every chunk is claimed) can still touch the claim
/// counter safely after the submitting caller returned.
struct Job {
  const ChunkFn* fn = nullptr;
  std::size_t begin = 0;
  std::size_t items = 0;
  std::uint32_t workers = 0;
  std::uint64_t fault_base = 0;  ///< region id * kMaxThreads, for fault_point
  std::atomic<std::uint32_t> next_slot{0};
  std::atomic<std::uint32_t> completed{0};
  std::atomic<std::uint64_t> busy_ns{0};   ///< summed chunk wall-clock
  std::vector<std::exception_ptr> errors;  ///< one entry per worker slot
};

class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  /// Runs `job` (workers >= 2): hands chunks to pool threads, participates
  /// from the calling thread, and returns once all chunks completed.
  void run(const std::shared_ptr<Job>& job) {
    // One job in flight at a time; concurrent submitters queue up here.
    std::lock_guard<std::mutex> submit_lock(submit_mutex_);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      while (threads_.size() + 1 < job->workers &&
             threads_.size() + 1 < kMaxThreads)
        threads_.emplace_back([this] { worker_main(); });
      // Pool size including the participating caller; grows monotonically.
      obs::Metrics::instance().gauge("parallel.pool_threads")
          .set(static_cast<double>(threads_.size() + 1));
      job_ = job;
      ++generation_;
    }
    work_cv_.notify_all();
    execute_chunks(*job);
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return job->completed.load(std::memory_order_acquire) == job->workers;
    });
    job_.reset();
  }

 private:
  ThreadPool() = default;

  void worker_main() {
    t_in_region = true;  // chunks this thread runs must not re-enter the pool
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      work_cv_.wait(lock,
                    [&] { return stop_ || (job_ && generation_ != seen); });
      if (stop_) return;
      seen = generation_;
      const std::shared_ptr<Job> job = job_;
      lock.unlock();
      execute_chunks(*job);
      lock.lock();
    }
  }

  /// Claims unclaimed chunks and runs them; used by pool threads and the
  /// submitting caller alike.
  void execute_chunks(Job& job) {
    const bool was_in_region = t_in_region;
    t_in_region = true;
    for (;;) {
      const std::uint32_t slot =
          job.next_slot.fetch_add(1, std::memory_order_relaxed);
      if (slot >= job.workers) break;
      // Static chunking: slot w owns the w-th contiguous cut of the range.
      const std::size_t base = job.items / job.workers;
      const std::size_t extra = job.items % job.workers;
      const std::size_t chunk_begin =
          job.begin + slot * base + std::min<std::size_t>(slot, extra);
      const std::size_t chunk_end = chunk_begin + base + (slot < extra ? 1 : 0);
      const obs::Stopwatch chunk_clock;
      try {
        // Chunk-boundary cancellation: a signal or expired deadline stops
        // unclaimed work before it starts; chunks already running drain.
        if (exec::process_cancel_requested())
          throw exec::CancelledError(exec::process_cancel_reason());
        exec::fault_point("pool", job.fault_base + slot);
        (*job.fn)(chunk_begin, chunk_end, slot);
      } catch (...) {
        job.errors[slot] = std::current_exception();
      }
      job.busy_ns.fetch_add(chunk_clock.elapsed_ns(),
                            std::memory_order_relaxed);
      // A finished chunk is progress the stall watchdog can see even when
      // the surrounding sweep's sources are long-running.
      obs::watchdog_heartbeat();
      if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          job.workers) {
        std::lock_guard<std::mutex> lock(mutex_);
        done_cv_.notify_all();
      }
    }
    t_in_region = was_in_region;
  }

  std::mutex submit_mutex_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  std::shared_ptr<Job> job_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace

std::uint32_t thread_count() {
  const std::uint32_t overridden = g_override.load(std::memory_order_relaxed);
  if (overridden != 0) return overridden;
  static const std::uint32_t from_env = env_default_threads();
  return from_env;
}

void set_thread_count(std::uint32_t count) {
  g_override.store(std::min(count, kMaxThreads), std::memory_order_relaxed);
}

ScopedThreadCount::ScopedThreadCount(std::uint32_t count)
    : previous_(g_override.load(std::memory_order_relaxed)) {
  set_thread_count(count);
}

ScopedThreadCount::~ScopedThreadCount() {
  g_override.store(previous_, std::memory_order_relaxed);
}

std::uint32_t plan_workers(std::size_t items, std::size_t grain) {
  if (items == 0) return 1;
  if (grain == 0) grain = 1;
  const std::size_t slots = (items + grain - 1) / grain;
  return static_cast<std::uint32_t>(
      std::min<std::size_t>(thread_count(), slots));
}

bool in_parallel_region() { return t_in_region; }

void run_chunks(std::size_t begin, std::size_t end, const ChunkFn& fn,
                std::size_t grain) {
  if (begin >= end) return;
  const std::size_t items = end - begin;
  const std::uint32_t workers =
      t_in_region ? 1 : plan_workers(items, grain);
  // Region ids sequence the "pool" fault-injection site so nested serial
  // regions present distinct indices instead of re-rolling index 0 forever.
  static std::atomic<std::uint64_t> region_seq{0};
  const std::uint64_t fault_base =
      region_seq.fetch_add(1, std::memory_order_relaxed) * kMaxThreads;
  if (workers <= 1) {
    if (exec::process_cancel_requested())
      throw exec::CancelledError(exec::process_cancel_reason());
    exec::fault_point("pool", fault_base);
    fn(begin, end, 0);
    obs::watchdog_heartbeat();
    return;
  }

  obs::metrics_counter("parallel.regions").add(1);
  obs::metrics_counter("parallel.chunks").add(workers);
  obs::metrics_counter("parallel.items").add(items);
  obs::Metrics::instance().gauge("parallel.workers").set(workers);

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->begin = begin;
  job->items = items;
  job->workers = workers;
  job->fault_base = fault_base;
  job->errors.assign(workers, nullptr);
  const obs::Stopwatch region_clock;
  ThreadPool::instance().run(job);
  const std::uint64_t region_ns = region_clock.elapsed_ns();
  // Pool utilization: fraction of the region's worker-seconds spent inside
  // chunks (1.0 = perfectly balanced, no idle workers). Lands in the run
  // report alongside parallel.region_ms so perf diffs see load imbalance.
  if (region_ns > 0) {
    const double busy =
        static_cast<double>(job->busy_ns.load(std::memory_order_relaxed));
    obs::Metrics::instance().gauge("parallel.utilization")
        .set(busy / (static_cast<double>(workers) *
                     static_cast<double>(region_ns)));
  }
  obs::metrics_histogram("parallel.region_ms").observe(region_ns / 1e6);
  for (const std::exception_ptr& error : job->errors)
    if (error) std::rethrow_exception(error);
}

}  // namespace sntrust::parallel

// Deterministic parallel loop primitives over the process-wide thread pool.
//
//   parallel_for(0, n, [&](std::size_t i, std::uint32_t worker) { ... });
//   sum = parallel_map_reduce<T>(0, n, init, map, reduce);
//
// `worker` is the static chunk slot in [0, plan_workers(n, grain)); use it
// to index per-worker scratch buffers (each slot is executed by exactly one
// thread). See thread_pool.hpp for the determinism rules; in short, write
// results into slots indexed by `i`, seed per-item RNGs with
// stream_seed(base, i), and merge per-worker state in ascending worker
// order with exactly associative operations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace sntrust::parallel {

/// Runs body(i, worker) for every i in [begin, end), statically chunked
/// over the pool. `grain` is the minimum number of items per worker: raise
/// it for cheap bodies (e.g. matvec rows) so tiny ranges stay inline.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                  std::size_t grain = 1) {
  run_chunks(
      begin, end,
      [&body](std::size_t chunk_begin, std::size_t chunk_end,
              std::uint32_t worker) {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) body(i, worker);
      },
      grain);
}

/// Folds map(i) over [begin, end): each worker reduces its chunk into a
/// private accumulator seeded with `init`, then the per-worker partials are
/// reduced in ascending worker order. Bitwise thread-count invariance
/// requires `reduce` to be exactly associative (integer sums, min/max, ...).
template <typename T, typename Map, typename Reduce>
T parallel_map_reduce(std::size_t begin, std::size_t end, T init, Map&& map,
                      Reduce&& reduce, std::size_t grain = 1) {
  if (begin >= end) return init;
  const std::uint32_t workers =
      in_parallel_region() ? 1 : plan_workers(end - begin, grain);
  std::vector<T> partials(workers, init);
  run_chunks(
      begin, end,
      [&](std::size_t chunk_begin, std::size_t chunk_end,
          std::uint32_t worker) {
        T acc = partials[worker];
        for (std::size_t i = chunk_begin; i < chunk_end; ++i)
          acc = reduce(std::move(acc), map(i));
        partials[worker] = std::move(acc);
      },
      grain);
  T result = std::move(partials[0]);
  for (std::uint32_t w = 1; w < workers; ++w)
    result = reduce(std::move(result), std::move(partials[w]));
  return result;
}

}  // namespace sntrust::parallel

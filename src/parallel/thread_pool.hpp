// Process-wide thread pool behind the per-source measurement sweeps.
//
// The pool is created lazily on the first parallel region that wants more
// than one worker; its size comes from SNTRUST_THREADS (default
// hardware_concurrency, `1` = fully serial fallback, no threads spawned).
// Work is split by *static chunking*: a range of `items` work items is cut
// into `plan_workers(items)` contiguous chunks and chunk w always runs as
// worker slot w, so per-worker scratch buffers are touched by exactly one
// thread per region. Determinism rule: a sweep is bitwise identical for any
// thread count iff (a) each work item derives its randomness only from its
// index (see stream_seed in util/rng.hpp), (b) results are written into
// pre-sized slots indexed by item position, and (c) any cross-worker merge
// is performed in ascending worker order using exactly associative
// operations (integer sums, min/max, disjoint writes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace sntrust::parallel {

/// Upper bound on workers per region, resolved from the runtime override
/// (set_thread_count) or else SNTRUST_THREADS / hardware_concurrency.
/// Always >= 1; 1 means fully serial (parallel regions run inline).
std::uint32_t thread_count();

/// Runtime override of the worker cap; 0 restores the environment default.
/// The pool never shrinks: threads already spawned stay parked, but regions
/// use at most `count` workers.
void set_thread_count(std::uint32_t count);

/// RAII override of the worker cap; restores the previous override on exit.
class ScopedThreadCount {
 public:
  explicit ScopedThreadCount(std::uint32_t count);
  ~ScopedThreadCount();
  ScopedThreadCount(const ScopedThreadCount&) = delete;
  ScopedThreadCount& operator=(const ScopedThreadCount&) = delete;

 private:
  std::uint32_t previous_;
};

/// Number of worker slots a parallel region over `items` work items will
/// use, with at least `grain` items per slot: callers size per-worker
/// scratch arrays with this. Always in [1, thread_count()].
std::uint32_t plan_workers(std::size_t items, std::size_t grain = 1);

/// True while the calling thread is executing inside a parallel region
/// (pool worker or participating caller). Nested regions run inline.
bool in_parallel_region();

/// fn(chunk_begin, chunk_end, worker) for one static chunk of the range.
using ChunkFn =
    std::function<void(std::size_t, std::size_t, std::uint32_t)>;

/// Splits [begin, end) into plan_workers(end - begin, grain) contiguous
/// chunks and runs each exactly once; chunk w runs as worker slot w. The
/// caller participates and blocks until every chunk finished. If chunks
/// threw, the lowest-slot exception is rethrown after the region completes
/// (the remaining chunks still run). Nested calls execute inline, serially,
/// on the calling worker.
void run_chunks(std::size_t begin, std::size_t end, const ChunkFn& fn,
                std::size_t grain = 1);

}  // namespace sntrust::parallel

#include "serve/trust_service.hpp"

#include <chrono>
#include <stdexcept>

#include "graph/io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel.hpp"
#include "util/env.hpp"

namespace sntrust::serve {

/// Per-submission completion latch shared by every request of one
/// ask/ask_batch call; lives on the client's stack.
struct Ticket {
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t remaining = 0;
};

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint32_t resolve_batch_size(std::uint32_t requested) {
  if (requested != 0) return requested;
  const std::int64_t value = env_int("SNTRUST_SERVE_BATCH", 256);
  return value < 1 ? 1 : static_cast<std::uint32_t>(value);
}

std::uint32_t resolve_queue_capacity(std::uint32_t requested) {
  if (requested != 0) return requested;
  const std::int64_t value = env_int("SNTRUST_SERVE_QUEUE_CAP", 4096);
  return value < 1 ? 1 : static_cast<std::uint32_t>(value);
}

// The four per-artifact answer kernels. answer_uncached feeds them freshly
// computed artifacts and the cached/batched paths feed them cache-resident
// ones, so all serving paths are bitwise identical by construction.

Answer answer_sybilrank(const SybilRankArtifact& a, VertexId v, VertexId n) {
  Answer answer;
  answer.status = QueryStatus::kOk;
  answer.value = a.scores[v];
  answer.percentile = 1.0 - static_cast<double>(a.rank_of[v]) /
                                static_cast<double>(n);
  answer.admitted = a.rank_of[v] < a.admit_rank;
  return answer;
}

Answer answer_gatekeeper(const GateKeeperArtifact& a, VertexId v) {
  Answer answer;
  answer.status = QueryStatus::kOk;
  answer.value = static_cast<double>(a.admissions[v]);
  answer.percentile = static_cast<double>(a.admissions[v]) /
                      static_cast<double>(a.num_distributers);
  answer.admitted = a.admissions[v] >= a.threshold;
  return answer;
}

Answer answer_coreness(const CorenessArtifact& a, VertexId v) {
  Answer answer;
  answer.status = QueryStatus::kOk;
  answer.value = static_cast<double>(a.coreness[v]);
  answer.percentile = a.percentile[v];
  answer.admitted = false;
  return answer;
}

Answer answer_landmark(const LandmarkArtifact& a, const Graph& g, VertexId v) {
  Answer answer;
  answer.status = QueryStatus::kOk;
  answer.value = a.distribution[v];
  const double degree = static_cast<double>(g.degree_unchecked(v));
  answer.percentile =
      degree == 0.0
          ? 0.0
          : a.distribution[v] * 2.0 *
                static_cast<double>(g.num_edges()) / degree;
  answer.admitted = false;
  return answer;
}

}  // namespace

TrustService::TrustService(Graph graph, Options options)
    : graph_(std::move(graph)),
      options_(std::move(options)),
      batch_size_(resolve_batch_size(options_.batch_size)),
      queue_capacity_(resolve_queue_capacity(options_.queue_capacity)),
      cache_(options_.cache_capacity),
      query_ms_(obs::metrics_quantile("serve.query_ms")),
      query_ms_window_(obs::metrics_windowed("serve.query_ms")),
      batch_occupancy_(obs::metrics_histogram("serve.batch_occupancy")),
      queries_served_(obs::metrics_counter("serve.queries")),
      queries_cancelled_(obs::metrics_counter("serve.cancelled")),
      batches_(obs::metrics_counter("serve.batches")),
      queue_depth_(obs::Metrics::instance().gauge("serve.queue_depth")),
      artifact_hits_(obs::metrics_counter("serve.cache_hits")) {
  if (graph_.num_vertices() == 0 || graph_.num_edges() == 0)
    throw std::invalid_argument("TrustService: graph must have edges");
  if (options_.config.seeds.empty())
    throw std::invalid_argument("TrustService: config needs >= 1 seed");
  for (const VertexId s : options_.config.seeds)
    if (s >= graph_.num_vertices())
      throw std::invalid_argument("TrustService: seed out of range");
  if (options_.config.controller >= graph_.num_vertices())
    throw std::invalid_argument("TrustService: controller out of range");
  ring_.resize(queue_capacity_);
  if (options_.precompute) warm();
}

TrustService TrustService::open(const std::string& path, Options options) {
  return TrustService{read_graph_auto(path), std::move(options)};
}

TrustService::~TrustService() { stop(); }

void TrustService::warm() { ensure_resolved(); }

void TrustService::ensure_resolved() {
  {
    std::shared_lock<std::shared_mutex> lock(resolved_mutex_);
    if (resolved_.sybilrank != nullptr &&
        resolved_.cache_version == cache_.version()) {
      artifact_hits_.add();
      return;
    }
  }
  std::unique_lock<std::shared_mutex> lock(resolved_mutex_);
  resolve_locked();
}

void TrustService::resolve_locked() {
  if (resolved_.sybilrank != nullptr &&
      resolved_.cache_version == cache_.version())
    return;
  obs::Span span{"serve.resolve_artifacts", "serve"};
  // Snapshot the version *before* resolving: an invalidation racing with
  // the computation leaves the stored version stale, so the next query
  // re-resolves instead of serving dropped artifacts.
  const std::uint64_t version = cache_.version();
  const std::uint64_t config_fp = options_.config.fingerprint();
  const std::uint64_t graph_fp = graph_.fingerprint();
  const auto key = [&](ArtifactKind kind) {
    return ArtifactKey{kind, config_fp, graph_fp};
  };
  resolved_.sybilrank = cache_.get_or_compute<SybilRankArtifact>(
      key(ArtifactKind::kSybilRank),
      [&] { return compute_sybilrank_artifact(graph_, options_.config); });
  resolved_.gatekeeper = cache_.get_or_compute<GateKeeperArtifact>(
      key(ArtifactKind::kGateKeeper),
      [&] { return compute_gatekeeper_artifact(graph_, options_.config); });
  resolved_.coreness = cache_.get_or_compute<CorenessArtifact>(
      key(ArtifactKind::kCoreness),
      [&] { return compute_coreness_artifact(graph_); });
  resolved_.landmark = cache_.get_or_compute<LandmarkArtifact>(
      key(ArtifactKind::kLandmark),
      [&] { return compute_landmark_artifact(graph_, options_.config); });
  resolved_.cache_version = version;
}

Answer TrustService::answer_resolved(const Resolved& resolved,
                                     const Query& query) const {
  if (query.vertex >= graph_.num_vertices()) {
    Answer answer;
    answer.status = QueryStatus::kInvalidVertex;
    answer.admitted = false;
    answer.value = 0.0;
    answer.percentile = 0.0;
    return answer;
  }
  switch (query.kind) {
    case QueryKind::kAdmission:
    case QueryKind::kTrustScore:
      return query.defense == Defense::kGateKeeper
                 ? answer_gatekeeper(*resolved.gatekeeper, query.vertex)
                 : answer_sybilrank(*resolved.sybilrank, query.vertex,
                                    graph_.num_vertices());
    case QueryKind::kCoreness:
      return answer_coreness(*resolved.coreness, query.vertex);
    case QueryKind::kLandmark:
      return answer_landmark(*resolved.landmark, graph_, query.vertex);
  }
  Answer answer;
  answer.status = QueryStatus::kInvalidVertex;
  return answer;
}

Answer TrustService::answer(const Query& query) {
  const std::uint64_t start = now_ns();
  Answer answer;
  for (;;) {
    ensure_resolved();
    std::shared_lock<std::shared_mutex> lock(resolved_mutex_);
    // replace_graph can clear resolved_ between ensure_resolved and this
    // lock; retry instead of dereferencing the cleared pointers.
    if (resolved_.sybilrank == nullptr) continue;
    answer = answer_resolved(resolved_, query);
    break;
  }
  const double ms = static_cast<double>(now_ns() - start) * 1e-6;
  query_ms_.record(ms);
  query_ms_window_.record(ms);
  queries_served_.add();
  return answer;
}

void TrustService::answer_batch(std::span<const Query> queries,
                                std::span<Answer> answers) {
  if (queries.size() != answers.size())
    throw std::invalid_argument("answer_batch: span sizes differ");
  for (;;) {
    ensure_resolved();
    std::shared_lock<std::shared_mutex> lock(resolved_mutex_);
    if (resolved_.sybilrank == nullptr) continue;  // raced with replace_graph
    for (std::size_t i = 0; i < queries.size(); ++i)
      answers[i] = answer_resolved(resolved_, queries[i]);
    break;
  }
  queries_served_.add(queries.size());
}

Answer TrustService::answer_uncached(const Query& query) const {
  if (query.vertex >= graph_.num_vertices()) {
    Answer answer;
    answer.status = QueryStatus::kInvalidVertex;
    answer.admitted = false;
    return answer;
  }
  switch (query.kind) {
    case QueryKind::kAdmission:
    case QueryKind::kTrustScore:
      if (query.defense == Defense::kGateKeeper)
        return answer_gatekeeper(
            compute_gatekeeper_artifact(graph_, options_.config),
            query.vertex);
      return answer_sybilrank(
          compute_sybilrank_artifact(graph_, options_.config), query.vertex,
          graph_.num_vertices());
    case QueryKind::kCoreness:
      return answer_coreness(compute_coreness_artifact(graph_), query.vertex);
    case QueryKind::kLandmark:
      return answer_landmark(
          compute_landmark_artifact(graph_, options_.config), graph_,
          query.vertex);
  }
  Answer answer;
  answer.status = QueryStatus::kInvalidVertex;
  return answer;
}

bool TrustService::cancelled() const {
  return cancelled_.load(std::memory_order_relaxed) ||
         options_.token.cancelled();
}

void TrustService::start() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  if (running_) return;
  stopping_ = false;
  running_ = true;
  drain_thread_ = std::thread([this] { drain_loop(); });
}

void TrustService::stop() {
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (!running_) return;
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  drain_thread_.join();
  std::unique_lock<std::mutex> lock(queue_mutex_);
  running_ = false;
  stopping_ = false;
}

bool TrustService::running() const {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  return running_;
}

Answer TrustService::ask(const Query& query) {
  Answer answer;
  ask_batch(std::span<const Query>{&query, 1}, std::span<Answer>{&answer, 1});
  return answer;
}

std::size_t TrustService::ask_batch(std::span<const Query> queries,
                                    std::span<Answer> answers) {
  if (queries.size() != answers.size())
    throw std::invalid_argument("ask_batch: span sizes differ");
  if (queries.empty()) return 0;

  if (cancelled()) {
    for (Answer& answer : answers) {
      answer = Answer{};
      answer.status = QueryStatus::kCancelled;
    }
    queries_cancelled_.add(queries.size());
    return 0;
  }

  Ticket ticket;
  ticket.remaining = queries.size();
  std::size_t refused = 0;
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (!running_) {
      lock.unlock();
      answer_batch(queries, answers);
      std::size_t served = 0;
      for (const Answer& answer : answers)
        if (answer.status != QueryStatus::kCancelled) ++served;
      return served;
    }
    for (std::size_t i = 0; i < queries.size(); ++i) {
      queue_not_full_.wait(lock, [&] {
        return ring_size_ < queue_capacity_ || stopping_ ||
               cancelled_.load(std::memory_order_relaxed);
      });
      if (stopping_ || cancelled_.load(std::memory_order_relaxed)) {
        // Exit-75-style partials: everything not yet enqueued completes
        // with an explicit kCancelled answer instead of blocking forever.
        for (std::size_t j = i; j < queries.size(); ++j) {
          answers[j] = Answer{};
          answers[j].status = QueryStatus::kCancelled;
          ++refused;
        }
        break;
      }
      Request& slot = ring_[(ring_head_ + ring_size_) % queue_capacity_];
      slot.query = queries[i];
      slot.answer = &answers[i];
      slot.ticket = &ticket;
      slot.enqueue_ns = now_ns();
      ++ring_size_;
      queue_not_empty_.notify_one();
    }
  }
  if (refused != 0) {
    queries_cancelled_.add(refused);
    std::unique_lock<std::mutex> tlock(ticket.mutex);
    ticket.remaining -= refused;
    if (ticket.remaining == 0) ticket.cv.notify_all();
  }
  {
    std::unique_lock<std::mutex> tlock(ticket.mutex);
    ticket.cv.wait(tlock, [&] { return ticket.remaining == 0; });
  }
  std::size_t served = 0;
  for (const Answer& answer : answers)
    if (answer.status != QueryStatus::kCancelled) ++served;
  return served;
}

void TrustService::drain_loop() {
  std::vector<Request> batch;
  batch.reserve(batch_size_);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      // Bounded waits so the loop notices a deadline/cancel even while the
      // queue is idle (cancellation is poll-based).
      queue_not_empty_.wait_for(lock, std::chrono::milliseconds(10), [&] {
        return ring_size_ > 0 || stopping_ ||
               cancelled_.load(std::memory_order_relaxed);
      });
      if (!cancelled_.load(std::memory_order_relaxed) &&
          options_.token.cancelled()) {
        cancelled_.store(true, std::memory_order_relaxed);
        // Blocked pushers must wake to refuse their remaining queries.
        queue_not_full_.notify_all();
      }
      if (ring_size_ == 0) {
        if (stopping_) return;  // draining shutdown: queue fully served
        continue;
      }
      const std::size_t take =
          ring_size_ < batch_size_ ? ring_size_ : batch_size_;
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(ring_[ring_head_]);
        ring_head_ = (ring_head_ + 1) % queue_capacity_;
        --ring_size_;
      }
      queue_depth_.set(static_cast<double>(ring_size_));
      queue_not_full_.notify_all();
    }
    serve_batch(batch);
    batch.clear();
  }
}

void TrustService::serve_batch(std::vector<Request>& batch) {
  batches_.add();
  batch_occupancy_.observe(static_cast<double>(batch.size()));
  if (cancelled_.load(std::memory_order_relaxed)) {
    // The cancellation arrived before this batch was popped: refuse it
    // explicitly (the batch already in flight when the deadline hit was
    // completed by the previous iteration — draining, never abandoning).
    for (Request& request : batch) {
      *request.answer = Answer{};
      request.answer->status = QueryStatus::kCancelled;
    }
    queries_cancelled_.add(batch.size());
  } else {
    std::shared_lock<std::shared_mutex> lock(resolved_mutex_, std::defer_lock);
    for (;;) {
      ensure_resolved();
      lock.lock();
      if (resolved_.sybilrank != nullptr) break;  // raced with replace_graph
      lock.unlock();
    }
    const std::uint64_t completed = now_ns();
    // Fan the batch out on the process pool; answers are independent pure
    // reads, so any grain/thread count serves bitwise-identical answers.
    parallel::parallel_for(
        0, batch.size(),
        [&](std::size_t i, std::uint32_t) {
          Request& request = batch[i];
          *request.answer = answer_resolved(resolved_, request.query);
          const double ms =
              static_cast<double>(completed - request.enqueue_ns) * 1e-6;
          query_ms_.record(ms);
          query_ms_window_.record(ms);
        },
        /*grain=*/64);
    queries_served_.add(batch.size());
  }
  for (Request& request : batch) {
    std::unique_lock<std::mutex> tlock(request.ticket->mutex);
    if (--request.ticket->remaining == 0) request.ticket->cv.notify_all();
  }
}

void TrustService::replace_graph(Graph graph) {
  if (graph.num_vertices() == 0 || graph.num_edges() == 0)
    throw std::invalid_argument("replace_graph: graph must have edges");
  std::unique_lock<std::shared_mutex> lock(resolved_mutex_);
  const std::uint64_t old_fp = graph_.fingerprint();
  graph_ = std::move(graph);
  cache_.invalidate_graph(old_fp);
  resolved_ = Resolved{};
}

}  // namespace sntrust::serve

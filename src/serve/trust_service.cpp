#include "serve/trust_service.hpp"

#include <chrono>
#include <stdexcept>

#include "dynamic/evolution.hpp"
#include "exec/fault.hpp"
#include "graph/io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel.hpp"
#include "util/env.hpp"

namespace sntrust::serve {

/// Per-submission completion latch shared by every request of one
/// ask/ask_batch call; lives on the client's stack.
struct Ticket {
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t remaining = 0;
};

namespace {

std::uint32_t resolve_batch_size(std::uint32_t requested) {
  if (requested != 0) return requested;
  const std::int64_t value = env_int("SNTRUST_SERVE_BATCH", 256);
  return value < 1 ? 1 : static_cast<std::uint32_t>(value);
}

std::uint32_t resolve_queue_capacity(std::uint32_t requested) {
  if (requested != 0) return requested;
  const std::int64_t value = env_int("SNTRUST_SERVE_QUEUE_CAP", 4096);
  return value < 1 ? 1 : static_cast<std::uint32_t>(value);
}

// The four per-artifact answer kernels. answer_uncached feeds them freshly
// computed artifacts and the cached/batched paths feed them cache-resident
// ones, so all serving paths are bitwise identical by construction. Each
// kernel derives n from the artifact itself, so a stale artifact computed
// against an earlier (smaller) graph epoch stays self-consistent.

Answer answer_sybilrank(const SybilRankArtifact& a, VertexId v) {
  Answer answer;
  answer.status = QueryStatus::kOk;
  answer.source = AnswerSource::kSybilRank;
  answer.value = a.scores[v];
  answer.percentile = 1.0 - static_cast<double>(a.rank_of[v]) /
                                static_cast<double>(a.rank_of.size());
  answer.admitted = a.rank_of[v] < a.admit_rank;
  return answer;
}

Answer answer_gatekeeper(const GateKeeperArtifact& a, VertexId v) {
  Answer answer;
  answer.status = QueryStatus::kOk;
  answer.source = AnswerSource::kGateKeeper;
  answer.value = static_cast<double>(a.admissions[v]);
  answer.percentile = static_cast<double>(a.admissions[v]) /
                      static_cast<double>(a.num_distributers);
  answer.admitted = a.admissions[v] >= a.threshold;
  return answer;
}

Answer answer_coreness(const CorenessArtifact& a, VertexId v) {
  Answer answer;
  answer.status = QueryStatus::kOk;
  answer.source = AnswerSource::kCoreness;
  answer.value = static_cast<double>(a.coreness[v]);
  answer.percentile = a.percentile[v];
  answer.admitted = false;
  return answer;
}

Answer answer_landmark(const LandmarkArtifact& a, const Graph& g, VertexId v) {
  Answer answer;
  answer.status = QueryStatus::kOk;
  answer.source = AnswerSource::kLandmark;
  answer.value = a.distribution[v];
  const double degree = static_cast<double>(g.degree_unchecked(v));
  answer.percentile =
      degree == 0.0
          ? 0.0
          : a.distribution[v] * 2.0 *
                static_cast<double>(g.num_edges()) / degree;
  answer.admitted = false;
  return answer;
}

constexpr AnswerSource to_source(ArtifactKind kind) {
  return static_cast<AnswerSource>(static_cast<std::uint8_t>(kind));
}

/// Degradation ladders: the order of artifact kinds a query's answer may
/// fall through when its primary kind is unavailable (DESIGN.md §16). The
/// two admission defenses back each other up before falling to coreness
/// (the paper's trust-vs-core-position correlation is exactly what makes
/// coreness a usable last-resort admission signal); landmark has no
/// admission peer, only coreness.
constexpr ArtifactKind kSybilLadder[] = {ArtifactKind::kSybilRank,
                                         ArtifactKind::kGateKeeper,
                                         ArtifactKind::kCoreness};
constexpr ArtifactKind kGateLadder[] = {ArtifactKind::kGateKeeper,
                                        ArtifactKind::kSybilRank,
                                        ArtifactKind::kCoreness};
constexpr ArtifactKind kCoreLadder[] = {ArtifactKind::kCoreness};
constexpr ArtifactKind kLandmarkLadder[] = {ArtifactKind::kLandmark,
                                            ArtifactKind::kCoreness};

std::span<const ArtifactKind> ladder_for(ArtifactKind primary) {
  switch (primary) {
    case ArtifactKind::kSybilRank:
      return kSybilLadder;
    case ArtifactKind::kGateKeeper:
      return kGateLadder;
    case ArtifactKind::kCoreness:
      return kCoreLadder;
    case ArtifactKind::kLandmark:
      return kLandmarkLadder;
  }
  return kCoreLadder;
}

}  // namespace

TrustService::TrustService(Graph graph, Options options)
    : graph_(std::move(graph)),
      options_(std::move(options)),
      batch_size_(resolve_batch_size(options_.batch_size)),
      queue_capacity_(resolve_queue_capacity(options_.queue_capacity)),
      cache_(options_.cache_capacity),
      breakers_{{CircuitBreaker{"sybilrank", options_.resilience.breaker},
                 CircuitBreaker{"gatekeeper", options_.resilience.breaker},
                 CircuitBreaker{"coreness", options_.resilience.breaker},
                 CircuitBreaker{"landmark", options_.resilience.breaker}}},
      retry_policy_{options_.resilience.retries, 500},
      shed_(options_.resilience.shed_ms),
      query_ms_(obs::metrics_quantile("serve.query_ms")),
      query_ms_window_(obs::metrics_windowed("serve.query_ms")),
      queue_ms_(obs::metrics_quantile("serve.queue_ms")),
      service_ms_(obs::metrics_quantile("serve.service_ms")),
      batch_occupancy_(obs::metrics_histogram("serve.batch_occupancy")),
      queries_served_(obs::metrics_counter("serve.queries")),
      queries_cancelled_(obs::metrics_counter("serve.cancelled")),
      queries_shed_(obs::metrics_counter("serve.shed")),
      queries_degraded_(obs::metrics_counter("serve.degraded")),
      queries_deadline_(obs::metrics_counter("serve.deadline_exceeded")),
      queries_unavailable_(obs::metrics_counter("serve.unavailable")),
      retries_(obs::metrics_counter("serve.retries")),
      batches_(obs::metrics_counter("serve.batches")),
      queue_depth_(obs::Metrics::instance().gauge("serve.queue_depth")),
      artifact_hits_(obs::metrics_counter("serve.cache_hits")) {
  if (graph_.num_vertices() == 0 || graph_.num_edges() == 0)
    throw std::invalid_argument("TrustService: graph must have edges");
  if (options_.config.seeds.empty())
    throw std::invalid_argument("TrustService: config needs >= 1 seed");
  for (const VertexId s : options_.config.seeds)
    if (s >= graph_.num_vertices())
      throw std::invalid_argument("TrustService: seed out of range");
  if (options_.config.controller >= graph_.num_vertices())
    throw std::invalid_argument("TrustService: controller out of range");
  graph_fp_ = graph_.fingerprint();
  ring_.resize(queue_capacity_);
  if (options_.precompute) warm();
}

TrustService TrustService::open(const std::string& path, Options options) {
  return TrustService{read_graph_auto(path), std::move(options)};
}

TrustService::~TrustService() {
  stop();
  wait_for_refresh();
  if (refresh_thread_.joinable()) refresh_thread_.join();
}

void TrustService::warm() { ensure_resolved(); }

bool TrustService::resolved_ready() const {
  if (!resolved_.attempted) return false;
  const bool version_ok = resolved_.cache_version == cache_.version();
  // Fast path: fully fresh at the current version — no clock, no flags.
  if (version_ok && resolved_.complete) return true;
  // A background refresh owns re-resolution after churn; keep serving the
  // demoted snapshot instead of re-warming inline under the write lock.
  if (refresh_running_.load(std::memory_order_acquire)) return true;
  if (!version_ok) return false;
  // Degraded steady state (breaker open): hold the current stale snapshot
  // until the earliest breaker probe is due; 0 means re-resolve now.
  const std::uint64_t probe = next_probe_ns_.load(std::memory_order_relaxed);
  return probe != 0 && steady_now_ns() < probe;
}

void TrustService::ensure_resolved() {
  {
    std::shared_lock<std::shared_mutex> lock(resolved_mutex_);
    if (resolved_ready()) {
      artifact_hits_.add();
      return;
    }
  }
  std::unique_lock<std::shared_mutex> lock(resolved_mutex_);
  resolve_locked();
}

template <typename T, typename Compute>
TrustService::ArtifactSlot<T> TrustService::resolve_slot(
    ArtifactKind kind, std::uint64_t config_fp, std::uint64_t graph_fp,
    Compute&& compute) {
  CircuitBreaker& brk = breaker(kind);
  const ArtifactKey key{kind, config_fp, graph_fp};
  const std::uint32_t attempts = options_.resilience.retries + 1;
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt != 0) {
      retries_.add();
      std::this_thread::sleep_for(std::chrono::nanoseconds(
          retry_policy_.backoff_ns(attempt,
                                   static_cast<std::uint64_t>(kind))));
    }
    // A resident artifact needs no breaker consultation — the lookup runs
    // no computation that could fail; the breaker gates computes only.
    const bool cached = cache_.contains(key);
    if (!cached && !brk.allow(steady_now_ns())) break;
    try {
      std::shared_ptr<const T> value = cache_.get_or_compute<T>(key, [&] {
        exec::fault_point("serve.artifact", artifact_fault_seq_.fetch_add(
                                                1, std::memory_order_relaxed));
        return compute();
      });
      const std::uint64_t now = steady_now_ns();
      if (!cached) brk.record_success(now);
      return ArtifactSlot<T>{std::move(value), true, now, graph_fp};
    } catch (const std::exception&) {
      brk.record_failure(steady_now_ns());
    }
  }
  // Compute unavailable: fall back to the last-good stale artifact for this
  // (kind, config) — possibly from an earlier graph epoch — if permitted.
  if (options_.resilience.stale_ms > 0.0) {
    if (auto stale = cache_.lookup_stale(kind, config_fp)) {
      return ArtifactSlot<T>{std::static_pointer_cast<const T>(stale->value),
                             false, stale->stored_ns, stale->graph_fp};
    }
  }
  return ArtifactSlot<T>{};
}

void TrustService::resolve_locked() {
  if (resolved_ready()) return;
  obs::Span span{"serve.resolve_artifacts", "serve"};
  // Snapshot the version *before* resolving: an invalidation racing with
  // the computation leaves the stored version stale, so the next query
  // re-resolves instead of serving dropped artifacts.
  const std::uint64_t version = cache_.version();
  const std::uint64_t config_fp = options_.config.fingerprint();
  const std::uint64_t graph_fp = graph_fp_;
  resolved_.sybilrank = resolve_slot<SybilRankArtifact>(
      ArtifactKind::kSybilRank, config_fp, graph_fp,
      [&] { return compute_sybilrank_artifact(graph_, options_.config); });
  resolved_.gatekeeper = resolve_slot<GateKeeperArtifact>(
      ArtifactKind::kGateKeeper, config_fp, graph_fp,
      [&] { return compute_gatekeeper_artifact(graph_, options_.config); });
  resolved_.coreness = resolve_slot<CorenessArtifact>(
      ArtifactKind::kCoreness, config_fp, graph_fp,
      [&] { return compute_coreness_artifact(graph_); });
  resolved_.landmark = resolve_slot<LandmarkArtifact>(
      ArtifactKind::kLandmark, config_fp, graph_fp,
      [&] { return compute_landmark_artifact(graph_, options_.config); });
  resolved_.cache_version = version;
  resolved_.attempted = true;
  resolved_.complete = resolved_.sybilrank.fresh && resolved_.gatekeeper.fresh &&
                       resolved_.coreness.fresh && resolved_.landmark.fresh;
  if (resolved_.complete) {
    next_probe_ns_.store(0, std::memory_order_relaxed);
  } else {
    // Hold this (partially) degraded snapshot until the earliest open
    // breaker admits its half-open probe; with no breaker open (failures
    // still under the threshold) retry on the next query.
    std::uint64_t probe = 0;
    for (CircuitBreaker& brk : breakers_) {
      const std::uint64_t p = brk.probe_at_ns();
      if (p != 0 && (probe == 0 || p < probe)) probe = p;
    }
    next_probe_ns_.store(probe, std::memory_order_relaxed);
  }
}

Answer TrustService::answer_degradable(const Resolved& resolved,
                                       const Query& query,
                                       ArtifactKind primary) const {
  // Fresh-primary fast path: no clock read, no ladder walk — this is every
  // answer of a healthy service, and it must stay allocation-free and
  // bitwise deterministic.
  const VertexId v = query.vertex;
  switch (primary) {
    case ArtifactKind::kSybilRank:
      if (resolved.sybilrank.fresh) return answer_sybilrank(*resolved.sybilrank.artifact, v);
      break;
    case ArtifactKind::kGateKeeper:
      if (resolved.gatekeeper.fresh) return answer_gatekeeper(*resolved.gatekeeper.artifact, v);
      break;
    case ArtifactKind::kCoreness:
      if (resolved.coreness.fresh) return answer_coreness(*resolved.coreness.artifact, v);
      break;
    case ArtifactKind::kLandmark:
      if (resolved.landmark.fresh) return answer_landmark(*resolved.landmark.artifact, graph_, v);
      break;
  }

  // Degraded path: walk the ladder, taking the first usable slot. A slot is
  // usable when it holds an artifact that covers this vertex and is either
  // fresh or within the configured staleness budget.
  const double stale_ms = options_.resilience.stale_ms;
  const std::uint64_t now = steady_now_ns();
  const auto age_ok = [&](bool fresh, std::uint64_t stored_ns) {
    if (fresh) return true;
    if (stale_ms <= 0.0) return false;
    return static_cast<double>(now - stored_ns) * 1e-6 <= stale_ms;
  };
  for (const ArtifactKind kind : ladder_for(primary)) {
    Answer answer;
    bool fresh = false;
    std::uint64_t stored_ns = 0;
    switch (kind) {
      case ArtifactKind::kSybilRank: {
        const auto& slot = resolved.sybilrank;
        if (!slot.artifact || v >= slot.artifact->scores.size() ||
            !age_ok(slot.fresh, slot.stored_ns))
          continue;
        answer = answer_sybilrank(*slot.artifact, v);
        fresh = slot.fresh;
        stored_ns = slot.stored_ns;
        break;
      }
      case ArtifactKind::kGateKeeper: {
        const auto& slot = resolved.gatekeeper;
        if (!slot.artifact || v >= slot.artifact->admissions.size() ||
            !age_ok(slot.fresh, slot.stored_ns))
          continue;
        answer = answer_gatekeeper(*slot.artifact, v);
        fresh = slot.fresh;
        stored_ns = slot.stored_ns;
        break;
      }
      case ArtifactKind::kCoreness: {
        const auto& slot = resolved.coreness;
        if (!slot.artifact || v >= slot.artifact->coreness.size() ||
            !age_ok(slot.fresh, slot.stored_ns))
          continue;
        answer = answer_coreness(*slot.artifact, v);
        // Standing in for an admission defense, coreness admits the top
        // accept_fraction of its ECDF (the trust/core-position correlation).
        if (query.kind == QueryKind::kAdmission ||
            query.kind == QueryKind::kTrustScore)
          answer.admitted =
              answer.percentile >= 1.0 - options_.config.accept_fraction;
        fresh = slot.fresh;
        stored_ns = slot.stored_ns;
        break;
      }
      case ArtifactKind::kLandmark: {
        const auto& slot = resolved.landmark;
        // A stale landmark artifact mixes its walk mass with the *current*
        // graph's degrees, which is incoherent — only serve it when it was
        // computed against the graph being served.
        if (!slot.artifact || v >= slot.artifact->distribution.size() ||
            slot.graph_fp != graph_fp_ || !age_ok(slot.fresh, slot.stored_ns))
          continue;
        answer = answer_landmark(*slot.artifact, graph_, v);
        fresh = slot.fresh;
        stored_ns = slot.stored_ns;
        break;
      }
    }
    answer.degraded = true;
    answer.staleness_ms =
        fresh ? 0.0 : static_cast<double>(now - stored_ns) * 1e-6;
    queries_degraded_.add();
    return answer;
  }

  // Ladder exhausted: nothing fresh, nothing stale-enough. Refuse honestly.
  Answer answer;
  answer.status = QueryStatus::kOverloaded;
  answer.source = to_source(primary);
  queries_unavailable_.add();
  return answer;
}

Answer TrustService::answer_resolved(const Resolved& resolved,
                                     const Query& query) const {
  if (query.vertex >= graph_.num_vertices()) {
    Answer answer;
    answer.status = QueryStatus::kInvalidVertex;
    answer.admitted = false;
    answer.value = 0.0;
    answer.percentile = 0.0;
    return answer;
  }
  ArtifactKind primary = ArtifactKind::kCoreness;
  switch (query.kind) {
    case QueryKind::kAdmission:
    case QueryKind::kTrustScore:
      primary = query.defense == Defense::kGateKeeper
                    ? ArtifactKind::kGateKeeper
                    : ArtifactKind::kSybilRank;
      break;
    case QueryKind::kCoreness:
      primary = ArtifactKind::kCoreness;
      break;
    case QueryKind::kLandmark:
      primary = ArtifactKind::kLandmark;
      break;
  }
  return answer_degradable(resolved, query, primary);
}

Answer TrustService::answer(const Query& query) {
  const std::uint64_t start = steady_now_ns();
  Answer answer;
  for (;;) {
    ensure_resolved();
    std::shared_lock<std::shared_mutex> lock(resolved_mutex_);
    // replace_graph can clear resolved_ between ensure_resolved and this
    // lock; retry instead of answering from the cleared snapshot.
    if (!resolved_.attempted) continue;
    answer = answer_resolved(resolved_, query);
    break;
  }
  const double ms = static_cast<double>(steady_now_ns() - start) * 1e-6;
  query_ms_.record(ms);
  query_ms_window_.record(ms);
  queries_served_.add();
  return answer;
}

void TrustService::answer_batch(std::span<const Query> queries,
                                std::span<Answer> answers) {
  if (queries.size() != answers.size())
    throw std::invalid_argument("answer_batch: span sizes differ");
  for (;;) {
    ensure_resolved();
    std::shared_lock<std::shared_mutex> lock(resolved_mutex_);
    if (!resolved_.attempted) continue;  // raced with replace_graph
    for (std::size_t i = 0; i < queries.size(); ++i)
      answers[i] = answer_resolved(resolved_, queries[i]);
    break;
  }
  queries_served_.add(queries.size());
}

Answer TrustService::answer_uncached(const Query& query) const {
  if (query.vertex >= graph_.num_vertices()) {
    Answer answer;
    answer.status = QueryStatus::kInvalidVertex;
    answer.admitted = false;
    return answer;
  }
  switch (query.kind) {
    case QueryKind::kAdmission:
    case QueryKind::kTrustScore:
      if (query.defense == Defense::kGateKeeper)
        return answer_gatekeeper(
            compute_gatekeeper_artifact(graph_, options_.config),
            query.vertex);
      return answer_sybilrank(
          compute_sybilrank_artifact(graph_, options_.config), query.vertex);
    case QueryKind::kCoreness:
      return answer_coreness(compute_coreness_artifact(graph_), query.vertex);
    case QueryKind::kLandmark:
      return answer_landmark(
          compute_landmark_artifact(graph_, options_.config), graph_,
          query.vertex);
  }
  Answer answer;
  answer.status = QueryStatus::kInvalidVertex;
  return answer;
}

bool TrustService::cancelled() const {
  return cancelled_.load(std::memory_order_relaxed) ||
         options_.token.cancelled();
}

void TrustService::start() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  if (running_) return;
  stopping_ = false;
  running_ = true;
  drain_thread_ = std::thread([this] { drain_loop(); });
}

void TrustService::stop() {
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (!running_) return;
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  drain_thread_.join();
  std::unique_lock<std::mutex> lock(queue_mutex_);
  running_ = false;
  stopping_ = false;
}

bool TrustService::running() const {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  return running_;
}

namespace {

/// Goodput count: answers actually computed (any status except the three
/// refusal/partial statuses).
std::size_t count_served(std::span<const Answer> answers) {
  std::size_t served = 0;
  for (const Answer& answer : answers) {
    switch (answer.status) {
      case QueryStatus::kCancelled:
      case QueryStatus::kOverloaded:
      case QueryStatus::kDeadlineExceeded:
        break;
      default:
        ++served;
    }
  }
  return served;
}

}  // namespace

Answer TrustService::ask(const Query& query) {
  Answer answer;
  ask_batch(std::span<const Query>{&query, 1}, std::span<Answer>{&answer, 1});
  return answer;
}

std::size_t TrustService::ask_batch(std::span<const Query> queries,
                                    std::span<Answer> answers) {
  if (queries.size() != answers.size())
    throw std::invalid_argument("ask_batch: span sizes differ");
  if (queries.empty()) return 0;

  if (cancelled()) {
    for (Answer& answer : answers) {
      answer = Answer{};
      answer.status = QueryStatus::kCancelled;
    }
    queries_cancelled_.add(queries.size());
    return 0;
  }

  // Admission control: while the shed controller is engaged, refuse the
  // whole submission up front — one relaxed load, no lock, no blocking.
  if (shed_.enabled() && shed_.shedding()) {
    for (Answer& answer : answers) {
      answer = Answer{};
      answer.status = QueryStatus::kOverloaded;
    }
    queries_shed_.add(queries.size());
    return 0;
  }

  Ticket ticket;
  ticket.remaining = queries.size();
  std::size_t refused_cancelled = 0;
  std::size_t refused_shed = 0;
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (!running_) {
      lock.unlock();
      answer_batch(queries, answers);
      return count_served(answers);
    }
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (shed_.enabled()) {
        // Never block the client on a full ring when shedding is on — the
        // drain worker may be wedged, and waiting on it is how latency
        // collapses spread. Shed the remainder immediately.
        if (ring_size_ >= queue_capacity_) {
          shed_.force_shed();
          for (std::size_t j = i; j < queries.size(); ++j) {
            answers[j] = Answer{};
            answers[j].status = QueryStatus::kOverloaded;
            ++refused_shed;
          }
          break;
        }
      } else {
        queue_not_full_.wait(lock, [&] {
          return ring_size_ < queue_capacity_ || stopping_ ||
                 cancelled_.load(std::memory_order_relaxed);
        });
      }
      if (stopping_ || cancelled_.load(std::memory_order_relaxed)) {
        // Exit-75-style partials: everything not yet enqueued completes
        // with an explicit kCancelled answer instead of blocking forever.
        for (std::size_t j = i; j < queries.size(); ++j) {
          answers[j] = Answer{};
          answers[j].status = QueryStatus::kCancelled;
          ++refused_cancelled;
        }
        break;
      }
      Request& slot = ring_[(ring_head_ + ring_size_) % queue_capacity_];
      slot.query = queries[i];
      slot.answer = &answers[i];
      slot.ticket = &ticket;
      slot.enqueue_ns = steady_now_ns();
      ++ring_size_;
      queue_not_empty_.notify_one();
    }
  }
  const std::size_t refused = refused_cancelled + refused_shed;
  if (refused_cancelled != 0) queries_cancelled_.add(refused_cancelled);
  if (refused_shed != 0) queries_shed_.add(refused_shed);
  if (refused != 0) {
    std::unique_lock<std::mutex> tlock(ticket.mutex);
    ticket.remaining -= refused;
    if (ticket.remaining == 0) ticket.cv.notify_all();
  }
  {
    std::unique_lock<std::mutex> tlock(ticket.mutex);
    ticket.cv.wait(tlock, [&] { return ticket.remaining == 0; });
  }
  return count_served(answers);
}

void TrustService::drain_loop() {
  std::vector<Request> batch;
  batch.reserve(batch_size_);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      // Bounded waits so the loop notices a deadline/cancel even while the
      // queue is idle (cancellation is poll-based).
      queue_not_empty_.wait_for(lock, std::chrono::milliseconds(10), [&] {
        return ring_size_ > 0 || stopping_ ||
               cancelled_.load(std::memory_order_relaxed);
      });
      if (!cancelled_.load(std::memory_order_relaxed) &&
          options_.token.cancelled()) {
        cancelled_.store(true, std::memory_order_relaxed);
        // Blocked pushers must wake to refuse their remaining queries.
        queue_not_full_.notify_all();
      }
      if (ring_size_ == 0) {
        if (stopping_) return;  // draining shutdown: queue fully served
        // An empty ring is proof the standing queue drained: feed the
        // controller a zero sojourn so shedding disengages even when the
        // refusals leave it nothing to observe.
        if (shed_.enabled() && shed_.shedding()) {
          lock.unlock();
          shed_.observe_sojourn(0.0, steady_now_ns());
        }
        continue;
      }
      const std::size_t take =
          ring_size_ < batch_size_ ? ring_size_ : batch_size_;
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(ring_[ring_head_]);
        ring_head_ = (ring_head_ + 1) % queue_capacity_;
        --ring_size_;
      }
      queue_depth_.set(static_cast<double>(ring_size_));
      queue_not_full_.notify_all();
    }
    // Queue sojourn, recorded separately from service time so shed
    // decisions are attributable in telemetry: the controller watches the
    // *oldest* sojourn in the batch — the standing-queue signal CoDel keys
    // on — while every request's own sojourn lands in serve.queue_ms.
    const std::uint64_t popped = steady_now_ns();
    double oldest_ms = 0.0;
    for (const Request& request : batch) {
      const double ms =
          static_cast<double>(popped - request.enqueue_ns) * 1e-6;
      queue_ms_.record(ms);
      if (ms > oldest_ms) oldest_ms = ms;
    }
    shed_.observe_sojourn(oldest_ms, popped);
    serve_batch(batch);
    batch.clear();
  }
}

void TrustService::serve_batch(std::vector<Request>& batch) {
  batches_.add();
  batch_occupancy_.observe(static_cast<double>(batch.size()));
  if (cancelled_.load(std::memory_order_relaxed)) {
    // The cancellation arrived before this batch was popped: refuse it
    // explicitly (the batch already in flight when the deadline hit was
    // completed by the previous iteration — draining, never abandoning).
    for (Request& request : batch) {
      *request.answer = Answer{};
      request.answer->status = QueryStatus::kCancelled;
    }
    queries_cancelled_.add(batch.size());
  } else {
    // The serve.queue fault site models a failing/stalling drain stage:
    // `throw` sheds the batch after bounded retries, `sleepN` parks this
    // worker (the stall the watchdog and the shed overflow path absorb).
    bool stage_ok = false;
    const std::uint32_t attempts = options_.resilience.retries + 1;
    for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
      if (attempt != 0) {
        if (cancelled_.load(std::memory_order_relaxed)) break;
        retries_.add();
        std::this_thread::sleep_for(std::chrono::nanoseconds(
            retry_policy_.backoff_ns(attempt, /*salt=*/0x51EDu)));
      }
      try {
        exec::fault_point("serve.queue", queue_fault_seq_.fetch_add(
                                             1, std::memory_order_relaxed));
        stage_ok = true;
        break;
      } catch (const std::exception&) {
      }
    }
    if (!stage_ok) {
      for (Request& request : batch) {
        *request.answer = Answer{};
        request.answer->status = QueryStatus::kOverloaded;
      }
      queries_shed_.add(batch.size());
    } else {
      std::shared_lock<std::shared_mutex> lock(resolved_mutex_,
                                               std::defer_lock);
      for (;;) {
        ensure_resolved();
        lock.lock();
        if (resolved_.attempted) break;  // raced with replace_graph
        lock.unlock();
      }
      const std::uint64_t completed = steady_now_ns();
      // Fan the batch out on the process pool; answers are independent pure
      // reads, so any grain/thread count serves bitwise-identical answers.
      parallel::parallel_for(
          0, batch.size(),
          [&](std::size_t i, std::uint32_t) {
            Request& request = batch[i];
            const std::uint64_t waited = completed - request.enqueue_ns;
            if (request.query.deadline_ms != 0 &&
                waited > static_cast<std::uint64_t>(request.query.deadline_ms) *
                             1'000'000ULL) {
              // Queued past its deadline: the client stopped caring; don't
              // spend artifact reads on it.
              *request.answer = Answer{};
              request.answer->status = QueryStatus::kDeadlineExceeded;
              return;
            }
            *request.answer = answer_resolved(resolved_, request.query);
            const double ms =
                static_cast<double>(completed - request.enqueue_ns) * 1e-6;
            query_ms_.record(ms);
            query_ms_window_.record(ms);
          },
          /*grain=*/64);
      lock.unlock();
      service_ms_.record(static_cast<double>(steady_now_ns() - completed) *
                         1e-6);
      std::size_t served = 0;
      std::size_t deadline = 0;
      for (const Request& request : batch) {
        if (request.answer->status == QueryStatus::kDeadlineExceeded)
          ++deadline;
        else
          ++served;
      }
      if (deadline != 0) queries_deadline_.add(deadline);
      if (served != 0) queries_served_.add(served);
    }
  }
  for (Request& request : batch) {
    std::unique_lock<std::mutex> tlock(request.ticket->mutex);
    if (--request.ticket->remaining == 0) request.ticket->cv.notify_all();
  }
}

void TrustService::replace_graph(Graph graph) {
  if (graph.num_vertices() == 0 || graph.num_edges() == 0)
    throw std::invalid_argument("replace_graph: graph must have edges");
  std::unique_lock<std::shared_mutex> lock(resolved_mutex_);
  const std::uint64_t old_fp = graph_fp_;
  graph_ = std::move(graph);
  graph_fp_ = graph_.fingerprint();
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  cache_.invalidate_graph(old_fp);
  resolved_ = Resolved{};
  next_probe_ns_.store(0, std::memory_order_relaxed);
}

void TrustService::apply_edges(const EdgeBatch& batch) {
  // Build the successor graph outside every lock — Graph copies are
  // shallow, and the rebuild is the expensive part of churn.
  Graph base;
  {
    std::shared_lock<std::shared_mutex> lock(resolved_mutex_);
    base = graph_;
  }
  Graph updated = apply_edge_batch(base, batch);
  if (updated.num_vertices() == 0 || updated.num_edges() == 0)
    throw std::invalid_argument("apply_edges: result must have edges");
  std::uint64_t old_fp = 0;
  {
    std::unique_lock<std::shared_mutex> lock(resolved_mutex_);
    old_fp = graph_fp_;
    graph_ = std::move(updated);
    graph_fp_ = graph_.fingerprint();
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    // Demote, don't drop: in-flight and subsequent queries keep answering
    // from the pre-churn snapshot — flagged stale/degraded — while the
    // background refresh recomputes against the new epoch.
    resolved_.sybilrank.fresh = false;
    resolved_.gatekeeper.fresh = false;
    resolved_.coreness.fresh = false;
    resolved_.landmark.fresh = false;
    resolved_.complete = false;
  }
  // Flag the refresh *before* invalidating: a query that sees the bumped
  // cache version must also see the refresh in flight, or it would re-warm
  // inline and defeat the point of backgrounding the recompute.
  {
    std::lock_guard<std::mutex> rlock(refresh_mutex_);
    if (refresh_running_.load(std::memory_order_relaxed)) {
      refresh_again_ = true;  // coalesce: one refresh covers both batches
    } else {
      refresh_running_.store(true, std::memory_order_release);
      if (refresh_thread_.joinable()) refresh_thread_.join();
      refresh_thread_ = std::thread([this] { refresh_worker(); });
    }
  }
  cache_.invalidate_graph(old_fp);
}

void TrustService::refresh_worker() {
  for (;;) {
    Graph g;
    std::uint64_t graph_fp = 0;
    std::uint64_t epoch_snapshot = 0;
    {
      std::shared_lock<std::shared_mutex> lock(resolved_mutex_);
      g = graph_;
      graph_fp = graph_fp_;
      epoch_snapshot = epoch_.load(std::memory_order_acquire);
    }
    const std::uint64_t config_fp = options_.config.fingerprint();
    const std::uint64_t version = cache_.version();
    // Compute everything without holding the resolved lock: queries keep
    // flowing (degraded) the whole time.
    auto sybilrank = resolve_slot<SybilRankArtifact>(
        ArtifactKind::kSybilRank, config_fp, graph_fp,
        [&] { return compute_sybilrank_artifact(g, options_.config); });
    auto gatekeeper = resolve_slot<GateKeeperArtifact>(
        ArtifactKind::kGateKeeper, config_fp, graph_fp,
        [&] { return compute_gatekeeper_artifact(g, options_.config); });
    auto coreness = resolve_slot<CorenessArtifact>(
        ArtifactKind::kCoreness, config_fp, graph_fp,
        [&] { return compute_coreness_artifact(g); });
    auto landmark = resolve_slot<LandmarkArtifact>(
        ArtifactKind::kLandmark, config_fp, graph_fp,
        [&] { return compute_landmark_artifact(g, options_.config); });
    {
      std::unique_lock<std::shared_mutex> lock(resolved_mutex_);
      if (epoch_.load(std::memory_order_acquire) == epoch_snapshot) {
        resolved_.sybilrank = std::move(sybilrank);
        resolved_.gatekeeper = std::move(gatekeeper);
        resolved_.coreness = std::move(coreness);
        resolved_.landmark = std::move(landmark);
        resolved_.cache_version = version;
        resolved_.attempted = true;
        resolved_.complete =
            resolved_.sybilrank.fresh && resolved_.gatekeeper.fresh &&
            resolved_.coreness.fresh && resolved_.landmark.fresh;
        if (resolved_.complete)
          next_probe_ns_.store(0, std::memory_order_relaxed);
      }
      // Epoch moved mid-compute: discard — the apply_edges that moved it
      // set refresh_again_, so the loop below recomputes from scratch.
    }
    {
      std::unique_lock<std::mutex> rlock(refresh_mutex_);
      if (refresh_again_) {
        refresh_again_ = false;
        continue;
      }
      refresh_running_.store(false, std::memory_order_release);
      refresh_cv_.notify_all();
      return;
    }
  }
}

bool TrustService::refresh_in_flight() const {
  return refresh_running_.load(std::memory_order_acquire);
}

void TrustService::wait_for_refresh() {
  std::unique_lock<std::mutex> lock(refresh_mutex_);
  refresh_cv_.wait(lock, [&] {
    return !refresh_running_.load(std::memory_order_acquire);
  });
}

}  // namespace sntrust::serve

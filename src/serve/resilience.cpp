#include "serve/resilience.hpp"

#include <chrono>

#include "obs/metrics.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace sntrust::serve {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

CircuitBreaker::CircuitBreaker(std::string name, BreakerOptions options)
    : options_(options),
      state_gauge_(
          obs::Metrics::instance().gauge("serve.breaker_state." + name)),
      opens_(obs::metrics_counter("serve.breaker_opens")),
      closes_(obs::metrics_counter("serve.breaker_closes")) {
  if (options_.failure_threshold == 0) options_.failure_threshold = 1;
}

BreakerState CircuitBreaker::classify(std::uint64_t now_ns) const {
  if (state_ != BreakerState::kOpen) return state_;
  const std::uint64_t open_ns = options_.open_ms * 1'000'000ULL;
  return now_ns - opened_ns_ >= open_ns ? BreakerState::kHalfOpen
                                        : BreakerState::kOpen;
}

void CircuitBreaker::publish(std::uint64_t now_ns) {
  state_gauge_.set(static_cast<double>(classify(now_ns)));
}

bool CircuitBreaker::allow(std::uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (classify(now_ns)) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      return false;
    case BreakerState::kHalfOpen:
      // Exactly one probe: the first caller past the cooldown claims it,
      // everyone else keeps serving degraded until the probe resolves.
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      publish(now_ns);
      return true;
  }
  return false;
}

void CircuitBreaker::record_success(std::uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  const bool was_broken = state_ == BreakerState::kOpen;
  state_ = BreakerState::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  if (was_broken) closes_.add();
  publish(now_ns);
}

void CircuitBreaker::record_failure(std::uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++consecutive_failures_;
  const bool probe_failed =
      state_ == BreakerState::kOpen && probe_in_flight_;
  probe_in_flight_ = false;
  if (probe_failed || consecutive_failures_ >= options_.failure_threshold) {
    // A failed half-open probe re-opens with a fresh cooldown; a closed
    // breaker crossing the threshold opens for the first time.
    if (state_ != BreakerState::kOpen) opens_.add();
    state_ = BreakerState::kOpen;
    opened_ns_ = now_ns;
  }
  publish(now_ns);
}

BreakerState CircuitBreaker::state(std::uint64_t now_ns) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return classify(now_ns);
}

std::uint64_t CircuitBreaker::probe_at_ns() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != BreakerState::kOpen) return 0;
  return opened_ns_ + options_.open_ms * 1'000'000ULL;
}

std::uint64_t RetryPolicy::backoff_ns(std::uint32_t retry,
                                      std::uint64_t salt) const {
  if (retry == 0) return 0;
  const std::uint64_t base = base_backoff_us * 1000ULL
                             << (retry - 1 < 20 ? retry - 1 : 20);
  // Jitter in [0.5, 1.5): a pure function of (salt, retry), so a given
  // retry schedule replays identically — randomized in space (across
  // concurrent resolvers with different salts), deterministic in time.
  const std::uint64_t mixed = stream_seed(salt, retry);
  const double jitter =
      0.5 + static_cast<double>(mixed >> 11) * 0x1.0p-53;
  return static_cast<std::uint64_t>(static_cast<double>(base) * jitter);
}

LoadShedController::LoadShedController(double target_ms)
    : target_ms_(target_ms > 0.0 ? target_ms : 0.0),
      interval_ns_(static_cast<std::uint64_t>(target_ms_ * 4e6)),
      shedding_gauge_(obs::Metrics::instance().gauge("serve.shedding")) {}

void LoadShedController::publish(bool shedding) {
  shedding_.store(shedding, std::memory_order_relaxed);
  shedding_gauge_.set(shedding ? 1.0 : 0.0);
}

void LoadShedController::observe_sojourn(double sojourn_ms,
                                         std::uint64_t now_ns) {
  if (!enabled()) return;
  if (sojourn_ms < target_ms_) {
    // CoDel's exit rule: one below-target sojourn proves the queue drained
    // past the standing backlog — stop shedding at once.
    above_ = false;
    if (shedding()) publish(false);
    return;
  }
  if (!above_) {
    above_ = true;
    above_since_ns_ = now_ns;
    return;
  }
  if (!shedding() && now_ns - above_since_ns_ >= interval_ns_) publish(true);
}

void LoadShedController::force_shed() {
  // Called from submit threads, so only the atomic flag may be touched; the
  // above_/above_since_ trend state stays drain-thread-only.
  if (!enabled()) return;
  if (!shedding()) publish(true);
}

ResilienceOptions ResilienceOptions::from_env() {
  ResilienceOptions options;
  options.shed_ms = env_double("SNTRUST_SERVE_SHED_MS", 0.0);
  if (options.shed_ms < 0.0) options.shed_ms = 0.0;
  options.stale_ms = env_double("SNTRUST_SERVE_STALE_MS", 60'000.0);
  if (options.stale_ms < 0.0) options.stale_ms = 0.0;
  const std::int64_t retries = env_int("SNTRUST_SERVE_RETRIES", 2);
  options.retries =
      retries < 0 ? 0u : static_cast<std::uint32_t>(retries < 16 ? retries : 16);
  return options;
}

}  // namespace sntrust::serve

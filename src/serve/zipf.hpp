// Deterministic Zipf-skewed integer sampler for the serving bench.
//
// Real trust-query traffic is heavily skewed: a few celebrities / suspects
// attract most of the lookups. The closed-loop driver models that with a
// Zipf(s) distribution over [0, n): P(k) proportional to 1 / (k+1)^s. The
// sampler inverts the CDF with a binary search over a precomputed prefix
// table, so draws are a pure function of (n, s, the Rng stream) — the same
// seed replays the same query trace on every machine, which is what makes
// serving benchmarks diffable run-to-run.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace sntrust::serve {

class ZipfGenerator {
 public:
  /// Zipf over [0, n) with exponent `s >= 0` (0 = uniform). Precomputes the
  /// normalized CDF once: O(n) memory, O(log n) per draw. Throws
  /// std::invalid_argument when n == 0 or s < 0.
  ZipfGenerator(std::uint64_t n, double s);

  /// Next rank in [0, n): rank 0 is the hottest key. Deterministic in the
  /// Rng stream (one uniform_real draw per call).
  std::uint64_t operator()(Rng& rng) const;

  std::uint64_t n() const noexcept { return cdf_.size(); }
  double exponent() const noexcept { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;  ///< cdf_[k] = P(rank <= k), cdf_.back() == 1
};

}  // namespace sntrust::serve

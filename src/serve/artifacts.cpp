#include "serve/artifacts.hpp"

#include <bit>
#include <stdexcept>

#include "cores/kcore.hpp"
#include "markov/distribution.hpp"
#include "markov/transition.hpp"
#include "obs/trace.hpp"
#include "sybil/sybilrank.hpp"
#include "util/rng.hpp"

namespace sntrust::serve {

namespace {

template <typename T>
  requires std::is_integral_v<T>
std::uint64_t chain(std::uint64_t h, T word) {
  // stream_seed is a splitmix64 finalizer over the pair, so chaining through
  // it is an order-sensitive fold (unlike exec::fingerprint's XOR).
  return stream_seed(h, static_cast<std::uint64_t>(word));
}

std::uint64_t chain(std::uint64_t h, double word) {
  return chain(h, std::bit_cast<std::uint64_t>(word));
}

}  // namespace

std::uint64_t ServiceConfig::fingerprint() const {
  std::uint64_t h = 0x736e74727573742eULL;  // "sntrust."
  h = chain(h, seeds.size());
  for (const VertexId s : seeds) h = chain(h, s);
  h = chain(h, sybilrank_iterations);
  h = chain(h, accept_fraction);
  h = chain(h, controller);
  h = chain(h, gatekeeper.num_distributers);
  h = chain(h, gatekeeper.f_admit);
  h = chain(h, gatekeeper.sample_walk_length);
  h = chain(h, gatekeeper.reach_fraction);
  h = chain(h, gatekeeper.seed);
  h = chain(h, landmark_walk_length);
  return h;
}

std::uint32_t resolve_log_iterations(std::uint32_t requested, VertexId n) {
  if (requested != 0) return requested;
  std::uint32_t iterations = 1;
  for (VertexId x = n; x > 1; x /= 2) ++iterations;
  return iterations;
}

SybilRankArtifact compute_sybilrank_artifact(const Graph& g,
                                             const ServiceConfig& config) {
  obs::Span span{"serve.compute_sybilrank", "serve"};
  SybilRankParams params;
  params.iterations = config.sybilrank_iterations;
  const SybilRankResult result = run_sybilrank(g, config.seeds, params);

  SybilRankArtifact artifact;
  artifact.scores = result.scores;
  artifact.iterations_used = result.iterations_used;
  artifact.rank_of.assign(g.num_vertices(), 0);
  for (std::uint32_t pos = 0; pos < result.ranking.size(); ++pos)
    artifact.rank_of[result.ranking[pos]] = pos;
  const double cutoff =
      config.accept_fraction * static_cast<double>(g.num_vertices());
  artifact.admit_rank = static_cast<std::uint32_t>(cutoff);
  return artifact;
}

GateKeeperArtifact compute_gatekeeper_artifact(const Graph& g,
                                               const ServiceConfig& config) {
  obs::Span span{"serve.compute_gatekeeper", "serve"};
  if (config.controller >= g.num_vertices())
    throw std::invalid_argument(
        "compute_gatekeeper_artifact: controller out of range");
  GateKeeperResult result =
      run_gatekeeper(g, config.controller, config.gatekeeper);
  GateKeeperArtifact artifact;
  artifact.admissions = std::move(result.admissions);
  artifact.threshold = result.threshold;
  artifact.num_distributers = config.gatekeeper.num_distributers;
  return artifact;
}

CorenessArtifact compute_coreness_artifact(const Graph& g) {
  obs::Span span{"serve.compute_coreness", "serve"};
  const CoreDecomposition d = core_decomposition(g);
  CorenessArtifact artifact;
  artifact.degeneracy = d.degeneracy;
  const VertexId n = g.num_vertices();
  // Cumulative coreness counts give each vertex its ECDF value in O(n).
  std::vector<std::uint64_t> at_most(d.degeneracy + 1, 0);
  for (const std::uint32_t c : d.coreness) ++at_most[c];
  for (std::uint32_t k = 1; k <= d.degeneracy; ++k) at_most[k] += at_most[k - 1];
  artifact.percentile.resize(n);
  for (VertexId v = 0; v < n; ++v)
    artifact.percentile[v] = static_cast<double>(at_most[d.coreness[v]]) /
                             static_cast<double>(n);
  artifact.coreness = d.coreness;
  return artifact;
}

LandmarkArtifact compute_landmark_artifact(const Graph& g,
                                           const ServiceConfig& config) {
  obs::Span span{"serve.compute_landmark", "serve"};
  const VertexId n = g.num_vertices();
  if (config.seeds.empty())
    throw std::invalid_argument("compute_landmark_artifact: need seeds");
  for (const VertexId s : config.seeds)
    if (s >= n)
      throw std::invalid_argument(
          "compute_landmark_artifact: seed out of range");
  LandmarkArtifact artifact;
  artifact.walk_length = resolve_log_iterations(config.landmark_walk_length, n);
  Distribution p(n, 0.0);
  for (const VertexId s : config.seeds)
    p[s] += 1.0 / static_cast<double>(config.seeds.size());
  evolve(g, p, artifact.walk_length);
  artifact.distribution = std::move(p);
  return artifact;
}

}  // namespace sntrust::serve

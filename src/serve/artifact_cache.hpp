// Versioned LRU cache of precomputed serving artifacts.
//
// Entries are keyed by (artifact kind, config fingerprint, graph
// fingerprint) — the full provenance of a precomputation — so a changed
// seed set, defense knob, or graph can never serve a stale artifact: it
// simply misses and recomputes. Invalidation is explicit
// (`invalidate_graph` when a graph is replaced, `invalidate_all`) and bumps
// the cache *version*, which services use to refresh their resolved
// artifact pointers without taking the cache lock on every query.
//
// Capacity is bounded (SNTRUST_SERVE_CACHE_CAP entries, LRU eviction) so a
// service cycling through many configurations — per-tenant seed sets, say —
// holds only the hot working set. Hits, misses, inserts, evictions,
// invalidations, and stale hits land in the metrics registry
// (`serve.cache_*`), which the serving bench reports as its hit rate; the
// counters balance exactly — inserts == evictions + invalidations + size()
// at any quiescent point — which the invalidation-storm test pins.
//
// Degraded mode (DESIGN.md §16): alongside the authoritative entries, the
// cache keeps one **last-good stale backup** per (kind, config) — updated on
// every successful insert, *retained* across invalidation and eviction.
// When recomputation is failing (circuit breaker open) or a churned graph's
// artifacts are still refreshing, `lookup_stale` hands back that backup
// with its age so the service can answer degraded-but-honest instead of
// blocking or erroring (stale-while-revalidate).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

namespace sntrust::obs {
class Counter;
}

namespace sntrust::serve {

/// Artifact kinds the serving layer precomputes (artifacts.hpp).
enum class ArtifactKind : std::uint32_t {
  kSybilRank = 0,
  kGateKeeper = 1,
  kCoreness = 2,
  kLandmark = 3,
};

/// Full provenance of one precomputation. Fixed-size and ordered, so cache
/// lookups build keys on the stack and never hash strings.
struct ArtifactKey {
  ArtifactKind kind = ArtifactKind::kSybilRank;
  std::uint64_t config_fp = 0;
  std::uint64_t graph_fp = 0;

  friend auto operator<=>(const ArtifactKey&, const ArtifactKey&) = default;
};

class ArtifactCache {
 public:
  /// `capacity` 0 resolves SNTRUST_SERVE_CACHE_CAP (default 8 entries; each
  /// entry holds O(n) per-vertex arrays, so the cap bounds resident memory).
  explicit ArtifactCache(std::size_t capacity = 0);

  /// Returns the cached artifact for `key`, or runs `make` (outside the
  /// cache lock — artifact computation can take seconds) and inserts its
  /// result. Concurrent misses on the same key may both compute; the first
  /// insertion wins and the loser adopts it. `T` must match the type stored
  /// for this key's kind.
  template <typename T, typename Make>
  std::shared_ptr<const T> get_or_compute(const ArtifactKey& key, Make&& make) {
    if (std::shared_ptr<const void> hit = lookup(key))
      return std::static_pointer_cast<const T>(hit);
    std::shared_ptr<const T> computed =
        std::make_shared<const T>(make());
    return std::static_pointer_cast<const T>(insert(key, computed));
  }

  /// Hit without side effects (no LRU touch, no counters); tests use this.
  bool contains(const ArtifactKey& key) const;

  /// Last-good backup for one (kind, config) provenance: the artifact most
  /// recently inserted for it, regardless of graph fingerprint, surviving
  /// invalidation and eviction. `stored_ns` (steady clock) is the basis of
  /// the staleness bound degraded answers carry; `graph_fp` records which
  /// graph epoch it was computed against.
  struct StaleArtifact {
    std::shared_ptr<const void> value;
    std::uint64_t stored_ns = 0;
    std::uint64_t graph_fp = 0;
  };

  /// The stale backup for (kind, config_fp), or nullopt when no successful
  /// computation was ever stored for it. Bumps `serve.cache_stale_hits` on a
  /// hit — degraded answers are countable from the metrics alone.
  std::optional<StaleArtifact> lookup_stale(ArtifactKind kind,
                                            std::uint64_t config_fp) const;

  /// Drops the stale backups too (tests that need a cold slate).
  void clear_stale();

  /// Drops every entry precomputed against `graph_fp`; bumps the version
  /// when anything was dropped. The hook `replace_graph` calls.
  std::size_t invalidate_graph(std::uint64_t graph_fp);
  /// Drops everything and bumps the version.
  std::size_t invalidate_all();

  /// Monotonic invalidation epoch. Services snapshot it when they resolve
  /// artifacts and re-resolve when it moved — one relaxed load per query.
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  std::shared_ptr<const void> lookup(const ArtifactKey& key);
  std::shared_ptr<const void> insert(const ArtifactKey& key,
                                     std::shared_ptr<const void> value);

  struct Entry {
    std::shared_ptr<const void> value;
    std::list<ArtifactKey>::iterator recency;  ///< position in lru_
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::map<ArtifactKey, Entry> entries_;
  std::list<ArtifactKey> lru_;  ///< front = most recently used
  /// Last-good per (kind, config fp); written on insert, never invalidated.
  std::map<std::pair<ArtifactKind, std::uint64_t>, StaleArtifact> stale_;
  std::atomic<std::uint64_t> version_{1};
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& inserts_;
  obs::Counter& evictions_;
  obs::Counter& invalidations_;
  obs::Counter& stale_hits_;
};

}  // namespace sntrust::serve

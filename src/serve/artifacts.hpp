// Precomputed per-defense, per-seed-set artifacts behind the trust-query
// serving layer (DESIGN.md §15).
//
// The offline/online split mirrors SybilRank's own deployment design (Cao et
// al., NSDI 2012): the expensive graph-global computation — O(log n) power
// iterations, a GateKeeper distributer sweep, the k-core decomposition, a
// landmark walk evolution — runs *once* per (defense, config, graph) and is
// distilled into flat per-vertex arrays; every point query thereafter is a
// couple of array reads. Each artifact therefore precomputes not just the
// defense's raw output but the derived fields queries need (rank positions,
// percentiles, admission cutoffs), so the serving hot path never sorts,
// scans, or allocates.
//
// All artifact computations reuse the library's deterministic kernels
// (step_distribution matvecs, run_gatekeeper, core_decomposition), so an
// artifact — and hence every answer served from it — is bitwise identical at
// any thread count, batch size, or layout.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sybil/gatekeeper.hpp"

namespace sntrust::serve {

/// Configuration of one service instance: the seed set and the per-defense
/// knobs. Part of every artifact-cache key via `fingerprint()`.
struct ServiceConfig {
  /// Known-honest seed set: SybilRank trust sources and landmark-walk
  /// origins. Must be non-empty and in range.
  std::vector<VertexId> seeds;
  /// SybilRank power-iteration count; 0 = ceil(log2 n) (the protocol).
  std::uint32_t sybilrank_iterations = 0;
  /// SybilRank admission: accept the top `accept_fraction` of the ranking.
  double accept_fraction = 0.8;
  /// GateKeeper admission controller (the paper uses a random honest vertex).
  VertexId controller = 0;
  GateKeeperParams gatekeeper;
  /// Landmark walk length; 0 = ceil(log2 n) (the mixing-time horizon).
  std::uint32_t landmark_walk_length = 0;

  /// Order-sensitive fold of every field; artifact-cache keys combine this
  /// with the graph fingerprint so a changed knob or seed set can never
  /// serve a stale artifact.
  std::uint64_t fingerprint() const;
};

/// SybilRank trust vectors: degree-normalized scores, the induced ranking
/// inverted into per-vertex rank positions, and the admission cutoff.
struct SybilRankArtifact {
  std::vector<double> scores;          ///< degree-normalized trust per vertex
  std::vector<std::uint32_t> rank_of;  ///< rank_of[v]: 0 = most trusted
  std::uint32_t admit_rank = 0;        ///< admitted iff rank_of[v] < admit_rank
  std::uint32_t iterations_used = 0;
};

/// GateKeeper ticket distribution: per-vertex admission votes.
struct GateKeeperArtifact {
  std::vector<std::uint32_t> admissions;  ///< distributers that reached v
  std::uint32_t threshold = 0;
  std::uint32_t num_distributers = 0;
};

/// Coreness plus its ECDF evaluated per vertex.
struct CorenessArtifact {
  std::vector<std::uint32_t> coreness;
  /// percentile[v] = fraction of vertices with coreness <= coreness[v].
  std::vector<double> percentile;
  std::uint32_t degeneracy = 0;
};

/// Landmark walk distribution: the seed-set walk evolved `walk_length`
/// steps — the probability a mixing-horizon walk from the trust seeds ends
/// at v (Whanau/SybilLimit's escape-probability primitive).
struct LandmarkArtifact {
  std::vector<double> distribution;
  std::uint32_t walk_length = 0;
};

/// Resolved per-graph iteration counts (the `0 = ceil(log2 n)` defaults).
std::uint32_t resolve_log_iterations(std::uint32_t requested, VertexId n);

SybilRankArtifact compute_sybilrank_artifact(const Graph& g,
                                             const ServiceConfig& config);
GateKeeperArtifact compute_gatekeeper_artifact(const Graph& g,
                                               const ServiceConfig& config);
CorenessArtifact compute_coreness_artifact(const Graph& g);
LandmarkArtifact compute_landmark_artifact(const Graph& g,
                                           const ServiceConfig& config);

}  // namespace sntrust::serve

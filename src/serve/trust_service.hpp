// Long-lived in-process trust-query service (DESIGN.md §15, §16).
//
// A `TrustService` loads a graph once (any format `read_graph_auto`
// sniffs, including zero-copy mmap snapshots), precomputes the per-defense
// serving artifacts into the process's `ArtifactCache`, and then answers
// point queries — "is v admissible under SybilRank/GateKeeper?", "trust
// score of v from the seed set", "coreness/percentile of v", "landmark walk
// probability at v" — through three paths with *bitwise identical* answers:
//
//   * `answer()` / `answer_batch()`: caller-thread reads against the
//     resolved artifacts. The warm path performs **no heap allocation** per
//     query (fixed-size Answer, stack keys, cached metric handles) — pinned
//     by ServeAllocStats in tests.
//   * `ask()` / `ask_batch()`: the pipelined path. Requests enqueue into a
//     bounded MPMC ring (SNTRUST_SERVE_QUEUE_CAP) and a drain thread serves
//     them in configurable batches (SNTRUST_SERVE_BATCH) fanned out on the
//     src/parallel pool; clients block on a per-batch ticket. Per-query
//     latency (enqueue -> completion) lands in the `serve.query_ms`
//     quantile histograms, queue sojourn separately in `serve.queue_ms`,
//     per-batch fan-out time in `serve.service_ms`, batch occupancy in
//     `serve.batch_occupancy`.
//   * `answer_uncached()`: the naive recompute-per-query reference the
//     serving bench measures the cache against (and the identity oracle the
//     tests and the chaos harness pin non-degraded answers to).
//
// Answers are pure functions of (artifacts, query) and artifacts are built
// by the library's deterministic kernels, so every path agrees bitwise at
// any thread count, batch size, and arrival order — for answers that are
// not *degraded* (below).
//
// Serving under fire (DESIGN.md §16). Three failure regimes are handled
// explicitly instead of by blocking or crashing:
//
//   * **Overload.** With `SNTRUST_SERVE_SHED_MS` set, a CoDel-style
//     controller watches queue sojourn; sustained overload (or a full ring)
//     flips the submit path from blocking backpressure to immediate refusal
//     with `QueryStatus::kOverloaded`. Queries may carry a `deadline_ms`
//     bound on queue wait; a request popped too late completes with
//     `kDeadlineExceeded` without being computed.
//   * **Recompute failure.** Artifact recomputation runs behind a per-kind
//     circuit breaker with bounded jittered retries (`serve.artifact` fault
//     site). While a kind is unavailable the service answers from the
//     last-good *stale* artifact (age-bounded by `SNTRUST_SERVE_STALE_MS`)
//     or falls down a degradation ladder (SybilRank <-> GateKeeper ->
//     coreness; landmark -> coreness). Such answers carry `degraded = true`,
//     the `source` actually used, and a `staleness_ms` bound — degraded
//     answers are honest about their provenance and are the only answers
//     exempt from the bitwise-identity contract.
//   * **Churn.** `apply_edges()` applies a batched edge insert/delete to the
//     served graph. In-flight queries keep answering against the previous
//     epoch's artifacts (demoted to stale) while a single-flight background
//     refresh recomputes against the new graph and installs atomically —
//     the epoch counter guarantees a refresh never installs over a newer
//     graph.
//
// Shutdown drains: `stop()` serves everything already queued before the
// drain thread exits. Cancellation (process signal/deadline or the token in
// Options) is the exit-75-style partial path — the in-flight batch
// completes, queued-but-unserved requests complete with
// `QueryStatus::kCancelled`, and new `ask()`s are refused with the same
// status, so closed-loop clients always unblock with explicit partials.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "exec/cancel.hpp"
#include "graph/graph.hpp"
#include "serve/artifact_cache.hpp"
#include "serve/artifacts.hpp"
#include "serve/resilience.hpp"

namespace sntrust {
struct EdgeBatch;  // dynamic/evolution.hpp
}

namespace sntrust::obs {
class Counter;
class Gauge;
class Histogram;
class QuantileHistogram;
class WindowedQuantileHistogram;
}  // namespace sntrust::obs

namespace sntrust::serve {

enum class Defense : std::uint8_t { kSybilRank = 0, kGateKeeper = 1 };

enum class QueryKind : std::uint8_t {
  kAdmission = 0,   ///< is `vertex` admitted under `defense`?
  kTrustScore = 1,  ///< defense's trust value at `vertex`
  kCoreness = 2,    ///< coreness + ECDF percentile of `vertex`
  kLandmark = 3,    ///< landmark-walk probability mass at `vertex`
};

enum class QueryStatus : std::uint8_t {
  kOk = 0,
  kInvalidVertex = 1,      ///< vertex >= n
  kCancelled = 2,          ///< refused/unserved due to cancellation
  kOverloaded = 3,         ///< shed at admission, or no artifact available
  kDeadlineExceeded = 4,   ///< queue wait exceeded the query's deadline_ms
};

/// The artifact kind an answer was actually computed from. Equal to the
/// query's primary kind unless the answer is degraded (ladder fallback).
enum class AnswerSource : std::uint8_t {
  kSybilRank = 0,
  kGateKeeper = 1,
  kCoreness = 2,
  kLandmark = 3,
};

/// Fixed-size request. Trivially copyable so the request ring never touches
/// the heap.
struct Query {
  QueryKind kind = QueryKind::kTrustScore;
  Defense defense = Defense::kSybilRank;
  VertexId vertex = 0;
  /// Max queue wait (ms) on the pipelined path; 0 = no deadline. A request
  /// still queued past its deadline completes with kDeadlineExceeded
  /// instead of being computed. The direct path ignores it (no queue).
  std::uint32_t deadline_ms = 0;
};

/// Fixed-size answer — the admission hot path allocates nothing per query.
/// Field meaning by source:
///   kSybilRank: value = degree-normalized trust, percentile = 1 - rank/n
///     (1 = most trusted), admitted = rank cutoff;
///   kGateKeeper: value = admitting distributers, percentile =
///     value / num_distributers, admitted = vote threshold;
///   kCoreness: value = coreness, percentile = coreness ECDF at v
///     (admitted = top-accept_fraction of the ECDF when standing in for an
///     admission defense);
///   kLandmark: value = walk probability at v, percentile = value relative
///     to the stationary mass deg(v)/2m (>1 = walk favours v).
///
/// `degraded` marks answers served from a stale artifact or a ladder
/// fallback; only then is `staleness_ms` nonzero (an upper bound on the
/// artifact's age) or `source` different from the query's primary kind.
/// Non-degraded answers always have staleness_ms == 0 and source == primary,
/// so the memcmp bitwise-identity contract covers every non-degraded answer.
struct Answer {
  QueryStatus status = QueryStatus::kCancelled;
  bool admitted = false;
  bool degraded = false;
  AnswerSource source = AnswerSource::kSybilRank;
  /// Explicit (zeroed) padding so the struct has no indeterminate bytes and
  /// the bitwise-identity contract can be checked with memcmp.
  std::uint8_t reserved[4] = {};
  double value = 0.0;
  double percentile = 0.0;
  /// Upper bound on the age (ms) of the artifact behind a degraded answer;
  /// 0 for fresh (non-degraded) answers.
  double staleness_ms = 0.0;

  friend bool operator==(const Answer&, const Answer&) = default;
};
static_assert(sizeof(Answer) == 32, "Answer must carry no implicit padding");

class TrustService {
 public:
  struct Options {
    ServiceConfig config;
    /// Max queries served per drain batch; 0 = SNTRUST_SERVE_BATCH (256).
    std::uint32_t batch_size = 0;
    /// Request-ring capacity; 0 = SNTRUST_SERVE_QUEUE_CAP (4096).
    std::uint32_t queue_capacity = 0;
    /// Artifact-cache capacity; 0 = SNTRUST_SERVE_CACHE_CAP (8).
    std::size_t cache_capacity = 0;
    /// Warm every artifact during construction (a cold service warms lazily
    /// on first touch instead).
    bool precompute = true;
    /// Overload/degradation knobs; defaults read SNTRUST_SERVE_SHED_MS,
    /// SNTRUST_SERVE_STALE_MS, SNTRUST_SERVE_RETRIES.
    ResilienceOptions resilience = ResilienceOptions::from_env();
    /// Cancellation observed by the drain loop *in addition to* the process
    /// state (signals, SNTRUST_DEADLINE_MS).
    exec::CancelToken token;
  };

  /// Serves `graph`. Throws std::invalid_argument for empty/edgeless graphs
  /// or out-of-range config vertices.
  TrustService(Graph graph, Options options);
  /// Loads any supported on-disk format (text/binary/mmap snapshot).
  static TrustService open(const std::string& path, Options options);
  ~TrustService();

  TrustService(const TrustService&) = delete;
  TrustService& operator=(const TrustService&) = delete;

  const Graph& graph() const noexcept { return graph_; }
  const ServiceConfig& config() const noexcept { return options_.config; }
  ArtifactCache& cache() noexcept { return cache_; }
  std::uint32_t batch_size() const noexcept { return batch_size_; }
  const ResilienceOptions& resilience() const noexcept {
    return options_.resilience;
  }

  /// Ensures all four artifacts are resident (the constructor does this
  /// unless Options::precompute was false).
  void warm();

  /// Caller-thread cached read; no per-query heap allocation once warm.
  Answer answer(const Query& query);
  void answer_batch(std::span<const Query> queries, std::span<Answer> answers);

  /// Naive recompute-per-query reference: rebuilds the artifact the query
  /// needs from scratch, bypassing the cache. The serving bench's "before"
  /// and the chaos harness's identity oracle.
  Answer answer_uncached(const Query& query) const;

  /// Starts the drain thread (idempotent).
  void start();
  /// Draining shutdown: everything already queued is served, then the drain
  /// thread exits (idempotent). Never blocks on clients: shedding/refusal
  /// paths complete their tickets without the drain thread's help.
  void stop();
  bool running() const;

  /// Blocking pipelined query. Falls back to the direct path when the
  /// service is not running; returns kCancelled after cancellation and
  /// kOverloaded while the shed controller refuses admission.
  Answer ask(const Query& query);
  /// Enqueues the whole span under one completion ticket; returns the
  /// number of answers whose status is none of kCancelled / kOverloaded /
  /// kDeadlineExceeded (the goodput under overload or a deadline).
  std::size_t ask_batch(std::span<const Query> queries,
                        std::span<Answer> answers);

  /// Swaps the served graph wholesale. Artifacts keyed by the old graph
  /// fingerprint are dropped from the cache; the next query warms against
  /// `graph` inline (no stale serving — this is the cold-swap path).
  void replace_graph(Graph graph);

  /// Applies a batched edge insert/delete to the served graph (churn-safe
  /// path). Bumps the graph epoch, demotes the resolved artifacts to stale
  /// — in-flight and subsequent queries keep answering (degraded) against
  /// the pre-churn snapshot — and kicks a single-flight background refresh
  /// that recomputes against the new graph and installs fresh artifacts
  /// unless the epoch moved again. Throws std::invalid_argument when the
  /// result would have no edges.
  void apply_edges(const EdgeBatch& batch);

  /// Monotonic graph epoch; bumped by apply_edges and replace_graph.
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }
  bool refresh_in_flight() const;
  /// Blocks until no background refresh is running (tests, benches).
  void wait_for_refresh();

 private:
  /// One resolved artifact: the pointer plus its provenance. `fresh` means
  /// computed against the current graph under a breaker-closed resolve;
  /// stale slots (breaker open, or demoted by churn) still answer, degraded.
  template <typename T>
  struct ArtifactSlot {
    std::shared_ptr<const T> artifact;
    bool fresh = false;
    std::uint64_t stored_ns = 0;
    std::uint64_t graph_fp = 0;
  };

  /// Artifact pointers resolved against one (config, graph, cache-version)
  /// snapshot; refreshed when the cache version moves.
  struct Resolved {
    ArtifactSlot<SybilRankArtifact> sybilrank;
    ArtifactSlot<GateKeeperArtifact> gatekeeper;
    ArtifactSlot<CorenessArtifact> coreness;
    ArtifactSlot<LandmarkArtifact> landmark;
    std::uint64_t cache_version = 0;
    /// A resolve ran to completion (possibly yielding only stale/empty
    /// slots): the sentinel the answer paths loop on, so a service whose
    /// every kind is unavailable answers kOverloaded instead of spinning.
    bool attempted = false;
    /// All four slots fresh — the common case, checked first on the hot
    /// path so complete services never read the clock.
    bool complete = false;
  };

  struct Request {
    Query query;
    Answer* answer = nullptr;
    struct Ticket* ticket = nullptr;
    std::uint64_t enqueue_ns = 0;
  };

  void ensure_resolved();
  bool resolved_ready() const;  ///< under resolved_mutex_ (either mode)
  void resolve_locked();
  template <typename T, typename Compute>
  ArtifactSlot<T> resolve_slot(ArtifactKind kind, std::uint64_t config_fp,
                               std::uint64_t graph_fp, Compute&& compute);
  Answer answer_resolved(const Resolved& resolved, const Query& query) const;
  Answer answer_degradable(const Resolved& resolved, const Query& query,
                           ArtifactKind primary) const;
  void drain_loop();
  void serve_batch(std::vector<Request>& batch);
  bool cancelled() const;
  CircuitBreaker& breaker(ArtifactKind kind) {
    return breakers_[static_cast<std::size_t>(kind)];
  }
  void start_refresh_locked();  ///< under refresh_mutex_
  void refresh_worker();

  Graph graph_;
  Options options_;
  std::uint32_t batch_size_;
  std::uint32_t queue_capacity_;
  ArtifactCache cache_;
  std::uint64_t graph_fp_ = 0;  ///< cached graph_.fingerprint()

  mutable std::shared_mutex resolved_mutex_;
  Resolved resolved_;
  /// Steady-clock ns before which an incomplete resolve should not be
  /// retried (the earliest open breaker probe); 0 = retry on next query.
  std::atomic<std::uint64_t> next_probe_ns_{0};

  // Resilience: per-kind breakers share the transition counters; retry
  // jitter is deterministic per (kind, attempt).
  std::array<CircuitBreaker, 4> breakers_;
  RetryPolicy retry_policy_;
  LoadShedController shed_;
  std::atomic<std::uint64_t> artifact_fault_seq_{0};
  std::atomic<std::uint64_t> queue_fault_seq_{0};

  // Churn: epoch-versioned graph with single-flight background refresh.
  std::atomic<std::uint64_t> epoch_{0};
  mutable std::mutex refresh_mutex_;
  std::condition_variable refresh_cv_;
  std::atomic<bool> refresh_running_{false};  ///< writes under refresh_mutex_
  bool refresh_again_ = false;                ///< under refresh_mutex_
  std::thread refresh_thread_;

  // Bounded MPMC request ring.
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::vector<Request> ring_;
  std::size_t ring_head_ = 0;  ///< next pop position
  std::size_t ring_size_ = 0;
  bool stopping_ = false;
  bool running_ = false;
  std::atomic<bool> cancelled_{false};
  std::thread drain_thread_;

  // Cached metric handles: the per-query hot path must not look up names.
  obs::QuantileHistogram& query_ms_;
  obs::WindowedQuantileHistogram& query_ms_window_;
  obs::QuantileHistogram& queue_ms_;
  obs::QuantileHistogram& service_ms_;
  obs::Histogram& batch_occupancy_;
  obs::Counter& queries_served_;
  obs::Counter& queries_cancelled_;
  obs::Counter& queries_shed_;
  obs::Counter& queries_degraded_;
  obs::Counter& queries_deadline_;
  obs::Counter& queries_unavailable_;
  obs::Counter& retries_;
  obs::Counter& batches_;
  obs::Gauge& queue_depth_;
  /// Same registry counter the ArtifactCache bumps on lookup hits: a
  /// resolution served from the resolved snapshot (no recompute, no LRU
  /// round-trip) is still a cache hit at the artifact layer.
  obs::Counter& artifact_hits_;
};

}  // namespace sntrust::serve

// Long-lived in-process trust-query service (DESIGN.md §15).
//
// A `TrustService` loads a graph once (any format `read_graph_auto`
// sniffs, including zero-copy mmap snapshots), precomputes the per-defense
// serving artifacts into the process's `ArtifactCache`, and then answers
// point queries — "is v admissible under SybilRank/GateKeeper?", "trust
// score of v from the seed set", "coreness/percentile of v", "landmark walk
// probability at v" — through three paths with *bitwise identical* answers:
//
//   * `answer()` / `answer_batch()`: caller-thread reads against the
//     resolved artifacts. The warm path performs **no heap allocation** per
//     query (fixed-size Answer, stack keys, cached metric handles) — pinned
//     by ServeAllocStats in tests.
//   * `ask()` / `ask_batch()`: the pipelined path. Requests enqueue into a
//     bounded MPMC ring (SNTRUST_SERVE_QUEUE_CAP) and a drain thread serves
//     them in configurable batches (SNTRUST_SERVE_BATCH) fanned out on the
//     src/parallel pool; clients block on a per-batch ticket. Per-query
//     latency (enqueue -> completion) lands in the `serve.query_ms`
//     quantile histograms, batch occupancy in `serve.batch_occupancy`.
//   * `answer_uncached()`: the naive recompute-per-query reference the
//     serving bench measures the cache against (and the identity oracle the
//     tests pin batched answers to).
//
// Answers are pure functions of (artifacts, query) and artifacts are built
// by the library's deterministic kernels, so every path agrees bitwise at
// any thread count, batch size, and arrival order.
//
// Shutdown drains: `stop()` serves everything already queued before the
// drain thread exits. Cancellation (process signal/deadline or the token in
// Options) is the exit-75-style partial path — the in-flight batch
// completes, queued-but-unserved requests complete with
// `QueryStatus::kCancelled`, and new `ask()`s are refused with the same
// status, so closed-loop clients always unblock with explicit partials.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "exec/cancel.hpp"
#include "graph/graph.hpp"
#include "serve/artifact_cache.hpp"
#include "serve/artifacts.hpp"

namespace sntrust::obs {
class Counter;
class Gauge;
class Histogram;
class QuantileHistogram;
class WindowedQuantileHistogram;
}  // namespace sntrust::obs

namespace sntrust::serve {

enum class Defense : std::uint8_t { kSybilRank = 0, kGateKeeper = 1 };

enum class QueryKind : std::uint8_t {
  kAdmission = 0,   ///< is `vertex` admitted under `defense`?
  kTrustScore = 1,  ///< defense's trust value at `vertex`
  kCoreness = 2,    ///< coreness + ECDF percentile of `vertex`
  kLandmark = 3,    ///< landmark-walk probability mass at `vertex`
};

enum class QueryStatus : std::uint8_t {
  kOk = 0,
  kInvalidVertex = 1,  ///< vertex >= n
  kCancelled = 2,      ///< refused/unserved due to cancellation or deadline
};

/// Fixed-size request. Trivially copyable so the request ring never touches
/// the heap.
struct Query {
  QueryKind kind = QueryKind::kTrustScore;
  Defense defense = Defense::kSybilRank;
  VertexId vertex = 0;
};

/// Fixed-size answer — the admission hot path allocates nothing per query.
/// Field meaning by kind:
///   kAdmission/kTrustScore + kSybilRank: value = degree-normalized trust,
///     percentile = 1 - rank/n (1 = most trusted), admitted = rank cutoff;
///   kAdmission/kTrustScore + kGateKeeper: value = admitting distributers,
///     percentile = value / num_distributers, admitted = vote threshold;
///   kCoreness: value = coreness, percentile = coreness ECDF at v;
///   kLandmark: value = walk probability at v, percentile = value relative
///     to the stationary mass deg(v)/2m (>1 = walk favours v).
struct Answer {
  QueryStatus status = QueryStatus::kCancelled;
  bool admitted = false;
  /// Explicit (zeroed) padding so the struct has no indeterminate bytes and
  /// the bitwise-identity contract can be checked with memcmp.
  std::uint8_t reserved[6] = {};
  double value = 0.0;
  double percentile = 0.0;

  friend bool operator==(const Answer&, const Answer&) = default;
};
static_assert(sizeof(Answer) == 24, "Answer must carry no implicit padding");

class TrustService {
 public:
  struct Options {
    ServiceConfig config;
    /// Max queries served per drain batch; 0 = SNTRUST_SERVE_BATCH (256).
    std::uint32_t batch_size = 0;
    /// Request-ring capacity; 0 = SNTRUST_SERVE_QUEUE_CAP (4096).
    std::uint32_t queue_capacity = 0;
    /// Artifact-cache capacity; 0 = SNTRUST_SERVE_CACHE_CAP (8).
    std::size_t cache_capacity = 0;
    /// Warm every artifact during construction (a cold service warms lazily
    /// on first touch instead).
    bool precompute = true;
    /// Cancellation observed by the drain loop *in addition to* the process
    /// state (signals, SNTRUST_DEADLINE_MS).
    exec::CancelToken token;
  };

  /// Serves `graph`. Throws std::invalid_argument for empty/edgeless graphs
  /// or out-of-range config vertices.
  TrustService(Graph graph, Options options);
  /// Loads any supported on-disk format (text/binary/mmap snapshot).
  static TrustService open(const std::string& path, Options options);
  ~TrustService();

  TrustService(const TrustService&) = delete;
  TrustService& operator=(const TrustService&) = delete;

  const Graph& graph() const noexcept { return graph_; }
  const ServiceConfig& config() const noexcept { return options_.config; }
  ArtifactCache& cache() noexcept { return cache_; }
  std::uint32_t batch_size() const noexcept { return batch_size_; }

  /// Ensures all four artifacts are resident (the constructor does this
  /// unless Options::precompute was false).
  void warm();

  /// Caller-thread cached read; no per-query heap allocation once warm.
  Answer answer(const Query& query);
  void answer_batch(std::span<const Query> queries, std::span<Answer> answers);

  /// Naive recompute-per-query reference: rebuilds the artifact the query
  /// needs from scratch, bypassing the cache. The serving bench's "before".
  Answer answer_uncached(const Query& query) const;

  /// Starts the drain thread (idempotent).
  void start();
  /// Draining shutdown: everything already queued is served, then the drain
  /// thread exits (idempotent).
  void stop();
  bool running() const;

  /// Blocking pipelined query. Falls back to the direct path when the
  /// service is not running; returns kCancelled after cancellation.
  Answer ask(const Query& query);
  /// Enqueues the whole span under one completion ticket; returns the
  /// number of answers with status != kCancelled (the partial-result count
  /// under a deadline).
  std::size_t ask_batch(std::span<const Query> queries,
                        std::span<Answer> answers);

  /// Swaps the served graph. Artifacts keyed by the old graph fingerprint
  /// are dropped from the cache; the next query warms against `graph`.
  void replace_graph(Graph graph);

 private:
  /// Artifact pointers resolved against one (config, graph, cache-version)
  /// snapshot; refreshed when the cache version moves.
  struct Resolved {
    std::shared_ptr<const SybilRankArtifact> sybilrank;
    std::shared_ptr<const GateKeeperArtifact> gatekeeper;
    std::shared_ptr<const CorenessArtifact> coreness;
    std::shared_ptr<const LandmarkArtifact> landmark;
    std::uint64_t cache_version = 0;
  };

  struct Request {
    Query query;
    Answer* answer = nullptr;
    struct Ticket* ticket = nullptr;
    std::uint64_t enqueue_ns = 0;
  };

  void ensure_resolved();
  void resolve_locked();
  Answer answer_resolved(const Resolved& resolved, const Query& query) const;
  void drain_loop();
  void serve_batch(std::vector<Request>& batch);
  bool cancelled() const;

  Graph graph_;
  Options options_;
  std::uint32_t batch_size_;
  std::uint32_t queue_capacity_;
  ArtifactCache cache_;

  mutable std::shared_mutex resolved_mutex_;
  Resolved resolved_;

  // Bounded MPMC request ring.
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::vector<Request> ring_;
  std::size_t ring_head_ = 0;  ///< next pop position
  std::size_t ring_size_ = 0;
  bool stopping_ = false;
  bool running_ = false;
  std::atomic<bool> cancelled_{false};
  std::thread drain_thread_;

  // Cached metric handles: the per-query hot path must not look up names.
  obs::QuantileHistogram& query_ms_;
  obs::WindowedQuantileHistogram& query_ms_window_;
  obs::Histogram& batch_occupancy_;
  obs::Counter& queries_served_;
  obs::Counter& queries_cancelled_;
  obs::Counter& batches_;
  obs::Gauge& queue_depth_;
  /// Same registry counter the ArtifactCache bumps on lookup hits: a
  /// resolution served from the resolved snapshot (no recompute, no LRU
  /// round-trip) is still a cache hit at the artifact layer.
  obs::Counter& artifact_hits_;
};

}  // namespace sntrust::serve

#include "serve/artifact_cache.hpp"

#include <algorithm>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/resilience.hpp"
#include "util/env.hpp"

namespace sntrust::serve {

namespace {

std::size_t resolve_capacity(std::size_t requested) {
  if (requested != 0) return requested;
  const std::int64_t cap = env_int("SNTRUST_SERVE_CACHE_CAP", 8);
  return cap < 1 ? 1 : static_cast<std::size_t>(cap);
}

}  // namespace

ArtifactCache::ArtifactCache(std::size_t capacity)
    : capacity_(resolve_capacity(capacity)),
      hits_(obs::metrics_counter("serve.cache_hits")),
      misses_(obs::metrics_counter("serve.cache_misses")),
      inserts_(obs::metrics_counter("serve.cache_inserts")),
      evictions_(obs::metrics_counter("serve.cache_evictions")),
      invalidations_(obs::metrics_counter("serve.cache_invalidations")),
      stale_hits_(obs::metrics_counter("serve.cache_stale_hits")) {}

std::shared_ptr<const void> ArtifactCache::lookup(const ArtifactKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_.add();
    return nullptr;
  }
  hits_.add();
  // LRU touch: splice relinks the existing node, no allocation on the hit
  // path (part of the serving layer's no-per-query-heap contract).
  lru_.splice(lru_.begin(), lru_, it->second.recency);
  return it->second.value;
}

std::shared_ptr<const void> ArtifactCache::insert(
    const ArtifactKey& key, std::shared_ptr<const void> value) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // A concurrent miss computed the same artifact first; adopt the winner
    // so every caller shares one copy.
    lru_.splice(lru_.begin(), lru_, it->second.recency);
    return it->second.value;
  }
  while (entries_.size() >= capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    evictions_.add();
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{value, lru_.begin()});
  inserts_.add();
  // Refresh the last-good backup: any successful insert is by definition the
  // newest good artifact for this (kind, config) provenance.
  stale_[{key.kind, key.config_fp}] =
      StaleArtifact{value, steady_now_ns(), key.graph_fp};
  return value;
}

std::optional<ArtifactCache::StaleArtifact> ArtifactCache::lookup_stale(
    ArtifactKind kind, std::uint64_t config_fp) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = stale_.find({kind, config_fp});
  if (it == stale_.end()) return std::nullopt;
  stale_hits_.add();
  return it->second;
}

void ArtifactCache::clear_stale() {
  std::lock_guard<std::mutex> lock(mutex_);
  stale_.clear();
}

bool ArtifactCache::contains(const ArtifactKey& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.contains(key);
}

std::size_t ArtifactCache::invalidate_graph(std::uint64_t graph_fp) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.graph_fp == graph_fp) {
      lru_.erase(it->second.recency);
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  if (dropped != 0) {
    invalidations_.add(dropped);
    version_.fetch_add(1, std::memory_order_acq_rel);
  }
  return dropped;
}

std::size_t ArtifactCache::invalidate_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t dropped = entries_.size();
  entries_.clear();
  lru_.clear();
  if (dropped != 0) invalidations_.add(dropped);
  version_.fetch_add(1, std::memory_order_acq_rel);
  return dropped;
}

std::size_t ArtifactCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace sntrust::serve

#include "serve/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sntrust::serve {

ZipfGenerator::ZipfGenerator(std::uint64_t n, double s) : s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfGenerator: n must be > 0");
  if (!(s >= 0.0)) throw std::invalid_argument("ZipfGenerator: s must be >= 0");
  cdf_.resize(n);
  double total = 0.0;
  for (std::uint64_t k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -s);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding leaving the tail unreachable
}

std::uint64_t ZipfGenerator::operator()(Rng& rng) const {
  const double u = rng.uniform_real();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

}  // namespace sntrust::serve

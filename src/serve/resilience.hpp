// Overload control and degraded-mode serving for the trust-query layer
// (DESIGN.md §16).
//
// The serving layer's happy path (§15) assumes unbounded client patience, a
// frozen graph, and artifact recomputations that always succeed. This module
// is the defense-in-depth counterpart — the pieces TrustService composes so
// trust answers stay *available*, with explicit quality labels, when those
// assumptions break:
//
//   * `LoadShedController` — CoDel-style admission control on the MPMC query
//     ring. The drain loop feeds it the queue sojourn of every popped batch;
//     once sojourn has stayed above the target (`SNTRUST_SERVE_SHED_MS`) for
//     a full interval, new submissions are refused with
//     `QueryStatus::kOverloaded` instead of blocking, and a full ring sheds
//     immediately (the drain worker may be wedged — waiting on it is how
//     latency collapses spread). Shedding disengages on the first
//     below-target sojourn. Target 0 disables shedding entirely and keeps
//     the original blocking backpressure.
//   * `CircuitBreaker` — one per artifact kind. Consecutive recomputation
//     failures (fault-injected via the `serve.artifact` site or real) trip
//     the breaker open for `open_ms`; while open, resolution skips the
//     compute entirely and serves the last-good stale artifact or falls down
//     the degradation ladder. After the cooldown a *single* half-open probe
//     is admitted; success re-closes the breaker, failure re-opens it.
//     Transitions land in `serve.breaker_opens` / `serve.breaker_closes`
//     counters and a per-kind `serve.breaker_state.<kind>` gauge
//     (0 closed, 1 open, 2 half-open). Time is passed in explicitly so the
//     state machine is deterministic under test.
//   * `RetryPolicy` — bounded retries with deterministic jittered
//     exponential backoff for transient artifact misses
//     (`SNTRUST_SERVE_RETRIES` retries; the jitter is a splitmix64 function
//     of (attempt, salt), never wall-clock randomness).
//
// `ResilienceOptions::from_env()` bundles the knobs; `TrustService::Options`
// carries one so embedders can override the environment per service.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace sntrust::obs {
class Counter;
class Gauge;
}  // namespace sntrust::obs

namespace sntrust::serve {

/// Nanoseconds on the steady clock — the time base every resilience decision
/// (sojourn, breaker cooldown, staleness bound) is made against.
std::uint64_t steady_now_ns();

enum class BreakerState : std::uint8_t {
  kClosed = 0,    ///< computes allowed; failures counted
  kOpen = 1,      ///< computes skipped; serve stale / degrade
  kHalfOpen = 2,  ///< cooldown elapsed; exactly one probe in flight
};

struct BreakerOptions {
  /// Consecutive failures that trip the breaker open.
  std::uint32_t failure_threshold = 3;
  /// Cooldown before the open breaker admits a half-open probe.
  std::uint64_t open_ms = 1000;
};

/// Per-artifact-kind circuit breaker: closed -> open -> half-open -> closed.
/// All methods take `now_ns` explicitly (tests drive the clock by hand);
/// thread-safe — resolution is off the per-query hot path, so a mutex is
/// fine here.
class CircuitBreaker {
 public:
  /// `name` labels the `serve.breaker_state.<name>` gauge; the opens/closes
  /// counters are shared across breakers (cumulative transition counts).
  explicit CircuitBreaker(std::string name, BreakerOptions options = {});

  /// True when a compute attempt may proceed: the breaker is closed, or the
  /// open cooldown has elapsed and this caller claimed the single half-open
  /// probe slot. A claimed probe MUST be resolved with record_success or
  /// record_failure.
  bool allow(std::uint64_t now_ns);

  /// A compute attempt succeeded: reset the failure count, close the
  /// breaker (completing a half-open probe counts a `serve.breaker_closes`).
  void record_success(std::uint64_t now_ns);

  /// A compute attempt failed: count it, trip open at the threshold, and
  /// re-open immediately when the failure was the half-open probe.
  void record_failure(std::uint64_t now_ns);

  BreakerState state(std::uint64_t now_ns) const;
  /// Steady-clock ns at which an open breaker will admit its probe; 0 when
  /// not open (the resolver's re-probe scheduling hint).
  std::uint64_t probe_at_ns() const;

 private:
  BreakerState classify(std::uint64_t now_ns) const;
  void publish(std::uint64_t now_ns);

  mutable std::mutex mutex_;
  BreakerOptions options_;
  BreakerState state_ = BreakerState::kClosed;
  std::uint32_t consecutive_failures_ = 0;
  std::uint64_t opened_ns_ = 0;
  bool probe_in_flight_ = false;
  obs::Gauge& state_gauge_;
  obs::Counter& opens_;
  obs::Counter& closes_;
};

/// Bounded retry with deterministic jittered exponential backoff.
struct RetryPolicy {
  /// Retries after the first attempt (total attempts = retries + 1).
  std::uint32_t retries = 2;
  /// Backoff before retry k (1-based) is base * 2^(k-1) * jitter, where
  /// jitter in [0.5, 1.5) is a pure function of (salt, k).
  std::uint64_t base_backoff_us = 500;

  std::uint64_t backoff_ns(std::uint32_t retry, std::uint64_t salt) const;
};

/// CoDel-style shed decision: engage when queue sojourn has stayed above
/// `target_ms` for one full interval (4x the target), disengage on the first
/// below-target observation. `observe_sojourn` is called only by the drain
/// thread; `shedding()` is a relaxed atomic read on the submit path.
class LoadShedController {
 public:
  explicit LoadShedController(double target_ms);

  bool enabled() const { return target_ms_ > 0.0; }
  double target_ms() const { return target_ms_; }

  /// Drain-thread only: sojourn of the oldest request in the popped batch.
  void observe_sojourn(double sojourn_ms, std::uint64_t now_ns);

  /// Submit path: true while the controller (or a full-ring overflow, which
  /// calls `force_shed`) says new arrivals should be refused.
  bool shedding() const {
    return shedding_.load(std::memory_order_relaxed);
  }

  /// Overflow path: the ring is full, shed immediately regardless of the
  /// sojourn trend (the drain worker may be parked and never observing).
  void force_shed();

 private:
  void publish(bool shedding);

  double target_ms_;
  std::uint64_t interval_ns_;
  std::atomic<bool> shedding_{false};
  // Drain-thread-only trend state; no synchronization needed.
  bool above_ = false;
  std::uint64_t above_since_ns_ = 0;
  obs::Gauge& shedding_gauge_;
};

/// The serving layer's resilience knobs, env-resolved once per service.
struct ResilienceOptions {
  /// CoDel target sojourn (ms); 0 disables shedding (blocking backpressure).
  double shed_ms = 0.0;
  /// Max age (ms) a stale artifact may be served at; 0 disables stale
  /// serving (unavailable kinds fall straight down the ladder).
  double stale_ms = 60'000.0;
  /// Transient-failure retries per resolution attempt.
  std::uint32_t retries = 2;
  BreakerOptions breaker;

  /// SNTRUST_SERVE_SHED_MS / SNTRUST_SERVE_STALE_MS / SNTRUST_SERVE_RETRIES
  /// (breaker knobs keep their defaults; embedders override in code).
  static ResilienceOptions from_env();
};

}  // namespace sntrust::serve

#include "dht/social_dht.hpp"

#include <algorithm>
#include <stdexcept>

#include "markov/walker.hpp"
#include "util/rng.hpp"

namespace sntrust {

namespace {

std::uint64_t key_hash(VertexId v) {
  std::uint64_t z = static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

SocialDht::SocialDht(const Graph& g, const SocialDhtParams& params,
                     std::vector<std::uint8_t> is_sybil)
    : graph_(g), params_(params), is_sybil_(std::move(is_sybil)) {
  const VertexId n = g.num_vertices();
  if (n < 2) throw std::invalid_argument("SocialDht: graph too small");
  if (!is_sybil_.empty() && is_sybil_.size() != n)
    throw std::invalid_argument("SocialDht: is_sybil size mismatch");
  if (params_.table_size == 0 || params_.lookup_fanout == 0)
    throw std::invalid_argument("SocialDht: table_size and fanout must be > 0");
  if (params_.walk_length == 0) {
    params_.walk_length = 3;
    for (VertexId x = n; x > 1; x /= 2) ++params_.walk_length;
  }

  // Global ring order of keys: ring_rank_[v] = position of v's key among all
  // keys. Each node stores the records of the `successors` keys following
  // its own key (Whānau's successor lists), so a finger answers a lookup for
  // key k iff k's owner lies within its successor window.
  ring_rank_.resize(n);
  {
    std::vector<std::pair<std::uint64_t, VertexId>> order;
    order.reserve(n);
    for (VertexId v = 0; v < n; ++v) order.push_back({key_hash(v), v});
    std::sort(order.begin(), order.end());
    for (VertexId i = 0; i < n; ++i) ring_rank_[order[i].second] = i;
  }
  successors_ = std::max<std::uint32_t>(
      2, 2 * n / std::min<std::uint32_t>(n, params_.table_size));

  fingers_.resize(n);
  RandomWalker walker{g, params_.seed};
  for (VertexId v = 0; v < n; ++v) {
    if (g.degree(v) == 0) continue;
    auto& table = fingers_[v];
    table.reserve(params_.table_size);
    for (std::uint32_t i = 0; i < params_.table_size; ++i) {
      const VertexId endpoint = walker.walk_endpoint(v, params_.walk_length);
      table.push_back({ring_rank_[endpoint], endpoint});
    }
    std::sort(table.begin(), table.end());
  }
}

std::uint64_t SocialDht::key_of(VertexId v) const {
  if (v >= graph_.num_vertices())
    throw std::out_of_range("SocialDht::key_of: vertex out of range");
  return key_hash(v);
}

bool SocialDht::lookup(VertexId source, VertexId target) const {
  const VertexId n = graph_.num_vertices();
  if (source >= n || target >= n)
    throw std::out_of_range("SocialDht::lookup: vertex out of range");
  const std::uint64_t target_rank = ring_rank_[target];
  const auto& table = fingers_[source];
  if (table.empty()) return false;

  // Consult the fanout fingers nearest *preceding* the key on the ring
  // (their successor windows extend clockwise and may cover it). Sybil
  // fingers answer uselessly.
  auto it = std::upper_bound(table.begin(), table.end(),
                             std::make_pair(target_rank, VertexId{0xFFFFFFFF}));
  std::size_t index = it == table.begin()
                          ? table.size() - 1
                          : static_cast<std::size_t>(it - table.begin()) - 1;
  for (std::uint32_t i = 0; i < params_.lookup_fanout && i < table.size();
       ++i) {
    const auto& [finger_rank, finger] =
        table[(index + table.size() - i) % table.size()];
    if (!is_sybil_.empty() && is_sybil_[finger]) continue;
    // Clockwise rank distance from the finger's own key to the target key;
    // within its successor window means it stores the record.
    const std::uint64_t gap = (target_rank + n - finger_rank) % n;
    if (gap <= successors_) return true;
  }
  return false;
}

double SocialDht::lookup_success_rate(std::uint32_t trials,
                                      std::uint64_t seed) const {
  if (trials == 0) return 0.0;
  Rng rng{seed};
  std::vector<VertexId> honest;
  for (VertexId v = 0; v < graph_.num_vertices(); ++v)
    if ((is_sybil_.empty() || !is_sybil_[v]) && graph_.degree(v) > 0)
      honest.push_back(v);
  if (honest.size() < 2) return 0.0;
  std::uint32_t ok = 0;
  for (std::uint32_t t = 0; t < trials; ++t) {
    const VertexId source = honest[rng.uniform(honest.size())];
    const VertexId target = honest[rng.uniform(honest.size())];
    if (lookup(source, target)) ++ok;
  }
  return static_cast<double>(ok) / trials;
}

double SocialDht::table_poison_rate() const {
  if (is_sybil_.empty()) return 0.0;
  std::uint64_t total = 0;
  std::uint64_t poisoned = 0;
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    if (is_sybil_[v]) continue;
    for (const auto& [rank, finger] : fingers_[v]) {
      ++total;
      if (is_sybil_[finger]) ++poisoned;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(poisoned) / static_cast<double>(total);
}

SocialDhtEvaluation evaluate_social_dht(const Graph& honest,
                                        const AttackedGraph& attacked,
                                        const SocialDhtParams& params,
                                        std::uint32_t trials) {
  SocialDhtEvaluation eval;
  {
    const SocialDht clean{honest, params};
    eval.clean_success = clean.lookup_success_rate(trials, params.seed ^ 1);
  }
  {
    std::vector<std::uint8_t> labels(attacked.graph().num_vertices(), 0);
    for (VertexId v = attacked.num_honest();
         v < attacked.graph().num_vertices(); ++v)
      labels[v] = 1;
    const SocialDht dht{attacked.graph(), params, std::move(labels)};
    eval.attacked_success = dht.lookup_success_rate(trials, params.seed ^ 1);
    eval.poison_rate = dht.table_poison_rate();
  }
  return eval;
}

}  // namespace sntrust

// A Whānau-style Sybil-proof DHT (Lesniewski-Laas & Kaashoek, NSDI 2010 —
// the paper's refs [3], [10]): a one-hop distributed hash table whose
// routing tables are populated by *random walks on the social graph*, so an
// attacker's ability to pollute tables is bounded by attack edges rather
// than by Sybil count — provided the graph mixes fast.
//
// Simplified faithful model:
//   - every node draws `table_size` (id, address) finger entries by running
//     w-step random walks and sampling the endpoint's key;
//   - keys live on a ring; a lookup for key k asks the `lookup_fanout`
//     fingers nearest to k whether they hold it (one-hop routing);
//   - Sybil nodes answer lookups incorrectly; a lookup succeeds when an
//     honest finger within the fanout holds/stores the key.
//
// The evaluation mirrors the defense evaluations elsewhere in this repo:
// lookup success on honest keys under an attack region, on fast- vs
// slow-mixing graphs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "sybil/attack.hpp"

namespace sntrust {

struct SocialDhtParams {
  /// Finger entries per node (Whānau uses O(sqrt(m) log m); we scale down).
  std::uint32_t table_size = 64;
  /// Random-walk length used to sample fingers; 0 = ceil(log2 n) + 3.
  std::uint32_t walk_length = 0;
  /// Fingers consulted per lookup.
  std::uint32_t lookup_fanout = 8;
  std::uint64_t seed = 1;
};

/// Keys are 64-bit ring positions; each vertex owns the key equal to a hash
/// of its id (one record per node, as in Whānau's layered ring).
class SocialDht {
 public:
  /// Builds all routing tables. `is_sybil[v]` marks adversarial vertices
  /// whose records and answers are poisoned; pass an empty vector for a
  /// clean network.
  SocialDht(const Graph& g, const SocialDhtParams& params,
            std::vector<std::uint8_t> is_sybil = {});

  /// The key owned by vertex v.
  std::uint64_t key_of(VertexId v) const;

  /// Runs a lookup from `source` for the key owned by `target`. Returns
  /// true when an honest finger among the fanout-nearest fingers to the key
  /// resolves it (i.e. equals the target or is the target's honest
  /// successor on the ring).
  bool lookup(VertexId source, VertexId target) const;

  /// Fraction of `trials` honest-source -> honest-target lookups that
  /// succeed.
  double lookup_success_rate(std::uint32_t trials, std::uint64_t seed) const;

  /// Fraction of table entries pointing at Sybil vertices, averaged over
  /// honest nodes — the table-poisoning rate the defense bounds.
  double table_poison_rate() const;

 private:
  const Graph& graph_;
  SocialDhtParams params_;
  std::vector<std::uint8_t> is_sybil_;
  /// Position of each vertex's key in the global ring order.
  std::vector<std::uint64_t> ring_rank_;
  /// Length of each node's successor window (records it stores), in ranks.
  std::uint32_t successors_ = 2;
  /// fingers_[v] = sorted (ring rank, vertex) pairs.
  std::vector<std::vector<std::pair<std::uint64_t, VertexId>>> fingers_;
};

/// End-to-end evaluation on an attacked graph.
struct SocialDhtEvaluation {
  double clean_success = 0.0;     ///< success rate with no attack
  double attacked_success = 0.0;  ///< success rate under the Sybil region
  double poison_rate = 0.0;       ///< fraction of honest table entries Sybil
};

SocialDhtEvaluation evaluate_social_dht(const Graph& honest,
                                        const AttackedGraph& attacked,
                                        const SocialDhtParams& params,
                                        std::uint32_t trials);

}  // namespace sntrust

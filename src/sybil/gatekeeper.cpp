#include "sybil/gatekeeper.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "exec/checkpoint.hpp"
#include "exec/sweep.hpp"
#include "graph/frontier_bfs.hpp"
#include "markov/walker.hpp"
#include "obs/diag.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace sntrust {

TicketRun distribute_tickets(const Graph& g, VertexId source,
                             std::uint64_t tickets) {
  return distribute_tickets(g, source, tickets, bfs(g, source));
}

TicketRun distribute_tickets(const Graph& g, VertexId source,
                             std::uint64_t tickets, const BfsResult& levels) {
  if (source >= g.num_vertices())
    throw std::out_of_range("distribute_tickets: source out of range");
  if (tickets == 0)
    throw std::invalid_argument("distribute_tickets: need >= 1 ticket");
  if (levels.source != source ||
      levels.distances.size() != g.num_vertices())
    throw std::invalid_argument(
        "distribute_tickets: BFS result does not match source/graph");

  // Local (non-static) handles: ticket runs execute on pool workers, so
  // avoid hidden function-local-static init coupling on first use.
  obs::metrics_counter("gatekeeper.ticket_runs").add(1);
  obs::metrics_counter("gatekeeper.tickets_sent").add(tickets);

  TicketRun run;
  run.distributer = source;
  run.tickets_sent = tickets;
  run.reached.assign(g.num_vertices(), 0);
  run.tickets_received.assign(g.num_vertices(), 0);
  run.tickets_received[source] = tickets;

  // Level-synchronous flood over the BFS DAG: a node consumes one ticket and
  // forwards the remainder evenly to next-level neighbours. Ticket counts are
  // tracked per vertex for the current level only.
  std::vector<std::uint64_t> holding(g.num_vertices(), 0);
  std::vector<VertexId> frontier{source};
  holding[source] = tickets;

  std::vector<VertexId> next_frontier;
  std::vector<VertexId> forward;
  std::uint32_t depth = 0;
  while (!frontier.empty()) {
    next_frontier.clear();
    for (const VertexId v : frontier) {
      std::uint64_t budget = holding[v];
      holding[v] = 0;
      if (budget == 0) continue;
      // Consume one ticket: v is reached.
      if (!run.reached[v]) {
        run.reached[v] = 1;
        ++run.vertices_reached;
      }
      --budget;
      if (budget == 0) continue;
      forward.clear();
      for (const VertexId w : g.neighbors_unchecked(v))
        if (levels.distances[w] == depth + 1) forward.push_back(w);
      if (forward.empty()) continue;  // dead end: tickets are lost
      const std::uint64_t share = budget / forward.size();
      std::uint64_t remainder = budget % forward.size();
      for (const VertexId w : forward) {
        std::uint64_t grant = share;
        if (remainder > 0) { ++grant; --remainder; }
        if (grant == 0) continue;
        if (holding[w] == 0) next_frontier.push_back(w);
        holding[w] += grant;
        run.tickets_received[w] += grant;
      }
    }
    frontier.swap(next_frontier);
    ++depth;
  }
  return run;
}

TicketRun adaptive_distribute(const Graph& g, VertexId source,
                              double reach_fraction) {
  FrontierBfs runner{g};
  return adaptive_distribute(g, source, reach_fraction, runner);
}

TicketRun adaptive_distribute(const Graph& g, VertexId source,
                              double reach_fraction, FrontierBfs& runner) {
  if (reach_fraction <= 0.0 || reach_fraction > 1.0)
    throw std::invalid_argument(
        "adaptive_distribute: reach_fraction must be in (0,1]");
  const auto target = static_cast<std::uint64_t>(
      std::ceil(reach_fraction * g.num_vertices()));
  const std::uint64_t cap = 64ull * g.num_vertices() + 64;
  // The level DAG is all the ticket flood needs; one direction-optimizing
  // BFS serves every doubling attempt. The reference stays valid because
  // distribute_tickets never touches the runner.
  const BfsResult& levels = runner.run(source);
  std::uint64_t tickets = 2;
  TicketRun run = distribute_tickets(g, source, tickets, levels);
  while (run.vertices_reached < target && tickets < cap) {
    tickets *= 2;
    run = distribute_tickets(g, source, tickets, levels);
  }
  if (run.vertices_reached < target) return run;  // cap hit: best effort
  // Binary-refine down to the minimal budget that still reaches the target —
  // excess tickets only leak across attack edges without admitting more
  // honest vertices.
  std::uint64_t lo = tickets / 2, hi = tickets;
  while (lo + 1 < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    TicketRun attempt = distribute_tickets(g, source, mid, levels);
    if (attempt.vertices_reached >= target) {
      hi = mid;
      run = std::move(attempt);
    } else {
      lo = mid;
    }
  }
  return run;
}

GateKeeperResult run_gatekeeper(const Graph& g, VertexId controller,
                                const GateKeeperParams& params) {
  if (controller >= g.num_vertices())
    throw std::out_of_range("run_gatekeeper: controller out of range");
  if (params.num_distributers == 0)
    throw std::invalid_argument("run_gatekeeper: need >= 1 distributer");
  if (params.f_admit <= 0.0 || params.f_admit > 1.0)
    throw std::invalid_argument("run_gatekeeper: f_admit must be in (0,1]");

  std::uint32_t walk_length = params.sample_walk_length;
  if (walk_length == 0) {
    walk_length = 5;
    for (VertexId x = g.num_vertices(); x > 1; x /= 2) ++walk_length;
  }

  const obs::Span span{"gatekeeper.run", "sybil"};
  // Per-query latency: one admission-control query is one controller asking
  // GateKeeper for a decision — the distribution the serving layer will
  // quote as its p50/p99.
  const obs::Stopwatch query_clock;

  GateKeeperResult out;
  out.threshold = static_cast<std::uint32_t>(
      std::ceil(params.f_admit * params.num_distributers));
  out.admissions.assign(g.num_vertices(), 0);

  RandomWalker walker{g, params.seed};
  out.distributers.reserve(params.num_distributers);
  for (std::uint32_t i = 0; i < params.num_distributers; ++i)
    out.distributers.push_back(walker.walk_endpoint(controller, walk_length));

  obs::ProgressMeter progress{"gatekeeper distributers",
                              params.num_distributers};
  // One adaptive ticket distribution per distributer across the pool. Each
  // distributer's payload is its sorted reached-vertex list; the admission
  // tallies fold serially afterwards by integer addition in index order, so
  // the final counts are identical for any thread count — and for resumed
  // runs, which restore payloads instead of re-flooding.
  const VertexId n = g.num_vertices();
  const std::uint32_t workers =
      parallel::plan_workers(out.distributers.size());
  struct WorkerState {
    std::vector<FrontierBfs> runner;  // 0 or 1 entries; lazily constructed
  };
  std::vector<WorkerState> partial(workers);

  exec::SweepOptions sweep;
  sweep.kind = "gatekeeper_run";
  sweep.fault_site = "sybil";
  sweep.token = exec::process_token();
  sweep.fingerprint = exec::fingerprint(
      {n, g.num_edges(), params.num_distributers,
       std::bit_cast<std::uint64_t>(params.f_admit),
       std::bit_cast<std::uint64_t>(params.reach_fraction), params.seed,
       walk_length, controller, exec::graph_fingerprint(g)});
  const exec::SweepResult swept = exec::run_sweep(
      out.distributers.size(), sweep,
      [&](std::size_t i, std::uint32_t worker) {
        WorkerState& state = partial[worker];
        if (state.runner.empty()) state.runner.emplace_back(g);
        const TicketRun run =
            adaptive_distribute(g, out.distributers[i],
                                params.reach_fraction, state.runner.front());
        progress.tick();
        json::Array reached;
        for (VertexId v = 0; v < n; ++v)
          if (run.reached[v])
            reached.push_back(
                json::Value::integer(static_cast<std::int64_t>(v)));
        return json::Value::array(std::move(reached)).dump();
      });
  for (const std::string& payload : swept.payloads) {
    if (payload.empty()) continue;  // failed distributer: degraded run
    const json::Value reached = json::Value::parse(payload);
    for (const json::Value& v : reached.as_array())
      ++out.admissions[static_cast<VertexId>(v.as_int())];
  }
  obs::record_latency("gatekeeper.query_ms", query_clock.elapsed_ms());
  return out;
}

GateKeeperEvaluation evaluate_gatekeeper(const AttackedGraph& attacked,
                                         VertexId controller,
                                         const GateKeeperParams& params) {
  if (controller >= attacked.num_honest())
    throw std::invalid_argument(
        "evaluate_gatekeeper: controller must be honest");
  const obs::Span span{"gatekeeper.evaluate", "sybil"};
  const obs::Stopwatch eval_clock;
  GateKeeperEvaluation eval;
  eval.result = run_gatekeeper(attacked.graph(), controller, params);

  // Ranking-eval tally over all vertices: integer pair sums are exactly
  // associative, so the map-reduce is thread-count invariant.
  struct Tally {
    std::uint64_t honest = 0;
    std::uint64_t sybil = 0;
  };
  const VertexId n = attacked.graph().num_vertices();
  const Tally tally = parallel::parallel_map_reduce<Tally>(
      0, n, Tally{},
      [&](std::size_t v) {
        Tally t;
        if (eval.result.admitted(static_cast<VertexId>(v))) {
          if (attacked.is_sybil(static_cast<VertexId>(v))) t.sybil = 1;
          else t.honest = 1;
        }
        return t;
      },
      [](Tally a, Tally b) {
        a.honest += b.honest;
        a.sybil += b.sybil;
        return a;
      },
      /*grain=*/8192);
  const std::uint64_t honest_admitted = tally.honest;
  const std::uint64_t sybil_admitted = tally.sybil;
  eval.honest_accept_fraction =
      static_cast<double>(honest_admitted) / attacked.num_honest();
  eval.sybils_per_attack_edge = static_cast<double>(sybil_admitted) /
                                attacked.num_attack_edges();
  // Diagnostics (SNTRUST_DIAG): admission is a Bernoulli trial per vertex,
  // so the acceptance rates carry Wilson CI95s over the trial counts. The
  // tallies above are already thread-count invariant; recording them here
  // observes but never perturbs the measurement.
  if (obs::diag_enabled()) {
    obs::DiagRegistry::instance().record_estimate(
        "gatekeeper.honest_accept",
        obs::wilson_ci95(honest_admitted, attacked.num_honest()));
    const std::uint64_t num_sybils =
        attacked.graph().num_vertices() - attacked.num_honest();
    if (num_sybils > 0)
      obs::DiagRegistry::instance().record_estimate(
          "gatekeeper.sybil_accept",
          obs::wilson_ci95(sybil_admitted, num_sybils));
  }
  obs::record_latency("gatekeeper.eval_ms", eval_clock.elapsed_ms());
  return eval;
}

}  // namespace sntrust

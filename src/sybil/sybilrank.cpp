#include "sybil/sybilrank.hpp"

#include <stdexcept>

#include "graph/components.hpp"
#include "markov/transition.hpp"

namespace sntrust {

SybilRankResult run_sybilrank(const Graph& g,
                              const std::vector<VertexId>& seeds,
                              const SybilRankParams& params) {
  const VertexId n = g.num_vertices();
  if (n == 0 || g.num_edges() == 0)
    throw std::invalid_argument("run_sybilrank: graph must have edges");
  if (!is_connected(g))
    throw std::invalid_argument("run_sybilrank: graph must be connected");
  if (seeds.empty())
    throw std::invalid_argument("run_sybilrank: need at least one seed");
  for (const VertexId s : seeds)
    if (s >= n) throw std::out_of_range("run_sybilrank: seed out of range");

  std::uint32_t iterations = params.iterations;
  if (iterations == 0) {
    iterations = 1;
    for (VertexId x = n; x > 1; x /= 2) ++iterations;
  }

  Distribution trust(n, 0.0);
  for (const VertexId s : seeds)
    trust[s] += 1.0 / static_cast<double>(seeds.size());

  Distribution buffer(n);
  for (std::uint32_t it = 0; it < iterations; ++it) {
    step_distribution(g, trust, buffer);
    trust.swap(buffer);
  }

  SybilRankResult result;
  result.iterations_used = iterations;
  result.scores.resize(n);
  for (VertexId v = 0; v < n; ++v)
    result.scores[v] =
        g.degree(v) == 0 ? 0.0 : trust[v] / static_cast<double>(g.degree(v));
  result.ranking = ranking_from_scores(result.scores);
  return result;
}

PairwiseEvaluation evaluate_sybilrank(const AttackedGraph& attacked,
                                      const std::vector<VertexId>& seeds,
                                      const SybilRankParams& params) {
  for (const VertexId s : seeds)
    if (s >= attacked.num_honest())
      throw std::invalid_argument("evaluate_sybilrank: seeds must be honest");
  const SybilRankResult result =
      run_sybilrank(attacked.graph(), seeds, params);

  PairwiseEvaluation eval;
  std::uint64_t honest_accepted = 0;
  std::uint64_t sybil_accepted = 0;
  const VertexId cutoff = attacked.num_honest();
  for (VertexId i = 0; i < cutoff && i < result.ranking.size(); ++i) {
    if (attacked.is_sybil(result.ranking[i])) ++sybil_accepted;
    else ++honest_accepted;
  }
  eval.honest_trials = attacked.num_honest();
  eval.sybil_trials = attacked.num_sybils();
  eval.honest_accept_fraction =
      static_cast<double>(honest_accepted) / attacked.num_honest();
  eval.sybils_per_attack_edge = static_cast<double>(sybil_accepted) /
                                attacked.num_attack_edges();
  return eval;
}

}  // namespace sntrust

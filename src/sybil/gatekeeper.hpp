// GateKeeper (Tran, Li, Subramanian, Chow — INFOCOM 2011): decentralized
// Sybil-resilient node admission built on ticket distribution over an
// expander social graph. This is the system the paper runs for Table II.
//
// Protocol sketch:
//   1. The admission controller samples `num_distributers` vertices by
//      short random walks from itself ("bandwidth-limited" sampling).
//   2. Each distributer floods tickets level-by-level over the BFS DAG:
//      a node keeps one ticket and splits the remainder evenly among its
//      next-level neighbours; a node is *reached* if it consumed a ticket.
//      The distributer doubles the initial ticket count until at least half
//      the reachable vertices are reached (adaptive O(n) bootstrap).
//   3. A suspect is admitted when at least f_admit * num_distributers
//      distributers reached it.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/traversal.hpp"
#include "sybil/attack.hpp"

namespace sntrust {

class FrontierBfs;

struct GateKeeperParams {
  std::uint32_t num_distributers = 99;  ///< Table II samples 99
  double f_admit = 0.1;                 ///< admission fraction f
  /// Length of the random walks used to sample distributers; O(log n) on a
  /// fast-mixing graph. 0 means "use ceil(log2 n) + 5".
  std::uint32_t sample_walk_length = 0;
  /// Adaptive doubling stops once this fraction of vertices is reached.
  double reach_fraction = 0.5;
  std::uint64_t seed = 1;
};

/// Ticket distribution outcome from one distributer.
struct TicketRun {
  VertexId distributer = 0;
  std::uint64_t tickets_sent = 0;       ///< final ticket budget used
  std::uint64_t vertices_reached = 0;   ///< vertices that consumed a ticket
  std::vector<std::uint8_t> reached;    ///< reached[v] flag per vertex
  /// tickets_received[v] = tickets that arrived at v (pre-consumption);
  /// SumUp reuses this as its link-capacity assignment.
  std::vector<std::uint64_t> tickets_received;
};

/// One level-synchronous ticket distribution with `tickets` initial tickets
/// from `source`. Exposed separately for tests and for SumUp, which reuses
/// the same primitive for its vote envelope.
TicketRun distribute_tickets(const Graph& g, VertexId source,
                             std::uint64_t tickets);

/// As above with a precomputed BFS from `source` (distances define the
/// level DAG); adaptive_distribute uses this to avoid re-running the BFS on
/// every ticket doubling.
TicketRun distribute_tickets(const Graph& g, VertexId source,
                             std::uint64_t tickets,
                             const BfsResult& levels);

/// Runs distribute_tickets with doubling until `reach_fraction` of the
/// graph is reached (or the budget exceeds 64 * n, whichever first). The
/// level DAG comes from one direction-optimizing BFS per call.
TicketRun adaptive_distribute(const Graph& g, VertexId source,
                              double reach_fraction);

/// As above, reusing a caller-owned BFS workspace; run_gatekeeper keeps one
/// per pool worker so the distributer sweep never re-allocates BFS state.
TicketRun adaptive_distribute(const Graph& g, VertexId source,
                              double reach_fraction, FrontierBfs& runner);

/// Full GateKeeper admission decision for every vertex.
struct GateKeeperResult {
  std::vector<VertexId> distributers;
  /// admissions[v] = number of distributers that reached v.
  std::vector<std::uint32_t> admissions;
  std::uint32_t threshold = 0;  ///< ceil(f_admit * num_distributers)
  bool admitted(VertexId v) const { return admissions[v] >= threshold; }
};

/// Runs the protocol with `controller` as the trusted admission controller.
GateKeeperResult run_gatekeeper(const Graph& g, VertexId controller,
                                const GateKeeperParams& params);

/// Table-II style evaluation on an attacked graph: fraction of honest
/// vertices admitted and Sybils admitted per attack edge.
struct GateKeeperEvaluation {
  double honest_accept_fraction = 0.0;
  double sybils_per_attack_edge = 0.0;
  GateKeeperResult result;
};

GateKeeperEvaluation evaluate_gatekeeper(const AttackedGraph& attacked,
                                         VertexId controller,
                                         const GateKeeperParams& params);

}  // namespace sntrust
